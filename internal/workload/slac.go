package workload

import (
	"math"
	"math/rand"
	"time"

	"gftpvc/internal/stats"
	"gftpvc/internal/tcpmodel"
	"gftpvc/internal/usagestats"
)

// SLAC–BNL special populations (§VII-B):
//   - the night spike: 2,215 transfers exceeded 1.5 Gbps, 85.37% of them
//     between 2–3 AM SLAC time on Apr 2 2012, all of size 355.5 MB;
//   - the Fig 3 bin spike: 588 8-stream transfers of ≈302.5 MB at ≈400 Mbps;
//   - the Fig 4 dip: 8-stream transfers of 2.2–3.1 GB see ~50% lower
//     throughput (server-side contention the paper could not attribute).
const (
	slacNightSpikeCount = 1891 // 85.37% of 2215
	slacBinSpikeCount   = 588
	slacNightSpikeBytes = 355.5e6
	slacBinSpikeBytes   = 302.5e6
)

// SLACBNL generates the SLAC–BNL dataset: 1,021,999 transfers in 10,199
// sessions (g = 1 min) over Feb–Apr 2012. Transfer durations come from
// the TCP model (internal/tcpmodel) with a per-transfer host-limited
// steady rate drawn from the Table II throughput distribution, so the
// stream-count effects of Figures 3–5 and the session statistics of
// Tables II–IV arise from one dataset.
func SLACBNL(opt Options) (*Dataset, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	spec := scaleSpec(PlanSpec{
		Transfers:    PaperSLACBNLTransfers,
		Sessions:     PaperSLACBNLSessionsG1,
		Singles:      PaperSLACBNLSingleG1,
		MaxTransfers: PaperSLACBNLMaxSessionTransfers,
		Over100:      PaperSLACBNLSessionsOver100,
		Reserved:     []int{slacNightSpikeCount, slacBinSpikeCount},
	}, opt.Scale)
	plan, spec, err := buildFeasible(spec)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	sizeSampler := stats.MustShapedSampler(PaperSLACBNLSessionSizeMB, slacSessionShape)
	// Host-limited steady rate per transfer: the Table II throughput
	// distribution, inflated slightly because slow-start ramping pulls
	// realized throughput below the steady rate for small files.
	rateSampler := stats.MustShapedSampler(PaperSLACBNLThroughputMbps, throughputShape)

	counts := plan.Counts
	sizesMB := pairSizesWithCounts(rng, sizeSampler, counts)
	layout := &sessionLayout{
		rng:            rng,
		serverHost:     HostSLAC,
		remoteHost:     HostBNL,
		start:          time.Date(2012, 2, 1, 0, 0, 0, 0, time.UTC),
		period:         85 * 24 * time.Hour,
		maxLanes:       8,
		smallGapMaxSec: 20,
		overlapProb:    0.5,
	}
	// Locate the reserved special sessions within the plan (counts are
	// unique enough to match the first occurrence).
	nightIdx, binIdx := -1, -1
	var nightCount, binCount int
	if len(spec.Reserved) >= 1 {
		nightCount = spec.Reserved[0]
	}
	if len(spec.Reserved) >= 2 {
		binCount = spec.Reserved[1]
	}
	for i, c := range counts {
		if nightIdx < 0 && c == nightCount && nightCount > 0 {
			nightIdx = i
			continue
		}
		if binIdx < 0 && c == binCount && binCount > 0 {
			binIdx = i
		}
	}

	records := make([]usagestats.Record, 0, spec.Transfers)
	for si, count := range counts {
		start := layout.place(si, len(counts))
		var sizes []float64
		switch {
		case si == nightIdx:
			// 2–3 AM SLAC time (UTC-7 in April) on Apr 2 2012.
			start = time.Date(2012, 4, 2, 9, 0, 0, 0, time.UTC).
				Add(time.Duration(rng.Float64() * float64(10*time.Minute)))
			sizes = repeat(slacNightSpikeBytes, count)
		case si == binIdx:
			sizes = repeat(slacBinSpikeBytes, count)
		default:
			sizes = splitSession(rng, sizesMB[si]*1e6, count)
		}
		durations := make([]float64, count)
		streams := make([]int, count)
		buffers := make([]int64, count)
		for i := range durations {
			n := 1
			if rng.Float64() < PaperSLACBNLMultiStreamShare {
				n = 8
			}
			var rate float64 // bps
			buf := int64(2 << 20)
			warm := false
			switch {
			case si == nightIdx:
				// Back-to-back 355.5 MB transfers reuse their data
				// connections, so TCP windows stay warm — that is how a
				// 355 MB transfer peaks at 2.56 Gbps despite slow start.
				n = 8
				rate = 1.55e9 + rng.Float64()*1.0e9
				buf = 8 << 20
				warm = true
			case si == binIdx:
				n = 8
				rate = 4.0e8 + rng.NormFloat64()*3e7
				warm = true
			default:
				// The 1.85 factor compensates for slow-start ramping,
				// which pulls realized throughput below the host-limited
				// steady rate for the (numerous) small files; it also
				// puts the large-file host-rate median at ~200 Mbps, the
				// level where Fig 3/4's two stream groups plateau
				// together (host limit ≈ the 1-stream window limit).
				rate = rateSampler.Sample(rng) * 1e6 * 1.85
				if n == 8 && sizes[i] >= 2.2e9 && sizes[i] < 3.1e9 {
					// The Fig 4 dip population.
					rate *= 0.5
				}
			}
			if rate < 4e3 {
				rate = 4e3
			}
			// Bound each transfer to under two hours; the slowest
			// observed rates belong to small files (see the NCAR note).
			if min := sizes[i] * 8 / 6000; rate < min {
				rate = min
			}
			durations[i] = slacTransferModel(sizes[i], n, rate, buf, warm)
			streams[i] = n
			buffers[i] = buf
		}
		records = layout.emitSession(records, start, sizes, durations, func(i int, r *usagestats.Record) {
			r.Streams = streams[i]
			r.BufferBytes = buffers[i]
			r.BlockBytes = 256 << 10
			if rng.Float64() < 0.5 {
				r.Type = usagestats.Store
			}
		})
	}
	usagestats.SortByStart(records)
	return &Dataset{Name: "slac-bnl", Records: records, Spec: spec}, nil
}

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// slacTransferModel returns the duration of one SLAC–BNL transfer from the
// TCP model: 80 ms RTT path, per-stream socket buffer buf, host-limited
// aggregate rate hostBps. warm starts the congestion window at the buffer
// limit (reused data connections within a session).
func slacTransferModel(sizeBytes float64, streams int, hostBps float64, buf int64, warm bool) float64 {
	cfg := tcpmodel.ESnetPath(0.080)
	cfg.AggregateCapBps = hostBps
	cfg.StreamBufBytes = float64(buf)
	if warm {
		cfg.InitCwndSegments = cfg.StreamBufBytes / cfg.MSSBytes
		cfg.SSThreshBytes = cfg.StreamBufBytes
	}
	res, err := cfg.Transfer(sizeBytes, streams)
	if err != nil {
		// Degenerate parameters (sub-MSS sizes); fall back to the plain
		// rate division.
		return math.Max(1e-3, sizeBytes*8/hostBps)
	}
	return res.DurationSec
}
