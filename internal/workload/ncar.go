package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"gftpvc/internal/stats"
	"gftpvc/internal/usagestats"
)

// Options configures a dataset generator.
type Options struct {
	// Seed makes generation reproducible; the same seed yields the same
	// dataset byte for byte.
	Seed int64
	// Scale shrinks the dataset for fast tests (0 < Scale <= 1; default
	// 1 reproduces the paper's counts exactly).
	Scale float64
}

func (o *Options) normalize() error {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Scale < 0 || o.Scale > 1 {
		return errors.New("workload: scale must be in (0,1]")
	}
	return nil
}

// Dataset is one generated log with the plan it realizes.
type Dataset struct {
	Name    string
	Records []usagestats.Record
	Spec    PlanSpec
}

// scaleSpec shrinks a Table III row by the scale factor, keeping the plan
// feasible (the allocator needs room for every transfer).
func scaleSpec(spec PlanSpec, scale float64) PlanSpec {
	if scale >= 1 {
		return spec
	}
	s := PlanSpec{
		Transfers:    max2(10, int(float64(spec.Transfers)*scale)),
		Sessions:     max2(3, int(float64(spec.Sessions)*scale)),
		Singles:      int(float64(spec.Singles) * scale),
		MaxTransfers: max2(100, int(float64(spec.MaxTransfers)*scale)),
		Over100:      max2(1, int(float64(spec.Over100)*scale)),
	}
	if s.Singles >= s.Sessions {
		s.Singles = s.Sessions - 1
	}
	if s.Over100 > s.Sessions-s.Singles {
		s.Over100 = s.Sessions - s.Singles
	}
	for _, r := range spec.Reserved {
		rs := int(float64(r) * scale)
		if rs >= 100 && rs < s.MaxTransfers && len(s.Reserved) < s.Over100-1 {
			s.Reserved = append(s.Reserved, rs)
		}
	}
	return s
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// buildFeasible builds a plan. Full-size specs build strictly; scaled
// specs may need the maximum session clamped (when the budget cannot
// reach it) or grown (when the other sessions cannot absorb the budget),
// in which case the returned spec reflects the realized maximum.
func buildFeasible(spec PlanSpec) (*SessionPlan, PlanSpec, error) {
	plan, err := BuildSessionPlan(spec)
	if err == nil {
		return plan, spec, nil
	}
	multi := spec.Sessions - spec.Singles
	minOthers := sum(spec.Reserved) + (spec.Over100-1-len(spec.Reserved))*100 + (multi-spec.Over100)*2
	budget := spec.Transfers - spec.Singles
	if cap := budget - minOthers; cap >= 100 && spec.MaxTransfers > cap {
		spec.MaxTransfers = cap
	}
	spec.AbsorbOverflow = true
	plan, err = BuildSessionPlan(spec)
	if err != nil {
		return nil, spec, fmt.Errorf("workload: no feasible plan for %+v: %w", spec, err)
	}
	m := 0
	for _, c := range plan.Counts {
		if c > m {
			m = c
		}
	}
	spec.MaxTransfers = m
	return plan, spec, nil
}

// sessionLayout drives the temporal structure shared by the NCAR and SLAC
// generators. Sessions between one endpoint pair are packed sequentially
// with inter-session gaps far above g — the paper's grouping definition
// makes real sessions non-overlapping by construction — while transfers
// within a session run on one or more parallel "lanes" (scripts moving a
// directory tree pipeline several files at once, which is how a 12 TB
// session achieves a 1.06 Gbps effective rate out of ~200 Mbps transfers,
// and why gaps can be negative).
type sessionLayout struct {
	rng        *rand.Rand
	serverHost string
	remoteHost string
	start      time.Time
	// period is the observation window the sessions spread across.
	period time.Duration
	// maxLanes caps a session's transfer concurrency.
	maxLanes int
	// smallGapMaxSec bounds the think-time between transfers in small
	// (single-lane) sessions; it must stay below g = 1 min so grouping
	// recovers the plan. Small positive gaps are what g = 0 splits on.
	smallGapMaxSec float64
	// overlapProb is the chance a single-lane transfer starts before the
	// previous one ends (scripts overlapping the next request); it sets
	// how much of a dataset survives grouping at g = 0.
	overlapProb float64

	cursor time.Time // advances as sessions are packed
}

// laneCount picks the session's concurrency from its fan-out.
func (l *sessionLayout) laneCount(transfers int) int {
	lanes := (transfers + 199) / 200
	if lanes < 1 {
		lanes = 1
	}
	if lanes > l.maxLanes {
		lanes = l.maxLanes
	}
	return lanes
}

// place returns the start time for the next session: the scheduled spread
// position or just after the previous session's end, whichever is later
// (sessions between the same endpoints never interleave).
func (l *sessionLayout) place(index, total int) time.Time {
	offset := time.Duration(float64(l.period) * (float64(index) + l.rng.Float64()*0.5) / float64(total))
	at := l.start.Add(offset)
	minStart := l.cursor.Add(time.Duration((180 + l.rng.Float64()*420) * float64(time.Second)))
	if at.Before(minStart) {
		at = minStart
	}
	return at
}

// emitSession appends records for one session starting at start. sizes and
// durations are per-transfer; extra mutates each record before appending
// (streams, stripes, type). The layout cursor advances to the session end.
func (l *sessionLayout) emitSession(out []usagestats.Record, start time.Time,
	sizes, durations []float64, extra func(i int, r *usagestats.Record)) []usagestats.Record {
	lanes := l.laneCount(len(sizes))
	gapLo, gapHi := 1.0, l.smallGapMaxSec
	if len(sizes) > 50 {
		// Tight scripted loops: sub-second to 2 s think time.
		gapLo, gapHi = 0.1, 2.0
	}
	laneEnd := make([]time.Time, lanes)
	for i := range laneEnd {
		laneEnd[i] = start
	}
	end := start
	for i := range sizes {
		lane := i % lanes
		gap := gapLo + l.rng.Float64()*(gapHi-gapLo)
		if lanes == 1 && l.rng.Float64() < l.overlapProb {
			// Overlapping request: a negative gap of up to five seconds.
			gap = -l.rng.Float64() * 5
		}
		cursor := laneEnd[lane].Add(time.Duration(gap * float64(time.Second)))
		if i == 0 || cursor.Before(start) {
			cursor = start
		}
		r := usagestats.Record{
			Type:        usagestats.Retrieve,
			SizeBytes:   int64(math.Max(1, sizes[i])),
			Start:       cursor,
			DurationSec: math.Max(1e-3, durations[i]),
			ServerHost:  l.serverHost,
			RemoteHost:  l.remoteHost,
			Streams:     1,
			Stripes:     1,
		}
		if extra != nil {
			extra(i, &r)
		}
		out = append(out, r)
		e := r.End()
		laneEnd[lane] = e
		if e.After(end) {
			end = e
		}
	}
	if end.After(l.cursor) {
		l.cursor = end
	}
	return out
}

// NCARNICS generates the NCAR–NICS dataset: 52,454 transfers in 211
// sessions (g = 1 min) spanning 2009–2011, with session sizes, durations
// and transfer throughputs matched to Table I and fan-outs to Table III.
func NCARNICS(opt Options) (*Dataset, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	spec := scaleSpec(PlanSpec{
		Transfers:    PaperNCARNICSTransfers,
		Sessions:     PaperNCARNICSSessionsG1,
		Singles:      PaperNCARNICSSingleG1,
		MaxTransfers: PaperNCARNICSMaxSessionTransfers,
		Over100:      PaperNCARNICSSessionsOver100,
	}, opt.Scale)
	plan, spec, err := buildFeasible(spec)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	sizeSampler := stats.MustQuantileSampler(PaperNCARNICSSessionSizeMB)
	thrSampler := stats.MustShapedSampler(PaperNCARNICSThroughputMbps, throughputShape)

	counts := plan.Counts
	sizesMB := pairSizesWithCounts(rng, sizeSampler, counts)
	layout := &sessionLayout{
		rng:        rng,
		serverHost: HostNCAR,
		remoteHost: HostNICS,
		start:      time.Date(2009, 1, 5, 0, 0, 0, 0, time.UTC),
		period:     3 * 365 * 24 * time.Hour,
		// The NCAR scripts ran sequentially: at g = 0 the dataset
		// shatters into tens of thousands of sessions (Table III) and
		// only ~2% of transfers stay VC-suitable (Table IV).
		maxLanes:       1,
		smallGapMaxSec: 55,
		overlapProb:    0.5,
	}
	records := make([]usagestats.Record, 0, spec.Transfers)
	for si, count := range counts {
		start := layout.place(si, len(counts))
		sizes := splitSession(rng, sizesMB[si]*1e6, count)
		durations := make([]float64, count)
		year := start.Year()
		stripes := stripesForYear(rng, year)
		for i := range durations {
			thr := thrSampler.Sample(rng) * 1e6 // bps
			// The slowest observed transfers (the 2.1 bps Table I
			// minimum) were tiny files; a bottom-tail rate on a large
			// file would imply a multi-year transfer, so bound each
			// transfer to an hour.
			if min := sizes[i] * 8 / 3600; thr < min {
				thr = min
			}
			durations[i] = sizes[i] * 8 / thr
		}
		records = layout.emitSession(records, start, sizes, durations, func(i int, r *usagestats.Record) {
			r.Stripes = stripes
			r.BufferBytes = 2 << 20
			r.BlockBytes = 256 << 10
		})
	}
	usagestats.SortByStart(records)
	return &Dataset{Name: "ncar-nics", Records: records, Spec: spec}, nil
}

// stripesForYear reflects the NCAR "frost" cluster history the paper
// describes: 3 servers in 2009 (transfers used 1 or 3 stripes), mostly 2
// in 2010, and 1 in 2011.
func stripesForYear(rng *rand.Rand, year int) int {
	switch {
	case year <= 2009:
		if rng.Float64() < 0.5 {
			return 3
		}
		return 1
	case year == 2010:
		if rng.Float64() < 0.8 {
			return 2
		}
		return 1
	default:
		return 1
	}
}

// LargeTransfer is one record of the NCAR 16 GB / 4 GB large-transfer
// subset (Tables VII–IX), carrying the year and stripe count the analysis
// groups by.
type LargeTransfer struct {
	Year           int
	Stripes        int
	SizeBytes      float64
	ThroughputMbps float64
}

// NCARLargeTransfers generates the [16,17) GB and [4,5) GB transfer
// subsets ("87% of the top 5% largest-sized transfers" in the NCAR data).
// Throughput depends on the stripe count — the paper's Table IX shows
// median throughput increasing with stripes — and the year structure
// follows the frost cluster's shrinking server count.
func NCARLargeTransfers(seed int64) (transfers16G, transfers4G []LargeTransfer) {
	rng := rand.New(rand.NewSource(seed))
	base := stats.MustQuantileSampler(stats.Summary{
		Min: 20, Q1: 260, Median: 420, Mean: 470, Q3: 650, Max: 2600,
	})
	counts16 := map[int]int{2009: 420, 2010: 310, 2011: 270}
	counts4 := map[int]int{2009: 500, 2010: 420, 2011: 360}
	gen := func(year, n int, sizeLo, sizeHi float64) []LargeTransfer {
		out := make([]LargeTransfer, 0, n)
		for i := 0; i < n; i++ {
			stripes := stripesForYear(rng, year)
			// Stripe speedup: parallel disk arms, sub-linear.
			factor := 1 + 0.45*float64(stripes-1)
			thr := base.Sample(rng) * factor
			if thr > 4227 {
				thr = 4227
			}
			out = append(out, LargeTransfer{
				Year:           year,
				Stripes:        stripes,
				SizeBytes:      sizeLo + rng.Float64()*(sizeHi-sizeLo),
				ThroughputMbps: thr,
			})
		}
		return out
	}
	for _, year := range []int{2009, 2010, 2011} {
		transfers16G = append(transfers16G, gen(year, counts16[year], 16e9, 17e9)...)
		transfers4G = append(transfers4G, gen(year, counts4[year], 4e9, 5e9)...)
	}
	return transfers16G, transfers4G
}

// FilterLarge partitions large transfers by a predicate; used by the
// Table VIII/IX harnesses.
func FilterLarge(ts []LargeTransfer, keep func(LargeTransfer) bool) []LargeTransfer {
	var out []LargeTransfer
	for _, t := range ts {
		if keep(t) {
			out = append(out, t)
		}
	}
	return out
}

// ThroughputsOf extracts the throughput column.
func ThroughputsOf(ts []LargeTransfer) []float64 {
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = t.ThroughputMbps
	}
	return out
}
