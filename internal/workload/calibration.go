// Package workload generates the four synthetic GridFTP datasets the
// reproduction analyzes in place of the paper's proprietary logs:
// NCAR–NICS (2009–2011), SLAC–BNL (Feb–Apr 2012), the 145 32 GB
// NERSC–ORNL test transfers (Sep 2010), and the 334 NERSC–ANL test
// transfers in four endpoint categories (Mar–Apr 2012).
//
// Calibration: every quantity the paper tabulates is reproduced either
// exactly (counts, category sizes, stream/stripe mixes) or
// distributionally via stats.QuantileSampler fitted to the paper's
// five-number summaries. Where the scanned paper's tables are partially
// illegible, the values chosen here are consistent with every legible
// number and with the narrative text; EXPERIMENTS.md records which anchors
// are from the paper verbatim and which are interpolated.
package workload

import (
	"gftpvc/internal/stats"
)

// Paper-reported summary statistics used as calibration anchors.
// Units: session sizes MB, durations seconds, throughput Mbps.
var (
	// PaperNCARNICSSessionSizeMB anchors Table I's session-size row.
	// Verbatim anchors: Min 8,793 bytes (≈0.0088 MB) and Max 2,873,868.5
	// MB. The interior quartiles are pinned by Table IV: 56.87% of NCAR
	// sessions exceed the 1-min/factor-10 threshold of ≈51 GB (so the
	// median sits just above it), and 93% exceed the 50 ms threshold of
	// ≈42 MB.
	PaperNCARNICSSessionSizeMB = stats.Summary{
		Min: 0.0088, Q1: 2400, Median: 65000, Mean: 152000, Q3: 230000, Max: 2873868.5,
	}

	// PaperNCARNICSSessionDurationSec anchors Table I's duration row.
	// Verbatim anchors: Max 48,420 s; legible interior values 1,445 /
	// 4,039 / 5,261 read as Median / Mean / Q3.
	PaperNCARNICSSessionDurationSec = stats.Summary{
		Min: 0.9, Q1: 102, Median: 1445, Mean: 4039, Q3: 5261, Max: 48420,
	}

	// PaperNCARNICSThroughputMbps anchors Table I's transfer-throughput
	// row. Verbatim anchors: Min 2.1 bps, Q3 682.2 Mbps (quoted in §VI-A
	// text), Max 4,227 Mbps (4.23 Gbps in text).
	PaperNCARNICSThroughputMbps = stats.Summary{
		Min: 2.1e-6, Q1: 196.9, Median: 392.8, Mean: 434.9, Q3: 682.2, Max: 4227,
	}

	// PaperSLACBNLSessionSizeMB anchors Table II's session-size row.
	// Verbatim: Min 812 bytes, Q1 273 MB, Median 1,195 MB (text: ≈1.1 GB),
	// Mean 24,045 MB (text: ≈24 GB), Q3 4,860 MB, Max 12,037,604 MB
	// (the 12 TB session).
	PaperSLACBNLSessionSizeMB = stats.Summary{
		Min: 0.000812, Q1: 273, Median: 1195, Mean: 24045, Q3: 4860, Max: 12037604,
	}

	// PaperSLACBNLSessionDurationSec anchors Table II's duration row.
	// Verbatim: Max 95,080 s (the 26h24m session). Interior values are
	// consistent with the size row at typical throughputs.
	PaperSLACBNLSessionDurationSec = stats.Summary{
		Min: 0.2, Q1: 16, Median: 72, Mean: 1290, Q3: 329, Max: 95080,
	}

	// PaperSLACBNLThroughputMbps anchors Table II's transfer-throughput
	// row. Verbatim: Q3 256.2 Mbps (§VI-A text), Max 2,560 Mbps (2.56
	// Gbps, also Fig 2's peak).
	PaperSLACBNLThroughputMbps = stats.Summary{
		Min: 0.004, Q1: 45.4, Median: 109.6, Mean: 195.9, Q3: 256.2, Max: 2560,
	}

	// PaperNERSCORNLThroughputMbps anchors Table V. Verbatim (abstract +
	// §VI-B): Min 758 Mbps, Max 3,640 Mbps, inter-quartile range 695
	// Mbps. Q1/Median/Mean/Q3 are chosen to honor the IQR.
	PaperNERSCORNLThroughputMbps = stats.Summary{
		Min: 758, Q1: 1310, Median: 1640, Mean: 1702, Q3: 2005, Max: 3640,
	}
)

// Paper-reported counts (Tables I–V and §V).
const (
	// PaperNCARNICSTransfers is the NCAR–NICS dataset size.
	PaperNCARNICSTransfers = 52454
	// PaperNCARNICSSessionsG1 is the session count at g = 1 min.
	PaperNCARNICSSessionsG1 = 211
	// PaperNCARNICSSingleG1 is the single-transfer session count at g=1min.
	PaperNCARNICSSingleG1 = 94
	// PaperNCARNICSMaxSessionTransfers is Table III's largest session.
	PaperNCARNICSMaxSessionTransfers = 19951
	// PaperNCARNICSSessionsOver100 is Table III's ≥100-transfer count.
	PaperNCARNICSSessionsOver100 = 27

	// PaperSLACBNLTransfers is the SLAC–BNL dataset size.
	PaperSLACBNLTransfers = 1021999
	// PaperSLACBNLSessionsG1 is the session count at g = 1 min.
	PaperSLACBNLSessionsG1 = 10199
	// PaperSLACBNLSingleG1 is the single-transfer session count at g=1min.
	PaperSLACBNLSingleG1 = 779
	// PaperSLACBNLMaxSessionTransfers is Table III's largest session.
	PaperSLACBNLMaxSessionTransfers = 30153
	// PaperSLACBNLSessionsOver100 is Table III's ≥100-transfer count.
	PaperSLACBNLSessionsOver100 = 1412
	// PaperSLACBNLMultiStreamShare is the fraction of transfers using
	// more than one TCP stream (84.615% in §VII-B).
	PaperSLACBNLMultiStreamShare = 0.84615

	// PaperNERSCORNLTransfers is the 32 GB test-transfer count.
	PaperNERSCORNLTransfers = 145
	// PaperNERSCORNL32GBytes is each test transfer's size.
	PaperNERSCORNL32GBytes = int64(32) << 30

	// NERSC–ANL test transfer counts by category (§VI-B).
	PaperNERSCANLMemMem   = 84
	PaperNERSCANLMemDisk  = 78
	PaperNERSCANLDiskMem  = 87
	PaperNERSCANLDiskDisk = 85
)

// Distribution shapes (see stats.Shape). Head exponents keep the measured
// minima (extreme outliers like the 2.1 bps transfer) without fabricating
// a fat population of absurdly slow transfers; the SLAC P90 anchor pins
// the 5–30 GB session range that Table IV's percentages depend on.
var (
	throughputShape  = stats.Shape{HeadGamma: 0.10}
	slacSessionShape = stats.Shape{P90: 30000} // MB
)

// Host names used in the generated logs.
const (
	HostNCAR  = "gridftp.ncar.ucar.edu"
	HostNICS  = "dtn.nics.tennessee.edu"
	HostSLAC  = "dtn.slac.stanford.edu"
	HostBNL   = "dtn.bnl.gov"
	HostNERSC = "dtn01.nersc.gov"
	HostORNL  = "dtn.ccs.ornl.gov"
	HostANL   = "gridftp.anl.gov"
)
