package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gftpvc/internal/stats"
)

// SessionPlan fixes how many transfers each generated session contains.
// The allocator reproduces a dataset's Table III row exactly: total
// transfers, total sessions, single-transfer sessions, the largest
// session's fan-out, and the number of sessions with ≥100 transfers.
type SessionPlan struct {
	Counts []int
}

// PlanSpec is the Table III row to honor, plus optional reserved session
// sizes (special populations such as the SLAC–BNL night-spike batch).
type PlanSpec struct {
	Transfers    int
	Sessions     int
	Singles      int
	MaxTransfers int
	Over100      int
	// Reserved fan-outs are placed as dedicated sessions (each must be in
	// [100, MaxTransfers) and counts toward Over100).
	Reserved []int
	// AbsorbOverflow lets the largest session grow beyond MaxTransfers to
	// absorb otherwise unplaceable transfers. Scaled-down specs need this;
	// the full-size paper specs never do.
	AbsorbOverflow bool
}

// BuildSessionPlan deterministically allocates per-session transfer counts
// matching the spec. The large-session counts are log-spaced between 100
// and the maximum (session fan-out is heavy-tailed in the real logs);
// leftovers spill into the small sessions (capped at 99) and then back
// into the large ones.
func BuildSessionPlan(spec PlanSpec) (*SessionPlan, error) {
	multi := spec.Sessions - spec.Singles
	if spec.Transfers < 1 || spec.Sessions < 1 || spec.Singles < 0 || multi < 0 {
		return nil, errors.New("workload: invalid plan spec")
	}
	if spec.Over100 > multi || spec.Over100 < 1 {
		return nil, errors.New("workload: Over100 must be in [1, multi-session count]")
	}
	if spec.MaxTransfers < 100 {
		return nil, errors.New("workload: MaxTransfers must be >= 100")
	}
	if len(spec.Reserved) > spec.Over100-1 {
		return nil, errors.New("workload: too many reserved sessions")
	}
	for _, r := range spec.Reserved {
		if r < 100 || r >= spec.MaxTransfers {
			return nil, fmt.Errorf("workload: reserved count %d outside [100, max)", r)
		}
	}
	budget := spec.Transfers - spec.Singles
	nBig := spec.Over100
	nSmall := multi - nBig
	if nSmall < 0 {
		return nil, errors.New("workload: more big sessions than multi sessions")
	}

	bigs := make([]int, 0, nBig)
	bigs = append(bigs, spec.MaxTransfers)
	bigs = append(bigs, spec.Reserved...)
	for len(bigs) < nBig {
		bigs = append(bigs, 100)
	}
	smalls := make([]int, nSmall)
	for i := range smalls {
		smalls[i] = 2
	}
	base := sum(bigs) + sum(smalls)
	leftover := budget - base
	if leftover < 0 {
		return nil, fmt.Errorf("workload: plan infeasible, base %d exceeds budget %d", base, budget)
	}
	// Fill the big sessions first (fan-out is heavy-tailed: most transfers
	// belong to a few huge directory-tree sessions), capped just below the
	// maximum so it stays unique; the residue trickles into the small
	// sessions (cap 99).
	grow := bigs[1+len(spec.Reserved):]
	leftover = fillWeighted(grow, leftover, spec.MaxTransfers-1)
	leftover = fillWeighted(smalls, leftover, 99)
	if leftover != 0 {
		if !spec.AbsorbOverflow {
			return nil, fmt.Errorf("workload: %d transfers could not be placed", leftover)
		}
		bigs[0] += leftover
	}
	counts := make([]int, 0, spec.Sessions)
	for i := 0; i < spec.Singles; i++ {
		counts = append(counts, 1)
	}
	counts = append(counts, smalls...)
	counts = append(counts, bigs...)
	return &SessionPlan{Counts: counts}, nil
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// fillWeighted distributes extra transfers over items with log-spaced
// weights, respecting the per-item cap. It returns the undistributed
// remainder.
func fillWeighted(items []int, extra, cap int) int {
	if len(items) == 0 || extra <= 0 {
		return extra
	}
	weights := make([]float64, len(items))
	totalW := 0.0
	for i := range weights {
		// Exponential decay across the slice: early items absorb more.
		weights[i] = math.Exp(-3 * float64(i) / float64(len(items)))
		totalW += weights[i]
	}
	for i := range items {
		if extra <= 0 {
			break
		}
		add := int(math.Round(float64(extra) * weights[i] / totalW))
		if add > extra {
			add = extra
		}
		if items[i]+add > cap {
			add = cap - items[i]
		}
		items[i] += add
		extra -= add
	}
	// Second pass: linear fill for rounding residue.
	for i := range items {
		if extra <= 0 {
			break
		}
		room := cap - items[i]
		if room <= 0 {
			continue
		}
		add := room
		if add > extra {
			add = extra
		}
		items[i] += add
		extra -= add
	}
	return extra
}

// Verify checks a plan against its spec; generators call it defensively.
func (p *SessionPlan) Verify(spec PlanSpec) error {
	if len(p.Counts) != spec.Sessions {
		return fmt.Errorf("workload: %d sessions, want %d", len(p.Counts), spec.Sessions)
	}
	if got := sum(p.Counts); got != spec.Transfers {
		return fmt.Errorf("workload: %d transfers, want %d", got, spec.Transfers)
	}
	singles, over100, max := 0, 0, 0
	for _, c := range p.Counts {
		if c == 1 {
			singles++
		}
		if c >= 100 {
			over100++
		}
		if c > max {
			max = c
		}
	}
	if singles != spec.Singles {
		return fmt.Errorf("workload: %d singles, want %d", singles, spec.Singles)
	}
	if over100 != spec.Over100 {
		return fmt.Errorf("workload: %d sessions >= 100 transfers, want %d", over100, spec.Over100)
	}
	if max != spec.MaxTransfers {
		return fmt.Errorf("workload: max fan-out %d, want %d", max, spec.MaxTransfers)
	}
	return nil
}

// pairSizesWithCounts draws one size per session from the sampler and
// pairs larger sizes with larger fan-outs (rank correlation with noise):
// a 20k-transfer session is a big directory tree, not a single file.
func pairSizesWithCounts(rng *rand.Rand, sampler *stats.QuantileSampler, counts []int) []float64 {
	n := len(counts)
	sizes := sampler.SampleN(rng, n)
	sort.Float64s(sizes)
	// Rank the counts; add noise so the pairing is correlated, not exact.
	type ranked struct {
		idx int
		key float64
	}
	rs := make([]ranked, n)
	for i, c := range counts {
		rs[i] = ranked{idx: i, key: float64(c) * math.Exp(0.5*rng.NormFloat64())}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].key < rs[j].key })
	out := make([]float64, n)
	for rank, r := range rs {
		out[r.idx] = sizes[rank]
	}
	return out
}

// sizeRanks returns each value's normalized rank in [0,1] (0 = smallest).
// Generators use ranks to condition per-transfer rates on session size:
// the multi-terabyte sessions in the real logs ran at high effective
// rates (the paper's 12 TB session averaged 1.06 Gbps), so rate and size
// cannot be sampled independently without sessions sprawling for weeks.
func sizeRanks(sizes []float64) []float64 {
	n := len(sizes)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return sizes[idx[a]] < sizes[idx[b]] })
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	for rank, i := range idx {
		out[i] = float64(rank) / float64(n-1)
	}
	return out
}

// splitSession divides a session's total size (bytes) into per-transfer
// sizes with log-normal jitter, preserving the exact total and keeping
// every piece at least one byte.
func splitSession(rng *rand.Rand, totalBytes float64, n int) []float64 {
	if n == 1 {
		return []float64{totalBytes}
	}
	weights := make([]float64, n)
	wsum := 0.0
	for i := range weights {
		weights[i] = math.Exp(0.8 * rng.NormFloat64())
		wsum += weights[i]
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Max(1, totalBytes*weights[i]/wsum)
	}
	return out
}
