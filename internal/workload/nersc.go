package workload

import (
	"math/rand"
	"time"

	"gftpvc/internal/hostmodel"
	"gftpvc/internal/stats"
	"gftpvc/internal/usagestats"
)

// NERSCORNL32G generates the 145 32 GB NERSC–ORNL administration-run test
// transfers of September 2010 (Table V, Fig 6): 8 parallel streams, one
// stripe, started at either 2 AM or 8 AM, with throughput matched to the
// paper's summary (Min 758 Mbps, Max 3.64 Gbps, IQR 695 Mbps). The
// records are anonymized — the remote IP is absent, the property that
// blocked session analysis on the real NERSC logs.
func NERSCORNL32G(seed int64) []usagestats.Record {
	rng := rand.New(rand.NewSource(seed))
	sampler := stats.MustQuantileSampler(PaperNERSCORNLThroughputMbps)
	records := make([]usagestats.Record, 0, PaperNERSCORNLTransfers)
	day := time.Date(2010, 9, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < PaperNERSCORNLTransfers; i++ {
		hour := 8
		thr := sampler.Sample(rng)
		if i%2 == 0 {
			hour = 2
			// Fig 6: "Some of the transfers at 2 AM appear to have
			// received higher levels of throughput, but there is
			// significant variance within each set."
			thr *= 1.08
			if thr > PaperNERSCORNLThroughputMbps.Max {
				thr = PaperNERSCORNLThroughputMbps.Max
			}
		}
		// Five test transfers per day in 2 AM / 8 AM slots, spaced at
		// least 11 minutes apart — administrative cron jobs run one at a
		// time, and the longest possible transfer (32 GB at the 758 Mbps
		// Table V minimum) lasts under six minutes.
		start := day.AddDate(0, 0, i/5).Add(time.Duration(hour) * time.Hour).
			Add(time.Duration(i%5) * 11 * time.Minute).
			Add(time.Duration(rng.Float64() * float64(4*time.Minute)))
		// Nominally 32 GB with ±25% spread. Byte-identical sizes would
		// make the Table XI correlations (GridFTP bytes vs link bytes)
		// undefined, and a spread much smaller than Eq. 1's edge-bin
		// proration error (±1–2 GB at these rates) could not produce the
		// high correlations the paper reports — including within
		// throughput quartiles, which surprised the authors.
		size := PaperNERSCORNL32GBytes + int64((rng.Float64()-0.5)*0.50*float64(PaperNERSCORNL32GBytes))
		dur := float64(size) * 8 / (thr * 1e6)
		records = append(records, usagestats.Record{
			Type:        usagestats.Retrieve,
			SizeBytes:   size,
			Start:       start,
			DurationSec: dur,
			ServerHost:  HostNERSC,
			RemoteHost:  "", // anonymized, as in the real NERSC logs
			Streams:     8,
			Stripes:     1,
			BufferBytes: 4 << 20,
			BlockBytes:  256 << 10,
		})
	}
	usagestats.SortByStart(records)
	return records
}

// ANLTransfer is one NERSC–ANL test transfer with its endpoint category
// and, after simulation, its concurrency trace (for Eq. 2 / Figs 7–8).
type ANLTransfer struct {
	Src, Dst hostmodel.EndpointKind
	Record   usagestats.Record
	Sim      *hostmodel.Transfer
}

// Category renders "mem-mem", "mem-disk", etc.
func (t ANLTransfer) Category() string { return t.Src.String() + "-" + t.Dst.String() }

// NERSCANLRates models the NERSC DTN: memory endpoints move ~0.9 Gbps per
// transfer, the disk subsystem (the Fig 1 bottleneck, on the write side)
// less; the server sustains R ≈ 2.19 Gbps aggregate — the 90th-percentile
// value the paper plugs into Eq. 2.
var NERSCANLRates = hostmodel.Rates{
	MemoryBps:    1.0e9,
	DiskReadBps:  0.85e9,
	DiskWriteBps: 0.62e9,
	AggregateBps: 2.19e9,
}

// NERSCANL generates the 334 ANL→NERSC test transfers (84 mem-mem, 78
// mem-disk, 87 disk-mem, 85 disk-disk) by simulating the NERSC server's
// concurrency: arrivals come in bursts so transfers overlap, each
// transfer's per-category rate cap carries log-normal run-to-run noise
// (Table VI's ~31–36% CVs), and the shared aggregate R throttles
// concurrent bursts. The returned transfers carry their concurrency
// traces for the Eq. 2 analysis.
func NERSCANL(seed int64) ([]ANLTransfer, error) {
	rng := rand.New(rand.NewSource(seed))
	type spec struct {
		src, dst hostmodel.EndpointKind
		count    int
	}
	specs := []spec{
		{hostmodel.Memory, hostmodel.Memory, PaperNERSCANLMemMem},
		{hostmodel.Memory, hostmodel.Disk, PaperNERSCANLMemDisk},
		{hostmodel.Disk, hostmodel.Memory, PaperNERSCANLDiskMem},
		{hostmodel.Disk, hostmodel.Disk, PaperNERSCANLDiskDisk},
	}
	var all []ANLTransfer
	for _, sp := range specs {
		for i := 0; i < sp.count; i++ {
			all = append(all, ANLTransfer{Src: sp.src, Dst: sp.dst})
		}
	}
	// Shuffle so categories interleave in time, then schedule in bursts of
	// two to four with short intra-burst offsets: overlap creates the
	// concurrency intervals of Fig 7, but the aggregate R must not throttle
	// every transfer or the per-category medians (Table VI) wash out.
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	sims := make([]*hostmodel.Transfer, len(all))
	cursor := 0.0
	inBurst := 0
	burstLen := 2
	for i := range all {
		if inBurst >= burstLen {
			cursor += 150 + rng.Float64()*200
			inBurst = 0
			// Bursts of 2-4 concurrent transfers: contention for the
			// shared aggregate R is the dominant variance source — the
			// paper's finding (v) — which is what makes the Eq. 2
			// predictor correlate at ρ ≈ 0.88 (Fig 8). Per-transfer
			// noise (gsd 1.24) adds the residual spread behind Table
			// VI's coefficients of variation.
			switch r := rng.Float64(); {
			case r < 0.3:
				burstLen = 2
			case r < 0.7:
				burstLen = 3
			default:
				burstLen = 4
			}
		}
		inBurst++
		capBps := hostmodel.NoisyCap(rng, NERSCANLRates.PerTransferCap(all[i].Src, all[i].Dst), 1.24)
		sims[i] = &hostmodel.Transfer{
			StartSec:  cursor + rng.Float64()*15,
			SizeBytes: 8e9, // 8 GB test payloads
			CapBps:    capBps,
		}
		all[i].Sim = sims[i]
	}
	server := hostmodel.Server{AggregateBps: NERSCANLRates.AggregateBps}
	if err := server.Simulate(sims); err != nil {
		return nil, err
	}
	base := time.Date(2012, 3, 4, 0, 0, 0, 0, time.UTC)
	for i := range all {
		sim := all[i].Sim
		dst := usagestats.Store // files move ANL -> NERSC
		all[i].Record = usagestats.Record{
			Type:        dst,
			SizeBytes:   int64(sim.SizeBytes),
			Start:       base.Add(time.Duration(sim.StartSec * float64(time.Second))),
			DurationSec: sim.EndSec - sim.StartSec,
			ServerHost:  HostNERSC,
			RemoteHost:  HostANL,
			Streams:     8,
			Stripes:     1,
			BufferBytes: 4 << 20,
			BlockBytes:  256 << 10,
		}
	}
	return all, nil
}

// ANLCategoryThroughputs groups throughputs (Mbps) by endpoint category,
// the Table VI / Fig 1 partition.
func ANLCategoryThroughputs(ts []ANLTransfer) map[string][]float64 {
	out := make(map[string][]float64)
	for _, t := range ts {
		out[t.Category()] = append(out[t.Category()], t.Record.ThroughputMbps())
	}
	return out
}

// ANLMemToMem filters the memory-to-memory transfers, the subset the
// paper's Eq. 2 analysis (Fig 8) uses.
func ANLMemToMem(ts []ANLTransfer) []ANLTransfer {
	var out []ANLTransfer
	for _, t := range ts {
		if t.Src == hostmodel.Memory && t.Dst == hostmodel.Memory {
			out = append(out, t)
		}
	}
	return out
}
