package workload

import (
	"math"
	"testing"
	"time"

	"gftpvc/internal/sessions"
	"gftpvc/internal/stats"
)

func TestBuildSessionPlanNCAR(t *testing.T) {
	spec := PlanSpec{
		Transfers:    PaperNCARNICSTransfers,
		Sessions:     PaperNCARNICSSessionsG1,
		Singles:      PaperNCARNICSSingleG1,
		MaxTransfers: PaperNCARNICSMaxSessionTransfers,
		Over100:      PaperNCARNICSSessionsOver100,
	}
	plan, err := BuildSessionPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(spec); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSessionPlanSLAC(t *testing.T) {
	spec := PlanSpec{
		Transfers:    PaperSLACBNLTransfers,
		Sessions:     PaperSLACBNLSessionsG1,
		Singles:      PaperSLACBNLSingleG1,
		MaxTransfers: PaperSLACBNLMaxSessionTransfers,
		Over100:      PaperSLACBNLSessionsOver100,
		Reserved:     []int{slacNightSpikeCount, slacBinSpikeCount},
	}
	plan, err := BuildSessionPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(spec); err != nil {
		t.Fatal(err)
	}
	// Both reserved sessions must be present.
	found := map[int]bool{}
	for _, c := range plan.Counts {
		found[c] = true
	}
	if !found[slacNightSpikeCount] || !found[slacBinSpikeCount] {
		t.Error("reserved sessions missing from plan")
	}
}

func TestBuildSessionPlanValidation(t *testing.T) {
	bad := []PlanSpec{
		{Transfers: 0, Sessions: 1, Over100: 1, MaxTransfers: 100},
		{Transfers: 10, Sessions: 2, Singles: 3, Over100: 1, MaxTransfers: 100},
		{Transfers: 1000, Sessions: 5, Singles: 1, Over100: 9, MaxTransfers: 100},
		{Transfers: 1000, Sessions: 5, Singles: 1, Over100: 1, MaxTransfers: 50},
		{Transfers: 200, Sessions: 3, Singles: 1, Over100: 1, MaxTransfers: 150,
			Reserved: []int{120}}, // too many reserved for Over100=1
	}
	for i, spec := range bad {
		if _, err := BuildSessionPlan(spec); err == nil {
			t.Errorf("case %d should fail: %+v", i, spec)
		}
	}
}

func TestNCARNICSScaledShape(t *testing.T) {
	ds, err := NCARNICS(Options{Seed: 1, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) != ds.Spec.Transfers {
		t.Fatalf("records = %d, spec = %d", len(ds.Records), ds.Spec.Transfers)
	}
	// Group back at g=1min and recover the planned session structure.
	ss, err := sessions.Group(ds.Records, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != ds.Spec.Sessions {
		t.Errorf("regrouped %d sessions, plan had %d", len(ss), ds.Spec.Sessions)
	}
	st := sessions.Summarize(ss)
	if st.SingleTransfer != ds.Spec.Singles {
		t.Errorf("singles = %d, want %d", st.SingleTransfer, ds.Spec.Singles)
	}
	if st.MaxTransfers != ds.Spec.MaxTransfers {
		t.Errorf("max fan-out = %d, want %d", st.MaxTransfers, ds.Spec.MaxTransfers)
	}
}

func TestNCARNICSDeterministic(t *testing.T) {
	a, err := NCARNICS(Options{Seed: 7, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NCARNICS(Options{Seed: 7, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatal("nondeterministic record count")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs between runs", i)
		}
	}
}

func TestNCARNICSGZeroShatters(t *testing.T) {
	ds, err := NCARNICS(Options{Seed: 2, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	g0, err := sessions.Group(ds.Records, 0)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := sessions.Group(ds.Records, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Table III: g = 0 produces far more sessions (tens of thousands of
	// singletons in the full dataset).
	if len(g0) < 5*len(g1) {
		t.Errorf("g=0 sessions = %d, g=1min = %d; want strong shattering", len(g0), len(g1))
	}
}

func TestSLACBNLScaledShape(t *testing.T) {
	ds, err := SLACBNL(Options{Seed: 1, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) != ds.Spec.Transfers {
		t.Fatalf("records = %d, spec = %d", len(ds.Records), ds.Spec.Transfers)
	}
	ss, err := sessions.Group(ds.Records, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != ds.Spec.Sessions {
		t.Errorf("regrouped %d sessions, plan had %d", len(ss), ds.Spec.Sessions)
	}
	// Stream mix near the paper's 84.6% multi-stream share.
	multi := 0
	for _, r := range ds.Records {
		if r.Streams > 1 {
			multi++
		}
	}
	share := float64(multi) / float64(len(ds.Records))
	if math.Abs(share-PaperSLACBNLMultiStreamShare) > 0.08 {
		t.Errorf("multi-stream share = %v, want ~%v", share, PaperSLACBNLMultiStreamShare)
	}
}

func TestSLACBNLThroughputBounded(t *testing.T) {
	ds, err := SLACBNL(Options{Seed: 3, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Records {
		thr := r.ThroughputMbps()
		if thr <= 0 || thr > 2700 {
			t.Fatalf("throughput %v Mbps out of range for record %+v", thr, r)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NCARNICS(Options{Scale: -1}); err == nil {
		t.Error("negative scale should fail")
	}
	if _, err := SLACBNL(Options{Scale: 2}); err == nil {
		t.Error("scale > 1 should fail")
	}
}

func TestNERSCORNL32G(t *testing.T) {
	records := NERSCORNL32G(5)
	if len(records) != PaperNERSCORNLTransfers {
		t.Fatalf("records = %d, want %d", len(records), PaperNERSCORNLTransfers)
	}
	var ths []float64
	sawVariation := false
	for _, r := range records {
		if d := math.Abs(float64(r.SizeBytes-PaperNERSCORNL32GBytes)) / float64(PaperNERSCORNL32GBytes); d > 0.25 {
			t.Fatalf("size = %d, want within 25%% of 32 GB", r.SizeBytes)
		}
		if r.SizeBytes != PaperNERSCORNL32GBytes {
			sawVariation = true
		}
		if r.RemoteHost != "" {
			t.Fatal("NERSC records must be anonymized")
		}
		if r.Streams != 8 || r.Stripes != 1 {
			t.Fatalf("streams/stripes = %d/%d, want 8/1", r.Streams, r.Stripes)
		}
		h := r.Start.Hour()
		if h != 2 && h != 8 {
			t.Fatalf("start hour = %d, want 2 or 8", h)
		}
		ths = append(ths, r.ThroughputMbps())
	}
	s := stats.MustSummarize(ths)
	if s.Min < 700 || s.Max > 3700 {
		t.Errorf("throughput range [%v, %v] outside Table V bounds", s.Min, s.Max)
	}
	iqr := s.IQR()
	if iqr < 400 || iqr > 1000 {
		t.Errorf("IQR = %v, want near the paper's 695 Mbps", iqr)
	}
	if !sawVariation {
		t.Error("sizes should vary slightly (Table XI correlations need variance)")
	}
}

func TestNERSCANL(t *testing.T) {
	ts, err := NERSCANL(5)
	if err != nil {
		t.Fatal(err)
	}
	want := PaperNERSCANLMemMem + PaperNERSCANLMemDisk + PaperNERSCANLDiskMem + PaperNERSCANLDiskDisk
	if len(ts) != want {
		t.Fatalf("transfers = %d, want %d", len(ts), want)
	}
	cats := ANLCategoryThroughputs(ts)
	if len(cats) != 4 {
		t.Fatalf("categories = %d, want 4", len(cats))
	}
	med := func(name string) float64 {
		m, err := stats.Median(cats[name])
		if err != nil {
			t.Fatalf("median %s: %v", name, err)
		}
		return m
	}
	// Fig 1's ordering: the NERSC disk-write side is the bottleneck, so
	// *-disk categories have lower medians than *-mem.
	if !(med("mem-disk") < med("mem-mem") && med("disk-disk") < med("disk-mem")) {
		t.Errorf("disk-write bottleneck ordering violated: mm=%v md=%v dm=%v dd=%v",
			med("mem-mem"), med("mem-disk"), med("disk-mem"), med("disk-disk"))
	}
	// Table VI CVs are ~31-36%; accept a generous band.
	for name, ths := range cats {
		s := stats.MustSummarize(ths)
		if cv := s.CV(); cv < 0.12 || cv > 0.7 {
			t.Errorf("%s CV = %v, want within (0.12, 0.7)", name, cv)
		}
	}
	// Concurrency traces exist (Fig 7 needs them).
	sawConcurrency := false
	for _, tr := range ts {
		if tr.Sim == nil || len(tr.Sim.Intervals) == 0 {
			t.Fatal("missing simulation trace")
		}
		for _, iv := range tr.Sim.Intervals {
			if iv.Concurrent > 1 {
				sawConcurrency = true
			}
		}
	}
	if !sawConcurrency {
		t.Error("no concurrent intervals; Fig 7/8 need overlap")
	}
	if n := len(ANLMemToMem(ts)); n != PaperNERSCANLMemMem {
		t.Errorf("mem-mem subset = %d, want %d", n, PaperNERSCANLMemMem)
	}
}

func TestNCARLargeTransfers(t *testing.T) {
	t16, t4 := NCARLargeTransfers(11)
	if len(t16) != 1000 || len(t4) != 1280 {
		t.Fatalf("counts = %d/%d, want 1000/1280", len(t16), len(t4))
	}
	for _, tr := range t16 {
		if tr.SizeBytes < 16e9 || tr.SizeBytes >= 17e9 {
			t.Fatalf("16G size out of range: %v", tr.SizeBytes)
		}
	}
	// Table IX's shape: median throughput increases with stripe count.
	byStripes := map[int][]float64{}
	for _, tr := range append(t16, t4...) {
		byStripes[tr.Stripes] = append(byStripes[tr.Stripes], tr.ThroughputMbps)
	}
	m1, _ := stats.Median(byStripes[1])
	m2, _ := stats.Median(byStripes[2])
	m3, _ := stats.Median(byStripes[3])
	if !(m1 < m2 && m2 < m3) {
		t.Errorf("stripe medians not increasing: %v, %v, %v", m1, m2, m3)
	}
	// Table VIII's shape: years with more servers (2009) beat later years.
	y2009 := ThroughputsOf(FilterLarge(t16, func(l LargeTransfer) bool { return l.Year == 2009 }))
	y2011 := ThroughputsOf(FilterLarge(t16, func(l LargeTransfer) bool { return l.Year == 2011 }))
	med09, _ := stats.Median(y2009)
	med11, _ := stats.Median(y2011)
	if med09 <= med11 {
		t.Errorf("2009 median %v should exceed 2011 median %v", med09, med11)
	}
}

func TestFullScalePlansFeasible(t *testing.T) {
	// The full-size plans must build without growing MaxTransfers.
	for _, spec := range []PlanSpec{
		{
			Transfers: PaperNCARNICSTransfers, Sessions: PaperNCARNICSSessionsG1,
			Singles: PaperNCARNICSSingleG1, MaxTransfers: PaperNCARNICSMaxSessionTransfers,
			Over100: PaperNCARNICSSessionsOver100,
		},
		{
			Transfers: PaperSLACBNLTransfers, Sessions: PaperSLACBNLSessionsG1,
			Singles: PaperSLACBNLSingleG1, MaxTransfers: PaperSLACBNLMaxSessionTransfers,
			Over100:  PaperSLACBNLSessionsOver100,
			Reserved: []int{slacNightSpikeCount, slacBinSpikeCount},
		},
	} {
		plan, err := BuildSessionPlan(spec)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		if err := plan.Verify(spec); err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
	}
}
