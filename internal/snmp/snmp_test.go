package snmp

import (
	"math"
	"testing"

	"gftpvc/internal/netsim"
	"gftpvc/internal/simclock"
	"gftpvc/internal/topo"
)

func counterWith(bytes ...float64) *Counter {
	return &Counter{Link: "l", Origin: 0, BinSec: 30, Bytes: bytes}
}

func TestOverlapBytesWholeBins(t *testing.T) {
	c := counterWith(300, 600, 900)
	got, err := c.OverlapBytes(0, 90)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1800 {
		t.Errorf("OverlapBytes = %v, want 1800", got)
	}
}

func TestOverlapBytesPartialBins(t *testing.T) {
	// Eq. 1's proration: transfer spans [15, 75): half of bin 0, all of
	// bin 1, half of bin 2.
	c := counterWith(300, 600, 900)
	got, err := c.OverlapBytes(15, 75)
	if err != nil {
		t.Fatal(err)
	}
	want := 150.0 + 600 + 450
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("OverlapBytes = %v, want %v", got, want)
	}
}

func TestOverlapBytesWithinOneBin(t *testing.T) {
	c := counterWith(300)
	got, err := c.OverlapBytes(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100) > 1e-9 {
		t.Errorf("OverlapBytes = %v, want 100", got)
	}
}

func TestOverlapBytesErrors(t *testing.T) {
	c := counterWith(300, 600)
	if _, err := c.OverlapBytes(10, 10); err == nil {
		t.Error("empty interval should fail")
	}
	if _, err := c.OverlapBytes(-5, 10); err == nil {
		t.Error("before origin should fail")
	}
	if _, err := c.OverlapBytes(10, 1000); err == nil {
		t.Error("beyond collected range should fail")
	}
	bad := &Counter{BinSec: 0, Bytes: []float64{1}}
	if _, err := bad.OverlapBytes(0, 1); err == nil {
		t.Error("zero bin should fail")
	}
}

func TestAverageLoad(t *testing.T) {
	c := counterWith(300, 300)
	got, err := c.AverageLoadBps(0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-80) > 1e-9 { // 600 bytes over 60 s = 80 bps
		t.Errorf("AverageLoadBps = %v, want 80", got)
	}
}

func TestQuartileOf(t *testing.T) {
	obs := []TransferObs{
		{0, 10, 100}, {0, 10, 200}, {0, 10, 300}, {0, 10, 400},
		{0, 10, 500}, {0, 10, 600}, {0, 10, 700}, {0, 10, 800},
	}
	q := QuartileOf(obs)
	if q[0] != 0 || q[7] != 3 {
		t.Errorf("quartiles = %v", q)
	}
	counts := [4]int{}
	for _, v := range q {
		counts[v]++
	}
	for i, n := range counts {
		if n == 0 {
			t.Errorf("quartile %d empty: %v", i, q)
		}
	}
}

// buildSimWithPoller runs two foreground transfers plus light background
// traffic over a 3-node chain and collects SNMP bins.
func buildSimWithPoller(t *testing.T) (*Counter, []TransferObs) {
	t.Helper()
	eng := simclock.New()
	tp := topo.New()
	for _, id := range []topo.NodeID{"a", "b", "c"} {
		tp.AddNode(id, topo.Host)
	}
	tp.AddDuplex("a", "b", 10e9, 0.001)
	tp.AddDuplex("b", "c", 10e9, 0.001)
	nw := netsim.New(eng, tp)
	path, _ := tp.ShortestPath("a", "c")
	linkID := path[1].ID // b->c, the "backbone" hop

	p, err := NewPoller(nw, []topo.LinkID{linkID}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Background stream at 50 Mbps for the whole window.
	if _, err := nw.StartFlow(path, math.Inf(1), netsim.FlowOptions{RateCapBps: 50e6}); err != nil {
		t.Fatal(err)
	}
	var obs []TransferObs
	addTransfer := func(at simclock.Time, size float64, rate float64) {
		eng.MustAt(at, func() {
			f, err := nw.StartFlow(path, size, netsim.FlowOptions{
				RateCapBps: rate,
				OnDone: func(f *netsim.Flow, now simclock.Time) {
					obs = append(obs, TransferObs{
						StartSec: float64(f.Start()),
						DurSec:   f.DurationSec(),
						Bytes:    size,
					})
				},
			})
			if err != nil {
				t.Errorf("StartFlow: %v", err)
			}
			_ = f
		})
	}
	// Both transfers span many 30-second bins, as the paper's 32 GB test
	// transfers did; Eq. 1's proration error is small only in that regime.
	addTransfer(30, 40e9, 2e9)  // 160s at 2 Gbps
	addTransfer(400, 32e9, 1e9) // 256s at 1 Gbps
	eng.RunUntil(1200)
	return p.Counter(linkID), obs
}

func TestPollerBinsCaptureTraffic(t *testing.T) {
	c, obs := buildSimWithPoller(t)
	if len(obs) != 2 {
		t.Fatalf("got %d observations, want 2", len(obs))
	}
	if len(c.Bytes) < 39 {
		t.Fatalf("collected %d bins, want >= 39 over 1200s", len(c.Bytes))
	}
	// The Eq.1 estimate should land near the transfer's own bytes plus the
	// 50 Mbps background share; edge-bin proration bounds the error.
	for i, o := range obs {
		est, err := c.OverlapBytes(o.StartSec, o.StartSec+o.DurSec)
		if err != nil {
			t.Fatal(err)
		}
		want := o.Bytes + 50e6/8*o.DurSec
		if math.Abs(est-want)/want > 0.10 {
			t.Errorf("transfer %d: estimate %v, want within 10%% of %v", i, est, want)
		}
	}
}

func TestPollerValidation(t *testing.T) {
	eng := simclock.New()
	tp := topo.New()
	tp.AddNode("a", topo.Host)
	tp.AddNode("b", topo.Host)
	tp.AddDuplex("a", "b", 1e9, 0.001)
	nw := netsim.New(eng, tp)
	link := tp.Link("a", "b").ID
	if _, err := NewPoller(nil, []topo.LinkID{link}, 30); err == nil {
		t.Error("nil network should fail")
	}
	if _, err := NewPoller(nw, nil, 30); err == nil {
		t.Error("no links should fail")
	}
	if _, err := NewPoller(nw, []topo.LinkID{link}, 0); err == nil {
		t.Error("zero bin should fail")
	}
	if _, err := NewPoller(nw, []topo.LinkID{"bogus"}, 30); err == nil {
		t.Error("unknown link should fail")
	}
	p, err := NewPoller(nw, []topo.LinkID{link}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err == nil {
		t.Error("double start should fail")
	}
	p.Stop()
}

func TestCorrelationHighWhenTransfersDominate(t *testing.T) {
	// When GridFTP transfers dominate link bytes (light background), the
	// Table XI correlation over all transfers should be very high, and
	// the Table XII correlation (vs other traffic) low — the paper's
	// headline findings.
	eng := simclock.New()
	tp := topo.New()
	for _, id := range []topo.NodeID{"a", "b", "c"} {
		tp.AddNode(id, topo.Host)
	}
	tp.AddDuplex("a", "b", 10e9, 0.001)
	tp.AddDuplex("b", "c", 10e9, 0.001)
	nw := netsim.New(eng, tp)
	path, _ := tp.ShortestPath("a", "c")
	linkID := path[1].ID
	p, _ := NewPoller(nw, []topo.LinkID{linkID}, 30)
	p.Start()
	nw.StartFlow(path, math.Inf(1), netsim.FlowOptions{RateCapBps: 30e6})
	var obs []TransferObs
	sizes := []float64{1e9, 2e9, 4e9, 8e9, 16e9, 3e9, 6e9, 12e9}
	for i, size := range sizes {
		size := size
		eng.MustAt(simclock.Time(float64(i)*300), func() {
			nw.StartFlow(path, size, netsim.FlowOptions{
				RateCapBps: 1e9 + float64(i%4)*5e8,
				OnDone: func(f *netsim.Flow, _ simclock.Time) {
					obs = append(obs, TransferObs{
						StartSec: float64(f.Start()), DurSec: f.DurationSec(), Bytes: size,
					})
				},
			})
		})
	}
	eng.RunUntil(3000)
	c := p.Counter(linkID)
	rowTotal, err := c.CorrelateTotal(obs)
	if err != nil {
		t.Fatal(err)
	}
	if rowTotal.All < 0.95 {
		t.Errorf("Table XI 'All' correlation = %v, want > 0.95", rowTotal.All)
	}
	rowOther, err := c.CorrelateOther(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rowOther.All) > 0.6 {
		t.Errorf("Table XII 'All' correlation = %v, want near 0", rowOther.All)
	}
	// Table XIII: average loads well under capacity (lightly loaded).
	sum, err := c.LoadSummary(obs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Max > 10 {
		t.Errorf("max load %v Gbps exceeds capacity", sum.Max)
	}
	if sum.Max > 6 {
		t.Errorf("max load %v Gbps; links should be lightly loaded", sum.Max)
	}
}

func TestCorrelateErrors(t *testing.T) {
	c := counterWith(100, 100)
	if _, err := c.CorrelateTotal([]TransferObs{{0, 10, 1}}); err == nil {
		t.Error("single observation should fail")
	}
	if _, err := c.CorrelateTotal([]TransferObs{{0, 1e6, 1}, {0, 10, 2}}); err == nil {
		t.Error("out-of-range interval should fail")
	}
}
