// Package snmp reproduces the measurement channel of the paper's link-
// utilization analysis: per-interface byte counters collected on a fixed
// 30-second cadence (as ESnet configures its routers), the Eq. 1
// overlap-weighted estimate of bytes a link carried during one GridFTP
// transfer, and the per-quartile correlation analyses behind Tables
// XI–XIII.
package snmp

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"gftpvc/internal/netsim"
	"gftpvc/internal/simclock"
	"gftpvc/internal/stats"
	"gftpvc/internal/topo"
)

// DefaultBinSec is ESnet's SNMP collection interval.
const DefaultBinSec = 30.0

// Counter is one interface's byte-count series: Bytes[i] is the bytes
// carried during [Origin + i·BinSec, Origin + (i+1)·BinSec).
type Counter struct {
	Link   topo.LinkID
	Origin float64
	BinSec float64
	Bytes  []float64
}

// binRange returns the indices of bins overlapping [startSec, endSec).
func (c *Counter) binRange(startSec, endSec float64) (int, int, error) {
	if c.BinSec <= 0 {
		return 0, 0, errors.New("snmp: non-positive bin size")
	}
	if endSec <= startSec {
		return 0, 0, errors.New("snmp: empty interval")
	}
	first := int((startSec - c.Origin) / c.BinSec)
	// endSec is exclusive: an interval ending exactly on a bin boundary
	// does not touch the next bin. The epsilon absorbs float rounding in
	// endpoints computed as bin multiples (k*0.05/0.05 can exceed k),
	// which would otherwise push a boundary into a nonexistent bin.
	last := int(math.Ceil((endSec-c.Origin)/c.BinSec-1e-9)) - 1
	if startSec < c.Origin || last >= len(c.Bytes) {
		return 0, 0, fmt.Errorf("snmp: interval [%v,%v) outside collected range", startSec, endSec)
	}
	return first, last, nil
}

// OverlapBytes implements Eq. 1: the estimated number of bytes the link
// carried during [startSec, endSec), prorating the first and last SNMP
// bins by their overlap with the interval.
func (c *Counter) OverlapBytes(startSec, endSec float64) (float64, error) {
	first, last, err := c.binRange(startSec, endSec)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for i := first; i <= last; i++ {
		binStart := c.Origin + float64(i)*c.BinSec
		binEnd := binStart + c.BinSec
		lo, hi := binStart, binEnd
		if startSec > lo {
			lo = startSec
		}
		if endSec < hi {
			hi = endSec
		}
		if hi <= lo {
			continue
		}
		total += c.Bytes[i] * (hi - lo) / c.BinSec
	}
	return total, nil
}

// AverageLoadBps returns the link's average load in bits/second over the
// interval (the Table XIII quantity B_i/D_i).
func (c *Counter) AverageLoadBps(startSec, endSec float64) (float64, error) {
	b, err := c.OverlapBytes(startSec, endSec)
	if err != nil {
		return 0, err
	}
	return b * 8 / (endSec - startSec), nil
}

// Poller samples a netsim network's link byte counters every BinSec of
// virtual time, producing one Counter per observed link.
type Poller struct {
	nw       *netsim.Network
	counters map[topo.LinkID]*Counter
	lastTot  map[topo.LinkID]float64
	binSec   float64
	ticker   *simclock.Ticker
}

// NewPoller creates a poller for the given links. Call Start before
// running the simulation; collection begins at the current virtual time.
func NewPoller(nw *netsim.Network, links []topo.LinkID, binSec float64) (*Poller, error) {
	if nw == nil {
		return nil, errors.New("snmp: nil network")
	}
	if binSec <= 0 {
		return nil, errors.New("snmp: bin size must be positive")
	}
	if len(links) == 0 {
		return nil, errors.New("snmp: no links to observe")
	}
	p := &Poller{
		nw:       nw,
		counters: make(map[topo.LinkID]*Counter, len(links)),
		lastTot:  make(map[topo.LinkID]float64, len(links)),
		binSec:   binSec,
	}
	origin := float64(nw.Engine().Now())
	for _, id := range links {
		if _, err := nw.LinkBytes(id); err != nil {
			return nil, err
		}
		p.counters[id] = &Counter{Link: id, Origin: origin, BinSec: binSec}
	}
	return p, nil
}

// Start schedules the 30-second collection ticks.
func (p *Poller) Start() error {
	if p.ticker != nil {
		return errors.New("snmp: poller already started")
	}
	// Seed the cumulative baselines at the origin.
	for id := range p.counters {
		tot, err := p.nw.LinkBytes(id)
		if err != nil {
			return err
		}
		p.lastTot[id] = tot
	}
	tk, err := simclock.Tick(p.nw.Engine(), simclock.Duration(p.binSec), func(simclock.Time) {
		p.sample()
	})
	if err != nil {
		return err
	}
	p.ticker = tk
	return nil
}

// Stop cancels collection.
func (p *Poller) Stop() {
	if p.ticker != nil {
		p.ticker.Cancel()
	}
}

func (p *Poller) sample() {
	// Deterministic order is irrelevant for appends, but keep it tidy.
	ids := make([]topo.LinkID, 0, len(p.counters))
	for id := range p.counters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		tot, err := p.nw.LinkBytes(id)
		if err != nil {
			continue
		}
		c := p.counters[id]
		c.Bytes = append(c.Bytes, tot-p.lastTot[id])
		p.lastTot[id] = tot
	}
}

// Counter returns the series for one link, or nil.
func (p *Poller) Counter(id topo.LinkID) *Counter { return p.counters[id] }

// TransferObs is one GridFTP transfer as the correlation analysis sees it:
// when it ran and how many bytes it moved.
type TransferObs struct {
	StartSec float64
	DurSec   float64
	Bytes    float64
}

// QuartileOf assigns each observation a throughput quartile 0..3 (the
// paper divides the 32 GB transfers "into four quartiles based on
// throughput").
func QuartileOf(obs []TransferObs) []int {
	ths := make([]float64, len(obs))
	for i, o := range obs {
		if o.DurSec > 0 {
			ths[i] = o.Bytes * 8 / o.DurSec
		}
	}
	q1, _ := stats.Quantile(ths, 0.25)
	q2, _ := stats.Quantile(ths, 0.50)
	q3, _ := stats.Quantile(ths, 0.75)
	out := make([]int, len(obs))
	for i, t := range ths {
		switch {
		case t <= q1:
			out[i] = 0
		case t <= q2:
			out[i] = 1
		case t <= q3:
			out[i] = 2
		default:
			out[i] = 3
		}
	}
	return out
}

// CorrelationRow holds one Table XI/XII column for a link: the correlation
// within each throughput quartile plus over all transfers.
type CorrelationRow struct {
	Link      topo.LinkID
	Quartiles [4]float64
	All       float64
}

// CorrelateTotal computes Table XI for one link: corr(GridFTP bytes, Bᵢ)
// per quartile and overall, where Bᵢ is the Eq. 1 estimate of total bytes
// the link carried during each transfer.
func (c *Counter) CorrelateTotal(obs []TransferObs) (CorrelationRow, error) {
	return c.correlate(obs, false)
}

// CorrelateOther computes Table XII for one link: corr(GridFTP bytes,
// Bᵢ − GridFTP bytes), the transfer against the *remaining* traffic.
func (c *Counter) CorrelateOther(obs []TransferObs) (CorrelationRow, error) {
	return c.correlate(obs, true)
}

func (c *Counter) correlate(obs []TransferObs, subtractSelf bool) (CorrelationRow, error) {
	row := CorrelationRow{Link: c.Link}
	if len(obs) < 2 {
		return row, errors.New("snmp: need at least two observations")
	}
	g := make([]float64, len(obs))
	b := make([]float64, len(obs))
	for i, o := range obs {
		g[i] = o.Bytes
		est, err := c.OverlapBytes(o.StartSec, o.StartSec+o.DurSec)
		if err != nil {
			return row, err
		}
		if subtractSelf {
			est -= o.Bytes
		}
		b[i] = est
	}
	quart := QuartileOf(obs)
	for q := 0; q < 4; q++ {
		var gq, bq []float64
		for i := range obs {
			if quart[i] == q {
				gq = append(gq, g[i])
				bq = append(bq, b[i])
			}
		}
		if len(gq) >= 2 {
			if r, err := stats.Pearson(gq, bq); err == nil {
				row.Quartiles[q] = r
			}
		}
	}
	all, err := stats.Pearson(g, b)
	if err != nil {
		return row, err
	}
	row.All = all
	return row, nil
}

// LoadSummary computes Table XIII for one link: the five-number summary of
// the link's average load (Gbps) across the observation windows.
func (c *Counter) LoadSummary(obs []TransferObs) (stats.Summary, error) {
	loads := make([]float64, 0, len(obs))
	for _, o := range obs {
		l, err := c.AverageLoadBps(o.StartSec, o.StartSec+o.DurSec)
		if err != nil {
			return stats.Summary{}, err
		}
		loads = append(loads, l/1e9)
	}
	return stats.Summarize(loads)
}
