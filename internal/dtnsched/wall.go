// Wall adapts the reservation calendar from the simulated clock to the
// wall clock, so a live dispatcher can use it as admission control: the
// paper's "schedule server resources prior to data transfers"
// recommendation, applied to transfers that start now rather than in a
// simulated trace.
package dtnsched

import (
	"time"

	"gftpvc/internal/simclock"
)

// Wall is a wall-clock view of a Scheduler: reservations are claimed
// "from now" for a duration, and expired bookings are pruned as time
// advances. It is safe for concurrent use (the underlying Scheduler
// serializes) and adds no state of its own beyond the epoch.
type Wall struct {
	s     *Scheduler
	epoch time.Time
	// now is injectable for tests; defaults to time.Now.
	now func() time.Time
}

// NewWall wraps a fresh wall-clock calendar around capacityBps.
func NewWall(capacityBps float64) (*Wall, error) {
	s, err := New(capacityBps)
	if err != nil {
		return nil, err
	}
	return &Wall{s: s, epoch: time.Now(), now: time.Now}, nil
}

// NewWallAt is NewWall with an injected clock, for deterministic tests.
func NewWallAt(capacityBps float64, now func() time.Time) (*Wall, error) {
	w, err := NewWall(capacityBps)
	if err != nil {
		return nil, err
	}
	w.epoch = now()
	w.now = now
	return w, nil
}

// Capacity returns the calendar's aggregate capacity.
func (w *Wall) Capacity() float64 { return w.s.Capacity() }

// at maps a wall instant onto the calendar's simulated timeline.
func (w *Wall) at(t time.Time) simclock.Time {
	return simclock.Time(t.Sub(w.epoch).Seconds())
}

// AvailableNow returns the capacity guaranteed free for the next dur.
func (w *Wall) AvailableNow(dur time.Duration) float64 {
	if dur <= 0 {
		return 0
	}
	now := w.at(w.now())
	w.s.Prune(now)
	avail, err := w.s.Available(now, now.Add(simclock.Duration(dur.Seconds())))
	if err != nil {
		return 0
	}
	return avail
}

// ReserveNow claims rateBps for the next dur, starting immediately.
// Unlike the simulated calendar there is no queueing into the future —
// a live job starts now or places elsewhere — so the claim fails when
// the next dur lacks headroom.
func (w *Wall) ReserveNow(rateBps float64, dur time.Duration) (Reservation, error) {
	now := w.at(w.now())
	w.s.Prune(now)
	return w.s.Reserve(rateBps, now, now.Add(simclock.Duration(dur.Seconds())))
}

// Release frees a claim. It is idempotent.
func (w *Wall) Release(id ReservationID) { w.s.Release(id) }

// Claims returns the number of live (unexpired, unreleased) claims.
func (w *Wall) Claims() int {
	w.s.Prune(w.at(w.now()))
	return w.s.Reservations()
}
