// Concurrency and boundary suite for the reservation calendar — the
// pins the fleet layer needs before leaning on it with wall-clock time:
// half-open interval semantics at exact booking edges, earliest-slot
// placement with notBefore inside a booking, Reserve/Release churn
// under the race detector, and the wall-clock adapter's prune-as-time-
// advances behavior.
package dtnsched

import (
	"sync"
	"testing"
	"time"

	"gftpvc/internal/simclock"
)

func mustReserve(t *testing.T, s *Scheduler, rate float64, start, end simclock.Time) Reservation {
	t.Helper()
	r, err := s.Reserve(rate, start, end)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func availOf(t *testing.T, s *Scheduler, start, end simclock.Time) float64 {
	t.Helper()
	a, err := s.Available(start, end)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestAvailableAtBookingEdges pins the half-open [start, end) contract:
// a booking ending exactly where the queried interval starts (b.end ==
// start), or starting exactly where it ends (b.start == end), must not
// constrain it at all — capacity frees at the instant a booking ends
// and is taken at the instant one begins.
func TestAvailableAtBookingEdges(t *testing.T) {
	s, err := New(1000)
	if err != nil {
		t.Fatal(err)
	}
	mustReserve(t, s, 600, 10, 20)
	if a := availOf(t, s, 20, 30); a != 1000 {
		t.Errorf("b.end == start: Available(20,30) = %.0f, want 1000", a)
	}
	if a := availOf(t, s, 0, 10); a != 1000 {
		t.Errorf("b.start == end: Available(0,10) = %.0f, want 1000", a)
	}
	// One instant inside either edge the booking must bind.
	if a := availOf(t, s, 19, 20); a != 400 {
		t.Errorf("Available(19,20) = %.0f, want 400", a)
	}
	if a := availOf(t, s, 10, 11); a != 400 {
		t.Errorf("Available(10,11) = %.0f, want 400", a)
	}
	// And a back-to-back reservation at full remaining rate must admit
	// on both sides of the booking.
	if _, err := s.Reserve(1000, 20, 25); err != nil {
		t.Errorf("back-to-back reserve at b.end refused: %v", err)
	}
	if _, err := s.Reserve(1000, 5, 10); err != nil {
		t.Errorf("back-to-back reserve at b.start refused: %v", err)
	}
}

// TestReserveEarliestNotBeforeInsideBooking places notBefore in the
// middle of a saturating booking: the earliest feasible start is the
// booking's end, not notBefore (headroom there is too small) and not
// zero (the request must not travel back before notBefore).
func TestReserveEarliestNotBeforeInsideBooking(t *testing.T) {
	s, err := New(1000)
	if err != nil {
		t.Fatal(err)
	}
	mustReserve(t, s, 800, 0, 100)
	r, err := s.ReserveEarliest(500, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r.Start != 100 || r.End != 110 {
		t.Errorf("placed at [%v,%v), want [100,110)", r.Start, r.End)
	}
	// A request that does fit under the booking must start exactly at
	// notBefore, inside the booking.
	r2, err := s.ReserveEarliest(200, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Start != 50 {
		t.Errorf("fitting request placed at %v, want notBefore (50)", r2.Start)
	}
}

// TestConcurrentReserveReleaseChurn hammers the calendar from many
// goroutines under -race: admission must never oversubscribe an
// instant, and after all claims release the calendar must drain to
// empty, full capacity.
func TestConcurrentReserveReleaseChurn(t *testing.T) {
	const (
		capacity = 1000
		rate     = 100
		workers  = 16
		iters    = 50
	)
	s, err := New(capacity)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r, err := s.Reserve(rate, 0, 10)
				if err != nil {
					// Headroom race lost: legal under churn.
					continue
				}
				if a := availOf(t, s, 0, 10); a < 0 {
					t.Errorf("negative availability %f", a)
				}
				if w%2 == 0 {
					if _, err := s.ReserveEarliest(rate, 5, 0); err == nil {
						// Earliest placements release via Prune below.
						_ = err
					}
				}
				s.Release(r.ID)
				s.Release(r.ID) // idempotent under concurrency too
			}
		}(w)
	}
	wg.Wait()
	s.Prune(simclock.Time(1e18))
	if n := s.Reservations(); n != 0 {
		t.Fatalf("calendar did not drain: %d live bookings", n)
	}
	if a := availOf(t, s, 0, 10); a != capacity {
		t.Fatalf("drained calendar reports %.0f available, want %d", a, capacity)
	}
}

// TestPruneDropsOnlyExpired: bookings ending at or before the cutoff go,
// everything still binding stays.
func TestPruneDropsOnlyExpired(t *testing.T) {
	s, err := New(1000)
	if err != nil {
		t.Fatal(err)
	}
	mustReserve(t, s, 100, 0, 10)
	mustReserve(t, s, 100, 5, 20)
	live := mustReserve(t, s, 100, 15, 30)
	if n := s.Prune(10); n != 1 {
		t.Fatalf("Prune(10) dropped %d, want 1", n)
	}
	if n := s.Prune(20); n != 1 {
		t.Fatalf("Prune(20) dropped %d, want 1", n)
	}
	if s.Reservations() != 1 {
		t.Fatalf("want the [15,30) booking to survive, have %d", s.Reservations())
	}
	s.Release(live.ID)
	if s.Reservations() != 0 {
		t.Fatal("release after prune left a booking")
	}
}

// TestWallClockCalendar drives the wall-clock adapter with a fake
// clock: claims bind AvailableNow, expire as the clock advances (and
// are pruned), and release frees capacity immediately.
func TestWallClockCalendar(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	w, err := NewWallAt(1000, clock)
	if err != nil {
		t.Fatal(err)
	}
	if a := w.AvailableNow(10 * time.Second); a != 1000 {
		t.Fatalf("fresh calendar: AvailableNow = %.0f, want 1000", a)
	}
	r, err := w.ReserveNow(600, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a := w.AvailableNow(5 * time.Second); a != 400 {
		t.Fatalf("claimed calendar: AvailableNow = %.0f, want 400", a)
	}
	if _, err := w.ReserveNow(600, time.Second); err == nil {
		t.Fatal("oversubscribing ReserveNow admitted")
	}
	if w.Claims() != 1 {
		t.Fatalf("Claims = %d, want 1", w.Claims())
	}
	// The clock passes the claim's end: it stops binding and prunes.
	now = now.Add(11 * time.Second)
	if a := w.AvailableNow(10 * time.Second); a != 1000 {
		t.Fatalf("expired claim still binds: AvailableNow = %.0f", a)
	}
	if w.Claims() != 0 {
		t.Fatalf("expired claim not pruned: Claims = %d", w.Claims())
	}
	w.Release(r.ID) // idempotent on an expired claim
	// Release frees capacity before expiry.
	r2, err := w.ReserveNow(1000, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.ReserveNow(1, time.Second); err == nil {
		t.Fatal("saturated calendar admitted")
	}
	w.Release(r2.ID)
	if a := w.AvailableNow(time.Minute); a != 1000 {
		t.Fatalf("release did not free capacity: AvailableNow = %.0f", a)
	}
}

// TestWallZeroDuration: degenerate queries are refused, not admitted.
func TestWallZeroDuration(t *testing.T) {
	w, err := NewWall(1000)
	if err != nil {
		t.Fatal(err)
	}
	if a := w.AvailableNow(0); a != 0 {
		t.Fatalf("AvailableNow(0) = %.0f, want 0", a)
	}
	if _, err := w.ReserveNow(100, 0); err == nil {
		t.Fatal("ReserveNow with zero duration admitted")
	}
}
