package dtnsched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gftpvc/internal/simclock"
	"gftpvc/internal/stats"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative capacity should fail")
	}
}

func TestAvailableEmpty(t *testing.T) {
	s, _ := New(2e9)
	got, err := s.Available(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2e9 {
		t.Errorf("Available = %v, want 2e9", got)
	}
	if _, err := s.Available(5, 5); err == nil {
		t.Error("empty interval should fail")
	}
}

func TestReserveAndOverlap(t *testing.T) {
	s, _ := New(2e9)
	r1, err := s.Reserve(1.5e9, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reserve(1e9, 50, 150); err == nil {
		t.Fatal("overlapping overbooking should fail")
	}
	if _, err := s.Reserve(0.5e9, 50, 150); err != nil {
		t.Fatalf("fitting reservation rejected: %v", err)
	}
	s.Release(r1.ID)
	if _, err := s.Reserve(1.5e9, 0, 100); err != nil {
		t.Fatalf("post-release reservation rejected: %v", err)
	}
}

func TestReserveValidation(t *testing.T) {
	s, _ := New(2e9)
	if _, err := s.Reserve(0, 0, 1); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := s.Reserve(3e9, 0, 1); err == nil {
		t.Error("above-capacity rate should fail")
	}
	if _, err := s.Reserve(1e9, 1, 1); err == nil {
		t.Error("empty window should fail")
	}
}

func TestReserveEarliestImmediateWhenFree(t *testing.T) {
	s, _ := New(2e9)
	r, err := s.ReserveEarliest(1e9, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Start != 10 || r.End != 70 {
		t.Errorf("slot = [%v,%v), want [10,70)", r.Start, r.End)
	}
}

func TestReserveEarliestQueuesBehindLoad(t *testing.T) {
	s, _ := New(2e9)
	// Saturate [0, 100).
	if _, err := s.Reserve(2e9, 0, 100); err != nil {
		t.Fatal(err)
	}
	r, err := s.ReserveEarliest(1e9, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Start != 100 {
		t.Errorf("slot starts at %v, want 100 (after the saturating booking)", r.Start)
	}
}

func TestReserveEarliestPacksPartialHeadroom(t *testing.T) {
	s, _ := New(2e9)
	s.Reserve(1.5e9, 0, 100)
	// 0.5 Gbps fits alongside immediately.
	r, err := s.ReserveEarliest(0.5e9, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Start != 0 {
		t.Errorf("slot starts at %v, want 0", r.Start)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	s, _ := New(1e9)
	r, _ := s.Reserve(1e9, 0, 10)
	s.Release(r.ID)
	s.Release(r.ID)
	if s.Reservations() != 0 {
		t.Error("release did not clear")
	}
}

func TestScheduleTransfersZeroVariance(t *testing.T) {
	// The paper's counterfactual: the contended NERSC-ANL-style workload,
	// scheduled, runs every transfer at its reserved rate.
	s, _ := New(2.19e9)
	rng := rand.New(rand.NewSource(4))
	var reqs []TransferRequest
	for i := 0; i < 60; i++ {
		reqs = append(reqs, TransferRequest{
			At:        simclock.Time(float64(i) * 20),
			SizeBytes: 8e9,
			RateBps:   0.9e9,
		})
	}
	_ = rng
	out, err := s.ScheduleTransfers(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var ths, waits []float64
	for _, o := range out {
		ths = append(ths, o.ThroughputBps)
		waits = append(waits, o.WaitSec)
	}
	thr := stats.MustSummarize(ths)
	if thr.CV() != 0 {
		t.Errorf("scheduled throughput CV = %v, want 0", thr.CV())
	}
	// Scheduling trades variance for bounded wait; with demand above
	// capacity (0.9G every 20s = 71s service each, 2 concurrent fit),
	// some transfers must wait.
	ws := stats.MustSummarize(waits)
	if ws.Max == 0 {
		t.Error("expected nonzero waits under over-demand")
	}
}

func TestScheduleTransfersValidation(t *testing.T) {
	s, _ := New(1e9)
	if _, err := s.ScheduleTransfers([]TransferRequest{{SizeBytes: 0, RateBps: 1}}); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := s.ScheduleTransfers([]TransferRequest{{SizeBytes: 1, RateBps: 0}}); err == nil {
		t.Error("zero rate should fail")
	}
}

// Property: the calendar is never overbooked — at any sampled instant the
// sum of admitted rates is at most capacity.
func TestNeverOverbookedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cap := 1e9 + rng.Float64()*4e9
		s, err := New(cap)
		if err != nil {
			return false
		}
		type res struct{ start, end, rate float64 }
		var admitted []res
		for i := 0; i < 60; i++ {
			start := rng.Float64() * 1000
			end := start + 1 + rng.Float64()*300
			rate := rng.Float64() * cap * 0.8
			if rate <= 0 {
				continue
			}
			if _, err := s.Reserve(rate, simclock.Time(start), simclock.Time(end)); err == nil {
				admitted = append(admitted, res{start, end, rate})
			}
		}
		for probe := 0.0; probe < 1400; probe += 13 {
			sum := 0.0
			for _, r := range admitted {
				if r.start <= probe && probe < r.end {
					sum += r.rate
				}
			}
			if sum > cap*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: ReserveEarliest always returns a feasible slot at or after
// notBefore, and admitting it never violates capacity.
func TestReserveEarliestFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(2e9)
		if err != nil {
			return false
		}
		for i := 0; i < 40; i++ {
			notBefore := simclock.Time(rng.Float64() * 500)
			rate := 0.1e9 + rng.Float64()*1.9e9
			dur := 1 + rng.Float64()*100
			r, err := s.ReserveEarliest(rate, dur, notBefore)
			if err != nil {
				return false
			}
			if r.Start < notBefore {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
