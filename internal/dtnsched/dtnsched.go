// Package dtnsched implements the paper's concluding recommendation:
// "solutions to reduce throughput variance require scheduling of server
// resources prior to data transfers, not just network bandwidth." It is
// the data-transfer-node counterpart of the OSCARS bandwidth ledger: an
// admission-controlled reservation calendar over a DTN's aggregate
// capacity (the R of Eq. 2), with earliest-feasible-slot placement so
// transfers run at a guaranteed server rate instead of competing for it.
package dtnsched

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"gftpvc/internal/simclock"
)

// ReservationID identifies one admitted server-capacity claim.
type ReservationID int64

// Reservation is an admitted claim: rateBps of the server's aggregate
// capacity during [Start, End).
type Reservation struct {
	ID      ReservationID
	RateBps float64
	Start   simclock.Time
	End     simclock.Time
}

type booking struct {
	start, end simclock.Time
	rate       float64
	id         ReservationID
}

// Scheduler is a reservation calendar over one DTN's aggregate capacity.
// It is safe for concurrent use.
type Scheduler struct {
	capacity float64

	mu       sync.Mutex
	nextID   ReservationID
	bookings []booking
}

// New creates a scheduler for a server that sustains capacityBps across
// all concurrent transfers.
func New(capacityBps float64) (*Scheduler, error) {
	if capacityBps <= 0 {
		return nil, errors.New("dtnsched: capacity must be positive")
	}
	return &Scheduler{capacity: capacityBps}, nil
}

// Capacity returns the server's aggregate capacity.
func (s *Scheduler) Capacity() float64 { return s.capacity }

// Available returns the guaranteed-free capacity throughout [start, end).
func (s *Scheduler) Available(start, end simclock.Time) (float64, error) {
	if end <= start {
		return 0, errors.New("dtnsched: empty interval")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.availableLocked(start, end), nil
}

func (s *Scheduler) availableLocked(start, end simclock.Time) float64 {
	type edge struct {
		at    simclock.Time
		delta float64
	}
	var edges []edge
	for _, b := range s.bookings {
		if b.end <= start || b.start >= end {
			continue
		}
		lo, hi := b.start, b.end
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		edges = append(edges, edge{lo, b.rate}, edge{hi, -b.rate})
	}
	if len(edges) == 0 {
		return s.capacity
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta < edges[j].delta
	})
	cur, peak := 0.0, 0.0
	for _, e := range edges {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	avail := s.capacity - peak
	if avail < 0 {
		avail = 0
	}
	return avail
}

// Reserve admits a claim of rateBps during [start, end), or fails when
// the calendar lacks headroom.
func (s *Scheduler) Reserve(rateBps float64, start, end simclock.Time) (Reservation, error) {
	if rateBps <= 0 {
		return Reservation{}, errors.New("dtnsched: rate must be positive")
	}
	if rateBps > s.capacity {
		return Reservation{}, fmt.Errorf("dtnsched: rate %.0f exceeds capacity %.0f", rateBps, s.capacity)
	}
	if end <= start {
		return Reservation{}, errors.New("dtnsched: empty interval")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.availableLocked(start, end) < rateBps-1e-9 {
		return Reservation{}, fmt.Errorf("dtnsched: no headroom for %.0f bps in [%v,%v)", rateBps, start, end)
	}
	s.nextID++
	r := Reservation{ID: s.nextID, RateBps: rateBps, Start: start, End: end}
	s.bookings = append(s.bookings, booking{start: start, end: end, rate: rateBps, id: r.ID})
	return r, nil
}

// ReserveEarliest places a claim of rateBps for durationSec at the
// earliest feasible start at or after notBefore — the primitive a
// transfer tool calls before starting: "when can this server give me
// 1 Gbps for ten minutes?". Candidate starts are notBefore and the ends
// of existing bookings (capacity only frees at those instants).
func (s *Scheduler) ReserveEarliest(rateBps, durationSec float64, notBefore simclock.Time) (Reservation, error) {
	if rateBps <= 0 || durationSec <= 0 {
		return Reservation{}, errors.New("dtnsched: rate and duration must be positive")
	}
	if rateBps > s.capacity {
		return Reservation{}, fmt.Errorf("dtnsched: rate %.0f exceeds capacity %.0f", rateBps, s.capacity)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	candidates := []simclock.Time{notBefore}
	for _, b := range s.bookings {
		if b.end > notBefore {
			candidates = append(candidates, b.end)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	dur := simclock.Duration(durationSec)
	for _, at := range candidates {
		if s.availableLocked(at, at.Add(dur)) >= rateBps-1e-9 {
			s.nextID++
			r := Reservation{ID: s.nextID, RateBps: rateBps, Start: at, End: at.Add(dur)}
			s.bookings = append(s.bookings, booking{start: r.Start, end: r.End, rate: rateBps, id: r.ID})
			return r, nil
		}
	}
	// Unreachable: the slot after the last booking always has full
	// capacity, and the last booking's end is always a candidate.
	return Reservation{}, errors.New("dtnsched: no feasible slot")
}

// Release frees a reservation. It is idempotent.
func (s *Scheduler) Release(id ReservationID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.bookings[:0]
	for _, b := range s.bookings {
		if b.id != id {
			kept = append(kept, b)
		}
	}
	s.bookings = kept
}

// Reservations returns the number of live reservations.
func (s *Scheduler) Reservations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.bookings)
}

// Prune drops every booking that ended at or before cutoff, returning
// how many were dropped. A calendar driven by wall-clock time accretes
// expired bookings forever without it — they no longer constrain any
// present or future interval, but every Available sweep still walks
// them.
func (s *Scheduler) Prune(cutoff simclock.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.bookings[:0]
	for _, b := range s.bookings {
		if b.end > cutoff {
			kept = append(kept, b)
		}
	}
	dropped := len(s.bookings) - len(kept)
	s.bookings = kept
	return dropped
}

// ScheduledOutcome describes one transfer run under scheduling.
type ScheduledOutcome struct {
	Reservation Reservation
	// WaitSec is how long the transfer was delayed past its request time.
	WaitSec float64
	// ThroughputBps is the guaranteed (and therefore realized) rate.
	ThroughputBps float64
}

// ScheduleTransfers places a batch of transfer requests
// (request time, size, desired rate) on the calendar with
// earliest-feasible-slot placement and returns their outcomes. It is the
// counterfactual for the paper's NERSC–ANL contention experiment: the
// same workload with server capacity reserved up front runs at its
// reserved rate with zero throughput variance from contention, trading
// variance for bounded start delay.
func (s *Scheduler) ScheduleTransfers(reqs []TransferRequest) ([]ScheduledOutcome, error) {
	out := make([]ScheduledOutcome, 0, len(reqs))
	for i, r := range reqs {
		if r.SizeBytes <= 0 || r.RateBps <= 0 {
			return nil, fmt.Errorf("dtnsched: request %d invalid", i)
		}
		dur := r.SizeBytes * 8 / r.RateBps
		res, err := s.ReserveEarliest(r.RateBps, dur, r.At)
		if err != nil {
			return nil, err
		}
		out = append(out, ScheduledOutcome{
			Reservation:   res,
			WaitSec:       math.Max(0, float64(res.Start.Sub(r.At))),
			ThroughputBps: r.RateBps,
		})
	}
	return out, nil
}

// TransferRequest is one transfer to place on the calendar.
type TransferRequest struct {
	At        simclock.Time
	SizeBytes float64
	RateBps   float64
}
