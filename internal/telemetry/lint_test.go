package telemetry_test

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"gftpvc/internal/gridftp"
	"gftpvc/internal/oscarsd"
	"gftpvc/internal/telemetry"
	"gftpvc/internal/vc"
	"gftpvc/internal/vc/broker"
	"gftpvc/internal/xferman"
)

// promName is the application-metric naming convention the registry
// enforces; the lint below re-checks it against the live exposition so
// the convention cannot drift from what servers actually register.
var promName = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// TestStackMetricsLint drives the whole stack — two GridFTP servers, a
// telemetry-enabled client, the xferman worker pool, and the oscarsd
// reservation daemon — over one hub, scrapes /metrics over HTTP, and
// lints the exposition: every family name follows the Prometheus
// convention, counters end in _total, and the stack yields at least 20
// distinct series.
func TestStackMetricsLint(t *testing.T) {
	hub := telemetry.NewHub()

	// GridFTP: one server per endpoint, both instrumented.
	newServer := func() *gridftp.Server {
		store := gridftp.NewMemStore()
		store.Put("obj.bin", make([]byte, 64<<10))
		srv, err := gridftp.Serve(gridftp.Config{
			Addr: "127.0.0.1:0", Store: store, Telemetry: hub,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	src, dst := newServer(), newServer()

	// Client path: one direct transfer with client-side telemetry.
	c, err := gridftp.Dial(src.Addr(), gridftp.WithTelemetry(hub))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Login("u", "p"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Retr("obj.bin"); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// oscarsd path: admit, reject, and cancel a reservation.
	osrv, err := oscarsd.Start(oscarsd.Config{
		Addr: "127.0.0.1:0", Scenario: "nersc-ornl",
		ReservableFraction: 0.5, Telemetry: hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { osrv.Close() })

	// Hybrid control plane: a vc client + session broker on the same
	// hub, brokering the xferman job below onto a reserved circuit.
	vcc, err := vc.Dial(context.Background(), osrv.Addr(), vc.WithTelemetry(hub))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vcc.Close() })
	bk, err := broker.New(vcc, broker.Config{
		Gap:        100 * time.Millisecond,
		SetupDelay: 10 * time.Millisecond,
		Route:      broker.StaticRoute("nersc-ornl-dtn-src", "nersc-ornl-dtn-dst"),
		Telemetry:  hub,
	})
	if err != nil {
		t.Fatal(err)
	}

	// xferman path: one managed third-party job through the pool,
	// dispatched through the broker (the 1 GiB hint qualifies the
	// session for a circuit; the object itself is small).
	m, err := xferman.New(1, xferman.WithTelemetry(hub), xferman.WithBroker(bk))
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.Submit(context.Background(), xferman.Job{
		Src:     xferman.Endpoint{Addr: src.Addr(), User: "u", Pass: "p"},
		Dst:     xferman.Endpoint{Addr: dst.Addr(), User: "u", Pass: "p"},
		SrcName: "obj.bin", DstName: "copy.bin",
		SizeHint: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Wait(context.Background(), id)
	if err != nil || res.Status != xferman.Succeeded {
		t.Fatalf("job result %+v, err %v", res, err)
	}
	if res.Circuit.Service != broker.ServiceVC {
		t.Fatalf("brokered job disposition %+v, want VC", res.Circuit)
	}
	m.Close()
	bk.Close()
	oc, err := net.Dial("tcp", osrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { oc.Close() })
	obr := bufio.NewReader(oc)
	roundTrip := func(req oscarsd.Request) oscarsd.Response {
		t.Helper()
		data, _ := json.Marshal(req)
		if _, err := oc.Write(append(data, '\n')); err != nil {
			t.Fatal(err)
		}
		line, err := obr.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var resp oscarsd.Response
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	admit := roundTrip(oscarsd.Request{Op: oscarsd.OpReserve,
		Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
		RateBps: 1e9, Start: 100, End: 200})
	if !admit.OK {
		t.Fatalf("reserve rejected: %+v", admit)
	}
	if rej := roundTrip(oscarsd.Request{Op: oscarsd.OpReserve,
		Src: "nope", Dst: "nersc-ornl-dtn-dst",
		RateBps: 1e9, Start: 100, End: 200}); rej.OK {
		t.Fatal("reserve of unknown node admitted")
	}
	if cancel := roundTrip(oscarsd.Request{Op: oscarsd.OpCancel, ID: admit.ID}); !cancel.OK {
		t.Fatalf("cancel failed: %+v", cancel)
	}

	// Scrape the shared hub over HTTP and lint the exposition.
	ms, err := hub.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	resp, err := http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	series := 0
	types := map[string]string{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		series++
	}
	if series < 20 {
		t.Fatalf("exposition has %d series, want >= 20:\n%s", series, body)
	}
	for name, kind := range types {
		if !promName.MatchString(name) {
			t.Errorf("metric %q violates the naming convention", name)
		}
		switch kind {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				t.Errorf("counter %q does not end in _total", name)
			}
		case "gauge":
			if strings.HasSuffix(name, "_total") {
				t.Errorf("gauge %q must not end in _total", name)
			}
		case "histogram":
			if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") &&
				!strings.HasSuffix(name, "_ratio") {
				t.Errorf("histogram %q should carry a unit suffix", name)
			}
		default:
			t.Errorf("metric %q has unexpected type %q", name, kind)
		}
	}

	// The stack must cover every subsystem, hybrid control plane included.
	for _, prefix := range []string{"gridftp_server_", "gridftp_client_",
		"xferman_", "oscarsd_", "vc_client_", "vc_broker_"} {
		found := false
		for name := range types {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s* metrics in exposition", prefix)
		}
	}
}
