package telemetry

import (
	"sort"
	"sync"
	"time"
)

// DefaultBinSec is the live counter cadence, matching ESnet's SNMP
// collection interval (internal/snmp.DefaultBinSec).
const DefaultBinSec = 30.0

// LiveCounter accumulates bytes into fixed wall-clock bins — the live
// analogue of an SNMP interface byte counter. Bytes[i] covers
// [Origin + i·BinSec, Origin + (i+1)·BinSec) on the owning set's
// epoch clock, exactly the shape of internal/snmp.Counter, so a
// snapshot feeds the Eq. 1 overlap and Table XI–XIII correlation code
// unmodified. A nil *LiveCounter is a no-op.
type LiveCounter struct {
	name   string
	epoch  time.Time
	binDur time.Duration

	mu   sync.Mutex
	bins []int64
}

// Name returns the counter's identity (e.g. "stripe0").
func (c *LiveCounter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Add credits n bytes to the bin covering the current wall clock.
func (c *LiveCounter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	bin := int(time.Since(c.epoch) / c.binDur)
	c.mu.Lock()
	for len(c.bins) <= bin {
		c.bins = append(c.bins, 0)
	}
	c.bins[bin] += n
	c.mu.Unlock()
}

// Snapshot returns the counter's series in snmp.Counter shape: the
// origin (seconds on the epoch clock — always 0, every counter starts
// at the set's epoch), the bin width in seconds, and one float per
// bin. The series is extended with zero bins through the current wall
// clock, so intervals that end after the last recorded byte still
// resolve.
func (c *LiveCounter) Snapshot() (originSec, binSec float64, bytes []float64) {
	if c == nil {
		return 0, 0, nil
	}
	now := int(time.Since(c.epoch) / c.binDur)
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.bins)
	if now+1 > n {
		n = now + 1
	}
	out := make([]float64, n)
	for i, b := range c.bins {
		out[i] = float64(b)
	}
	return 0, c.binDur.Seconds(), out
}

// Total returns the bytes accumulated across all bins.
func (c *LiveCounter) Total() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var t int64
	for _, b := range c.bins {
		t += b
	}
	return t
}

// CounterSet owns the live byte counters, one per data listener or
// stripe, all sharing one epoch so their series and the spans'
// StartSec values live on the same clock.
type CounterSet struct {
	epoch  time.Time
	binDur time.Duration

	mu       sync.Mutex
	counters map[string]*LiveCounter
}

// NewCounterSet creates a set with the given epoch and bin width in
// seconds (<= 0 uses DefaultBinSec).
func NewCounterSet(epoch time.Time, binSec float64) *CounterSet {
	if binSec <= 0 {
		binSec = DefaultBinSec
	}
	return &CounterSet{
		epoch:    epoch,
		binDur:   time.Duration(binSec * float64(time.Second)),
		counters: make(map[string]*LiveCounter),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// set returns a nil counter.
func (s *CounterSet) Counter(name string) *LiveCounter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &LiveCounter{name: name, epoch: s.epoch, binDur: s.binDur}
		s.counters[name] = c
	}
	return c
}

// Counters returns the set's counters sorted by name.
func (s *CounterSet) Counters() []*LiveCounter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*LiveCounter, 0, len(s.counters))
	for _, c := range s.counters {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
