package telemetry

import (
	"sync"
	"time"
)

// Event is one flight-recorder entry: a timestamped, optionally
// trace-tagged structured occurrence on a process's hot path (session
// accepted, TRID bound, pool hit/miss, reserve/fallback, block parked,
// REST/resume, 4xx/5xx reply). TimeSec is seconds since the hub epoch,
// the same clock spans and live counters use.
type Event struct {
	Seq     uint64    `json:"seq"`
	Wall    time.Time `json:"wall"`
	TimeSec float64   `json:"time_sec"`
	Trace   string    `json:"trace_id,omitempty"`
	Kind    string    `json:"kind"`
	Detail  string    `json:"detail,omitempty"`
}

// EventLog is the bounded flight-recorder ring. Recording is a mutex
// and two slice ops — cheap enough to leave on unconditionally — and
// the ring keeps only the most recent capacity events, so a long-lived
// process's recorder is a window onto its recent past, not a log.
type EventLog struct {
	epoch time.Time
	cap   int

	mu   sync.Mutex
	seq  uint64
	ring []Event // oldest..newest, len <= cap
}

// NewEventLog creates a recorder retaining the last capacity events
// (default 1024 when capacity <= 0).
func NewEventLog(epoch time.Time, capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 1024
	}
	return &EventLog{epoch: epoch, cap: capacity}
}

// Add records one event. A nil log is a no-op.
func (l *EventLog) Add(trace, kind, detail string) {
	if l == nil {
		return
	}
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	if len(l.ring) == l.cap {
		copy(l.ring, l.ring[1:])
		l.ring = l.ring[:l.cap-1]
	}
	l.ring = append(l.ring, Event{
		Seq:     l.seq,
		Wall:    now,
		TimeSec: now.Sub(l.epoch).Seconds(),
		Trace:   trace,
		Kind:    kind,
		Detail:  detail,
	})
}

// Snapshot returns the recorded events, oldest first.
func (l *EventLog) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.ring...)
}

// ByTrace returns the recorded events tagged with the given trace ID,
// oldest first.
func (l *EventLog) ByTrace(trace string) []Event {
	if l == nil || trace == "" {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.ring {
		if e.Trace == trace {
			out = append(out, e)
		}
	}
	return out
}
