package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Hub bundles the instrument streams one process exposes: the metrics
// registry, the span log, the live byte counters, and the
// flight-recorder event ring. All accessors are nil-safe — a nil *Hub
// hands out nil instruments whose methods are no-ops — so servers and
// clients instrument unconditionally and pay almost nothing when
// telemetry is off.
type Hub struct {
	epoch    time.Time
	registry *Registry
	spans    *SpanLog
	live     *CounterSet
	events   *EventLog

	mu      sync.Mutex
	process string            // identity in /events and /trace responses
	peers   map[string]string // process name -> telemetry base URL, for /trace stitching
	health  map[string]func() error
}

// NewHub creates a hub with the production cadence: 30-second live
// bins and a 512-span completed ring.
func NewHub() *Hub { return NewHubConfig(DefaultBinSec, 0) }

// NewHubConfig creates a hub with an explicit live-counter bin width in
// seconds (<= 0: DefaultBinSec) and completed-span capacity (<= 0:
// 512). Tests use sub-second bins to exercise the SNMP pipeline
// quickly.
func NewHubConfig(binSec float64, spanCap int) *Hub {
	epoch := time.Now()
	return &Hub{
		epoch:    epoch,
		registry: NewRegistry(),
		spans:    NewSpanLog(epoch, spanCap),
		live:     NewCounterSet(epoch, binSec),
		events:   NewEventLog(epoch, 0),
	}
}

// Epoch returns the hub's time origin: StartSec in spans and bin 0 of
// every live counter are measured from it.
func (h *Hub) Epoch() time.Time {
	if h == nil {
		return time.Time{}
	}
	return h.epoch
}

// SinceEpoch converts a wall-clock time to seconds on the hub clock.
func (h *Hub) SinceEpoch(t time.Time) float64 {
	if h == nil {
		return 0
	}
	return t.Sub(h.epoch).Seconds()
}

// Registry returns the metrics registry (nil for a nil hub).
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.registry
}

// Spans returns the span log (nil for a nil hub).
func (h *Hub) Spans() *SpanLog {
	if h == nil {
		return nil
	}
	return h.spans
}

// Live returns the live byte-counter set (nil for a nil hub).
func (h *Hub) Live() *CounterSet {
	if h == nil {
		return nil
	}
	return h.live
}

// Counter resolves a registry counter (nil-safe).
func (h *Hub) Counter(name, help string, labels ...Label) *Counter {
	return h.Registry().Counter(name, help, labels...)
}

// Gauge resolves a registry gauge (nil-safe).
func (h *Hub) Gauge(name, help string, labels ...Label) *Gauge {
	return h.Registry().Gauge(name, help, labels...)
}

// Histogram resolves a registry histogram (nil-safe).
func (h *Hub) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return h.Registry().Histogram(name, help, buckets, labels...)
}

// Span starts a span (nil-safe).
func (h *Hub) Span(op, target string, first Phase) *Span {
	return h.Spans().Start(op, target, first)
}

// LiveCounter resolves a live byte counter by name (nil-safe).
func (h *Hub) LiveCounter(name string) *LiveCounter {
	return h.Live().Counter(name)
}

// Events returns the flight-recorder ring (nil for a nil hub).
func (h *Hub) Events() *EventLog {
	if h == nil {
		return nil
	}
	return h.events
}

// Event records one flight-recorder event (nil-safe).
func (h *Hub) Event(trace, kind, detail string) {
	h.Events().Add(trace, kind, detail)
}

// SetProcessName names this hub's process in /events and /trace
// responses (e.g. "gftpd", "oscarsd", "gftpxfer").
func (h *Hub) SetProcessName(name string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.process = name
	h.mu.Unlock()
}

// ProcessName returns the name set by SetProcessName ("" by default).
func (h *Hub) ProcessName() string {
	if h == nil {
		return ""
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.process
}

// AddTracePeer registers another process's telemetry base URL (e.g.
// "http://127.0.0.1:9911") under its process name. /trace/<id> fans
// out to every registered peer and stitches the returned spans and
// events into one cross-process tree.
func (h *Hub) AddTracePeer(name, baseURL string) {
	if h == nil || baseURL == "" {
		return
	}
	h.mu.Lock()
	if h.peers == nil {
		h.peers = make(map[string]string)
	}
	h.peers[name] = baseURL
	h.mu.Unlock()
}

// TracePeers returns the registered peers as name -> base URL.
func (h *Hub) TracePeers() map[string]string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]string, len(h.peers))
	for k, v := range h.peers {
		out[k] = v
	}
	return out
}

// RegisterHealth adds a named readiness check consulted by /healthz.
// check returns nil when the component is ready; registering the same
// component again replaces its check.
func (h *Hub) RegisterHealth(component string, check func() error) {
	if h == nil || check == nil {
		return
	}
	h.mu.Lock()
	if h.health == nil {
		h.health = make(map[string]func() error)
	}
	h.health[component] = check
	h.mu.Unlock()
}

// HealthSnapshot runs every registered readiness check and returns the
// overall verdict plus per-component status strings ("ok" or the check
// error), component names sorted. With no checks registered the hub is
// trivially healthy.
func (h *Hub) HealthSnapshot() (ok bool, components map[string]string) {
	ok = true
	components = map[string]string{}
	if h == nil {
		return ok, components
	}
	h.mu.Lock()
	checks := make(map[string]func() error, len(h.health))
	for k, v := range h.health {
		checks[k] = v
	}
	h.mu.Unlock()
	names := make([]string, 0, len(checks))
	for name := range checks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := checks[name](); err != nil {
			components[name] = err.Error()
			ok = false
		} else {
			components[name] = "ok"
		}
	}
	return ok, components
}
