package telemetry

import "time"

// Hub bundles the three instrument streams one process exposes: the
// metrics registry, the span log, and the live byte counters. All
// accessors are nil-safe — a nil *Hub hands out nil instruments whose
// methods are no-ops — so servers and clients instrument
// unconditionally and pay almost nothing when telemetry is off.
type Hub struct {
	epoch    time.Time
	registry *Registry
	spans    *SpanLog
	live     *CounterSet
}

// NewHub creates a hub with the production cadence: 30-second live
// bins and a 512-span completed ring.
func NewHub() *Hub { return NewHubConfig(DefaultBinSec, 0) }

// NewHubConfig creates a hub with an explicit live-counter bin width in
// seconds (<= 0: DefaultBinSec) and completed-span capacity (<= 0:
// 512). Tests use sub-second bins to exercise the SNMP pipeline
// quickly.
func NewHubConfig(binSec float64, spanCap int) *Hub {
	epoch := time.Now()
	return &Hub{
		epoch:    epoch,
		registry: NewRegistry(),
		spans:    NewSpanLog(epoch, spanCap),
		live:     NewCounterSet(epoch, binSec),
	}
}

// Epoch returns the hub's time origin: StartSec in spans and bin 0 of
// every live counter are measured from it.
func (h *Hub) Epoch() time.Time {
	if h == nil {
		return time.Time{}
	}
	return h.epoch
}

// SinceEpoch converts a wall-clock time to seconds on the hub clock.
func (h *Hub) SinceEpoch(t time.Time) float64 {
	if h == nil {
		return 0
	}
	return t.Sub(h.epoch).Seconds()
}

// Registry returns the metrics registry (nil for a nil hub).
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.registry
}

// Spans returns the span log (nil for a nil hub).
func (h *Hub) Spans() *SpanLog {
	if h == nil {
		return nil
	}
	return h.spans
}

// Live returns the live byte-counter set (nil for a nil hub).
func (h *Hub) Live() *CounterSet {
	if h == nil {
		return nil
	}
	return h.live
}

// Counter resolves a registry counter (nil-safe).
func (h *Hub) Counter(name, help string, labels ...Label) *Counter {
	return h.Registry().Counter(name, help, labels...)
}

// Gauge resolves a registry gauge (nil-safe).
func (h *Hub) Gauge(name, help string, labels ...Label) *Gauge {
	return h.Registry().Gauge(name, help, labels...)
}

// Histogram resolves a registry histogram (nil-safe).
func (h *Hub) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return h.Registry().Histogram(name, help, buckets, labels...)
}

// Span starts a span (nil-safe).
func (h *Hub) Span(op, target string, first Phase) *Span {
	return h.Spans().Start(op, target, first)
}

// LiveCounter resolves a live byte counter by name (nil-safe).
func (h *Hub) LiveCounter(name string) *LiveCounter {
	return h.Live().Counter(name)
}
