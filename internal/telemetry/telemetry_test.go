package telemetry

import (
	"errors"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterValue(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_bytes_total", "help")
	c.Add(5)
	c.Inc()
	c.Add(-3) // counters only go up; negative adds are dropped
	if got := c.Value(); got != 6 {
		t.Fatalf("Value = %d, want 6", got)
	}
	if again := r.Counter("test_bytes_total", "help"); again != c {
		t.Fatal("same name+labels must resolve to the same instrument")
	}
	if other := r.Counter("test_bytes_total", "help", L("op", "x")); other == c {
		t.Fatal("different label sets must be distinct series")
	}
}

func TestCounterConcurrentAdds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_concurrent_total", "help")
	const workers, per = 32, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_depth", "help")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("Value = %d, want 6", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_duration_seconds", "help", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-106.5) > 1e-9 {
		t.Fatalf("Sum = %v, want 106.5", h.Sum())
	}
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Buckets are cumulative: le=1 catches 0.5 and the boundary value 1.
	for _, want := range []string{
		"# TYPE test_duration_seconds histogram",
		`test_duration_seconds_bucket{le="1"} 2`,
		`test_duration_seconds_bucket{le="10"} 3`,
		`test_duration_seconds_bucket{le="+Inf"} 4`,
		"test_duration_seconds_sum 106.5",
		"test_duration_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePromLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_ops_total", "ops by kind", L("result", "ok"), L("op", `we"ird`)).Add(3)
	var sb strings.Builder
	r.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP test_ops_total ops by kind",
		"# TYPE test_ops_total counter",
		`test_ops_total{op="we\"ird",result="ok"} 3`, // keys sorted, value escaped
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNameValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	mustPanic("uppercase metric", func() { r.Counter("BadName", "h") })
	mustPanic("leading digit", func() { r.Counter("0bad", "h") })
	mustPanic("hyphen", func() { r.Counter("bad-name", "h") })
	mustPanic("bad label key", func() { r.Counter("good_total", "h", L("Bad-Key", "v")) })
	r.Counter("dual_total", "h")
	mustPanic("kind mismatch", func() { r.Gauge("dual_total", "h") })
	mustPanic("decreasing buckets", func() { r.Histogram("hist_seconds", "h", []float64{2, 1}) })
}

func TestSpanLifecycle(t *testing.T) {
	epoch := time.Now()
	log := NewSpanLog(epoch, 4)
	sp := log.Start("retr", "x.bin", PhaseSetup)
	if log.Active() != 1 {
		t.Fatalf("Active = %d, want 1", log.Active())
	}
	sp.SetStreams(2)
	sp.Phase(PhaseStream)
	sp.AddBytes(100)
	sp.AddBytes(-5) // ignored
	sp.Phase(PhaseTeardown)
	sp.End(nil)
	sp.End(nil) // idempotent
	if log.Active() != 0 {
		t.Fatalf("Active = %d after End, want 0", log.Active())
	}
	snaps := log.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("Snapshot len = %d, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Op != "retr" || s.Target != "x.bin" || s.Bytes != 100 || s.Streams != 2 || s.Err != "" {
		t.Fatalf("snapshot = %+v", s)
	}
	wantPhases := []Phase{PhaseSetup, PhaseStream, PhaseTeardown}
	if len(s.Phases) != len(wantPhases) {
		t.Fatalf("phases = %+v, want %v", s.Phases, wantPhases)
	}
	sum := 0.0
	for i, ph := range s.Phases {
		if ph.Name != wantPhases[i] {
			t.Errorf("phase %d = %s, want %s", i, ph.Name, wantPhases[i])
		}
		sum += ph.DurationSec
	}
	// Phases are contiguous by construction: durations sum exactly to the
	// span's wall time (modulo float rounding).
	if math.Abs(sum-s.DurationSec) > 1e-9 {
		t.Errorf("phase durations sum to %v, span duration %v", sum, s.DurationSec)
	}
}

func TestSpanError(t *testing.T) {
	log := NewSpanLog(time.Now(), 4)
	sp := log.Start("stor", "y.bin", PhaseSetup)
	sp.End(errors.New("426 connection reset"))
	s := log.Snapshot()[0]
	if s.Err != "426 connection reset" {
		t.Fatalf("Err = %q", s.Err)
	}
	last := s.Phases[len(s.Phases)-1]
	if last.Name != PhaseError || last.DurationSec != 0 {
		t.Fatalf("terminal phase = %+v, want zero-length error", last)
	}
}

func TestSpanRingCapacity(t *testing.T) {
	log := NewSpanLog(time.Now(), 3)
	for i := 0; i < 5; i++ {
		log.Start("op", "", PhaseSetup).End(nil)
	}
	snaps := log.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("ring len = %d, want 3", len(snaps))
	}
	// Oldest first; spans 1 and 2 were evicted.
	if snaps[0].ID != 3 || snaps[2].ID != 5 {
		t.Fatalf("ring IDs = %d..%d, want 3..5", snaps[0].ID, snaps[2].ID)
	}
}

func TestLiveCounterBinning(t *testing.T) {
	set := NewCounterSet(time.Now(), 0.05)
	c := set.Counter("stripe0")
	if again := set.Counter("stripe0"); again != c {
		t.Fatal("same name must resolve to the same counter")
	}
	c.Add(100)
	time.Sleep(120 * time.Millisecond) // at least two bin widths later
	c.Add(50)
	origin, bin, bytes := c.Snapshot()
	if origin != 0 || bin != 0.05 {
		t.Fatalf("Snapshot origin=%v bin=%v, want 0, 0.05", origin, bin)
	}
	if len(bytes) < 3 {
		t.Fatalf("bins = %v, want >= 3 (zero-extended through now)", bytes)
	}
	total := 0.0
	for _, b := range bytes {
		total += b
	}
	if total != 150 {
		t.Fatalf("bin total = %v, want 150", total)
	}
	if bytes[0] != 100 {
		t.Fatalf("bin 0 = %v, want 100", bytes[0])
	}
	if c.Total() != 150 {
		t.Fatalf("Total = %d, want 150", c.Total())
	}
	names := set.Counters()
	if len(names) != 1 || names[0].Name() != "stripe0" {
		t.Fatalf("Counters = %v", names)
	}
}

func TestNilSafety(t *testing.T) {
	// Every instrument handed out by a nil hub must be a usable no-op:
	// this is what lets the engine instrument unconditionally.
	var h *Hub
	h.Counter("x_total", "h").Inc()
	h.Gauge("x", "h").Set(3)
	h.Histogram("x_seconds", "h", nil).Observe(1)
	sp := h.Span("op", "t", PhaseSetup)
	sp.Phase(PhaseStream)
	sp.AddBytes(10)
	sp.SetStreams(2)
	sp.End(errors.New("boom"))
	if sp.Bytes() != 0 {
		t.Fatal("nil span must report zero bytes")
	}
	lc := h.LiveCounter("stripe0")
	lc.Add(10)
	if _, _, bytes := lc.Snapshot(); bytes != nil {
		t.Fatal("nil live counter must snapshot nil")
	}
	if h.Registry().SeriesCount() != 0 || h.Spans().Active() != 0 || h.Live().Counters() != nil {
		t.Fatal("nil hub must expose empty streams")
	}
	if err := h.Registry().WriteProm(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentRegistryScrape hammers the registry from mutating
// goroutines while another scrapes the exposition, the exact overlap
// the race detector must clear for a live /metrics endpoint.
func TestConcurrentRegistryScrape(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ops := []string{"retr", "stor", "eret", "list"}
			for j := 0; ; j++ {
				op := ops[(i+j)%len(ops)]
				r.Counter("scrape_ops_total", "h", L("op", op)).Inc()
				r.Gauge("scrape_depth", "h").Add(1)
				r.Histogram("scrape_seconds", "h", DurationBuckets, L("op", op)).Observe(float64(j%7) / 10)
				select {
				case <-stop:
					return
				default:
				}
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		if err := r.WriteProm(io.Discard); err != nil {
			t.Fatal(err)
		}
		if r.SeriesCount() < 0 {
			t.Fatal("unreachable")
		}
	}
	close(stop)
	wg.Wait()
	var sb strings.Builder
	r.WriteProm(&sb)
	if !strings.Contains(sb.String(), `scrape_ops_total{op="retr"}`) {
		t.Fatal("final exposition missing mutated series")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	hub := NewHubConfig(0.05, 0)
	hub.Counter("endpoint_hits_total", "h").Inc()
	hub.Span("retr", "x.bin", PhaseSetup).End(nil)
	hub.LiveCounter("stripe0").Add(42)
	ms, err := hub.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + ms.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}
	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "endpoint_hits_total 1") {
		t.Errorf("/metrics body:\n%s", body)
	}
	if body, ct := get("/healthz"); !strings.HasPrefix(ct, "application/json") ||
		!strings.Contains(body, `"status":"ok"`) {
		t.Errorf("/healthz = %q (content type %q)", body, ct)
	}
	body, ct = get("/spans")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/spans content type %q", ct)
	}
	if !strings.Contains(body, `"op":"retr"`) || !strings.Contains(body, `"active":0`) {
		t.Errorf("/spans body: %s", body)
	}
	if body, _ = get("/counters"); !strings.Contains(body, `"name":"stripe0"`) {
		t.Errorf("/counters body: %s", body)
	}
}
