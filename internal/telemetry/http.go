package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"
)

// CounterSnapshot is the JSON form of one live byte counter, served by
// /counters. The fields mirror internal/snmp.Counter: construct one
// with Link=Name, Origin=OriginSec, BinSec and Bytes copied verbatim.
type CounterSnapshot struct {
	Name      string    `json:"name"`
	OriginSec float64   `json:"origin_sec"`
	BinSec    float64   `json:"bin_sec"`
	Bytes     []float64 `json:"bytes"`
}

// Handler serves the hub's instrument streams:
//
//	/metrics      Prometheus text exposition (version 0.0.4)
//	/healthz      JSON per-component readiness; 503 when any check fails
//	/spans        JSON {active, spans:[...]} — completed transfer spans
//	/counters     JSON [{name, origin_sec, bin_sec, bytes}] — live 30-s bins
//	/events       JSON {process, events:[...]} — flight-recorder ring
//	/trace/<id>   JSON stitched cross-process span tree for one trace
//	              (?local=1: this process's spans/events only)
//	/debug/pprof  Go profiles (cpu, heap, goroutine, mutex, block, ...)
//
// Mutex and block profiling are sampled at fixed low rates (see
// EnableContentionProfiling) so the contention profiles the C10k work
// leans on are populated without a per-process opt-in dance.
func (h *Hub) Handler() http.Handler {
	EnableContentionProfiling()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.Registry().WriteProm(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		ok, components := h.HealthSnapshot()
		status := "ok"
		if !ok {
			status = "degraded"
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
		} else {
			w.Header().Set("Content-Type", "application/json")
		}
		json.NewEncoder(w).Encode(struct {
			Status     string            `json:"status"`
			Components map[string]string `json:"components"`
		}{status, components})
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		spans := h.Spans().Snapshot()
		if spans == nil {
			spans = []SpanSnapshot{}
		}
		json.NewEncoder(w).Encode(struct {
			EpochUnixNano int64          `json:"epoch_unix_nano"`
			Active        int            `json:"active"`
			Spans         []SpanSnapshot `json:"spans"`
		}{h.Epoch().UnixNano(), h.Spans().Active(), spans})
	})
	mux.HandleFunc("/counters", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		out := []CounterSnapshot{}
		for _, c := range h.Live().Counters() {
			origin, bin, bytes := c.Snapshot()
			out = append(out, CounterSnapshot{Name: c.Name(), OriginSec: origin, BinSec: bin, Bytes: bytes})
		}
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var events []Event
		if trace := r.URL.Query().Get("trace"); trace != "" {
			events = h.Events().ByTrace(trace)
		} else {
			events = h.Events().Snapshot()
		}
		if events == nil {
			events = []Event{}
		}
		json.NewEncoder(w).Encode(struct {
			Process string  `json:"process"`
			Events  []Event `json:"events"`
		}{h.ProcessName(), events})
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/trace/")
		if id == "" || strings.Contains(id, "/") {
			http.Error(w, "want /trace/<trace-id>", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("local") != "" {
			json.NewEncoder(w).Encode(h.localTrace(id))
			return
		}
		json.NewEncoder(w).Encode(h.stitchedTrace(id))
	})
	return mux
}

// EnableContentionProfiling turns on the runtime's mutex and block
// samplers at rates cheap enough to leave on in production: one mutex
// contention event in 16 and one blocking event per millisecond of
// blocked time. /debug/pprof/{mutex,block} are empty without this.
// Handler calls it automatically; it is exported for processes that
// serve profiles off their own mux.
func EnableContentionProfiling() {
	runtime.SetMutexProfileFraction(16)
	runtime.SetBlockProfileRate(int(time.Millisecond))
}

// MetricsServer is a running telemetry HTTP endpoint.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// ListenAndServe exposes the hub on addr ("127.0.0.1:0" for an
// ephemeral port) and serves until Close.
func (h *Hub) ListenAndServe(addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h.Handler(), ReadHeaderTimeout: 5 * time.Second}
	ms := &MetricsServer{ln: ln, srv: srv}
	go srv.Serve(ln)
	return ms, nil
}

// Addr returns the bound address.
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint.
func (s *MetricsServer) Close() error { return s.srv.Close() }
