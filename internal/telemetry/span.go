package telemetry

import (
	"sync"
	"time"
)

// Phase names the stages of a transfer the paper's methodology
// distinguishes: the control-channel dial, authentication, data-channel
// setup (the live analogue of VC setup delay), block streaming, and
// teardown. PhaseIdle covers control-channel gaps in session-scoped
// spans; PhaseError is the zero-length terminal phase appended when a
// span ends with an error.
type Phase string

const (
	PhaseControlDial Phase = "control_dial"
	PhaseAuth        Phase = "auth"
	PhaseSetup       Phase = "data_setup"
	PhaseStream      Phase = "stream"
	PhaseTeardown    Phase = "teardown"
	PhaseIdle        Phase = "idle"
	PhaseError       Phase = "error"
)

// PhaseSnapshot is one closed phase of a completed span.
type PhaseSnapshot struct {
	Name        Phase   `json:"name"`
	StartSec    float64 `json:"start_sec"`
	DurationSec float64 `json:"duration_sec"`
}

// SpanSnapshot is the JSON form of a completed span, served by /spans.
// StartSec is seconds since the hub epoch, the clock the live byte
// counters use, so spans convert directly into snmp.TransferObs.
//
// TraceID/SID/ParentSID link spans across processes: every span tagged
// via SetTrace carries the end-to-end trace ID, its own span ID, and
// the span ID of the remote span that caused it, which is how
// /trace/<id> stitches a multi-process tree. TimelineBytes is the
// per-transfer throughput timeline: wire bytes bucketed into
// TimelineBinMS-wide bins from span start, filled by AddBytes on the
// counting data connections.
type SpanSnapshot struct {
	ID          uint64    `json:"id"`
	Op          string    `json:"op"`
	Target      string    `json:"target,omitempty"`
	TraceID     string    `json:"trace_id,omitempty"`
	SID         string    `json:"sid,omitempty"`
	ParentSID   string    `json:"parent_sid,omitempty"`
	Start       time.Time `json:"start"`
	StartSec    float64   `json:"start_sec"`
	DurationSec float64   `json:"duration_sec"`
	Bytes       int64     `json:"bytes"`
	Streams     int       `json:"streams,omitempty"`
	Err         string    `json:"error,omitempty"`
	// ThrottleWaitSec is the cumulative time the span's data
	// connections spent stalled in a pacing limiter. It is not a phase:
	// throttle waits happen concurrently inside the stream phase across
	// parallel connections (and can sum past wall time), while phases
	// are contiguous and sum exactly to it. Variance attribution
	// (gftpanalyze -spans) carves a virtual throttle_wait phase out of
	// stream from this figure.
	ThrottleWaitSec float64         `json:"throttle_wait_sec,omitempty"`
	Phases          []PhaseSnapshot `json:"phases"`
	TimelineBinMS   int64           `json:"timeline_bin_ms,omitempty"`
	TimelineBytes   []int64         `json:"timeline_bytes,omitempty"`
}

// Timeline geometry: AddBytes buckets wire bytes into 100 ms bins from
// span start; transfers longer than timelineMaxBins bins accumulate
// their tail in the last bin rather than growing without bound.
const (
	timelineBin     = 100 * time.Millisecond
	timelineMaxBins = 4096
)

// Span is one in-flight operation. Phases are contiguous by
// construction — starting a phase closes the previous one at the same
// instant, and End closes the last — so the phase durations of a
// completed span sum exactly to its wall time. All methods are
// nil-safe and safe for concurrent use (data-path goroutines call
// AddBytes while the control path switches phases).
type Span struct {
	log *SpanLog

	mu      sync.Mutex
	snap    SpanSnapshot
	started []time.Time // phase start times, parallel to snap.Phases
	done    bool
}

// Phase closes the current phase and opens the named one.
func (s *Span) Phase(p Phase) {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	s.closePhaseLocked(now)
	s.snap.Phases = append(s.snap.Phases, PhaseSnapshot{Name: p})
	s.started = append(s.started, now)
}

// closePhaseLocked stamps the open phase's start/duration at t.
func (s *Span) closePhaseLocked(t time.Time) {
	if n := len(s.snap.Phases); n > 0 {
		ph := &s.snap.Phases[n-1]
		ph.StartSec = s.log.sinceEpoch(s.started[n-1])
		ph.DurationSec = t.Sub(s.started[n-1]).Seconds()
	}
}

// AddBytes accumulates the span's byte count (wire bytes moved on the
// data channels) and buckets it into the throughput timeline.
func (s *Span) AddBytes(n int64) {
	if s == nil || n <= 0 {
		return
	}
	now := time.Now()
	s.mu.Lock()
	s.snap.Bytes += n
	bin := int(now.Sub(s.snap.Start) / timelineBin)
	if bin < 0 {
		bin = 0
	}
	if bin >= timelineMaxBins {
		bin = timelineMaxBins - 1
	}
	if bin >= len(s.snap.TimelineBytes) {
		s.snap.TimelineBytes = append(s.snap.TimelineBytes,
			make([]int64, bin+1-len(s.snap.TimelineBytes))...)
	}
	s.snap.TimelineBytes[bin] += n
	s.mu.Unlock()
}

// AddThrottleWait accumulates time a data connection spent stalled in
// a pacing limiter on behalf of this span. Concurrent data-path
// goroutines each report their own stalls; the sum may exceed wall
// time.
func (s *Span) AddThrottleWait(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.mu.Lock()
	s.snap.ThrottleWaitSec += d.Seconds()
	s.mu.Unlock()
}

// SetTrace tags the span with an end-to-end trace ID and the span ID
// of the remote parent that caused it (empty at the root), mints the
// span's own 8-hex span ID, and returns it so callers can propagate
// the parent link downstream. Repeated calls re-tag but keep the first
// minted span ID.
func (s *Span) SetTrace(traceID, parentSID string) (sid string) {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap.SID == "" {
		s.snap.SID = NewSpanID()
	}
	s.snap.TraceID = traceID
	s.snap.ParentSID = parentSID
	return s.snap.SID
}

// Trace returns the span's trace ID and own span ID ("" when untagged).
func (s *Span) Trace() (traceID, sid string) {
	if s == nil {
		return "", ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap.TraceID, s.snap.SID
}

// Bytes returns the bytes accumulated so far.
func (s *Span) Bytes() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap.Bytes
}

// SetStreams records how many data connections the operation used.
func (s *Span) SetStreams(n int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.snap.Streams = n
	s.mu.Unlock()
}

// End completes the span: the open phase is closed, a zero-length
// "error" phase is appended when err != nil, and the span moves to the
// log's completed ring. End is idempotent.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.closePhaseLocked(now)
	if err != nil {
		s.snap.Err = err.Error()
		s.snap.Phases = append(s.snap.Phases, PhaseSnapshot{
			Name:     PhaseError,
			StartSec: s.log.sinceEpoch(now),
		})
	}
	s.snap.DurationSec = now.Sub(s.snap.Start).Seconds()
	if len(s.snap.TimelineBytes) > 0 {
		s.snap.TimelineBinMS = timelineBin.Milliseconds()
	}
	snap := s.snap
	snap.Phases = append([]PhaseSnapshot(nil), s.snap.Phases...)
	snap.TimelineBytes = append([]int64(nil), s.snap.TimelineBytes...)
	s.mu.Unlock()
	s.log.complete(snap)
}

// SpanLog tracks in-flight spans and keeps a bounded ring of completed
// ones for the /spans snapshot.
type SpanLog struct {
	epoch time.Time
	cap   int

	mu     sync.Mutex
	nextID uint64
	active int
	ring   []SpanSnapshot // oldest..newest, len <= cap
}

// NewSpanLog creates a log retaining the last capacity completed spans
// (default 512 when capacity <= 0). Seconds-based fields are relative
// to epoch.
func NewSpanLog(epoch time.Time, capacity int) *SpanLog {
	if capacity <= 0 {
		capacity = 512
	}
	return &SpanLog{epoch: epoch, cap: capacity}
}

func (l *SpanLog) sinceEpoch(t time.Time) float64 {
	if l == nil {
		return 0
	}
	return t.Sub(l.epoch).Seconds()
}

// Start opens a span for op (e.g. "retr") against target (object name,
// peer address) with its first phase. A nil log returns a nil span.
func (l *SpanLog) Start(op, target string, first Phase) *Span {
	if l == nil {
		return nil
	}
	now := time.Now()
	l.mu.Lock()
	l.nextID++
	id := l.nextID
	l.active++
	l.mu.Unlock()
	s := &Span{
		log: l,
		snap: SpanSnapshot{
			ID:       id,
			Op:       op,
			Target:   target,
			Start:    now,
			StartSec: l.sinceEpoch(now),
			Phases:   []PhaseSnapshot{{Name: first}},
		},
		started: []time.Time{now},
	}
	return s
}

func (l *SpanLog) complete(snap SpanSnapshot) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.active--
	if len(l.ring) == l.cap {
		copy(l.ring, l.ring[1:])
		l.ring = l.ring[:l.cap-1]
	}
	l.ring = append(l.ring, snap)
}

// Active returns the number of spans started but not yet ended.
func (l *SpanLog) Active() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active
}

// Snapshot returns the completed spans, oldest first.
func (l *SpanLog) Snapshot() []SpanSnapshot {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]SpanSnapshot(nil), l.ring...)
}

// ByTrace returns the completed spans tagged with the given trace ID,
// oldest first.
func (l *SpanLog) ByTrace(trace string) []SpanSnapshot {
	if l == nil || trace == "" {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []SpanSnapshot
	for _, s := range l.ring {
		if s.TraceID == trace {
			out = append(out, s)
		}
	}
	return out
}
