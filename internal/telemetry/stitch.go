package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// TraceLocal is one process's view of a trace: the completed spans and
// flight-recorder events tagged with the trace ID. /trace/<id>?local=1
// serves exactly this; the stitched view fans it out across peers.
type TraceLocal struct {
	Process string         `json:"process"`
	TraceID string         `json:"trace_id"`
	Spans   []SpanSnapshot `json:"spans"`
	Events  []Event        `json:"events"`
	Err     string         `json:"error,omitempty"` // peer fetch failure, if any
}

// TraceNode is one span in the stitched cross-process tree, with the
// spans it caused (linked by SID -> ParentSID) as children.
type TraceNode struct {
	Process  string       `json:"process"`
	Span     SpanSnapshot `json:"span"`
	Children []*TraceNode `json:"children,omitempty"`
}

// TraceReport is the stitched /trace/<id> response: every process's
// local view plus the span tree linking them. Each span keeps its own
// process's phase decomposition, so within every node the phase
// durations still sum exactly to that span's wall time.
type TraceReport struct {
	TraceID   string       `json:"trace_id"`
	Processes []TraceLocal `json:"processes"`
	Tree      []*TraceNode `json:"tree"`
}

// localTrace assembles this process's view of the trace.
func (h *Hub) localTrace(id string) TraceLocal {
	spans := h.Spans().ByTrace(id)
	if spans == nil {
		spans = []SpanSnapshot{}
	}
	events := h.Events().ByTrace(id)
	if events == nil {
		events = []Event{}
	}
	return TraceLocal{
		Process: h.ProcessName(),
		TraceID: id,
		Spans:   spans,
		Events:  events,
	}
}

// StitchTrace links per-process trace views into one span tree: every
// span becomes a node, children attach to the node whose SID matches
// their ParentSID, and spans whose parent is unknown (the minting root,
// or an orphan whose parent rolled out of a ring) become roots.
// Siblings and roots are ordered by start time.
func StitchTrace(traceID string, locals []TraceLocal) *TraceReport {
	rep := &TraceReport{TraceID: traceID, Processes: locals, Tree: []*TraceNode{}}
	bySID := make(map[string]*TraceNode)
	var nodes []*TraceNode
	for _, loc := range locals {
		for _, sp := range loc.Spans {
			n := &TraceNode{Process: loc.Process, Span: sp}
			nodes = append(nodes, n)
			if sp.SID != "" {
				// First writer wins on a (pathological) SID collision.
				if _, dup := bySID[sp.SID]; !dup {
					bySID[sp.SID] = n
				}
			}
		}
	}
	for _, n := range nodes {
		if p := bySID[n.Span.ParentSID]; n.Span.ParentSID != "" && p != nil && p != n {
			p.Children = append(p.Children, n)
		} else {
			rep.Tree = append(rep.Tree, n)
		}
	}
	byStart := func(ns []*TraceNode) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Span.Start.Before(ns[j].Span.Start) })
	}
	byStart(rep.Tree)
	for _, n := range nodes {
		byStart(n.Children)
	}
	return rep
}

// stitchedTrace assembles the cross-process view: this process's local
// trace plus every registered peer's, fetched over HTTP with a bounded
// timeout. A peer that cannot be reached contributes an error entry
// instead of failing the whole report.
func (h *Hub) stitchedTrace(id string) *TraceReport {
	locals := []TraceLocal{h.localTrace(id)}
	peers := h.TracePeers()
	names := make([]string, 0, len(peers))
	for name := range peers {
		names = append(names, name)
	}
	sort.Strings(names)
	client := &http.Client{Timeout: 2 * time.Second}
	for _, name := range names {
		loc, err := fetchLocalTrace(client, peers[name], id)
		if err != nil {
			locals = append(locals, TraceLocal{
				Process: name, TraceID: id,
				Spans: []SpanSnapshot{}, Events: []Event{},
				Err: err.Error(),
			})
			continue
		}
		if loc.Process == "" {
			loc.Process = name
		}
		locals = append(locals, loc)
	}
	return StitchTrace(id, locals)
}

func fetchLocalTrace(client *http.Client, base, id string) (TraceLocal, error) {
	var loc TraceLocal
	resp, err := client.Get(base + "/trace/" + id + "?local=1")
	if err != nil {
		return loc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return loc, fmt.Errorf("peer returned %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&loc); err != nil {
		return loc, err
	}
	return loc, nil
}
