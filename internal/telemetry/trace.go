package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceContext identifies one end-to-end transfer across processes: a
// 16-hex trace ID minted once per xferman job, plus the span ID of the
// minting side's current span so remote spans can link back to their
// parent. It travels over the control channel as SITE TRID <token> and
// over the vc line protocol as the request's trace field; processes
// that have never heard of it reply 500/502 and the sender degrades
// silently.
type TraceContext struct {
	TraceID   string // 16 lowercase hex digits
	ParentSID string // 8 lowercase hex digits, "" at the root
}

// NewTraceID mints a 16-hex trace ID from crypto/rand.
func NewTraceID() string { return randHex(8) }

// NewSpanID mints an 8-hex span ID from crypto/rand.
func NewSpanID() string { return randHex(4) }

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on the supported platforms; a zero ID
		// keeps the data path alive if it somehow does.
		return strings.Repeat("0", 2*n)
	}
	return hex.EncodeToString(b)
}

// Valid reports whether the trace ID (and parent span ID, if any) are
// well-formed.
func (tc TraceContext) Valid() bool {
	if !isHex(tc.TraceID, 16) {
		return false
	}
	return tc.ParentSID == "" || isHex(tc.ParentSID, 8)
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// WireToken renders the context in the SITE TRID argument form:
// <trace16> or <trace16>-<parent8>.
func (tc TraceContext) WireToken() string {
	if tc.ParentSID == "" {
		return tc.TraceID
	}
	return tc.TraceID + "-" + tc.ParentSID
}

// ParseTraceToken parses a SITE TRID argument back into a TraceContext.
func ParseTraceToken(tok string) (TraceContext, error) {
	var tc TraceContext
	var dashed bool
	tc.TraceID, tc.ParentSID, dashed = strings.Cut(tok, "-")
	if !tc.Valid() || (dashed && tc.ParentSID == "") {
		return TraceContext{}, fmt.Errorf("malformed trace token %q", tok)
	}
	return tc, nil
}

type traceCtxKey struct{}

// WithTrace attaches a trace context to ctx; it flows from the xferman
// job through the broker, the vc client, and the connection pool.
func WithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFrom extracts the trace context from ctx, if one was attached.
func TraceFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}

// TraceIDFrom is TraceFrom reduced to the bare trace ID ("" when
// untraced) — the form the flight-recorder events want.
func TraceIDFrom(ctx context.Context) string {
	tc, _ := TraceFrom(ctx)
	return tc.TraceID
}
