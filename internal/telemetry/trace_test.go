package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceContextWireToken(t *testing.T) {
	id, sid := NewTraceID(), NewSpanID()
	if len(id) != 16 || len(sid) != 8 {
		t.Fatalf("minted ids %q / %q", id, sid)
	}
	for _, tc := range []TraceContext{
		{TraceID: id},
		{TraceID: id, ParentSID: sid},
	} {
		got, err := ParseTraceToken(tc.WireToken())
		if err != nil {
			t.Fatalf("round trip %q: %v", tc.WireToken(), err)
		}
		if got != tc {
			t.Fatalf("round trip %q: got %+v want %+v", tc.WireToken(), got, tc)
		}
	}
	for _, bad := range []string{"", "xyz", "0123", strings.Repeat("g", 16),
		id + "-", id + "-zzzzzzzz", id + "-" + id} {
		if _, err := ParseTraceToken(bad); err == nil {
			t.Errorf("ParseTraceToken(%q) accepted", bad)
		}
	}
}

func TestSpanTraceTagging(t *testing.T) {
	log := NewSpanLog(time.Now(), 0)
	sp := log.Start("retr", "x.bin", PhaseSetup)
	sid := sp.SetTrace("00112233445566aa", "deadbeef")
	if !isHex(sid, 8) {
		t.Fatalf("minted sid %q", sid)
	}
	if again := sp.SetTrace("00112233445566aa", "deadbeef"); again != sid {
		t.Fatalf("re-tag changed sid: %q -> %q", sid, again)
	}
	sp.End(nil)
	got := log.ByTrace("00112233445566aa")
	if len(got) != 1 {
		t.Fatalf("ByTrace: %d spans", len(got))
	}
	if got[0].TraceID != "00112233445566aa" || got[0].SID != sid || got[0].ParentSID != "deadbeef" {
		t.Fatalf("snapshot trace fields: %+v", got[0])
	}
	if log.ByTrace("ffffffffffffffff") != nil {
		t.Fatal("ByTrace matched a foreign trace")
	}
}

func TestSpanTimeline(t *testing.T) {
	log := NewSpanLog(time.Now(), 0)
	sp := log.Start("retr", "x.bin", PhaseStream)
	sp.AddBytes(100) // bin 0
	time.Sleep(120 * time.Millisecond)
	sp.AddBytes(50) // bin 1+
	sp.End(nil)
	snap := log.Snapshot()[0]
	if snap.TimelineBinMS != 100 {
		t.Fatalf("bin width %d ms", snap.TimelineBinMS)
	}
	if len(snap.TimelineBytes) < 2 || snap.TimelineBytes[0] != 100 {
		t.Fatalf("timeline %v", snap.TimelineBytes)
	}
	var sum int64
	for _, b := range snap.TimelineBytes {
		sum += b
	}
	if sum != snap.Bytes || sum != 150 {
		t.Fatalf("timeline sums to %d, bytes %d", sum, snap.Bytes)
	}
}

func TestEventLogRing(t *testing.T) {
	log := NewEventLog(time.Now(), 4)
	for i := 0; i < 10; i++ {
		trace := ""
		if i%2 == 0 {
			trace = "00112233445566aa"
		}
		log.Add(trace, "kind", fmt.Sprintf("ev%d", i))
	}
	evs := log.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events", len(evs))
	}
	if evs[0].Detail != "ev6" || evs[3].Detail != "ev9" || evs[3].Seq != 10 {
		t.Fatalf("ring contents: %+v", evs)
	}
	byTrace := log.ByTrace("00112233445566aa")
	if len(byTrace) != 2 || byTrace[0].Detail != "ev6" || byTrace[1].Detail != "ev8" {
		t.Fatalf("ByTrace: %+v", byTrace)
	}
}

func TestHealthzComponents(t *testing.T) {
	hub := NewHub()
	hub.RegisterHealth("store", func() error { return nil })
	ms, err := hub.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	get := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Get("http://" + ms.Addr() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}
	if code, body := get(); code != 200 || body["status"] != "ok" {
		t.Fatalf("healthy: %d %v", code, body)
	}
	hub.RegisterHealth("broker", func() error { return errors.New("daemon unreachable") })
	code, body := get()
	if code != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Fatalf("degraded: %d %v", code, body)
	}
	comps := body["components"].(map[string]any)
	if comps["store"] != "ok" || comps["broker"] != "daemon unreachable" {
		t.Fatalf("components: %v", comps)
	}
}

// TestTraceEndpointStitching runs two hubs as two telemetry processes,
// tags parent/child spans across them, and asserts /trace/<id> on the
// parent stitches a two-process tree whose per-process phases each sum
// to that span's wall time — PR 3's invariant carried across the wire.
func TestTraceEndpointStitching(t *testing.T) {
	parent, child := NewHub(), NewHub()
	parent.SetProcessName("xferman")
	child.SetProcessName("gftpd")
	cms, err := child.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cms.Close() })
	pms, err := parent.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pms.Close() })
	parent.AddTracePeer("gftpd", "http://"+cms.Addr())

	trace := NewTraceID()
	root := parent.Span("job", "x.bin", PhaseSetup)
	rootSID := root.SetTrace(trace, "")
	parent.Event(trace, "job_start", "x.bin")

	remote := child.Span("retr", "x.bin", PhaseSetup)
	remote.SetTrace(trace, rootSID)
	child.Event(trace, "trid_bound", trace)
	remote.Phase(PhaseStream)
	time.Sleep(10 * time.Millisecond)
	remote.End(nil)
	root.End(nil)

	resp, err := http.Get("http://" + pms.Addr() + "/trace/" + trace)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep TraceReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.TraceID != trace || len(rep.Processes) != 2 {
		t.Fatalf("report: trace %q, %d processes", rep.TraceID, len(rep.Processes))
	}
	for _, loc := range rep.Processes {
		if loc.Err != "" {
			t.Fatalf("process %s: %s", loc.Process, loc.Err)
		}
		if len(loc.Spans) != 1 || len(loc.Events) != 1 {
			t.Fatalf("process %s: %d spans %d events", loc.Process, len(loc.Spans), len(loc.Events))
		}
	}
	if len(rep.Tree) != 1 || rep.Tree[0].Process != "xferman" {
		t.Fatalf("tree roots: %+v", rep.Tree)
	}
	kids := rep.Tree[0].Children
	if len(kids) != 1 || kids[0].Process != "gftpd" || kids[0].Span.Op != "retr" {
		t.Fatalf("tree children: %+v", kids)
	}
	// The stitched spans keep the per-process invariant: phase durations
	// sum exactly to each span's wall time.
	for _, n := range []*TraceNode{rep.Tree[0], kids[0]} {
		var sum float64
		for _, ph := range n.Span.Phases {
			sum += ph.DurationSec
		}
		if math.Abs(sum-n.Span.DurationSec) > 1e-9 {
			t.Fatalf("%s/%s: phases sum %.12f, wall %.12f", n.Process, n.Span.Op, sum, n.Span.DurationSec)
		}
	}

	// Local view stays single-process.
	resp2, err := http.Get("http://" + pms.Addr() + "/trace/" + trace + "?local=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var loc TraceLocal
	if err := json.NewDecoder(resp2.Body).Decode(&loc); err != nil {
		t.Fatal(err)
	}
	if loc.Process != "xferman" || len(loc.Spans) != 1 {
		t.Fatalf("local view: %+v", loc)
	}
}

func TestTracePeerUnreachable(t *testing.T) {
	hub := NewHub()
	hub.SetProcessName("xferman")
	hub.AddTracePeer("gone", "http://127.0.0.1:1") // nothing listens here
	trace := NewTraceID()
	hub.Span("job", "x", PhaseSetup).SetTrace(trace, "")
	rep := hub.stitchedTrace(trace)
	if len(rep.Processes) != 2 {
		t.Fatalf("%d processes", len(rep.Processes))
	}
	var sawErr bool
	for _, loc := range rep.Processes {
		if loc.Process == "gone" && loc.Err != "" {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("unreachable peer did not surface an error entry")
	}
}

// TestConcurrentScrapesInFlight scrapes /spans, /counters, and /events
// over HTTP while transfer-shaped goroutines mutate spans, live
// counters, and the event ring — the overlap a live scrape hits, run
// under -race in the tier-1 matrix.
func TestConcurrentScrapesInFlight(t *testing.T) {
	hub := NewHubConfig(0.05, 64)
	ms, err := hub.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				sp := hub.Span("retr", fmt.Sprintf("obj%d.bin", i), PhaseSetup)
				sp.SetTrace(NewTraceID(), "")
				sp.Phase(PhaseStream)
				sp.AddBytes(int64(1 + j%4096))
				hub.LiveCounter(fmt.Sprintf("stripe%d", i)).Add(int64(j % 512))
				hub.Event("", "pool_hit", "addr")
				sp.End(nil)
			}
		}(i)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 25; i++ {
		for _, path := range []string{"/spans", "/counters", "/events"} {
			resp, err := client.Get("http://" + ms.Addr() + path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("GET %s: %d", path, resp.StatusCode)
			}
		}
	}
	close(stop)
	wg.Wait()
	// One final decode to check the JSON stayed well-formed under load.
	resp, err := client.Get("http://" + ms.Addr() + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Active int            `json:"active"`
		Spans  []SpanSnapshot `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Spans) == 0 {
		t.Fatal("no spans recorded under load")
	}
}
