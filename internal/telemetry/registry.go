// Package telemetry is the live measurement layer for the transfer
// stack: a dependency-free metrics registry (sharded atomic counters,
// gauges, fixed-bucket histograms) with Prometheus text exposition,
// per-transfer spans that record the phase breakdown the paper reasons
// about (control dial, auth, data-channel setup, block streaming,
// teardown), and live 30-second byte counters shaped like the SNMP
// interface counters behind the paper's Eq. 1 link-utilization
// analysis. The sim measures virtual links with internal/snmp; this
// package gives the real engine the same two instrument streams —
// per-transfer records and fixed-cadence byte bins — so the correlation
// pipeline runs unmodified against live traffic.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// nameRE is the Prometheus metric/label naming convention this registry
// enforces at registration time: lower-snake-case, leading letter.
// (Prometheus itself also permits uppercase and colons; the convention
// for application metrics is plain snake_case, and the lint test keeps
// the exposition from drifting.)
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// Label is one name=value metric dimension.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates metric families.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// instrument is one (name, labels) series.
type instrument interface {
	labelKey() string
	expose(w *bufio.Writer, name, labels string)
	seriesCount() int
}

// family groups every labeled instrument under one metric name.
type family struct {
	name string
	help string
	kind Kind

	mu      sync.Mutex
	order   []string
	byLabel map[string]instrument
}

// Registry holds metric families with stable name+label identity:
// registering the same name and label set twice returns the same
// instrument, so call sites may resolve metrics lazily on hot paths.
// All methods are safe for concurrent use and nil-safe (a nil registry
// hands out nil instruments whose operations are no-ops), which lets
// instrumented packages run unconditionally whether or not telemetry
// was enabled.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family for name, creating it with the given kind
// and help on first use. Invalid names and kind mismatches panic: both
// are programming errors a test catches immediately.
func (r *Registry) lookup(name, help string, kind Kind) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: metric name %q violates the [a-z][a-z0-9_]* convention", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byLabel: make(map[string]instrument)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %v and %v", name, f.kind, kind))
	}
	return f
}

// instrument resolves the (labels) series inside f, creating it with
// mk on first use.
func (f *family) instrument(labels []Label, mk func() instrument) instrument {
	key := renderLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if inst, ok := f.byLabel[key]; ok {
		return inst
	}
	inst := mk()
	f.byLabel[key] = inst
	f.order = append(f.order, key)
	return inst
}

// renderLabels produces the canonical {k="v",...} form (sorted by key,
// values escaped), which doubles as the series identity. No labels
// renders as "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if !nameRE.MatchString(l.Key) {
			panic(fmt.Sprintf("telemetry: label name %q violates the [a-z][a-z0-9_]* convention", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// Counter returns the monotonically increasing series for name+labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, KindCounter)
	return f.instrument(labels, func() instrument { return newCounter(labels) }).(*Counter)
}

// Gauge returns the up-down series for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, KindGauge)
	return f.instrument(labels, func() instrument { return newGauge(labels) }).(*Gauge)
}

// Histogram returns the fixed-bucket distribution series for
// name+labels. buckets are upper bounds in increasing order; an
// implicit +Inf bucket is appended. The bucket layout is fixed at
// first registration of the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, KindHistogram)
	return f.instrument(labels, func() instrument { return newHistogram(labels, buckets) }).(*Histogram)
}

// Names returns the sorted registered family names.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for n := range r.families {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SeriesCount returns the number of exposition series (histograms count
// their buckets plus _sum and _count).
func (r *Registry) SeriesCount() int {
	if r == nil {
		return 0
	}
	total := 0
	for _, name := range r.Names() {
		r.mu.Lock()
		f := r.families[name]
		r.mu.Unlock()
		f.mu.Lock()
		for _, inst := range f.byLabel {
			total += inst.seriesCount()
		}
		f.mu.Unlock()
	}
	return total
}

// WriteProm renders the registry in the Prometheus text exposition
// format (version 0.0.4), families sorted by name, series by label key.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, name := range r.Names() {
		r.mu.Lock()
		f := r.families[name]
		r.mu.Unlock()
		f.mu.Lock()
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		for _, k := range keys {
			f.byLabel[k].expose(bw, f.name, k)
		}
		f.mu.Unlock()
	}
	return bw.Flush()
}

// counterShards is the stripe count for Counter; a power of two so the
// shard index is a mask.
const counterShards = 16

// paddedCount is one counter stripe, padded out to its own cache line
// so concurrent data-path writers do not false-share.
type paddedCount struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing, sharded atomic counter. Adds
// from different goroutines land on different stripes (indexed by a
// cheap stack-address hash, distinct per goroutine), so the per-block
// data path never serializes on one cache line; Value folds the
// stripes. A nil *Counter is a no-op.
type Counter struct {
	labels string
	shards [counterShards]paddedCount
}

func newCounter(labels []Label) *Counter {
	return &Counter{labels: renderLabels(labels)}
}

// shardIndex derives a goroutine-stable stripe index from the address
// of a stack variable: goroutine stacks live on distinct pages, so
// page-granular bits spread concurrent writers across stripes. The
// uintptr conversion is address arithmetic only; the pointer is never
// reconstructed.
func shardIndex() int {
	var marker byte
	return int((uintptr(unsafe.Pointer(&marker)) >> 10) & (counterShards - 1))
}

// Add increments the counter by n (n < 0 is ignored: counters only go
// up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.shards[shardIndex()].v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value folds the stripes into the counter's current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

func (c *Counter) labelKey() string { return c.labels }
func (c *Counter) seriesCount() int { return 1 }

func (c *Counter) expose(w *bufio.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.Value())
}

// Gauge is an up-down instrument (queue depth, active sessions, open
// listeners). A nil *Gauge is a no-op.
type Gauge struct {
	labels string
	v      atomic.Int64
}

func newGauge(labels []Label) *Gauge { return &Gauge{labels: renderLabels(labels)} }

// Set stores an absolute value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) labelKey() string { return g.labels }
func (g *Gauge) seriesCount() int { return 1 }

func (g *Gauge) expose(w *bufio.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, g.Value())
}

// DurationBuckets covers transfer-stack latencies from sub-millisecond
// control round trips to multi-minute bulk transfers (seconds).
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300,
}

// SizeBuckets covers object sizes from a KiB to the paper's 32 GB
// bulk-transfer regime (bytes).
var SizeBuckets = []float64{
	1 << 10, 16 << 10, 256 << 10, 1 << 20, 16 << 20, 256 << 20,
	1 << 30, 4 << 30, 32 << 30,
}

// Histogram is a fixed-bucket distribution: per-bucket atomic counts
// plus an atomic float sum, cheap enough for per-transfer observation.
// A nil *Histogram is a no-op.
type Histogram struct {
	labels  string
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(labels []Label, buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram buckets must be strictly increasing")
		}
	}
	return &Histogram{
		labels: renderLabels(labels),
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

func (h *Histogram) labelKey() string { return h.labels }
func (h *Histogram) seriesCount() int { return len(h.bounds) + 3 } // buckets + +Inf + _sum + _count

func (h *Histogram) expose(w *bufio.Writer, name, labels string) {
	// _bucket series carry the extra le label inside the existing set.
	open := func(le string) string {
		if labels == "" {
			return `{le="` + le + `"}`
		}
		return labels[:len(labels)-1] + `,le="` + le + `"}`
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, open(formatBound(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, open("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}
