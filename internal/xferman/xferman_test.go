package xferman

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"gftpvc/internal/gridftp"
	"gftpvc/internal/vc/broker"
)

// flakyStore fails the first N Gets, then delegates — simulating the
// transient server-side failures a transfer manager retries through.
type flakyStore struct {
	gridftp.Store
	mu       sync.Mutex
	failures int
}

func (f *flakyStore) Get(name string) ([]byte, error) {
	f.mu.Lock()
	if f.failures > 0 {
		f.failures--
		f.mu.Unlock()
		return nil, gridftp.ErrNotFound
	}
	f.mu.Unlock()
	return f.Store.Get(name)
}

func payload(n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(3)).Read(b)
	return b
}

func serve(t *testing.T, store gridftp.Store) *gridftp.Server {
	t.Helper()
	s, err := gridftp.Serve(gridftp.Config{
		Addr:  "127.0.0.1:0",
		Store: store,
		// A failed third-party leg leaves the receiver waiting for a
		// data connection that never comes; keep that timeout short so
		// retry tests run quickly.
		AcceptTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func ep(s *gridftp.Server) Endpoint {
	return Endpoint{Addr: s.Addr(), User: "u", Pass: "p"}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero workers should fail")
	}
}

func TestSubmitValidation(t *testing.T) {
	m, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	bad := []Job{
		{},
		{Src: Endpoint{Addr: "x"}, Dst: Endpoint{Addr: "y"}},
		{Src: Endpoint{Addr: "x"}, Dst: Endpoint{Addr: "y"},
			SrcName: "a", DstName: "b", MaxAttempts: -1},
	}
	for i, j := range bad {
		if _, err := m.Submit(context.Background(), j); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := m.Wait(context.Background(), 999); err == nil {
		t.Error("unknown job should fail")
	}
}

func TestSuccessfulVerifiedTransfer(t *testing.T) {
	srcStore := gridftp.NewMemStore()
	want := payload(1 << 20)
	srcStore.Put("data.bin", want)
	dstStore := gridftp.NewMemStore()
	src := serve(t, srcStore)
	dst := serve(t, dstStore)

	m, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	id, err := m.Submit(context.Background(), Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "data.bin", DstName: "copy.bin", Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Succeeded {
		t.Fatalf("status = %v, err = %s", res.Status, res.Err)
	}
	if res.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", res.Attempts)
	}
	if res.Checksum == "" {
		t.Error("verified job should carry a checksum")
	}
	got, err := dstStore.Get("copy.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted")
	}
}

func TestRetryRecoversFromTransientFailure(t *testing.T) {
	inner := gridftp.NewMemStore()
	want := payload(256 << 10)
	inner.Put("data.bin", want)
	flaky := &flakyStore{Store: inner, failures: 2}
	src := serve(t, flaky)
	dst := serve(t, gridftp.NewMemStore())

	m, _ := New(1)
	defer m.Close()
	id, err := m.Submit(context.Background(), Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "data.bin", DstName: "copy.bin",
		MaxAttempts: 4, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := m.Wait(context.Background(), id)
	if res.Status != Succeeded {
		t.Fatalf("status = %v, err = %s", res.Status, res.Err)
	}
	if res.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (two failures, then success)", res.Attempts)
	}
}

func TestExhaustedRetriesFail(t *testing.T) {
	src := serve(t, gridftp.NewMemStore()) // object never exists
	dst := serve(t, gridftp.NewMemStore())
	m, _ := New(1)
	defer m.Close()
	id, err := m.Submit(context.Background(), Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "missing.bin", DstName: "copy.bin", MaxAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := m.Wait(context.Background(), id)
	if res.Status != Failed || res.Err == "" {
		t.Fatalf("result = %+v, want failure with error", res)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", res.Attempts)
	}
}

func TestBatchOfJobsAcrossWorkers(t *testing.T) {
	srcStore := gridftp.NewMemStore()
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, n := range names {
		srcStore.Put(n, payload(64<<10))
	}
	dstStore := gridftp.NewMemStore()
	src := serve(t, srcStore)
	dst := serve(t, dstStore)
	m, _ := New(3)
	defer m.Close()
	var ids []JobID
	for _, n := range names {
		id, err := m.Submit(context.Background(), Job{
			Src: ep(src), Dst: ep(dst),
			SrcName: n, DstName: n + ".copy", Verify: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		res, err := m.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Succeeded {
			t.Fatalf("job %d: %v (%s)", id, res.Status, res.Err)
		}
	}
	for _, n := range names {
		if _, err := dstStore.Get(n + ".copy"); err != nil {
			t.Errorf("missing copy of %s", n)
		}
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	m, _ := New(1)
	m.Close()
	m.Close() // idempotent
	if _, err := m.Submit(context.Background(), Job{
		Src: Endpoint{Addr: "x"}, Dst: Endpoint{Addr: "y"},
		SrcName: "a", DstName: "b",
	}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: %v, want ErrClosed", err)
	}
}

// TestSubmitCloseRace hammers Submit against a concurrent Close: every
// Submit must either enqueue or report ErrClosed — never panic on a
// closed queue channel. Run under -race via RACE_PKGS.
func TestSubmitCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		m, _ := New(1)
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 10; j++ {
					_, err := m.Submit(context.Background(), Job{
						Src: Endpoint{Addr: "127.0.0.1:1"}, Dst: Endpoint{Addr: "127.0.0.1:1"},
						SrcName: "x", DstName: "x", MaxAttempts: 1,
						Timeout: 50 * time.Millisecond,
					})
					if err != nil && !errors.Is(err, ErrClosed) {
						t.Errorf("submit: %v", err)
						return
					}
				}
			}()
		}
		m.Close()
		wg.Wait()
	}
}

func TestResultNonBlocking(t *testing.T) {
	m, _ := New(1)
	defer m.Close()
	if _, err := m.Result(42); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown job: %v, want ErrUnknownJob", err)
	}
	if _, err := m.Wait(context.Background(), 42); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("wait unknown job: %v, want ErrUnknownJob", err)
	}
}

// TestContextCancellation: a cancelled job context stops retries and
// bounds Wait itself.
func TestContextCancellation(t *testing.T) {
	src := serve(t, gridftp.NewMemStore()) // object never exists: retries forever
	dst := serve(t, gridftp.NewMemStore())
	m, _ := New(1)
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	id, err := m.Submit(ctx, Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "missing.bin", DstName: "copy.bin", MaxAttempts: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait under its own short deadline while the job is still retrying.
	wctx, wcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer wcancel()
	if _, err := m.Wait(wctx, id); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded wait: %v, want DeadlineExceeded", err)
	}
	// Cancel the job: the retry loop must stop well before 1000 attempts.
	cancel()
	res, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Failed || res.Attempts >= 1000 {
		t.Fatalf("cancelled job: status=%v attempts=%d", res.Status, res.Attempts)
	}
}

// TestResultCircuitWithoutBroker: a manager with no broker reports
// plain best-effort IP dispatch on every result.
func TestResultCircuitWithoutBroker(t *testing.T) {
	srcStore := gridftp.NewMemStore()
	srcStore.Put("data.bin", payload(32<<10))
	src := serve(t, srcStore)
	dst := serve(t, gridftp.NewMemStore())
	m, _ := New(1)
	defer m.Close()
	id, err := m.Submit(context.Background(), Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "data.bin", DstName: "copy.bin", SizeHint: 32 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Wait(context.Background(), id)
	if err != nil || res.Status != Succeeded {
		t.Fatalf("%+v, %v", res, err)
	}
	if res.Circuit.Service != broker.ServiceIP || res.Circuit.Fallback != "" {
		t.Errorf("brokerless circuit disposition = %+v, want plain IP", res.Circuit)
	}
	if res.Bytes != 32<<10 {
		t.Errorf("bytes = %d, want %d", res.Bytes, 32<<10)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Queued: "QUEUED", Running: "RUNNING", Succeeded: "SUCCEEDED", Failed: "FAILED",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %s", s, s.String())
		}
	}
}

func TestChecksumCommandDirect(t *testing.T) {
	store := gridftp.NewMemStore()
	store.Put("x", []byte("hello world"))
	s := serve(t, store)
	c, err := gridftp.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Login("u", "p"); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Checksum("x")
	if err != nil {
		t.Fatal(err)
	}
	// crc32.ChecksumIEEE("hello world") = 0x0d4a1185
	if sum != "0d4a1185" {
		t.Errorf("checksum = %s, want 0d4a1185", sum)
	}
	if _, err := c.Checksum("missing"); err == nil {
		t.Error("missing object checksum should fail")
	}
}

func TestSubmitAll(t *testing.T) {
	srcStore := gridftp.NewMemStore()
	for _, n := range []string{"run1/a", "run1/b", "other/c"} {
		srcStore.Put(n, payload(32<<10))
	}
	dstStore := gridftp.NewMemStore()
	src := serve(t, srcStore)
	dst := serve(t, dstStore)
	m, _ := New(2)
	defer m.Close()
	ids, err := m.SubmitAll(context.Background(), ep(src), ep(dst), "run1/", Job{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("submitted %d jobs, want 2", len(ids))
	}
	for _, id := range ids {
		res, err := m.Wait(context.Background(), id)
		if err != nil || res.Status != Succeeded {
			t.Fatalf("job %d: %+v, %v", id, res, err)
		}
	}
	if _, err := dstStore.Get("run1/a"); err != nil {
		t.Error("run1/a not copied")
	}
	if _, err := dstStore.Get("other/c"); err == nil {
		t.Error("other/c should not have been copied")
	}
	if _, err := m.SubmitAll(context.Background(), ep(src), ep(dst), "missing/", Job{}); err == nil {
		t.Error("empty prefix listing should fail")
	}
}

// TestJobTimeoutBoundsSilentEndpoint: a job whose source greets and then
// never replies must burn through its attempts within the configured
// per-operation deadline, not hang a worker forever.
func TestJobTimeoutBoundsSilentEndpoint(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				fmt.Fprintf(conn, "220 silent\r\n")
				io.Copy(io.Discard, conn)
				conn.Close()
			}(conn)
		}
	}()
	dstStore := gridftp.NewMemStore()
	dst := serve(t, dstStore)
	m, _ := New(1)
	defer m.Close()
	const d = 300 * time.Millisecond
	id, err := m.Submit(context.Background(), Job{
		Src:     Endpoint{Addr: ln.Addr().String()},
		Dst:     Endpoint{Addr: dst.Addr()},
		SrcName: "x", DstName: "x",
		MaxAttempts: 2,
		Timeout:     d,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := m.Wait(context.Background(), id)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Failed {
		t.Fatalf("status = %v, want Failed", res.Status)
	}
	// Two attempts, each bounded by roughly one control deadline (the
	// greeting arrives; the USER reply never does), plus slack.
	if limit := 2*2*d + 500*time.Millisecond; elapsed > limit {
		t.Fatalf("job took %v, want < %v", elapsed, limit)
	}
	if _, err := m.Submit(context.Background(), Job{Src: Endpoint{Addr: "a"}, Dst: Endpoint{Addr: "b"},
		SrcName: "x", DstName: "x", Timeout: -time.Second}); err == nil {
		t.Error("negative Timeout accepted")
	}
}
