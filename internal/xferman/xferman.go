// Package xferman is a managed-transfer service in the mould of Globus
// Online, which the paper names as the future source of its datasets: it
// queues third-party GridFTP transfer jobs, executes them on a worker
// pool, retries failures with fresh control channels, and verifies
// integrity with the CKSM checksum command — the "secure and reliable
// data transfers" feature set §II attributes to GridFTP, operated as a
// service.
//
// The manager is the dispatch point of the hybrid VC/IP control plane:
// wire a circuit broker in with WithBroker and every job is offered to
// it before the data moves. Sessions long enough to amortize the VC
// setup delay ride a reserved circuit; everything else (and every job
// when no broker is configured) goes over best-effort IP. The verdict
// for each job is recorded in its Result.Circuit disposition.
//
// All blocking entry points — Submit, Wait, SubmitAll — take a
// context.Context, which also governs the job's own network dials and
// its broker decision RPCs.
package xferman

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"gftpvc/internal/connpool"
	"gftpvc/internal/fleet"
	"gftpvc/internal/gridftp"
	"gftpvc/internal/pacing"
	"gftpvc/internal/telemetry"
	"gftpvc/internal/vc/broker"
)

// Sentinel errors, matchable with errors.Is.
var (
	// ErrClosed: the manager has been closed; no further submissions.
	ErrClosed = errors.New("xferman: manager closed")
	// ErrUnknownJob: the JobID was never issued by this manager.
	ErrUnknownJob = errors.New("xferman: unknown job")
)

// Endpoint identifies one GridFTP server and the credentials to use.
type Endpoint struct {
	Addr string
	User string
	Pass string
}

// Class is a job's QoS class: the key into the manager's class rate
// table, consulted when neither the job's own RateBps nor a broker
// circuit reservation pins a rate. Classes let operators deprioritize
// background traffic (mirror syncs, prefetches) without touching each
// job: one WithClassRate(ClassBackground, ...) caps the whole tier.
type Class string

const (
	// ClassInteractive: latency-sensitive jobs a user is waiting on.
	ClassInteractive Class = "interactive"
	// ClassBulk: ordinary transfers; the default when Job.Class is empty.
	ClassBulk Class = "bulk"
	// ClassBackground: deprioritized jobs that should yield bandwidth.
	ClassBackground Class = "background"
)

func (c Class) valid() bool {
	switch c {
	case ClassInteractive, ClassBulk, ClassBackground:
		return true
	}
	return false
}

// Job is one requested transfer: move SrcName on Src to DstName on Dst.
type Job struct {
	Src, Dst Endpoint
	SrcName  string
	DstName  string
	// MaxAttempts bounds retries (default 3).
	MaxAttempts int
	// Verify compares src/dst CRC32 checksums after the transfer.
	Verify bool
	// Timeout bounds every control and data I/O on both endpoints'
	// connections. Zero uses the gridftp client defaults (30s); it is a
	// per-operation deadline, not a whole-job budget, so arbitrarily
	// large transfers still complete as long as bytes keep moving.
	Timeout time.Duration
	// SizeHint, when positive, tells the circuit broker how many bytes
	// this job expects to move without a SIZE round trip. Zero means
	// probe the source.
	SizeHint int64
	// Stream relays the object through the manager's own data plane
	// (streaming RETR into a pipe feeding a streaming STOR) instead of
	// a server-to-server third-party transfer. Worker memory stays
	// bounded by WindowBytes and Result.WireBytes is measured exactly
	// rather than derived from destination watermarks.
	Stream bool
	// WindowBytes sizes the streaming reassembly window and upload
	// chunks when Stream is set (default gridftp.DefaultWindowSize).
	WindowBytes int
	// NoResume disables restart-offset retries: every attempt restarts
	// from byte zero, for destinations whose partial objects cannot be
	// trusted. The default resumes at the destination's delivered
	// watermark so a retry re-sends at most one reassembly window.
	NoResume bool
	// RetryBackoff is the base delay before the second attempt; each
	// further attempt doubles it, jittered to 50–150%, capped at
	// RetryBackoffMax. Defaults: 200ms base, 5s cap.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	// RateBps caps this job's data plane at a fixed rate in bits per
	// second. Zero defers to the broker's reserved circuit rate (the
	// paper's Eq. 2 point: a reservation only predicts transfer time if
	// the transfer actually runs at the reserved rate) and then to the
	// manager's class rate table; see Class.
	RateBps int64
	// Class is the job's QoS class (default ClassBulk).
	Class Class
}

func (j *Job) normalize(fleetManaged bool) error {
	if j.Src.Addr == "" && !fleetManaged {
		return errors.New("xferman: endpoints required")
	}
	if j.Dst.Addr == "" {
		return errors.New("xferman: endpoints required")
	}
	if j.SrcName == "" || j.DstName == "" {
		return errors.New("xferman: object names required")
	}
	if j.MaxAttempts == 0 {
		j.MaxAttempts = 3
	}
	if j.MaxAttempts < 1 {
		return errors.New("xferman: MaxAttempts must be >= 1")
	}
	if j.Timeout < 0 {
		return errors.New("xferman: Timeout must be >= 0")
	}
	if j.SizeHint < 0 {
		return errors.New("xferman: SizeHint must be >= 0")
	}
	if j.WindowBytes < 0 {
		return errors.New("xferman: WindowBytes must be >= 0")
	}
	if j.RetryBackoff < 0 || j.RetryBackoffMax < 0 {
		return errors.New("xferman: retry backoff must be >= 0")
	}
	if j.RetryBackoff == 0 {
		j.RetryBackoff = 200 * time.Millisecond
	}
	if j.RetryBackoffMax == 0 {
		j.RetryBackoffMax = 5 * time.Second
	}
	if j.RateBps < 0 {
		return errors.New("xferman: RateBps must be >= 0")
	}
	if j.Class == "" {
		j.Class = ClassBulk
	}
	if !j.Class.valid() {
		return fmt.Errorf("xferman: unknown class %q", j.Class)
	}
	return nil
}

// dialOpts translates the job's Timeout into gridftp client options and
// binds every dial (control and data) to ctx, so cancelling the job's
// context aborts connection establishment immediately.
func (j *Job) dialOpts(ctx context.Context) []gridftp.Option {
	var d net.Dialer
	opts := []gridftp.Option{
		gridftp.WithDialFunc(func(network, addr string) (net.Conn, error) {
			return d.DialContext(ctx, network, addr)
		}),
	}
	if j.Timeout > 0 {
		opts = append(opts,
			gridftp.WithControlTimeout(j.Timeout),
			gridftp.WithDataTimeout(j.Timeout),
		)
	}
	if j.Stream && j.WindowBytes > 0 {
		opts = append(opts, gridftp.WithWindow(j.WindowBytes))
	}
	return opts
}

// Status is a job's lifecycle state.
type Status int

const (
	// Queued: accepted, not yet picked up by a worker.
	Queued Status = iota
	// Running: a worker is executing the transfer.
	Running
	// Succeeded: transferred (and verified, when requested).
	Succeeded
	// Failed: all attempts exhausted.
	Failed
)

func (s Status) String() string {
	switch s {
	case Queued:
		return "QUEUED"
	case Running:
		return "RUNNING"
	case Succeeded:
		return "SUCCEEDED"
	case Failed:
		return "FAILED"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// JobID identifies a submitted job.
type JobID int64

// Result is a job's current state.
type Result struct {
	ID       JobID
	Job      Job
	Status   Status
	Attempts int
	// Err holds the final failure (or the last retried one on success).
	Err string
	// Checksum is the verified CRC32 when Verify was requested.
	Checksum string
	Duration time.Duration
	// Bytes is the object size the transfer moved (from SizeHint or a
	// SIZE probe; zero when neither was available).
	Bytes int64
	// WireBytes is the payload the job pushed toward the destination
	// summed across ALL attempts, duplicates included — the number
	// Bytes hides when retries re-send data. Streaming jobs measure it
	// exactly; third-party jobs derive it from destination watermark
	// probes, which undercounts by at most one reassembly window per
	// failed attempt. WireBytes - Bytes is the job's redundant wire
	// traffic.
	WireBytes int64
	// Circuit records how the hybrid control plane dispatched this job:
	// reserved circuit vs best-effort IP, the circuit ID, the setup wait
	// this job paid, and the fallback reason when a wanted circuit was
	// not obtained. Jobs on a manager without a broker report plain IP.
	Circuit broker.Disposition
	// TraceID is the transfer's trace ID on a manager built
	// WithTracing — the key for /trace/<id> on every instrumented
	// process this job touched. Empty when tracing is off.
	TraceID string
	// ShapedRateBps is the rate the job's data plane was shaped to, in
	// bits per second: Job.RateBps, else the broker's reserved circuit
	// rate, else the class rate. Zero means the job ran unshaped.
	ShapedRateBps int64
	// Replica is the source replica the fleet dispatcher placed the
	// final attempt on, when the manager was built WithFleet and the job
	// left Src.Addr empty. Empty otherwise.
	Replica string
}

type tracked struct {
	result Result
	ctx    context.Context
	done   chan struct{}
}

// Manager executes jobs on a bounded worker pool.
type Manager struct {
	queue chan JobID

	mu         sync.Mutex
	jobs       map[JobID]*tracked
	nextID     JobID
	submitting sync.WaitGroup // in-flight Submit sends, gated by mu+closed

	wg     sync.WaitGroup
	closed bool

	hub        *telemetry.Hub
	broker     *broker.Broker
	fleet      *fleet.Dispatcher
	pool       *connpool.Pool
	tracing    bool
	classRates map[Class]int64
	met        xmMetrics
}

// xmMetrics is the manager's instrument set. With a nil hub every
// instrument is nil and the calls are no-ops.
type xmMetrics struct {
	submitted  *telemetry.Counter
	queueDepth *telemetry.Gauge
	running    *telemetry.Gauge
	retries    *telemetry.Counter
	durations  *telemetry.Histogram
	// wireBytes vs deliveredBytes is the manager-level redundancy
	// signal: their gap is payload that crossed the network more than
	// once because a retry re-sent it.
	wireBytes      *telemetry.Counter
	deliveredBytes *telemetry.Counter
	resumed        *telemetry.Counter
}

// Option configures a Manager.
type Option func(*Manager)

// WithTelemetry publishes queue, retry, and job-latency metrics on hub
// and threads the hub into every gridftp client the manager dials, so
// worker-driven transfers show up as client spans and metrics too.
func WithTelemetry(hub *telemetry.Hub) Option {
	return func(m *Manager) { m.hub = hub }
}

// WithPool draws workers' control channels from an endpoint-keyed pool
// instead of dialing fresh per attempt: checkout costs a NOOP round
// trip on a live channel rather than a dial + login handshake, and the
// post-failure watermark probe reuses a pooled channel too. The manager
// does not own the pool — close the manager first, then the pool.
//
// Pooled channels outlive any one job, so they dial with the pool's own
// dialer, not the job context's; cancellation still aborts the job
// between operations and bounds every I/O with the job Timeout.
func WithPool(p *connpool.Pool) Option {
	return func(m *Manager) { m.pool = p }
}

// WithBroker offers every job to a session-aware circuit broker before
// its data moves; the broker's verdict lands in Result.Circuit. The
// manager does not own the broker — close the manager first, then the
// broker, then its client.
func WithBroker(b *broker.Broker) Option {
	return func(m *Manager) { m.broker = b }
}

// WithFleet places jobs that leave Src.Addr empty across the
// dispatcher's replica set: each attempt asks the fleet for the replica
// the Eq. 2 contention model predicts gives the highest effective rate
// right now, and a retry is free to move to a different replica than
// the failed attempt's (counted as a rebalance). Jobs that pin Src.Addr
// bypass the fleet entirely. The manager does not own the dispatcher —
// close the manager first, then the fleet.
func WithFleet(d *fleet.Dispatcher) Option {
	return func(m *Manager) { m.fleet = d }
}

// WithTracing mints an end-to-end TraceContext per job and propagates
// it everywhere the job goes: both endpoints learn it over the control
// channel via SITE TRID (old servers degrade silently), the broker and
// the vc client carry it to the reservation daemon, and pool checkouts
// tag their hit/miss events with it. Each traced job also gets a root
// "job" span on the manager's hub, the anchor /trace/<id> stitches the
// cross-process tree under. Off by default: an untraced manager sends
// nothing trace-related on any wire, keeping output byte-identical.
func WithTracing() Option {
	return func(m *Manager) { m.tracing = true }
}

// WithClassRate caps every job of the given class at rateBps bits per
// second, unless the job pins its own RateBps or rides a circuit with a
// reserved rate (both of which win). The usual deployment shapes only
// ClassBackground, leaving interactive and bulk traffic free-running.
func WithClassRate(class Class, rateBps int64) Option {
	return func(m *Manager) {
		if m.classRates == nil {
			m.classRates = make(map[Class]int64)
		}
		m.classRates[class] = rateBps
	}
}

// New starts a manager with the given number of workers.
func New(workers int, opts ...Option) (*Manager, error) {
	if workers < 1 {
		return nil, errors.New("xferman: need at least one worker")
	}
	m := &Manager{
		queue: make(chan JobID, 1024),
		jobs:  make(map[JobID]*tracked),
	}
	for _, opt := range opts {
		opt(m)
	}
	if m.hub != nil {
		m.met = xmMetrics{
			submitted: m.hub.Counter("xferman_jobs_submitted_total",
				"Transfer jobs accepted into the queue."),
			queueDepth: m.hub.Gauge("xferman_queue_depth",
				"Jobs queued and not yet picked up by a worker."),
			running: m.hub.Gauge("xferman_jobs_running",
				"Jobs currently executing on a worker."),
			retries: m.hub.Counter("xferman_retries_total",
				"Failed attempts that were retried with fresh control channels."),
			durations: m.hub.Histogram("xferman_job_duration_seconds",
				"End-to-end job latency including retries.", telemetry.DurationBuckets),
			wireBytes: m.hub.Counter("xferman_wire_bytes_total",
				"Payload bytes pushed toward destinations across all attempts, duplicates included."),
			deliveredBytes: m.hub.Counter("xferman_delivered_bytes_total",
				"Payload bytes durably delivered to destinations exactly once."),
			resumed: m.hub.Counter("xferman_resumed_attempts_total",
				"Retry attempts that restarted from a destination watermark instead of byte zero."),
		}
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Submit queues a job and returns its ID. ctx governs the job for its
// whole life: a cancelled context stops retries and aborts the job's
// network dials. Submit after Close returns ErrClosed.
func (m *Manager) Submit(ctx context.Context, job Job) (JobID, error) {
	if err := job.normalize(m.fleet != nil); err != nil {
		return 0, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, ErrClosed
	}
	m.nextID++
	id := m.nextID
	m.jobs[id] = &tracked{
		result: Result{ID: id, Job: job, Status: Queued},
		ctx:    ctx,
		done:   make(chan struct{}),
	}
	// Register the queue send while still under the closed check, so
	// Close cannot close(m.queue) between our unlock and the send.
	m.submitting.Add(1)
	m.mu.Unlock()
	m.met.submitted.Inc()
	m.met.queueDepth.Inc()
	m.queue <- id
	m.submitting.Done()
	return id, nil
}

// Wait blocks until the job finishes (or ctx is done) and returns its
// result. An unknown ID reports ErrUnknownJob.
func (m *Manager) Wait(ctx context.Context, id JobID) (Result, error) {
	m.mu.Lock()
	tr := m.jobs[id]
	m.mu.Unlock()
	if tr == nil {
		return Result{}, fmt.Errorf("%w %d", ErrUnknownJob, id)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-tr.done:
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return tr.result, nil
}

// Result returns a job's current state without blocking. An unknown ID
// reports ErrUnknownJob.
func (m *Manager) Result(id JobID) (Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tr := m.jobs[id]
	if tr == nil {
		return Result{}, fmt.Errorf("%w %d", ErrUnknownJob, id)
	}
	return tr.result, nil
}

// SubmitAll lists the source endpoint's objects under prefix (NLST) and
// submits one job per object, preserving names at the destination. tmpl
// provides MaxAttempts/Verify/Timeout; its endpoints and names are
// overwritten. ctx bounds the listing dial and carries into every
// submitted job.
func (m *Manager) SubmitAll(ctx context.Context, src, dst Endpoint, prefix string, tmpl Job) ([]JobID, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c, err := gridftp.Dial(src.Addr, tmpl.dialOpts(ctx)...)
	if err != nil {
		return nil, fmt.Errorf("xferman: dial src: %w", err)
	}
	defer c.Close()
	if err := c.Login(src.User, src.Pass); err != nil {
		return nil, fmt.Errorf("xferman: login src: %w", err)
	}
	names, err := c.List(prefix)
	if err != nil {
		return nil, fmt.Errorf("xferman: list: %w", err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("xferman: no objects under %q", prefix)
	}
	ids := make([]JobID, 0, len(names))
	for _, name := range names {
		job := tmpl
		job.Src, job.Dst = src, dst
		job.SrcName, job.DstName = name, name
		id, err := m.Submit(ctx, job)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Close stops accepting jobs and waits for in-flight work to finish.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	// Every Submit that passed the closed check has registered its send;
	// wait those out before closing the channel they send on.
	m.submitting.Wait()
	close(m.queue)
	m.wg.Wait()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for id := range m.queue {
		m.mu.Lock()
		tr := m.jobs[id]
		tr.result.Status = Running
		job := tr.result.Job
		ctx := tr.ctx
		m.mu.Unlock()
		m.met.queueDepth.Dec()
		m.met.running.Inc()

		start := time.Now()
		out := m.execute(ctx, job)
		m.mu.Lock()
		tr.result.Attempts = out.attempts
		tr.result.Duration = time.Since(start)
		tr.result.Checksum = out.checksum
		tr.result.Bytes = out.bytes
		tr.result.WireBytes = out.wire
		tr.result.Circuit = out.circuit
		tr.result.TraceID = out.trace
		tr.result.ShapedRateBps = out.shapedRate
		tr.result.Replica = out.replica
		if out.err != nil {
			tr.result.Status = Failed
			tr.result.Err = out.err.Error()
		} else {
			tr.result.Status = Succeeded
		}
		status := tr.result.Status
		m.mu.Unlock()
		m.met.running.Dec()
		m.met.durations.Observe(time.Since(start).Seconds())
		m.met.wireBytes.Add(out.wire)
		m.met.deliveredBytes.Add(out.delivered)
		if m.hub != nil {
			m.hub.Counter("xferman_jobs_completed_total",
				"Jobs finished, by final status.",
				telemetry.L("status", status.String())).Inc()
			if out.shapedRate > 0 {
				m.hub.Counter("xferman_paced_jobs_total",
					"Jobs whose data plane was rate-shaped, by QoS class.",
					telemetry.L("class", string(job.Class))).Inc()
			}
		}
		close(tr.done)
	}
}

// outcome is one job's final execution state.
type outcome struct {
	checksum string
	bytes    int64
	// wire is payload pushed toward the destination across all
	// attempts, duplicates included; delivered is what durably landed.
	wire       int64
	delivered  int64
	circuit    broker.Disposition
	shapedRate int64
	attempts   int
	trace      string
	replica    string
	err        error
}

// attemptOut is one attempt's report back to the retry loop.
type attemptOut struct {
	checksum string
	bytes    int64 // object size, when learned
	moved    int64 // payload this attempt pushed (exact for streaming, else -1)
	circuit  broker.Disposition
	// shapedRate is the rate this attempt's data plane was shaped to
	// (bits per second; zero when unshaped).
	shapedRate int64
	// dstEngaged: the destination accepted this attempt's STOR, so the
	// object under DstName now reflects this job's own transfer (the
	// windowed server truncates it to the restart base on acceptance)
	// and its SIZE is a trustworthy restart watermark. A failure before
	// acceptance leaves any pre-existing destination object untouched —
	// resuming at its stale SIZE would splice old bytes under new ones.
	dstEngaged bool
	err        error
}

// backoffDelay is the jittered exponential wait before the retry that
// follows attempt n (n >= 1): base doubled per attempt, scaled by a
// uniform 50-150% jitter so synchronized job fleets don't re-dial a
// recovering server in lockstep, capped at max.
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d)+1))
	if d > max {
		d = max
	}
	return d
}

// sleepBackoff waits the backoff out, returning early if the job's
// context is done — a cancelled job must not hold a worker hostage for
// a multi-second backoff.
func sleepBackoff(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// isRestRejected reports whether a resumed attempt died because the
// peer refused to restart mid-object, in which case resuming is off
// the table and the retry must restart from byte zero. Refusal takes
// two shapes: the REST verb itself bounces, or REST is accepted (350)
// and the transfer verb that consumes it bounces — this repo's own
// buffered-STOR server does the latter, answering the resumed STOR
// with 501 "REST not supported", and the windowed server answers 554
// when the restart offset outruns its stored partial. The caller only
// consults this after a nonzero-REST attempt, so a 501/554 on
// STOR/RETR here is a restart rejection, not a syntax quibble.
func isRestRejected(err error) bool {
	var pe *gridftp.ProtocolError
	if !errors.As(err, &pe) {
		return false
	}
	switch pe.Verb {
	case "REST":
		return true
	case "STOR", "RETR":
		return pe.Reply.Code == 501 || pe.Reply.Code == 554
	}
	return false
}

// checkout obtains one attempt's control channel to ep: from the pool
// when the manager has one (the failed previous attempt's channel was
// discarded, so a pooled checkout is always either a healthy reused
// channel or a fresh dial), a plain dial + login otherwise. The
// returned finish func must be called exactly once with the attempt's
// final error: a clean pooled channel parks for the next job, anything
// else closes.
func (m *Manager) checkout(ctx context.Context, ep Endpoint, job Job, opts []gridftp.Option) (*gridftp.Client, func(error), error) {
	if m.pool != nil {
		pc, err := m.pool.Get(ctx, ep.Addr, ep.User, ep.Pass)
		if err != nil {
			return nil, nil, err
		}
		// A pooled channel keeps the transfer state of whoever used it
		// last; one ApplyOptions call rebinds deadlines, window, and
		// trace to this job's (falling back to the client defaults,
		// which a fresh Dial would have applied). Rate shaping is NOT
		// bound here — it depends on the broker's disposition, which the
		// attempt only learns after checkout.
		ctl, data := gridftp.DefaultControlTimeout, gridftp.DefaultDataTimeout
		if job.Timeout > 0 {
			ctl, data = job.Timeout, job.Timeout
		}
		topts := []gridftp.TransferOption{gridftp.WithTimeouts(ctl, data)}
		if job.Stream {
			w := job.WindowBytes
			if w <= 0 {
				w = gridftp.DefaultWindowSize
			}
			topts = append(topts, gridftp.WithTransferWindow(w))
		}
		if tc, ok := telemetry.TraceFrom(ctx); ok {
			topts = append(topts, gridftp.WithTransferTrace(tc))
		}
		if err := pc.ApplyOptions(topts...); err != nil {
			pc.Discard()
			return nil, nil, err
		}
		return pc.Client, func(err error) {
			if err != nil {
				pc.Discard()
				return
			}
			pc.Release()
		}, nil
	}
	c, err := gridftp.Dial(ep.Addr, opts...)
	if err != nil {
		return nil, nil, err
	}
	if err := c.Login(ep.User, ep.Pass); err != nil {
		c.Close()
		return nil, nil, err
	}
	if tc, ok := telemetry.TraceFrom(ctx); ok {
		// Best-effort: an old server that rejects SITE TRID still moves
		// the bytes, it just doesn't show up in the stitched trace.
		_ = c.ApplyOptions(gridftp.WithTransferTrace(tc))
	}
	return c, func(error) { c.Close() }, nil
}

// probeWatermark asks the destination how many contiguous bytes of the
// job's object it holds, over a channel that is not the failed
// attempt's (which may be poisoned): a pooled checkout when the manager
// has a pool, a fresh dial otherwise. Zero means "no usable partial" —
// probing is best-effort and a failed probe only costs resumption.
func (m *Manager) probeWatermark(ctx context.Context, job Job) int64 {
	c, finish, err := m.checkout(ctx, job.Dst, job, job.dialOpts(ctx))
	if err != nil {
		return 0
	}
	n, err := c.Size(job.DstName)
	finish(err)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// execute traces the job when the manager was built WithTracing —
// minting the trace ID, opening the root "job" span every downstream
// span links under, and flight-recording the job boundaries — then
// runs the retry loop.
func (m *Manager) execute(ctx context.Context, job Job) outcome {
	if !m.tracing {
		return m.executeJob(ctx, job, nil)
	}
	tc := telemetry.TraceContext{TraceID: telemetry.NewTraceID()}
	span := m.hub.Span("job", job.SrcName+" -> "+job.DstName, telemetry.PhaseSetup)
	tc.ParentSID = span.SetTrace(tc.TraceID, "")
	ctx = telemetry.WithTrace(ctx, tc)
	m.hub.Event(tc.TraceID, "job_start", fmt.Sprintf("%s -> %s", job.SrcName, job.DstName))
	out := m.executeJob(ctx, job, span)
	out.trace = tc.TraceID
	done := "ok"
	if out.err != nil {
		done = out.err.Error()
	}
	m.hub.Event(tc.TraceID, "job_done",
		fmt.Sprintf("attempts=%d bytes=%d %s", out.attempts, out.bytes, done))
	span.End(out.err)
	return out
}

// executeJob runs one job with retries; every attempt uses control
// channels the failed previous attempt never touched — its own are
// discarded, not recycled, because a failed transfer may have poisoned
// them (pooled checkouts enforce this via Discard-on-error). Between
// attempts it sleeps a jittered exponential backoff, and — unless the
// job opts out — probes the destination's delivered watermark so the
// next attempt restarts there instead of re-sending bytes that already
// landed. A done context stops further attempts. jobSpan, when the job
// is traced, tracks attempts as "stream" phases and inter-attempt
// backoff as "idle".
func (m *Manager) executeJob(ctx context.Context, job Job, jobSpan *telemetry.Span) outcome {
	var out outcome
	out.circuit = broker.Disposition{Service: broker.ServiceIP}
	resumeFrom := int64(0)
	canResume := !job.NoResume
	for attempt := 1; attempt <= job.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if out.err == nil {
				out.err = err
			}
			return out
		}
		out.attempts = attempt
		if resumeFrom > 0 {
			m.met.resumed.Inc()
			if trace := telemetry.TraceIDFrom(ctx); trace != "" {
				m.hub.Event(trace, "resume",
					fmt.Sprintf("attempt=%d offset=%d", attempt, resumeFrom))
			}
		}
		jobSpan.Phase(telemetry.PhaseStream)
		// A fleet-managed job resolves its source replica per attempt:
		// the dispatcher sees the loads as they are NOW, so a retry after
		// a multi-second failed attempt may land somewhere better than
		// the first placement did (a rebalance).
		ajob := job
		var placement *fleet.Placement
		if m.fleet != nil && job.Src.Addr == "" {
			size := job.SizeHint
			if out.bytes > 0 {
				size = out.bytes
			}
			p, err := m.fleet.Place(ctx, fleet.Request{SizeBytes: size, Previous: out.replica})
			if err != nil {
				if out.err == nil {
					out.err = fmt.Errorf("fleet place: %w", err)
				}
				return out
			}
			placement = p
			ajob.Src.Addr = p.Addr
			out.replica = p.Addr
			if trace := telemetry.TraceIDFrom(ctx); trace != "" {
				m.hub.Event(trace, "fleet_placed",
					fmt.Sprintf("attempt=%d replica=%s fallback=%v", attempt, p.Addr, p.Fallback))
			}
		}
		attemptStart := time.Now()
		at := m.attempt(ctx, ajob, resumeFrom)
		if placement != nil {
			moved := at.moved
			if moved < 0 && at.err == nil && at.bytes > resumeFrom {
				moved = at.bytes - resumeFrom
			}
			placement.Complete(moved, time.Since(attemptStart), at.err)
		}
		out.checksum, out.circuit, out.err = at.checksum, at.circuit, at.err
		out.shapedRate = at.shapedRate
		if at.bytes > 0 {
			out.bytes = at.bytes
		}
		if at.moved >= 0 {
			out.wire += at.moved
		}
		if at.err == nil {
			// Third-party attempts can't see their own wire count; the
			// delta from the restart offset to the object end is exact
			// for a clean attempt (skipped when the size never became
			// known — better to undercount than invent bytes).
			if at.moved < 0 && out.bytes > resumeFrom {
				out.wire += out.bytes - resumeFrom
			}
			out.delivered = out.bytes
			return out
		}
		if attempt == job.MaxAttempts {
			break
		}
		// Work out where the next attempt starts. The watermark probe
		// doubles as wire accounting for third-party attempts: bytes
		// that became durable during the failed attempt were moved by
		// it.
		if resumeFrom > 0 && isRestRejected(at.err) {
			// The endpoint doesn't do restarts; stop asking.
			canResume = false
			resumeFrom = 0
		} else if at.dstEngaged {
			if w := m.probeWatermark(ctx, job); w > resumeFrom && (out.bytes <= 0 || w < out.bytes) {
				if at.moved < 0 {
					out.wire += w - resumeFrom
				}
				if canResume {
					resumeFrom = w
				}
			}
		}
		out.delivered = resumeFrom
		m.met.retries.Inc()
		if trace := telemetry.TraceIDFrom(ctx); trace != "" {
			m.hub.Event(trace, "retry",
				fmt.Sprintf("attempt=%d failed: %v", attempt, at.err))
		}
		jobSpan.Phase(telemetry.PhaseIdle)
		if err := sleepBackoff(ctx, backoffDelay(job.RetryBackoff, job.RetryBackoffMax, attempt)); err != nil {
			return out
		}
	}
	return out
}

// attempt runs one try of the transfer: dial and authenticate both
// endpoints, size the object, let the broker take the circuit decision,
// then move the data — restarting at resumeFrom when a prior attempt
// already delivered a prefix — and verify.
func (m *Manager) attempt(ctx context.Context, job Job, resumeFrom int64) attemptOut {
	out := attemptOut{circuit: broker.Disposition{Service: broker.ServiceIP}, moved: -1}
	opts := job.dialOpts(ctx)
	if m.hub != nil {
		opts = append(opts, gridftp.WithTelemetry(m.hub))
	}
	src, srcFinish, err := m.checkout(ctx, job.Src, job, opts)
	if err != nil {
		out.err = fmt.Errorf("dial src: %w", err)
		return out
	}
	defer func() { srcFinish(out.err) }()
	dst, dstFinish, err := m.checkout(ctx, job.Dst, job, opts)
	if err != nil {
		out.err = fmt.Errorf("dial dst: %w", err)
		return out
	}
	defer func() { dstFinish(out.err) }()
	out.bytes = job.SizeHint
	if out.bytes <= 0 && (m.broker != nil || job.Stream || !job.NoResume) {
		// The broker sizes circuits from bytes, the streaming relay
		// needs the region length, and resume-aware retries clamp
		// destination watermarks against it; a failed probe just means
		// an unhinted decision, not a failed job.
		if n, err := src.Size(job.SrcName); err == nil {
			out.bytes = n
		}
	}
	lease := m.broker.Begin(ctx, job.Src.Addr, job.Dst.Addr, out.bytes)
	out.circuit = lease.Disposition()
	// Resolve the rate this attempt's data plane is shaped to and wire
	// the enforcement in. A VC job is shaped to the broker's reserved
	// rate automatically — the reservation becomes a wire-level fact —
	// unless the job pins its own RateBps; otherwise the class table
	// applies. Streaming jobs pace locally (the STOR leg's bucket
	// backpressures the RETR leg through the pipe) and re-fill the
	// bucket live when a later extension re-books the circuit at a new
	// rate. Third-party jobs never touch the data, so the source server
	// is asked to shape its session instead (SITE RATE).
	out.shapedRate = m.rateFor(job, out.circuit)
	var lim *pacing.Limiter
	if out.shapedRate > 0 {
		if job.Stream {
			b := pacing.NewBucket(out.shapedRate, 0)
			lease.OnRateChange(func(bps float64) {
				if bps > 0 {
					b.SetRate(int64(bps))
				}
			})
			lim = pacing.NewLimiter(b)
		} else if aerr := src.ApplyOptions(gridftp.WithRate(out.shapedRate)); aerr != nil {
			lease.End(0, 0)
			out.err = fmt.Errorf("shape src: %w", aerr)
			return out
		}
	}
	xferStart := time.Now()
	if job.Stream {
		out.moved, out.dstEngaged, err = m.streamRelay(ctx, src, dst, job, resumeFrom, out.bytes, lim)
	} else {
		out.dstEngaged, err = gridftp.ThirdPartyFrom(src, dst, job.SrcName, job.DstName, resumeFrom)
	}
	if err != nil {
		lease.End(0, time.Since(xferStart))
		out.err = fmt.Errorf("transfer: %w", err)
		return out
	}
	lease.End(out.bytes, time.Since(xferStart))
	if !job.Verify {
		return out
	}
	want, err := src.Checksum(job.SrcName)
	if err != nil {
		out.err = fmt.Errorf("src checksum: %w", err)
		return out
	}
	got, err := dst.Checksum(job.DstName)
	if err != nil {
		out.err = fmt.Errorf("dst checksum: %w", err)
		return out
	}
	if want != got {
		out.err = fmt.Errorf("checksum mismatch: src %s, dst %s", want, got)
		return out
	}
	out.checksum = got
	return out
}

// rateFor resolves one attempt's shaping rate: the job's own pin, else
// the broker's reserved circuit rate, else the class table (zero means
// unshaped — the default for every class without a configured rate).
func (m *Manager) rateFor(job Job, disp broker.Disposition) int64 {
	if job.RateBps > 0 {
		return job.RateBps
	}
	if disp.Service == broker.ServiceVC && disp.RateBps > 0 {
		return int64(disp.RateBps)
	}
	return m.classRates[job.Class]
}

// streamRelay moves srcName through this process: a streaming RETR
// feeds an io.Pipe that a streaming STOR drains, both restarting at
// base. Memory is bounded by the client window on the read side and a
// few blocks on the write side. Returns the payload pushed to dst
// (duplicates included), which is exact even on failure, plus whether
// dst accepted the STOR — the precondition for trusting its SIZE as
// this job's watermark on the next attempt.
func (m *Manager) streamRelay(ctx context.Context, src, dst *gridftp.Client, job Job, base, size int64, lim *pacing.Limiter) (int64, bool, error) {
	pr, pw := io.Pipe()
	region := int64(-1)
	if size > 0 {
		region = size - base
	}
	type storDone struct {
		stats gridftp.TransferStats
		err   error
	}
	done := make(chan storDone, 1)
	go func() {
		// The limiter paces only the STOR leg; the pipe's backpressure
		// throttles the RETR leg to the same rate transitively.
		stats, err := dst.StorFromAt(ctx, job.DstName, pr, base, region, gridftp.WithLimiter(lim))
		// Unblock the RETR side if the STOR leg died first.
		pr.CloseWithError(err)
		done <- storDone{stats, err}
	}()
	_, retrErr := src.RetrToAt(ctx, job.SrcName, pw, base)
	// nil closes the pipe cleanly (EOF): the STOR leg finishes its
	// drain; an error propagates to its reader as the source failure.
	pw.CloseWithError(retrErr)
	stor := <-done
	if retrErr != nil {
		return stor.stats.WireBytes, stor.stats.StorAccepted, fmt.Errorf("retr leg: %w", retrErr)
	}
	if stor.err != nil {
		return stor.stats.WireBytes, stor.stats.StorAccepted, fmt.Errorf("stor leg: %w", stor.err)
	}
	return stor.stats.WireBytes, stor.stats.StorAccepted, nil
}
