// Package xferman is a managed-transfer service in the mould of Globus
// Online, which the paper names as the future source of its datasets: it
// queues third-party GridFTP transfer jobs, executes them on a worker
// pool, retries failures with fresh control channels, and verifies
// integrity with the CKSM checksum command — the "secure and reliable
// data transfers" feature set §II attributes to GridFTP, operated as a
// service.
package xferman

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gftpvc/internal/gridftp"
	"gftpvc/internal/telemetry"
)

// Endpoint identifies one GridFTP server and the credentials to use.
type Endpoint struct {
	Addr string
	User string
	Pass string
}

// Job is one requested transfer: move SrcName on Src to DstName on Dst.
type Job struct {
	Src, Dst Endpoint
	SrcName  string
	DstName  string
	// MaxAttempts bounds retries (default 3).
	MaxAttempts int
	// Verify compares src/dst CRC32 checksums after the transfer.
	Verify bool
	// Timeout bounds every control and data I/O on both endpoints'
	// connections. Zero uses the gridftp client defaults (30s); it is a
	// per-operation deadline, not a whole-job budget, so arbitrarily
	// large transfers still complete as long as bytes keep moving.
	Timeout time.Duration
}

func (j *Job) normalize() error {
	if j.Src.Addr == "" || j.Dst.Addr == "" {
		return errors.New("xferman: endpoints required")
	}
	if j.SrcName == "" || j.DstName == "" {
		return errors.New("xferman: object names required")
	}
	if j.MaxAttempts == 0 {
		j.MaxAttempts = 3
	}
	if j.MaxAttempts < 1 {
		return errors.New("xferman: MaxAttempts must be >= 1")
	}
	if j.Timeout < 0 {
		return errors.New("xferman: Timeout must be >= 0")
	}
	return nil
}

// dialOpts translates the job's Timeout into gridftp client options.
func (j *Job) dialOpts() []gridftp.Option {
	if j.Timeout <= 0 {
		return nil
	}
	return []gridftp.Option{
		gridftp.WithControlTimeout(j.Timeout),
		gridftp.WithDataTimeout(j.Timeout),
	}
}

// Status is a job's lifecycle state.
type Status int

const (
	// Queued: accepted, not yet picked up by a worker.
	Queued Status = iota
	// Running: a worker is executing the transfer.
	Running
	// Succeeded: transferred (and verified, when requested).
	Succeeded
	// Failed: all attempts exhausted.
	Failed
)

func (s Status) String() string {
	switch s {
	case Queued:
		return "QUEUED"
	case Running:
		return "RUNNING"
	case Succeeded:
		return "SUCCEEDED"
	case Failed:
		return "FAILED"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// JobID identifies a submitted job.
type JobID int64

// Result is a job's current state.
type Result struct {
	ID       JobID
	Job      Job
	Status   Status
	Attempts int
	// Err holds the final failure (or the last retried one on success).
	Err string
	// Checksum is the verified CRC32 when Verify was requested.
	Checksum string
	Duration time.Duration
}

type tracked struct {
	result Result
	done   chan struct{}
}

// Manager executes jobs on a bounded worker pool.
type Manager struct {
	queue chan JobID

	mu     sync.Mutex
	jobs   map[JobID]*tracked
	nextID JobID

	wg     sync.WaitGroup
	closed bool

	hub *telemetry.Hub
	met xmMetrics
}

// xmMetrics is the manager's instrument set. With a nil hub every
// instrument is nil and the calls are no-ops.
type xmMetrics struct {
	submitted  *telemetry.Counter
	queueDepth *telemetry.Gauge
	running    *telemetry.Gauge
	retries    *telemetry.Counter
	durations  *telemetry.Histogram
}

// Option configures a Manager.
type Option func(*Manager)

// WithTelemetry publishes queue, retry, and job-latency metrics on hub
// and threads the hub into every gridftp client the manager dials, so
// worker-driven transfers show up as client spans and metrics too.
func WithTelemetry(hub *telemetry.Hub) Option {
	return func(m *Manager) { m.hub = hub }
}

// New starts a manager with the given number of workers.
func New(workers int, opts ...Option) (*Manager, error) {
	if workers < 1 {
		return nil, errors.New("xferman: need at least one worker")
	}
	m := &Manager{
		queue: make(chan JobID, 1024),
		jobs:  make(map[JobID]*tracked),
	}
	for _, opt := range opts {
		opt(m)
	}
	if m.hub != nil {
		m.met = xmMetrics{
			submitted: m.hub.Counter("xferman_jobs_submitted_total",
				"Transfer jobs accepted into the queue."),
			queueDepth: m.hub.Gauge("xferman_queue_depth",
				"Jobs queued and not yet picked up by a worker."),
			running: m.hub.Gauge("xferman_jobs_running",
				"Jobs currently executing on a worker."),
			retries: m.hub.Counter("xferman_retries_total",
				"Failed attempts that were retried with fresh control channels."),
			durations: m.hub.Histogram("xferman_job_duration_seconds",
				"End-to-end job latency including retries.", telemetry.DurationBuckets),
		}
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Submit queues a job and returns its ID.
func (m *Manager) Submit(job Job) (JobID, error) {
	if err := job.normalize(); err != nil {
		return 0, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, errors.New("xferman: manager closed")
	}
	m.nextID++
	id := m.nextID
	m.jobs[id] = &tracked{
		result: Result{ID: id, Job: job, Status: Queued},
		done:   make(chan struct{}),
	}
	m.mu.Unlock()
	m.met.submitted.Inc()
	m.met.queueDepth.Inc()
	m.queue <- id
	return id, nil
}

// Wait blocks until the job finishes and returns its result.
func (m *Manager) Wait(id JobID) (Result, error) {
	m.mu.Lock()
	tr := m.jobs[id]
	m.mu.Unlock()
	if tr == nil {
		return Result{}, fmt.Errorf("xferman: unknown job %d", id)
	}
	<-tr.done
	m.mu.Lock()
	defer m.mu.Unlock()
	return tr.result, nil
}

// Result returns a job's current state without blocking.
func (m *Manager) Result(id JobID) (Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tr := m.jobs[id]
	if tr == nil {
		return Result{}, fmt.Errorf("xferman: unknown job %d", id)
	}
	return tr.result, nil
}

// SubmitAll lists the source endpoint's objects under prefix (NLST) and
// submits one job per object, preserving names at the destination. tmpl
// provides MaxAttempts/Verify; its endpoints and names are overwritten.
func (m *Manager) SubmitAll(src, dst Endpoint, prefix string, tmpl Job) ([]JobID, error) {
	c, err := gridftp.Dial(src.Addr, tmpl.dialOpts()...)
	if err != nil {
		return nil, fmt.Errorf("xferman: dial src: %w", err)
	}
	defer c.Close()
	if err := c.Login(src.User, src.Pass); err != nil {
		return nil, fmt.Errorf("xferman: login src: %w", err)
	}
	names, err := c.List(prefix)
	if err != nil {
		return nil, fmt.Errorf("xferman: list: %w", err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("xferman: no objects under %q", prefix)
	}
	ids := make([]JobID, 0, len(names))
	for _, name := range names {
		job := tmpl
		job.Src, job.Dst = src, dst
		job.SrcName, job.DstName = name, name
		id, err := m.Submit(job)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Close stops accepting jobs and waits for in-flight work to finish.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.queue)
	m.wg.Wait()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for id := range m.queue {
		m.mu.Lock()
		tr := m.jobs[id]
		tr.result.Status = Running
		job := tr.result.Job
		m.mu.Unlock()
		m.met.queueDepth.Dec()
		m.met.running.Inc()

		start := time.Now()
		checksum, attempts, err := m.execute(job)
		m.mu.Lock()
		tr.result.Attempts = attempts
		tr.result.Duration = time.Since(start)
		tr.result.Checksum = checksum
		if err != nil {
			tr.result.Status = Failed
			tr.result.Err = err.Error()
		} else {
			tr.result.Status = Succeeded
		}
		status := tr.result.Status
		m.mu.Unlock()
		m.met.running.Dec()
		m.met.durations.Observe(time.Since(start).Seconds())
		if m.hub != nil {
			m.hub.Counter("xferman_jobs_completed_total",
				"Jobs finished, by final status.",
				telemetry.L("status", status.String())).Inc()
		}
		close(tr.done)
	}
}

// execute runs one job with retries; every attempt uses fresh control
// channels (a failed transfer may have poisoned the old ones).
func (m *Manager) execute(job Job) (checksum string, attempts int, err error) {
	for attempts = 1; attempts <= job.MaxAttempts; attempts++ {
		checksum, err = m.attempt(job)
		if err == nil {
			return checksum, attempts, nil
		}
		if attempts < job.MaxAttempts {
			m.met.retries.Inc()
		}
	}
	return "", attempts - 1, err
}

func (m *Manager) attempt(job Job) (string, error) {
	opts := job.dialOpts()
	if m.hub != nil {
		opts = append(opts, gridftp.WithTelemetry(m.hub))
	}
	src, err := gridftp.Dial(job.Src.Addr, opts...)
	if err != nil {
		return "", fmt.Errorf("dial src: %w", err)
	}
	defer src.Close()
	if err := src.Login(job.Src.User, job.Src.Pass); err != nil {
		return "", fmt.Errorf("login src: %w", err)
	}
	dst, err := gridftp.Dial(job.Dst.Addr, opts...)
	if err != nil {
		return "", fmt.Errorf("dial dst: %w", err)
	}
	defer dst.Close()
	if err := dst.Login(job.Dst.User, job.Dst.Pass); err != nil {
		return "", fmt.Errorf("login dst: %w", err)
	}
	if err := gridftp.ThirdParty(src, dst, job.SrcName, job.DstName); err != nil {
		return "", fmt.Errorf("transfer: %w", err)
	}
	if !job.Verify {
		return "", nil
	}
	want, err := src.Checksum(job.SrcName)
	if err != nil {
		return "", fmt.Errorf("src checksum: %w", err)
	}
	got, err := dst.Checksum(job.DstName)
	if err != nil {
		return "", fmt.Errorf("dst checksum: %w", err)
	}
	if want != got {
		return "", fmt.Errorf("checksum mismatch: src %s, dst %s", want, got)
	}
	return got, nil
}
