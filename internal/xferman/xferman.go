// Package xferman is a managed-transfer service in the mould of Globus
// Online, which the paper names as the future source of its datasets: it
// queues third-party GridFTP transfer jobs, executes them on a worker
// pool, retries failures with fresh control channels, and verifies
// integrity with the CKSM checksum command — the "secure and reliable
// data transfers" feature set §II attributes to GridFTP, operated as a
// service.
//
// The manager is the dispatch point of the hybrid VC/IP control plane:
// wire a circuit broker in with WithBroker and every job is offered to
// it before the data moves. Sessions long enough to amortize the VC
// setup delay ride a reserved circuit; everything else (and every job
// when no broker is configured) goes over best-effort IP. The verdict
// for each job is recorded in its Result.Circuit disposition.
//
// All blocking entry points — Submit, Wait, SubmitAll — take a
// context.Context, which also governs the job's own network dials and
// its broker decision RPCs.
package xferman

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gftpvc/internal/gridftp"
	"gftpvc/internal/telemetry"
	"gftpvc/internal/vc/broker"
)

// Sentinel errors, matchable with errors.Is.
var (
	// ErrClosed: the manager has been closed; no further submissions.
	ErrClosed = errors.New("xferman: manager closed")
	// ErrUnknownJob: the JobID was never issued by this manager.
	ErrUnknownJob = errors.New("xferman: unknown job")
)

// Endpoint identifies one GridFTP server and the credentials to use.
type Endpoint struct {
	Addr string
	User string
	Pass string
}

// Job is one requested transfer: move SrcName on Src to DstName on Dst.
type Job struct {
	Src, Dst Endpoint
	SrcName  string
	DstName  string
	// MaxAttempts bounds retries (default 3).
	MaxAttempts int
	// Verify compares src/dst CRC32 checksums after the transfer.
	Verify bool
	// Timeout bounds every control and data I/O on both endpoints'
	// connections. Zero uses the gridftp client defaults (30s); it is a
	// per-operation deadline, not a whole-job budget, so arbitrarily
	// large transfers still complete as long as bytes keep moving.
	Timeout time.Duration
	// SizeHint, when positive, tells the circuit broker how many bytes
	// this job expects to move without a SIZE round trip. Zero means
	// probe the source.
	SizeHint int64
}

func (j *Job) normalize() error {
	if j.Src.Addr == "" || j.Dst.Addr == "" {
		return errors.New("xferman: endpoints required")
	}
	if j.SrcName == "" || j.DstName == "" {
		return errors.New("xferman: object names required")
	}
	if j.MaxAttempts == 0 {
		j.MaxAttempts = 3
	}
	if j.MaxAttempts < 1 {
		return errors.New("xferman: MaxAttempts must be >= 1")
	}
	if j.Timeout < 0 {
		return errors.New("xferman: Timeout must be >= 0")
	}
	if j.SizeHint < 0 {
		return errors.New("xferman: SizeHint must be >= 0")
	}
	return nil
}

// dialOpts translates the job's Timeout into gridftp client options and
// binds every dial (control and data) to ctx, so cancelling the job's
// context aborts connection establishment immediately.
func (j *Job) dialOpts(ctx context.Context) []gridftp.Option {
	var d net.Dialer
	opts := []gridftp.Option{
		gridftp.WithDialFunc(func(network, addr string) (net.Conn, error) {
			return d.DialContext(ctx, network, addr)
		}),
	}
	if j.Timeout > 0 {
		opts = append(opts,
			gridftp.WithControlTimeout(j.Timeout),
			gridftp.WithDataTimeout(j.Timeout),
		)
	}
	return opts
}

// Status is a job's lifecycle state.
type Status int

const (
	// Queued: accepted, not yet picked up by a worker.
	Queued Status = iota
	// Running: a worker is executing the transfer.
	Running
	// Succeeded: transferred (and verified, when requested).
	Succeeded
	// Failed: all attempts exhausted.
	Failed
)

func (s Status) String() string {
	switch s {
	case Queued:
		return "QUEUED"
	case Running:
		return "RUNNING"
	case Succeeded:
		return "SUCCEEDED"
	case Failed:
		return "FAILED"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// JobID identifies a submitted job.
type JobID int64

// Result is a job's current state.
type Result struct {
	ID       JobID
	Job      Job
	Status   Status
	Attempts int
	// Err holds the final failure (or the last retried one on success).
	Err string
	// Checksum is the verified CRC32 when Verify was requested.
	Checksum string
	Duration time.Duration
	// Bytes is the object size the transfer moved (from SizeHint or a
	// SIZE probe; zero when neither was available).
	Bytes int64
	// Circuit records how the hybrid control plane dispatched this job:
	// reserved circuit vs best-effort IP, the circuit ID, the setup wait
	// this job paid, and the fallback reason when a wanted circuit was
	// not obtained. Jobs on a manager without a broker report plain IP.
	Circuit broker.Disposition
}

type tracked struct {
	result Result
	ctx    context.Context
	done   chan struct{}
}

// Manager executes jobs on a bounded worker pool.
type Manager struct {
	queue chan JobID

	mu         sync.Mutex
	jobs       map[JobID]*tracked
	nextID     JobID
	submitting sync.WaitGroup // in-flight Submit sends, gated by mu+closed

	wg     sync.WaitGroup
	closed bool

	hub    *telemetry.Hub
	broker *broker.Broker
	met    xmMetrics
}

// xmMetrics is the manager's instrument set. With a nil hub every
// instrument is nil and the calls are no-ops.
type xmMetrics struct {
	submitted  *telemetry.Counter
	queueDepth *telemetry.Gauge
	running    *telemetry.Gauge
	retries    *telemetry.Counter
	durations  *telemetry.Histogram
}

// Option configures a Manager.
type Option func(*Manager)

// WithTelemetry publishes queue, retry, and job-latency metrics on hub
// and threads the hub into every gridftp client the manager dials, so
// worker-driven transfers show up as client spans and metrics too.
func WithTelemetry(hub *telemetry.Hub) Option {
	return func(m *Manager) { m.hub = hub }
}

// WithBroker offers every job to a session-aware circuit broker before
// its data moves; the broker's verdict lands in Result.Circuit. The
// manager does not own the broker — close the manager first, then the
// broker, then its client.
func WithBroker(b *broker.Broker) Option {
	return func(m *Manager) { m.broker = b }
}

// New starts a manager with the given number of workers.
func New(workers int, opts ...Option) (*Manager, error) {
	if workers < 1 {
		return nil, errors.New("xferman: need at least one worker")
	}
	m := &Manager{
		queue: make(chan JobID, 1024),
		jobs:  make(map[JobID]*tracked),
	}
	for _, opt := range opts {
		opt(m)
	}
	if m.hub != nil {
		m.met = xmMetrics{
			submitted: m.hub.Counter("xferman_jobs_submitted_total",
				"Transfer jobs accepted into the queue."),
			queueDepth: m.hub.Gauge("xferman_queue_depth",
				"Jobs queued and not yet picked up by a worker."),
			running: m.hub.Gauge("xferman_jobs_running",
				"Jobs currently executing on a worker."),
			retries: m.hub.Counter("xferman_retries_total",
				"Failed attempts that were retried with fresh control channels."),
			durations: m.hub.Histogram("xferman_job_duration_seconds",
				"End-to-end job latency including retries.", telemetry.DurationBuckets),
		}
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Submit queues a job and returns its ID. ctx governs the job for its
// whole life: a cancelled context stops retries and aborts the job's
// network dials. Submit after Close returns ErrClosed.
func (m *Manager) Submit(ctx context.Context, job Job) (JobID, error) {
	if err := job.normalize(); err != nil {
		return 0, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, ErrClosed
	}
	m.nextID++
	id := m.nextID
	m.jobs[id] = &tracked{
		result: Result{ID: id, Job: job, Status: Queued},
		ctx:    ctx,
		done:   make(chan struct{}),
	}
	// Register the queue send while still under the closed check, so
	// Close cannot close(m.queue) between our unlock and the send.
	m.submitting.Add(1)
	m.mu.Unlock()
	m.met.submitted.Inc()
	m.met.queueDepth.Inc()
	m.queue <- id
	m.submitting.Done()
	return id, nil
}

// Wait blocks until the job finishes (or ctx is done) and returns its
// result. An unknown ID reports ErrUnknownJob.
func (m *Manager) Wait(ctx context.Context, id JobID) (Result, error) {
	m.mu.Lock()
	tr := m.jobs[id]
	m.mu.Unlock()
	if tr == nil {
		return Result{}, fmt.Errorf("%w %d", ErrUnknownJob, id)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-tr.done:
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return tr.result, nil
}

// Result returns a job's current state without blocking. An unknown ID
// reports ErrUnknownJob.
func (m *Manager) Result(id JobID) (Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tr := m.jobs[id]
	if tr == nil {
		return Result{}, fmt.Errorf("%w %d", ErrUnknownJob, id)
	}
	return tr.result, nil
}

// SubmitAll lists the source endpoint's objects under prefix (NLST) and
// submits one job per object, preserving names at the destination. tmpl
// provides MaxAttempts/Verify/Timeout; its endpoints and names are
// overwritten. ctx bounds the listing dial and carries into every
// submitted job.
func (m *Manager) SubmitAll(ctx context.Context, src, dst Endpoint, prefix string, tmpl Job) ([]JobID, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c, err := gridftp.Dial(src.Addr, tmpl.dialOpts(ctx)...)
	if err != nil {
		return nil, fmt.Errorf("xferman: dial src: %w", err)
	}
	defer c.Close()
	if err := c.Login(src.User, src.Pass); err != nil {
		return nil, fmt.Errorf("xferman: login src: %w", err)
	}
	names, err := c.List(prefix)
	if err != nil {
		return nil, fmt.Errorf("xferman: list: %w", err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("xferman: no objects under %q", prefix)
	}
	ids := make([]JobID, 0, len(names))
	for _, name := range names {
		job := tmpl
		job.Src, job.Dst = src, dst
		job.SrcName, job.DstName = name, name
		id, err := m.Submit(ctx, job)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Close stops accepting jobs and waits for in-flight work to finish.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	// Every Submit that passed the closed check has registered its send;
	// wait those out before closing the channel they send on.
	m.submitting.Wait()
	close(m.queue)
	m.wg.Wait()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for id := range m.queue {
		m.mu.Lock()
		tr := m.jobs[id]
		tr.result.Status = Running
		job := tr.result.Job
		ctx := tr.ctx
		m.mu.Unlock()
		m.met.queueDepth.Dec()
		m.met.running.Inc()

		start := time.Now()
		out := m.execute(ctx, job)
		m.mu.Lock()
		tr.result.Attempts = out.attempts
		tr.result.Duration = time.Since(start)
		tr.result.Checksum = out.checksum
		tr.result.Bytes = out.bytes
		tr.result.Circuit = out.circuit
		if out.err != nil {
			tr.result.Status = Failed
			tr.result.Err = out.err.Error()
		} else {
			tr.result.Status = Succeeded
		}
		status := tr.result.Status
		m.mu.Unlock()
		m.met.running.Dec()
		m.met.durations.Observe(time.Since(start).Seconds())
		if m.hub != nil {
			m.hub.Counter("xferman_jobs_completed_total",
				"Jobs finished, by final status.",
				telemetry.L("status", status.String())).Inc()
		}
		close(tr.done)
	}
}

// outcome is one job's final execution state.
type outcome struct {
	checksum string
	bytes    int64
	circuit  broker.Disposition
	attempts int
	err      error
}

// execute runs one job with retries; every attempt uses fresh control
// channels (a failed transfer may have poisoned the old ones). A done
// context stops further attempts.
func (m *Manager) execute(ctx context.Context, job Job) outcome {
	var out outcome
	out.circuit = broker.Disposition{Service: broker.ServiceIP}
	for attempt := 1; attempt <= job.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if out.err == nil {
				out.err = err
			}
			return out
		}
		out.attempts = attempt
		out.checksum, out.bytes, out.circuit, out.err = m.attempt(ctx, job)
		if out.err == nil {
			return out
		}
		if attempt < job.MaxAttempts {
			m.met.retries.Inc()
		}
	}
	return out
}

// attempt runs one try of the transfer: dial and authenticate both
// endpoints, size the object, let the broker take the circuit decision,
// then move the data and verify.
func (m *Manager) attempt(ctx context.Context, job Job) (string, int64, broker.Disposition, error) {
	ip := broker.Disposition{Service: broker.ServiceIP}
	opts := job.dialOpts(ctx)
	if m.hub != nil {
		opts = append(opts, gridftp.WithTelemetry(m.hub))
	}
	src, err := gridftp.Dial(job.Src.Addr, opts...)
	if err != nil {
		return "", 0, ip, fmt.Errorf("dial src: %w", err)
	}
	defer src.Close()
	if err := src.Login(job.Src.User, job.Src.Pass); err != nil {
		return "", 0, ip, fmt.Errorf("login src: %w", err)
	}
	dst, err := gridftp.Dial(job.Dst.Addr, opts...)
	if err != nil {
		return "", 0, ip, fmt.Errorf("dial dst: %w", err)
	}
	defer dst.Close()
	if err := dst.Login(job.Dst.User, job.Dst.Pass); err != nil {
		return "", 0, ip, fmt.Errorf("login dst: %w", err)
	}
	bytes := job.SizeHint
	if bytes <= 0 && m.broker != nil {
		// The broker sizes circuits from bytes; a failed probe just means
		// an unhinted decision, not a failed job.
		if n, err := src.Size(job.SrcName); err == nil {
			bytes = n
		}
	}
	lease := m.broker.Begin(ctx, job.Src.Addr, job.Dst.Addr, bytes)
	disp := lease.Disposition()
	xferStart := time.Now()
	err = gridftp.ThirdParty(src, dst, job.SrcName, job.DstName)
	if err != nil {
		lease.End(0, time.Since(xferStart))
		return "", bytes, disp, fmt.Errorf("transfer: %w", err)
	}
	lease.End(bytes, time.Since(xferStart))
	if !job.Verify {
		return "", bytes, disp, nil
	}
	want, err := src.Checksum(job.SrcName)
	if err != nil {
		return "", bytes, disp, fmt.Errorf("src checksum: %w", err)
	}
	got, err := dst.Checksum(job.DstName)
	if err != nil {
		return "", bytes, disp, fmt.Errorf("dst checksum: %w", err)
	}
	if want != got {
		return "", bytes, disp, fmt.Errorf("checksum mismatch: src %s, dst %s", want, got)
	}
	return got, bytes, disp, nil
}
