package xferman

import (
	"context"
	"strings"
	"testing"
	"time"

	"gftpvc/internal/gridftp"
	"gftpvc/internal/oscarsd"
	"gftpvc/internal/telemetry"
	"gftpvc/internal/vc"
	"gftpvc/internal/vc/broker"
)

// TestHybridDispatchEndToEnd is the acceptance drill for the hybrid
// control plane, against live gftpd and oscarsd daemons: one session
// rides a reserved circuit, a second falls back to IP after an
// admission reject, and both dispositions are visible on each job's
// Result and on the telemetry exposition. Transfers succeed either way.
func TestHybridDispatchEndToEnd(t *testing.T) {
	hub := telemetry.NewHub()

	srcStore := gridftp.NewMemStore()
	for _, n := range []string{"a.nc", "b.nc", "c.nc"} {
		srcStore.Put(n, payload(512<<10))
	}
	srv := func(store gridftp.Store) *gridftp.Server {
		s, err := gridftp.Serve(gridftp.Config{
			Addr: "127.0.0.1:0", Store: store, Telemetry: hub,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	src, dst := srv(srcStore), srv(gridftp.NewMemStore())

	osrv, err := oscarsd.Start(oscarsd.Config{
		Addr: "127.0.0.1:0", Scenario: "nersc-ornl",
		ReservableFraction: 0.5, Telemetry: hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { osrv.Close() })
	ctx := context.Background()
	client, err := vc.Dial(ctx, osrv.Addr(), vc.WithTelemetry(hub))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	const gap = 150 * time.Millisecond
	bk, err := broker.New(client, broker.Config{
		Gap:        gap,
		SetupDelay: 50 * time.Millisecond,
		MinRateBps: 1e9, MaxRateBps: 1e9,
		Route:     broker.StaticRoute("nersc-ornl-dtn-src", "nersc-ornl-dtn-dst"),
		Telemetry: hub,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bk.Close)

	m, err := New(1, WithTelemetry(hub), WithBroker(bk))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	run := func(srcName, dstName string) Result {
		t.Helper()
		id, err := m.Submit(ctx, Job{
			Src: ep(src), Dst: ep(dst),
			SrcName: srcName, DstName: dstName,
			Verify: true, SizeHint: 256 << 20, // bulk enough to want a circuit
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Succeeded {
			t.Fatalf("%s: %v (%s)", srcName, res.Status, res.Err)
		}
		return res
	}

	// Session 1: reservable bandwidth is free — jobs ride a circuit.
	r1 := run("a.nc", "copy-a.nc")
	if r1.Circuit.Service != broker.ServiceVC || r1.Circuit.CircuitID == 0 {
		t.Fatalf("session 1 job 1 disposition %+v, want VC", r1.Circuit)
	}
	r2 := run("b.nc", "copy-b.nc")
	if r2.Circuit.Service != broker.ServiceVC || r2.Circuit.CircuitID != r1.Circuit.CircuitID {
		t.Fatalf("session 1 job 2 disposition %+v, want circuit %d",
			r2.Circuit, r1.Circuit.CircuitID)
	}

	// Close the session, then saturate the path so admission rejects.
	time.Sleep(2*gap + 100*time.Millisecond)
	now, err := client.Now(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hog, err := client.Reserve(ctx, vc.ReserveRequest{
		Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
		RateBps: 4.5e9, Start: now + 1, End: now + 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Cancel(ctx, hog.ID)

	// Session 2: the circuit ask is rejected; the transfer still
	// succeeds, over IP, with the reject on the disposition.
	r3 := run("c.nc", "copy-c.nc")
	if r3.Circuit.Service != broker.ServiceIP ||
		!strings.Contains(r3.Circuit.Fallback, "admission rejected") {
		t.Fatalf("session 2 disposition %+v, want IP admission-reject fallback", r3.Circuit)
	}

	// Both dispositions are on /metrics too.
	var dump strings.Builder
	hub.Registry().WriteProm(&dump)
	out := dump.String()
	for _, want := range []string{
		`vc_broker_jobs_total{service="vc"} 2`,
		`vc_broker_jobs_total{service="ip"} 1`,
		`vc_broker_reserved_total 1`,
		`vc_broker_fallback_total{reason="rejected"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
