package xferman

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gftpvc/internal/fleet"
	"gftpvc/internal/gridftp"
)

// fakeTelemetry serves the minimal scrape surface the fleet registry
// needs, reporting a fixed committed load.
func fakeTelemetry(t *testing.T, shapedBps float64) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, "gridftp_server_sessions_active 0\n")
		fmt.Fprintf(w, "gridftp_server_shaped_rate_bps %g\n", shapedBps)
	})
	mux.HandleFunc("/counters", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "[]")
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestFleetManagedJobPlacesOnUnloadedReplica(t *testing.T) {
	data := payload(96 << 10)
	// Two source replicas hold the same object; telemetry says replica 0
	// has nearly all its capacity promised away.
	stores := []*gridftp.MemStore{gridftp.NewMemStore(), gridftp.NewMemStore()}
	var reps []fleet.Replica
	loads := []float64{9e8, 1e8}
	var srcs []*gridftp.Server
	for i, st := range stores {
		st.Put("obj", data)
		s := serve(t, st)
		srcs = append(srcs, s)
		reps = append(reps, fleet.Replica{
			Addr:         s.Addr(),
			TelemetryURL: fakeTelemetry(t, loads[i]).URL,
		})
	}
	dstStore := gridftp.NewMemStore()
	dst := serve(t, dstStore)

	d, err := fleet.New(fleet.Config{
		Replicas:       reps,
		CapacityBps:    1e9,
		ScrapeInterval: time.Hour, // scraped once below; no background churn
		Staleness:      time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Registry().ScrapeNow(context.Background())

	m, err := New(2, WithFleet(d))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Src.Addr left empty: the fleet must fill it in.
	id, err := m.Submit(context.Background(), Job{
		Src:     Endpoint{User: "u", Pass: "p"},
		Dst:     ep(dst),
		SrcName: "obj", DstName: "out",
		Verify: true,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	res, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Succeeded {
		t.Fatalf("job failed: %s", res.Err)
	}
	if res.Replica != srcs[1].Addr() {
		t.Errorf("Replica = %q, want the unloaded %q", res.Replica, srcs[1].Addr())
	}
	got, err := dstStore.Get("out")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("destination object wrong (err=%v, %d bytes)", err, len(got))
	}

	// A job that pins its source bypasses the fleet: the loaded replica
	// is used as asked and Result.Replica stays empty.
	id, err = m.Submit(context.Background(), Job{
		Src: ep(srcs[0]), Dst: ep(dst),
		SrcName: "obj", DstName: "out2",
	})
	if err != nil {
		t.Fatalf("Submit pinned: %v", err)
	}
	res, err = m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Succeeded {
		t.Fatalf("pinned job failed: %s", res.Err)
	}
	if res.Replica != "" {
		t.Errorf("pinned job Replica = %q, want empty", res.Replica)
	}
}

func TestSubmitWithoutFleetRequiresSrc(t *testing.T) {
	m, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, err = m.Submit(context.Background(), Job{
		Dst:     Endpoint{Addr: "y"},
		SrcName: "a", DstName: "b",
	})
	if err == nil {
		t.Fatal("Submit with empty Src.Addr and no fleet should fail")
	}
}
