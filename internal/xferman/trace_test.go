package xferman

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"testing"
	"time"

	"gftpvc/internal/gridftp"
	"gftpvc/internal/oscarsd"
	"gftpvc/internal/telemetry"
	"gftpvc/internal/vc"
	"gftpvc/internal/vc/broker"
)

// TestTracingEndToEnd is the acceptance drill for cross-process
// tracing: four hubs play four processes (the transfer manager, both
// GridFTP servers, and oscarsd), linked only by the trace ID carried
// on the wire. One traced job must surface in every process's flight
// recorder, and the stitched /trace/<id> tree must span the processes
// with each span's phases summing exactly to its wall time.
func TestTracingEndToEnd(t *testing.T) {
	newHub := func(name string) (*telemetry.Hub, string) {
		hub := telemetry.NewHub()
		hub.SetProcessName(name)
		ms, err := hub.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ms.Close() })
		return hub, ms.Addr()
	}
	hubX, addrX := newHub("xferman")
	hubSrc, addrSrc := newHub("gftpd-src")
	hubDst, addrDst := newHub("gftpd-dst")
	hubOsc, addrOsc := newHub("oscarsd")
	hubX.AddTracePeer("gftpd-src", "http://"+addrSrc)
	hubX.AddTracePeer("gftpd-dst", "http://"+addrDst)
	hubX.AddTracePeer("oscarsd", "http://"+addrOsc)

	srcStore := gridftp.NewMemStore()
	srcStore.Put("a.nc", payload(512<<10))
	serveOn := func(store gridftp.Store, hub *telemetry.Hub) *gridftp.Server {
		s, err := gridftp.Serve(gridftp.Config{Addr: "127.0.0.1:0", Store: store, Telemetry: hub})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	src := serveOn(srcStore, hubSrc)
	dst := serveOn(gridftp.NewMemStore(), hubDst)

	osrv, err := oscarsd.Start(oscarsd.Config{
		Addr: "127.0.0.1:0", Scenario: "nersc-ornl",
		ReservableFraction: 0.5, Telemetry: hubOsc,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { osrv.Close() })
	ctx := context.Background()
	client, err := vc.Dial(ctx, osrv.Addr(), vc.WithTelemetry(hubX))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	bk, err := broker.New(client, broker.Config{
		Gap:        150 * time.Millisecond,
		SetupDelay: 20 * time.Millisecond,
		MinRateBps: 1e9, MaxRateBps: 1e9,
		Route:     broker.StaticRoute("nersc-ornl-dtn-src", "nersc-ornl-dtn-dst"),
		Telemetry: hubX,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bk.Close)

	m, err := New(1, WithTelemetry(hubX), WithBroker(bk), WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	id, err := m.Submit(ctx, Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "a.nc", DstName: "copy-a.nc",
		Verify: true, SizeHint: 256 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Succeeded {
		t.Fatalf("job: %v (%s)", res.Status, res.Err)
	}
	if res.TraceID == "" {
		t.Fatal("traced job reported no TraceID")
	}

	// The flight recorder: the trace ID must appear in every process's
	// event ring, with the kinds each process is responsible for.
	wantKind := func(hub *telemetry.Hub, process, kind string) {
		t.Helper()
		for _, ev := range hub.Events().ByTrace(res.TraceID) {
			if ev.Kind == kind {
				return
			}
		}
		t.Errorf("%s ring has no %q event for trace %s", process, kind, res.TraceID)
	}
	wantKind(hubX, "xferman", "job_start")
	wantKind(hubX, "xferman", "job_done")
	wantKind(hubX, "xferman", "broker_reserved")
	wantKind(hubX, "xferman", "vc_call")
	wantKind(hubSrc, "gftpd-src", "trid_bound")
	wantKind(hubDst, "gftpd-dst", "trid_bound")
	wantKind(hubOsc, "oscarsd", "reserve")

	// The stitched tree, over live HTTP between the hubs.
	resp, err := http.Get("http://" + addrX + "/trace/" + res.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var report telemetry.TraceReport
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	if len(report.Processes) != 4 {
		t.Fatalf("stitched report covers %d processes, want 4", len(report.Processes))
	}
	for _, loc := range report.Processes {
		if loc.Err != "" {
			t.Errorf("process %s: peer fetch failed: %s", loc.Process, loc.Err)
		}
	}
	if len(report.Tree) != 1 {
		t.Fatalf("stitched tree has %d roots, want 1 (the job span): %+v", len(report.Tree), report.Tree)
	}
	root := report.Tree[0]
	if root.Process != "xferman" || root.Span.Op != "job" {
		t.Fatalf("root is %s/%s, want xferman/job", root.Process, root.Span.Op)
	}
	procs := map[string]bool{}
	var walk func(n *telemetry.TraceNode)
	walk = func(n *telemetry.TraceNode) {
		procs[n.Process] = true
		var sum float64
		for _, ph := range n.Span.Phases {
			sum += ph.DurationSec
		}
		if math.Abs(sum-n.Span.DurationSec) > 1e-9 {
			t.Errorf("%s/%s: phases sum to %.12f, wall time %.12f",
				n.Process, n.Span.Op, sum, n.Span.DurationSec)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	for _, p := range []string{"xferman", "gftpd-src", "gftpd-dst"} {
		if !procs[p] {
			t.Errorf("stitched tree has no span from %s", p)
		}
	}
}

// TestTracingOffNoWireChange pins the degrade guarantee: a manager
// without WithTracing sends no SITE command at all — the control
// conversation is what it was before tracing existed — and no process
// records a trace.
func TestTracingOffNoWireChange(t *testing.T) {
	hubSrv := telemetry.NewHub()
	srcStore := gridftp.NewMemStore()
	srcStore.Put("a.nc", payload(64<<10))
	serveOn := func(store gridftp.Store) *gridftp.Server {
		s, err := gridftp.Serve(gridftp.Config{Addr: "127.0.0.1:0", Store: store, Telemetry: hubSrv})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	src := serveOn(srcStore)
	dst := serveOn(gridftp.NewMemStore())

	m, err := New(1, WithTelemetry(telemetry.NewHub()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx := context.Background()
	id, err := m.Submit(ctx, Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "a.nc", DstName: "copy-a.nc", Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Wait(ctx, id)
	if err != nil || res.Status != Succeeded {
		t.Fatalf("job: %+v, %v", res, err)
	}
	if res.TraceID != "" {
		t.Fatalf("untraced job reported TraceID %q", res.TraceID)
	}
	if n := hubSrv.Counter("gridftp_server_commands_total",
		"Control-channel commands dispatched, by verb.",
		telemetry.L("verb", "site")).Value(); n != 0 {
		t.Fatalf("servers dispatched %d SITE commands with tracing off, want 0", n)
	}
	for _, ev := range hubSrv.Events().Snapshot() {
		if ev.Kind == "trid_bound" {
			t.Fatalf("server bound a trace with tracing off: %+v", ev)
		}
	}
}
