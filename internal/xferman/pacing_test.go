package xferman

import (
	"context"
	"testing"
	"time"

	"gftpvc/internal/gridftp"
	"gftpvc/internal/oscarsd"
	"gftpvc/internal/telemetry"
	"gftpvc/internal/vc"
	"gftpvc/internal/vc/broker"
)

// shapedEnough asserts a transfer of n bytes at rateBps took at least
// half its ideal duration — loose enough to never flake, tight enough
// that an unshaped loopback transfer cannot pass.
func shapedEnough(t *testing.T, what string, n int64, rateBps int64, elapsed time.Duration) {
	t.Helper()
	ideal := time.Duration(float64(n) * 8 / float64(rateBps) * float64(time.Second))
	if elapsed < ideal/2 {
		t.Fatalf("%s: %d bytes at %d bps took %v, want >= %v (shaping not engaged?)",
			what, n, rateBps, elapsed, ideal/2)
	}
}

func runJob(t *testing.T, m *Manager, job Job) Result {
	t.Helper()
	id, err := m.Submit(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Succeeded {
		t.Fatalf("job failed: %s", res.Err)
	}
	return res
}

// TestClassRateShapesJob: the class rate table shapes a background
// streaming job, the default bulk class runs unshaped, and a job's own
// RateBps pin wins over its class rate.
func TestClassRateShapesJob(t *testing.T) {
	const classRate = 160e6 // 20 MB/s
	srcStore := gridftp.NewMemStore()
	srcStore.Put("data.bin", payload(2<<20))
	src := serve(t, srcStore)
	dst := serve(t, gridftp.NewMemStore())
	hub := telemetry.NewHub()
	m, err := New(2, WithTelemetry(hub), WithClassRate(ClassBackground, classRate))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	base := Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "data.bin", DstName: "copy.bin", Stream: true,
	}

	bg := base
	bg.Class = ClassBackground
	start := time.Now()
	res := runJob(t, m, bg)
	shapedEnough(t, "background job", 2<<20, classRate, time.Since(start))
	if res.ShapedRateBps != classRate {
		t.Fatalf("ShapedRateBps = %d, want %d", res.ShapedRateBps, int64(classRate))
	}

	// Default (bulk) class: no class rate configured, runs unshaped.
	if res := runJob(t, m, base); res.ShapedRateBps != 0 {
		t.Fatalf("bulk job ShapedRateBps = %d, want 0", res.ShapedRateBps)
	}

	// The job's own pin wins over its class.
	pinned := bg
	pinned.DstName = "copy2.bin"
	pinned.RateBps = 2 * classRate
	if res := runJob(t, m, pinned); res.ShapedRateBps != 2*classRate {
		t.Fatalf("pinned ShapedRateBps = %d, want %d", res.ShapedRateBps, int64(2*classRate))
	}

	if n := hub.Counter("xferman_paced_jobs_total",
		"Jobs whose data plane was rate-shaped, by QoS class.",
		telemetry.L("class", "background")).Value(); n != 2 {
		t.Fatalf("xferman_paced_jobs_total(background) = %d, want 2", n)
	}
}

// TestThirdPartyRateShapesSource: a third-party job (the manager never
// touches the data) is shaped by asking the source server to pace its
// session via SITE RATE.
func TestThirdPartyRateShapesSource(t *testing.T) {
	const rate = 160e6
	srcStore := gridftp.NewMemStore()
	srcStore.Put("data.bin", payload(2<<20))
	src := serve(t, srcStore)
	dst := serve(t, gridftp.NewMemStore())
	m, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	start := time.Now()
	res := runJob(t, m, Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "data.bin", DstName: "copy.bin",
		RateBps: rate, Verify: true,
	})
	shapedEnough(t, "third-party job", 2<<20, rate, time.Since(start))
	if res.ShapedRateBps != rate {
		t.Fatalf("ShapedRateBps = %d, want %d", res.ShapedRateBps, int64(rate))
	}
}

// TestVCJobShapedToReservedRate: a job dispatched onto a reserved
// circuit is automatically paced to the broker's reserved rate — the
// reservation becomes a wire-level fact, not an advisory booking.
func TestVCJobShapedToReservedRate(t *testing.T) {
	const reserved = 80e6 // 10 MB/s; Min == Max pins the clamp
	osc, err := oscarsd.Start(oscarsd.Config{
		Addr: "127.0.0.1:0", Scenario: "nersc-ornl", ReservableFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer osc.Close()
	vcc, err := vc.Dial(context.Background(), osc.Addr(), vc.WithCallTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer vcc.Close()
	bk, err := broker.New(vcc, broker.Config{
		Gap:             150 * time.Millisecond,
		SetupDelay:      10 * time.Millisecond,
		OverheadFactor:  2,
		MinRateBps:      reserved,
		MaxRateBps:      reserved,
		HoldSlack:       time.Second,
		DecisionTimeout: time.Second,
		Route:           broker.StaticRoute("nersc-ornl-dtn-src", "nersc-ornl-dtn-dst"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bk.Close()

	srcStore := gridftp.NewMemStore()
	srcStore.Put("data.bin", payload(2<<20))
	src := serve(t, srcStore)
	dst := serve(t, gridftp.NewMemStore())
	m, err := New(1, WithBroker(bk))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	start := time.Now()
	res := runJob(t, m, Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "data.bin", DstName: "copy.bin",
		Stream:   true,
		SizeHint: 256 << 20, // force a circuit; the actual object is 2 MiB
	})
	elapsed := time.Since(start)
	if res.Circuit.Service != broker.ServiceVC {
		t.Fatalf("job not dispatched onto a circuit: %+v", res.Circuit)
	}
	if res.Circuit.RateBps != reserved {
		t.Fatalf("disposition RateBps = %v, want %v", res.Circuit.RateBps, float64(reserved))
	}
	if res.ShapedRateBps != reserved {
		t.Fatalf("ShapedRateBps = %d, want %d", res.ShapedRateBps, int64(reserved))
	}
	shapedEnough(t, "VC job", 2<<20, reserved, elapsed)
}
