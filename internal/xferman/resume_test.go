package xferman

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gftpvc/internal/faultnet"
	"gftpvc/internal/gridftp"
	"gftpvc/internal/telemetry"
)

// serveCfg is serve with full control over the server config for the
// fault-injection and windowing tests.
func serveCfg(t *testing.T, cfg gridftp.Config) *gridftp.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.AcceptTimeout == 0 {
		cfg.AcceptTimeout = 300 * time.Millisecond
	}
	s, err := gridftp.Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// resetFirstConn builds a faultnet tracker that resets the first data
// connection it ever accepts after `after` wire bytes; every later
// connection is clean. The returned counter reports how many data
// connections were opened.
func resetFirstConn(after int64) (*faultnet.Tracker, *int) {
	var mu sync.Mutex
	conns := 0
	tr := &faultnet.Tracker{PlanFor: func(i int) *faultnet.ConnPlan {
		mu.Lock()
		defer mu.Unlock()
		conns++
		if conns == 1 {
			return &faultnet.ConnPlan{ResetReadAfter: after}
		}
		return nil
	}}
	return tr, &conns
}

// TestBackoffDelayBounds pins the jittered exponential schedule: every
// delay sits in [base/2, cap], later attempts never shrink the
// pre-jitter target, and the cap actually caps.
func TestBackoffDelayBounds(t *testing.T) {
	const base = 100 * time.Millisecond
	const cap = time.Second
	for attempt := 1; attempt <= 12; attempt++ {
		for i := 0; i < 50; i++ {
			d := backoffDelay(base, cap, attempt)
			if d < base/2 || d > cap {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, base/2, cap)
			}
		}
	}
	// Deep attempts saturate: with jitter >= 50% of the capped target,
	// attempt 10 can never be faster than cap/2.
	for i := 0; i < 50; i++ {
		if d := backoffDelay(base, cap, 10); d < cap/2 {
			t.Fatalf("saturated attempt delay %v < %v", d, cap/2)
		}
	}
}

// TestRetriesBackOffAgainstDyingServer is the backoff-bugfix
// regression: a job whose endpoint fails every attempt must spread its
// retries over the jittered schedule instead of hammering the server
// in a hot loop, and a cancelled context must cut a pending backoff
// short instead of holding the worker for the full delay.
func TestRetriesBackOffAgainstDyingServer(t *testing.T) {
	src := serve(t, gridftp.NewMemStore()) // object never exists
	dst := serve(t, gridftp.NewMemStore())
	m, _ := New(1)
	defer m.Close()

	const base = 60 * time.Millisecond
	start := time.Now()
	id, err := m.Submit(context.Background(), Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "missing.bin", DstName: "copy.bin",
		MaxAttempts:  3,
		RetryBackoff: base, RetryBackoffMax: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := m.Wait(context.Background(), id)
	elapsed := time.Since(start)
	if res.Status != Failed || res.Attempts != 3 {
		t.Fatalf("status=%v attempts=%d, want Failed after 3", res.Status, res.Attempts)
	}
	// Two backoffs fired: at least base/2 (attempt 1→2, minimum jitter)
	// plus base (attempt 2→3, minimum jitter on the doubled target).
	if min := base/2 + base; elapsed < min {
		t.Fatalf("3 attempts in %v: backoff never waited (want >= %v)", elapsed, min)
	}

	// Cancellation mid-backoff: a huge backoff must not pin the worker.
	ctx, cancel := context.WithCancel(context.Background())
	id2, err := m.Submit(ctx, Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "missing.bin", DstName: "copy.bin",
		MaxAttempts:  5,
		RetryBackoff: 30 * time.Second, RetryBackoffMax: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // let attempt 1 fail and the backoff start
	cancel()
	start = time.Now()
	res2, err := m.Wait(context.Background(), id2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != Failed {
		t.Fatalf("cancelled job status = %v", res2.Status)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("cancel took %v to break the backoff", waited)
	}
}

// dstStoreFactories is the destination-store axis of the resume A/B
// drill: the watermark contract must hold whether the delivered prefix
// lives in RAM (MemStore truncation) or on disk (DirStore's partial
// sidecar, whose file size IS the watermark).
func dstStoreFactories() []struct {
	name string
	make func(t *testing.T) gridftp.Store
} {
	return []struct {
		name string
		make func(t *testing.T) gridftp.Store
	}{
		{"mem", func(t *testing.T) gridftp.Store { return gridftp.NewMemStore() }},
		{"dir", func(t *testing.T) gridftp.Store {
			d, err := gridftp.NewDirStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		}},
	}
}

// TestRetryResumesFromWatermark is the manager half of the tentpole:
// the first third-party attempt dies from a mid-transfer connection
// reset, the retry probes the destination's delivered watermark and
// RESTs there, and the accounting shows no re-sent payload — WireBytes
// equals the object size, where a restart-from-zero retry re-moves the
// whole prefix. Runs against both RAM and disk destinations.
func TestRetryResumesFromWatermark(t *testing.T) {
	for _, sf := range dstStoreFactories() {
		sf := sf
		t.Run(sf.name, func(t *testing.T) { testRetryResumesFromWatermark(t, sf.make(t)) })
	}
}

func testRetryResumesFromWatermark(t *testing.T, dstStore gridftp.Store) {
	const (
		size   = 1 << 20
		window = 64 << 10
		block  = 16 << 10
	)
	want := payload(size)
	srcStore := gridftp.NewMemStore()
	srcStore.Put("data.bin", want)
	tracker, conns := resetFirstConn(size * 6 / 10)
	src := serveCfg(t, gridftp.Config{Store: srcStore, BlockSize: block})
	dst := serveCfg(t, gridftp.Config{
		Store: dstStore, WindowSize: window, BlockSize: block,
		DataTimeout: 500 * time.Millisecond, DataListen: tracker.Listen,
	})

	hub := telemetry.NewHub()
	m, _ := New(1, WithTelemetry(hub))
	defer m.Close()
	id, err := m.Submit(context.Background(), Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "data.bin", DstName: "copy.bin",
		MaxAttempts: 3, Verify: true,
		RetryBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := m.Wait(context.Background(), id)
	if res.Status != Succeeded {
		t.Fatalf("status=%v err=%s", res.Status, res.Err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts=%d, want 2 (reset, then resumed retry)", res.Attempts)
	}
	if *conns < 2 {
		t.Fatalf("only %d data connections: the fault never fired", *conns)
	}
	got, err := dstStore.Get("copy.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed object differs from source")
	}
	if res.Bytes != size {
		t.Fatalf("Bytes=%d, want %d", res.Bytes, size)
	}
	// The resumed retry re-sent nothing the watermark already covered:
	// wire equals delivered exactly at the manager's watermark-derived
	// granularity.
	if res.WireBytes != size {
		t.Fatalf("WireBytes=%d, want %d (resume must not re-send the prefix)", res.WireBytes, size)
	}
	if v := hub.Counter("xferman_resumed_attempts_total",
		"Retry attempts that restarted from a destination watermark instead of byte zero.").Value(); v != 1 {
		t.Fatalf("resumed_attempts=%v, want 1", v)
	}
	if v := hub.Counter("xferman_delivered_bytes_total",
		"Payload bytes durably delivered to destinations exactly once.").Value(); v != size {
		t.Fatalf("delivered_bytes=%v, want %d", v, size)
	}
}

// TestNoResumeRetryReSendsPrefix is the A/B counterpart: the identical
// fault with NoResume set restarts at byte zero, and WireBytes exposes
// the redundant prefix that Result.Bytes alone hides. Runs against both
// RAM and disk destinations.
func TestNoResumeRetryReSendsPrefix(t *testing.T) {
	for _, sf := range dstStoreFactories() {
		sf := sf
		t.Run(sf.name, func(t *testing.T) { testNoResumeRetryReSendsPrefix(t, sf.make(t)) })
	}
}

func testNoResumeRetryReSendsPrefix(t *testing.T, dstStore gridftp.Store) {
	const (
		size   = 1 << 20
		window = 64 << 10
		block  = 16 << 10
	)
	want := payload(size)
	srcStore := gridftp.NewMemStore()
	srcStore.Put("data.bin", want)
	tracker, _ := resetFirstConn(size * 6 / 10)
	src := serveCfg(t, gridftp.Config{Store: srcStore, BlockSize: block})
	dst := serveCfg(t, gridftp.Config{
		Store: dstStore, WindowSize: window, BlockSize: block,
		DataTimeout: 500 * time.Millisecond, DataListen: tracker.Listen,
	})

	m, _ := New(1)
	defer m.Close()
	id, err := m.Submit(context.Background(), Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "data.bin", DstName: "copy.bin",
		MaxAttempts: 3, Verify: true, NoResume: true,
		SizeHint:     size,
		RetryBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := m.Wait(context.Background(), id)
	if res.Status != Succeeded || res.Attempts != 2 {
		t.Fatalf("status=%v attempts=%d err=%s", res.Status, res.Attempts, res.Err)
	}
	got, err := dstStore.Get("copy.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("restarted object differs from source")
	}
	// The failed attempt durably delivered a prefix, then the restart
	// re-sent everything: wire strictly exceeds the object size by that
	// prefix.
	if res.WireBytes <= size {
		t.Fatalf("WireBytes=%d, want > %d: restart-from-zero must show redundant traffic", res.WireBytes, size)
	}
}

// TestStreamJobRelaysThroughManager: a Stream job moves the object
// through the manager's own windowed data plane, byte-identical, with
// exact wire accounting.
func TestStreamJobRelaysThroughManager(t *testing.T) {
	const size = 1 << 20
	want := payload(size)
	srcStore := gridftp.NewMemStore()
	srcStore.Put("data.bin", want)
	dstStore := gridftp.NewMemStore()
	src := serveCfg(t, gridftp.Config{Store: srcStore, BlockSize: 16 << 10})
	dst := serveCfg(t, gridftp.Config{Store: dstStore, WindowSize: 256 << 10})

	m, _ := New(1)
	defer m.Close()
	id, err := m.Submit(context.Background(), Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "data.bin", DstName: "copy.bin",
		Stream: true, WindowBytes: 128 << 10, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := m.Wait(context.Background(), id)
	if res.Status != Succeeded {
		t.Fatalf("status=%v err=%s", res.Status, res.Err)
	}
	got, err := dstStore.Get("copy.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("relayed object differs from source")
	}
	if res.Bytes != size || res.WireBytes != size {
		t.Fatalf("Bytes=%d WireBytes=%d, want %d/%d", res.Bytes, res.WireBytes, size, size)
	}
}

// TestStreamJobResumesAfterReset: the streaming relay hits the same
// mid-transfer reset and resumes from the destination watermark; the
// exact wire measurement shows the redundancy stayed under the
// reassembly window (plus in-flight buffering) instead of the whole
// delivered prefix.
func TestStreamJobResumesAfterReset(t *testing.T) {
	const (
		size   = 1 << 20
		window = 64 << 10
	)
	want := payload(size)
	srcStore := gridftp.NewMemStore()
	srcStore.Put("data.bin", want)
	dstStore := gridftp.NewMemStore()
	tracker, _ := resetFirstConn(size * 6 / 10)
	src := serveCfg(t, gridftp.Config{Store: srcStore, BlockSize: 16 << 10})
	dst := serveCfg(t, gridftp.Config{
		Store: dstStore, WindowSize: window,
		DataTimeout: 500 * time.Millisecond, DataListen: tracker.Listen,
	})

	m, _ := New(1)
	defer m.Close()
	id, err := m.Submit(context.Background(), Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "data.bin", DstName: "copy.bin",
		Stream: true, WindowBytes: window, Verify: true,
		MaxAttempts:  3,
		RetryBackoff: 20 * time.Millisecond,
		Timeout:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := m.Wait(context.Background(), id)
	if res.Status != Succeeded {
		t.Fatalf("status=%v err=%s", res.Status, res.Err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts=%d, want 2", res.Attempts)
	}
	got, err := dstStore.Get("copy.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed relay differs from source")
	}
	// Exact streaming measurement: some redundancy (bytes in flight
	// when the connection died) but far less than the delivered prefix
	// a restart would re-send. The slack term covers the destination
	// window plus client- and kernel-side buffering on the dead conn.
	if res.WireBytes <= size {
		t.Fatalf("WireBytes=%d, want > %d: in-flight bytes at the reset are re-sent", res.WireBytes, size)
	}
	if slack := int64(window + 512<<10); res.WireBytes > size+slack {
		t.Fatalf("WireBytes=%d re-sent more than window+slack (%d): resume did not take", res.WireBytes, size+slack)
	}
}

// flakyBeginPutStore fails the first BeginPut calls, so the server
// rejects the STOR command before touching the object — the shape of a
// destination-side failure that never engages the transfer.
type flakyBeginPutStore struct {
	*gridftp.MemStore
	mu    sync.Mutex
	fails int
}

func (s *flakyBeginPutStore) BeginPut(name string, base int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fails > 0 {
		s.fails--
		return errors.New("injected BeginPut failure")
	}
	return s.MemStore.BeginPut(name, base)
}

// TestStaleDestinationNotTrustedAsWatermark is the stale-watermark
// regression: the destination already holds an unrelated object under
// DstName, and the first attempt dies before the destination accepts
// STOR — so that object is untouched. The retry must NOT read its SIZE
// as a delivered watermark and REST there: with Verify off (the
// default), doing so would silently splice the stale prefix under the
// new object's suffix.
func TestStaleDestinationNotTrustedAsWatermark(t *testing.T) {
	const (
		size      = 1 << 20
		staleSize = 512 << 10
	)
	want := payload(size)
	srcStore := gridftp.NewMemStore()
	srcStore.Put("data.bin", want)
	dstStore := &flakyBeginPutStore{MemStore: gridftp.NewMemStore(), fails: 1}
	dstStore.Put("copy.bin", bytes.Repeat([]byte{0xAA}, staleSize))
	src := serveCfg(t, gridftp.Config{Store: srcStore, BlockSize: 16 << 10})
	dst := serveCfg(t, gridftp.Config{Store: dstStore, WindowSize: 64 << 10, BlockSize: 16 << 10})

	m, _ := New(1)
	defer m.Close()
	// Verify deliberately off: the corruption this test pins slips
	// through exactly when nothing checksums the result.
	id, err := m.Submit(context.Background(), Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "data.bin", DstName: "copy.bin",
		MaxAttempts:  3,
		RetryBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := m.Wait(context.Background(), id)
	if res.Status != Succeeded {
		t.Fatalf("status=%v err=%s", res.Status, res.Err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts=%d, want 2 (rejected STOR, then restart from zero)", res.Attempts)
	}
	got, err := dstStore.Get("copy.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("destination object differs from source (len=%d, want %d): stale SIZE was resumed as a watermark", len(got), size)
	}
	if res.WireBytes != size {
		t.Fatalf("WireBytes=%d, want %d (nothing moved before the rejection)", res.WireBytes, size)
	}
}

// bufferedStore strips MemStore down to the plain Store interface so
// the server falls back to whole-object buffered STOR.
type bufferedStore struct {
	m *gridftp.MemStore
}

func (b bufferedStore) Get(name string) ([]byte, error)      { return b.m.Get(name) }
func (b bufferedStore) Put(name string, data []byte) error   { return b.m.Put(name, data) }
func (b bufferedStore) Size(name string) (int64, error)      { return b.m.Size(name) }
func (b bufferedStore) List(prefix string) ([]string, error) { return b.m.List(prefix) }

// TestBufferedRestRejectionDemotesToRestart is the REST-demotion
// regression against this repo's own buffered-STOR server, which
// accepts REST with 350 and only rejects the resumed STOR with 501: a
// job whose first attempt engaged the destination but left a stale
// object probes a bogus watermark, gets the 501 on its resumed second
// attempt, and must demote to restart-from-zero instead of re-sending
// the doomed REST+STOR until MaxAttempts.
func TestBufferedRestRejectionDemotesToRestart(t *testing.T) {
	const (
		size      = 1 << 20
		staleSize = 256 << 10
	)
	want := payload(size)
	srcStore := gridftp.NewMemStore()
	srcStore.Put("data.bin", want)
	dstMem := gridftp.NewMemStore()
	dstMem.Put("copy.bin", bytes.Repeat([]byte{0xEE}, staleSize))
	tracker, _ := resetFirstConn(size * 6 / 10)
	src := serveCfg(t, gridftp.Config{Store: srcStore, BlockSize: 16 << 10})
	dst := serveCfg(t, gridftp.Config{
		Store:       bufferedStore{m: dstMem},
		DataTimeout: 500 * time.Millisecond, DataListen: tracker.Listen,
	})

	m, _ := New(1)
	defer m.Close()
	id, err := m.Submit(context.Background(), Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "data.bin", DstName: "copy.bin",
		MaxAttempts:  4,
		RetryBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := m.Wait(context.Background(), id)
	if res.Status != Succeeded {
		t.Fatalf("status=%v attempts=%d err=%s", res.Status, res.Attempts, res.Err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts=%d, want 3 (reset, 501 on resumed STOR, restart from zero)", res.Attempts)
	}
	got, err := dstMem.Get("copy.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("restarted object differs from source")
	}
}
