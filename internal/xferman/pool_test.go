package xferman

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"gftpvc/internal/connpool"
	"gftpvc/internal/faultnet"
	"gftpvc/internal/gridftp"
)

// TestPooledManagerReusesChannels runs a batch of jobs through a
// manager wired to a connection pool: after warmup every attempt's two
// control channels come from the pool, and when the batch drains no
// channel is leaked in the leased state.
func TestPooledManagerReusesChannels(t *testing.T) {
	srcStore := gridftp.NewMemStore()
	want := payload(256 << 10)
	for i := 0; i < 6; i++ {
		srcStore.Put(fmt.Sprintf("obj%d", i), want)
	}
	dstStore := gridftp.NewMemStore()
	src := serve(t, srcStore)
	dst := serve(t, dstStore)

	pool := connpool.New(connpool.Config{MaxIdlePerEndpoint: 2})
	defer pool.Close()
	m, err := New(1, WithPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx := context.Background()
	var ids []JobID
	for i := 0; i < 6; i++ {
		id, err := m.Submit(ctx, Job{
			Src: ep(src), Dst: ep(dst),
			SrcName: fmt.Sprintf("obj%d", i), DstName: fmt.Sprintf("copy%d", i),
			Verify: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		res, err := m.Wait(ctx, id)
		if err != nil || res.Status != Succeeded {
			t.Fatalf("job %d: %+v, %v", id, res, err)
		}
	}
	got, _ := dstStore.Get("copy5")
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted through pooled channels")
	}
	st := pool.Stats()
	// 6 jobs x 2 endpoints with 1 worker: the first job dials two
	// channels, the rest reuse them.
	if st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (one dial per endpoint)", st.Misses)
	}
	if st.Hits != 10 {
		t.Errorf("hits = %d, want 10 (five reusing jobs x two endpoints)", st.Hits)
	}
	if st.Leased != 0 {
		t.Errorf("leased = %d after batch drained, want 0", st.Leased)
	}
}

// TestPooledManagerSurvivesIdleKill kills the pooled channels between
// jobs (the faultnet proxy resets every conn); the next job must
// succeed on transparently redialed channels, with the misses counter
// the only evidence anything happened.
func TestPooledManagerSurvivesIdleKill(t *testing.T) {
	srcStore := gridftp.NewMemStore()
	want := payload(128 << 10)
	srcStore.Put("a", want)
	srcStore.Put("b", want)
	dstStore := gridftp.NewMemStore()
	src := serve(t, srcStore)
	dst := serve(t, dstStore)
	proxy, err := faultnet.NewProxy(src.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	pool := connpool.New(connpool.Config{KeepAlive: -1})
	defer pool.Close()
	m, err := New(1, WithPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx := context.Background()
	srcEP := Endpoint{Addr: proxy.Addr(), User: "u", Pass: "p"}
	run := func(name string) {
		t.Helper()
		id, err := m.Submit(ctx, Job{
			Src: srcEP, Dst: ep(dst), SrcName: name, DstName: name, Verify: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Wait(ctx, id)
		if err != nil || res.Status != Succeeded {
			t.Fatalf("job %s: %+v, %v", name, res, err)
		}
		if res.Attempts != 1 {
			t.Fatalf("job %s took %d attempts; the redial should be invisible", name, res.Attempts)
		}
	}
	run("a")
	misses := pool.Stats().Misses
	proxy.Reset() // the parked src channel dies while idle
	run("b")
	st := pool.Stats()
	if st.Misses != misses+1 {
		t.Errorf("misses = %d, want %d (one transparent redial)", st.Misses, misses+1)
	}
	if st.Leased != 0 {
		t.Errorf("leased = %d, want 0", st.Leased)
	}
	got, _ := dstStore.Get("b")
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted after redial")
	}
}

// TestPooledManagerDiscardsAfterFailure: when an attempt fails, the
// channels it used must be discarded, not parked — the retry and all
// later jobs get verified-healthy channels and still succeed.
func TestPooledManagerDiscardsAfterFailure(t *testing.T) {
	store := &flakyStore{Store: gridftp.NewMemStore(), failures: 1}
	want := payload(64 << 10)
	store.Put("data.bin", want)
	dstStore := gridftp.NewMemStore()
	src := serve(t, store)
	dst := serve(t, dstStore)

	pool := connpool.New(connpool.Config{})
	defer pool.Close()
	m, err := New(1, WithPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx := context.Background()
	id, err := m.Submit(ctx, Job{
		Src: ep(src), Dst: ep(dst),
		SrcName: "data.bin", DstName: "copy.bin",
		Verify: true, MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Wait(ctx, id)
	if err != nil || res.Status != Succeeded {
		t.Fatalf("%+v, %v", res, err)
	}
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
	st := pool.Stats()
	if st.Leased != 0 {
		t.Errorf("leased = %d after retryed job, want 0", st.Leased)
	}
	if st.Evictions == 0 {
		t.Error("failed attempt's channels were parked, not discarded")
	}
	got, _ := dstStore.Get("copy.bin")
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted")
	}
}

// TestPooledManagerCloseOrder: closing the manager then the pool (the
// documented order) strands nothing even with jobs recently finished.
func TestPooledManagerCloseOrder(t *testing.T) {
	srcStore := gridftp.NewMemStore()
	srcStore.Put("x", payload(4 << 10))
	src := serve(t, srcStore)
	dst := serve(t, gridftp.NewMemStore())
	pool := connpool.New(connpool.Config{KeepAlive: 10 * time.Millisecond})
	m, err := New(2, WithPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	id, err := m.Submit(ctx, Job{Src: ep(src), Dst: ep(dst), SrcName: "x", DstName: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := m.Wait(ctx, id); err != nil || res.Status != Succeeded {
		t.Fatalf("%+v, %v", res, err)
	}
	m.Close()
	pool.Close()
	if st := pool.Stats(); st.Leased != 0 || st.Idle != 0 {
		t.Fatalf("close left channels behind: %+v", st)
	}
}
