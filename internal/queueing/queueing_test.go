package queueing

import (
	"math/rand"
	"testing"

	"gftpvc/internal/simclock"
)

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO()
	if f.Dequeue() != nil {
		t.Fatal("empty FIFO should dequeue nil")
	}
	a := &Packet{SizeBytes: 1}
	b := &Packet{SizeBytes: 2}
	f.Enqueue(a)
	f.Enqueue(b)
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
	if f.Dequeue() != a || f.Dequeue() != b {
		t.Fatal("FIFO order violated")
	}
}

func TestNewDRRValidation(t *testing.T) {
	if _, err := NewDRR(0, 1); err == nil {
		t.Error("zero quantum should fail")
	}
	if _, err := NewDRR(1, -1); err == nil {
		t.Error("negative quantum should fail")
	}
}

func TestDRRInterleavesClasses(t *testing.T) {
	d, err := NewDRR(1500, 1500)
	if err != nil {
		t.Fatal(err)
	}
	// Queue 3 GP packets and 3 alpha packets; equal quanta must
	// alternate service rather than draining one class first.
	for i := 0; i < 3; i++ {
		d.Enqueue(&Packet{Class: GeneralPurpose, SizeBytes: 1500})
		d.Enqueue(&Packet{Class: Alpha, SizeBytes: 1500})
	}
	var order []Class
	for p := d.Dequeue(); p != nil; p = d.Dequeue() {
		order = append(order, p.Class)
	}
	if len(order) != 6 {
		t.Fatalf("dequeued %d packets, want 6", len(order))
	}
	switches := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			switches++
		}
	}
	if switches < 3 {
		t.Errorf("classes barely interleave: %v", order)
	}
}

func TestDRRSkipsEmptyClass(t *testing.T) {
	d, _ := NewDRR(1500, 1500)
	d.Enqueue(&Packet{Class: Alpha, SizeBytes: 1000})
	if p := d.Dequeue(); p == nil || p.Class != Alpha {
		t.Fatal("lone alpha packet not served")
	}
	if d.Dequeue() != nil {
		t.Fatal("empty DRR should dequeue nil")
	}
}

func TestDRROversizedPacketStillServed(t *testing.T) {
	// A packet larger than the quantum must still make progress.
	d, _ := NewDRR(100, 100)
	d.Enqueue(&Packet{Class: GeneralPurpose, SizeBytes: 9000})
	if p := d.Dequeue(); p == nil {
		t.Fatal("oversized packet starved")
	}
}

func TestLinkTransmitsAtCapacity(t *testing.T) {
	eng := simclock.New()
	link, err := NewLink(eng, NewFIFO(), 1e6) // 1 Mbps
	if err != nil {
		t.Fatal(err)
	}
	eng.MustAt(0, func() {
		link.Arrive(&Packet{Class: GeneralPurpose, SizeBytes: 1250}) // 10 ms at 1 Mbps
		link.Arrive(&Packet{Class: GeneralPurpose, SizeBytes: 1250})
	})
	eng.Run()
	dep := link.Departed()
	if len(dep) != 2 {
		t.Fatalf("departed %d packets, want 2", len(dep))
	}
	if d := dep[0].DelaySec(); d < 0.0099 || d > 0.0101 {
		t.Errorf("first packet delay %v, want ~10ms", d)
	}
	if d := dep[1].DelaySec(); d < 0.0199 || d > 0.0201 {
		t.Errorf("second packet delay %v, want ~20ms (queued)", d)
	}
}

func TestNewLinkValidation(t *testing.T) {
	eng := simclock.New()
	if _, err := NewLink(nil, NewFIFO(), 1); err == nil {
		t.Error("nil engine should fail")
	}
	if _, err := NewLink(eng, nil, 1); err == nil {
		t.Error("nil scheduler should fail")
	}
	if _, err := NewLink(eng, NewFIFO(), 0); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestPoissonSourceRate(t *testing.T) {
	eng := simclock.New()
	link, _ := NewLink(eng, NewFIFO(), 1e9)
	rng := rand.New(rand.NewSource(5))
	if err := PoissonSource(eng, link, GeneralPurpose, 1000, 100, 10, rng); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	n := len(link.Departed())
	// ~10,000 arrivals expected over 10 s; allow wide tolerance.
	if n < 9000 || n > 11000 {
		t.Errorf("Poisson source produced %d packets, want ~10000", n)
	}
}

func TestSourceValidation(t *testing.T) {
	eng := simclock.New()
	link, _ := NewLink(eng, NewFIFO(), 1e9)
	rng := rand.New(rand.NewSource(1))
	if err := PoissonSource(eng, link, GeneralPurpose, 0, 100, 1, rng); err == nil {
		t.Error("zero rate should fail")
	}
	if err := PoissonSource(eng, link, GeneralPurpose, 1, 0, 1, rng); err == nil {
		t.Error("zero size should fail")
	}
	if err := BurstSource(eng, link, Alpha, 0, 1, 1, 1); err == nil {
		t.Error("zero interval should fail")
	}
	if err := BurstSource(eng, link, Alpha, 1, 0, 1, 1); err == nil {
		t.Error("zero burst should fail")
	}
}

func TestBurstSourceEmits(t *testing.T) {
	eng := simclock.New()
	link, _ := NewLink(eng, NewFIFO(), 1e9)
	if err := BurstSource(eng, link, Alpha, 1, 10, 1500, 5); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Bursts at t=1..5: 5 bursts of 10.
	if n := len(link.Departed()); n != 50 {
		t.Errorf("burst source produced %d packets, want 50", n)
	}
}

func TestVirtualQueuesCutGPJitter(t *testing.T) {
	// The paper's positive #3: virtual queues prevent GP packets from
	// queueing behind α bursts, shrinking both tail delay and spread.
	fifo, drr, err := CompareIsolation(3, 1e9, 20)
	if err != nil {
		t.Fatal(err)
	}
	if fifo.N < 1000 || drr.N < 1000 {
		t.Fatalf("too few GP packets: %d / %d", fifo.N, drr.N)
	}
	if drr.Max >= fifo.Max {
		t.Errorf("DRR max delay %v ms should beat FIFO %v ms", drr.Max, fifo.Max)
	}
	if drr.StdDev >= fifo.StdDev {
		t.Errorf("DRR jitter %v ms should beat FIFO %v ms", drr.StdDev, fifo.StdDev)
	}
}

func TestLinkDrainsCompletely(t *testing.T) {
	// Conservation: every arrived packet eventually departs.
	eng := simclock.New()
	sched, _ := NewDRR(1500, 9000)
	link, _ := NewLink(eng, sched, 1e8)
	rng := rand.New(rand.NewSource(9))
	arrivals := 0
	for i := 0; i < 200; i++ {
		at := simclock.Time(rng.Float64() * 2)
		eng.MustAt(at, func() {
			link.Arrive(&Packet{Class: Class(rng.Intn(2)), SizeBytes: 500 + rng.Intn(8500)})
		})
		arrivals++
	}
	eng.Run()
	if len(link.Departed()) != arrivals {
		t.Errorf("departed %d of %d packets", len(link.Departed()), arrivals)
	}
	// Departures are ordered in time and never precede arrivals.
	prev := simclock.Time(0)
	for _, p := range link.Departed() {
		if p.Departed < p.Arrived {
			t.Fatal("packet departed before arriving")
		}
		if p.Departed < prev {
			t.Fatal("departures out of order")
		}
		prev = p.Departed
	}
}
