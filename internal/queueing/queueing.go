// Package queueing is a packet-level single-link simulator for the one
// claim the fluid-flow model cannot exhibit: that isolating α flows into
// their own virtual queues (as OSCARS configures router interfaces during
// VC setup) keeps general-purpose packets from getting stuck behind
// large α-flow bursts, reducing their delay variance (§I, positive #3).
//
// It models one output interface with either a shared FIFO queue or
// per-class deficit-round-robin virtual queues, fed by a Poisson
// general-purpose source and a bursty α source, and reports per-class
// queueing-delay statistics.
package queueing

import (
	"errors"
	"math"
	"math/rand"

	"gftpvc/internal/simclock"
	"gftpvc/internal/stats"
)

// Class labels a packet's traffic class.
type Class int

const (
	// GeneralPurpose is interactive/real-time sensitive traffic.
	GeneralPurpose Class = iota
	// Alpha is high-rate large-transfer traffic.
	Alpha
	numClasses
)

// Packet is one frame in flight.
type Packet struct {
	Class     Class
	SizeBytes int
	Arrived   simclock.Time
	Departed  simclock.Time
}

// DelaySec returns the packet's queueing+transmission delay.
func (p *Packet) DelaySec() float64 { return float64(p.Departed.Sub(p.Arrived)) }

// Scheduler orders packets for transmission.
type Scheduler interface {
	Enqueue(*Packet)
	// Dequeue returns the next packet to transmit, or nil when idle.
	Dequeue() *Packet
	Len() int
}

// FIFO is a single shared queue — the IP-routed service data path.
type FIFO struct {
	q []*Packet
}

// NewFIFO returns an empty FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Enqueue implements Scheduler.
func (f *FIFO) Enqueue(p *Packet) { f.q = append(f.q, p) }

// Dequeue implements Scheduler.
func (f *FIFO) Dequeue() *Packet {
	if len(f.q) == 0 {
		return nil
	}
	p := f.q[0]
	f.q[0] = nil
	f.q = f.q[1:]
	return p
}

// Len implements Scheduler.
func (f *FIFO) Len() int { return len(f.q) }

// DRR is a deficit-round-robin scheduler with one virtual queue per
// class — the packet classifier + per-VC virtual queue configuration the
// paper describes for router interfaces carrying circuits.
type DRR struct {
	queues  [numClasses][]*Packet
	deficit [numClasses]float64
	quantum [numClasses]float64
	active  int
	// topped records whether the active class already received its
	// quantum this round; a class is topped up exactly once per visit of
	// the round-robin pointer.
	topped bool
	total  int
}

// NewDRR builds a DRR scheduler with the given per-class quanta (bytes
// added to a class's deficit each round; relative quanta set the
// bandwidth shares).
func NewDRR(quantumGP, quantumAlpha float64) (*DRR, error) {
	if quantumGP <= 0 || quantumAlpha <= 0 {
		return nil, errors.New("queueing: quanta must be positive")
	}
	d := &DRR{}
	d.quantum[GeneralPurpose] = quantumGP
	d.quantum[Alpha] = quantumAlpha
	return d, nil
}

// Enqueue implements Scheduler.
func (d *DRR) Enqueue(p *Packet) {
	d.queues[p.Class] = append(d.queues[p.Class], p)
	d.total++
}

func (d *DRR) advance() {
	d.active = (d.active + 1) % int(numClasses)
	d.topped = false
}

func (d *DRR) serve(c Class) *Packet {
	head := d.queues[c][0]
	d.queues[c][0] = nil
	d.queues[c] = d.queues[c][1:]
	d.total--
	return head
}

// Dequeue implements Scheduler. Packets larger than their class's
// accumulated deficit across a full sweep are eventually served anyway so
// oversized frames cannot deadlock the link.
func (d *DRR) Dequeue() *Packet {
	if d.total == 0 {
		return nil
	}
	// Each class is topped up at most once per pointer visit; after a
	// full sweep with no service, keep sweeping — deficits accumulate
	// until the largest head fits (bounded by maxPacket/quantum rounds).
	const maxSweeps = 64
	for scanned := 0; scanned < maxSweeps*int(numClasses); scanned++ {
		c := Class(d.active)
		if len(d.queues[c]) == 0 {
			d.deficit[c] = 0
			d.advance()
			continue
		}
		if !d.topped {
			d.deficit[c] += d.quantum[c]
			d.topped = true
		}
		head := d.queues[c][0]
		if d.deficit[c] >= float64(head.SizeBytes) {
			d.deficit[c] -= float64(head.SizeBytes)
			return d.serve(c)
		}
		d.advance()
	}
	// Pathological quanta (packet much larger than quantum × maxSweeps):
	// serve the first non-empty class to guarantee progress.
	for c := Class(0); c < numClasses; c++ {
		if len(d.queues[c]) > 0 {
			return d.serve(c)
		}
	}
	return nil
}

// Len implements Scheduler.
func (d *DRR) Len() int { return d.total }

// Link is one output interface transmitting packets at CapacityBps.
type Link struct {
	eng   *simclock.Engine
	sched Scheduler
	cap   float64

	busy     bool
	departed []*Packet
}

// NewLink creates a link on the engine.
func NewLink(eng *simclock.Engine, sched Scheduler, capacityBps float64) (*Link, error) {
	if eng == nil || sched == nil {
		return nil, errors.New("queueing: nil engine or scheduler")
	}
	if capacityBps <= 0 {
		return nil, errors.New("queueing: capacity must be positive")
	}
	return &Link{eng: eng, sched: sched, cap: capacityBps}, nil
}

// Arrive hands a packet to the link at the current virtual time.
func (l *Link) Arrive(p *Packet) {
	p.Arrived = l.eng.Now()
	l.sched.Enqueue(p)
	if !l.busy {
		l.transmitNext()
	}
}

func (l *Link) transmitNext() {
	p := l.sched.Dequeue()
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	txTime := simclock.Duration(float64(p.SizeBytes) * 8 / l.cap)
	l.eng.MustAfter(txTime, func() {
		p.Departed = l.eng.Now()
		l.departed = append(l.departed, p)
		l.transmitNext()
	})
}

// Departed returns every transmitted packet.
func (l *Link) Departed() []*Packet { return l.departed }

// DelaysByClass summarizes per-class packet delays in milliseconds.
func (l *Link) DelaysByClass() map[Class]stats.Summary {
	byClass := map[Class][]float64{}
	for _, p := range l.departed {
		byClass[p.Class] = append(byClass[p.Class], p.DelaySec()*1e3)
	}
	out := map[Class]stats.Summary{}
	for c, ds := range byClass {
		out[c] = stats.MustSummarize(ds)
	}
	return out
}

// PoissonSource schedules Poisson packet arrivals of one class on the
// link until the given time.
func PoissonSource(eng *simclock.Engine, link *Link, class Class, pktPerSec float64,
	sizeBytes int, until simclock.Time, rng *rand.Rand) error {
	if pktPerSec <= 0 || sizeBytes <= 0 {
		return errors.New("queueing: invalid source parameters")
	}
	var next func()
	next = func() {
		gap := simclock.Duration(-math.Log(1-rng.Float64()) / pktPerSec)
		at := eng.Now().Add(gap)
		if at > until {
			return
		}
		eng.MustAt(at, func() {
			link.Arrive(&Packet{Class: class, SizeBytes: sizeBytes})
			next()
		})
	}
	next()
	return nil
}

// BurstSource emits back-to-back bursts of burstPkts packets every
// interval — the α-flow pattern ("a large-sized burst of packets from an
// α flow") whose head-of-line blocking the virtual queues prevent.
func BurstSource(eng *simclock.Engine, link *Link, class Class, interval simclock.Duration,
	burstPkts, sizeBytes int, until simclock.Time) error {
	if interval <= 0 || burstPkts <= 0 || sizeBytes <= 0 {
		return errors.New("queueing: invalid burst parameters")
	}
	var emit func()
	emit = func() {
		for i := 0; i < burstPkts; i++ {
			link.Arrive(&Packet{Class: class, SizeBytes: sizeBytes})
		}
		at := eng.Now().Add(interval)
		if at > until {
			return
		}
		eng.MustAt(at, emit)
	}
	eng.MustAfter(interval, emit)
	return nil
}

// CompareIsolation runs the same traffic mix through a shared FIFO and
// through per-class virtual queues, returning the general-purpose delay
// summaries (ms) under each discipline. This is the §I positive #3
// experiment in miniature.
func CompareIsolation(seed int64, capacityBps float64, horizon simclock.Time) (fifo, drr stats.Summary, err error) {
	run := func(mk func(*simclock.Engine) (*Link, error)) (stats.Summary, error) {
		eng := simclock.New()
		link, err := mk(eng)
		if err != nil {
			return stats.Summary{}, err
		}
		rng := rand.New(rand.NewSource(seed))
		// GP: 2000 pps of 1500 B (24 Mbps). α: 9000 B jumbo-frame bursts
		// of 128 packets every 15 ms (~614 Mbps average, very bursty).
		if err := PoissonSource(eng, link, GeneralPurpose, 2000, 1500, horizon, rng); err != nil {
			return stats.Summary{}, err
		}
		if err := BurstSource(eng, link, Alpha, 15*simclock.Millisecond, 128, 9000, horizon); err != nil {
			return stats.Summary{}, err
		}
		eng.RunUntil(horizon.Add(5))
		eng.Run()
		return link.DelaysByClass()[GeneralPurpose], nil
	}
	fifo, err = run(func(eng *simclock.Engine) (*Link, error) {
		return NewLink(eng, NewFIFO(), capacityBps)
	})
	if err != nil {
		return fifo, drr, err
	}
	drr, err = run(func(eng *simclock.Engine) (*Link, error) {
		// GP gets a small guaranteed share; α the rest — mirroring a VC
		// with a rate guarantee below line rate.
		sched, err := NewDRR(3000, 18000)
		if err != nil {
			return nil, err
		}
		return NewLink(eng, sched, capacityBps)
	})
	return fifo, drr, err
}
