// Package usagestats implements Globus-style GridFTP usage statistics: the
// per-transfer record that GridFTP servers emit at the end of each
// transfer, a text log format for local server logs, and the UDP
// collection channel that ships records to a central collector (the paper
// obtained its datasets from exactly these two sources).
package usagestats

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// TransferType is the direction of a transfer relative to the server.
type TransferType string

const (
	// Store is a STOR: the file moved to the logging server.
	Store TransferType = "STOR"
	// Retrieve is a RETR: the file moved from the logging server.
	Retrieve TransferType = "RETR"
)

// Record is one GridFTP transfer log entry. The fields mirror what the
// Globus usage logger captures: transfer type, size in bytes, start time,
// duration, server identity, parallel TCP streams, stripes, TCP buffer
// size, and block size. RemoteHost is the other end of the transfer; the
// central Globus collector omits it for privacy, and some sites (NERSC in
// the paper) anonymize it even in local logs.
type Record struct {
	Type        TransferType
	SizeBytes   int64
	Start       time.Time
	DurationSec float64
	ServerHost  string
	RemoteHost  string // empty when anonymized
	Streams     int
	Stripes     int
	BufferBytes int64
	BlockBytes  int64
	// Code is the final FTP reply code of the transfer. Zero means a
	// completed transfer (the historical record shape; Globus loggers
	// omit the code on success). Codes >= 400 mark failed or aborted
	// transfers, which carry the partial byte count in SizeBytes — the
	// records the live failure-rate analysis needs and which success-only
	// loggers drop.
	Code int
	// WireBytes is the raw data-channel byte count when it differs from
	// SizeBytes: a resumed transfer that re-sent an overlap region moves
	// more bytes on the wire than it delivers. Zero means wire ==
	// delivered (the historical record shape; the WIRE= key is omitted),
	// which keeps old logs byte-identical.
	WireBytes int64
}

// Failed reports whether the record describes a failed or aborted
// transfer (final reply code >= 400).
func (r Record) Failed() bool { return r.Code >= 400 }

// ThroughputBps returns the transfer's average throughput in bits/second,
// or 0 when the duration is not positive.
func (r Record) ThroughputBps() float64 {
	if r.DurationSec <= 0 {
		return 0
	}
	return float64(r.SizeBytes) * 8 / r.DurationSec
}

// ThroughputMbps returns the throughput in megabits/second.
func (r Record) ThroughputMbps() float64 { return r.ThroughputBps() / 1e6 }

// End returns the completion time of the transfer.
func (r Record) End() time.Time {
	return r.Start.Add(time.Duration(r.DurationSec * float64(time.Second)))
}

// Validate reports whether the record is well formed.
func (r Record) Validate() error {
	switch {
	case r.Type != Store && r.Type != Retrieve:
		return fmt.Errorf("usagestats: unknown transfer type %q", r.Type)
	case r.Code < 0 || (r.Code > 0 && (r.Code < 100 || r.Code > 699)):
		return fmt.Errorf("usagestats: implausible reply code %d", r.Code)
	case r.Failed() && r.SizeBytes < 0:
		return errors.New("usagestats: negative partial size")
	case !r.Failed() && r.SizeBytes <= 0:
		return errors.New("usagestats: size must be positive")
	case r.DurationSec <= 0:
		return errors.New("usagestats: duration must be positive")
	case r.Start.IsZero():
		return errors.New("usagestats: start time unset")
	case r.ServerHost == "":
		return errors.New("usagestats: server host unset")
	case r.Streams < 1:
		return errors.New("usagestats: streams must be >= 1")
	case r.Stripes < 1:
		return errors.New("usagestats: stripes must be >= 1")
	case r.BufferBytes < 0 || r.BlockBytes < 0:
		return errors.New("usagestats: negative buffer or block size")
	case r.WireBytes < 0:
		return errors.New("usagestats: negative wire byte count")
	}
	return nil
}

// Anonymize returns a copy of the record with the remote endpoint removed,
// as the central collector and privacy-conscious sites do.
func (r Record) Anonymize() Record {
	r.RemoteHost = ""
	return r
}

// timeLayout is the wall-clock format in logs (UTC, microseconds).
const timeLayout = "2006-01-02T15:04:05.000000Z"

// Marshal renders the record as one key=value log line, the wire format of
// both the local server log and the UDP usage packet payload.
func (r Record) Marshal() string {
	kv := map[string]string{
		"TYPE":     string(r.Type),
		"NBYTES":   strconv.FormatInt(r.SizeBytes, 10),
		"START":    r.Start.UTC().Format(timeLayout),
		"DURATION": strconv.FormatFloat(r.DurationSec, 'f', 6, 64),
		"HOST":     r.ServerHost,
		"STREAMS":  strconv.Itoa(r.Streams),
		"STRIPES":  strconv.Itoa(r.Stripes),
		"BUFFER":   strconv.FormatInt(r.BufferBytes, 10),
		"BLOCK":    strconv.FormatInt(r.BlockBytes, 10),
	}
	if r.RemoteHost != "" {
		kv["DEST"] = r.RemoteHost
	}
	if r.Code != 0 {
		kv["CODE"] = strconv.Itoa(r.Code)
	}
	if r.WireBytes != 0 {
		kv["WIRE"] = strconv.FormatInt(r.WireBytes, 10)
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+kv[k])
	}
	return strings.Join(parts, " ")
}

// Unmarshal parses one log line produced by Marshal.
func Unmarshal(line string) (Record, error) {
	var r Record
	for _, field := range strings.Fields(line) {
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return r, fmt.Errorf("usagestats: malformed field %q", field)
		}
		var err error
		switch k {
		case "TYPE":
			r.Type = TransferType(v)
		case "NBYTES":
			r.SizeBytes, err = strconv.ParseInt(v, 10, 64)
		case "START":
			r.Start, err = time.Parse(timeLayout, v)
		case "DURATION":
			r.DurationSec, err = strconv.ParseFloat(v, 64)
		case "HOST":
			r.ServerHost = v
		case "DEST":
			r.RemoteHost = v
		case "STREAMS":
			r.Streams, err = strconv.Atoi(v)
		case "STRIPES":
			r.Stripes, err = strconv.Atoi(v)
		case "BUFFER":
			r.BufferBytes, err = strconv.ParseInt(v, 10, 64)
		case "BLOCK":
			r.BlockBytes, err = strconv.ParseInt(v, 10, 64)
		case "CODE":
			r.Code, err = strconv.Atoi(v)
		case "WIRE":
			r.WireBytes, err = strconv.ParseInt(v, 10, 64)
		default:
			// Ignore unknown keys: newer servers add fields.
		}
		if err != nil {
			return r, fmt.Errorf("usagestats: bad value for %s: %w", k, err)
		}
	}
	if err := r.Validate(); err != nil {
		return r, err
	}
	return r, nil
}

// WriteLog writes records to w, one Marshal line each.
func WriteLog(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		if err := r.Validate(); err != nil {
			return err
		}
		if _, err := bw.WriteString(r.Marshal() + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLog parses a log stream written by WriteLog. Blank lines and lines
// starting with '#' are skipped.
func ReadLog(rd io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := Unmarshal(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SortByStart orders records by start time (stable), the order session
// grouping requires.
func SortByStart(records []Record) {
	sort.SliceStable(records, func(i, j int) bool {
		return records[i].Start.Before(records[j].Start)
	})
}
