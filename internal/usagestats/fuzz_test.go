package usagestats

import (
	"strings"
	"testing"
)

// FuzzUnmarshal hardens the log/packet parser: arbitrary input must never
// panic, and any line that parses must re-marshal to a line that parses
// to the same record (the collector feeds this function raw UDP bytes
// from the network).
func FuzzUnmarshal(f *testing.F) {
	f.Add(sampleRecord().Marshal())
	f.Add(sampleRecord().Anonymize().Marshal())
	f.Add("")
	f.Add("TYPE=RETR")
	f.Add("TYPE=RETR NBYTES=99999999999999999999")
	f.Add("NBYTES=-5 TYPE=STOR")
	f.Add("TYPE=RETR NBYTES=1 START=2010-09-15T02:00:00.000000Z DURATION=1 HOST=h STREAMS=1 STRIPES=1 BUFFER=0 BLOCK=0")
	f.Add(strings.Repeat("A=", 2000))
	f.Add("TYPE=RETR \x00 NBYTES=1")
	f.Fuzz(func(t *testing.T, line string) {
		r, err := Unmarshal(line)
		if err != nil {
			return
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("Unmarshal returned invalid record without error: %v", err)
		}
		again, err := Unmarshal(r.Marshal())
		if err != nil {
			t.Fatalf("re-marshal of valid record failed to parse: %v", err)
		}
		// Timestamps survive at microsecond resolution by construction;
		// everything else must be identical.
		if again.Anonymize() != r.Anonymize() || again.RemoteHost != r.RemoteHost {
			t.Fatalf("round trip changed record:\n  in  %+v\n  out %+v", r, again)
		}
	})
}
