package usagestats

import (
	"errors"
	"net"
	"sync"
)

// The Globus GridFTP server ships one UDP packet per completed transfer to
// a central collector; sites may disable it. Sender and Collector
// implement that channel over real sockets (loopback in tests and
// examples).

// maxPacket bounds a usage packet; records are single short lines.
const maxPacket = 4096

// Sender emits usage packets to a collector address.
type Sender struct {
	conn net.Conn
}

// NewSender dials the collector (UDP).
func NewSender(addr string) (*Sender, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	return &Sender{conn: conn}, nil
}

// Send ships one record. Invalid records are rejected locally.
func (s *Sender) Send(r Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	_, err := s.conn.Write([]byte(r.Marshal()))
	return err
}

// Close releases the socket.
func (s *Sender) Close() error { return s.conn.Close() }

// Collector listens for usage packets and accumulates parsed records.
type Collector struct {
	pc net.PacketConn

	mu      sync.Mutex
	records []Record
	dropped int
	done    chan struct{}
}

// NewCollector starts a collector on addr ("127.0.0.1:0" picks a free
// port; read the chosen address with Addr).
func NewCollector(addr string) (*Collector, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, err
	}
	c := &Collector{pc: pc, done: make(chan struct{})}
	go c.loop()
	return c, nil
}

// Addr returns the bound listen address.
func (c *Collector) Addr() string { return c.pc.LocalAddr().String() }

func (c *Collector) loop() {
	defer close(c.done)
	buf := make([]byte, maxPacket)
	for {
		n, _, err := c.pc.ReadFrom(buf)
		if err != nil {
			return // closed
		}
		r, err := Unmarshal(string(buf[:n]))
		c.mu.Lock()
		if err != nil {
			c.dropped++
		} else {
			// The central collector strips the remote endpoint for
			// privacy, exactly the property that prevented session
			// analysis on the paper's NERSC dataset.
			c.records = append(c.records, r.Anonymize())
		}
		c.mu.Unlock()
	}
}

// Records returns a snapshot of the collected records.
func (c *Collector) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Record, len(c.records))
	copy(out, c.records)
	return out
}

// Dropped returns how many malformed packets were discarded.
func (c *Collector) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Close stops the collector and waits for the receive loop to exit.
func (c *Collector) Close() error {
	err := c.pc.Close()
	<-c.done
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}
