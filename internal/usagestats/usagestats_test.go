package usagestats

import (
	"net"
	"strings"
	"testing"
	"time"
)

func sampleRecord() Record {
	return Record{
		Type:        Retrieve,
		SizeBytes:   32 << 30,
		Start:       time.Date(2010, 9, 15, 2, 0, 0, 0, time.UTC),
		DurationSec: 142.5,
		ServerHost:  "dtn01.nersc.gov",
		RemoteHost:  "dtn02.ornl.gov",
		Streams:     8,
		Stripes:     1,
		BufferBytes: 4 << 20,
		BlockBytes:  256 << 10,
	}
}

func TestRecordValidate(t *testing.T) {
	if err := sampleRecord().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Record){
		func(r *Record) { r.Type = "PUSH" },
		func(r *Record) { r.SizeBytes = 0 },
		func(r *Record) { r.DurationSec = 0 },
		func(r *Record) { r.Start = time.Time{} },
		func(r *Record) { r.ServerHost = "" },
		func(r *Record) { r.Streams = 0 },
		func(r *Record) { r.Stripes = 0 },
		func(r *Record) { r.BufferBytes = -1 },
	}
	for i, m := range mutations {
		r := sampleRecord()
		m(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestFailedRecordCode(t *testing.T) {
	// Success records keep the historical wire shape: no CODE key.
	if line := sampleRecord().Marshal(); strings.Contains(line, "CODE=") {
		t.Errorf("success record emits CODE: %s", line)
	}
	// Failed records carry the final reply code and may have a zero
	// partial byte count.
	r := sampleRecord()
	r.Code = 425
	r.SizeBytes = 0
	if !r.Failed() {
		t.Fatal("code 425 should mark the record failed")
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("failed record with zero partial size: %v", err)
	}
	got, err := Unmarshal(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
	// Implausible codes and negative partial sizes are rejected.
	for _, m := range []func(*Record){
		func(r *Record) { r.Code = -1 },
		func(r *Record) { r.Code = 42 },
		func(r *Record) { r.Code = 700 },
		func(r *Record) { r.Code = 550; r.SizeBytes = -1 },
	} {
		bad := sampleRecord()
		m(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("record %+v should fail validation", bad)
		}
	}
	// Intermediate codes (< 400) are plausible but not failures.
	ok := sampleRecord()
	ok.Code = 226
	if ok.Failed() {
		t.Error("226 is not a failure code")
	}
	if err := ok.Validate(); err != nil {
		t.Error(err)
	}
}

func TestThroughput(t *testing.T) {
	r := sampleRecord()
	want := float64(32<<30) * 8 / 142.5
	if got := r.ThroughputBps(); got != want {
		t.Errorf("ThroughputBps = %v, want %v", got, want)
	}
	if got := r.ThroughputMbps(); got != want/1e6 {
		t.Errorf("ThroughputMbps = %v, want %v", got, want/1e6)
	}
	r.DurationSec = 0
	if r.ThroughputBps() != 0 {
		t.Error("zero duration should yield zero throughput")
	}
}

func TestEnd(t *testing.T) {
	r := sampleRecord()
	want := r.Start.Add(time.Duration(142.5 * float64(time.Second)))
	if !r.End().Equal(want) {
		t.Errorf("End = %v, want %v", r.End(), want)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := sampleRecord()
	line := r.Marshal()
	got, err := Unmarshal(line)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestMarshalAnonymizedRoundTrip(t *testing.T) {
	r := sampleRecord().Anonymize()
	if strings.Contains(r.Marshal(), "DEST=") {
		t.Error("anonymized record should omit DEST")
	}
	got, err := Unmarshal(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.RemoteHost != "" {
		t.Error("RemoteHost should stay empty")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []string{
		"garbage",                       // no '='
		"TYPE=RETR NBYTES=abc",          // bad int
		"TYPE=RETR",                     // fails validation
		"TYPE=RETR NBYTES=1 START=xxx",  // bad time
		"TYPE=RETR STREAMS=notanumber",  // bad int
		"TYPE=RETR DURATION=nonsense==", // bad float (extra '=' is part of value)
	}
	for _, line := range cases {
		if _, err := Unmarshal(line); err == nil {
			t.Errorf("Unmarshal(%q) should fail", line)
		}
	}
}

func TestUnmarshalIgnoresUnknownKeys(t *testing.T) {
	line := sampleRecord().Marshal() + " FUTUREFIELD=1"
	if _, err := Unmarshal(line); err != nil {
		t.Errorf("unknown key should be ignored: %v", err)
	}
}

func TestLogRoundTrip(t *testing.T) {
	records := []Record{sampleRecord(), sampleRecord().Anonymize()}
	records[1].Start = records[1].Start.Add(time.Hour)
	var sb strings.Builder
	if err := WriteLog(&sb, records); err != nil {
		t.Fatal(err)
	}
	text := "# comment line\n\n" + sb.String()
	got, err := ReadLog(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records, want 2", len(got))
	}
	for i := range got {
		if got[i] != records[i] {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestWriteLogRejectsInvalid(t *testing.T) {
	var sb strings.Builder
	if err := WriteLog(&sb, []Record{{}}); err == nil {
		t.Error("invalid record should fail")
	}
}

func TestReadLogBadLine(t *testing.T) {
	if _, err := ReadLog(strings.NewReader("not a record\n")); err == nil {
		t.Error("bad line should fail with line number")
	}
}

func TestSortByStart(t *testing.T) {
	a, b := sampleRecord(), sampleRecord()
	a.Start = a.Start.Add(time.Hour)
	rs := []Record{a, b}
	SortByStart(rs)
	if !rs[0].Start.Before(rs[1].Start) {
		t.Error("not sorted by start")
	}
}

func TestCollectorEndToEnd(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	snd, err := NewSender(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	want := sampleRecord()
	if err := snd.Send(want); err != nil {
		t.Fatal(err)
	}
	// UDP is async; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if rs := col.Records(); len(rs) == 1 {
			if rs[0].RemoteHost != "" {
				t.Error("collector should anonymize the remote host")
			}
			if rs[0].SizeBytes != want.SizeBytes || rs[0].Streams != want.Streams {
				t.Errorf("collected %+v", rs[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("record never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCollectorDropsMalformed(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	conn, err := net.Dial("udp", col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("junk packet")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for col.Dropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("malformed packet never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(col.Records()) != 0 {
		t.Error("malformed packet should not produce a record")
	}
}

func TestSenderRejectsInvalid(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	snd, err := NewSender(col.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()
	if err := snd.Send(Record{}); err == nil {
		t.Error("invalid record should be rejected before sending")
	}
}
