package vc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gftpvc/internal/faultnet"
	"gftpvc/internal/oscarsd"
	"gftpvc/internal/telemetry"
)

func startDaemon(t *testing.T) *oscarsd.Server {
	t.Helper()
	srv, err := oscarsd.Start(oscarsd.Config{
		Addr:               "127.0.0.1:0",
		Scenario:           "nersc-ornl",
		ReservableFraction: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func dialClient(t *testing.T, addr string, opts ...Option) *Client {
	t.Helper()
	c, err := Dial(context.Background(), addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestTypedOperations(t *testing.T) {
	srv := startDaemon(t)
	c := dialClient(t, srv.Addr())
	ctx := context.Background()

	if v := c.ProtocolVersion(); v != oscarsd.ProtocolVersion {
		t.Fatalf("negotiated version %d, want %d", v, oscarsd.ProtocolVersion)
	}
	top, err := c.Topology(ctx)
	if err != nil || len(top.Nodes) == 0 {
		t.Fatalf("Topology: %+v, %v", top, err)
	}
	req := ReserveRequest{
		Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
		RateBps: 4e9, Start: top.Now + 100, End: top.Now + 200,
	}
	if path, err := c.Available(ctx, req); err != nil || len(path) == 0 {
		t.Fatalf("Available: %v, %v", path, err)
	}
	res, err := c.Reserve(ctx, req)
	if err != nil || res.ID == 0 || len(res.Path) == 0 {
		t.Fatalf("Reserve: %+v, %v", res, err)
	}
	if res.Src != req.Src || res.Dst != req.Dst {
		t.Errorf("reservation endpoints %s -> %s, want %s -> %s",
			res.Src, res.Dst, req.Src, req.Dst)
	}
	mod, err := c.Modify(ctx, ModifyRequest{
		ID: res.ID, RateBps: 1e9, Start: req.Start, End: req.End + 100,
	})
	if err != nil || mod.ID != res.ID {
		t.Fatalf("Modify: %+v, %v", mod, err)
	}
	if err := c.Cancel(ctx, res.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if now, err := c.Now(ctx); err != nil || now < 0 {
		t.Fatalf("Now: %v, %v", now, err)
	}
}

func TestSentinelMapping(t *testing.T) {
	srv := startDaemon(t)
	c := dialClient(t, srv.Addr())
	ctx := context.Background()
	now, err := c.Now(ctx)
	if err != nil {
		t.Fatal(err)
	}
	req := ReserveRequest{
		Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
		RateBps: 4e9, Start: now + 100, End: now + 200,
	}
	if _, err := c.Reserve(ctx, req); err != nil {
		t.Fatal(err)
	}
	// The 5 Gbps-reservable path cannot fit a second 4 Gbps circuit.
	_, err = c.Reserve(ctx, req)
	if !errors.Is(err, ErrNoPath) {
		t.Fatalf("overbook: %v, want ErrNoPath", err)
	}
	var se *ServerError
	if !errors.As(err, &se) || se.Code != oscarsd.CodeNoPath || se.Msg == "" {
		t.Fatalf("overbook ServerError: %+v", se)
	}
	if err := c.Cancel(ctx, 9999); !errors.Is(err, ErrUnknownCircuit) {
		t.Fatalf("cancel unknown: %v, want ErrUnknownCircuit", err)
	}
	if _, err := c.Modify(ctx, ModifyRequest{ID: 9999, RateBps: 1e9, Start: now + 1, End: now + 2}); !errors.Is(err, ErrUnknownCircuit) {
		t.Fatalf("modify unknown: %v, want ErrUnknownCircuit", err)
	}
	// Validation failures are rejections, not path exhaustion.
	if _, err := c.Reserve(ctx, ReserveRequest{
		Src: req.Src, Dst: req.Dst, RateBps: -1, Start: now + 1, End: now + 2,
	}); !errors.Is(err, ErrRejected) {
		t.Fatalf("bad rate: %v, want ErrRejected", err)
	}
	// Sentinels are disjoint: a no-path error is not a rejected error.
	if _, err := c.Reserve(ctx, req); errors.Is(err, ErrUnknownCircuit) || errors.Is(err, ErrUnavailable) {
		t.Fatalf("overbook matched wrong sentinel: %v", err)
	}
}

func TestUnavailableAndClosed(t *testing.T) {
	// Nothing listens here (immediate refusal on loopback).
	if _, err := Dial(context.Background(), "127.0.0.1:1",
		WithDialTimeout(200*time.Millisecond)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("dial dead addr: %v, want ErrUnavailable", err)
	}
	srv := startDaemon(t)
	c := dialClient(t, srv.Addr())
	c.Close()
	c.Close() // idempotent
	if _, err := c.Topology(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close: %v, want ErrClosed", err)
	}
}

func TestContextCancellation(t *testing.T) {
	srv := startDaemon(t)
	proxy, err := faultnet.NewProxy(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	c := dialClient(t, proxy.Addr())
	proxy.Stall()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.Topology(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("stalled call under cancel: %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt", elapsed)
	}
	// A context deadline also bounds the call, as its own error.
	dctx, dcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer dcancel()
	if _, err := c.Topology(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled call under deadline: %v, want DeadlineExceeded", err)
	}
}

func TestAutoReconnectAfterReset(t *testing.T) {
	srv := startDaemon(t)
	proxy, err := faultnet.NewProxy(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	c := dialClient(t, proxy.Addr())
	ctx := context.Background()
	if _, err := c.Topology(ctx); err != nil {
		t.Fatal(err)
	}
	// Kill every proxied connection: the pooled one is now stale. The
	// next call must transparently redial and succeed.
	proxy.Reset()
	if _, err := c.Topology(ctx); err != nil {
		t.Fatalf("call after reset: %v, want transparent reconnect", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	srv := startDaemon(t)
	hub := telemetry.NewHub()
	c := dialClient(t, srv.Addr(), WithTelemetry(hub), WithPoolSize(4))
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Topology(context.Background()); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The telemetry counter saw every call (16 topology + the Dial hello
	// is counted only for explicit Now calls, not the handshake).
	var dump strings.Builder
	hub.Registry().WriteProm(&dump)
	if !strings.Contains(dump.String(), `vc_client_calls_total{op="topology",result="ok"} 16`) {
		t.Fatalf("metrics missing call counter:\n%s", dump.String())
	}
}

// legacyServer speaks the seed-era version-0 protocol: string ops, no
// hello, bare error strings without codes — the wire behavior of an
// unmodified oscarsd deployment.
type legacyServer struct {
	ln net.Listener
}

func startLegacyServer(t *testing.T) *legacyServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &legacyServer{ln: ln}
	go s.loop()
	t.Cleanup(func() { ln.Close() })
	return s
}

func (s *legacyServer) loop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.handle(conn)
	}
}

func (s *legacyServer) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	enc := json.NewEncoder(conn)
	nextID := int64(0)
	for sc.Scan() {
		var req map[string]any
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			enc.Encode(map[string]any{"ok": false, "error": "malformed request"})
			continue
		}
		op, _ := req["op"].(string)
		var resp map[string]any
		switch op {
		case "topology":
			resp = map[string]any{"ok": true, "nodes": []string{"a", "b"}, "now": 12.5}
		case "reserve":
			if rate, _ := req["rate_bps"].(float64); rate > 1e9 {
				resp = map[string]any{"ok": false, "error": "topo: no path"}
			} else {
				nextID++
				resp = map[string]any{"ok": true, "id": nextID, "path": []string{"a->b"},
					"src": req["src"], "dst": req["dst"]}
			}
		case "cancel":
			resp = map[string]any{"ok": false, "error": "unknown circuit 7"}
		default:
			resp = map[string]any{"ok": false, "error": "unknown op \"" + op + "\""}
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func TestLegacyPeerNegotiation(t *testing.T) {
	s := startLegacyServer(t)
	c := dialClient(t, s.ln.Addr().String())
	ctx := context.Background()
	if v := c.ProtocolVersion(); v != 0 {
		t.Fatalf("legacy peer negotiated version %d, want 0", v)
	}
	top, err := c.Topology(ctx)
	if err != nil || len(top.Nodes) != 2 {
		t.Fatalf("legacy Topology: %+v, %v", top, err)
	}
	// Now falls back to the topology op on version-0 peers.
	if now, err := c.Now(ctx); err != nil || now != 12.5 {
		t.Fatalf("legacy Now: %v, %v", now, err)
	}
	res, err := c.Reserve(ctx, ReserveRequest{
		Src: "a", Dst: "b", RateBps: 1e8, Start: 100, End: 200,
	})
	if err != nil || res.ID != 1 {
		t.Fatalf("legacy Reserve: %+v, %v", res, err)
	}
	// Code-less error strings still map onto the right sentinels.
	_, err = c.Reserve(ctx, ReserveRequest{Src: "a", Dst: "b", RateBps: 9e9, Start: 1, End: 2})
	if !errors.Is(err, ErrNoPath) {
		t.Fatalf("legacy no-path: %v, want ErrNoPath", err)
	}
	var se *ServerError
	if !errors.As(err, &se) || se.Code != "" {
		t.Fatalf("legacy ServerError should have no code: %+v", se)
	}
	if err := c.Cancel(ctx, 7); !errors.Is(err, ErrUnknownCircuit) {
		t.Fatalf("legacy unknown circuit: %v, want ErrUnknownCircuit", err)
	}
}
