package vc

import (
	"errors"
	"strings"

	"gftpvc/internal/oscarsd"
)

// Sentinel errors for the reservation control plane. Every failure a
// Client method returns wraps exactly one of these, so callers branch
// with errors.Is instead of string matching:
//
//	res, err := client.Reserve(ctx, req)
//	switch {
//	case errors.Is(err, vc.ErrNoPath):      // admission reject: fall back to IP
//	case errors.Is(err, vc.ErrUnavailable): // daemon down: fall back, retry later
//	}
var (
	// ErrRejected: the daemon refused the operation (a lost admission
	// race, a modify that could not be re-booked, or a request the
	// daemon considers invalid).
	ErrRejected = errors.New("vc: rejected by reservation service")
	// ErrNoPath: no path between the endpoints has the requested
	// bandwidth over the requested window — the paper's admission
	// reject, after which transfers proceed best-effort.
	ErrNoPath = errors.New("vc: no path with requested bandwidth")
	// ErrUnavailable: the daemon could not be reached or the connection
	// died mid-call; the reservation state is unknown.
	ErrUnavailable = errors.New("vc: reservation service unavailable")
	// ErrUnknownCircuit: cancel/modify named a circuit the daemon is not
	// holding (already cancelled, expired, or lost to a daemon restart).
	ErrUnknownCircuit = errors.New("vc: unknown circuit")
	// ErrClosed: the Client has been Closed.
	ErrClosed = errors.New("vc: client closed")
)

// ServerError is a structured rejection from the daemon: the operation
// reached the service and was refused. It unwraps to one of the
// sentinel errors above, chosen from the protocol-1 error code when the
// peer sent one and from the message text for version-0 peers.
type ServerError struct {
	// Op is the protocol operation that was refused.
	Op string
	// Code is the machine-readable error class (an oscarsd.Code*
	// constant); empty when the peer speaks protocol 0.
	Code string
	// Msg is the daemon's human-readable error line, verbatim.
	Msg string
}

func (e *ServerError) Error() string { return "vc: " + e.Op + ": " + e.Msg }

// Unwrap maps the rejection onto its sentinel so errors.Is works.
func (e *ServerError) Unwrap() error {
	switch e.Code {
	case oscarsd.CodeNoPath:
		return ErrNoPath
	case oscarsd.CodeUnknownCircuit:
		return ErrUnknownCircuit
	case oscarsd.CodeRejected, oscarsd.CodeBadRequest,
		oscarsd.CodeUnknownOp, oscarsd.CodeMalformed:
		return ErrRejected
	}
	// Version-0 peer: classify from the seed daemon's message texts.
	switch {
	case strings.Contains(e.Msg, "no path"),
		strings.Contains(e.Msg, "bandwidth"):
		return ErrNoPath
	case strings.Contains(e.Msg, "unknown circuit"):
		return ErrUnknownCircuit
	default:
		return ErrRejected
	}
}
