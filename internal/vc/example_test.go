package vc_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"gftpvc/internal/oscarsd"
	"gftpvc/internal/vc"
)

// ExampleDial reserves, resizes, and releases a circuit against a live
// oscarsd daemon — the full control-plane lifecycle a transfer manager
// drives around one GridFTP session.
func ExampleDial() {
	srv, err := oscarsd.Start(oscarsd.Config{
		Addr: "127.0.0.1:0", Scenario: "nersc-ornl", ReservableFraction: 0.8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	client, err := vc.Dial(ctx, srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Reservation windows are on the daemon's service clock.
	now, err := client.Now(ctx)
	if err != nil {
		log.Fatal(err)
	}
	res, err := client.Reserve(ctx, vc.ReserveRequest{
		Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
		RateBps: 1e9, Start: now + 10, End: now + 610,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %d over %d hops\n", res.ID, len(res.Path))

	// The session ran long: extend the hold.
	if _, err := client.Modify(ctx, vc.ModifyRequest{
		ID: res.ID, RateBps: 1e9, Start: now + 10, End: now + 1210,
	}); err != nil {
		log.Fatal(err)
	}
	if err := client.Cancel(ctx, res.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cancelled")
	// Output:
	// circuit 1 over 8 hops
	// cancelled
}

// ExampleClient_Reserve_fallback shows the hybrid dispatch decision:
// when admission fails, the error is a typed sentinel and the transfer
// simply proceeds over best-effort IP.
func ExampleClient_Reserve_fallback() {
	srv, err := oscarsd.Start(oscarsd.Config{
		Addr: "127.0.0.1:0", Scenario: "nersc-ornl", ReservableFraction: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client, err := vc.Dial(ctx, srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	now, _ := client.Now(ctx)
	ask := vc.ReserveRequest{
		Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
		RateBps: 4e9, Start: now + 10, End: now + 70,
	}
	if _, err := client.Reserve(ctx, ask); err != nil {
		log.Fatal(err)
	}
	// A second 4 Gbps circuit cannot fit on the 5 Gbps-reservable path.
	_, err = client.Reserve(ctx, ask)
	if errors.Is(err, vc.ErrNoPath) {
		fmt.Println("admission rejected: staying on best-effort IP")
	}
	// Output:
	// admission rejected: staying on best-effort IP
}
