package broker

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"gftpvc/internal/faultnet"
	"gftpvc/internal/oscarsd"
	"gftpvc/internal/telemetry"
	"gftpvc/internal/vc"
)

const (
	srcNode = "nersc-ornl-dtn-src"
	dstNode = "nersc-ornl-dtn-dst"
)

func startDaemon(t *testing.T, reservable float64) *oscarsd.Server {
	t.Helper()
	srv, err := oscarsd.Start(oscarsd.Config{
		Addr:               "127.0.0.1:0",
		Scenario:           "nersc-ornl",
		ReservableFraction: reservable,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func dialClient(t *testing.T, addr string) *vc.Client {
	t.Helper()
	c, err := vc.Dial(context.Background(), addr, vc.WithCallTimeout(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// testConfig is a fast-deciding broker: 100ms "setup delay" at factor
// 10 means sessions predicted to run >= 1s (>= 100 MB at 800 Mbps)
// qualify for a circuit. The rate clamp is pinned (min == max) so the
// throughput observed from artificially fast test jobs cannot move the
// amortization threshold between assertions.
func testConfig(hub *telemetry.Hub) Config {
	return Config{
		Gap:             150 * time.Millisecond,
		SetupDelay:      100 * time.Millisecond,
		OverheadFactor:  10,
		MinRateBps:      800e6,
		MaxRateBps:      800e6,
		HoldSlack:       time.Second,
		DecisionTimeout: time.Second,
		Route:           StaticRoute(srcNode, dstNode),
		Telemetry:       hub,
	}
}

// qualifying is a size hint comfortably above the amortization
// threshold (1s at the 800 Mbps reference = 100 MB).
const qualifying = int64(1 << 30) // 1 GiB ≈ 10.7s predicted

func newBroker(t *testing.T, client *vc.Client, cfg Config) *Broker {
	t.Helper()
	b, err := New(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func TestConfigValidation(t *testing.T) {
	srv := startDaemon(t, 0.8)
	c := dialClient(t, srv.Addr())
	if _, err := New(nil, testConfig(nil)); err == nil {
		t.Error("nil client accepted")
	}
	if _, err := New(c, Config{}); err == nil {
		t.Error("zero Gap accepted")
	}
	if _, err := New(c, Config{Gap: time.Second, HoldSlack: -1}); err == nil {
		t.Error("negative HoldSlack accepted")
	}
}

// TestShortSessionStaysIP: a session below the amortization threshold
// is dispatched best-effort, with no fallback story and no reservation
// RPC consequences.
func TestShortSessionStaysIP(t *testing.T) {
	srv := startDaemon(t, 0.8)
	c := dialClient(t, srv.Addr())
	b := newBroker(t, c, testConfig(nil))

	lease := b.Begin(context.Background(), "src:1", "dst:1", 1<<20) // 1 MB: ~10ms predicted
	disp := lease.Disposition()
	if disp.Service != ServiceIP || disp.Fallback != "" || disp.CircuitID != 0 {
		t.Fatalf("short session: %+v, want plain IP", disp)
	}
	lease.End(1<<20, 10*time.Millisecond)
}

// TestAmortizingSessionGetsCircuit: a predicted-long session reserves a
// circuit; follow-on jobs within the gap ride (and extend) it; after
// the gap the circuit is cancelled and its bandwidth is free again.
func TestAmortizingSessionGetsCircuit(t *testing.T) {
	srv := startDaemon(t, 0.8)
	c := dialClient(t, srv.Addr())
	hub := telemetry.NewHub()
	b := newBroker(t, c, testConfig(hub))
	ctx := context.Background()

	l1 := b.Begin(ctx, "src:1", "dst:1", qualifying)
	d1 := l1.Disposition()
	if d1.Service != ServiceVC || d1.CircuitID == 0 {
		t.Fatalf("amortizing session: %+v, want VC", d1)
	}
	if d1.SetupWait <= 0 {
		t.Errorf("first VC job should report setup wait, got %v", d1.SetupWait)
	}
	l1.End(qualifying, 500*time.Millisecond)

	// Back-to-back follow-on inside the gap: same circuit, no new setup
	// wait, and the hold is extended for the added bytes — the 20 GiB
	// hint needs far more than the first booking's hold.
	l2 := b.Begin(ctx, "src:1", "dst:1", 20*qualifying)
	d2 := l2.Disposition()
	if d2.Service != ServiceVC || d2.CircuitID != d1.CircuitID {
		t.Fatalf("follow-on job: %+v, want same circuit %d", d2, d1.CircuitID)
	}
	if d2.SetupWait != 0 {
		t.Errorf("follow-on job paid setup wait %v", d2.SetupWait)
	}
	l2.End(qualifying, 500*time.Millisecond)

	// Let the gap expire: the session closes and cancels the circuit.
	deadline := time.Now().Add(3 * time.Second)
	for b.Sessions() > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := b.Sessions(); n != 0 {
		t.Fatalf("%d sessions still open after gap", n)
	}

	var dump strings.Builder
	hub.Registry().WriteProm(&dump)
	out := dump.String()
	for _, want := range []string{
		`vc_broker_reserved_total 1`,
		`vc_broker_extended_total 1`,
		`vc_broker_cancelled_total 1`,
		`vc_broker_jobs_total{service="vc"} 2`,
		`vc_broker_amortization_ratio_count 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestFirstTransferClampedRateDrivesThreshold is the decision-table
// case for a pair's very first transfer: the EWMA is zero, so rateFor
// falls back to the configured reference — which MinRateBps then
// raises BEFORE the amortization test runs. With a 8 Mbps reference
// clamped up to 800 Mbps, the threshold is 100 MB, not 1 MB: a 10 MB
// session must stay IP (at 800 Mbps it cannot amortize the setup), and
// only a session past the clamped threshold reserves.
func TestFirstTransferClampedRateDrivesThreshold(t *testing.T) {
	srv := startDaemon(t, 0.8)
	c := dialClient(t, srv.Addr())
	cfg := testConfig(nil)
	cfg.ReferenceThroughputBps = 8e6 // unclamped threshold would be 1 MB
	b := newBroker(t, c, cfg)
	ctx := context.Background()

	cases := []struct {
		name     string
		src, dst string // distinct pair per case: always a zero-EWMA first transfer
		hint     int64
		wantVC   bool
	}{
		// 10 MB clears the unclamped 1 MB threshold by 10x; if the
		// clamp ran after the amortization test this would reserve.
		{"below clamped threshold", "src:a", "dst:a", 10 << 20, false},
		// 200 MB clears the clamped 100 MB threshold.
		{"above clamped threshold", "src:b", "dst:b", 200 << 20, true},
	}
	for _, tc := range cases {
		lease := b.Begin(ctx, tc.src, tc.dst, tc.hint)
		disp := lease.Disposition()
		gotVC := disp.Service == ServiceVC
		if gotVC != tc.wantVC {
			t.Errorf("%s: disposition %+v, want VC=%v", tc.name, disp, tc.wantVC)
		}
		if !tc.wantVC && disp.Fallback != "" {
			t.Errorf("%s: sub-threshold session carries fallback %q, want none", tc.name, disp.Fallback)
		}
		lease.End(tc.hint, 100*time.Millisecond)
	}
}

// TestRejectFallsBackToIP: when admission fails, jobs are dispatched
// best-effort with the reject recorded, the session does not hammer the
// daemon again, and a later session retries.
func TestRejectFallsBackToIP(t *testing.T) {
	srv := startDaemon(t, 0.5)
	c := dialClient(t, srv.Addr())
	hub := telemetry.NewHub()
	b := newBroker(t, c, testConfig(hub))
	ctx := context.Background()

	// Saturate the reservable bandwidth out from under the broker.
	now, err := c.Now(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hog, err := c.Reserve(ctx, vc.ReserveRequest{
		Src: srcNode, Dst: dstNode, RateBps: 4.9e9,
		Start: now + 1, End: now + 3600,
	})
	if err != nil {
		t.Fatal(err)
	}

	l1 := b.Begin(ctx, "src:1", "dst:1", qualifying)
	d1 := l1.Disposition()
	if d1.Service != ServiceIP || !strings.Contains(d1.Fallback, "admission rejected") {
		t.Fatalf("rejected session: %+v, want IP with admission-rejected fallback", d1)
	}
	l1.End(qualifying, 100*time.Millisecond)

	// Same session: the reject is sticky, no second reservation attempt.
	l2 := b.Begin(ctx, "src:1", "dst:1", qualifying)
	if d2 := l2.Disposition(); d2.Service != ServiceIP || d2.Fallback == "" {
		t.Fatalf("follow-on after reject: %+v", d2)
	}
	l2.End(qualifying, 100*time.Millisecond)

	// Free the bandwidth and let the session close: the next session
	// gets its circuit.
	if err := c.Cancel(ctx, hog.ID); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2*b.cfg.Gap + 100*time.Millisecond)
	l3 := b.Begin(ctx, "src:1", "dst:1", qualifying)
	if d3 := l3.Disposition(); d3.Service != ServiceVC {
		t.Fatalf("post-recovery session: %+v, want VC", d3)
	}
	l3.End(qualifying, 100*time.Millisecond)

	var dump strings.Builder
	hub.Registry().WriteProm(&dump)
	if !strings.Contains(dump.String(), `vc_broker_fallback_total{reason="rejected"} 1`) {
		t.Errorf("metrics missing rejected fallback:\n%s", dump.String())
	}
}

// TestDaemonDeathDegradesAndRecovers: killing the control-plane path
// mid-session degrades the session to IP (without failing any job);
// once the daemon is reachable again, the next session reserves as
// normal through the client's auto-reconnect.
func TestDaemonDeathDegradesAndRecovers(t *testing.T) {
	srv := startDaemon(t, 0.8)
	proxy, err := faultnet.NewProxy(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	c := dialClient(t, proxy.Addr())
	hub := telemetry.NewHub()
	cfg := testConfig(hub)
	cfg.DecisionTimeout = 300 * time.Millisecond
	b := newBroker(t, c, cfg)
	ctx := context.Background()

	l1 := b.Begin(ctx, "src:1", "dst:1", qualifying)
	if d1 := l1.Disposition(); d1.Service != ServiceVC {
		t.Fatalf("healthy session: %+v, want VC", d1)
	}
	l1.End(qualifying, 100*time.Millisecond)

	// The daemon path dies mid-session: stall (so calls time out) and
	// reset existing connections. The 64 GiB hint forces an extension
	// RPC, which now fails — the session degrades instead of riding a
	// hold it can no longer manage.
	proxy.Stall()
	proxy.Reset()
	start := time.Now()
	l2 := b.Begin(ctx, "src:1", "dst:1", 64*qualifying)
	d2 := l2.Disposition()
	if d2.Service != ServiceIP || !strings.Contains(d2.Fallback, "unavailable") {
		t.Fatalf("mid-outage job: %+v, want IP with unavailable fallback", d2)
	}
	// The job must not have been held hostage by the dead control
	// plane: one decision timeout, give or take retries.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dispatch under outage took %v", elapsed)
	}
	l2.End(qualifying, 100*time.Millisecond)

	// Recovery: service returns, gap expires, next session is VC again.
	proxy.Resume()
	time.Sleep(2*cfg.Gap + 100*time.Millisecond)
	l3 := b.Begin(ctx, "src:1", "dst:1", qualifying)
	if d3 := l3.Disposition(); d3.Service != ServiceVC {
		t.Fatalf("post-recovery session: %+v, want VC", d3)
	}
	l3.End(qualifying, 100*time.Millisecond)

	var dump strings.Builder
	hub.Registry().WriteProm(&dump)
	if !strings.Contains(dump.String(), `reason="lost"`) {
		t.Errorf("metrics missing lost fallback:\n%s", dump.String())
	}
}

// TestUnroutedPairsStayIP: without a topology route the broker never
// touches the control plane.
func TestUnroutedPairsStayIP(t *testing.T) {
	srv := startDaemon(t, 0.8)
	c := dialClient(t, srv.Addr())
	cfg := testConfig(nil)
	cfg.Route = nil
	b := newBroker(t, c, cfg)
	lease := b.Begin(context.Background(), "src:1", "dst:1", qualifying)
	if d := lease.Disposition(); d.Service != ServiceIP || d.Fallback != "" {
		t.Fatalf("unrouted pair: %+v, want plain IP", d)
	}
	lease.End(qualifying, time.Millisecond)
}

// TestSessionUpgradesAsBytesAccumulate: jobs individually below the
// threshold upgrade the session to VC once the observed session total
// crosses it — the paper's multi-transfer sessions.
func TestSessionUpgradesAsBytesAccumulate(t *testing.T) {
	srv := startDaemon(t, 0.8)
	c := dialClient(t, srv.Addr())
	b := newBroker(t, c, testConfig(nil))
	ctx := context.Background()

	const chunk = int64(40 << 20) // 40 MB: below the ~100 MB threshold
	l1 := b.Begin(ctx, "src:1", "dst:1", chunk)
	if d := l1.Disposition(); d.Service != ServiceIP {
		t.Fatalf("first small job: %+v, want IP", d)
	}
	l1.End(chunk, 50*time.Millisecond)
	l2 := b.Begin(ctx, "src:1", "dst:1", chunk)
	l2.End(chunk, 50*time.Millisecond)
	// 80 MB seen + 40 MB hint = 120 MB predicted: crosses the line.
	l3 := b.Begin(ctx, "src:1", "dst:1", chunk)
	if d := l3.Disposition(); d.Service != ServiceVC {
		t.Fatalf("accumulated session: %+v, want VC upgrade", d)
	}
	l3.End(chunk, 50*time.Millisecond)
}

// TestConcurrentJobsRaceClean drives many concurrent Begin/End pairs
// across a handful of endpoint pairs; run under -race via RACE_PKGS.
func TestConcurrentJobsRaceClean(t *testing.T) {
	srv := startDaemon(t, 0.8)
	c := dialClient(t, srv.Addr())
	b := newBroker(t, c, testConfig(telemetry.NewHub()))
	var wg sync.WaitGroup
	pairs := []string{"a", "b", "c"}
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pair := pairs[i%len(pairs)]
			lease := b.Begin(context.Background(), "src:"+pair, "dst:"+pair, qualifying)
			time.Sleep(time.Duration(i%5) * time.Millisecond)
			lease.End(qualifying, 10*time.Millisecond)
		}(i)
	}
	wg.Wait()
	b.Close()
	// Close with in-flight leases already ended must have cancelled
	// every circuit; a full-capacity reservation must now fit.
	now, err := c.Now(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reserve(context.Background(), vc.ReserveRequest{
		Src: srcNode, Dst: dstNode, RateBps: 4e9,
		Start: now + 1, End: now + 10,
	}); err != nil {
		t.Fatalf("bandwidth leaked after broker close: %v", err)
	}
}

// TestLeaseRateChangeWatcher: an in-flight VC lease that registered
// OnRateChange hears about a later extension re-booking the circuit at
// a new rate, and the registration dies with the lease.
func TestLeaseRateChangeWatcher(t *testing.T) {
	srv := startDaemon(t, 0.8)
	c := dialClient(t, srv.Addr())
	cfg := testConfig(nil)
	cfg.MaxRateBps = 1600e6 // leave EWMA headroom above the 800 Mbps floor
	b := newBroker(t, c, cfg)
	ctx := context.Background()

	// First job reserves at the floor (no EWMA yet) and stays in flight.
	l1 := b.Begin(ctx, "src:1", "dst:1", qualifying)
	d1 := l1.Disposition()
	if d1.Service != ServiceVC || d1.RateBps != 800e6 {
		t.Fatalf("first lease: %+v, want VC at 800e6", d1)
	}
	rated := make(chan float64, 4)
	l1.OnRateChange(func(bps float64) { rated <- bps })

	// A fast sibling job moves the pair's EWMA far above the ceiling.
	l2 := b.Begin(ctx, "src:1", "dst:1", qualifying)
	l2.End(qualifying, 500*time.Millisecond) // ~17 Gbps observed

	// The next job's hint forces a Modify, re-booking at the clamped
	// EWMA rate — the in-flight l1 must hear about it.
	l3 := b.Begin(ctx, "src:1", "dst:1", 20*qualifying)
	if d3 := l3.Disposition(); d3.RateBps != 1600e6 {
		t.Fatalf("extended lease rate = %v, want 1600e6", d3.RateBps)
	}
	select {
	case bps := <-rated:
		if bps != 1600e6 {
			t.Fatalf("watcher fired with %v, want 1600e6", bps)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("rate-change watcher never fired")
	}
	l3.End(qualifying, time.Second)
	l1.End(qualifying, 10*time.Second)

	// OnRateChange is a no-op on nil and IP-disposition leases.
	var nilLease *Lease
	nilLease.OnRateChange(func(float64) { t.Error("nil lease fired") })
	ip := b.Begin(ctx, "other:1", "elsewhere:1", 1<<20)
	ip.OnRateChange(func(float64) { t.Error("ip lease fired") })
	ip.End(1<<20, 10*time.Millisecond)
}
