// Package broker is the session-aware circuit broker of the hybrid
// VC/IP control plane: it watches a transfer manager's job stream,
// groups jobs into sessions with the paper's gap parameter g (the same
// rule internal/sessions applies to usage logs), and brokers OSCARS
// circuits for exactly the sessions long enough to amortize the ~1 min
// VC setup delay — everything else stays on best-effort IP.
//
// Lifecycle per session: the first amortizing job triggers a Reserve
// sized from the pair's recently observed throughput; while the session
// stays hot, later jobs extend the hold with Modify; when the session
// has been idle for g, the circuit is cancelled. Admission rejects and
// daemon outages degrade the session to IP without failing any
// transfer, and every decision is counted on the telemetry hub.
//
// The broker never blocks a transfer on the control plane for more
// than Config.DecisionTimeout: a dead daemon costs one bounded RPC,
// after which the session is pinned to IP and the next session retries
// through the client's auto-reconnect.
package broker

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gftpvc/internal/core"
	"gftpvc/internal/telemetry"
	"gftpvc/internal/vc"
)

// Service is the transport service a job was dispatched onto.
type Service string

const (
	// ServiceVC: the job ran inside a reserved rate-guaranteed circuit.
	ServiceVC Service = "vc"
	// ServiceIP: the job ran over best-effort IP routing.
	ServiceIP Service = "ip"
)

// Disposition records how one job was dispatched; the transfer manager
// copies it into the job's Result so operators can see VC vs IP per
// transfer.
type Disposition struct {
	// Service is the dispatch verdict for this job.
	Service Service
	// CircuitID names the reserved circuit when Service is ServiceVC.
	CircuitID int64
	// SetupWait is the control-plane time this job spent waiting on
	// reservation RPCs (zero when the session already held a circuit).
	SetupWait time.Duration
	// RateBps is the circuit's reserved rate in bits per second when
	// Service is ServiceVC (zero otherwise). The enforcement layer
	// (xferman's pacing) shapes the job's data plane to it, so the
	// reservation is a wire-level fact rather than an advisory booking.
	RateBps float64
	// Fallback explains an IP verdict that wanted a circuit: an
	// admission reject, a dead daemon, or a mid-session circuit loss.
	// Empty when the session was simply too short to amortize setup.
	Fallback string
}

// RouteMapper resolves transfer endpoints (host:port dial addresses)
// to the reservation topology's node names. Returning ok=false keeps
// the pair on IP service.
type RouteMapper func(srcAddr, dstAddr string) (srcNode, dstNode string, ok bool)

// StaticRoute maps every endpoint pair onto one fixed topology route —
// the paper's deployment shape, where a broker fronts one DTN pair.
func StaticRoute(srcNode, dstNode string) RouteMapper {
	return func(_, _ string) (string, string, bool) {
		return srcNode, dstNode, true
	}
}

// Config parameterizes the broker.
type Config struct {
	// Gap is the paper's g parameter: a session closes (and its circuit
	// is cancelled) once no job has been active for this long.
	// Required.
	Gap time.Duration
	// SetupDelay is the assumed VC provisioning latency the session
	// must amortize (default 1 minute, the deployed OSCARS figure).
	SetupDelay time.Duration
	// OverheadFactor is how many times the setup delay a session's
	// predicted duration must reach before a circuit pays off (default
	// 10, the paper's "one-tenth or less" rule).
	OverheadFactor float64
	// ReferenceThroughputBps seeds the throughput estimate for a pair
	// with no observed transfers yet (default 800 Mbps, a Q3-like
	// reference rate). Observed throughput replaces it as jobs finish.
	ReferenceThroughputBps float64
	// MinRateBps / MaxRateBps clamp the requested circuit rate (default
	// 100 Mbps floor, no ceiling).
	MinRateBps float64
	MaxRateBps float64
	// HoldSlack extends each circuit hold beyond the predicted need, so
	// prediction error does not expire the booking mid-session (default
	// 30s; the hold also always covers one Gap).
	HoldSlack time.Duration
	// DecisionTimeout bounds every control-plane RPC a job dispatch can
	// wait on (default 3s). A caller context tighter than this wins.
	DecisionTimeout time.Duration
	// Route maps endpoint addresses to topology nodes; nil keeps every
	// job on IP service.
	Route RouteMapper
	// Telemetry, when set, counts decisions (reserved, fallback,
	// extended, cancelled, jobs by service) and records the
	// amortization-ratio histogram.
	Telemetry *telemetry.Hub
}

func (c *Config) applyDefaults() error {
	if c.Gap <= 0 {
		return errors.New("broker: Gap must be positive")
	}
	if c.SetupDelay == 0 {
		c.SetupDelay = time.Minute
	}
	if c.OverheadFactor == 0 {
		c.OverheadFactor = 10
	}
	if c.ReferenceThroughputBps == 0 {
		c.ReferenceThroughputBps = 800e6
	}
	if c.MinRateBps == 0 {
		c.MinRateBps = 100e6
	}
	if c.HoldSlack == 0 {
		c.HoldSlack = 30 * time.Second
	}
	if c.DecisionTimeout == 0 {
		c.DecisionTimeout = 3 * time.Second
	}
	if c.SetupDelay < 0 || c.OverheadFactor < 0 || c.ReferenceThroughputBps < 0 ||
		c.MinRateBps < 0 || c.MaxRateBps < 0 || c.HoldSlack < 0 || c.DecisionTimeout < 0 {
		return errors.New("broker: negative config value")
	}
	return nil
}

// AmortizationBuckets are the histogram bounds for session duration
// over setup delay: ratios at or above the overhead factor mean the
// circuit decision paid off by the paper's rule.
var AmortizationBuckets = []float64{0.5, 1, 2, 5, 10, 20, 50, 100}

// pairKey identifies one session stream.
type pairKey struct{ src, dst string }

// session is one live run of back-to-back jobs between a pair.
type session struct {
	mu sync.Mutex

	key              pairKey
	srcNode, dstNode string

	active  int       // jobs currently executing
	horizon time.Time // latest job end seen (the gap measures from here)
	started time.Time
	bytes   int64 // bytes moved so far

	circuit  *circuitState
	fallback string // sticky IP reason after a failed circuit attempt
	closed   bool

	// watchers are the in-flight leases that asked to hear about
	// circuit re-rates (Lease.OnRateChange): when a later job's
	// extension re-books the circuit at a new rate, every watcher's
	// live pacing bucket is re-filled instead of the new rate applying
	// only to the next attempt.
	watchers map[*Lease]func(rateBps float64)

	timer *time.Timer
}

// circuitState is the session's held reservation.
type circuitState struct {
	id        int64
	rateBps   float64
	endSvc    float64 // service-clock end of the current booking
	setupWait time.Duration
}

// Broker watches a job stream and brokers circuits per session.
type Broker struct {
	client *vc.Client
	cfg    Config
	met    metrics

	mu       sync.Mutex
	sessions map[pairKey]*session
	rates    map[pairKey]float64 // observed EWMA throughput, survives sessions
	closed   bool

	clockMu     sync.Mutex
	clockSynced time.Time // local time of last service-clock sync
	clockAt     float64   // service seconds at that sync
}

type metrics struct {
	reserved  *telemetry.Counter
	extended  *telemetry.Counter
	cancelled *telemetry.Counter
	amort     *telemetry.Histogram
}

// New builds a broker over a dialed reservation client. The broker does
// not own the client; close the broker first, then the client.
func New(client *vc.Client, cfg Config) (*Broker, error) {
	if client == nil {
		return nil, errors.New("broker: nil client")
	}
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	b := &Broker{
		client:   client,
		cfg:      cfg,
		sessions: make(map[pairKey]*session),
		rates:    make(map[pairKey]float64),
	}
	if hub := cfg.Telemetry; hub != nil {
		b.met = metrics{
			reserved: hub.Counter("vc_broker_reserved_total",
				"Sessions dispatched onto a reserved circuit."),
			extended: hub.Counter("vc_broker_extended_total",
				"Circuit holds extended for sessions that stayed hot."),
			cancelled: hub.Counter("vc_broker_cancelled_total",
				"Circuits cancelled at session close."),
			amort: hub.Histogram("vc_broker_amortization_ratio",
				"Session wall-clock duration over VC setup delay, per circuit session.",
				AmortizationBuckets),
		}
	}
	return b, nil
}

// countFallback counts one degraded-to-IP decision by reason.
func (b *Broker) countFallback(reason string) {
	if b.cfg.Telemetry == nil {
		return
	}
	b.cfg.Telemetry.Counter("vc_broker_fallback_total",
		"Sessions that wanted a circuit but fell back to best-effort IP, by reason.",
		telemetry.L("reason", reason)).Inc()
}

// countJob counts one dispatched job by service.
func (b *Broker) countJob(svc Service) {
	if b.cfg.Telemetry == nil {
		return
	}
	b.cfg.Telemetry.Counter("vc_broker_jobs_total",
		"Jobs dispatched, by transport service.",
		telemetry.L("service", string(svc))).Inc()
}

// serviceNow returns the daemon's service clock, re-syncing over the
// wire at most every few minutes.
func (b *Broker) serviceNow(ctx context.Context) (float64, error) {
	b.clockMu.Lock()
	defer b.clockMu.Unlock()
	if !b.clockSynced.IsZero() && time.Since(b.clockSynced) < 5*time.Minute {
		return b.clockAt + time.Since(b.clockSynced).Seconds(), nil
	}
	now, err := b.client.Now(ctx)
	if err != nil {
		return 0, err
	}
	b.clockSynced = time.Now()
	b.clockAt = now
	return now, nil
}

// rateFor returns the circuit sizing rate for a pair: the observed
// EWMA throughput when transfers have completed, else the configured
// reference, clamped to [MinRateBps, MaxRateBps].
func (b *Broker) rateFor(key pairKey) float64 {
	b.mu.Lock()
	rate := b.rates[key]
	b.mu.Unlock()
	if rate <= 0 {
		rate = b.cfg.ReferenceThroughputBps
	}
	if rate < b.cfg.MinRateBps {
		rate = b.cfg.MinRateBps
	}
	if b.cfg.MaxRateBps > 0 && rate > b.cfg.MaxRateBps {
		rate = b.cfg.MaxRateBps
	}
	return rate
}

// observe folds one finished job's throughput into the pair's EWMA.
func (b *Broker) observe(key pairKey, bytes int64, d time.Duration) {
	if bytes <= 0 || d <= 0 {
		return
	}
	inst := float64(bytes) * 8 / d.Seconds()
	b.mu.Lock()
	if old := b.rates[key]; old > 0 {
		b.rates[key] = 0.7*old + 0.3*inst
	} else {
		b.rates[key] = inst
	}
	b.mu.Unlock()
}

// lookup returns the live session for a pair, creating (or replacing a
// gap-expired idle) one as needed.
func (b *Broker) lookup(key pairKey, srcNode, dstNode string) *session {
	for {
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return nil
		}
		s := b.sessions[key]
		if s == nil {
			s = &session{key: key, srcNode: srcNode, dstNode: dstNode, started: time.Now()}
			b.sessions[key] = s
			b.mu.Unlock()
			return s
		}
		b.mu.Unlock()
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			b.evict(key, s)
			continue
		}
		// The gap expired but the close timer has not fired yet: close
		// inline and open a fresh session.
		if s.active == 0 && !s.horizon.IsZero() && time.Since(s.horizon) > b.cfg.Gap {
			b.closeSessionLocked(s)
			s.mu.Unlock()
			b.evict(key, s)
			continue
		}
		s.mu.Unlock()
		return s
	}
}

// evict removes a specific session pointer from the map (a newer
// session under the same key is left alone).
func (b *Broker) evict(key pairKey, s *session) {
	b.mu.Lock()
	if b.sessions[key] == s {
		delete(b.sessions, key)
	}
	b.mu.Unlock()
}

// Lease tracks one job's participation in a session. A nil lease (no
// broker, or broker closed) is inert: Disposition reports IP service
// and End is a no-op, so callers use it unconditionally.
type Lease struct {
	b    *Broker
	s    *session
	disp Disposition
	once sync.Once
}

// Disposition reports how the job was dispatched.
func (l *Lease) Disposition() Disposition {
	if l == nil {
		return Disposition{Service: ServiceIP}
	}
	return l.disp
}

// OnRateChange registers fn to be called (each time on a fresh
// goroutine) when a later extension re-books this lease's circuit at a
// different rate — the live half of the Modify path, letting an
// in-flight job re-fill its pacing bucket instead of finishing at the
// stale rate. No-op on nil or IP-disposition leases; the registration
// is dropped when the lease Ends.
func (l *Lease) OnRateChange(fn func(rateBps float64)) {
	if l == nil || fn == nil || l.disp.Service != ServiceVC {
		return
	}
	s := l.s
	s.mu.Lock()
	if s.watchers == nil {
		s.watchers = make(map[*Lease]func(float64))
	}
	s.watchers[l] = fn
	s.mu.Unlock()
}

// End marks the job finished, feeding the observed byte count and
// duration into the pair's throughput estimate and the session's gap
// clock. Safe to call at most once; extra calls are ignored.
func (l *Lease) End(bytes int64, d time.Duration) {
	if l == nil {
		return
	}
	l.once.Do(func() {
		l.b.observe(l.s.key, bytes, d)
		s := l.s
		s.mu.Lock()
		delete(s.watchers, l)
		s.active--
		s.bytes += bytes
		now := time.Now()
		if now.After(s.horizon) {
			s.horizon = now
		}
		if s.active == 0 && !s.closed {
			l.b.armCloseTimer(s)
		}
		s.mu.Unlock()
	})
}

// Begin dispatches one job: it joins (or opens) the pair's session,
// takes the circuit decision, and returns the lease the caller must
// End when the job finishes. Begin never fails the job — on any
// control-plane problem the disposition degrades to best-effort IP.
// ctx bounds the decision's reservation RPCs (together with
// Config.DecisionTimeout).
func (b *Broker) Begin(ctx context.Context, srcAddr, dstAddr string, sizeHint int64) *Lease {
	if b == nil {
		return nil
	}
	key := pairKey{srcAddr, dstAddr}
	var srcNode, dstNode string
	routed := false
	if b.cfg.Route != nil {
		srcNode, dstNode, routed = b.cfg.Route(srcAddr, dstAddr)
	}
	s := b.lookup(key, srcNode, dstNode)
	if s == nil { // broker closed
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	disp := Disposition{Service: ServiceIP}
	switch {
	case !routed:
		// No topology route: plain best-effort, no fallback story.
	case s.circuit != nil:
		b.extendLocked(ctx, s, sizeHint)
		if s.circuit != nil {
			disp = Disposition{
				Service:   ServiceVC,
				CircuitID: s.circuit.id,
				RateBps:   s.circuit.rateBps,
			}
		} else {
			disp.Fallback = s.fallback
		}
	case s.fallback != "":
		disp.Fallback = s.fallback
	default:
		b.decideLocked(ctx, s, sizeHint)
		if s.circuit != nil {
			disp = Disposition{
				Service:   ServiceVC,
				CircuitID: s.circuit.id,
				SetupWait: s.circuit.setupWait,
				RateBps:   s.circuit.rateBps,
			}
		} else {
			disp.Fallback = s.fallback
		}
	}
	s.active++
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	b.countJob(disp.Service)
	b.recordDecision(ctx, disp, routed)
	return &Lease{b: b, s: s, disp: disp}
}

// recordDecision lands the dispatch verdict in the flight recorder,
// tagged with the transfer trace when the job context carries one.
func (b *Broker) recordDecision(ctx context.Context, disp Disposition, routed bool) {
	hub := b.cfg.Telemetry
	if hub == nil {
		return
	}
	trace := ""
	if ctx != nil {
		trace = telemetry.TraceIDFrom(ctx)
	}
	switch {
	case disp.Service == ServiceVC:
		hub.Event(trace, "broker_reserved",
			fmt.Sprintf("circuit=%d setup_wait=%s", disp.CircuitID, disp.SetupWait))
	case disp.Fallback != "":
		hub.Event(trace, "broker_fallback", disp.Fallback)
	case !routed:
		hub.Event(trace, "broker_ip", "no topology route")
	default:
		hub.Event(trace, "broker_ip", "session below amortization threshold")
	}
}

// decisionCtx derives the bounded control-plane context.
func (b *Broker) decisionCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithTimeout(ctx, b.cfg.DecisionTimeout)
}

// predictedSeconds estimates how long a transfer of pendingBytes still
// needs the network for at the given sizing rate.
func predictedSeconds(rateBps float64, pendingBytes int64) float64 {
	return float64(pendingBytes) * 8 / rateBps
}

// decideLocked takes the reserve-or-not decision for a circuit-less
// session. Called with s.mu held.
func (b *Broker) decideLocked(ctx context.Context, s *session, sizeHint int64) {
	// One rate snapshot drives the whole decision — the amortization
	// threshold, the hold prediction, and the reserved rate. rateFor
	// clamps the EWMA (or, on a pair's first transfer, the configured
	// reference) to [MinRateBps, MaxRateBps] BEFORE any of those uses,
	// and reading it once keeps the three consistent when a concurrent
	// observe() moves the EWMA mid-decision: a circuit must never be
	// sized at one rate but held for a duration predicted at another.
	rate := b.rateFor(s.key)
	// The amortization rule, applied to what the session looks like so
	// far: bytes already moved plus the hint for the job at hand.
	predicted := s.bytes + sizeHint
	threshold := core.FeasibilityConfig{
		SetupDelay:             b.cfg.SetupDelay,
		OverheadFactor:         b.cfg.OverheadFactor,
		ReferenceThroughputBps: rate,
	}.MinSuitableSessionBytes()
	if float64(predicted) < threshold {
		// Too short to amortize: stay IP, but keep the door open — the
		// session re-qualifies as observed bytes accumulate.
		return
	}
	cctx, cancel := b.decisionCtx(ctx)
	defer cancel()
	svcNow, err := b.serviceNow(cctx)
	if err != nil {
		s.fallback = "reservation service unavailable: " + err.Error()
		b.countFallback("unavailable")
		return
	}
	hold := predictedSeconds(rate, predicted-s.bytes) +
		b.cfg.HoldSlack.Seconds() + b.cfg.Gap.Seconds() + b.cfg.SetupDelay.Seconds()
	start := svcNow + 1
	began := time.Now()
	res, err := b.client.Reserve(cctx, vc.ReserveRequest{
		Src: s.srcNode, Dst: s.dstNode,
		RateBps: rate, Start: start, End: start + hold,
	})
	wait := time.Since(began)
	switch {
	case err == nil:
		s.circuit = &circuitState{
			id: res.ID, rateBps: rate, endSvc: start + hold, setupWait: wait,
		}
		b.met.reserved.Inc()
	case errors.Is(err, vc.ErrNoPath), errors.Is(err, vc.ErrRejected):
		s.fallback = "admission rejected: " + err.Error()
		b.countFallback("rejected")
	default:
		s.fallback = "reservation service unavailable: " + err.Error()
		b.countFallback("unavailable")
	}
}

// extendLocked keeps a hot session's circuit booked past the predicted
// end of the job at hand, re-booking via Modify when the current hold
// is too short. A lost circuit (daemon restart, expired booking)
// degrades the session to IP. Called with s.mu held.
func (b *Broker) extendLocked(ctx context.Context, s *session, sizeHint int64) {
	cctx, cancel := b.decisionCtx(ctx)
	defer cancel()
	svcNow, err := b.serviceNow(cctx)
	if err != nil {
		b.dropCircuitLocked(s, "reservation service unavailable: "+err.Error())
		return
	}
	// As in decideLocked: one rate snapshot sizes the hold prediction
	// and the re-booked rate together.
	rate := b.rateFor(s.key)
	need := svcNow + predictedSeconds(rate, sizeHint) + b.cfg.HoldSlack.Seconds()
	if need <= s.circuit.endSvc {
		return // current hold already covers this job
	}
	end := need + b.cfg.Gap.Seconds()
	_, err = b.client.Modify(cctx, vc.ModifyRequest{
		ID: s.circuit.id, RateBps: rate, Start: svcNow + 1, End: end,
	})
	switch {
	case err == nil:
		old := s.circuit.rateBps
		s.circuit.endSvc = end
		s.circuit.rateBps = rate
		b.met.extended.Inc()
		if rate != old {
			// Re-rate in-flight jobs. Fired on fresh goroutines: s.mu is
			// held here and a watcher may call back into the lease.
			for _, fn := range s.watchers {
				go fn(rate)
			}
		}
	case errors.Is(err, vc.ErrRejected):
		// Extension refused but the old booking survives server-side:
		// ride the circuit until it expires.
	case errors.Is(err, vc.ErrUnknownCircuit):
		b.dropCircuitLocked(s, "circuit lost: "+err.Error())
	default:
		b.dropCircuitLocked(s, "reservation service unavailable: "+err.Error())
	}
}

// dropCircuitLocked degrades a VC session to IP for the rest of its
// life. Called with s.mu held.
func (b *Broker) dropCircuitLocked(s *session, reason string) {
	s.circuit = nil
	s.fallback = reason
	b.countFallback("lost")
}

// armCloseTimer schedules the gap-expiry close for an idle session.
// Called with s.mu held.
func (b *Broker) armCloseTimer(s *session) {
	if s.timer != nil {
		s.timer.Stop()
	}
	s.timer = time.AfterFunc(b.cfg.Gap+50*time.Millisecond, func() {
		s.mu.Lock()
		if s.closed || s.active > 0 {
			s.mu.Unlock()
			return
		}
		if remaining := b.cfg.Gap - time.Since(s.horizon); remaining > 0 {
			// A job ended after this timer was armed; try again later.
			b.armCloseTimer(s)
			s.mu.Unlock()
			return
		}
		b.closeSessionLocked(s)
		s.mu.Unlock()
		b.evict(s.key, s)
	})
}

// closeSessionLocked cancels the session's circuit (if any) and records
// the amortization outcome. Called with s.mu held.
func (b *Broker) closeSessionLocked(s *session) {
	s.closed = true
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	if s.circuit == nil {
		return
	}
	id := s.circuit.id
	s.circuit = nil
	ctx, cancel := context.WithTimeout(context.Background(), b.cfg.DecisionTimeout)
	defer cancel()
	// Best effort: a dead daemon or restarted ledger no longer holds
	// the circuit anyway.
	if err := b.client.Cancel(ctx, id); err == nil {
		b.met.cancelled.Inc()
	}
	wall := s.horizon.Sub(s.started)
	if wall < 0 {
		wall = 0
	}
	b.met.amort.Observe(wall.Seconds() / b.cfg.SetupDelay.Seconds())
}

// Sessions reports the number of live sessions (for tests and
// introspection).
func (b *Broker) Sessions() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.sessions)
}

// Close cancels every held circuit and stops the broker. Leases issued
// earlier become inert; further Begin calls return nil leases.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	live := make([]*session, 0, len(b.sessions))
	for _, s := range b.sessions {
		live = append(live, s)
	}
	b.sessions = nil
	b.mu.Unlock()
	for _, s := range live {
		s.mu.Lock()
		if !s.closed {
			b.closeSessionLocked(s)
		}
		s.mu.Unlock()
	}
}

// String summarizes the broker configuration (for logs).
func (b *Broker) String() string {
	return fmt.Sprintf("broker(gap=%s setup=%s factor=%.0f)",
		b.cfg.Gap, b.cfg.SetupDelay, b.cfg.OverheadFactor)
}
