// Package vc is the programmatic client for the oscarsd virtual-circuit
// reservation service: a typed, context-aware replacement for
// hand-rolling the line-JSON wire protocol. It is the control-plane
// half of the paper's hybrid architecture — the piece a transfer
// manager calls to ask the IDC for a rate-guaranteed circuit before
// (or while) a GridFTP session runs.
//
// Dial connects, negotiates a protocol version, and returns a Client
// whose methods (Reserve, Modify, Cancel, Available, Topology) take
// request structs and return typed results. Connections are pooled and
// re-established transparently, so one Client serves a long-lived
// daemon's worth of calls; a request that fails on a stale pooled
// connection is retried once on a fresh dial.
//
// Failures wrap sentinel errors (ErrRejected, ErrNoPath,
// ErrUnavailable, ErrUnknownCircuit) so policy code — like the session
// broker in vc/broker — can distinguish "the network said no" from
// "the daemon is gone" without parsing message strings.
package vc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gftpvc/internal/oscarsd"
	"gftpvc/internal/telemetry"
)

// Defaults applied by Dial; see the corresponding options.
const (
	DefaultDialTimeout = 5 * time.Second
	DefaultCallTimeout = 10 * time.Second
	defaultPoolSize    = 2
)

// Option configures a Client at Dial time.
type Option func(*Client)

// WithDialTimeout bounds each TCP connection attempt (default
// DefaultDialTimeout). A context deadline tighter than this wins.
func WithDialTimeout(d time.Duration) Option {
	return func(c *Client) { c.dialTimeout = d }
}

// WithCallTimeout bounds each round trip when the caller's context has
// no deadline of its own (default DefaultCallTimeout). A context
// deadline always takes precedence.
func WithCallTimeout(d time.Duration) Option {
	return func(c *Client) { c.callTimeout = d }
}

// WithPoolSize caps the idle connections kept between calls (default
// 2). Concurrent calls beyond the cap dial extra connections and drop
// them on return.
func WithPoolSize(n int) Option {
	return func(c *Client) { c.poolSize = n }
}

// WithTelemetry publishes per-call metrics on hub:
// vc_client_calls_total{op,result} with result ok | rejected |
// unavailable.
func WithTelemetry(hub *telemetry.Hub) Option {
	return func(c *Client) { c.hub = hub }
}

// Client is a pooled, auto-reconnecting connection to one oscarsd
// daemon. It is safe for concurrent use; each call runs on its own
// pooled connection.
type Client struct {
	addr        string
	dialTimeout time.Duration
	callTimeout time.Duration
	poolSize    int
	hub         *telemetry.Hub

	mu     sync.Mutex
	idle   []*wire
	ver    int
	closed bool
}

// wire is one pooled protocol connection.
type wire struct {
	conn   net.Conn
	r      *bufio.Reader
	reused bool
}

// Dial connects to an oscarsd daemon, negotiates the protocol version
// (gracefully falling back to the code-less version 0 with seed-era
// daemons), and returns a ready Client. The context bounds only the
// initial connect + handshake; later calls carry their own contexts.
func Dial(ctx context.Context, addr string, opts ...Option) (*Client, error) {
	c := &Client{
		addr:        addr,
		dialTimeout: DefaultDialTimeout,
		callTimeout: DefaultCallTimeout,
		poolSize:    defaultPoolSize,
	}
	for _, o := range opts {
		o(c)
	}
	w, err := c.connect(ctx)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(ctx, w, oscarsd.Request{
		Op: oscarsd.OpHello, Ver: oscarsd.ProtocolVersion,
	})
	if err != nil {
		w.conn.Close()
		return nil, err
	}
	if resp.OK {
		c.ver = resp.Ver
	}
	// A !OK reply (unknown op "hello") marks a version-0 peer; the
	// connection is still good — the seed server answers each line
	// independently.
	c.put(w)
	return c, nil
}

// Addr returns the daemon address this client dials.
func (c *Client) Addr() string { return c.addr }

// ProtocolVersion returns the negotiated protocol revision: 0 for a
// seed-era daemon, oscarsd.ProtocolVersion for a current one.
func (c *Client) ProtocolVersion() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ver
}

// Close releases all pooled connections. In-flight calls fail; further
// calls return ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for _, w := range c.idle {
		w.conn.Close()
	}
	c.idle = nil
	return nil
}

// connect dials one fresh protocol connection.
func (c *Client) connect(ctx context.Context) (*wire, error) {
	d := net.Dialer{Timeout: c.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return &wire{conn: conn, r: bufio.NewReaderSize(conn, 1<<12)}, nil
}

// get hands out a pooled connection or dials a fresh one; fresh reports
// which, so call can decide whether a transport failure is retryable.
func (c *Client) get(ctx context.Context) (w *wire, fresh bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		w = c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return w, false, nil
	}
	c.mu.Unlock()
	w, err = c.connect(ctx)
	return w, true, err
}

// put returns a healthy connection to the pool (or closes it when the
// pool is full or the client closed).
func (c *Client) put(w *wire) {
	w.reused = true
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.poolSize {
		c.idle = append(c.idle, w)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	w.conn.Close()
}

// roundTrip writes one request line and reads one response line on w,
// bounded by the context deadline (or the call timeout) and aborted
// early on context cancellation.
func (c *Client) roundTrip(ctx context.Context, w *wire, req oscarsd.Request) (oscarsd.Response, error) {
	deadline := time.Now().Add(c.callTimeout)
	ctxBound := false // the context deadline, not the call timeout, governs
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
		ctxBound = true
	}
	w.conn.SetDeadline(deadline)
	// Cancellation without a deadline must still unblock the I/O:
	// close the connection when the context fires mid-call.
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			w.conn.Close()
		case <-stop:
		}
	}()
	defer close(stop)

	var resp oscarsd.Response
	data, err := json.Marshal(req)
	if err != nil {
		return resp, fmt.Errorf("vc: encode request: %w", err)
	}
	if _, err := w.conn.Write(append(data, '\n')); err != nil {
		return resp, c.transportErr(ctx, ctxBound, err)
	}
	line, err := w.r.ReadBytes('\n')
	if err != nil {
		return resp, c.transportErr(ctx, ctxBound, err)
	}
	if err := json.Unmarshal(line, &resp); err != nil {
		return resp, fmt.Errorf("%w: malformed response: %v", ErrUnavailable, err)
	}
	w.conn.SetDeadline(time.Time{})
	return resp, nil
}

// transportErr classifies an I/O failure: the caller's cancellation or
// deadline wins, anything else means the service is unreachable. When
// the context deadline governed the connection deadline, a timeout is
// the context expiring — wait for it to fire (it is at most a clock
// skew away) rather than racing it.
func (c *Client) transportErr(ctx context.Context, ctxBound bool, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	var ne net.Error
	if ctxBound && errors.As(err, &ne) && ne.Timeout() {
		<-ctx.Done()
		return ctx.Err()
	}
	return fmt.Errorf("%w: %v", ErrUnavailable, err)
}

// call executes one operation with pooling and the single stale-
// connection retry: a transport failure on a previously used connection
// (typically a daemon restart having closed it) is retried once on a
// fresh dial; failures on fresh connections are returned as-is.
func (c *Client) call(ctx context.Context, req oscarsd.Request) (oscarsd.Response, error) {
	// The transfer trace rides the line protocol to the daemon, so one
	// trace ID joins the reservation decision to the data movement it
	// governed. Old daemons ignore the extra field.
	if req.Trace == "" {
		req.Trace = telemetry.TraceIDFrom(ctx)
	}
	resp, err := c.callOnce(ctx, req)
	c.count(req.Op, err)
	if req.Trace != "" {
		detail := req.Op
		if err != nil {
			detail += ": " + err.Error()
		}
		c.hub.Event(req.Trace, "vc_call", detail)
	}
	return resp, err
}

func (c *Client) callOnce(ctx context.Context, req oscarsd.Request) (oscarsd.Response, error) {
	for attempt := 0; ; attempt++ {
		w, fresh, err := c.get(ctx)
		if err != nil {
			return oscarsd.Response{}, err
		}
		resp, err := c.roundTrip(ctx, w, req)
		if err != nil {
			w.conn.Close()
			if !fresh && attempt == 0 && ctx.Err() == nil {
				continue
			}
			return oscarsd.Response{}, err
		}
		c.put(w)
		if !resp.OK {
			return resp, &ServerError{Op: req.Op, Code: resp.Code, Msg: resp.Error}
		}
		return resp, nil
	}
}

// count publishes the per-call metric (no-op without a hub).
func (c *Client) count(op string, err error) {
	if c.hub == nil {
		return
	}
	result := "ok"
	var se *ServerError
	switch {
	case err == nil:
	case errors.As(err, &se):
		result = "rejected"
	default:
		result = "unavailable"
	}
	c.hub.Counter("vc_client_calls_total",
		"Reservation-protocol calls, by operation and result.",
		telemetry.L("op", op), telemetry.L("result", result)).Inc()
}

// Reservation is an admitted (or re-booked) circuit.
type Reservation struct {
	// ID names the circuit for Modify and Cancel.
	ID int64
	// Path lists the link IDs the circuit traverses.
	Path []string
	// Src, Dst echo the requested endpoints.
	Src, Dst string
}

// ReserveRequest asks for a rate-guaranteed circuit between two
// topology nodes over a service-clock window. Times are seconds on the
// daemon's clock (see Now); Start must not be in the past.
type ReserveRequest struct {
	Src, Dst string
	RateBps  float64
	Start    float64
	End      float64
}

// Reserve books a circuit. Admission failures wrap ErrNoPath (no
// feasible route at that bandwidth) or ErrRejected.
func (c *Client) Reserve(ctx context.Context, req ReserveRequest) (*Reservation, error) {
	resp, err := c.call(ctx, oscarsd.Request{
		Op: oscarsd.OpReserve, Src: req.Src, Dst: req.Dst,
		RateBps: req.RateBps, Start: req.Start, End: req.End,
	})
	if err != nil {
		return nil, err
	}
	return &Reservation{ID: resp.ID, Path: resp.Path, Src: resp.Src, Dst: resp.Dst}, nil
}

// ModifyRequest re-books a held circuit with a new rate and/or window
// (the OSCARS modifyReservation operation).
type ModifyRequest struct {
	ID      int64
	RateBps float64
	Start   float64
	End     float64
}

// Modify atomically re-books a reservation; on rejection the old
// booking survives server-side and the error wraps ErrRejected (or
// ErrUnknownCircuit when the daemon no longer holds the circuit).
func (c *Client) Modify(ctx context.Context, req ModifyRequest) (*Reservation, error) {
	resp, err := c.call(ctx, oscarsd.Request{
		Op: oscarsd.OpModify, ID: req.ID,
		RateBps: req.RateBps, Start: req.Start, End: req.End,
	})
	if err != nil {
		return nil, err
	}
	return &Reservation{ID: resp.ID, Path: resp.Path}, nil
}

// Cancel releases a held circuit. Cancelling a circuit the daemon does
// not hold wraps ErrUnknownCircuit.
func (c *Client) Cancel(ctx context.Context, id int64) error {
	_, err := c.call(ctx, oscarsd.Request{Op: oscarsd.OpCancel, ID: id})
	return err
}

// Available probes admission without booking: it returns the path a
// Reserve with the same parameters would get, or an error wrapping
// ErrNoPath/ErrRejected.
func (c *Client) Available(ctx context.Context, req ReserveRequest) ([]string, error) {
	resp, err := c.call(ctx, oscarsd.Request{
		Op: oscarsd.OpAvailable, Src: req.Src, Dst: req.Dst,
		RateBps: req.RateBps, Start: req.Start, End: req.End,
	})
	if err != nil {
		return nil, err
	}
	return resp.Path, nil
}

// Topology describes the daemon's network and clock.
type Topology struct {
	// Nodes lists every topology node reservations may name.
	Nodes []string
	// Now is the daemon's service clock (seconds since its epoch) when
	// the reply was built.
	Now float64
}

// Topology fetches the daemon's node set and service clock.
func (c *Client) Topology(ctx context.Context) (*Topology, error) {
	resp, err := c.call(ctx, oscarsd.Request{Op: oscarsd.OpTopology})
	if err != nil {
		return nil, err
	}
	return &Topology{Nodes: resp.Nodes, Now: resp.Now}, nil
}

// Now returns the daemon's service clock in seconds. Reservation
// windows are expressed on this clock, so schedulers sample it to
// anchor Start/End. Protocol-1 peers answer via the cheap hello op;
// version-0 peers fall back to Topology.
func (c *Client) Now(ctx context.Context) (float64, error) {
	c.mu.Lock()
	ver := c.ver
	c.mu.Unlock()
	if ver >= 1 {
		resp, err := c.call(ctx, oscarsd.Request{Op: oscarsd.OpHello, Ver: ver})
		if err != nil {
			return 0, err
		}
		return resp.Now, nil
	}
	t, err := c.Topology(ctx)
	if err != nil {
		return 0, err
	}
	return t.Now, nil
}
