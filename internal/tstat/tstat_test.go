package tstat

import (
	"math/rand"
	"strings"
	"testing"

	"gftpvc/internal/tcpmodel"
)

func traceFor(t *testing.T, lossRate float64, streams int) []tcpmodel.ConnTrace {
	t.Helper()
	cfg := tcpmodel.ESnetPath(0.08)
	cfg.LossRate = lossRate
	rng := rand.New(rand.NewSource(11))
	_, traces, err := cfg.TransferStochastic(rng, 2e9, streams)
	if err != nil {
		t.Fatal(err)
	}
	return traces
}

func TestAnalyzeEmpty(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Error("no traces should fail")
	}
}

func TestLossFreeRegimeReportsZeroRetransmits(t *testing.T) {
	// The paper's hypothesis test: on a loss-free R&E path, tstat should
	// report no per-connection losses.
	rep, err := Analyze(traceFor(t, 0, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Connections) != 8 {
		t.Fatalf("connections = %d, want 8", len(rep.Connections))
	}
	if !rep.LossFree() {
		t.Error("loss-free regime reported retransmissions")
	}
	if rep.TotalLossRate() != 0 {
		t.Errorf("total loss rate = %v, want 0", rep.TotalLossRate())
	}
	for _, c := range rep.Connections {
		if c.PacketsSent == 0 {
			t.Error("connection sent no packets")
		}
		if c.LossEpisodes != 0 {
			t.Error("loss episodes in loss-free regime")
		}
	}
}

func TestLossyRegimeDetected(t *testing.T) {
	rep, err := Analyze(traceFor(t, 1e-4, 8))
	if err != nil {
		t.Fatal(err)
	}
	if rep.LossFree() {
		t.Fatal("lossy regime reported as loss-free")
	}
	got := rep.TotalLossRate()
	if got < 1e-5 || got > 1e-3 {
		t.Errorf("total loss rate = %v, want near 1e-4", got)
	}
	episodes := 0
	for _, c := range rep.Connections {
		episodes += c.LossEpisodes
	}
	if episodes == 0 {
		t.Error("no loss episodes recorded")
	}
}

func TestRenderContainsRows(t *testing.T) {
	rep, err := Analyze(traceFor(t, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Render()
	for _, want := range []string{"conn", "retx", "loss-free: true"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
}

func TestStochasticMatchesDeterministicWhenLossFree(t *testing.T) {
	cfg := tcpmodel.ESnetPath(0.08)
	det, err := cfg.Transfer(1e9, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	sto, _, err := cfg.TransferStochastic(rng, 1e9, 8)
	if err != nil {
		t.Fatal(err)
	}
	ratio := sto.ThroughputBps / det.ThroughputBps
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("stochastic/deterministic throughput ratio = %v, want near 1", ratio)
	}
}

func TestStochasticLossLowersThroughput(t *testing.T) {
	cfg := tcpmodel.ESnetPath(0.08)
	cfg.AggregateCapBps = 0 // isolate the TCP dynamics
	rng := rand.New(rand.NewSource(3))
	clean, _, err := cfg.TransferStochastic(rng, 2e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LossRate = 3e-4
	lossy, _, err := cfg.TransferStochastic(rng, 2e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lossy.ThroughputBps >= clean.ThroughputBps {
		t.Errorf("loss should reduce throughput: %v vs %v",
			lossy.ThroughputBps, clean.ThroughputBps)
	}
}

func TestStochasticValidation(t *testing.T) {
	cfg := tcpmodel.ESnetPath(0.08)
	rng := rand.New(rand.NewSource(1))
	if _, _, err := cfg.TransferStochastic(nil, 1e6, 1); err == nil {
		t.Error("nil rng should fail")
	}
	if _, _, err := cfg.TransferStochastic(rng, 0, 1); err == nil {
		t.Error("zero size should fail")
	}
	if _, _, err := cfg.TransferStochastic(rng, 1e6, 0); err == nil {
		t.Error("zero streams should fail")
	}
	bad := cfg
	bad.RTTSec = 0
	if _, _, err := bad.TransferStochastic(rng, 1e6, 1); err == nil {
		t.Error("invalid config should fail")
	}
}
