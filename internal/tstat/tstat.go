// Package tstat reports per-TCP-connection statistics from stochastic
// transfer traces, in the spirit of the tstat tool the paper planned to
// deploy: "We plan to test this hypothesis [that packet losses are rare]
// using tstat, a tool that reports packet loss information on a per-TCP
// connection basis."
//
// Feeding it traces from internal/tcpmodel's stochastic simulator closes
// that loop inside the reproduction: in the loss-free regime every
// connection reports zero retransmissions, which is the observation the
// paper's Figure 3/4 equality predicts.
package tstat

import (
	"errors"
	"fmt"
	"strings"

	"gftpvc/internal/tcpmodel"
)

// ConnectionReport is one connection's tstat-style log row.
type ConnectionReport struct {
	Stream      int
	PacketsSent int
	Retransmits int
	LossRate    float64
	// LossEpisodes counts RTTs in which at least one loss occurred (each
	// costs a window halving).
	LossEpisodes int
	// MaxCwndBytes is the largest congestion window reached.
	MaxCwndBytes float64
	DurationSec  float64
}

// Report aggregates a transfer's connections.
type Report struct {
	Connections []ConnectionReport
}

// Analyze builds a report from per-connection traces.
func Analyze(traces []tcpmodel.ConnTrace) (Report, error) {
	if len(traces) == 0 {
		return Report{}, errors.New("tstat: no traces")
	}
	rep := Report{}
	for _, tr := range traces {
		cr := ConnectionReport{
			Stream:      tr.Stream,
			PacketsSent: tr.PacketsSent,
			Retransmits: tr.Retransmits,
			LossRate:    tr.LossRate(),
		}
		for _, s := range tr.Samples {
			if s.Losses > 0 {
				cr.LossEpisodes++
			}
			if s.CwndBytes > cr.MaxCwndBytes {
				cr.MaxCwndBytes = s.CwndBytes
			}
			cr.DurationSec = s.TimeSec
		}
		rep.Connections = append(rep.Connections, cr)
	}
	return rep, nil
}

// TotalLossRate returns retransmitted packets over all packets sent.
func (r Report) TotalLossRate() float64 {
	sent, retx := 0, 0
	for _, c := range r.Connections {
		sent += c.PacketsSent
		retx += c.Retransmits
	}
	if sent == 0 {
		return 0
	}
	return float64(retx) / float64(sent)
}

// LossFree reports whether no connection saw a single retransmission.
func (r Report) LossFree() bool {
	for _, c := range r.Connections {
		if c.Retransmits > 0 {
			return false
		}
	}
	return true
}

// Render prints one tstat-like row per connection.
func (r Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %10s %12s\n",
		"conn", "pkts", "retx", "loss", "episodes", "max-cwnd")
	for _, c := range r.Connections {
		fmt.Fprintf(&b, "%-8d %10d %10d %9.4f%% %10d %12.0f\n",
			c.Stream, c.PacketsSent, c.Retransmits, 100*c.LossRate,
			c.LossEpisodes, c.MaxCwndBytes)
	}
	fmt.Fprintf(&b, "total loss rate: %.5f%%, loss-free: %v\n",
		100*r.TotalLossRate(), r.LossFree())
	return b.String()
}
