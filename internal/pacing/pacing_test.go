package pacing

import (
	"bytes"
	"context"
	"crypto/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced monotonic clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestNilSafety(t *testing.T) {
	var b *Bucket
	var l *Limiter
	if err := b.WaitN(context.Background(), 1<<20); err != nil {
		t.Fatalf("nil bucket WaitN: %v", err)
	}
	b.SetRate(5)
	if b.Rate() != 0 || b.Burst() != 0 {
		t.Fatalf("nil bucket rate/burst not zero")
	}
	if err := l.WaitN(context.Background(), 1<<20); err != nil {
		t.Fatalf("nil limiter WaitN: %v", err)
	}
	if l.Waited() != 0 || l.Rate() != 0 {
		t.Fatalf("nil limiter accounting not zero")
	}
	if NewBucket(0, 0) != nil {
		t.Fatalf("NewBucket(0) must be nil (unshaped)")
	}
	if NewLimiter(nil, nil) != nil {
		t.Fatalf("NewLimiter of nils must be nil")
	}
}

// TestBurstAfterIdleRefill: an idle bucket refills to — and is capped
// at — its burst, so the first burst-worth after idle passes free and
// the next byte pays full price.
func TestBurstAfterIdleRefill(t *testing.T) {
	clk := newFakeClock()
	const rate = 8e6 // 1 MB/s
	const burst = 64 << 10
	b := newBucketAt(rate, burst, clk.now)

	// Drain the initial burst plus extra; the bucket goes into debt.
	if d := b.take(burst + 1000); d <= 0 {
		t.Fatalf("over-burst take should owe a wait, got %v", d)
	}
	// A long idle must cap at one burst, not accumulate 10 s of rate.
	clk.advance(10 * time.Second)
	if d := b.take(burst); d != 0 {
		t.Fatalf("burst-sized take after idle should be free, waited %v", d)
	}
	if d := b.take(1); d <= 0 {
		t.Fatalf("bucket should be empty right after the burst, got wait %v", d)
	}
}

// TestWaitNCancelPromptAndRefund: cancelling mid-WaitN returns promptly
// and refunds the deducted tokens so other streams are not starved by
// debt nobody will use.
func TestWaitNCancelPromptAndRefund(t *testing.T) {
	b := NewBucket(8_000, 1024) // 1 KB/s: a big take waits for minutes
	b.take(1024)                // drain the burst
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- b.WaitN(ctx, 1<<20) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("WaitN did not return promptly after cancel")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancel took %v, want prompt return", d)
	}
	// Refunded: a small take should owe at most ~1 s (the 1 KB/s burst
	// deficit), not the ~17 min a leaked 1 MiB debt would cost.
	if d := b.take(10); d > 5*time.Second {
		t.Fatalf("tokens not refunded after cancel: next take owes %v", d)
	}
}

// TestAggregateFairness: 8 streams hammering one shared bucket each get
// within 2x of their fair share — the debt model's approximate FIFO at
// work.
func TestAggregateFairness(t *testing.T) {
	const (
		streams = 8
		rate    = 32e6 // 4 MB/s aggregate
		chunk   = 16 << 10
		runFor  = 700 * time.Millisecond
	)
	agg := NewBucket(rate, 64<<10)
	lim := NewLimiter(agg)
	ctx, cancel := context.WithTimeout(context.Background(), runFor)
	defer cancel()
	var wg sync.WaitGroup
	got := make([]int64, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				if err := lim.WaitN(ctx, chunk); err != nil {
					return
				}
				got[i] += chunk
			}
		}(i)
	}
	wg.Wait()
	var total int64
	for _, n := range got {
		total += n
	}
	fair := total / streams
	if fair == 0 {
		t.Fatalf("no bytes moved")
	}
	for i, n := range got {
		if n > 2*fair || n < fair/2 {
			t.Fatalf("stream %d moved %d bytes, outside [1/2, 2]x fair share %d (all: %v)", i, n, fair, got)
		}
	}
	if lim.Waited() <= 0 {
		t.Fatalf("limiter recorded no throttle time under contention")
	}
}

// TestShapedCopyByteIdentical: pacing must never corrupt or reorder the
// byte stream — a shaped copy is byte-identical to its source.
func TestShapedCopyByteIdentical(t *testing.T) {
	src := make([]byte, 256<<10)
	if _, err := rand.Read(src); err != nil {
		t.Fatal(err)
	}
	lim := NewLimiter(NewBucket(64e6, 32<<10)) // 8 MB/s: ~32 ms for 256 KiB
	var dst bytes.Buffer
	w := NewWriter(context.Background(), &dst, lim)
	r := NewReader(context.Background(), bytes.NewReader(src), lim)
	buf := make([]byte, 7000) // odd size: exercise partial chunks
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				t.Fatal(werr)
			}
		}
		if err != nil {
			break
		}
	}
	if !bytes.Equal(src, dst.Bytes()) {
		t.Fatalf("shaped copy differs from source")
	}
}

// TestRateEnforced: a real-clock sanity check that the bucket actually
// holds a flow near its configured rate.
func TestRateEnforced(t *testing.T) {
	const rate = 160e6 // 20 MB/s
	const n = 2 << 20  // 2 MiB => ~100 ms
	b := NewBucket(rate, 64<<10)
	ctx := context.Background()
	start := time.Now()
	moved := 0
	for moved < n {
		if err := b.WaitN(ctx, 16<<10); err != nil {
			t.Fatal(err)
		}
		moved += 16 << 10
	}
	elapsed := time.Since(start)
	ideal := time.Duration(float64(n) * 8 / rate * float64(time.Second))
	if elapsed < ideal/2 {
		t.Fatalf("2 MiB at 20 MB/s took %v, want >= %v", elapsed, ideal/2)
	}
	if elapsed > 10*ideal {
		t.Fatalf("2 MiB at 20 MB/s took %v, want <= %v", elapsed, 10*ideal)
	}
}

// TestSetRateLive: re-rating settles accrued tokens at the old rate and
// charges future traffic at the new one — the lease-extension path.
func TestSetRateLive(t *testing.T) {
	clk := newFakeClock()
	b := newBucketAt(8e6, 1024, clk.now) // 1 MB/s, tiny burst
	b.take(1024)                         // drain
	clk.advance(time.Millisecond)        // earn 1000 bytes at 1 MB/s
	b.SetRate(80e6)                      // x10
	// 1000 earned at old rate; take 11_000 => 10_000 debt at 10 MB/s = 1 ms.
	d := b.take(11_000)
	if d < 500*time.Microsecond || d > 2*time.Millisecond {
		t.Fatalf("post-SetRate wait %v, want ~1ms", d)
	}
	if b.Rate() != 80e6 {
		t.Fatalf("Rate() = %d after SetRate", b.Rate())
	}
}

// TestLimiterWith: composition shares buckets, and Rate() reports the
// tightest bound.
func TestLimiterWith(t *testing.T) {
	agg := NewBucket(100e6, 0)
	per := NewBucket(40e6, 0)
	l := NewLimiter(agg).With(per)
	if got := l.Rate(); got != 40e6 {
		t.Fatalf("composed Rate() = %d, want the tighter 40e6", got)
	}
	if l2 := (*Limiter)(nil).With(per); l2 == nil || l2.Rate() != 40e6 {
		t.Fatalf("nil.With(bucket) should compose a live limiter")
	}
	if l3 := NewLimiter(agg).With(nil); l3.Rate() != 100e6 {
		t.Fatalf("With(nil) should keep the receiver's buckets")
	}
}
