// Package pacing enforces reserved rates on the live data plane. A
// bandwidth reservation without an endpoint enforcement mechanism is
// advisory: the broker may hold a 1 Gb/s circuit, but unless the
// endpoints pace their sockets to the reserved rate, a VC-disposition
// transfer is indistinguishable on the wire from a best-effort one and
// the paper's variance collapse (Figs 7-8) never materializes.
//
// The package provides a monotonic-clock token bucket (Bucket), a
// Limiter that composes several buckets (per-transfer + per-session
// aggregate), and throttled io.Reader/io.Writer/net.Conn wrappers that
// the gridftp client and server slide under their data connections.
//
// Design notes:
//
//   - No background goroutine. Tokens refill lazily from the elapsed
//     monotonic time on each acquisition, so an idle bucket costs
//     nothing and never leaks.
//   - Debt model. WaitN deducts the full request immediately — tokens
//     may go negative — and sleeps off the debt. Requests larger than
//     the burst therefore need no chunking, and concurrent waiters are
//     approximately FIFO: a later arrival inherits the accumulated debt
//     of everyone before it, which is what makes the aggregate limiter
//     fair across streams.
//   - Rates are bits per second, matching the broker's reservation
//     units; tokens are bytes internally.
//   - Everything is nil-safe: a nil *Bucket or *Limiter means
//     "unshaped" and costs one pointer test on the data path, so the
//     shaped and unshaped code paths are the same code.
package pacing

import (
	"context"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBurstBytes is the floor on a bucket's burst when none is
// given: one bufio-sized write (the data planes flush in <= 64 KiB
// slices) passes unchunked even at low rates.
const DefaultBurstBytes = 64 << 10

// defaultBurst sizes a burst for a rate: ~25 ms worth of line rate,
// floored at DefaultBurstBytes. Large enough that the pacer sleeps in
// few-millisecond steps instead of per-write jitter, small enough that
// the shaped rate converges well inside a transfer.
func defaultBurst(rateBps int64) int64 {
	b := rateBps / 8 / 40 // bytes per 25 ms
	if b < DefaultBurstBytes {
		b = DefaultBurstBytes
	}
	return b
}

// A Bucket is a token bucket: capacity burst bytes, refilled at rateBps
// bits per second from a monotonic clock. The zero value is not usable;
// a nil Bucket is inert (no shaping).
type Bucket struct {
	mu      sync.Mutex
	rateBps int64
	burst   int64
	tokens  float64 // bytes; negative = debt already promised to waiters
	last    time.Time
	now     func() time.Time // injectable clock for tests and fuzzing
}

// NewBucket returns a bucket enforcing rateBps bits per second with the
// given burst in bytes (burstBytes <= 0 selects a default sized to the
// rate). rateBps <= 0 means "unshaped": NewBucket returns nil, which
// every method treats as a no-op.
func NewBucket(rateBps, burstBytes int64) *Bucket {
	if rateBps <= 0 {
		return nil
	}
	if burstBytes <= 0 {
		burstBytes = defaultBurst(rateBps)
	}
	b := &Bucket{rateBps: rateBps, burst: burstBytes, now: time.Now}
	b.last = b.now()
	b.tokens = float64(burstBytes) // start full: the first burst is free
	return b
}

// newBucketAt is NewBucket with an injected clock, for deterministic
// tests.
func newBucketAt(rateBps, burstBytes int64, now func() time.Time) *Bucket {
	b := NewBucket(rateBps, burstBytes)
	if b != nil {
		b.now = now
		b.last = now()
	}
	return b
}

// refillLocked credits tokens for the time elapsed since the last
// refill, capped at the burst. Caller holds b.mu.
func (b *Bucket) refillLocked() {
	t := b.now()
	if dt := t.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * float64(b.rateBps) / 8
		if max := float64(b.burst); b.tokens > max {
			b.tokens = max
		}
	}
	b.last = t
}

// take deducts n bytes immediately and returns how long the caller must
// sleep before the bucket has earned them back. Zero means "go now".
func (b *Bucket) take(n int64) time.Duration {
	if b == nil || n <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	b.tokens -= float64(n)
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens * 8 / float64(b.rateBps) * float64(time.Second))
}

// refund returns n bytes to the bucket (a cancelled WaitN gives back
// what it was never granted), capped at the burst.
func (b *Bucket) refund(n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	b.tokens += float64(n)
	if max := float64(b.burst); b.tokens > max {
		b.tokens = max
	}
}

// WaitN blocks until n bytes may pass, or until ctx is done — in which
// case the deducted tokens are refunded and ctx.Err() returned, so a
// cancelled transfer does not starve the streams still sharing the
// bucket. n may exceed the burst; the excess is paid for as debt. A nil
// Bucket returns immediately.
func (b *Bucket) WaitN(ctx context.Context, n int) error {
	if b == nil || n <= 0 {
		return nil
	}
	d := b.take(int64(n))
	if d <= 0 {
		return nil
	}
	if err := sleep(ctx, d); err != nil {
		b.refund(int64(n))
		return err
	}
	return nil
}

// SetRate re-rates the bucket in place — the live half of the broker's
// Modify path: when a lease extension re-books the circuit at a new
// rate, the in-flight job's bucket follows without a reconnect. Tokens
// accrued at the old rate are settled first. rateBps <= 0 is ignored
// (dropping to unshaped is a topology decision, not a re-rate).
func (b *Bucket) SetRate(rateBps int64) {
	if b == nil || rateBps <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	b.rateBps = rateBps
}

// Rate returns the bucket's current rate in bits per second (0 for a
// nil bucket).
func (b *Bucket) Rate() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rateBps
}

// Burst returns the bucket's burst capacity in bytes (0 for nil).
func (b *Bucket) Burst() int64 {
	if b == nil {
		return 0
	}
	return b.burst
}

// sleep waits for d or ctx, whichever ends first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// A Limiter composes one or more buckets: a transfer typically carries
// a fresh per-transfer bucket plus a shared per-session aggregate, and
// a byte must clear every bucket before it moves. A nil Limiter is
// inert.
type Limiter struct {
	buckets []*Bucket
	waited  atomic.Int64 // nanoseconds spent throttled, across all users
}

// NewLimiter composes the given buckets, skipping nils. With no live
// bucket it returns nil — the unshaped fast path.
func NewLimiter(buckets ...*Bucket) *Limiter {
	var live []*Bucket
	for _, b := range buckets {
		if b != nil {
			live = append(live, b)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return &Limiter{buckets: live}
}

// With returns a limiter enforcing this limiter's buckets plus b — how
// a per-transfer bucket joins a session aggregate. The receiver is
// unchanged; the underlying buckets are shared.
func (l *Limiter) With(b *Bucket) *Limiter {
	if l == nil {
		return NewLimiter(b)
	}
	if b == nil {
		return l
	}
	return &Limiter{buckets: append(append([]*Bucket(nil), l.buckets...), b)}
}

// WaitN blocks until n bytes clear every bucket. On ctx cancellation
// the bucket being waited on is refunded and ctx.Err() returned;
// buckets already cleared stay debited (the bytes were promised and the
// error path tears the connection down anyway).
func (l *Limiter) WaitN(ctx context.Context, n int) error {
	if l == nil || n <= 0 {
		return nil
	}
	for _, b := range l.buckets {
		d := b.take(int64(n))
		if d <= 0 {
			continue
		}
		l.waited.Add(int64(d))
		if err := sleep(ctx, d); err != nil {
			b.refund(int64(n))
			return err
		}
	}
	return nil
}

// Waited reports the cumulative time WaitN has spent (or committed to
// spend) throttled across every user of this limiter.
func (l *Limiter) Waited() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.waited.Load())
}

// Rate returns the tightest (lowest) rate across the limiter's buckets
// — the rate the composed flow converges to. 0 means unshaped.
func (l *Limiter) Rate() int64 {
	if l == nil {
		return 0
	}
	var min int64
	for _, b := range l.buckets {
		if r := b.Rate(); r > 0 && (min == 0 || r < min) {
			min = r
		}
	}
	return min
}

// A Conn paces bytes crossing a net.Conn: writes clear the limiter
// before hitting the socket, reads are charged after they land (the
// reader cannot shrink what the kernel already buffered, but charging
// keeps the long-run rate honest). onWait, when set, observes each
// throttle stall so spans can attribute shaped time.
type Conn struct {
	net.Conn
	lim    *Limiter
	ctx    context.Context
	onWait func(time.Duration)
}

// WrapConn paces c with lim. ctx bounds in-flight throttle waits (nil
// means none). If lim is nil, c is returned unwrapped — shaping off
// costs nothing.
func WrapConn(ctx context.Context, c net.Conn, lim *Limiter, onWait func(time.Duration)) net.Conn {
	if lim == nil {
		return c
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &Conn{Conn: c, lim: lim, ctx: ctx, onWait: onWait}
}

// wait clears n bytes through the limiter, reporting any stall to
// onWait.
func (c *Conn) wait(n int) error {
	if n <= 0 {
		return nil
	}
	start := time.Now()
	err := c.lim.WaitN(c.ctx, n)
	if c.onWait != nil {
		if d := time.Since(start); d > 0 {
			c.onWait(d)
		}
	}
	return err
}

// Write pays for p up front, then writes it whole — write atomicity is
// preserved (MODE E block framing depends on it) and oversize writes
// are absorbed as bucket debt rather than split.
func (c *Conn) Write(p []byte) (int, error) {
	if err := c.wait(len(p)); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// Read charges for what actually arrived. A cancelled wait still
// delivers the bytes read — they exist and the caller's teardown path
// owns the error.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		if werr := c.wait(n); werr != nil && err == nil {
			err = werr
		}
	}
	return n, err
}

// NewReader returns r throttled by lim; a nil lim returns r unwrapped.
func NewReader(ctx context.Context, r io.Reader, lim *Limiter) io.Reader {
	if lim == nil {
		return r
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &pacedReader{r: r, lim: lim, ctx: ctx}
}

type pacedReader struct {
	r   io.Reader
	lim *Limiter
	ctx context.Context
}

func (p *pacedReader) Read(b []byte) (int, error) {
	n, err := p.r.Read(b)
	if n > 0 {
		if werr := p.lim.WaitN(p.ctx, n); werr != nil && err == nil {
			err = werr
		}
	}
	return n, err
}

// NewWriter returns w throttled by lim; a nil lim returns w unwrapped.
func NewWriter(ctx context.Context, w io.Writer, lim *Limiter) io.Writer {
	if lim == nil {
		return w
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &pacedWriter{w: w, lim: lim, ctx: ctx}
}

type pacedWriter struct {
	w   io.Writer
	lim *Limiter
	ctx context.Context
}

func (p *pacedWriter) Write(b []byte) (int, error) {
	if err := p.lim.WaitN(p.ctx, len(b)); err != nil {
		return 0, err
	}
	return p.w.Write(b)
}
