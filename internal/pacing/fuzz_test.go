package pacing

import (
	"testing"
	"time"
)

// FuzzBucketRefill drives a bucket through an arbitrary schedule of
// takes, refunds, and clock advances, checking it against an
// independent conservation oracle: over any schedule, the bytes a
// bucket grants without a wait can never exceed its burst plus what the
// clock has earned at the configured rate; computed waits are never
// negative; and tokens never exceed the burst.
func FuzzBucketRefill(f *testing.F) {
	f.Add([]byte{10, 200, 3, 50, 0, 255})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 1, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const (
			rate  = 8e6     // 1 MB/s
			burst = 8 << 10 // 8 KiB
		)
		clk := newFakeClock()
		b := newBucketAt(rate, burst, clk.now)

		var (
			elapsed  time.Duration // total simulated time
			granted  int64         // bytes taken
			refunded int64         // bytes given back
		)
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i]%4, int64(ops[i+1])
			switch op {
			case 0: // advance the clock up to ~25 ms
				d := time.Duration(arg) * 100 * time.Microsecond
				clk.advance(d)
				elapsed += d
			case 1: // take up to ~16 KiB (can exceed burst)
				n := (arg + 1) * 64
				d := b.take(n)
				if d < 0 {
					t.Fatalf("op %d: negative wait %v", i, d)
				}
				granted += n
				// Sleeping is modeled by advancing the clock by the debt.
				clk.advance(d)
				elapsed += d
			case 2: // refund up to ~16 KiB
				n := (arg + 1) * 64
				b.refund(n)
				refunded += n
			case 3: // re-rate; oracle below only bounds with the max rate,
				// so keep the rate fixed for a tight invariant and use
				// this op to exercise the settle path at the same rate.
				b.SetRate(rate)
			}

			b.mu.Lock()
			tokens := b.tokens
			b.mu.Unlock()
			if max := float64(burst); tokens > max+1e-6 {
				t.Fatalf("op %d: tokens %.1f exceed burst %d", i, tokens, burst)
			}
			// Conservation: everything granted must be covered by the
			// initial burst, the refill the elapsed time earned, refunds,
			// and the debt still carried (negative tokens). The refill
			// and refund terms over-credit (both cap at burst), so this
			// is a one-sided bound: granted can never exceed it.
			earned := float64(burst) + elapsed.Seconds()*rate/8 + float64(refunded)
			debt := 0.0
			if tokens < 0 {
				debt = -tokens
			}
			if float64(granted) > earned+debt+1e-3 {
				t.Fatalf("op %d: granted %d bytes > earned %.1f + debt %.1f (over-issue)",
					i, granted, earned, debt)
			}
		}
	})
}
