package oscarsd

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"testing"
)

// client is a minimal test client for the line-JSON protocol.
type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) roundTrip(t *testing.T, req Request) Response {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.conn.Write(append(data, '\n')); err != nil {
		t.Fatal(err)
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func startServer(t *testing.T) *Server {
	t.Helper()
	srv, err := Start(Config{
		Addr:               "127.0.0.1:0",
		Scenario:           "nersc-ornl",
		ReservableFraction: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{Addr: "127.0.0.1:0", Scenario: "mars-venus", ReservableFraction: 0.5}); !errors.Is(err, ErrUnknownScenario) {
		t.Errorf("unknown scenario: got %v, want ErrUnknownScenario", err)
	}
	if _, err := Start(Config{Addr: "127.0.0.1:0", Scenario: "nersc-ornl", ReservableFraction: 0}); err == nil {
		t.Error("zero reservable fraction should fail")
	}
}

func TestTopologyOp(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv.Addr())
	resp := c.roundTrip(t, Request{Op: "topology"})
	if !resp.OK || len(resp.Nodes) == 0 {
		t.Fatalf("topology response: %+v", resp)
	}
}

func TestReserveCancelCycle(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv.Addr())
	req := Request{
		Op:  "reserve",
		Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
		RateBps: 4e9, Start: 100, End: 200,
	}
	resp := c.roundTrip(t, req)
	if !resp.OK || resp.ID == 0 || len(resp.Path) == 0 {
		t.Fatalf("reserve failed: %+v", resp)
	}
	// 5 Gbps reservable; a second 4 Gbps circuit in the same window must
	// be rejected.
	if r2 := c.roundTrip(t, req); r2.OK {
		t.Fatalf("overbooking admitted: %+v", r2)
	}
	// Cancel releases the bandwidth.
	if rc := c.roundTrip(t, Request{Op: "cancel", ID: resp.ID}); !rc.OK {
		t.Fatalf("cancel failed: %+v", rc)
	}
	if r3 := c.roundTrip(t, req); !r3.OK {
		t.Fatalf("post-cancel reserve failed: %+v", r3)
	}
	// Double cancel is an error.
	if rc := c.roundTrip(t, Request{Op: "cancel", ID: resp.ID}); rc.OK {
		t.Fatal("double cancel should fail")
	}
}

func TestAdvanceReservationsCoexist(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv.Addr())
	mk := func(start, end float64) Response {
		return c.roundTrip(t, Request{
			Op:  "reserve",
			Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
			RateBps: 4e9, Start: start, End: end,
		})
	}
	if r := mk(100, 200); !r.OK {
		t.Fatalf("first window: %+v", r)
	}
	if r := mk(200, 300); !r.OK {
		t.Fatalf("adjacent window should be admitted: %+v", r)
	}
	if r := mk(150, 250); r.OK {
		t.Fatalf("overlapping window should be rejected: %+v", r)
	}
}

func TestModifyOp(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv.Addr())
	r := c.roundTrip(t, Request{
		Op:  "reserve",
		Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
		RateBps: 4e9, Start: 100, End: 200,
	})
	if !r.OK {
		t.Fatalf("reserve: %+v", r)
	}
	// Shrink to 1 Gbps: succeeds and frees bandwidth.
	if m := c.roundTrip(t, Request{
		Op: "modify", ID: r.ID, RateBps: 1e9, Start: 100, End: 200,
	}); !m.OK {
		t.Fatalf("shrink: %+v", m)
	}
	if r2 := c.roundTrip(t, Request{
		Op:  "reserve",
		Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
		RateBps: 4e9, Start: 100, End: 200,
	}); !r2.OK {
		t.Fatalf("freed capacity not claimable: %+v", r2)
	}
	// Growing beyond the remaining headroom fails with rollback.
	if m := c.roundTrip(t, Request{
		Op: "modify", ID: r.ID, RateBps: 4.5e9, Start: 100, End: 200,
	}); m.OK {
		t.Fatalf("grow should fail: %+v", m)
	}
	// The original 1 Gbps booking survives: cancelling it frees exactly
	// 1 Gbps (a 1 Gbps reservation fits afterwards but not before).
	if r3 := c.roundTrip(t, Request{
		Op:  "reserve",
		Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
		RateBps: 0.9e9, Start: 100, End: 200,
	}); r3.OK {
		t.Fatalf("rollback leaked bandwidth: %+v", r3)
	}
	if m := c.roundTrip(t, Request{Op: "modify", ID: 999, RateBps: 1e9, Start: 0, End: 1}); m.OK {
		t.Fatal("modify of unknown circuit should fail")
	}
	if m := c.roundTrip(t, Request{Op: "modify", ID: r.ID, RateBps: 0, Start: 0, End: 1}); m.OK {
		t.Fatal("modify with zero rate should fail")
	}
}

func TestAvailableOp(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv.Addr())
	resp := c.roundTrip(t, Request{
		Op:  "available",
		Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
		RateBps: 1e9, Start: 10, End: 20,
	})
	if !resp.OK || len(resp.Path) == 0 {
		t.Fatalf("available: %+v", resp)
	}
}

func TestValidationErrors(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv.Addr())
	cases := []Request{
		{Op: "frobnicate"},
		{Op: "reserve", Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst", RateBps: 0, Start: 10, End: 20},
		{Op: "reserve", Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst", RateBps: 1e9, Start: 20, End: 10},
		{Op: "reserve", Src: "nope", Dst: "nersc-ornl-dtn-dst", RateBps: 1e9, Start: 10, End: 20},
		{Op: "cancel", ID: 999},
	}
	for i, req := range cases {
		if resp := c.roundTrip(t, req); resp.OK {
			t.Errorf("case %d should fail: %+v", i, resp)
		}
	}
}

func TestHelloNegotiation(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv.Addr())
	// A current client asks for the server's version.
	if r := c.roundTrip(t, Request{Op: OpHello, Ver: ProtocolVersion}); !r.OK || r.Ver != ProtocolVersion {
		t.Fatalf("hello: %+v, want OK with ver %d", r, ProtocolVersion)
	}
	// A future client speaking a higher revision is held to ours.
	if r := c.roundTrip(t, Request{Op: OpHello, Ver: ProtocolVersion + 7}); !r.OK || r.Ver != ProtocolVersion {
		t.Fatalf("future hello: %+v, want ver %d", r, ProtocolVersion)
	}
	// A hello with no version (or zero) also gets the server's best.
	if r := c.roundTrip(t, Request{Op: OpHello}); !r.OK || r.Ver != ProtocolVersion {
		t.Fatalf("bare hello: %+v, want ver %d", r, ProtocolVersion)
	}
	// The connection remains usable for real operations afterwards.
	if r := c.roundTrip(t, Request{Op: OpTopology}); !r.OK {
		t.Fatalf("topology after hello: %+v", r)
	}
}

func TestStructuredErrorCodes(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv.Addr())
	cases := []struct {
		req  Request
		code string
	}{
		{Request{Op: "frobnicate"}, CodeUnknownOp},
		{Request{Op: OpReserve, Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
			RateBps: 0, Start: 10, End: 20}, CodeBadRequest},
		{Request{Op: OpReserve, Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
			RateBps: 1e9, Start: 20, End: 10}, CodeBadRequest},
		{Request{Op: OpReserve, Src: "nope", Dst: "nersc-ornl-dtn-dst",
			RateBps: 1e9, Start: 1000, End: 1010}, CodeNoPath},
		{Request{Op: OpReserve, Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
			RateBps: 99e9, Start: 1000, End: 1010}, CodeNoPath},
		{Request{Op: OpCancel, ID: 999}, CodeUnknownCircuit},
		{Request{Op: OpModify, ID: 999, RateBps: 1e9, Start: 0, End: 1}, CodeUnknownCircuit},
	}
	for i, tc := range cases {
		resp := c.roundTrip(t, tc.req)
		if resp.OK || resp.Code != tc.code || resp.Error == "" {
			t.Errorf("case %d: %+v, want code %q with message", i, resp, tc.code)
		}
	}
	// Successful replies never carry a code.
	if r := c.roundTrip(t, Request{Op: OpAvailable,
		Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
		RateBps: 1e9, Start: 10, End: 20}); !r.OK || r.Code != "" {
		t.Fatalf("available: %+v, want OK without code", r)
	}
}

func TestMalformedLine(t *testing.T) {
	srv := startServer(t)
	c := dial(t, srv.Addr())
	if _, err := c.conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Error == "" || resp.Code != CodeMalformed {
		t.Fatalf("malformed line should error with code %q: %+v", CodeMalformed, resp)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := startServer(t)
	done := make(chan bool, 4)
	for i := 0; i < 4; i++ {
		i := i
		go func() {
			c := dial(t, srv.Addr())
			resp := c.roundTrip(t, Request{
				Op:  "reserve",
				Src: "nersc-ornl-dtn-src", Dst: "nersc-ornl-dtn-dst",
				RateBps: 1e9, Start: float64(1000 + i), End: float64(1000 + i + 1),
			})
			done <- resp.OK
		}()
	}
	okCount := 0
	for i := 0; i < 4; i++ {
		if <-done {
			okCount++
		}
	}
	// Disjoint 1-second windows at 1 Gbps on a 5 Gbps-reservable path:
	// all four must be admitted.
	if okCount != 4 {
		t.Errorf("admitted %d of 4 disjoint reservations", okCount)
	}
}
