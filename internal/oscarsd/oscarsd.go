// Package oscarsd implements the wall-clock OSCARS reservation daemon: a
// TCP server speaking newline-delimited JSON over an oscars.Ledger. The
// simulation-bound IDC (internal/oscars) handles circuit lifecycle inside
// experiments; this daemon exposes the same admission-control core as a
// network service, the way the real OSCARS IDC exposes createReservation.
package oscarsd

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"gftpvc/internal/oscars"
	"gftpvc/internal/simclock"
	"gftpvc/internal/telemetry"
	"gftpvc/internal/topo"
)

// Protocol operations. Clients put one of these in Request.Op; the
// dispatch switch is bounded by this set and replies to anything else
// with a CodeUnknownOp structured error. The internal/vc client shares
// these constants, so server and client cannot drift apart on spelling.
const (
	OpReserve   = "reserve"
	OpModify    = "modify"
	OpCancel    = "cancel"
	OpAvailable = "available"
	OpTopology  = "topology"
	// OpHello negotiates the protocol revision: the client sends the
	// highest version it speaks in Request.Ver, the server answers with
	// min(client, server) in Response.Ver. Seed-era servers predate the
	// op and answer with an unknown-op error, which clients treat as
	// version 0 (the original, code-less protocol) — negotiation is
	// therefore wire-compatible in both directions.
	OpHello = "hello"
)

// ProtocolVersion is the highest protocol revision this daemon speaks.
// Version 1 adds OpHello and the machine-readable Response.Code field;
// the five operation payloads are unchanged from version 0.
const ProtocolVersion = 1

// Machine-readable error codes carried in Response.Code (protocol >= 1).
// Version-0 clients ignore the field; version-0 servers never set it.
const (
	// CodeBadRequest: the request failed validation before touching the
	// ledger (missing rate, inverted window, start in the past).
	CodeBadRequest = "bad-request"
	// CodeNoPath: no path between the endpoints has the requested
	// bandwidth over the requested window — the admission reject the
	// hybrid dispatcher falls back to best-effort IP on.
	CodeNoPath = "no-path"
	// CodeRejected: the ledger refused the booking (lost an admission
	// race, or a modify could not be re-booked).
	CodeRejected = "rejected"
	// CodeUnknownCircuit: cancel/modify named a circuit this daemon is
	// not holding.
	CodeUnknownCircuit = "unknown-circuit"
	// CodeUnknownOp: Request.Op is not one of the Op constants.
	CodeUnknownOp = "unknown-op"
	// CodeMalformed: the request line was not valid JSON.
	CodeMalformed = "malformed"
)

// ErrUnknownScenario is returned by Start for a Config.Scenario outside
// the reference set; errors.Is-comparable.
var ErrUnknownScenario = errors.New("oscarsd: unknown scenario")

// Config configures the daemon.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// Scenario selects the reference topology: nersc-ornl | nersc-anl |
	// ncar-nics | slac-bnl.
	Scenario string
	// ReservableFraction is the share of each link's capacity circuits
	// may book.
	ReservableFraction float64
	// Telemetry, when set, publishes admission-control metrics on the hub
	// (requests by op, admit/reject/cancel counts, open connections).
	Telemetry *telemetry.Hub
}

// Request is one protocol message. Op should be one of the Op
// constants; the remaining fields are per-operation payload.
type Request struct {
	Op      string  `json:"op"`
	Src     string  `json:"src,omitempty"`
	Dst     string  `json:"dst,omitempty"`
	RateBps float64 `json:"rate_bps,omitempty"`
	Start   float64 `json:"start,omitempty"`
	End     float64 `json:"end,omitempty"`
	ID      int64   `json:"id,omitempty"`
	// Ver is the highest protocol version the sender speaks; only
	// meaningful with OpHello (absent otherwise).
	Ver int `json:"ver,omitempty"`
	// Trace is the end-to-end trace ID of the transfer this request
	// serves, if any; the daemon tags its flight-recorder events with
	// it. Older daemons ignore the unknown field, so it is wire-
	// compatible in both directions.
	Trace string `json:"trace,omitempty"`
}

// Response is the reply to a Request.
type Response struct {
	OK    bool     `json:"ok"`
	Error string   `json:"error,omitempty"`
	ID    int64    `json:"id,omitempty"`
	Path  []string `json:"path,omitempty"`
	Src   string   `json:"src,omitempty"`
	Dst   string   `json:"dst,omitempty"`
	Nodes []string `json:"nodes,omitempty"`
	Now   float64  `json:"now,omitempty"`
	// Code is the machine-readable error class (Code* constants),
	// set alongside Error on protocol >= 1 failures.
	Code string `json:"code,omitempty"`
	// Ver is the negotiated protocol version in an OpHello reply.
	Ver int `json:"ver,omitempty"`
}

// fail builds an error response carrying both the human-readable line
// (version-0 clients read only this) and the structured code.
func fail(code, msg string) Response {
	return Response{Error: msg, Code: code}
}

// Server is a running daemon.
type Server struct {
	ln     net.Listener
	ledger *oscars.Ledger
	tp     *topo.Topology
	epoch  time.Time

	mu     sync.Mutex
	nextID oscars.CircuitID
	held   map[oscars.CircuitID]holding

	wg     sync.WaitGroup
	conns  map[net.Conn]bool
	closed bool

	hub *telemetry.Hub
	met odMetrics
}

// odMetrics is the daemon's instrument set; nil instruments (no hub)
// make every call a no-op.
type odMetrics struct {
	admitted    *telemetry.Counter
	rejected    *telemetry.Counter
	cancelled   *telemetry.Counter
	connsActive *telemetry.Gauge
}

// countOp counts one dispatched protocol request by operation. The op
// label is bounded by the dispatch switch: unknown input lands on
// "other".
func (s *Server) countOp(op string) {
	if s.hub == nil {
		return
	}
	switch op {
	case OpReserve, OpCancel, OpModify, OpAvailable, OpTopology, OpHello:
	default:
		op = "other"
	}
	s.hub.Counter("oscarsd_requests_total",
		"Protocol requests dispatched, by operation.",
		telemetry.L("op", op)).Inc()
}

// countModify counts one modify outcome.
func (s *Server) countModify(ok bool) {
	if s.hub == nil {
		return
	}
	result := "ok"
	if !ok {
		result = "error"
	}
	s.hub.Counter("oscarsd_modify_total",
		"Reservation modifications, by result.",
		telemetry.L("result", result)).Inc()
}

// holding records an admitted reservation's booking so modify can roll
// back.
type holding struct {
	path       topo.Path
	rateBps    float64
	start, end simclock.Time
}

// scenarioTopo resolves a scenario name.
func scenarioTopo(name string) (*topo.Scenario, error) {
	switch name {
	case "nersc-ornl":
		return topo.NERSCORNL(), nil
	case "nersc-anl":
		return topo.NERSCANL(), nil
	case "ncar-nics":
		return topo.NCARNICS(), nil
	case "slac-bnl":
		return topo.SLACBNL(), nil
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownScenario, name)
	}
}

// Start launches the daemon.
func Start(cfg Config) (*Server, error) {
	sc, err := scenarioTopo(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	ledger, err := oscars.NewLedger(sc.Topo, cfg.ReservableFraction)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:     ln,
		ledger: ledger,
		tp:     sc.Topo,
		epoch:  time.Now(),
		held:   make(map[oscars.CircuitID]holding),
		conns:  make(map[net.Conn]bool),
		hub:    cfg.Telemetry,
	}
	if s.hub != nil {
		s.met = odMetrics{
			admitted: s.hub.Counter("oscarsd_reservations_admitted_total",
				"Reservations admitted by the bandwidth ledger."),
			rejected: s.hub.Counter("oscarsd_reservations_rejected_total",
				"Reservations refused (no path with the requested bandwidth)."),
			cancelled: s.hub.Counter("oscarsd_reservations_cancelled_total",
				"Held reservations cancelled by clients."),
			connsActive: s.hub.Gauge("oscarsd_connections_active",
				"Protocol connections currently open."),
		}
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Wait blocks until the server is closed.
func (s *Server) Wait() { s.wg.Wait() }

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.met.connsActive.Inc()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			s.met.connsActive.Dec()
		}()
	}
}

// now returns seconds since the daemon's epoch.
func (s *Server) now() simclock.Time {
	return simclock.Time(time.Since(s.epoch).Seconds())
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), 1<<16)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		var req Request
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			resp = fail(CodeMalformed, "malformed request: "+err.Error())
		} else {
			resp = s.dispatch(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req Request) Response {
	s.countOp(req.Op)
	resp := s.dispatchOp(req)
	// Reservation-state changes land in the flight recorder, tagged with
	// the transfer trace when the caller supplied one.
	switch req.Op {
	case OpReserve, OpCancel, OpModify:
		detail := fmt.Sprintf("%s ok id=%d", req.Op, resp.ID)
		if !resp.OK {
			detail = fmt.Sprintf("%s %s: %s", req.Op, resp.Code, resp.Error)
		}
		s.hub.Event(req.Trace, req.Op, detail)
	}
	return resp
}

func (s *Server) dispatchOp(req Request) Response {
	switch req.Op {
	case OpReserve:
		return s.reserve(req)
	case OpCancel:
		return s.cancel(req)
	case OpModify:
		return s.modify(req)
	case OpAvailable:
		return s.available(req)
	case OpTopology:
		nodes := s.tp.Nodes()
		names := make([]string, len(nodes))
		for i, n := range nodes {
			names[i] = string(n)
		}
		return Response{OK: true, Nodes: names, Now: float64(s.now())}
	case OpHello:
		ver := req.Ver
		if ver <= 0 || ver > ProtocolVersion {
			ver = ProtocolVersion
		}
		return Response{OK: true, Ver: ver, Now: float64(s.now())}
	default:
		return fail(CodeUnknownOp, fmt.Sprintf("unknown op %q", req.Op))
	}
}

func pathNames(p topo.Path) []string {
	out := make([]string, len(p))
	for i, l := range p {
		out[i] = string(l.ID)
	}
	return out
}

// findPath validates the request window and computes a feasible path;
// the returned code classifies failures (CodeBadRequest for validation,
// CodeNoPath for admission).
func (s *Server) findPath(req Request) (topo.Path, string, error) {
	if req.RateBps <= 0 {
		return nil, CodeBadRequest, errors.New("rate_bps must be positive")
	}
	if req.End <= req.Start {
		return nil, CodeBadRequest, errors.New("end must follow start")
	}
	if float64(s.now()) > req.Start {
		return nil, CodeBadRequest, errors.New("start is in the past")
	}
	path, err := s.ledger.PathWithBandwidth(
		topo.NodeID(req.Src), topo.NodeID(req.Dst),
		req.RateBps, simclock.Time(req.Start), simclock.Time(req.End))
	if err != nil {
		return nil, CodeNoPath, err
	}
	return path, "", nil
}

func (s *Server) reserve(req Request) Response {
	path, code, err := s.findPath(req)
	if err != nil {
		s.met.rejected.Inc()
		return fail(code, err.Error())
	}
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	h := holding{
		path: path, rateBps: req.RateBps,
		start: simclock.Time(req.Start), end: simclock.Time(req.End),
	}
	s.held[id] = h
	s.mu.Unlock()
	if err := s.ledger.Reserve(path, h.rateBps, h.start, h.end, id); err != nil {
		s.mu.Lock()
		delete(s.held, id)
		s.mu.Unlock()
		s.met.rejected.Inc()
		return fail(CodeRejected, err.Error())
	}
	s.met.admitted.Inc()
	return Response{OK: true, ID: int64(id), Path: pathNames(path), Src: req.Src, Dst: req.Dst}
}

func (s *Server) cancel(req Request) Response {
	id := oscars.CircuitID(req.ID)
	s.mu.Lock()
	_, known := s.held[id]
	delete(s.held, id)
	s.mu.Unlock()
	if !known {
		return fail(CodeUnknownCircuit, fmt.Sprintf("unknown circuit %d", req.ID))
	}
	s.ledger.Release(id)
	s.met.cancelled.Inc()
	return Response{OK: true, ID: req.ID}
}

// modify atomically re-books a held reservation with a new rate and/or
// window (the OSCARS modifyReservation operation). On failure the old
// booking is restored.
func (s *Server) modify(req Request) Response {
	id := oscars.CircuitID(req.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	old, known := s.held[id]
	if !known {
		return fail(CodeUnknownCircuit, fmt.Sprintf("unknown circuit %d", req.ID))
	}
	if req.RateBps <= 0 || req.End <= req.Start {
		return fail(CodeBadRequest, "modify needs rate_bps and a valid window")
	}
	s.ledger.Release(id)
	path, err := s.ledger.PathWithBandwidth(
		old.path[0].Src, old.path[len(old.path)-1].Dst,
		req.RateBps, simclock.Time(req.Start), simclock.Time(req.End))
	if err == nil {
		err = s.ledger.Reserve(path, req.RateBps,
			simclock.Time(req.Start), simclock.Time(req.End), id)
	}
	if err != nil {
		s.countModify(false)
		// Restore; the old booking fit before, so it fits again.
		if rbErr := s.ledger.Reserve(old.path, old.rateBps, old.start, old.end, id); rbErr != nil {
			return fail(CodeRejected, fmt.Sprintf("modify failed (%v) and rollback failed (%v)", err, rbErr))
		}
		return fail(CodeRejected, "modify rejected: "+err.Error())
	}
	s.countModify(true)
	s.held[id] = holding{
		path: path, rateBps: req.RateBps,
		start: simclock.Time(req.Start), end: simclock.Time(req.End),
	}
	return Response{OK: true, ID: req.ID, Path: pathNames(path)}
}

func (s *Server) available(req Request) Response {
	path, code, err := s.findPath(req)
	if err != nil {
		return fail(code, err.Error())
	}
	return Response{OK: true, Path: pathNames(path)}
}
