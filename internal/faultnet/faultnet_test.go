package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pair returns two ends of a loopback TCP connection, the server end
// wrapped with the given plan.
func pair(t *testing.T, plan ConnPlan) (faulted, peer net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	peer, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srv, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { peer.Close(); srv.Close() })
	return NewConn(srv, plan), peer
}

func TestTruncateWrite(t *testing.T) {
	faulted, peer := pair(t, ConnPlan{TruncateWriteAfter: 1000})
	werr := make(chan error, 1)
	go func() {
		_, err := faulted.Write(make([]byte, 10_000))
		werr <- err
	}()
	got, err := io.ReadAll(peer)
	if err != nil {
		t.Fatalf("peer read: %v", err)
	}
	if len(got) != 1000 {
		t.Errorf("peer received %d bytes, want exactly 1000", len(got))
	}
	if err := <-werr; !errors.Is(err, ErrInjected) {
		t.Errorf("writer error = %v, want ErrInjected", err)
	}
}

func TestTruncateRead(t *testing.T) {
	faulted, peer := pair(t, ConnPlan{TruncateReadAfter: 500})
	go peer.Write(make([]byte, 2000))
	got, err := io.ReadAll(faulted)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != 500 {
		t.Errorf("read %d bytes, want 500 then EOF", len(got))
	}
}

func TestResetWrite(t *testing.T) {
	faulted, peer := pair(t, ConnPlan{ResetWriteAfter: 100})
	if _, err := faulted.Write(make([]byte, 4096)); !errors.Is(err, ErrInjected) {
		t.Fatalf("write error = %v, want ErrInjected", err)
	}
	// The peer sees the stream die; after the RST any further read
	// errors (reset) rather than blocking.
	peer.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 8192)
	var err error
	for err == nil {
		_, err = peer.Read(buf)
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Error("peer read timed out; reset not delivered")
	}
}

func TestSlowReader(t *testing.T) {
	const delay = 50 * time.Millisecond
	faulted, peer := pair(t, ConnPlan{ReadDelay: delay})
	go peer.Write([]byte("x"))
	start := time.Now()
	if _, err := faulted.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("read returned after %v, want >= %v", elapsed, delay)
	}
}

func TestListenerPlanPerConnection(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := &Listener{
		Listener: raw,
		PlanFor: func(i int) *ConnPlan {
			if i == 0 {
				return nil // first connection clean
			}
			return &ConnPlan{TruncateReadAfter: 1}
		},
	}
	defer ln.Close()
	for i := 0; i < 2; i++ {
		go func() {
			c, err := net.Dial("tcp", raw.Addr().String())
			if err != nil {
				return
			}
			c.Write([]byte("hello"))
			c.Close()
		}()
		c, err := ln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(c)
		c.Close()
		want := "hello"
		if i == 1 {
			want = "h"
		}
		if string(got) != want {
			t.Errorf("conn %d read %q, want %q", i, got, want)
		}
	}
}

func TestTrackerCounts(t *testing.T) {
	var tr Tracker
	var lns []net.Listener
	for i := 0; i < 3; i++ {
		ln, err := tr.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
	}
	if tr.Open() != 3 || tr.Total() != 3 {
		t.Fatalf("open=%d total=%d after 3 listens", tr.Open(), tr.Total())
	}
	lns[0].Close()
	lns[0].Close() // double close must not double-decrement
	lns[1].Close()
	if tr.Open() != 1 || tr.Total() != 3 {
		t.Errorf("open=%d total=%d after 2 closes, want 1/3", tr.Open(), tr.Total())
	}
	lns[2].Close()
	if tr.Open() != 0 {
		t.Errorf("open=%d after all closed", tr.Open())
	}
}

// echoServer answers every line with the same bytes.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()
	return ln
}

func TestProxyForwardStallReset(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Clean pass-through first.
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil || !bytes.Equal(buf, []byte("ping")) {
		t.Fatalf("echo through proxy: %q, %v", buf, err)
	}
	// Stalled: bytes vanish, the connection stays open, reads time out.
	p.Stall()
	if _, err := c.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read succeeded through a stalled proxy")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("stalled read error = %v, want timeout", err)
	}
	// Reset: the connection dies outright.
	p.Reset()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	var rerr error
	for rerr == nil {
		_, rerr = c.Read(buf)
	}
	if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
		t.Error("read timed out after Reset; connection was not torn down")
	}
}
