// Package faultnet provides fault-injecting net.Conn and net.Listener
// wrappers for failure-mode testing of transfer engines: slow readers
// and writers, connections that are reset or truncated after a byte
// budget, and listeners whose accepts stall. The gridftp failure-matrix
// tests plug these into the server's DataListen hook and the client's
// dial hook to exercise every transfer entry point against every fault
// the paper's production traces exhibit (REST-based restarts, circuit
// setup delays, contended servers).
//
// Tracker doubles as a leak detector: it counts how many listeners
// opened through it are still open, which is how the tests prove that a
// session looping transfers does not accumulate data listeners.
package faultnet

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// ErrInjected is returned by a Conn whose fault plan fired.
var ErrInjected = errors.New("faultnet: injected fault")

// ConnPlan describes the faults one connection injects. A zero plan is
// a clean connection. Byte limits of 0 disable the corresponding fault.
type ConnPlan struct {
	// ReadDelay is added before every Read (a slow reader).
	ReadDelay time.Duration
	// WriteDelay is added before every Write (a slow sender).
	WriteDelay time.Duration
	// TruncateReadAfter makes Reads report io.EOF after this many bytes,
	// as if the peer closed cleanly mid-stream.
	TruncateReadAfter int64
	// TruncateWriteAfter closes the connection (clean FIN) once this many
	// bytes have been written; the peer sees a stream cut mid-frame.
	TruncateWriteAfter int64
	// ResetReadAfter resets the connection (RST) once this many bytes
	// have been read.
	ResetReadAfter int64
	// ResetWriteAfter resets the connection (RST) once this many bytes
	// have been written.
	ResetWriteAfter int64
}

// Conn wraps a net.Conn and injects the faults its plan describes.
// Reads and writes may run on different goroutines (one direction
// each), matching how transfer engines use data connections.
type Conn struct {
	net.Conn
	plan   ConnPlan
	readN  int64
	writeN int64
}

// NewConn wraps c with the given fault plan.
func NewConn(c net.Conn, plan ConnPlan) *Conn {
	return &Conn{Conn: c, plan: plan}
}

func (c *Conn) Read(p []byte) (int, error) {
	if c.plan.ReadDelay > 0 {
		time.Sleep(c.plan.ReadDelay)
	}
	if lim := c.plan.ResetReadAfter; lim > 0 && c.readN >= lim {
		c.reset()
		return 0, ErrInjected
	}
	if lim := c.plan.TruncateReadAfter; lim > 0 {
		if c.readN >= lim {
			return 0, io.EOF
		}
		if rem := lim - c.readN; int64(len(p)) > rem {
			p = p[:rem]
		}
	}
	n, err := c.Conn.Read(p)
	c.readN += int64(n)
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	if c.plan.WriteDelay > 0 {
		time.Sleep(c.plan.WriteDelay)
	}
	if lim := c.plan.ResetWriteAfter; lim > 0 && c.writeN+int64(len(p)) > lim {
		n := c.writePrefix(p, lim)
		c.reset()
		return n, ErrInjected
	}
	if lim := c.plan.TruncateWriteAfter; lim > 0 && c.writeN+int64(len(p)) > lim {
		n := c.writePrefix(p, lim)
		c.Conn.Close()
		return n, ErrInjected
	}
	n, err := c.Conn.Write(p)
	c.writeN += int64(n)
	return n, err
}

// writePrefix delivers the bytes still inside the limit so the fault
// fires at an exact stream position (mid MODE E block, for instance).
func (c *Conn) writePrefix(p []byte, lim int64) int {
	allowed := lim - c.writeN
	if allowed <= 0 {
		return 0
	}
	n, _ := c.Conn.Write(p[:allowed])
	c.writeN += int64(n)
	return n
}

// reset closes the connection with an RST instead of a FIN so the peer
// observes ECONNRESET, the signature of a crashed process.
func (c *Conn) reset() {
	if tc, ok := c.Conn.(interface{ SetLinger(int) error }); ok {
		tc.SetLinger(0)
	}
	c.Conn.Close()
}

// Listener wraps a net.Listener, stalling accepts and attaching fault
// plans to the connections it hands out.
type Listener struct {
	net.Listener
	// AcceptDelay is added before every Accept call; set it beyond the
	// acceptor's deadline to simulate a data channel that never comes up
	// (the circuit-setup-delay scenario).
	AcceptDelay time.Duration
	// PlanFor returns the fault plan for the i-th accepted connection
	// (0-based); nil means that connection is clean.
	PlanFor func(i int) *ConnPlan

	mu       sync.Mutex
	accepted int
}

func (l *Listener) Accept() (net.Conn, error) {
	if l.AcceptDelay > 0 {
		time.Sleep(l.AcceptDelay)
	}
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.accepted
	l.accepted++
	l.mu.Unlock()
	if l.PlanFor == nil {
		return c, nil
	}
	plan := l.PlanFor(i)
	if plan == nil {
		return c, nil
	}
	return NewConn(c, *plan), nil
}

// SetDeadline arms an accept deadline when the wrapped listener
// supports one, so acceptors that bound their waits keep working.
func (l *Listener) SetDeadline(t time.Time) error {
	if d, ok := l.Listener.(interface{ SetDeadline(time.Time) error }); ok {
		return d.SetDeadline(t)
	}
	return nil
}

// Tracker opens listeners, counts how many are still open, and applies
// this tracker's faults to every connection they accept. Its Listen
// method matches the gridftp Config.DataListen hook.
type Tracker struct {
	// AcceptDelay and PlanFor are copied into every opened Listener.
	AcceptDelay time.Duration
	PlanFor     func(i int) *ConnPlan

	mu    sync.Mutex
	open  int
	total int
}

// Listen opens a tracked, fault-injecting listener.
func (t *Tracker) Listen(network, addr string) (net.Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.open++
	t.total++
	t.mu.Unlock()
	return &trackedListener{
		Listener: &Listener{Listener: ln, AcceptDelay: t.AcceptDelay, PlanFor: t.PlanFor},
		tracker:  t,
	}, nil
}

// Open returns how many tracked listeners are currently open.
func (t *Tracker) Open() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.open
}

// Total returns how many listeners were ever opened through the tracker.
func (t *Tracker) Total() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

type trackedListener struct {
	*Listener
	tracker *Tracker
	once    sync.Once
}

func (l *trackedListener) Close() error {
	l.once.Do(func() {
		l.tracker.mu.Lock()
		l.tracker.open--
		l.tracker.mu.Unlock()
	})
	return l.Listener.Close()
}
