package faultnet

import (
	"net"
	"sync"
)

// Proxy is a TCP fault-injection proxy for control channels: it
// forwards byte streams between clients and a target address until told
// to stall (silently blackhole traffic in both directions, leaving the
// connections open) or to reset every connection. A stalled control
// channel is the failure GridFTP clients historically hung on — the
// peer process is alive at the TCP level but will never reply.
type Proxy struct {
	ln     net.Listener
	target string

	mu      sync.Mutex
	conns   map[net.Conn]bool
	stalled bool
	closed  bool
}

// NewProxy starts a proxy on an ephemeral loopback port forwarding to
// target. Callers must Close it.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]bool)}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; dial this instead of the
// target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stall makes the proxy silently drop all traffic from now on; both
// sides see an open but mute peer.
func (p *Proxy) Stall() {
	p.mu.Lock()
	p.stalled = true
	p.mu.Unlock()
}

// Resume lifts a Stall; bytes read while stalled were dropped, not
// queued.
func (p *Proxy) Resume() {
	p.mu.Lock()
	p.stalled = false
	p.mu.Unlock()
}

// Reset tears down every proxied connection with an RST.
func (p *Proxy) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		if tc, ok := c.(interface{ SetLinger(int) error }); ok {
			tc.SetLinger(0)
		}
		c.Close()
		delete(p.conns, c)
	}
}

// Close stops the proxy and closes all proxied connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
		delete(p.conns, c)
	}
	p.mu.Unlock()
	return p.ln.Close()
}

func (p *Proxy) isStalled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stalled
}

func (p *Proxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		upstream, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			upstream.Close()
			return
		}
		p.conns[client] = true
		p.conns[upstream] = true
		p.mu.Unlock()
		go p.pipe(upstream, client)
		go p.pipe(client, upstream)
	}
}

func (p *Proxy) pipe(dst, src net.Conn) {
	defer func() {
		p.mu.Lock()
		delete(p.conns, src)
		delete(p.conns, dst)
		p.mu.Unlock()
		src.Close()
		dst.Close()
	}()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 && !p.isStalled() {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}
