package gridftp

import (
	"net"
	"time"
)

// idleConn arms a fresh deadline before every Read and Write so a
// stalled peer surfaces as a timeout instead of blocking a transfer
// goroutine forever. Both the client and the server wrap their data
// connections with it; the deadline is per I/O operation, so a healthy
// transfer of any length is never cut off.
type idleConn struct {
	net.Conn
	idle time.Duration
}

// withIdleTimeout wraps c with a per-operation deadline; d <= 0 returns
// c unchanged.
func withIdleTimeout(c net.Conn, d time.Duration) net.Conn {
	if d <= 0 {
		return c
	}
	return &idleConn{Conn: c, idle: d}
}

func (c *idleConn) Read(p []byte) (int, error) {
	c.Conn.SetReadDeadline(time.Now().Add(c.idle))
	return c.Conn.Read(p)
}

func (c *idleConn) Write(p []byte) (int, error) {
	c.Conn.SetWriteDeadline(time.Now().Add(c.idle))
	return c.Conn.Write(p)
}

// setListenerDeadline arms an accept deadline when the listener
// supports one (listeners from a custom DataListen hook may not).
func setListenerDeadline(ln net.Listener, t time.Time) {
	if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(t)
	}
}
