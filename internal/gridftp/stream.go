package gridftp

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"gftpvc/internal/telemetry"
)

// This file is the client's streaming data plane: RetrTo/RetrToAt
// deliver an object into an io.Writer through a bounded reassembly
// window, and StorFrom/StorFromAt send from an io.Reader in block-size
// chunks — peak memory is a window (receive) or a few blocks (send),
// independent of object size, where the buffered Retr/Stor APIs hold
// the whole object.

// connSet tracks a transfer's open data connections so a context
// cancellation can tear them down from outside the transfer
// goroutines; blocked reads and writes then fail immediately.
type connSet struct {
	mu     sync.Mutex
	conns  []net.Conn
	closed bool
}

// add registers a connection, closing it instead when the set is
// already torn down (a dial that raced the cancellation).
func (s *connSet) add(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		c.Close()
		return false
	}
	s.conns = append(s.conns, c)
	return true
}

func (s *connSet) closeAll() {
	s.mu.Lock()
	conns := s.conns
	s.conns, s.closed = nil, true
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// watchCtx tears the connection set down when ctx is cancelled and
// runs onCancel (e.g. aborting a window assembler so parked placers
// wake). The returned stop func must be called when the transfer's
// data phase ends.
func watchCtx(ctx context.Context, set *connSet, onCancel func(error)) (stop func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			if onCancel != nil {
				onCancel(ctx.Err())
			}
			set.closeAll()
		case <-done:
		}
	}()
	return func() { close(done) }
}

// firstError returns ctx's error if it fired (cancellation caused the
// connection errors, so it is the root cause), else the first non-nil
// entry.
func firstError(ctx context.Context, errs []error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// RetrTo fetches an object and streams it into w with bounded memory:
// out-of-order MODE E blocks park in a sliding window (WithWindow) and
// every byte reaching w is contiguous and delivered exactly once. The
// returned stats carry the delivered count in Bytes and the raw
// payload count in WireBytes even when the transfer fails — the
// delivered watermark (offset + Bytes) is the REST offset a
// resume-aware retry restarts from.
func (c *Client) RetrTo(ctx context.Context, name string, w io.Writer, opts ...TransferOption) (TransferStats, error) {
	return c.RetrToAt(ctx, name, w, 0, opts...)
}

// RetrToAt is RetrTo resuming at a byte offset: REST is issued and w
// receives the object's bytes from offset onward.
func (c *Client) RetrToAt(ctx context.Context, name string, w io.Writer, offset int64, opts ...TransferOption) (TransferStats, error) {
	if err := c.applyCallOptions(opts); err != nil {
		return TransferStats{}, err
	}
	const op = "retr_stream"
	sp := c.hub.Span(op, name, telemetry.PhaseSetup)
	c.tagTransferSpan(sp)
	start := time.Now()
	stats, err := c.retrToInner(ctx, name, w, offset, sp)
	c.met.transferDone(op, err, sp.Bytes(), time.Since(start).Seconds())
	c.met.deliveredBytes(op, stats.Bytes)
	sp.End(err)
	return stats, err
}

func (c *Client) retrToInner(ctx context.Context, name string, w io.Writer, offset int64, sp *telemetry.Span) (TransferStats, error) {
	if w == nil {
		return TransferStats{}, errors.New("gridftp: nil sink")
	}
	if offset < 0 {
		return TransferStats{}, errors.New("gridftp: negative restart offset")
	}
	if err := ctx.Err(); err != nil {
		return TransferStats{}, err
	}
	size, err := c.Size(name)
	if err != nil {
		return TransferStats{}, err
	}
	if offset > size {
		return TransferStats{}, errors.New("gridftp: offset beyond object size")
	}
	regionLen := size - offset
	addr, token, err := c.passive()
	if err != nil {
		return TransferStats{}, err
	}
	start := time.Now()
	if offset > 0 {
		if _, err := c.do("REST", fmt.Sprintf("REST %d", offset), 350); err != nil {
			return TransferStats{}, err
		}
	}
	if _, err := c.do("RETR", "RETR "+name, 150); err != nil {
		return TransferStats{}, err
	}
	asm, err := NewWindowAssembler(w, uint64(offset), regionLen, c.windowSize, c.dataTimeout)
	if err != nil {
		c.drainReply() // the server is mid-transfer; consume its verdict
		return TransferStats{}, err
	}
	n := c.parallelism
	sp.SetStreams(n)
	sp.Phase(telemetry.PhaseStream)
	lim := c.xferLimiter()
	set := &connSet{}
	stop := watchCtx(ctx, set, asm.Abort)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := c.dataConn(ctx, addr, token, sp, lim)
			if err != nil {
				errs[i] = err
				asm.Abort(err)
				return
			}
			if !set.add(conn) {
				errs[i] = ctx.Err()
				return
			}
			if _, err := asm.DrainConn(bufio.NewReaderSize(conn, 64<<10)); err != nil {
				errs[i] = err
				asm.Abort(err)
			}
			conn.Close()
		}(i)
	}
	wg.Wait()
	stop()
	sp.Phase(telemetry.PhaseTeardown)
	stats := c.stats(asm.Delivered(), start, n, false)
	stats.WireBytes = asm.WireBytes()
	if err := firstError(ctx, errs); err != nil {
		c.drainReply()
		return stats, err
	}
	if _, err := c.expect("RETR-complete", 226); err != nil {
		return stats, err
	}
	if err := asm.Finish(); err != nil {
		return stats, err
	}
	return stats, nil
}

// StorFrom uploads size bytes read from r (size < 0 when unknown; it
// is informational only). Memory stays bounded at a few MODE E blocks
// per stream regardless of object size.
func (c *Client) StorFrom(ctx context.Context, name string, r io.Reader, size int64, opts ...TransferOption) (TransferStats, error) {
	return c.StorFromAt(ctx, name, r, 0, size, opts...)
}

// StorFromAt is StorFrom resuming at a byte offset: REST is issued and
// r must supply the object's bytes from offset onward — the windowed
// receiver appends them to its partial object.
func (c *Client) StorFromAt(ctx context.Context, name string, r io.Reader, offset, size int64, opts ...TransferOption) (TransferStats, error) {
	if err := c.applyCallOptions(opts); err != nil {
		return TransferStats{}, err
	}
	const op = "stor_stream"
	sp := c.hub.Span(op, name, telemetry.PhaseSetup)
	c.tagTransferSpan(sp)
	start := time.Now()
	stats, err := c.storFromInner(ctx, name, r, offset, sp)
	c.met.transferDone(op, err, sp.Bytes(), time.Since(start).Seconds())
	c.met.deliveredBytes(op, stats.Bytes)
	sp.End(err)
	return stats, err
}

// chunk is one block-size unit of upload work: a payload read from the
// source at an absolute file offset.
type chunk struct {
	off uint64
	buf []byte
	n   int
}

func (c *Client) storFromInner(ctx context.Context, name string, r io.Reader, offset int64, sp *telemetry.Span) (TransferStats, error) {
	if r == nil {
		return TransferStats{}, errors.New("gridftp: nil source")
	}
	if offset < 0 {
		return TransferStats{}, errors.New("gridftp: negative restart offset")
	}
	if err := ctx.Err(); err != nil {
		return TransferStats{}, err
	}
	addr, token, err := c.passive()
	if err != nil {
		return TransferStats{}, err
	}
	start := time.Now()
	if offset > 0 {
		if _, err := c.do("REST", fmt.Sprintf("REST %d", offset), 350); err != nil {
			return TransferStats{}, err
		}
	}
	if _, err := c.do("STOR", "STOR "+name, 150); err != nil {
		return TransferStats{}, err
	}
	n := c.parallelism
	sp.SetStreams(n)
	sp.Phase(telemetry.PhaseStream)
	lim := c.xferLimiter()
	// Upload blocks must fit inside the receiver's reassembly window
	// (a block larger than the window is a protocol error there), so
	// the chunk size follows the client's own window setting: a peer
	// configured symmetrically always accepts our blocks, with room
	// for four in flight before anything parks.
	blockSize := c.windowSize / 4
	if blockSize > 256<<10 {
		blockSize = 256 << 10
	}
	if blockSize < 4<<10 {
		blockSize = 4 << 10
	}
	// The reader goroutine slices r into blocks and hands them to the
	// sender goroutines; the free list caps in-flight buffers at two
	// per stream, which is the upload path's whole memory budget.
	free := make(chan []byte, 2*n)
	for i := 0; i < 2*n; i++ {
		free <- make([]byte, blockSize)
	}
	chunks := make(chan chunk, n)
	stopc := make(chan struct{})
	var stopOnce sync.Once
	stopSend := func() { stopOnce.Do(func() { close(stopc) }) }
	set := &connSet{}
	stopWatch := watchCtx(ctx, set, func(error) { stopSend() })
	var sent int64
	var readErr error
	// readerDone closes before chunks (LIFO defers), so senders that
	// drained a closed chunks channel are guaranteed to observe the
	// reader's final readErr — a source read error can never be
	// mistaken for a clean EOF.
	readerDone := make(chan struct{})
	go func() {
		defer close(chunks)
		defer close(readerDone)
		pos := uint64(offset)
		for {
			var buf []byte
			select {
			case buf = <-free:
			case <-stopc:
				return
			}
			m, err := io.ReadFull(r, buf)
			if m > 0 {
				select {
				case chunks <- chunk{off: pos, buf: buf, n: m}:
					pos += uint64(m)
				case <-stopc:
					return
				}
			}
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF {
					readErr = err
				}
				return
			}
		}
	}()
	var wg sync.WaitGroup
	errs := make([]error, n)
	var sentMu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := c.dataConn(ctx, addr, token, sp, lim)
			if err != nil {
				errs[i] = err
				stopSend()
				return
			}
			if !set.add(conn) {
				errs[i] = ctx.Err()
				return
			}
			defer conn.Close()
			// The buffer coalesces each block's header and payload into
			// one write; it is flushed per block so the sent counter
			// only ever covers bytes that reached the socket.
			bw := bufio.NewWriterSize(conn, 64<<10)
			for ck := range chunks {
				err := WriteBlock(bw, Block{Offset: ck.off, Data: ck.buf[:ck.n]})
				if err == nil {
					// Count payload only after a successful flush: a
					// block parked in the bufio buffer when the
					// transfer dies never crossed the wire, and
					// WireBytes promises exact accounting even on
					// failure.
					err = bw.Flush()
				}
				if err != nil {
					errs[i] = err
					stopSend()
					return
				}
				sentMu.Lock()
				sent += int64(ck.n)
				sentMu.Unlock()
				select {
				case free <- ck.buf:
				case <-stopc:
					errs[i] = ctx.Err()
					return
				}
			}
			if err := WriteBlock(bw, Block{Desc: DescEOD}); err != nil {
				errs[i] = err
				return
			}
			errs[i] = bw.Flush()
		}(i)
	}
	wg.Wait()
	stopWatch()
	stopSend()
	sp.Phase(telemetry.PhaseTeardown)
	stats := c.stats(sent, start, n, false)
	stats.WireBytes = sent
	// Every path past the STOR exchange above lands here, so the
	// server has accepted the upload and begun (or truncated) the named
	// object — the signal resume logic needs before trusting the
	// destination's SIZE as this transfer's watermark.
	stats.StorAccepted = true
	if err := firstError(ctx, errs); err != nil {
		c.drainReply()
		return stats, err
	}
	// Senders completed cleanly, which only happens after the reader
	// closed chunks — and readerDone closes before chunks, so this
	// read of readErr is ordered after its final write. (A reader
	// still blocked on r implies a sender error, caught above.)
	var srcErr error
	select {
	case <-readerDone:
		srcErr = readErr
	default:
	}
	if srcErr != nil {
		c.drainReply()
		return stats, fmt.Errorf("gridftp: reading upload source: %w", srcErr)
	}
	if _, err := c.expect("STOR-complete", 226); err != nil {
		return stats, err
	}
	return stats, nil
}
