package gridftp

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gftpvc/internal/pacing"
	"gftpvc/internal/telemetry"
	"gftpvc/internal/usagestats"
)

// Config configures a Server.
type Config struct {
	// Addr is the control-channel listen address ("127.0.0.1:0" for an
	// ephemeral port).
	Addr string
	// Store is the data backend.
	Store Store
	// Stripes is the number of stripe data movers (>=1). SPAS exposes one
	// data listener per stripe.
	Stripes int
	// BlockSize is the MODE E block payload size (default 256 KiB).
	BlockSize int
	// ServerHost is the identity recorded in usage logs (defaults to the
	// listen address).
	ServerHost string
	// Auth validates credentials; nil accepts any USER/PASS.
	Auth func(user, pass string) bool
	// UsageAddr, when set, is the UDP usage-stats collector to notify at
	// the end of every transfer, as Globus servers do.
	UsageAddr string
	// LogWriter, when set, receives the local transfer log lines.
	LogWriter io.Writer
	// AcceptTimeout bounds how long a transfer waits for the client's
	// data connections (default 10s).
	AcceptTimeout time.Duration
	// DataTimeout bounds each read or write on a data connection
	// (default 30s; negative disables): a stalled peer surfaces as a
	// 426 instead of pinning a transfer goroutine forever.
	DataTimeout time.Duration
	// IdleTimeout bounds how long a session may sit between
	// control-channel commands before the server hangs up (default 5m;
	// negative disables).
	IdleTimeout time.Duration
	// MaxObjectSize caps the size of an object STOR will assemble
	// (default 4 GiB). MODE E frames carry 64-bit offsets, so without a
	// cap a single malicious frame could demand an arbitrary allocation.
	MaxObjectSize int64
	// WindowSize is the sliding reassembly window for streaming STOR
	// receives when Store implements StreamPutter (default 8 MiB;
	// negative disables streaming, falling back to whole-object
	// buffering). It bounds per-transfer receive memory regardless of
	// object size and is the resume granularity: a failed transfer
	// leaves at most one window of received-but-unflushed bytes to
	// re-send.
	WindowSize int
	// DataListen opens the passive data listeners (default net.Listen).
	// Fault-injection and listener-leak tests substitute wrappers here.
	DataListen func(network, addr string) (net.Listener, error)
	// ControlListen opens the control-channel listener (default
	// net.Listen). The C10k bench substitutes an in-memory listener here
	// so session counts are not bounded by the fd table.
	ControlListen func(network, addr string) (net.Listener, error)
	// MaxSessions caps concurrent control-channel sessions; connections
	// beyond the cap are shed with a 421 greeting instead of growing the
	// session table without bound (0 = unlimited).
	MaxSessions int
	// MaxRateBps caps each session's aggregate data-channel rate, in
	// bits per second (0 = unshaped). The cap is enforced by a
	// per-session token bucket shared across all of the session's
	// transfers and parallel streams — including the shared passive
	// data plane — so one session cannot exceed its allocation by
	// opening more connections. SITE RATE lets a client request a
	// lower session rate (e.g. the broker-reserved circuit rate); the
	// effective rate is the request clamped by this cap.
	MaxRateBps int64
	// AggregateRateBps caps the server's total data-plane rate across
	// ALL sessions, in bits per second (0 = uncapped) — the live
	// enforcement of the paper's R, the aggregate DTN capacity that
	// concurrent transfers compete for (Eq. 2). One shared token bucket
	// chokes every data connection the server opens, so N concurrent
	// sessions genuinely divide R between them the way the host model
	// assumes, and a fleet dispatcher can treat R − Σ measured rates as
	// this replica's real headroom.
	AggregateRateBps int64
	// PasvPortRange, when set ("lo-hi"), switches the server from one
	// passive listener per transfer to a pre-opened shared listener pool
	// spanning the range; accepted data connections are demultiplexed to
	// transfers by token match (see demux.go). "0-N" binds N+1 ephemeral
	// ports. Empty keeps the per-transfer listener path.
	PasvPortRange string
	// Telemetry, when set, receives the server's live instrument
	// streams: registry metrics, per-transfer phase spans, and the
	// 30-second per-stripe byte counters. Nil disables instrumentation.
	Telemetry *telemetry.Hub
}

// nConnShards stripes the session registry. At C10k concurrency a
// single registration mutex is the hottest lock in the accept path;
// sixteen shards keyed round-robin cut that contention 16x while Close
// still reaches every session with a bounded sweep.
const nConnShards = 16

// connShard is one stripe of the session registry.
type connShard struct {
	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// Server is a GridFTP server.
type Server struct {
	cfg    Config
	ln     net.Listener
	sender *usagestats.Sender
	met    *srvMetrics
	pasv   *pasvPool
	// agg is the server-wide data-plane bucket (AggregateRateBps); nil
	// when the server's aggregate is uncapped. Shared by every data
	// connection of every session, composed with each session's own
	// bucket in dataConns.
	agg *pacing.Bucket

	wg      sync.WaitGroup
	connSeq atomic.Uint64
	active  atomic.Int64
	closed  atomic.Bool
	shards  [nConnShards]connShard

	mu   sync.Mutex // guards logs only
	logs []usagestats.Record
}

// addConn registers a session connection into its shard; false means
// the server is closing and the connection must not be served.
func (s *Server) addConn(c net.Conn) (int, bool) {
	idx := int(s.connSeq.Add(1) % nConnShards)
	sh := &s.shards[idx]
	sh.mu.Lock()
	// Re-check closed under the shard lock: Close sweeps each shard
	// after storing the flag, so a registration that saw closed==false
	// here is guaranteed to be swept.
	if s.closed.Load() {
		sh.mu.Unlock()
		return 0, false
	}
	if sh.conns == nil {
		sh.conns = make(map[net.Conn]struct{})
	}
	sh.conns[c] = struct{}{}
	sh.mu.Unlock()
	s.met.shardSession(idx, 1)
	return idx, true
}

// dropConn removes a session connection from its shard.
func (s *Server) dropConn(idx int, c net.Conn) {
	sh := &s.shards[idx]
	sh.mu.Lock()
	delete(sh.conns, c)
	sh.mu.Unlock()
	s.met.shardSession(idx, -1)
}

// Serve starts a server. Callers must Close it.
func Serve(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("gridftp: nil store")
	}
	if cfg.Stripes == 0 {
		cfg.Stripes = 1
	}
	if cfg.Stripes < 1 {
		return nil, errors.New("gridftp: stripes must be >= 1")
	}
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 256 << 10
	}
	if cfg.BlockSize < 1 {
		return nil, errors.New("gridftp: block size must be positive")
	}
	if cfg.AcceptTimeout == 0 {
		cfg.AcceptTimeout = 10 * time.Second
	}
	switch {
	case cfg.DataTimeout == 0:
		cfg.DataTimeout = 30 * time.Second
	case cfg.DataTimeout < 0:
		cfg.DataTimeout = 0
	}
	switch {
	case cfg.IdleTimeout == 0:
		cfg.IdleTimeout = 5 * time.Minute
	case cfg.IdleTimeout < 0:
		cfg.IdleTimeout = 0
	}
	if cfg.MaxObjectSize == 0 {
		cfg.MaxObjectSize = 4 << 30
	}
	if cfg.MaxObjectSize < 0 {
		return nil, errors.New("gridftp: max object size must be positive")
	}
	if cfg.MaxRateBps < 0 {
		return nil, errors.New("gridftp: max rate must be >= 0")
	}
	if cfg.AggregateRateBps < 0 {
		return nil, errors.New("gridftp: aggregate rate must be >= 0")
	}
	switch {
	case cfg.WindowSize == 0:
		cfg.WindowSize = 8 << 20
	case cfg.WindowSize < 0:
		cfg.WindowSize = 0
	}
	if cfg.DataListen == nil {
		cfg.DataListen = net.Listen
	}
	if cfg.ControlListen == nil {
		cfg.ControlListen = net.Listen
	}
	ln, err := cfg.ControlListen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	if cfg.ServerHost == "" {
		cfg.ServerHost = ln.Addr().String()
	}
	s := &Server{cfg: cfg, ln: ln, met: newSrvMetrics(cfg.Telemetry)}
	s.agg = pacing.NewBucket(cfg.AggregateRateBps, 0)
	if cfg.PasvPortRange != "" {
		lo, hi, err := parsePasvPortRange(cfg.PasvPortRange)
		if err != nil {
			ln.Close()
			return nil, err
		}
		pool, err := newPasvPool(cfg.DataListen, dataHost(ln.Addr()), lo, hi, cfg.AcceptTimeout, s.met)
		if err != nil {
			ln.Close()
			return nil, err
		}
		s.pasv = pool
	}
	if cfg.UsageAddr != "" {
		snd, err := usagestats.NewSender(cfg.UsageAddr)
		if err != nil {
			if s.pasv != nil {
				s.pasv.close()
			}
			ln.Close()
			return nil, err
		}
		s.sender = snd
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the control-channel address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Records returns a snapshot of the transfer log.
func (s *Server) Records() []usagestats.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]usagestats.Record, len(s.logs))
	copy(out, s.logs)
	return out
}

// Close stops the server and waits for in-flight sessions.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	// Unblock sessions parked on control-channel reads. Registrations
	// racing Close re-check the flag under their shard lock, so every
	// admitted connection is either swept here or refused there.
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for c := range sh.conns {
			c.Close()
		}
		sh.mu.Unlock()
	}
	err := s.ln.Close()
	s.wg.Wait()
	if s.pasv != nil {
		s.pasv.close()
	}
	if s.sender != nil {
		s.sender.Close()
	}
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}

// reject sheds an over-limit connection with a 421 greeting on its own
// goroutine (deadline-bounded) so a blocked writer cannot stall accept.
func (s *Server) reject(conn net.Conn) {
	s.met.sessionRejected()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer conn.Close()
		conn.SetWriteDeadline(time.Now().Add(s.cfg.AcceptTimeout))
		fmt.Fprintf(conn, "421 too many sessions (%d active, limit %d), try again later\r\n",
			s.active.Load(), s.cfg.MaxSessions)
	}()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if max := int64(s.cfg.MaxSessions); max > 0 && s.active.Load() >= max {
			s.reject(conn)
			continue
		}
		idx, ok := s.addConn(conn)
		if !ok {
			conn.Close()
			return
		}
		s.active.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.active.Add(-1)
			s.dropConn(idx, conn)
		}()
	}
}

// dataHost is the host passive data listeners bind and advertise: the
// control listener's IP when it is TCP, loopback otherwise (in-memory
// control listeners have no bindable address).
func dataHost(a net.Addr) string {
	if ta, ok := a.(*net.TCPAddr); ok && ta.IP != nil && !ta.IP.IsUnspecified() {
		return ta.IP.String()
	}
	return "127.0.0.1"
}

// session is one control-channel connection's state.
type session struct {
	srv  *Server
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	user        string
	authed      bool
	binary      bool
	modeE       bool
	parallelism int
	bufferBytes int64

	// passive data listeners, one per stripe (per-transfer listener path).
	passive []net.Listener
	// claim is the shared-listener demux registration for the next
	// transfer (shared passive path, mutually exclusive with passive).
	claim *pasvClaim
	// active mode target (PORT), mutually exclusive with passive.
	activeAddr string
	// activeToken, when nonzero, is the demux token to send as the
	// preamble when dialing activeAddr (the third-party leg toward a
	// shared-passive destination).
	activeToken uint64
	// restartOffset is set by REST and consumed by the next RETR or
	// STOR (resumed sends deliver from the offset onward).
	restartOffset int64
	// trace is the end-to-end trace context bound by SITE TRID; transfer
	// spans on this session link back to the sender's span through it.
	trace telemetry.TraceContext
	// rateBps is the session rate requested by SITE RATE (0 = none);
	// bucket enforces the effective rate — the request clamped by
	// Config.MaxRateBps — across every data connection the session
	// opens. Only the session goroutine mutates these; data-path
	// goroutines capture the bucket pointer at transfer setup.
	rateBps int64
	bucket  *pacing.Bucket
	// pubRate is this session's contribution to the server's shaped-rate
	// gauge (the effective rate last published); only the session
	// goroutine mutates it, and teardown retracts it.
	pubRate int64
}

// effectiveRate resolves the session's shaping rate: the SITE RATE
// request clamped by the server-wide cap; 0 means unshaped.
func (sess *session) effectiveRate() int64 {
	eff := sess.srv.cfg.MaxRateBps
	if sess.rateBps > 0 && (eff == 0 || sess.rateBps < eff) {
		eff = sess.rateBps
	}
	return eff
}

// applyRate rebinds the session bucket to the effective rate. An
// existing bucket is re-rated in place — tokens and debt carry over, so
// re-negotiating mid-session cannot mint a free burst — and shaping is
// only ever dropped when no rate applies at all.
func (sess *session) applyRate() {
	eff := sess.effectiveRate()
	switch {
	case eff <= 0:
		sess.bucket = nil
	case sess.bucket != nil:
		sess.bucket.SetRate(eff)
	default:
		sess.bucket = pacing.NewBucket(eff, 0)
	}
	// Publish the delta into the server's shaped-rate gauge: the summed
	// per-session commitments a fleet registry reads as this replica's
	// already-promised capacity.
	sess.srv.met.shapedRate.Add(eff - sess.pubRate)
	sess.pubRate = eff
}

func (s *Server) handle(conn net.Conn) {
	sess := &session{
		srv:         s,
		conn:        conn,
		r:           bufio.NewReader(conn),
		w:           bufio.NewWriter(conn),
		parallelism: 1,
	}
	sess.applyRate() // engage the server-wide cap before any transfer
	s.met.sessionsTotal.Inc()
	s.met.sessionsActive.Inc()
	s.met.hub.Event("", "session_accepted", conn.RemoteAddr().String())
	defer s.met.sessionsActive.Dec()
	defer func() { s.met.shapedRate.Add(-sess.pubRate) }()
	defer sess.closePassive()
	defer conn.Close()
	sess.reply(220, "gftpvc GridFTP server ready")
	for {
		if idle := s.cfg.IdleTimeout; idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		line, err := sess.r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		verb, arg, _ := strings.Cut(line, " ")
		verb = strings.ToUpper(verb)
		if quit := sess.dispatch(verb, arg); quit {
			return
		}
	}
}

// armWrite bounds control-channel writes so a client that stops reading
// cannot pin the session goroutine.
func (sess *session) armWrite() {
	if idle := sess.srv.cfg.IdleTimeout; idle > 0 {
		sess.conn.SetWriteDeadline(time.Now().Add(idle))
	}
}

func (sess *session) reply(code int, text string) {
	sess.armWrite()
	fmt.Fprintf(sess.w, "%d %s\r\n", code, text)
	sess.w.Flush()
}

func (sess *session) replyLines(code int, lines []string, last string) {
	sess.armWrite()
	for _, l := range lines {
		fmt.Fprintf(sess.w, "%d-%s\r\n", code, l)
	}
	fmt.Fprintf(sess.w, "%d %s\r\n", code, last)
	sess.w.Flush()
}

// dispatch executes one command; it returns true when the session ends.
func (sess *session) dispatch(verb, arg string) bool {
	sess.srv.met.command(verb)
	// Commands allowed before authentication.
	switch verb {
	case "USER":
		sess.user = arg
		sess.reply(331, "password required")
		return false
	case "PASS":
		if sess.srv.cfg.Auth == nil || sess.srv.cfg.Auth(sess.user, arg) {
			sess.authed = true
			sess.reply(230, "user "+sess.user+" logged in")
		} else {
			sess.reply(530, "authentication failed")
		}
		return false
	case "QUIT":
		sess.reply(221, "goodbye")
		return true
	case "NOOP":
		sess.reply(200, "ok")
		return false
	case "SYST":
		sess.reply(215, "UNIX Type: L8")
		return false
	case "FEAT":
		sess.replyLines(211, []string{
			"Extensions supported:",
			" PARALLEL", " SPAS", " SBUF", " SIZE", " MODE E", " ERET", " REST", " CKSM",
		}, "end")
		return false
	}
	if !sess.authed {
		sess.reply(530, "please login with USER and PASS")
		return false
	}
	switch verb {
	case "TYPE":
		if strings.EqualFold(arg, "I") {
			sess.binary = true
			sess.reply(200, "type set to I")
		} else {
			sess.reply(504, "only TYPE I supported")
		}
	case "MODE":
		switch strings.ToUpper(arg) {
		case "E":
			sess.modeE = true
			sess.reply(200, "mode set to E")
		case "S":
			sess.modeE = false
			sess.reply(200, "mode set to S")
		default:
			sess.reply(504, "unknown mode")
		}
	case "SBUF":
		n, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || n < 0 {
			sess.reply(501, "bad buffer size")
			break
		}
		sess.bufferBytes = n
		sess.reply(200, "buffer size set")
	case "OPTS":
		sess.cmdOpts(arg)
	case "PASV":
		sess.cmdPassive(1)
	case "SPAS":
		sess.cmdPassive(sess.srv.cfg.Stripes)
	case "PORT":
		sess.cmdPort(arg)
	case "SIZE":
		n, err := sess.srv.cfg.Store.Size(arg)
		if err != nil {
			sess.reply(550, err.Error())
			break
		}
		sess.reply(213, strconv.FormatInt(n, 10))
	case "CKSM":
		sess.cmdCksm(arg)
	case "NLST":
		names, err := sess.srv.cfg.Store.List(arg)
		if err != nil {
			sess.reply(550, err.Error())
			break
		}
		lines := make([]string, 0, len(names)+1)
		lines = append(lines, "listing")
		for _, n := range names {
			lines = append(lines, " "+n)
		}
		sess.replyLines(250, lines, fmt.Sprintf("%d objects", len(names)))
	case "REST":
		n, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || n < 0 {
			sess.reply(501, "bad restart offset")
			break
		}
		sess.restartOffset = n
		sess.srv.met.hub.Event(sess.trace.TraceID, "rest", "offset="+arg)
		sess.reply(350, "restarting at "+arg+"; send RETR or STOR")
	case "RETR":
		offset := sess.restartOffset
		sess.restartOffset = 0
		sess.cmdRetr(arg, offset, -1)
	case "ERET":
		sess.cmdEret(arg)
	case "STOR":
		offset := sess.restartOffset
		sess.restartOffset = 0
		sess.cmdStor(arg, offset)
	case "SITE":
		sess.cmdSite(arg)
	default:
		sess.reply(502, "command not implemented: "+verb)
	}
	return false
}

// cmdSite handles SITE extensions. SITE TRID <token> binds an
// end-to-end trace context to the session, so subsequent transfer
// spans and flight-recorder events on this server link back to the
// sending process's span. Unknown subcommands get a 500 — the reply
// family clients treat as "old server, degrade silently" — which is
// also what pre-TRID builds of this server said to SITE itself (502).
func (sess *session) cmdSite(arg string) {
	sub, rest, _ := strings.Cut(arg, " ")
	switch strings.ToUpper(sub) {
	case "TRID":
		tc, err := telemetry.ParseTraceToken(strings.TrimSpace(rest))
		if err != nil {
			sess.reply(501, "bad trace token")
			return
		}
		sess.trace = tc
		sess.srv.met.hub.Event(tc.TraceID, "trid_bound", "parent="+tc.ParentSID)
		sess.reply(200, "trace "+tc.TraceID+" bound")
	case "RATE":
		bps, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		if err != nil || bps < 0 {
			sess.reply(501, "bad rate")
			return
		}
		sess.rateBps = bps
		sess.applyRate()
		if eff := sess.effectiveRate(); eff > 0 {
			sess.reply(200, fmt.Sprintf("session shaped to %d bps", eff))
		} else {
			sess.reply(200, "session rate shaping cleared")
		}
	default:
		sess.reply(500, "SITE "+sub+" not understood")
	}
}

// cmdOpts handles "OPTS RETR Parallelism=n;" (the Globus client syntax).
func (sess *session) cmdOpts(arg string) {
	verb, rest, _ := strings.Cut(arg, " ")
	if !strings.EqualFold(verb, "RETR") {
		sess.reply(501, "only OPTS RETR supported")
		return
	}
	for _, opt := range strings.Split(rest, ";") {
		k, v, ok := strings.Cut(strings.TrimSpace(opt), "=")
		if !ok || k == "" {
			continue
		}
		if strings.EqualFold(k, "Parallelism") {
			n, err := strconv.Atoi(strings.Split(v, ",")[0])
			if err != nil || n < 1 || n > 64 {
				sess.reply(501, "bad parallelism")
				return
			}
			sess.parallelism = n
		}
	}
	sess.reply(200, "options accepted")
}

// cmdPassive arranges data-connection targets for the next transfer
// and reports their addresses: PASV (n=1) uses the classic 227
// host-port encoding; SPAS uses the 229 multi-line form with one
// address per stripe. With a shared passive pool the addresses are the
// pre-opened listeners and the reply additionally carries the demux
// token (outside the parenthesized tuple / on a comma-free line, so
// token-unaware parsers still read the addresses); otherwise the
// session opens per-transfer listeners as before.
func (sess *session) cmdPassive(n int) {
	sess.endTransfer()
	if pool := sess.srv.pasv; pool != nil {
		host, _, _ := net.SplitHostPort(sess.conn.RemoteAddr().String())
		expect := sess.parallelism
		if n > 1 {
			expect = n
		}
		cl, err := pool.claim(n, host, expect)
		if err != nil {
			sess.reply(425, "cannot claim data listener: "+err.Error())
			return
		}
		sess.claim = cl
		if n == 1 {
			sess.reply(227, fmt.Sprintf("entering passive mode; token=%016x (%s)",
				cl.token, hostPortString(cl.addrs[0])))
			return
		}
		lines := []string{fmt.Sprintf("Entering striped passive mode token=%016x", cl.token)}
		for _, a := range cl.addrs {
			lines = append(lines, " "+hostPortString(a))
		}
		sess.replyLines(229, lines, "end")
		return
	}
	host := "127.0.0.1"
	if ta, ok := sess.conn.LocalAddr().(*net.TCPAddr); ok {
		host = ta.IP.String()
	}
	for i := 0; i < n; i++ {
		ln, err := sess.srv.cfg.DataListen("tcp", net.JoinHostPort(host, "0"))
		if err != nil {
			sess.closePassive()
			sess.reply(425, "cannot open data listener")
			return
		}
		sess.passive = append(sess.passive, ln)
		sess.srv.met.listenersOpen.Inc()
	}
	if n == 1 {
		sess.reply(227, "entering passive mode ("+hostPortString(sess.passive[0].Addr())+")")
		return
	}
	lines := []string{"Entering striped passive mode"}
	for _, ln := range sess.passive {
		lines = append(lines, " "+hostPortString(ln.Addr()))
	}
	sess.replyLines(229, lines, "end")
}

// cmdPort records an active-mode target in h1,h2,h3,h4,p1,p2 form; the
// server will dial it for the next transfer (the third-party-transfer
// leg). An optional second field carries the destination's demux token
// in hex, to be sent as the preamble when the target is a shared
// passive listener.
func (sess *session) cmdPort(arg string) {
	tuple, tokenHex, _ := strings.Cut(strings.TrimSpace(arg), " ")
	addr, err := parseHostPort(tuple)
	if err != nil {
		sess.reply(501, err.Error())
		return
	}
	var token uint64
	if tokenHex != "" {
		token, err = strconv.ParseUint(strings.TrimSpace(tokenHex), 16, 64)
		if err != nil {
			sess.reply(501, "bad data-channel token")
			return
		}
	}
	sess.endTransfer()
	sess.activeAddr = addr
	sess.activeToken = token
	sess.reply(200, "PORT command successful")
}

// hostPortString renders a TCP address in FTP h1,h2,h3,h4,p1,p2 form.
func hostPortString(a net.Addr) string {
	ta := a.(*net.TCPAddr)
	ip4 := ta.IP.To4()
	if ip4 == nil {
		ip4 = net.IPv4(127, 0, 0, 1).To4()
	}
	return fmt.Sprintf("%d,%d,%d,%d,%d,%d",
		ip4[0], ip4[1], ip4[2], ip4[3], ta.Port/256, ta.Port%256)
}

// parseHostPort parses the FTP h1,h2,h3,h4,p1,p2 form into "ip:port".
func parseHostPort(s string) (string, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	if len(parts) != 6 {
		return "", errors.New("bad host-port")
	}
	nums := make([]int, 6)
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 || n > 255 {
			return "", errors.New("bad host-port")
		}
		nums[i] = n
	}
	ip := fmt.Sprintf("%d.%d.%d.%d", nums[0], nums[1], nums[2], nums[3])
	return net.JoinHostPort(ip, strconv.Itoa(nums[4]*256+nums[5])), nil
}

// dataConns establishes the data connections for a transfer: by accepting
// on the passive listeners (parallelism conns on PASV's single listener,
// or one per SPAS stripe listener) or by dialing the PORT target. Every
// connection is wrapped to count wire bytes into the transfer context,
// the span, and the per-stripe live byte counters.
func (sess *session) dataConns(tx *transferCtx) ([]net.Conn, error) {
	met := sess.srv.met
	dataTimeout := sess.srv.cfg.DataTimeout
	// The session bucket (SITE RATE / Config.MaxRateBps) is shared by
	// every connection wrapped here — the active, shared-passive, and
	// per-transfer-listener paths all shape through this one choke
	// point, so a session's aggregate rate holds no matter how many
	// streams or stripes it opens. The server-wide bucket
	// (AggregateRateBps, the paper's R) composes on top: every byte
	// must clear both, so concurrent sessions divide R between them.
	var lim *pacing.Limiter
	var shaped *telemetry.Counter
	if b, agg := sess.bucket, sess.srv.agg; b != nil || agg != nil {
		lim = pacing.NewLimiter(agg, b)
		shaped = met.shapedBytes(tx.op)
	}
	wrap := func(c net.Conn, stripe string) net.Conn {
		met.dataConns.Inc()
		inner := withIdleTimeout(c, dataTimeout)
		if lim != nil {
			inner = pacing.WrapConn(context.Background(), inner, lim, tx.span.AddThrottleWait)
		}
		return &countingConn{
			Conn:   inner,
			wire:   &tx.wire,
			live:   met.hub.LiveCounter(stripe),
			span:   tx.span,
			shaped: shaped,
		}
	}
	if sess.activeAddr != "" {
		c, err := net.DialTimeout("tcp", sess.activeAddr, sess.srv.cfg.AcceptTimeout)
		if err != nil {
			met.acceptErrors.Inc()
			return nil, err
		}
		if sess.activeToken != 0 {
			// The target is a shared passive listener: route the
			// connection before any payload bytes.
			if err := writeDemuxPreamble(c, sess.activeToken, sess.srv.cfg.AcceptTimeout); err != nil {
				c.Close()
				met.acceptErrors.Inc()
				return nil, err
			}
		}
		return []net.Conn{wrap(c, "active")}, nil
	}
	if cl := sess.claim; cl != nil {
		// Shared passive path: the demux routes this transfer's
		// connections onto the claim queue; drain the expected count.
		want := sess.parallelism
		striped := len(cl.addrs) > 1
		if striped {
			want = len(cl.addrs)
		}
		var conns []net.Conn
		for i := 0; i < want; i++ {
			c, err := cl.next(sess.srv.cfg.AcceptTimeout)
			if err != nil {
				met.acceptErrors.Inc()
				for _, open := range conns {
					open.Close()
				}
				return nil, err
			}
			stripe := "stripe0"
			if striped {
				stripe = fmt.Sprintf("stripe%d", i)
			}
			conns = append(conns, wrap(c, stripe))
		}
		return conns, nil
	}
	if len(sess.passive) == 0 {
		return nil, errors.New("no PASV/SPAS/PORT before transfer")
	}
	var conns []net.Conn
	fail := func(err error) ([]net.Conn, error) {
		met.acceptErrors.Inc()
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}
	accept := func(ln net.Listener, stripe string) error {
		setListenerDeadline(ln, time.Now().Add(sess.srv.cfg.AcceptTimeout))
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		conns = append(conns, wrap(c, stripe))
		return nil
	}
	if len(sess.passive) == 1 {
		for i := 0; i < sess.parallelism; i++ {
			if err := accept(sess.passive[0], "stripe0"); err != nil {
				return fail(err)
			}
		}
		return conns, nil
	}
	for i, ln := range sess.passive {
		if err := accept(ln, fmt.Sprintf("stripe%d", i)); err != nil {
			return fail(err)
		}
	}
	return conns, nil
}

func (sess *session) closePassive() {
	for _, ln := range sess.passive {
		ln.Close()
	}
	sess.srv.met.listenersOpen.Add(-int64(len(sess.passive)))
	sess.passive = nil
	sess.claim.release()
	sess.claim = nil
}

// endTransfer releases a transfer's data targets: every per-transfer
// passive listener is closed and every demux claim is unregistered —
// win or lose, so a session looping transfers does not accumulate open
// sockets or stranded claims — and the PORT target is cleared. All are
// valid for exactly one transfer attempt.
func (sess *session) endTransfer() {
	sess.closePassive()
	sess.activeAddr = ""
	sess.activeToken = 0
}

// beginTransfer opens one transfer attempt's instrumentation: the
// phase span (data_setup -> stream -> teardown) and the wire-byte
// tally the failure path reports as the partial count. With telemetry
// off the span is nil and every operation on it is a no-op.
func (sess *session) beginTransfer(op string, typ usagestats.TransferType, target string) *transferCtx {
	tx := &transferCtx{
		op:    op,
		typ:   typ,
		start: time.Now(),
		span:  sess.srv.met.hub.Span(op, target, telemetry.PhaseSetup),
	}
	if sess.trace.TraceID != "" {
		tx.span.SetTrace(sess.trace.TraceID, sess.trace.ParentSID)
	}
	return tx
}

// failTransfer replies with the failure code and — unlike success-only
// Globus loggers — still emits a usage record carrying the error code
// and the partial byte count, ends the span with an error phase, and
// records the result metrics, so live failure rates are observable.
func (sess *session) failTransfer(tx *transferCtx, code int, msg string) {
	sess.reply(code, msg)
	sess.srv.met.hub.Event(sess.trace.TraceID, "reply_error",
		fmt.Sprintf("%s: %d %s", tx.op, code, msg))
	partial := tx.wire.Load()
	sess.srv.met.transferDone(tx.op, code, partial, time.Since(tx.start).Seconds())
	sess.srv.met.deliveredBytes(tx.op, tx.delivered)
	tx.span.End(fmt.Errorf("%d %s", code, msg))
	sess.logTransfer(tx, partial, code)
}

// finishTransfer logs the completed transfer, replies 226, and closes
// the instrumentation.
func (sess *session) finishTransfer(tx *transferCtx, size int64) {
	sess.logTransfer(tx, size, 0)
	sess.reply(226, "transfer complete")
	sess.srv.met.transferDone(tx.op, 226, tx.wire.Load(), time.Since(tx.start).Seconds())
	delivered := tx.delivered
	if !tx.deliveredSet {
		delivered = size
	}
	sess.srv.met.deliveredBytes(tx.op, delivered)
	tx.span.End(nil)
}

// checkTransferPreconditions enforces TYPE I + MODE E before data moves.
func (sess *session) checkTransferPreconditions(tx *transferCtx) bool {
	if !sess.binary || !sess.modeE {
		sess.failTransfer(tx, 504, "set TYPE I and MODE E first")
		return false
	}
	return true
}

// cmdCksm handles the GridFTP checksum command: "CKSM CRC32 <offset>
// <length> <name>" (length -1 means to EOF), the integrity-verification
// hook transfer managers call after a third-party transfer.
func (sess *session) cmdCksm(arg string) {
	fields := strings.Fields(arg)
	if len(fields) != 4 || !strings.EqualFold(fields[0], "CRC32") {
		sess.reply(504, "syntax: CKSM CRC32 <offset> <length> <name>")
		return
	}
	offset, err1 := strconv.ParseInt(fields[1], 10, 64)
	length, err2 := strconv.ParseInt(fields[2], 10, 64)
	if err1 != nil || err2 != nil || offset < 0 || length < -1 {
		sess.reply(501, "bad checksum region")
		return
	}
	data, err := sess.srv.cfg.Store.Get(fields[3])
	if err != nil {
		sess.reply(550, err.Error())
		return
	}
	if offset > int64(len(data)) {
		sess.reply(551, "offset beyond object size")
		return
	}
	end := int64(len(data))
	if length >= 0 && offset+length < end {
		end = offset + length
	}
	sum := crc32.ChecksumIEEE(data[offset:end])
	sess.reply(213, fmt.Sprintf("%08x", sum))
}

// cmdEret handles GridFTP partial retrieval: "ERET P <offset> <length>
// <name>" streams only the requested byte region, framed with absolute
// file offsets.
func (sess *session) cmdEret(arg string) {
	fields := strings.Fields(arg)
	if len(fields) != 4 || !strings.EqualFold(fields[0], "P") {
		sess.endTransfer()
		sess.reply(501, "syntax: ERET P <offset> <length> <name>")
		return
	}
	offset, err1 := strconv.ParseInt(fields[1], 10, 64)
	length, err2 := strconv.ParseInt(fields[2], 10, 64)
	if err1 != nil || err2 != nil || offset < 0 || length <= 0 {
		sess.endTransfer()
		sess.reply(501, "bad partial region")
		return
	}
	sess.cmdRetr(fields[3], offset, length)
}

// cmdRetr streams an object region to the client across the data
// connections, interleaving MODE E blocks round-robin (stripe i of n
// sends blocks i, i+n, i+2n, ...). offset > 0 serves a restarted or
// partial transfer; length < 0 means to the end of the object.
func (sess *session) cmdRetr(name string, offset, length int64) {
	op := "retr"
	if length >= 0 {
		op = "eret"
	}
	tx := sess.beginTransfer(op, usagestats.Retrieve, name)
	// Rejections (504/550/551), aborts (425/426) and completed transfers
	// alike must release the data listeners; they are per-transfer.
	defer sess.endTransfer()
	if !sess.checkTransferPreconditions(tx) {
		return
	}
	// A ReaderAtStore backend streams stripes straight from the store —
	// per-connection memory is one block, not the object. The wire
	// geometry matches SendFileAt exactly (stripe i sends blocks i,
	// i+n, i+2n, ...), so receivers cannot tell the paths apart. A
	// SnapshotStore pins one object version for the whole transfer, so
	// a concurrent Put can't interleave versions the way per-block
	// store lookups would. Other backends keep the whole-object Get
	// path, which snapshots by copying.
	ras, streaming := sess.srv.cfg.Store.(ReaderAtStore)
	var data []byte
	var size int64
	var src io.ReaderAt
	if ss, ok := sess.srv.cfg.Store.(SnapshotStore); ok {
		r, n, err := ss.SnapshotObject(name)
		if err != nil {
			sess.failTransfer(tx, 550, err.Error())
			return
		}
		if closer, ok := r.(io.Closer); ok {
			// Disk-backed snapshots are open file handles; release the
			// pinned version when the transfer ends, win or lose.
			defer closer.Close()
		}
		src, size, streaming = r, n, true
	} else if streaming {
		n, err := sess.srv.cfg.Store.Size(name)
		if err != nil {
			sess.failTransfer(tx, 550, err.Error())
			return
		}
		src, size = storeReaderAt{s: ras, name: name}, n
	} else {
		d, err := sess.srv.cfg.Store.Get(name)
		if err != nil {
			sess.failTransfer(tx, 550, err.Error())
			return
		}
		data, size = d, int64(len(d))
	}
	if offset > size {
		sess.failTransfer(tx, 551, "offset beyond object size")
		return
	}
	end := size
	if length >= 0 && offset+length < end {
		end = offset + length
	}
	regionLen := end - offset
	sess.reply(150, "opening data connection")
	conns, err := sess.dataConns(tx)
	if err != nil {
		sess.failTransfer(tx, 425, "data connection failed: "+err.Error())
		return
	}
	tx.conns = len(conns)
	tx.span.SetStreams(len(conns))
	tx.span.Phase(telemetry.PhaseStream)
	bs := sess.srv.cfg.BlockSize
	var wg sync.WaitGroup
	errs := make([]error, len(conns))
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c net.Conn) {
			defer wg.Done()
			defer c.Close()
			bw := bufio.NewWriterSize(c, 64<<10)
			if streaming {
				errs[i] = sendStoreRegion(src, bw, offset, regionLen, bs, i*bs, len(conns)*bs)
			} else {
				errs[i] = SendFileAt(bw, data[offset:end], uint64(offset), bs, i*bs, len(conns)*bs)
			}
			if errs[i] == nil {
				errs[i] = bw.Flush()
			}
		}(i, c)
	}
	wg.Wait()
	tx.span.Phase(telemetry.PhaseTeardown)
	for _, e := range errs {
		if e != nil {
			sess.failTransfer(tx, 426, "transfer aborted: "+e.Error())
			return
		}
	}
	sess.finishTransfer(tx, regionLen)
}

// storeReaderAt adapts one object of a ReaderAtStore to io.ReaderAt,
// for stores that stream but don't offer snapshots.
type storeReaderAt struct {
	s    ReaderAtStore
	name string
}

func (r storeReaderAt) ReadAt(p []byte, off int64) (int, error) {
	return r.s.ReadObjectAt(r.name, p, off)
}

// sendStoreRegion streams the object region [offset, offset+length) as
// MODE E blocks read directly from the store, with SendFileAt's stripe
// geometry: region-relative offsets base, base+step, base+2*step, ...
// each carrying up to blockSize bytes framed at absolute file offsets.
// One blockSize buffer is the whole memory footprint.
func sendStoreRegion(s io.ReaderAt, w io.Writer, offset, length int64, blockSize, base, step int) error {
	if blockSize <= 0 {
		return fmt.Errorf("%w: non-positive block size", ErrDataProtocol)
	}
	if base < 0 || step <= 0 {
		return fmt.Errorf("%w: bad stripe geometry base=%d step=%d", ErrDataProtocol, base, step)
	}
	buf := make([]byte, blockSize)
	for off := int64(base); off < length; off += int64(step) {
		n := int64(blockSize)
		if rem := length - off; n > rem {
			n = rem
		}
		m, err := s.ReadAt(buf[:n], offset+off)
		if int64(m) < n {
			if err == nil || err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("gridftp: short store read at %d: %w", offset+off, err)
		}
		if err := WriteBlock(w, Block{Offset: uint64(offset + off), Data: buf[:n]}); err != nil {
			return err
		}
	}
	return WriteBlock(w, Block{Desc: DescEOD})
}

// growBuffer extends buf so it covers [0, end), doubling the capacity
// when a reallocation is needed to keep the copy cost amortized.
func growBuffer(buf []byte, end uint64) []byte {
	if end <= uint64(len(buf)) {
		return buf
	}
	if end <= uint64(cap(buf)) {
		return buf[:end]
	}
	newCap := uint64(cap(buf)) * 2
	if newCap < end {
		newCap = end
	}
	grown := make([]byte, end, newCap)
	copy(grown, buf)
	return grown
}

// cmdStor receives an object from the client over the data connections.
// offset > 0 (REST) resumes a partial object: the windowed path
// delivers from that watermark onward, dropping any overlap the sender
// re-transmits.
func (sess *session) cmdStor(name string, offset int64) {
	tx := sess.beginTransfer("stor", usagestats.Store, name)
	defer sess.endTransfer()
	if !sess.checkTransferPreconditions(tx) {
		return
	}
	if sp, ok := sess.srv.cfg.Store.(StreamPutter); ok && sess.srv.cfg.WindowSize > 0 {
		sess.cmdStorWindowed(tx, sp, name, offset)
		return
	}
	if offset != 0 {
		// The whole-object path has no resume watermark to honor.
		sess.failTransfer(tx, 501, "REST not supported for buffered STOR")
		return
	}
	sess.reply(150, "opening data connection")
	conns, err := sess.dataConns(tx)
	if err != nil {
		sess.failTransfer(tx, 425, "data connection failed: "+err.Error())
		return
	}
	tx.conns = len(conns)
	tx.span.SetStreams(len(conns))
	tx.span.Phase(telemetry.PhaseStream)
	// MODE E frames carry explicit offsets, so the receiver needs no
	// advance size. Each connection reads into a reusable scratch frame
	// and copies straight into the shared object buffer under a lock:
	// no per-block allocation, no retained block list, and peak memory
	// is the object itself rather than twice it.
	maxSize := uint64(sess.srv.cfg.MaxObjectSize)
	var (
		mu  sync.Mutex
		buf []byte
	)
	var wg sync.WaitGroup
	errs := make([]error, len(conns))
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c net.Conn) {
			defer wg.Done()
			defer c.Close()
			br := bufio.NewReaderSize(c, 64<<10)
			var scratch []byte
			for {
				var b Block
				var err error
				b, scratch, err = ReadBlockInto(br, scratch)
				if err != nil {
					errs[i] = err
					return
				}
				if len(b.Data) > 0 {
					if b.Offset > maxSize || uint64(len(b.Data)) > maxSize-b.Offset {
						errs[i] = fmt.Errorf("%w: block at offset %d exceeds the %d-byte object limit",
							ErrDataProtocol, b.Offset, maxSize)
						return
					}
					end := b.Offset + uint64(len(b.Data))
					mu.Lock()
					buf = growBuffer(buf, end)
					copy(buf[b.Offset:end], b.Data)
					mu.Unlock()
				}
				if b.Desc&DescEOD != 0 {
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	tx.span.Phase(telemetry.PhaseTeardown)
	for _, e := range errs {
		if e != nil {
			sess.failTransfer(tx, 426, "transfer aborted: "+e.Error())
			return
		}
	}
	if err := sess.srv.cfg.Store.Put(name, buf); err != nil {
		sess.failTransfer(tx, 552, "store failed: "+err.Error())
		return
	}
	sess.finishTransfer(tx, int64(len(buf)))
}

// regionSink adapts a StreamPutter to the io.Writer a window assembler
// flushes into: writes arrive contiguous and ascending from the
// restart base, so each one commits the next region of the object.
type regionSink struct {
	sp   StreamPutter
	name string
	off  int64
}

func (s *regionSink) Write(p []byte) (int, error) {
	if err := s.sp.PutRegion(s.name, s.off, p); err != nil {
		return 0, err
	}
	s.off += int64(len(p))
	return len(p), nil
}

// cmdStorWindowed receives an object through a bounded reassembly
// window: blocks from all data connections place into one shared
// window, every contiguous run flushes to the store immediately, and a
// connection racing too far ahead parks until the window slides. Peak
// memory is the window, independent of object size — and because
// BeginPut pins the stored object to the delivered watermark, a failed
// transfer leaves a partial whose Size is exactly the restart offset a
// resume-aware client probes for.
func (sess *session) cmdStorWindowed(tx *transferCtx, sp StreamPutter, name string, offset int64) {
	if err := sp.BeginPut(name, offset); err != nil {
		sess.failTransfer(tx, 554, "restart rejected: "+err.Error())
		return
	}
	// Once BeginPut engaged, every failure path must release the store's
	// per-put resources (DirStore's open partial handle). The flushed
	// watermark itself survives the abort — it is the restart offset a
	// resume probes via SIZE.
	abortPut := func() {
		if pa, ok := sp.(PutAborter); ok {
			_ = pa.AbortPut(name)
		}
	}
	sink := &regionSink{sp: sp, name: name, off: offset}
	asm, err := NewWindowAssembler(sink, uint64(offset), -1, sess.srv.cfg.WindowSize, sess.srv.cfg.DataTimeout)
	if err != nil {
		abortPut()
		sess.failTransfer(tx, 451, err.Error())
		return
	}
	if hub := sess.srv.met.hub; hub != nil {
		trace := sess.trace.TraceID
		asm.OnPark = func(off uint64) {
			hub.Event(trace, "block_parked", fmt.Sprintf("%s offset=%d", name, off))
		}
	}
	sess.reply(150, "opening data connection")
	conns, err := sess.dataConns(tx)
	if err != nil {
		abortPut()
		sess.failTransfer(tx, 425, "data connection failed: "+err.Error())
		return
	}
	tx.conns = len(conns)
	tx.span.SetStreams(len(conns))
	tx.span.Phase(telemetry.PhaseStream)
	maxSize := uint64(sess.srv.cfg.MaxObjectSize)
	var wg sync.WaitGroup
	errs := make([]error, len(conns))
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c net.Conn) {
			defer wg.Done()
			defer c.Close()
			br := bufio.NewReaderSize(c, 64<<10)
			var scratch []byte
			for {
				var b Block
				var err error
				b, scratch, err = ReadBlockInto(br, scratch)
				if err == nil && len(b.Data) > 0 {
					// The size cap guards before any window logic so a
					// malicious offset is a prompt 426, never a park.
					if b.Offset > maxSize || uint64(len(b.Data)) > maxSize-b.Offset {
						err = fmt.Errorf("%w: block at offset %d exceeds the %d-byte object limit",
							ErrDataProtocol, b.Offset, maxSize)
					} else {
						err = asm.PlaceBlocking(b)
					}
				}
				if err != nil {
					errs[i] = err
					// Wake siblings parked on the window; first error wins.
					asm.Abort(err)
					return
				}
				if b.Desc&DescEOD != 0 {
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	tx.span.Phase(telemetry.PhaseTeardown)
	tx.delivered, tx.deliveredSet = asm.Delivered(), true
	if asm.DuplicateBytes() > 0 {
		tx.wireRec = asm.WireBytes()
	}
	for _, e := range errs {
		if e != nil {
			abortPut()
			sess.failTransfer(tx, 426, "transfer aborted: "+e.Error())
			return
		}
	}
	if err := asm.Finish(); err != nil {
		abortPut()
		sess.failTransfer(tx, 426, "transfer aborted: "+err.Error())
		return
	}
	size := int64(asm.Flushed())
	if err := sp.FinishPut(name, size); err != nil {
		abortPut()
		sess.failTransfer(tx, 552, "store failed: "+err.Error())
		return
	}
	sess.finishTransfer(tx, size)
}

// logTransfer appends a usage record to the local log and ships it to
// the usage collector, as Globus servers do at the end of each
// transfer. Unlike Globus loggers it also records failed and aborted
// transfers: code >= 400 marks the record failed and size carries the
// partial byte count.
func (sess *session) logTransfer(tx *transferCtx, size int64, code int) {
	t, start, conns := tx.typ, tx.start, tx.conns
	streams := conns
	stripes := 1
	if n := len(sess.passive); n > 1 {
		stripes = n
		streams = 1
	} else if sess.claim != nil && len(sess.claim.addrs) > 1 {
		stripes = len(sess.claim.addrs)
		streams = 1
	}
	if streams < 1 {
		// Transfers rejected before data-channel setup still log.
		streams = 1
	}
	remote, _, _ := net.SplitHostPort(sess.conn.RemoteAddr().String())
	rec := usagestats.Record{
		Type:        t,
		SizeBytes:   size,
		Start:       start.UTC(),
		DurationSec: time.Since(start).Seconds(),
		ServerHost:  sess.srv.cfg.ServerHost,
		RemoteHost:  remote,
		Streams:     streams,
		Stripes:     stripes,
		BufferBytes: sess.bufferBytes,
		BlockBytes:  int64(sess.srv.cfg.BlockSize),
		Code:        code,
		WireBytes:   tx.wireRec,
	}
	if rec.DurationSec <= 0 {
		rec.DurationSec = 1e-6
	}
	srv := sess.srv
	srv.met.usageRecords.Inc()
	srv.mu.Lock()
	srv.logs = append(srv.logs, rec)
	srv.mu.Unlock()
	if srv.cfg.LogWriter != nil {
		fmt.Fprintln(srv.cfg.LogWriter, rec.Marshal())
	}
	if srv.sender != nil {
		// Usage packets are fire-and-forget in Globus too.
		_ = srv.sender.Send(rec)
	}
}
