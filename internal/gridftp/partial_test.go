package gridftp

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestRetrPartial(t *testing.T) {
	store := NewMemStore()
	payload := randomPayload(1 << 20)
	store.Put("data.bin", payload)
	s := startServer(t, Config{Store: store, BlockSize: 16 << 10})
	c := login(t, s.Addr())
	c.SetParallelism(4)
	const off, length = 100_000, 250_000
	got, stats, err := c.RetrPartial("data.bin", off, length)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[off:off+length]) {
		t.Fatal("partial region corrupted")
	}
	if stats.Bytes != length {
		t.Errorf("stats.Bytes = %d, want %d", stats.Bytes, length)
	}
}

func TestRetrPartialBeyondEOF(t *testing.T) {
	store := NewMemStore()
	payload := randomPayload(10_000)
	store.Put("data.bin", payload)
	s := startServer(t, Config{Store: store})
	c := login(t, s.Addr())
	// Region overruns the object: server truncates at EOF.
	got, _, err := c.RetrPartial("data.bin", 8_000, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[8_000:]) {
		t.Fatal("truncated region corrupted")
	}
}

func TestRetrPartialValidation(t *testing.T) {
	s := startServer(t, Config{})
	c := login(t, s.Addr())
	if _, _, err := c.RetrPartial("x", -1, 10); err == nil {
		t.Error("negative offset should fail")
	}
	if _, _, err := c.RetrPartial("x", 0, 0); err == nil {
		t.Error("zero length should fail")
	}
	// Malformed ERET straight on the wire.
	if rep, err := c.cmd("ERET Q 0 10 x"); err != nil || rep.Code != 501 {
		t.Errorf("bad ERET mode: %+v, %v", rep, err)
	}
	if rep, err := c.cmd("ERET P -5 10 x"); err != nil || rep.Code != 501 {
		t.Errorf("bad ERET offset: %+v, %v", rep, err)
	}
	if rep, err := c.cmd("ERET P"); err != nil || rep.Code != 501 {
		t.Errorf("short ERET: %+v, %v", rep, err)
	}
}

func TestRestRestart(t *testing.T) {
	store := NewMemStore()
	payload := randomPayload(512 << 10)
	store.Put("data.bin", payload)
	s := startServer(t, Config{Store: store, BlockSize: 32 << 10})
	c := login(t, s.Addr())
	c.SetParallelism(2)
	// Simulate a failed transfer that got the first 200,000 bytes, then
	// resume from there.
	const resumeAt = 200_000
	rest, _, err := c.RetrFrom("data.bin", resumeAt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest, payload[resumeAt:]) {
		t.Fatal("restarted region corrupted")
	}
	// The restart offset must not leak into the next plain RETR.
	full, _, err := c.Retr("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, payload) {
		t.Fatal("subsequent full RETR affected by earlier REST")
	}
}

func TestRestValidation(t *testing.T) {
	s := startServer(t, Config{})
	c := login(t, s.Addr())
	if _, _, err := c.RetrFrom("x", -1); err == nil {
		t.Error("negative restart should fail client-side")
	}
	if rep, err := c.cmd("REST notanumber"); err != nil || rep.Code != 501 {
		t.Errorf("bad REST: %+v, %v", rep, err)
	}
}

func TestRetrOffsetBeyondSize(t *testing.T) {
	store := NewMemStore()
	store.Put("x", []byte("tiny"))
	s := startServer(t, Config{Store: store})
	c := login(t, s.Addr())
	if _, _, err := c.RetrFrom("x", 100); err == nil {
		t.Error("offset beyond size should fail")
	}
}

// DirStore tests

func TestDirStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := randomPayload(64 << 10)
	if err := ds.Put("sub/dir/data.bin", want); err != nil {
		t.Fatal(err)
	}
	got, err := ds.Get("sub/dir/data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted")
	}
	n, err := ds.Size("sub/dir/data.bin")
	if err != nil || n != int64(len(want)) {
		t.Fatalf("Size = %d, %v", n, err)
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(filepath.Join(dir, "sub", "dir"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1", len(entries))
	}
}

func TestDirStoreMissing(t *testing.T) {
	ds, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get missing: %v", err)
	}
	if _, err := ds.Size("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Size missing: %v", err)
	}
}

func TestDirStoreEscapeRejected(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Path traversal must stay inside the root: "../x" cleans to "x".
	if err := ds.Put("../escape.bin", []byte("x")); err != nil {
		t.Fatalf("cleaned traversal should be confined, got %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "escape.bin")); err != nil {
		t.Error("traversal was not confined to the root")
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape.bin")); err == nil {
		t.Error("object escaped the store root")
	}
	if err := ds.Put("", []byte("x")); err == nil {
		t.Error("empty name should fail")
	}
	if err := ds.Put("a\x00b", []byte("x")); err == nil {
		t.Error("NUL name should fail")
	}
}

func TestDirStoreValidation(t *testing.T) {
	if _, err := NewDirStore("/definitely/not/a/dir"); err == nil {
		t.Error("missing dir should fail")
	}
	f := filepath.Join(t.TempDir(), "f")
	os.WriteFile(f, []byte("x"), 0o644)
	if _, err := NewDirStore(f); err == nil {
		t.Error("file (not dir) should fail")
	}
}

func TestDirStoreSizeOfDirectory(t *testing.T) {
	dir := t.TempDir()
	ds, _ := NewDirStore(dir)
	os.Mkdir(filepath.Join(dir, "sub"), 0o755)
	if _, err := ds.Size("sub"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Size of directory: %v", err)
	}
}

func TestServerWithDirStore(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := randomPayload(256 << 10)
	if err := os.WriteFile(filepath.Join(dir, "data.bin"), want, 0o644); err != nil {
		t.Fatal(err)
	}
	s := startServer(t, Config{Store: ds})
	c := login(t, s.Addr())
	c.SetParallelism(4)
	got, _, err := c.Retr("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted through DirStore")
	}
	// And a STOR lands on disk.
	if _, err := c.Stor("up.bin", want[:1000]); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, "up.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, want[:1000]) {
		t.Fatal("stored payload corrupted")
	}
}

func TestMemStoreList(t *testing.T) {
	m := NewMemStore()
	for _, n := range []string{"run1/a", "run1/b", "run2/c"} {
		m.Put(n, []byte("x"))
	}
	all, err := m.List("")
	if err != nil || len(all) != 3 {
		t.Fatalf("List(\"\") = %v, %v", all, err)
	}
	if all[0] != "run1/a" || all[2] != "run2/c" {
		t.Errorf("not sorted: %v", all)
	}
	r1, _ := m.List("run1/")
	if len(r1) != 2 {
		t.Errorf("List(run1/) = %v", r1)
	}
}

func TestDirStoreList(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"run1/a.nc", "run1/b.nc", "top.nc"} {
		if err := ds.Put(n, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	all, err := ds.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[0] != "run1/a.nc" {
		t.Errorf("List = %v", all)
	}
	sub, _ := ds.List("run1/")
	if len(sub) != 2 {
		t.Errorf("List(run1/) = %v", sub)
	}
}

func TestSyntheticStoreList(t *testing.T) {
	s := &SyntheticStore{ObjectSize: 10}
	names, err := s.List("")
	if err != nil || names != nil {
		t.Errorf("synthetic List = %v, %v", names, err)
	}
}

func TestNLSTOverProtocol(t *testing.T) {
	store := NewMemStore()
	for _, n := range []string{"d/x", "d/y", "z"} {
		store.Put(n, []byte("1"))
	}
	s := startServer(t, Config{Store: store})
	c := login(t, s.Addr())
	names, err := c.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("List = %v", names)
	}
	sub, err := c.List("d/")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 || sub[0] != "d/x" {
		t.Errorf("List(d/) = %v", sub)
	}
	empty, err := c.List("nothing/")
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Errorf("List(nothing/) = %v", empty)
	}
}
