package gridftp

import (
	"fmt"
	"testing"
)

// benchRetr measures end-to-end loopback transfer throughput for a given
// stream count; b.SetBytes makes `go test -bench` report MB/s.
func benchRetr(b *testing.B, streams int, size int) {
	store := NewMemStore()
	payload := randomPayload(size)
	store.Put("bench.bin", payload)
	s, err := Serve(Config{Addr: "127.0.0.1:0", Store: store, BlockSize: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Login("u", "p"); err != nil {
		b.Fatal(err)
	}
	if err := c.SetParallelism(streams); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, _, err := c.Retr("bench.bin")
		if err != nil {
			b.Fatal(err)
		}
		if len(data) != size {
			b.Fatal("short read")
		}
	}
}

func BenchmarkRetr1Stream(b *testing.B) { benchRetr(b, 1, 8<<20) }
func BenchmarkRetr8Stream(b *testing.B) { benchRetr(b, 8, 8<<20) }

func BenchmarkStor4Stream(b *testing.B) {
	s, err := Serve(Config{Addr: "127.0.0.1:0", Store: NewMemStore()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Login("u", "p"); err != nil {
		b.Fatal(err)
	}
	if err := c.SetParallelism(4); err != nil {
		b.Fatal(err)
	}
	payload := randomPayload(8 << 20)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Stor(fmt.Sprintf("up-%d.bin", i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModeEFraming(b *testing.B) {
	payload := randomPayload(1 << 20)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		asm, err := NewAssembler(int64(len(payload)))
		if err != nil {
			b.Fatal(err)
		}
		// Frame and immediately place, simulating the hot data path
		// without sockets.
		const block = 256 << 10
		for off := 0; off < len(payload); off += block {
			end := off + block
			if end > len(payload) {
				end = len(payload)
			}
			if err := asm.Place(Block{Offset: uint64(off), Data: payload[off:end]}); err != nil {
				b.Fatal(err)
			}
		}
		if !asm.Complete() {
			b.Fatal("incomplete")
		}
	}
}
