package gridftp

import (
	"fmt"
	"math"
	"testing"
	"time"

	"gftpvc/internal/faultnet"
	"gftpvc/internal/snmp"
	"gftpvc/internal/telemetry"
	"gftpvc/internal/usagestats"
)

// usagestatsRoundTrip marshals and re-parses one record through the
// key=value log format.
func usagestatsRoundTrip(r usagestats.Record) (usagestats.Record, error) {
	return usagestats.Unmarshal(r.Marshal())
}

// findSpan returns the newest completed span with the given op.
func findSpan(t *testing.T, hub *telemetry.Hub, op string) telemetry.SpanSnapshot {
	t.Helper()
	snaps := hub.Spans().Snapshot()
	for i := len(snaps) - 1; i >= 0; i-- {
		if snaps[i].Op == op {
			return snaps[i]
		}
	}
	t.Fatalf("no completed %q span; have %+v", op, snaps)
	return telemetry.SpanSnapshot{}
}

// waitNoActiveSpans polls until every span has ended — the server's
// handler may still be closing its span when the client returns.
func waitNoActiveSpans(t *testing.T, hub *telemetry.Hub) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for hub.Spans().Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d spans still active", hub.Spans().Active())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// phaseSum asserts the span's phase durations cover its wall time: the
// phases are contiguous by construction, so the sum must match the
// duration to float precision, well inside the 5% acceptance bound.
func phaseSum(t *testing.T, s telemetry.SpanSnapshot) {
	t.Helper()
	sum := 0.0
	for _, ph := range s.Phases {
		sum += ph.DurationSec
	}
	if math.Abs(sum-s.DurationSec) > 0.05*s.DurationSec+1e-9 {
		t.Errorf("span %s: phase durations sum to %v, wall time %v (phases %+v)",
			s.Op, sum, s.DurationSec, s.Phases)
	}
}

// TestTransferSpanPhases: a successful RETR must leave one completed
// server span walking data_setup -> stream -> teardown whose phase
// durations sum to its wall time and whose byte count covers the
// payload (wire bytes include MODE E headers).
func TestTransferSpanPhases(t *testing.T) {
	hub := telemetry.NewHub()
	store := NewMemStore()
	payload := randomPayload(256 << 10)
	store.Put("x", payload)
	s := startServer(t, Config{Store: store, Telemetry: hub})
	c := login(t, s.Addr())
	if _, _, err := c.Retr("x"); err != nil {
		t.Fatal(err)
	}
	waitNoActiveSpans(t, hub)
	span := findSpan(t, hub, "retr")
	if span.Err != "" {
		t.Fatalf("span error = %q", span.Err)
	}
	want := []telemetry.Phase{telemetry.PhaseSetup, telemetry.PhaseStream, telemetry.PhaseTeardown}
	if len(span.Phases) != len(want) {
		t.Fatalf("phases = %+v, want %v", span.Phases, want)
	}
	for i, ph := range span.Phases {
		if ph.Name != want[i] {
			t.Errorf("phase %d = %s, want %s", i, ph.Name, want[i])
		}
	}
	phaseSum(t, span)
	if span.Bytes < int64(len(payload)) {
		t.Errorf("span bytes = %d, want >= %d", span.Bytes, len(payload))
	}
	if span.Streams != 1 {
		t.Errorf("span streams = %d, want 1", span.Streams)
	}
}

// TestSpanClosedUnderFaults re-runs two PR-2 fault-matrix cells — a
// connection reset mid-block and a stalled data accept — and asserts
// the observability contract: no span leaks (Active returns to 0), the
// failed transfer's span carries the error and terminates in the
// zero-length "error" phase, and its phase durations still sum to its
// wall time.
func TestSpanClosedUnderFaults(t *testing.T) {
	faults := []struct {
		name    string
		tracker func() *faultnet.Tracker
	}{
		{"reset-mid-block", func() *faultnet.Tracker {
			return &faultnet.Tracker{PlanFor: func(int) *faultnet.ConnPlan {
				return &faultnet.ConnPlan{ResetReadAfter: 6000, ResetWriteAfter: 6000}
			}}
		}},
		{"accept-stall", func() *faultnet.Tracker {
			return &faultnet.Tracker{AcceptDelay: fmStall}
		}},
	}
	for _, fault := range faults {
		fault := fault
		t.Run(fault.name, func(t *testing.T) {
			hub := telemetry.NewHub()
			store := NewMemStore()
			store.Put("x", randomPayload(256<<10))
			s := startServer(t, Config{Store: store, Stripes: 2, BlockSize: 4 << 10,
				AcceptTimeout: fmAccept, DataTimeout: fmData,
				DataListen: fault.tracker().Listen, Telemetry: hub})
			c := fmLogin(t, s.Addr())
			if _, _, err := c.Retr("x"); err == nil {
				t.Fatal("Retr succeeded under injected fault")
			}
			waitNoActiveSpans(t, hub)
			span := findSpan(t, hub, "retr")
			if span.Err == "" {
				t.Fatal("failed transfer's span has no error")
			}
			last := span.Phases[len(span.Phases)-1]
			if last.Name != telemetry.PhaseError || last.DurationSec != 0 {
				t.Errorf("terminal phase = %+v, want zero-length error", last)
			}
			phaseSum(t, span)
		})
	}
}

// TestLiveCountersFeedSNMPPipeline is the golden round-trip: the live
// byte counters a telemetry-enabled server produces must feed the
// existing internal/snmp correlation code — Eq. 1 OverlapBytes and the
// Table XI CorrelateTotal — with no adapter beyond copying fields.
// Sub-second bins stand in for the production 30-second cadence.
func TestLiveCountersFeedSNMPPipeline(t *testing.T) {
	hub := telemetry.NewHubConfig(0.05, 0)
	store := NewMemStore()
	// Varied object sizes: the correlation needs variance across
	// transfers (identical sizes would zero the Pearson denominator).
	for i := 0; i < 10; i++ {
		store.Put(fmt.Sprintf("obj%d", i), randomPayload((i+1)*8<<10))
	}
	s := startServer(t, Config{Store: store, Telemetry: hub})
	c := login(t, s.Addr())
	const transfers = 100
	for i := 0; i < transfers; i++ {
		if _, _, err := c.Retr(fmt.Sprintf("obj%d", i%10)); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
		if i%10 == 9 {
			time.Sleep(20 * time.Millisecond) // spread across bins
		}
	}
	waitNoActiveSpans(t, hub)

	// Spans are the live analogue of the usage log: one TransferObs each,
	// on the same epoch clock as the counter bins.
	var obs []snmp.TransferObs
	var spanBytes float64
	for _, sp := range hub.Spans().Snapshot() {
		if sp.Op != "retr" || sp.Err != "" {
			continue
		}
		obs = append(obs, snmp.TransferObs{
			StartSec: sp.StartSec, DurSec: sp.DurationSec, Bytes: float64(sp.Bytes),
		})
		spanBytes += float64(sp.Bytes)
	}
	if len(obs) != transfers {
		t.Fatalf("got %d observations, want %d", len(obs), transfers)
	}

	// The counter snapshot drops verbatim into snmp.Counter — this
	// literal is the whole "adapter".
	origin, binSec, bytes := hub.LiveCounter("stripe0").Snapshot()
	ctr := snmp.Counter{Link: "stripe0", Origin: origin, BinSec: binSec, Bytes: bytes}

	// Eq. 1 over the full collection window must account for every wire
	// byte the spans saw (both count the same countingConn writes).
	total, err := ctr.OverlapBytes(0, float64(len(bytes))*binSec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-spanBytes) > 1e-6 {
		t.Fatalf("Eq. 1 over full window = %v bytes, spans saw %v", total, spanBytes)
	}
	// Every transfer interval must resolve against the series.
	for i, o := range obs {
		if _, err := ctr.OverlapBytes(o.StartSec, o.StartSec+o.DurSec); err != nil {
			t.Fatalf("obs %d: %v", i, err)
		}
	}
	// Table XI runs unmodified on the live series.
	row, err := ctr.CorrelateTotal(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(row.All) || row.All < -1 || row.All > 1 {
		t.Fatalf("correlation = %v, want a value in [-1, 1]", row.All)
	}
}

// TestFailedTransfersLogged: failed and aborted transfers must emit
// usage records carrying the final reply code and the partial byte
// count — the satellite bugfix for the success-only logger.
func TestFailedTransfersLogged(t *testing.T) {
	store := NewMemStore()
	store.Put("x", randomPayload(16<<10))
	s := startServer(t, Config{Store: store, AcceptTimeout: 200 * time.Millisecond})
	rs := rawDial(t, s.Addr())
	rs.login(t)

	// 550: object does not exist.
	rs.cmd(t, "PASV", "227")
	rs.cmd(t, "RETR missing.bin", "550")
	// 425: transfer announced, data connection never arrives.
	rs.cmd(t, "PASV", "227")
	rs.cmd(t, "STOR up.bin", "150")
	rs.expect(t, "425")
	// Success for contrast: the historical record shape (Code 0).
	c := login(t, s.Addr())
	if _, _, err := c.Retr("x"); err != nil {
		t.Fatal(err)
	}

	recs := s.Records()
	byCode := map[int]int{}
	for _, r := range recs {
		byCode[r.Code]++
		if r.Failed() {
			if r.SizeBytes < 0 {
				t.Errorf("failed record has negative partial size: %+v", r)
			}
			if err := r.Validate(); err != nil {
				t.Errorf("failed record invalid: %v (%+v)", err, r)
			}
			// Round-trip through the log format preserves the code.
			back, err := usagestatsRoundTrip(r)
			if err != nil {
				t.Errorf("round-trip: %v", err)
			} else if back.Code != r.Code {
				t.Errorf("round-trip code = %d, want %d", back.Code, r.Code)
			}
		}
	}
	if byCode[550] != 1 || byCode[425] != 1 || byCode[0] != 1 {
		t.Fatalf("record codes = %v, want one each of 550, 425, 0", byCode)
	}
}
