package gridftp

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// rawSession drives the control channel directly for failure injection.
type rawSession struct {
	conn net.Conn
	r    *bufio.Reader
}

func rawDial(t *testing.T, addr string) *rawSession {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	rs := &rawSession{conn: conn, r: bufio.NewReader(conn)}
	rs.expect(t, "220")
	return rs
}

func (rs *rawSession) cmd(t *testing.T, line, wantPrefix string) string {
	t.Helper()
	fmt.Fprintf(rs.conn, "%s\r\n", line)
	return rs.expect(t, wantPrefix)
}

func (rs *rawSession) expect(t *testing.T, wantPrefix string) string {
	t.Helper()
	for {
		line, err := rs.r.ReadString('\n')
		if err != nil {
			t.Fatalf("control channel read: %v", err)
		}
		line = strings.TrimRight(line, "\r\n")
		// Skip multi-line bodies ("NNN-").
		if len(line) >= 4 && line[3] == '-' {
			continue
		}
		if !strings.HasPrefix(line, wantPrefix) {
			t.Fatalf("reply %q, want prefix %q", line, wantPrefix)
		}
		return line
	}
}

func (rs *rawSession) login(t *testing.T) {
	t.Helper()
	rs.cmd(t, "USER u", "331")
	rs.cmd(t, "PASS p", "230")
	rs.cmd(t, "TYPE I", "200")
	rs.cmd(t, "MODE E", "200")
}

func TestRetrWithoutDataConnectionTimesOut(t *testing.T) {
	store := NewMemStore()
	store.Put("x", randomPayload(1024))
	s := startServer(t, Config{Store: store, AcceptTimeout: 200 * time.Millisecond})
	rs := rawDial(t, s.Addr())
	rs.login(t)
	rs.cmd(t, "PASV", "227")
	// RETR announced, but the client never opens the data connection:
	// the server must time out with 425, not hang.
	start := time.Now()
	rs.cmd(t, "RETR x", "150")
	rs.expect(t, "425")
	if time.Since(start) > 5*time.Second {
		t.Error("timeout took too long")
	}
	// The session stays usable afterwards.
	rs.cmd(t, "NOOP", "200")
}

func TestRetrWithoutPassiveRejected(t *testing.T) {
	store := NewMemStore()
	store.Put("x", randomPayload(16))
	s := startServer(t, Config{Store: store})
	rs := rawDial(t, s.Addr())
	rs.login(t)
	rs.cmd(t, "RETR x", "150")
	rs.expect(t, "425") // no PASV/SPAS/PORT issued
}

func TestClientAbortsMidTransfer(t *testing.T) {
	store := NewMemStore()
	store.Put("big", randomPayload(8<<20))
	s := startServer(t, Config{Store: store, BlockSize: 64 << 10})
	rs := rawDial(t, s.Addr())
	rs.login(t)
	reply := rs.cmd(t, "PASV", "227")
	open := strings.Index(reply, "(")
	closeIdx := strings.LastIndex(reply, ")")
	addr, err := parseHostPort(reply[open+1 : closeIdx])
	if err != nil {
		t.Fatal(err)
	}
	rs.cmd(t, "RETR big", "150")
	dc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Read a little, then slam the connection shut mid-stream.
	buf := make([]byte, 32<<10)
	if _, err := dc.Read(buf); err != nil {
		t.Fatal(err)
	}
	dc.Close()
	line := rs.expect(t, "") // either 426 (abort seen) or 226 (already buffered)
	if !strings.HasPrefix(line, "426") && !strings.HasPrefix(line, "226") {
		t.Fatalf("reply after abort = %q", line)
	}
	// Control channel survives; a fresh transfer works.
	rs.cmd(t, "NOOP", "200")
}

func TestStorClientDiesMidUpload(t *testing.T) {
	s := startServer(t, Config{Store: NewMemStore(), AcceptTimeout: 500 * time.Millisecond})
	rs := rawDial(t, s.Addr())
	rs.login(t)
	reply := rs.cmd(t, "PASV", "227")
	open := strings.Index(reply, "(")
	closeIdx := strings.LastIndex(reply, ")")
	addr, err := parseHostPort(reply[open+1 : closeIdx])
	if err != nil {
		t.Fatal(err)
	}
	rs.cmd(t, "STOR up.bin", "150")
	dc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Send a partial frame (header promising more bytes than delivered).
	WriteBlock(dc, Block{Offset: 0, Data: randomPayload(1024)})
	hdr := []byte{0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 4}
	dc.Write(hdr) // promises 65536 bytes, sends none
	dc.Close()
	rs.expect(t, "426")
	rs.cmd(t, "NOOP", "200")
}

func TestGarbageControlChannelInput(t *testing.T) {
	s := startServer(t, Config{})
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	if _, err := r.ReadString('\n'); err != nil { // greeting
		t.Fatal(err)
	}
	// Binary junk followed by a valid command: the server should keep
	// parsing line by line without crashing.
	conn.Write([]byte("\x00\x01\x02 binary junk\r\nNOOP\r\n"))
	deadline := time.Now().Add(2 * time.Second)
	conn.SetReadDeadline(deadline)
	saw200 := false
	for time.Now().Before(deadline) {
		line, err := r.ReadString('\n')
		if err != nil {
			break
		}
		if strings.HasPrefix(line, "200") {
			saw200 = true
			break
		}
	}
	if !saw200 {
		t.Error("server did not recover from garbage input")
	}
}

func TestManyConcurrentSessions(t *testing.T) {
	store := NewMemStore()
	store.Put("x", randomPayload(128<<10))
	s := startServer(t, Config{Store: store})
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			c, err := Dial(s.Addr())
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			if err := c.Login("u", "p"); err != nil {
				done <- err
				return
			}
			if err := c.SetParallelism(2); err != nil {
				done <- err
				return
			}
			for j := 0; j < 3; j++ {
				if _, _, err := c.Retr("x"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Records()); got != 24 {
		t.Errorf("server logged %d transfers, want 24", got)
	}
}
