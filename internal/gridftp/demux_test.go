package gridftp

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"gftpvc/internal/faultnet"
	"gftpvc/internal/telemetry"
)

// sharedServer starts a server on a shared passive-listener pool.
func sharedServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.PasvPortRange == "" {
		cfg.PasvPortRange = "0-1"
	}
	return startServer(t, cfg)
}

func TestParsePasvPortRange(t *testing.T) {
	for _, bad := range []string{"", "x", "5", "10-5", "-1-4", "0-70000", "a-b"} {
		if _, _, err := parsePasvPortRange(bad); err == nil {
			t.Errorf("parsePasvPortRange(%q) should fail", bad)
		}
	}
	lo, hi, err := parsePasvPortRange("0-3")
	if err != nil || lo != 0 || hi != 3 {
		t.Fatalf("parsePasvPortRange(0-3) = %d, %d, %v", lo, hi, err)
	}
}

// TestSharedPassiveTransfers drives the full client surface against a
// shared passive pool: parallel-stream RETR and STOR demultiplex onto
// the pre-opened listeners by token instead of per-transfer listeners.
func TestSharedPassiveTransfers(t *testing.T) {
	hub := telemetry.NewHub()
	store := NewMemStore()
	want := randomPayload(1 << 20)
	store.Put("data.bin", want)
	s := sharedServer(t, Config{Store: store, Telemetry: hub})
	c := login(t, s.Addr())
	if err := c.SetParallelism(3); err != nil {
		t.Fatal(err)
	}
	got, stats, err := c.Retr("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted through the demux")
	}
	if stats.Streams != 3 {
		t.Errorf("streams = %d, want 3", stats.Streams)
	}
	if _, err := c.Stor("up.bin", want); err != nil {
		t.Fatal(err)
	}
	back, _ := store.Get("up.bin")
	if !bytes.Equal(back, want) {
		t.Fatal("uploaded payload corrupted through the demux")
	}
	// No per-transfer listeners were opened; every data conn was routed.
	if n := hub.Gauge("gridftp_server_passive_listeners_open",
		"Per-transfer passive data listeners currently open.").Value(); n != 0 {
		t.Errorf("per-transfer listeners open = %d, want 0", n)
	}
	if n := hub.Counter("gridftp_pasv_demux_routed_total",
		"Data connections routed to a waiting transfer by token match.").Value(); n != 6 {
		t.Errorf("routed = %d, want 6 (3 retr + 3 stor)", n)
	}
}

func TestSharedPassiveStriped(t *testing.T) {
	store := NewMemStore()
	want := randomPayload(512 << 10)
	store.Put("data.bin", want)
	s := sharedServer(t, Config{Store: store, Stripes: 3, PasvPortRange: "0-2"})
	c := login(t, s.Addr())
	got, stats, err := c.RetrStriped("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("striped payload corrupted through the demux")
	}
	if stats.Stripes != 3 {
		t.Errorf("stripes = %d, want 3", stats.Stripes)
	}
	if _, err := c.StorStriped("up.bin", want); err != nil {
		t.Fatal(err)
	}
	back, _ := store.Get("up.bin")
	if !bytes.Equal(back, want) {
		t.Fatal("striped upload corrupted through the demux")
	}
}

// TestSharedPassiveThirdParty moves an object server-to-server where
// the destination runs the shared pool: the source server presents the
// destination's demux token via the extended PORT command.
func TestSharedPassiveThirdParty(t *testing.T) {
	srcStore := NewMemStore()
	want := randomPayload(768 << 10)
	srcStore.Put("obj", want)
	src := sharedServer(t, Config{Store: srcStore})
	dstStore := NewMemStore()
	dst := sharedServer(t, Config{Store: dstStore})
	cs := login(t, src.Addr())
	cd := login(t, dst.Addr())
	if err := ThirdParty(cs, cd, "obj", "copy"); err != nil {
		t.Fatal(err)
	}
	got, _ := dstStore.Get("copy")
	if !bytes.Equal(got, want) {
		t.Fatal("third-party payload corrupted through the demux")
	}
}

// TestSharedPassiveUnroutable proves the demux sheds connections that
// never present a valid preamble: wrong magic and unknown tokens are
// closed and counted, and the claiming transfer still times out into a
// clean 425 rather than receiving a stranger's connection.
func TestSharedPassiveUnroutable(t *testing.T) {
	hub := telemetry.NewHub()
	store := NewMemStore()
	store.Put("data.bin", randomPayload(4 << 10))
	s := sharedServer(t, Config{Store: store, Telemetry: hub,
		AcceptTimeout: 300 * time.Millisecond})
	c := login(t, s.Addr())
	addr, token, err := c.passive()
	if err != nil {
		t.Fatal(err)
	}
	if token == 0 {
		t.Fatal("shared-pool PASV reply carried no token")
	}
	// Wrong magic: closed immediately.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.Write([]byte("NOTMAGIC00000000"))
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("bad-magic connection was not closed")
	}
	// Valid magic, unknown token: closed too.
	raw2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw2.Close()
	if err := writeDemuxPreamble(raw2, token^0xdeadbeef, time.Second); err != nil {
		t.Fatal(err)
	}
	raw2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw2.Read(make([]byte, 1)); err == nil {
		t.Fatal("unknown-token connection was not closed")
	}
	// The claim is still pending; a RETR now times out waiting for a
	// legitimate connection and fails clean.
	rep, err := c.cmd("RETR data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != 150 {
		t.Fatalf("reply = %d %s, want 150", rep.Code, rep.Text)
	}
	rep, err = c.readReply()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != 425 {
		t.Fatalf("reply = %d %s, want 425", rep.Code, rep.Text)
	}
	for _, reason := range []string{"magic", "unknown_token"} {
		if n := hub.Counter("gridftp_pasv_demux_rejected_total",
			"Shared-listener data connections closed unrouted, by reason.",
			telemetry.L("reason", reason)).Value(); n != 1 {
			t.Errorf("rejected{%s} = %d, want 1", reason, n)
		}
	}
}

// TestSharedPassiveFaultMatrix re-runs the PR-2 fault shapes against
// the shared demux: reset and truncation mid-stream, and an accept
// stall that outlives the accept timeout. Every case must fail the
// transfer cleanly and leave both the session and the demux usable for
// a following clean transfer.
func TestSharedPassiveFaultMatrix(t *testing.T) {
	payload := randomPayload(256 << 10)
	faults := []struct {
		name    string
		tracker *faultnet.Tracker
	}{
		{"reset-mid-block", &faultnet.Tracker{PlanFor: func(int) *faultnet.ConnPlan {
			return &faultnet.ConnPlan{ResetReadAfter: 6000, ResetWriteAfter: 6000}
		}}},
		{"truncated-eof-frame", &faultnet.Tracker{PlanFor: func(int) *faultnet.ConnPlan {
			return &faultnet.ConnPlan{TruncateReadAfter: 6000, TruncateWriteAfter: 6000}
		}}},
		// The shared accept loops park in Accept between conns, so a
		// short stall can be pre-paid before a transfer even starts;
		// stall far beyond the whole test's claim windows to guarantee
		// every data conn misses its accept timeout.
		{"accept-stall", &faultnet.Tracker{AcceptDelay: 2 * time.Second}},
	}
	for _, fault := range faults {
		fault := fault
		t.Run(fault.name, func(t *testing.T) {
			t.Parallel()
			store := NewMemStore()
			store.Put("x", payload)
			// The fault plans wrap the shared listeners themselves, so
			// every routed conn (and the preamble read, for the stall)
			// crosses the injected fault.
			s := sharedServer(t, Config{Store: store, BlockSize: 4 << 10,
				AcceptTimeout: fmAccept, DataTimeout: fmData,
				DataListen: fault.tracker.Listen})
			c := fmLogin(t, s.Addr())
			if _, _, err := c.Retr("x"); err == nil {
				t.Fatal("faulted retr should fail")
			}
			if _, err := c.Stor("up.bin", payload); err == nil {
				t.Fatal("faulted stor should fail")
			}
			// The accept stall fires per accept; later transfers on this
			// server stall again, so only the fault-free shapes check
			// session recovery with a clean follow-up transfer.
			if fault.tracker.PlanFor != nil {
				// After the planned byte budget the tracker's later conns
				// still carry the same plan, so recovery is proven on a
				// second, clean server instead.
				clean := sharedServer(t, Config{Store: store, BlockSize: 4 << 10,
					AcceptTimeout: fmAccept, DataTimeout: fmData})
				c2 := fmLogin(t, clean.Addr())
				got, _, err := c2.Retr("x")
				if err != nil {
					t.Fatalf("clean retr after faults: %v", err)
				}
				if !bytes.Equal(got, payload) {
					t.Fatal("clean payload corrupted")
				}
			}
			// Either way the faulted session's control channel must have
			// stayed in sync: a metadata command still round-trips.
			if _, err := c.Size("x"); err != nil {
				t.Fatalf("control channel desynced by data fault: %v", err)
			}
		})
	}
}

// TestSharedPassiveLeakDrill loops 100 transfers through the shared
// pool and proves the fixed listener set is all that ever exists, no
// claims are stranded, and closing the server releases everything.
func TestSharedPassiveLeakDrill(t *testing.T) {
	tracker := &faultnet.Tracker{}
	store := NewMemStore()
	want := randomPayload(64 << 10)
	store.Put("obj", want)
	cfg := Config{Addr: "127.0.0.1:0", Store: store, PasvPortRange: "0-3",
		DataListen: tracker.Listen}
	s, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			s.Close()
		}
	}()
	c := login(t, s.Addr())
	if err := c.SetParallelism(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			got, _, err := c.Retr("obj")
			if err != nil {
				t.Fatalf("retr %d: %v", i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("retr %d corrupted", i)
			}
		} else {
			if _, err := c.Stor(fmt.Sprintf("up%d", i), want); err != nil {
				t.Fatalf("stor %d: %v", i, err)
			}
		}
	}
	if open, total := tracker.Open(), tracker.Total(); open != 4 || total != 4 {
		t.Fatalf("listeners open=%d total=%d, want the 4 shared ones and nothing else", open, total)
	}
	s.pasv.mu.Lock()
	pending := len(s.pasv.claims)
	s.pasv.mu.Unlock()
	if pending != 0 {
		t.Fatalf("%d claims still registered after all transfers", pending)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	closed = true
	if open := tracker.Open(); open != 0 {
		t.Fatalf("%d shared listeners still open after Close", open)
	}
}

// TestMaxSessionsSheds proves the session cap: connections beyond
// MaxSessions get a 421 greeting and a count on the rejection metric,
// and capacity freed by a closing session is reusable.
func TestMaxSessionsSheds(t *testing.T) {
	hub := telemetry.NewHub()
	s := startServer(t, Config{Store: NewMemStore(), MaxSessions: 2, Telemetry: hub})
	c1 := login(t, s.Addr())
	c2 := login(t, s.Addr())
	_, _ = c1, c2
	_, err := Dial(s.Addr())
	if err == nil {
		t.Fatal("third session should be shed")
	}
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Reply.Code != 421 {
		t.Fatalf("err = %v, want a 421 greeting", err)
	}
	if !strings.Contains(pe.Reply.Text, "too many sessions") {
		t.Errorf("greeting = %q", pe.Reply.Text)
	}
	if n := hub.Counter("gridftp_sessions_rejected_total",
		"Connections shed with a 421 greeting by the MaxSessions cap.").Value(); n != 1 {
		t.Errorf("rejected = %d, want 1", n)
	}
	c2.Close()
	// The freed slot becomes visible when the handler goroutine exits;
	// poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c3, err := Dial(s.Addr())
		if err == nil {
			c3.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Shard gauges sum to the active session count (c1 plus transient).
	var active int64
	for i := 0; i < nConnShards; i++ {
		active += hub.Gauge("gridftp_sessions_active",
			"Control-channel sessions currently open, by registry shard.",
			telemetry.L("shard", fmt.Sprintf("%d", i))).Value()
	}
	if active < 1 {
		t.Errorf("summed shard gauges = %d, want >= 1", active)
	}
}

// TestNoopResetsIdleTimeout pins the keepalive contract the connection
// pool depends on: a session sending only NOOPs must survive 3x the
// server's IdleTimeout, while a mute session is reaped.
func TestNoopResetsIdleTimeout(t *testing.T) {
	const idle = 300 * time.Millisecond
	store := NewMemStore()
	store.Put("obj", []byte("hello"))
	s := startServer(t, Config{Store: store, IdleTimeout: idle})
	kept := login(t, s.Addr())
	mute := login(t, s.Addr())
	deadline := time.Now().Add(3*idle + idle/2)
	for time.Now().Before(deadline) {
		if err := kept.Noop(); err != nil {
			t.Fatalf("NOOP during idle window: %v", err)
		}
		time.Sleep(idle / 3)
	}
	if _, err := kept.Size("obj"); err != nil {
		t.Fatalf("keepalive session reaped despite NOOPs: %v", err)
	}
	// The mute session sat out > 3x IdleTimeout and must be gone —
	// proving the NOOPs above were what kept the other session alive.
	if _, err := mute.Size("obj"); err == nil {
		t.Fatal("idle session survived without keepalive; IdleTimeout not enforced")
	}
}
