package gridftp

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"gftpvc/internal/faultnet"
)

// Matrix timing constants: the client deadlines, the server's accept
// and data deadlines, and the injected accept stall. The stall must
// exceed the accept timeout (so the server reports 425) and the control
// timeout must exceed the stall (so the client's drain catches the 425).
const (
	fmControl = 600 * time.Millisecond
	fmData    = 250 * time.Millisecond
	fmAccept  = 250 * time.Millisecond
	fmStall   = 500 * time.Millisecond
)

// fmLogin dials with the matrix deadlines and authenticates.
func fmLogin(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, WithControlTimeout(fmControl), WithDataTimeout(fmData))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.conn.Close() })
	if err := c.Login("u", "p"); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFaultMatrix crosses every client transfer entry point with every
// injected fault, against both a RAM-backed and a disk-backed server.
// Each cell must (a) return an error, (b) do so within the configured
// deadlines, and (c) for data-path faults, leave the control channel in
// sync so the session remains usable — the paper's REST-restart and
// setup-delay failure scenarios in miniature. The store axis pins that
// the DirStore's streaming write path fails exactly as gracefully as
// the in-memory one: no deadline escape, no desync, no stuck partial
// handle blocking the next command.
func TestFaultMatrix(t *testing.T) {
	planned := func(plan faultnet.ConnPlan) func() *faultnet.Tracker {
		return func() *faultnet.Tracker {
			return &faultnet.Tracker{PlanFor: func(int) *faultnet.ConnPlan { p := plan; return &p }}
		}
	}
	stores := []struct {
		name string
		make func(t *testing.T) Store
	}{
		{"mem", func(t *testing.T) Store { return NewMemStore() }},
		{"dir", func(t *testing.T) Store {
			d, err := NewDirStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return d
		}},
	}
	faults := []struct {
		name     string
		tracker  func() *faultnet.Tracker
		stallCtl bool
	}{
		{name: "reset-mid-block",
			tracker: planned(faultnet.ConnPlan{ResetReadAfter: 6000, ResetWriteAfter: 6000})},
		{name: "truncated-eof-frame",
			tracker: planned(faultnet.ConnPlan{TruncateReadAfter: 6000, TruncateWriteAfter: 6000})},
		{name: "accept-stall",
			tracker: func() *faultnet.Tracker { return &faultnet.Tracker{AcceptDelay: fmStall} }},
		{name: "control-stall", stallCtl: true},
	}
	payload := randomPayload(256 << 10)
	ops := []struct {
		name       string
		thirdParty bool
		run        func(c *Client) error
	}{
		{name: "retr", run: func(c *Client) error { _, _, err := c.Retr("x"); return err }},
		{name: "retr-striped", run: func(c *Client) error { _, _, err := c.RetrStriped("x"); return err }},
		{name: "eret", run: func(c *Client) error { _, _, err := c.RetrPartial("x", 1000, 100_000); return err }},
		{name: "rest-retr", run: func(c *Client) error { _, _, err := c.RetrFrom("x", 1000); return err }},
		{name: "stor", run: func(c *Client) error { _, err := c.Stor("up.bin", payload); return err }},
		{name: "stor-striped", run: func(c *Client) error { _, err := c.StorStriped("up.bin", payload); return err }},
		{name: "third-party", thirdParty: true},
	}
	for _, st := range stores {
		for _, fault := range faults {
			for _, op := range ops {
				st, fault, op := st, fault, op
				t.Run(st.name+"/"+op.name+"/"+fault.name, func(t *testing.T) {
					t.Parallel()
					newServer := func(faulted bool) *Server {
						store := st.make(t)
						if err := store.Put("x", payload); err != nil {
							t.Fatal(err)
						}
						cfg := Config{Store: store, Stripes: 2, BlockSize: 4 << 10,
							AcceptTimeout: fmAccept, DataTimeout: fmData}
						if faulted && fault.tracker != nil {
							cfg.DataListen = fault.tracker().Listen
						}
						return startServer(t, cfg)
					}
					var clients []*Client
					var run func() error
					if op.thirdParty {
						src := newServer(false)
						dst := newServer(true) // data faults land on the receiving side
						var dstProxy *faultnet.Proxy
						dstAddr := dst.Addr()
						if fault.stallCtl {
							p, err := faultnet.NewProxy(dstAddr)
							if err != nil {
								t.Fatal(err)
							}
							t.Cleanup(func() { p.Close() })
							dstProxy = p
							dstAddr = p.Addr()
						}
						cSrc := fmLogin(t, src.Addr())
						cDst := fmLogin(t, dstAddr)
						clients = []*Client{cSrc, cDst}
						if dstProxy != nil {
							dstProxy.Stall()
						}
						run = func() error { return ThirdParty(cSrc, cDst, "x", "out.bin") }
					} else {
						s := newServer(true)
						addr := s.Addr()
						var proxy *faultnet.Proxy
						if fault.stallCtl {
							p, err := faultnet.NewProxy(addr)
							if err != nil {
								t.Fatal(err)
							}
							t.Cleanup(func() { p.Close() })
							proxy = p
							addr = p.Addr()
						}
						c := fmLogin(t, addr)
						if err := c.SetParallelism(2); err != nil {
							t.Fatal(err)
						}
						clients = []*Client{c}
						if proxy != nil {
							proxy.Stall()
						}
						run = func() error { return op.run(c) }
					}
					start := time.Now()
					err := run()
					elapsed := time.Since(start)
					if err == nil {
						t.Fatal("operation succeeded under injected fault")
					}
					if elapsed > 3*time.Second {
						t.Fatalf("operation took %v under fault; deadlines did not bound it", elapsed)
					}
					if !fault.stallCtl {
						// Data-path faults must leave every control channel in
						// sync: the next command gets its own reply, not a stale
						// transfer status.
						for i, c := range clients {
							rep, err := c.cmd("NOOP")
							if err != nil || rep.Code != 200 {
								t.Fatalf("client %d desynced after fault: %+v, %v", i, rep, err)
							}
						}
					}
				})
			}
		}
	}
}

// TestClientMethodsBoundedOnSilentServer is the acceptance gate for the
// deadline plumbing: against a server that greets and then never
// replies again, every Client method must return an error within 2× the
// configured deadline.
func TestClientMethodsBoundedOnSilentServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				fmt.Fprintf(conn, "220 silent server ready\r\n")
				io.Copy(io.Discard, conn) // consume commands, reply to nothing
				conn.Close()
			}(conn)
		}
	}()
	const d = 400 * time.Millisecond
	small := []byte("payload")
	methods := []struct {
		name    string
		call    func(c *Client) error
		wantErr bool
	}{
		{"Login", func(c *Client) error { return c.Login("u", "p") }, true},
		{"SetParallelism", func(c *Client) error { return c.SetParallelism(2) }, true},
		{"SetBuffer", func(c *Client) error { return c.SetBuffer(1 << 20) }, true},
		{"Size", func(c *Client) error { _, err := c.Size("x"); return err }, true},
		{"Checksum", func(c *Client) error { _, err := c.Checksum("x"); return err }, true},
		{"List", func(c *Client) error { _, err := c.List(""); return err }, true},
		{"Features", func(c *Client) error { _, err := c.Features(); return err }, true},
		{"Retr", func(c *Client) error { _, _, err := c.Retr("x"); return err }, true},
		{"RetrStriped", func(c *Client) error { _, _, err := c.RetrStriped("x"); return err }, true},
		{"RetrPartial", func(c *Client) error { _, _, err := c.RetrPartial("x", 0, 10); return err }, true},
		{"RetrFrom", func(c *Client) error { _, _, err := c.RetrFrom("x", 0); return err }, true},
		{"Stor", func(c *Client) error { _, err := c.Stor("x", small); return err }, true},
		{"StorStriped", func(c *Client) error { _, err := c.StorStriped("x", small); return err }, true},
		{"ThirdParty", func(c *Client) error {
			c2, err := Dial(c.conn.RemoteAddr().String(), WithControlTimeout(d), WithDataTimeout(d))
			if err != nil {
				return err
			}
			defer c2.conn.Close()
			return ThirdParty(c, c2, "x", "y")
		}, true},
		// Close sends QUIT; it must not hang even though the reply never
		// comes (the conn teardown itself reports no error).
		{"Close", func(c *Client) error { c.Close(); return errBounded }, true},
	}
	for _, m := range methods {
		m := m
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			c, err := Dial(ln.Addr().String(), WithControlTimeout(d), WithDataTimeout(d))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.conn.Close() })
			start := time.Now()
			err = m.call(c)
			elapsed := time.Since(start)
			if m.wantErr && err == nil {
				t.Fatal("method succeeded against a silent server")
			}
			if elapsed >= 2*d {
				t.Fatalf("returned after %v, want < %v (2x deadline)", elapsed, 2*d)
			}
		})
	}
}

// errBounded is a sentinel for matrix entries that only assert timing.
var errBounded = errors.New("bounded")

// TestRetrBoundedWhenServerDiesMidTransfer scripts a server that sends
// half a MODE E frame and then freezes with both channels open — the
// worst case for the old client, which hung first on the data read and
// then forever on the reply drain. Now the error path is bounded by
// data timeout + control timeout, and the undrained channel is marked
// desynced instead of silently mismatching replies.
func TestRetrBoundedWhenServerDiesMidTransfer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dataLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return
		}
		defer dataLn.Close()
		br := bufio.NewReader(conn)
		fmt.Fprintf(conn, "220 moribund server ready\r\n")
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return
			}
			verb, _, _ := strings.Cut(strings.TrimRight(line, "\r\n"), " ")
			switch strings.ToUpper(verb) {
			case "USER":
				fmt.Fprintf(conn, "331 ok\r\n")
			case "PASS":
				fmt.Fprintf(conn, "230 ok\r\n")
			case "SIZE":
				fmt.Fprintf(conn, "213 1048576\r\n")
			case "PASV":
				fmt.Fprintf(conn, "227 entering passive mode (%s)\r\n", hostPortString(dataLn.Addr()))
			case "RETR":
				fmt.Fprintf(conn, "150 opening data connection\r\n")
				dc, err := dataLn.Accept()
				if err != nil {
					return
				}
				// Half a frame — a header promising 64 KiB, 1000 bytes
				// delivered — then the "crash": everything stays open, mute.
				var hdr [modeEHeaderLen]byte
				binary.BigEndian.PutUint64(hdr[1:9], 64<<10)
				dc.Write(hdr[:])
				dc.Write(make([]byte, 1000))
				<-hang
				dc.Close()
				return
			default:
				fmt.Fprintf(conn, "200 ok\r\n")
			}
		}
	}()
	const d = 400 * time.Millisecond
	c, err := Dial(ln.Addr().String(), WithControlTimeout(d), WithDataTimeout(d))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.conn.Close() })
	if err := c.Login("u", "p"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, _, err = c.Retr("ghost.bin")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Retr succeeded against a dead server")
	}
	// Worst case: one stalled data read (data timeout) plus one stalled
	// reply drain (control timeout), with scheduling slack.
	if elapsed > 2*d+200*time.Millisecond {
		t.Fatalf("Retr returned after %v, want <= ~%v", elapsed, 2*d)
	}
	// The failed drain marks the channel desynced: later commands fail
	// fast instead of reading mismatched replies.
	if _, err := c.cmd("NOOP"); !errors.Is(err, ErrDesynced) {
		t.Errorf("after failed drain, cmd error = %v, want ErrDesynced", err)
	}
}

// TestPassiveListenersClosedPerTransfer proves a session looping many
// transfers — successful and rejected alike — never accumulates open
// data listeners (the leak fixed in this change: error paths 550, 551,
// 501, 504 and completed transfers all release them).
func TestPassiveListenersClosedPerTransfer(t *testing.T) {
	var track faultnet.Tracker
	store := NewMemStore()
	store.Put("x", randomPayload(32<<10))
	s := startServer(t, Config{Store: store, Stripes: 2, BlockSize: 8 << 10,
		AcceptTimeout: 200 * time.Millisecond, DataListen: track.Listen})
	c := login(t, s.Addr())
	if err := c.SetParallelism(2); err != nil {
		t.Fatal(err)
	}
	payload := randomPayload(16 << 10)
	for i := 0; i < 100; i++ {
		var err error
		switch i % 3 {
		case 0:
			_, _, err = c.Retr("x")
		case 1:
			_, _, err = c.RetrStriped("x")
		default:
			_, err = c.Stor("up.bin", payload)
		}
		if err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
	}
	checkOpen := func(ctx string) {
		t.Helper()
		if n := track.Open(); n != 0 {
			t.Fatalf("%s: %d data listeners still open", ctx, n)
		}
	}
	checkOpen("after 100 transfers on one session")
	if total := track.Total(); total < 100 {
		t.Fatalf("tracker saw only %d listeners; hook not in the transfer path", total)
	}
	// Rejected transfers must release listeners too.
	rs := rawDial(t, s.Addr())
	rs.login(t)
	rs.cmd(t, "PASV", "227")
	rs.cmd(t, "RETR missing.bin", "550")
	checkOpen("after RETR of a missing object (550)")
	rs.cmd(t, "PASV", "227")
	rs.cmd(t, "ERET X 0 10 x", "501")
	checkOpen("after malformed ERET (501)")
	rs.cmd(t, "REST 999999999", "350")
	rs.cmd(t, "PASV", "227")
	rs.cmd(t, "RETR x", "551")
	checkOpen("after RETR beyond EOF (551)")
	rs.cmd(t, "MODE S", "200")
	rs.cmd(t, "PASV", "227")
	rs.cmd(t, "RETR x", "504")
	checkOpen("after RETR without MODE E (504)")
	rs.cmd(t, "MODE E", "200")
	rs.cmd(t, "PASV", "227")
	rs.cmd(t, "STOR up.bin", "150")
	rs.expect(t, "425") // no data connection arrives
	checkOpen("after STOR accept timeout (425)")
	rs.cmd(t, "NOOP", "200")
}

// TestThirdPartyDstReusableAfterSrcReject is the regression test for
// the ThirdParty desync: when the source rejects RETR after the
// destination's STOR already got its 150, the destination's pending
// 425 must be drained so both control channels remain usable.
func TestThirdPartyDstReusableAfterSrcReject(t *testing.T) {
	want := randomPayload(128 << 10)
	srcStore := NewMemStore()
	srcStore.Put("real.bin", want)
	dstStore := NewMemStore()
	src := startServer(t, Config{Store: srcStore})
	dst := startServer(t, Config{Store: dstStore, AcceptTimeout: 200 * time.Millisecond})
	cSrc := login(t, src.Addr())
	cDst := login(t, dst.Addr())
	err := ThirdParty(cSrc, cDst, "missing.bin", "out.bin")
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Reply.Code != 550 {
		t.Fatalf("ThirdParty(missing) error = %v, want 550 ProtocolError", err)
	}
	// Before the fix the next command on dst read the stale 425 as its
	// own reply. Both channels must now be in sync and reusable.
	for name, c := range map[string]*Client{"src": cSrc, "dst": cDst} {
		if rep, err := c.cmd("NOOP"); err != nil || rep.Code != 200 {
			t.Fatalf("%s control channel desynced: %+v, %v", name, rep, err)
		}
	}
	if err := ThirdParty(cSrc, cDst, "real.bin", "out.bin"); err != nil {
		t.Fatalf("follow-up transfer on the same clients: %v", err)
	}
	got, err := dstStore.Get("out.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("follow-up third-party payload corrupted")
	}
}

// TestStorRejectsOversizedObject: MODE E offsets are attacker-
// controlled 64-bit values; the server must refuse to assemble objects
// beyond MaxObjectSize instead of attempting the allocation.
func TestStorRejectsOversizedObject(t *testing.T) {
	s := startServer(t, Config{Store: NewMemStore(), MaxObjectSize: 64 << 10,
		AcceptTimeout: time.Second})
	rs := rawDial(t, s.Addr())
	rs.login(t)
	for _, offset := range []uint64{1 << 40, ^uint64(0) - 1} { // huge, and uint64-overflowing
		reply := rs.cmd(t, "PASV", "227")
		open := strings.Index(reply, "(")
		closeIdx := strings.LastIndex(reply, ")")
		addr, err := parseHostPort(reply[open+1 : closeIdx])
		if err != nil {
			t.Fatal(err)
		}
		rs.cmd(t, "STOR big.bin", "150")
		dc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		WriteBlock(dc, Block{Offset: offset, Data: []byte("boom")})
		rs.expect(t, "426")
		dc.Close()
		rs.cmd(t, "NOOP", "200")
	}
}
