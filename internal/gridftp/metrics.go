package gridftp

import (
	"net"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"gftpvc/internal/telemetry"
	"gftpvc/internal/usagestats"
)

// srvMetrics resolves the server's registry instruments once at Serve
// time. With a nil hub every instrument is nil and each call degrades
// to a couple of nil checks, so the data path pays nothing when
// telemetry is off.
type srvMetrics struct {
	hub *telemetry.Hub

	sessionsActive   *telemetry.Gauge
	sessionsTotal    *telemetry.Counter
	sessionsRejected *telemetry.Counter
	shardActive      [nConnShards]*telemetry.Gauge
	listenersOpen    *telemetry.Gauge
	sharedListeners  *telemetry.Gauge
	demuxRouted      *telemetry.Counter
	demuxForeign     *telemetry.Counter
	dataConns        *telemetry.Counter
	acceptErrors     *telemetry.Counter
	durations        *telemetry.Histogram
	sizes            *telemetry.Histogram
	usageRecords     *telemetry.Counter
	shapedRate       *telemetry.Gauge
}

func newSrvMetrics(hub *telemetry.Hub) *srvMetrics {
	m := &srvMetrics{hub: hub}
	if hub == nil {
		return m
	}
	m.sessionsActive = hub.Gauge("gridftp_server_sessions_active",
		"Control-channel sessions currently open.")
	m.sessionsTotal = hub.Counter("gridftp_server_sessions_total",
		"Control-channel sessions accepted.")
	m.sessionsRejected = hub.Counter("gridftp_sessions_rejected_total",
		"Connections shed with a 421 greeting by the MaxSessions cap.")
	for i := range m.shardActive {
		m.shardActive[i] = hub.Gauge("gridftp_sessions_active",
			"Control-channel sessions currently open, by registry shard.",
			telemetry.L("shard", strconv.Itoa(i)))
	}
	m.listenersOpen = hub.Gauge("gridftp_server_passive_listeners_open",
		"Per-transfer passive data listeners currently open.")
	m.sharedListeners = hub.Gauge("gridftp_server_shared_passive_listeners",
		"Pre-opened shared passive data listeners (PasvPortRange pool).")
	m.demuxRouted = hub.Counter("gridftp_pasv_demux_routed_total",
		"Data connections routed to a waiting transfer by token match.")
	m.demuxForeign = hub.Counter("gridftp_pasv_demux_foreign_total",
		"Token-matched data connections arriving from an address other than the claimant's (expected for third-party transfers).")
	m.dataConns = hub.Counter("gridftp_server_data_connections_total",
		"Data connections established for transfers.")
	m.acceptErrors = hub.Counter("gridftp_server_data_accept_errors_total",
		"Failed data-connection setups (accept timeouts, dial errors).")
	m.durations = hub.Histogram("gridftp_server_transfer_duration_seconds",
		"Wall time of transfers, success and failure alike.", telemetry.DurationBuckets)
	m.sizes = hub.Histogram("gridftp_server_transfer_size_bytes",
		"Bytes moved per transfer (partial count on failure).", telemetry.SizeBuckets)
	m.usageRecords = hub.Counter("gridftp_server_usage_records_total",
		"Usage records emitted, success and failure alike.")
	m.shapedRate = hub.Gauge("gridftp_server_shaped_rate_bps",
		"Summed effective session rates (SITE RATE clamped by MaxRateBps) across open sessions — the capacity already promised to clients, scraped by fleet registries as committed load.")
	return m
}

// knownVerbs bounds the verb label: unknown client input lands on
// "other" instead of minting one series per typo.
var knownVerbs = map[string]bool{
	"USER": true, "PASS": true, "QUIT": true, "NOOP": true, "SYST": true,
	"FEAT": true, "TYPE": true, "MODE": true, "SBUF": true, "OPTS": true,
	"PASV": true, "SPAS": true, "PORT": true, "SIZE": true, "CKSM": true,
	"NLST": true, "REST": true, "RETR": true, "ERET": true, "STOR": true,
	"SITE": true,
}

// shardSession moves one session in or out of a registry shard's gauge.
func (m *srvMetrics) shardSession(idx int, delta int64) {
	if m.hub == nil {
		return
	}
	m.shardActive[idx].Add(delta)
}

// sessionRejected counts one connection shed by the MaxSessions cap.
func (m *srvMetrics) sessionRejected() {
	if m.hub == nil {
		return
	}
	m.sessionsRejected.Inc()
}

// demuxShed counts one unroutable shared-listener connection by reason.
func (m *srvMetrics) demuxShed(reason string) {
	if m == nil || m.hub == nil {
		return
	}
	m.hub.Counter("gridftp_pasv_demux_rejected_total",
		"Shared-listener data connections closed unrouted, by reason.",
		telemetry.L("reason", reason)).Inc()
}

// command counts one dispatched control-channel command.
func (m *srvMetrics) command(verb string) {
	if m.hub == nil {
		return
	}
	label := "other"
	if knownVerbs[verb] {
		label = strings.ToLower(verb)
	}
	m.hub.Counter("gridftp_server_commands_total",
		"Control-channel commands dispatched, by verb.",
		telemetry.L("verb", label)).Inc()
}

// transferDone records one finished transfer attempt: result-split
// counters, byte totals, and the duration/size distributions.
func (m *srvMetrics) transferDone(op string, code int, bytes int64, seconds float64) {
	if m.hub == nil {
		return
	}
	result := "ok"
	if code >= 400 {
		result = "error"
	}
	m.hub.Counter("gridftp_server_transfers_total",
		"Transfers by operation and result.",
		telemetry.L("op", op), telemetry.L("result", result)).Inc()
	m.hub.Counter("gridftp_server_transfer_bytes_total",
		"Wire bytes moved on data channels, by operation.",
		telemetry.L("op", op)).Add(bytes)
	m.durations.Observe(seconds)
	m.sizes.Observe(float64(bytes))
}

// shapedBytes resolves the counter of wire bytes that crossed a
// pacing-shaped data connection — the enforcement layer's footprint on
// the data plane. Nil hub (or shaping off) costs nothing: the caller
// only asks for the counter when a session bucket exists.
func (m *srvMetrics) shapedBytes(op string) *telemetry.Counter {
	if m.hub == nil {
		return nil
	}
	return m.hub.Counter("gridftp_shaped_bytes_total",
		"Wire bytes moved through a rate-shaped data connection, by operation.",
		telemetry.L("op", op))
}

// deliveredBytes records payload bytes that reached the destination
// sink exactly once. The gap between this and the wire counter is the
// redundant-retry traffic the paper's server-contention analysis
// (Figs 7–8) attributes to wasted DTN work.
func (m *srvMetrics) deliveredBytes(op string, n int64) {
	if m.hub == nil || n <= 0 {
		return
	}
	m.hub.Counter("gridftp_server_delivered_bytes_total",
		"Payload bytes delivered to the store exactly once, by operation.",
		telemetry.L("op", op)).Add(n)
}

// cliMetrics is the client-side instrument set, resolved at Dial.
type cliMetrics struct {
	hub *telemetry.Hub

	durations *telemetry.Histogram
}

func newCliMetrics(hub *telemetry.Hub) *cliMetrics {
	m := &cliMetrics{hub: hub}
	if hub == nil {
		return m
	}
	m.durations = hub.Histogram("gridftp_client_transfer_duration_seconds",
		"Wall time of client-driven transfers.", telemetry.DurationBuckets)
	return m
}

// dialDone counts a control-channel dial attempt.
func (m *cliMetrics) dialDone(err error) {
	if m.hub == nil {
		return
	}
	m.hub.Counter("gridftp_client_dials_total",
		"Control-channel dials, by result.",
		telemetry.L("result", resultLabel(err))).Inc()
}

// transferDone records one finished client transfer attempt.
func (m *cliMetrics) transferDone(op string, err error, bytes int64, seconds float64) {
	if m.hub == nil {
		return
	}
	m.hub.Counter("gridftp_client_transfers_total",
		"Client transfers by operation and result.",
		telemetry.L("op", op), telemetry.L("result", resultLabel(err))).Inc()
	m.hub.Counter("gridftp_client_transfer_bytes_total",
		"Wire bytes moved on client data channels, by operation.",
		telemetry.L("op", op)).Add(bytes)
	m.durations.Observe(seconds)
}

// shapedBytes resolves the client-side shaped-wire-bytes counter; nil
// when telemetry is off.
func (m *cliMetrics) shapedBytes() *telemetry.Counter {
	if m.hub == nil {
		return nil
	}
	return m.hub.Counter("gridftp_client_shaped_bytes_total",
		"Wire bytes moved through a rate-shaped client data connection.")
}

// deliveredBytes records payload bytes the client's streaming sink
// received exactly once (duplicates from a resumed sender excluded).
func (m *cliMetrics) deliveredBytes(op string, n int64) {
	if m.hub == nil || n <= 0 {
		return
	}
	m.hub.Counter("gridftp_client_delivered_bytes_total",
		"Payload bytes delivered to the client sink exactly once, by operation.",
		telemetry.L("op", op)).Add(n)
}

func resultLabel(err error) string {
	if err != nil {
		return "error"
	}
	return "ok"
}

// transferCtx carries one transfer attempt's instrumentation: its span,
// the wall-clock start, and the wire-byte tally the failure path
// reports as the partial byte count.
type transferCtx struct {
	op    string
	typ   usagestats.TransferType
	start time.Time
	span  *telemetry.Span
	wire  atomic.Int64
	conns int

	// delivered is the payload byte count the destination sink received
	// exactly once this attempt; deliveredSet marks it authoritative
	// (the windowed receive path sets it — legacy paths leave it unset
	// and the success metric falls back to the transfer size).
	delivered    int64
	deliveredSet bool
	// wireRec, when nonzero, is the payload wire byte count (duplicates
	// included) recorded as the usage record's WIRE= field; set only
	// when a resumed sender actually re-sent bytes, so untouched
	// transfers log byte-identically to older servers.
	wireRec int64
}

// countingConn counts wire bytes crossing a data connection into the
// transfer tally and, when telemetry is on, the per-stripe live bins
// and the transfer span. The nil-safety of LiveCounter/Span keeps the
// uninstrumented path to two pointer tests per I/O.
type countingConn struct {
	net.Conn
	wire *atomic.Int64
	live *telemetry.LiveCounter
	span *telemetry.Span
	// shaped, when non-nil, double-counts these bytes into the
	// shaped-wire-bytes counter: the connection below is pacing-wrapped
	// and its traffic is rate-enforced.
	shaped *telemetry.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.count(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.count(int64(n))
	return n, err
}

func (c *countingConn) count(n int64) {
	if n <= 0 {
		return
	}
	if c.wire != nil {
		c.wire.Add(n)
	}
	c.live.Add(n)
	c.span.AddBytes(n)
	c.shaped.Add(n)
}
