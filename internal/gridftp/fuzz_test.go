package gridftp

import (
	"bytes"
	"encoding/binary"

	"testing"
)

// frameHeader builds a bare MODE E header announcing count payload bytes
// at offset, without any payload following it.
func frameHeader(count, offset uint64) []byte {
	hdr := make([]byte, modeEHeaderLen)
	binary.BigEndian.PutUint64(hdr[1:9], count)
	binary.BigEndian.PutUint64(hdr[9:17], offset)
	return hdr
}

// truncatedFrame is the truncated-EOF-frame fault from the matrix tests:
// a header promising count bytes with only delivered of them present.
func truncatedFrame(count, delivered uint64) []byte {
	return append(frameHeader(count, 0), make([]byte, delivered)...)
}

// FuzzReadBlock hardens the MODE E frame parser against arbitrary peer
// bytes: it must never panic or allocate absurdly, and any frame it
// accepts must re-serialize to bytes it parses identically.
func FuzzReadBlock(f *testing.F) {
	seed := func(b Block) {
		var buf bytes.Buffer
		WriteBlock(&buf, b)
		f.Add(buf.Bytes())
	}
	seed(Block{Offset: 0, Data: []byte("hello")})
	seed(Block{Desc: DescEOD})
	seed(Block{Desc: DescEOF, Offset: 1 << 40})
	seed(Block{Desc: DescEODC, Offset: 2}) // EODC: conn count in offset
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0xFF}, 17))
	// Fault-matrix corpus: the truncated-EOF-frame injection delivers a
	// header promising bytes that never arrive, and the oversize-STOR
	// test sends counts past maxBlock.
	f.Add(truncatedFrame(64<<10, 1000))
	f.Add(frameHeader(maxBlock+1, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadBlock(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(b.Data) > maxBlock {
			t.Fatalf("accepted oversized block of %d bytes", len(b.Data))
		}
		var buf bytes.Buffer
		if err := WriteBlock(&buf, b); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		again, err := ReadBlock(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Desc != b.Desc || again.Offset != b.Offset || !bytes.Equal(again.Data, b.Data) {
			t.Fatal("round trip changed frame")
		}
	})
}

// FuzzReadBlockInto hardens the scratch-reusing frame reader the
// streaming data plane drains connections with: it must agree with
// ReadBlock on every input, never panic, and never hand back a block
// aliasing memory beyond the returned scratch.
func FuzzReadBlockInto(f *testing.F) {
	seed := func(b Block) {
		var buf bytes.Buffer
		WriteBlock(&buf, b)
		f.Add(buf.Bytes())
	}
	seed(Block{Offset: 0, Data: []byte("hello")})
	seed(Block{Desc: DescEOD})
	seed(Block{Desc: DescEOF, Offset: 1 << 40})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 17))
	f.Add(truncatedFrame(64<<10, 1000))
	f.Add(frameHeader(maxBlock+1, 0))
	// Two frames back to back: scratch reuse across reads must not let
	// the second frame clobber a still-referenced first.
	var two bytes.Buffer
	WriteBlock(&two, Block{Offset: 0, Data: []byte("first")})
	WriteBlock(&two, Block{Offset: 5, Data: []byte("second")})
	f.Add(two.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		b1, err1 := ReadBlock(bytes.NewReader(data))
		r := bytes.NewReader(data)
		scratch := make([]byte, 0)
		b2, scratch, err2 := ReadBlockInto(r, scratch)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("ReadBlock err=%v, ReadBlockInto err=%v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if b1.Desc != b2.Desc || b1.Offset != b2.Offset || !bytes.Equal(b1.Data, b2.Data) {
			t.Fatal("ReadBlockInto disagrees with ReadBlock")
		}
		if len(b2.Data) > len(scratch) && len(b2.Data) > 0 {
			t.Fatal("block data longer than the scratch it claims to live in")
		}
		// Drain the remainder with the same scratch: reuse must keep
		// parsing consistently (panic/corruption would surface here).
		for {
			var err error
			_, scratch, err = ReadBlockInto(r, scratch)
			if err != nil {
				return
			}
		}
	})
}

// FuzzWindowAssembler throws adversarial block sequences at the sliding
// window: overlaps, duplicates, out-of-window offsets, and truncated
// tails must be either delivered contiguously or rejected — never
// panic, never deliver a byte twice, never deliver out of order.
func FuzzWindowAssembler(f *testing.F) {
	// Encoded op stream: each 5 bytes are [offLo offHi lenLo lenHi fill].
	f.Add(uint16(0), []byte{0, 0, 16, 0, 1, 16, 0, 16, 0, 2})
	f.Add(uint16(8), []byte{8, 0, 8, 0, 3})                  // exactly at base
	f.Add(uint16(0), []byte{0, 1, 4, 0, 9})                  // beyond the window
	f.Add(uint16(4), []byte{0, 0, 8, 0, 7})                  // below base
	f.Add(uint16(0), []byte{0, 0, 32, 0, 1, 0, 0, 32, 0, 2}) // pure duplicate
	f.Add(uint16(0), []byte{4, 0, 8, 0, 5, 0, 0, 16, 0, 6})  // overlap across watermark
	f.Fuzz(func(t *testing.T, base uint16, ops []byte) {
		const window = 64
		var out bytes.Buffer
		asm, err := NewWindowAssembler(&out, uint64(base), -1, window, 0)
		if err != nil {
			t.Fatal(err)
		}
		for len(ops) >= 5 {
			// Offsets roam below base, around the window, and far past
			// it; lengths reach a few windows so the block-larger-than-
			// window rejection is exercised too.
			off := uint64(ops[0]) | uint64(ops[1])<<8
			n := int(ops[2]) | int(ops[3]&1)<<8
			fill := ops[4]
			ops = ops[5:]
			data := bytes.Repeat([]byte{fill}, n)
			// Any outcome is fine — ErrWindowFull, ErrDataProtocol for
			// below-base or oversized blocks — as long as the invariants
			// below survive and nothing panics.
			_ = asm.Place(Block{Offset: off, Data: data})
		}
		// Invariants that must hold whatever happened above.
		if asm.Delivered() != int64(out.Len()) {
			t.Fatalf("delivered=%d but sink holds %d", asm.Delivered(), out.Len())
		}
		if asm.WireBytes() < asm.Delivered() {
			t.Fatalf("wire=%d < delivered=%d", asm.WireBytes(), asm.Delivered())
		}
		// Accepted-but-parked bytes are on the wire without being
		// delivered or duplicate; they live in the window, so the gap is
		// bounded by it. This is the bounded-memory guarantee itself.
		if parked := asm.WireBytes() - asm.Delivered() - asm.DuplicateBytes(); parked < 0 || parked > window {
			t.Fatalf("wire=%d delivered=%d dup=%d: parked %d outside [0,%d]",
				asm.WireBytes(), asm.Delivered(), asm.DuplicateBytes(), parked, window)
		}
		if asm.Flushed() < uint64(base) {
			t.Fatal("watermark regressed below base")
		}
	})
}

// FuzzParseHostPort hardens the FTP h1,h2,h3,h4,p1,p2 parser used by PORT
// and the PASV reply reader.
func FuzzParseHostPort(f *testing.F) {
	f.Add("127,0,0,1,4,210")
	f.Add("")
	f.Add("1,2,3")
	f.Add("256,0,0,1,0,0")
	f.Add("a,b,c,d,e,f")
	f.Add("1,2,3,4,5,6,7")
	f.Add(" 127 , 0 , 0 , 1 , 10 , 20 ")
	f.Fuzz(func(t *testing.T, s string) {
		addr, err := parseHostPort(s)
		if err != nil {
			return
		}
		if addr == "" {
			t.Fatal("accepted input yielded empty address")
		}
	})
}

// FuzzAssembler hardens the reassembly path against adversarial block
// sequences.
func FuzzAssembler(f *testing.F) {
	f.Add(uint64(0), []byte("abcdef"), uint64(0))
	f.Add(uint64(100), []byte("x"), uint64(99))
	f.Add(uint64(1<<40), []byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, offset uint64, data []byte, base uint64) {
		size := int64(len(data)) + 64
		asm, err := NewRegionAssembler(base, size)
		if err != nil {
			t.Fatal(err)
		}
		// Either the block is placed or rejected; never a panic, and a
		// placed block must be inside the region.
		err = asm.Place(Block{Offset: offset, Data: data})
		if err == nil && len(data) > 0 {
			if offset < base || offset+uint64(len(data)) > base+uint64(size) {
				t.Fatal("accepted block outside region")
			}
		}
	})
}

// FuzzDrainConn exercises the full per-connection read loop on arbitrary
// streams.
func FuzzDrainConn(f *testing.F) {
	var good bytes.Buffer
	WriteBlock(&good, Block{Offset: 0, Data: []byte("abc")})
	WriteBlock(&good, Block{Desc: DescEOD})
	f.Add(good.Bytes())
	f.Add([]byte("garbage stream"))
	// Fault-matrix corpus: a healthy block followed by a peer reset
	// mid-frame (truncated header, then truncated payload), and a block
	// whose offset lands far outside any sane region.
	var cut bytes.Buffer
	WriteBlock(&cut, Block{Offset: 0, Data: []byte("abc")})
	cut.Write(truncatedFrame(4<<10, 1000))
	f.Add(cut.Bytes())
	var short bytes.Buffer
	WriteBlock(&short, Block{Offset: 0, Data: []byte("abc")})
	short.Write(frameHeader(4<<10, 0)[:9]) // reset mid-header
	f.Add(short.Bytes())
	var huge bytes.Buffer
	WriteBlock(&huge, Block{Offset: 1 << 40, Data: []byte("boom")})
	f.Add(huge.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		asm, err := NewAssembler(1 << 16)
		if err != nil {
			t.Fatal(err)
		}
		n, err := asm.DrainConn(bytes.NewReader(data))
		if err == nil && n < 0 {
			t.Fatal("negative byte count")
		}
		_ = err // io errors expected on truncated input
	})
}
