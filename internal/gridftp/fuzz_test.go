package gridftp

import (
	"bytes"
	"encoding/binary"

	"testing"
)

// frameHeader builds a bare MODE E header announcing count payload bytes
// at offset, without any payload following it.
func frameHeader(count, offset uint64) []byte {
	hdr := make([]byte, modeEHeaderLen)
	binary.BigEndian.PutUint64(hdr[1:9], count)
	binary.BigEndian.PutUint64(hdr[9:17], offset)
	return hdr
}

// truncatedFrame is the truncated-EOF-frame fault from the matrix tests:
// a header promising count bytes with only delivered of them present.
func truncatedFrame(count, delivered uint64) []byte {
	return append(frameHeader(count, 0), make([]byte, delivered)...)
}

// FuzzReadBlock hardens the MODE E frame parser against arbitrary peer
// bytes: it must never panic or allocate absurdly, and any frame it
// accepts must re-serialize to bytes it parses identically.
func FuzzReadBlock(f *testing.F) {
	seed := func(b Block) {
		var buf bytes.Buffer
		WriteBlock(&buf, b)
		f.Add(buf.Bytes())
	}
	seed(Block{Offset: 0, Data: []byte("hello")})
	seed(Block{Desc: DescEOD})
	seed(Block{Desc: DescEOF, Offset: 1 << 40})
	seed(Block{Desc: DescEODC, Offset: 2}) // EODC: conn count in offset
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0xFF}, 17))
	// Fault-matrix corpus: the truncated-EOF-frame injection delivers a
	// header promising bytes that never arrive, and the oversize-STOR
	// test sends counts past maxBlock.
	f.Add(truncatedFrame(64<<10, 1000))
	f.Add(frameHeader(maxBlock+1, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadBlock(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(b.Data) > maxBlock {
			t.Fatalf("accepted oversized block of %d bytes", len(b.Data))
		}
		var buf bytes.Buffer
		if err := WriteBlock(&buf, b); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		again, err := ReadBlock(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Desc != b.Desc || again.Offset != b.Offset || !bytes.Equal(again.Data, b.Data) {
			t.Fatal("round trip changed frame")
		}
	})
}

// FuzzParseHostPort hardens the FTP h1,h2,h3,h4,p1,p2 parser used by PORT
// and the PASV reply reader.
func FuzzParseHostPort(f *testing.F) {
	f.Add("127,0,0,1,4,210")
	f.Add("")
	f.Add("1,2,3")
	f.Add("256,0,0,1,0,0")
	f.Add("a,b,c,d,e,f")
	f.Add("1,2,3,4,5,6,7")
	f.Add(" 127 , 0 , 0 , 1 , 10 , 20 ")
	f.Fuzz(func(t *testing.T, s string) {
		addr, err := parseHostPort(s)
		if err != nil {
			return
		}
		if addr == "" {
			t.Fatal("accepted input yielded empty address")
		}
	})
}

// FuzzAssembler hardens the reassembly path against adversarial block
// sequences.
func FuzzAssembler(f *testing.F) {
	f.Add(uint64(0), []byte("abcdef"), uint64(0))
	f.Add(uint64(100), []byte("x"), uint64(99))
	f.Add(uint64(1<<40), []byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, offset uint64, data []byte, base uint64) {
		size := int64(len(data)) + 64
		asm, err := NewRegionAssembler(base, size)
		if err != nil {
			t.Fatal(err)
		}
		// Either the block is placed or rejected; never a panic, and a
		// placed block must be inside the region.
		err = asm.Place(Block{Offset: offset, Data: data})
		if err == nil && len(data) > 0 {
			if offset < base || offset+uint64(len(data)) > base+uint64(size) {
				t.Fatal("accepted block outside region")
			}
		}
	})
}

// FuzzDrainConn exercises the full per-connection read loop on arbitrary
// streams.
func FuzzDrainConn(f *testing.F) {
	var good bytes.Buffer
	WriteBlock(&good, Block{Offset: 0, Data: []byte("abc")})
	WriteBlock(&good, Block{Desc: DescEOD})
	f.Add(good.Bytes())
	f.Add([]byte("garbage stream"))
	// Fault-matrix corpus: a healthy block followed by a peer reset
	// mid-frame (truncated header, then truncated payload), and a block
	// whose offset lands far outside any sane region.
	var cut bytes.Buffer
	WriteBlock(&cut, Block{Offset: 0, Data: []byte("abc")})
	cut.Write(truncatedFrame(4<<10, 1000))
	f.Add(cut.Bytes())
	var short bytes.Buffer
	WriteBlock(&short, Block{Offset: 0, Data: []byte("abc")})
	short.Write(frameHeader(4<<10, 0)[:9]) // reset mid-header
	f.Add(short.Bytes())
	var huge bytes.Buffer
	WriteBlock(&huge, Block{Offset: 1 << 40, Data: []byte("boom")})
	f.Add(huge.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		asm, err := NewAssembler(1 << 16)
		if err != nil {
			t.Fatal(err)
		}
		n, err := asm.DrainConn(bytes.NewReader(data))
		if err == nil && n < 0 {
			t.Fatal("negative byte count")
		}
		_ = err // io errors expected on truncated input
	})
}
