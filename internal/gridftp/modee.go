// Package gridftp implements a GridFTP server and client from scratch:
// the FTP control channel with the GridFTP extensions the paper's
// transfers exercised — parallel TCP streams (OPTS RETR Parallelism),
// striped data movement (SPAS/ERET-style block interleaving), MODE E
// extended-block data framing with out-of-order offsets, SBUF buffer
// control — plus per-transfer usage-statistics logging in the Globus
// format (internal/usagestats).
//
// The implementation runs over real TCP sockets; tests and examples use
// the loopback interface. It is the live counterpart of the simulated
// transfer pipeline in internal/workload: both emit identical log records,
// so every analysis in this repository runs unchanged on either source.
package gridftp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
)

// MODE E (extended block mode) frames each data-channel write as
// [descriptor:1][count:8][offset:8] followed by count payload bytes, all
// big endian. Blocks may arrive out of order and interleaved across
// parallel connections; offsets place them in the file.
const modeEHeaderLen = 17

// Descriptor bits (RFC 959 MODE B extended by GridFTP / GFD.020).
const (
	// DescEOF marks the block count that ends the whole transfer.
	DescEOF byte = 64
	// DescEOD marks the final block on one data connection.
	DescEOD byte = 8
	// DescEODC carries the expected number of data connections in the
	// offset field, letting the receiver know how many EODs to await.
	DescEODC byte = 4
)

// ErrDataProtocol reports malformed MODE E framing.
var ErrDataProtocol = errors.New("gridftp: data channel protocol error")

// Block is one MODE E frame.
type Block struct {
	Desc   byte
	Offset uint64
	Data   []byte // nil for pure control frames (EOD, EODC)
}

// WriteBlock writes one MODE E frame to w.
func WriteBlock(w io.Writer, b Block) error {
	var hdr [modeEHeaderLen]byte
	hdr[0] = b.Desc
	binary.BigEndian.PutUint64(hdr[1:9], uint64(len(b.Data)))
	binary.BigEndian.PutUint64(hdr[9:17], b.Offset)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(b.Data) > 0 {
		if _, err := w.Write(b.Data); err != nil {
			return err
		}
	}
	return nil
}

// maxBlock bounds a single MODE E frame payload; GridFTP deployments use
// block sizes of 64 KiB–4 MiB, so anything larger indicates corruption.
const maxBlock = 64 << 20

// ReadBlock reads one MODE E frame from r. The returned Data is freshly
// allocated and owned by the caller.
func ReadBlock(r io.Reader) (Block, error) {
	b, _, err := ReadBlockInto(r, nil)
	return b, err
}

// ReadBlockInto reads one MODE E frame using scratch as the payload
// buffer, growing it as needed; the returned Block's Data aliases the
// returned scratch and is valid only until the next call. Receivers
// that copy payloads out immediately (the server's STOR reassembly)
// use it to avoid a per-frame allocation.
func ReadBlockInto(r io.Reader, scratch []byte) (Block, []byte, error) {
	var hdr [modeEHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Block{}, scratch, err
	}
	count := binary.BigEndian.Uint64(hdr[1:9])
	if count > maxBlock {
		return Block{}, scratch, fmt.Errorf("%w: block of %d bytes", ErrDataProtocol, count)
	}
	b := Block{Desc: hdr[0], Offset: binary.BigEndian.Uint64(hdr[9:17])}
	if count > 0 {
		if uint64(cap(scratch)) < count {
			scratch = make([]byte, count)
		}
		b.Data = scratch[:count]
		if _, err := io.ReadFull(r, b.Data); err != nil {
			return Block{}, scratch, err
		}
	}
	return b, scratch, nil
}

// SendFile writes data over w as MODE E blocks of blockSize starting at
// byte offset base with stride step (striping interleave: a stripe with
// base=i*blockSize, step=nStripes*blockSize sends every nStripes-th
// block). A final EOD frame closes the channel's data stream; the caller
// sends EOF/EODC bookkeeping separately when required.
func SendFile(w io.Writer, data []byte, blockSize int, base, step int) error {
	return SendFileAt(w, data, 0, blockSize, base, step)
}

// SendFileAt is SendFile with the MODE E offsets shifted by fileOffset:
// partial retrievals (ERET) and restarted transfers (REST) frame their
// region with absolute file offsets so the receiver can merge it into the
// full object.
func SendFileAt(w io.Writer, data []byte, fileOffset uint64, blockSize int, base, step int) error {
	if blockSize <= 0 {
		return fmt.Errorf("%w: non-positive block size", ErrDataProtocol)
	}
	if base < 0 || step <= 0 {
		return fmt.Errorf("%w: bad stripe geometry base=%d step=%d", ErrDataProtocol, base, step)
	}
	for off := base; off < len(data); off += step {
		end := off + blockSize
		if end > len(data) {
			end = len(data)
		}
		if err := WriteBlock(w, Block{Offset: fileOffset + uint64(off), Data: data[off:end]}); err != nil {
			return err
		}
	}
	return WriteBlock(w, Block{Desc: DescEOD})
}

// Assembler reassembles MODE E blocks arriving over any number of data
// connections into a contiguous buffer. Distinct connections carry
// disjoint byte ranges, so concurrent Place calls are safe: the copies
// touch disjoint regions and the received counter is atomic.
type Assembler struct {
	buf      []byte
	base     uint64
	received atomic.Int64
}

// NewAssembler returns an assembler for a transfer of the given size.
func NewAssembler(size int64) (*Assembler, error) {
	return NewRegionAssembler(0, size)
}

// NewRegionAssembler returns an assembler for the file region
// [base, base+size): partial (ERET) and restarted (REST) retrievals
// receive blocks with absolute file offsets.
func NewRegionAssembler(base uint64, size int64) (*Assembler, error) {
	if size < 0 {
		return nil, fmt.Errorf("%w: negative size", ErrDataProtocol)
	}
	return &Assembler{buf: make([]byte, size), base: base}, nil
}

// Place stores one data block. Blocks outside the announced region are
// protocol errors.
func (a *Assembler) Place(b Block) error {
	if len(b.Data) == 0 {
		return nil
	}
	end := b.Offset + uint64(len(b.Data))
	if b.Offset < a.base || end > a.base+uint64(len(a.buf)) {
		return fmt.Errorf("%w: block [%d,%d) outside region [%d,%d)",
			ErrDataProtocol, b.Offset, end, a.base, a.base+uint64(len(a.buf)))
	}
	copy(a.buf[b.Offset-a.base:end-a.base], b.Data)
	a.received.Add(int64(len(b.Data)))
	return nil
}

// Complete reports whether every byte has been received (overlapping
// duplicate blocks would overcount; GridFTP senders never overlap).
func (a *Assembler) Complete() bool { return a.received.Load() >= int64(len(a.buf)) }

// Bytes returns the assembled buffer; call only when Complete.
func (a *Assembler) Bytes() []byte { return a.buf }

// DrainConn reads frames from one data connection into the assembler
// until EOD. It returns the number of payload bytes received.
func (a *Assembler) DrainConn(r io.Reader) (int64, error) {
	var n int64
	for {
		b, err := ReadBlock(r)
		if err != nil {
			return n, err
		}
		if err := a.Place(b); err != nil {
			return n, err
		}
		n += int64(len(b.Data))
		if b.Desc&DescEOD != 0 {
			return n, nil
		}
	}
}
