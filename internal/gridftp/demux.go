package gridftp

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the shared passive-listener data plane: instead of
// opening a fresh ephemeral listener per transfer (two syscalls and a
// kernel socket per RETR/STOR, and an fd-table race at C10k
// concurrency), a server configured with Config.PasvPortRange pre-opens
// a fixed set of data listeners at Serve time and demultiplexes every
// accepted data connection to the transfer that is waiting for it.
//
// Routing works by token match: each PASV/SPAS claim mints a 64-bit
// random token, advertised in the control reply ("token=<16 hex>"),
// and whoever connects to a shared listener sends a 16-byte preamble
// (magic + token) as its first bytes. The demux reads the preamble
// under the accept deadline, matches the token against the pending
// claims, and hands the connection — preamble consumed, payload
// untouched — to the owning transfer through a bounded queue.
//
// The source address of every routed connection is checked against the
// address the claim expects (the claimant's control-channel peer).
// Third-party transfers are the deliberate exception: there the
// connector is the source *server*, whose address the destination
// cannot predict, so a mismatch with a valid token is delivered anyway
// and surfaced on gridftp_pasv_demux_foreign_total rather than dropped
// — the 64-bit random token remains the authenticator.

const (
	// demuxMagic opens the preamble; 8 bytes so the whole preamble is a
	// single aligned 16-byte read.
	demuxMagic = "GFTPMX1\n"
	// demuxPreambleLen is magic + big-endian token.
	demuxPreambleLen = 16
	// demuxQueueSlack bounds how many routed connections may queue for
	// one claim beyond its expected count before the demux sheds them.
	demuxQueueSlack = 64
)

// writeDemuxPreamble sends the shared-listener routing preamble as the
// connection's first bytes, bounded by timeout so a dead peer cannot
// pin the dialer.
func writeDemuxPreamble(c net.Conn, token uint64, timeout time.Duration) error {
	var buf [demuxPreambleLen]byte
	copy(buf[:8], demuxMagic)
	binary.BigEndian.PutUint64(buf[8:], token)
	if timeout > 0 {
		c.SetWriteDeadline(time.Now().Add(timeout))
		defer c.SetWriteDeadline(time.Time{})
	}
	_, err := c.Write(buf[:])
	return err
}

// parseDemuxToken extracts a "token=<16 hex>" clause from a control
// reply; 0 (never minted) means no token present.
func parseDemuxToken(s string) uint64 {
	i := strings.Index(s, "token=")
	if i < 0 {
		return 0
	}
	hex := s[i+len("token="):]
	if len(hex) < 16 {
		return 0
	}
	tok, err := strconv.ParseUint(hex[:16], 16, 64)
	if err != nil {
		return 0
	}
	return tok
}

// parsePasvPortRange parses Config.PasvPortRange ("lo-hi"). lo == 0
// requests hi-lo+1 ephemeral listeners (ports chosen by the kernel),
// which is what tests and single-host benches use; a nonzero range
// binds exactly those ports, for deployments that must match firewall
// pinholes.
func parsePasvPortRange(s string) (lo, hi int, err error) {
	los, his, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("gridftp: PasvPortRange %q must be \"lo-hi\"", s)
	}
	lo, err1 := strconv.Atoi(strings.TrimSpace(los))
	hi, err2 := strconv.Atoi(strings.TrimSpace(his))
	if err1 != nil || err2 != nil || lo < 0 || hi > 65535 || hi < lo {
		return 0, 0, fmt.Errorf("gridftp: bad PasvPortRange %q", s)
	}
	return lo, hi, nil
}

// pasvClaim is one transfer-to-be's registration with the demux: the
// token its data connections must carry and the queue they arrive on.
type pasvClaim struct {
	pool  *pasvPool
	token uint64
	// host is the claimant's control-channel peer host; a routed
	// connection from another host is counted as foreign.
	host string
	// addrs are the shared listener addresses advertised for this claim
	// (one for PASV, one per stripe for SPAS).
	addrs []net.Addr
	ch    chan net.Conn
}

// next hands out the claim's queued (or soon-to-arrive) connections in
// arrival order, bounded by timeout.
func (cl *pasvClaim) next(timeout time.Duration) (net.Conn, error) {
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case c, ok := <-cl.ch:
		if !ok {
			return nil, errors.New("gridftp: demux claim released")
		}
		return c, nil
	case <-t.C:
		return nil, fmt.Errorf("gridftp: timed out waiting for demuxed data connection (token %016x)", cl.token)
	}
}

// release unregisters the claim and closes any connections still
// queued. Delivery happens under the pool mutex, so after release
// returns no connection can be stranded in the queue.
func (cl *pasvClaim) release() {
	if cl == nil {
		return
	}
	p := cl.pool
	p.mu.Lock()
	delete(p.claims, cl.token)
	for {
		select {
		case c := <-cl.ch:
			c.Close()
		default:
			p.mu.Unlock()
			return
		}
	}
}

// pasvPool owns the shared passive listeners and the claim table.
type pasvPool struct {
	met           *srvMetrics
	acceptTimeout time.Duration
	listeners     []net.Listener

	next uint64 // round-robin listener cursor, under mu

	mu     sync.Mutex
	claims map[uint64]*pasvClaim
	closed bool

	wg sync.WaitGroup
}

// newPasvPool opens one shared listener per port in [lo, hi] on host
// (lo == 0: hi-lo+1 ephemeral ports) through the listen hook, and
// starts their accept loops.
func newPasvPool(listen func(network, addr string) (net.Listener, error), host string, lo, hi int, acceptTimeout time.Duration, met *srvMetrics) (*pasvPool, error) {
	p := &pasvPool{
		met:           met,
		acceptTimeout: acceptTimeout,
		claims:        make(map[uint64]*pasvClaim),
	}
	for port := lo; port <= hi; port++ {
		bind := port
		if lo == 0 {
			bind = 0
		}
		ln, err := listen("tcp", net.JoinHostPort(host, strconv.Itoa(bind)))
		if err != nil {
			p.close()
			return nil, fmt.Errorf("gridftp: shared passive listener %s:%d: %w", host, bind, err)
		}
		p.listeners = append(p.listeners, ln)
	}
	met.sharedListeners.Set(int64(len(p.listeners)))
	for _, ln := range p.listeners {
		p.wg.Add(1)
		go p.acceptLoop(ln)
	}
	return p, nil
}

// close stops the accept loops and waits out in-flight preamble reads
// (each bounded by the accept deadline).
func (p *pasvPool) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	for _, ln := range p.listeners {
		ln.Close()
	}
	p.wg.Wait()
	if p.met != nil {
		p.met.sharedListeners.Set(0)
	}
}

// claim registers a transfer expecting up to expect data connections
// and returns the listener addresses to advertise: one for PASV,
// stripes cycling round-robin across the shared listeners for SPAS.
func (p *pasvPool) claim(n int, host string, expect int) (*pasvClaim, error) {
	if expect < 1 {
		expect = 1
	}
	cl := &pasvClaim{
		pool: p,
		host: host,
		ch:   make(chan net.Conn, expect+demuxQueueSlack),
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, errors.New("gridftp: server closed")
	}
	for {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, err
		}
		tok := binary.BigEndian.Uint64(b[:])
		if tok == 0 {
			continue
		}
		if _, dup := p.claims[tok]; dup {
			continue
		}
		cl.token = tok
		break
	}
	for i := 0; i < n; i++ {
		ln := p.listeners[p.next%uint64(len(p.listeners))]
		p.next++
		cl.addrs = append(cl.addrs, ln.Addr())
	}
	p.claims[cl.token] = cl
	return cl, nil
}

// acceptLoop accepts on one shared listener until it closes, routing
// each connection on its own goroutine so one slow preamble cannot
// head-of-line-block the listener.
func (p *pasvPool) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.route(c)
	}
}

// route reads the 16-byte preamble under the accept deadline and hands
// the connection to the claim owning its token. Unroutable connections
// are closed and counted by reason; a valid token from an unexpected
// source address is delivered but counted foreign (the third-party
// case — see the file comment).
func (p *pasvPool) route(c net.Conn) {
	defer p.wg.Done()
	if p.acceptTimeout > 0 {
		c.SetReadDeadline(time.Now().Add(p.acceptTimeout))
	}
	var buf [demuxPreambleLen]byte
	if _, err := io.ReadFull(c, buf[:]); err != nil {
		p.shed(c, "preamble")
		return
	}
	if string(buf[:8]) != demuxMagic {
		p.shed(c, "magic")
		return
	}
	c.SetReadDeadline(time.Time{})
	token := binary.BigEndian.Uint64(buf[8:])
	p.mu.Lock()
	cl := p.claims[token]
	if cl == nil {
		p.mu.Unlock()
		p.shed(c, "unknown_token")
		return
	}
	if host, _, err := net.SplitHostPort(c.RemoteAddr().String()); err == nil && cl.host != "" && host != cl.host {
		p.met.demuxForeign.Inc()
	}
	select {
	case cl.ch <- c:
		p.mu.Unlock()
		p.met.demuxRouted.Inc()
	default:
		p.mu.Unlock()
		p.shed(c, "queue_full")
	}
}

// shed closes an unroutable connection and counts why.
func (p *pasvPool) shed(c net.Conn, reason string) {
	c.Close()
	p.met.demuxShed(reason)
}
