package gridftp

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"gftpvc/internal/pacing"
	"gftpvc/internal/telemetry"
)

// TransferOptions bundles the per-transfer tunables — deadlines,
// streaming window, trace binding, and rate shaping — that accrete on a
// control channel between jobs. It replaces the old
// mutate-the-client-then-call pattern (SetTimeouts, SetWindow,
// SetTrace): callers now pass functional options either to
// ApplyOptions, which rebinds everything in one call (what a pool
// checkout does), or directly on the per-call transfer APIs
// (Retr/Stor/RetrTo/RetrToAt/StorFrom/StorFromAt), which apply them
// first and then run.
//
// Options persist on the client once applied — a per-call option is
// sugar for ApplyOptions followed by the call — because a control
// channel serves one job at a time and each checkout re-applies its
// job's options anyway.
type TransferOptions struct {
	control time.Duration // 0 keep, < 0 disable
	data    time.Duration // 0 keep, < 0 disable
	window  int           // 0 keep

	trace    *telemetry.TraceContext // nil keep; zero value clears
	rateBps  int64                   // meaningful when rateSet; <= 0 clears
	rateSet  bool
	burst    int64 // 0 keep (rate-derived default)
	limiter  *pacing.Limiter
	limSet   bool
	parallel int // 0 keep
}

// TransferOption mutates one TransferOptions field; see ApplyOptions.
type TransferOption func(*TransferOptions)

// WithTimeouts rebinds the control and data deadlines (zero keeps the
// current value; negative disables).
func WithTimeouts(control, data time.Duration) TransferOption {
	return func(o *TransferOptions) { o.control, o.data = control, data }
}

// WithTransferWindow rebinds the streaming reassembly window in bytes
// (see WithWindow; zero keeps the current value).
func WithTransferWindow(bytes int) TransferOption {
	return func(o *TransferOptions) { o.window = bytes }
}

// WithTransferTrace binds an end-to-end trace context to the session
// (SITE TRID to the server, silently degraded on servers that predate
// it). A zero TraceContext clears the binding without touching the
// wire.
func WithTransferTrace(tc telemetry.TraceContext) TransferOption {
	return func(o *TransferOptions) { o.trace = &tc }
}

// WithRate shapes this client's subsequent transfers to rateBps bits
// per second: every transfer mints a fresh per-transfer token bucket at
// this rate, and the server is asked to shape its own sending/receiving
// session to match (SITE RATE; servers that predate it degrade
// silently, leaving client-side shaping in force). rateBps <= 0 clears
// shaping — and tells the server so, if it was ever engaged, so a
// pooled channel cannot leak one job's rate into the next.
func WithRate(rateBps int64) TransferOption {
	return func(o *TransferOptions) { o.rateBps, o.rateSet = rateBps, true }
}

// WithRateBurst overrides the per-transfer bucket's burst in bytes
// (zero keeps the rate-derived default: ~25 ms of line rate, floored at
// pacing.DefaultBurstBytes).
func WithRateBurst(bytes int64) TransferOption {
	return func(o *TransferOptions) { o.burst = bytes }
}

// WithLimiter attaches a shared aggregate limiter composed into every
// subsequent transfer's pacing (on top of any WithRate per-transfer
// bucket). This is pure client-side shaping — nothing is advertised to
// the server — and is how a caller holds several concurrent transfers
// to one collective rate, or re-rates an in-flight bucket when a
// broker lease is extended. nil detaches.
func WithLimiter(l *pacing.Limiter) TransferOption {
	return func(o *TransferOptions) { o.limiter, o.limSet = l, true }
}

// WithParallel sets the number of parallel TCP streams for subsequent
// transfers (OPTS RETR Parallelism; zero keeps the current value).
func WithParallel(n int) TransferOption {
	return func(o *TransferOptions) { o.parallel = n }
}

// ApplyOptions rebinds the client's transfer state in one call — the
// single checkout-time rebind that replaced the SetTimeouts + SetWindow
// + SetTrace sequence. Local-only options (timeouts, window, limiter)
// never touch the wire; trace and rate bindings are advertised to the
// server when set (SITE TRID / SITE RATE) and degrade silently on
// servers that predate them. Unset options keep their current values.
func (c *Client) ApplyOptions(opts ...TransferOption) error {
	var o TransferOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	c.SetTimeouts(o.control, o.data)
	if o.window != 0 {
		if o.window < 1 {
			return errors.New("gridftp: window must be positive")
		}
		c.windowSize = o.window
	}
	if o.limSet {
		c.aggLimiter = o.limiter
	}
	if o.burst != 0 {
		c.rateBurst = o.burst
	}
	if o.rateSet {
		if err := c.applyRate(o.rateBps); err != nil {
			return err
		}
	}
	if o.parallel != 0 {
		if err := c.SetParallelism(o.parallel); err != nil {
			return err
		}
	}
	if o.trace != nil {
		if err := c.setTrace(*o.trace); err != nil {
			return err
		}
	}
	return nil
}

// applyRate records the client-side shaping rate and advertises it to
// the server. SITE RATE 0 (clear) only goes on the wire if this channel
// previously engaged server-side shaping — an unshaped session stays
// byte-identical to a pre-pacing client.
func (c *Client) applyRate(rateBps int64) error {
	if rateBps < 0 {
		rateBps = 0
	}
	c.rateBps = rateBps
	if rateBps == 0 && !c.rateWired {
		return nil
	}
	_, err := c.do("SITE", "SITE RATE "+strconv.FormatInt(rateBps, 10), 200)
	if err != nil {
		var pe *ProtocolError
		if errors.As(err, &pe) && !c.rateWired {
			// Old server: SITE unimplemented (502) or RATE unknown (500).
			// Client-side pacing still enforces the rate locally. Once the
			// server has accepted a SITE RATE, though, a rejection is a
			// real failure — swallowing it would leave the session shaped
			// to the previous rate with the caller none the wiser.
			return nil
		}
		return err
	}
	c.rateWired = rateBps > 0
	return nil
}

// xferLimiter mints the effective limiter for one transfer: a fresh
// per-transfer bucket at the client's configured rate (fresh so each
// transfer starts with a full burst) composed with the shared aggregate
// limiter, or nil when shaping is off — the unshaped fast path is a
// nil test.
func (c *Client) xferLimiter() *pacing.Limiter {
	b := pacing.NewBucket(c.rateBps, c.rateBurst)
	if b == nil && c.aggLimiter == nil {
		return nil
	}
	return c.aggLimiter.With(b)
}

// applyCallOptions is the per-call prologue: options passed on a
// transfer API are applied (and persist) before the transfer runs.
func (c *Client) applyCallOptions(opts []TransferOption) error {
	if len(opts) == 0 {
		return nil
	}
	if err := c.ApplyOptions(opts...); err != nil {
		return fmt.Errorf("gridftp: applying transfer options: %w", err)
	}
	return nil
}
