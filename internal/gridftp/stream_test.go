package gridftp

import (
	"bytes"
	"context"
	"hash/crc32"
	"net"
	"strings"
	"testing"
	"time"

	"gftpvc/internal/faultnet"
	"gftpvc/internal/telemetry"
)

// loginStream dials with streaming-friendly options and logs in.
func loginStream(t *testing.T, addr string, opts ...Option) *Client {
	t.Helper()
	c, err := Dial(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Login("anonymous", "test@"); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestStreamRetrLargerThanWindow is the acceptance case for the
// streaming read path: an object much larger than the reassembly
// window arrives complete and byte-identical to the buffered path,
// with client memory bounded by the window (the assembler allocates
// window + bitmap up front and nothing else grows with object size).
func TestStreamRetrLargerThanWindow(t *testing.T) {
	const window = 128 << 10
	store := NewMemStore()
	want := randomPayload(2 << 20) // 16 windows
	store.Put("big.bin", want)
	s := startServer(t, Config{Store: store, BlockSize: 16 << 10})
	c := loginStream(t, s.Addr(), WithWindow(window))
	if err := c.SetParallelism(3); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	stats, err := c.RetrTo(context.Background(), "big.bin", &out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("streamed bytes differ from stored object")
	}
	if stats.Bytes != int64(len(want)) {
		t.Fatalf("delivered %d bytes, want %d", stats.Bytes, len(want))
	}
	if stats.WireBytes != stats.Bytes {
		t.Fatalf("wire=%d delivered=%d: clean transfer should re-send nothing", stats.WireBytes, stats.Bytes)
	}
	// Byte-identical checksum to the buffered path.
	buffered, _, err := c.Retr("big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if crc32.ChecksumIEEE(out.Bytes()) != crc32.ChecksumIEEE(buffered) {
		t.Fatal("streaming and buffered retrievals disagree")
	}
}

// TestStreamStorLargerThanWindow: the windowed receive path stores an
// object many times the server's window, byte-identical to a buffered
// upload of the same payload. (The window is 256KiB — the smallest
// that also admits the buffered client's fixed block size — and the
// object is eight windows.)
func TestStreamStorLargerThanWindow(t *testing.T) {
	const window = 256 << 10
	store := NewMemStore()
	s := startServer(t, Config{Store: store, WindowSize: window, BlockSize: 16 << 10})
	c := loginStream(t, s.Addr(), WithWindow(window))
	if err := c.SetParallelism(3); err != nil {
		t.Fatal(err)
	}

	want := randomPayload(2 << 20)
	stats, err := c.StorFrom(context.Background(), "up.bin", bytes.NewReader(want), int64(len(want)))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bytes != int64(len(want)) {
		t.Fatalf("sent %d bytes, want %d", stats.Bytes, len(want))
	}
	got, err := store.Get("up.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("windowed store differs from payload")
	}
	// Same payload through the buffered client path must agree.
	if _, err := c.Stor("up2.bin", want); err != nil {
		t.Fatal(err)
	}
	sum1, err := c.Checksum("up.bin")
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := c.Checksum("up2.bin")
	if err != nil {
		t.Fatal(err)
	}
	if sum1 != sum2 {
		t.Fatalf("windowed crc %s != buffered crc %s", sum1, sum2)
	}
}

// TestStreamRetrResumeAt: REST-based streaming retrieval delivers the
// exact object suffix.
func TestStreamRetrResumeAt(t *testing.T) {
	store := NewMemStore()
	want := randomPayload(512 << 10)
	store.Put("obj.bin", want)
	s := startServer(t, Config{Store: store, BlockSize: 16 << 10})
	c := loginStream(t, s.Addr(), WithWindow(64<<10))

	const offset = 200_000
	var out bytes.Buffer
	stats, err := c.RetrToAt(context.Background(), "obj.bin", &out, offset)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want[offset:]) {
		t.Fatal("resumed retrieval differs from object suffix")
	}
	if stats.Bytes != int64(len(want)-offset) {
		t.Fatalf("delivered %d, want %d", stats.Bytes, len(want)-offset)
	}
}

// TestStreamStorResumeAppends: a partial upload followed by a REST
// continuation yields the complete object — the watermark the dst
// reports via SIZE is exactly where the continuation must begin.
func TestStreamStorResumeAppends(t *testing.T) {
	store := NewMemStore()
	s := startServer(t, Config{Store: store, WindowSize: 64 << 10})
	c := loginStream(t, s.Addr(), WithWindow(64<<10))

	want := randomPayload(300 << 10)
	const cut = 120_000
	ctx := context.Background()
	if _, err := c.StorFrom(ctx, "res.bin", bytes.NewReader(want[:cut]), cut); err != nil {
		t.Fatal(err)
	}
	watermark, err := c.Size("res.bin")
	if err != nil {
		t.Fatal(err)
	}
	if watermark != cut {
		t.Fatalf("watermark %d, want %d", watermark, cut)
	}
	if _, err := c.StorFromAt(ctx, "res.bin", bytes.NewReader(want[watermark:]), watermark, int64(len(want))-watermark); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get("res.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed object differs from payload")
	}
}

// TestStreamStorResetLeavesResumablePartial is the fault-matrix
// acceptance case at the protocol layer: a connection reset at ~60% of
// an upload must leave a partial object whose SIZE is a valid restart
// watermark, and completing from that watermark must (a) produce a
// byte-identical object and (b) re-send strictly less than the full
// object — the wire-vs-delivered counter gap stays bounded by one
// reassembly window plus per-connection framing slack.
func TestStreamStorResetLeavesResumablePartial(t *testing.T) {
	const (
		size    = 1 << 20
		window  = 64 << 10
		block   = 16 << 10
		resetAt = int64(size * 6 / 10)
	)
	hub := telemetry.NewHub()
	store := NewMemStore()
	// Reset the first data connection after it has carried ~60% of the
	// object; later transfers (the resume attempt) get clean conns.
	transfers := 0
	tracker := &faultnet.Tracker{PlanFor: func(i int) *faultnet.ConnPlan {
		if transfers == 0 {
			transfers++
			return &faultnet.ConnPlan{ResetReadAfter: resetAt}
		}
		return nil
	}}
	s := startServer(t, Config{
		Store:         store,
		WindowSize:    window,
		BlockSize:     block,
		DataTimeout:   500 * time.Millisecond,
		AcceptTimeout: 500 * time.Millisecond,
		DataListen:    tracker.Listen,
		Telemetry:     hub,
	})
	c := loginStream(t, s.Addr(), WithWindow(window), WithDataTimeout(500*time.Millisecond))

	want := randomPayload(size)
	ctx := context.Background()
	if _, err := c.StorFrom(ctx, "fault.bin", bytes.NewReader(want), size); err == nil {
		t.Fatal("upload through a resetting connection should fail")
	}
	watermark, err := c.Size("fault.bin")
	if err != nil {
		t.Fatalf("partial object must be probeable: %v", err)
	}
	if watermark <= 0 || watermark >= size {
		t.Fatalf("watermark %d outside (0,%d)", watermark, size)
	}
	got, err := store.Get("fault.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[:watermark]) {
		t.Fatal("partial object is not a clean prefix of the payload")
	}

	// Resume from the watermark.
	if _, err := c.StorFromAt(ctx, "fault.bin", bytes.NewReader(want[watermark:]), watermark, size-watermark); err != nil {
		t.Fatal(err)
	}
	got, err = store.Get("fault.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed object differs from payload")
	}

	// The redundant traffic across both attempts is what the failed
	// attempt had received but not yet flushed: at most one window of
	// payload, plus MODE E framing and one in-flight scratch block per
	// connection.
	wire := hub.Counter("gridftp_server_transfer_bytes_total",
		"Wire bytes moved on data channels, by operation.", telemetry.L("op", "stor")).Value()
	delivered := hub.Counter("gridftp_server_delivered_bytes_total",
		"Payload bytes delivered to the store exactly once, by operation.", telemetry.L("op", "stor")).Value()
	if delivered != size {
		t.Fatalf("delivered counter %d, want %d", delivered, size)
	}
	headers := int64((size/block + 16) * modeEHeaderLen)
	slack := int64(window) + int64(block) + headers
	if gap := wire - delivered; gap <= 0 || gap > slack {
		t.Fatalf("wire-delivered gap %d outside (0, %d]: resume must re-send less than one window", gap, slack)
	}
}

// TestStreamStorOversizeRejectedBeforeParking: the MaxObjectSize guard
// must fire on the windowed path before any window-full parking, so a
// malicious offset is a prompt 426 instead of a DataTimeout-long park.
func TestStreamStorOversizeRejectedBeforeParking(t *testing.T) {
	s := startServer(t, Config{
		Store:         NewMemStore(),
		WindowSize:    32 << 10,
		MaxObjectSize: 64 << 10,
		DataTimeout:   5 * time.Second,
	})
	rs := rawDial(t, s.Addr())
	rs.login(t)
	reply := rs.cmd(t, "PASV", "227")
	open := strings.Index(reply, "(")
	closeIdx := strings.LastIndex(reply, ")")
	addr, err := parseHostPort(reply[open+1 : closeIdx])
	if err != nil {
		t.Fatal(err)
	}
	rs.cmd(t, "STOR huge.bin", "150")
	dc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	start := time.Now()
	if err := WriteBlock(dc, Block{Offset: 1 << 40, Data: []byte("boom")}); err != nil {
		t.Fatal(err)
	}
	rs.expect(t, "426")
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("oversize rejection took %v: it parked instead of failing fast", d)
	}
}
