package gridftp

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"gftpvc/internal/pacing"
	"gftpvc/internal/telemetry"
)

// Deadline defaults applied by Dial; see WithControlTimeout and
// WithDataTimeout.
const (
	DefaultControlTimeout = 30 * time.Second
	DefaultDataTimeout    = 30 * time.Second
	defaultDialTimeout    = 10 * time.Second
)

// ErrDesynced reports a control channel whose pending transfer status
// could not be drained after a failure: replies on it no longer match
// commands, so the client refuses further use. Open a fresh connection.
var ErrDesynced = errors.New("gridftp: control channel desynced by earlier failure; reconnect")

// Client drives a GridFTP server over a control connection. It supports
// parallel-stream and striped retrievals and stores, and third-party
// transfers between two servers.
//
// Every operation is deadline-bounded: control-channel commands by the
// control timeout and each data-connection read/write by the data
// timeout, so no method blocks indefinitely on a dead or stalled peer.
//
// A Client is not safe for concurrent use; GridFTP multiplexes one
// transfer at a time per control channel.
type Client struct {
	conn net.Conn
	r    *bufio.Reader

	parallelism    int
	controlTimeout time.Duration
	dataTimeout    time.Duration
	windowSize     int
	dialFunc       func(network, addr string) (net.Conn, error)
	desynced       bool

	hub  *telemetry.Hub
	met  *cliMetrics
	sess *telemetry.Span // session-scoped span: control_dial, auth, idle, teardown

	// trace is the end-to-end context bound by WithTransferTrace; zero
	// when tracing is off (the default), in which case nothing
	// trace-related touches the wire.
	trace telemetry.TraceContext

	// Rate shaping (WithRate/WithLimiter): every transfer mints a fresh
	// per-transfer bucket at rateBps composed with the shared aggregate
	// limiter. rateWired tracks whether the server accepted a SITE RATE
	// for this channel, so clearing only touches the wire when there is
	// something to clear.
	rateBps    int64
	rateBurst  int64
	aggLimiter *pacing.Limiter
	rateWired  bool
}

// Option configures a Client at Dial time.
type Option func(*Client)

// WithControlTimeout bounds every control-channel command write and
// reply read (default DefaultControlTimeout; <= 0 disables). When a
// transfer's error path must drain a pending status reply, the drain
// waits up to this long — keep it above the server's accept timeout or
// a rejected transfer may leave the channel desynced (the client then
// fails fast with ErrDesynced rather than corrupting replies).
func WithControlTimeout(d time.Duration) Option {
	return func(c *Client) { c.controlTimeout = d }
}

// WithDataTimeout bounds each read or write on a data connection
// (default DefaultDataTimeout; <= 0 disables): a stalled sender or
// receiver surfaces as a timeout error instead of hanging the transfer.
func WithDataTimeout(d time.Duration) Option {
	return func(c *Client) { c.dataTimeout = d }
}

// WithWindow sets the sliding reassembly window for the streaming
// retrieval APIs (RetrTo/RetrToAt; default DefaultWindowSize). The
// window bounds the client's peak receive memory and the worst-case
// duplicate bytes a resumed transfer re-delivers. It also sizes the
// streaming upload chunks (window/4, clamped to [4KiB, 256KiB]) so a
// symmetrically configured receiver always accepts them.
func WithWindow(bytes int) Option {
	return func(c *Client) { c.windowSize = bytes }
}

// WithDialFunc replaces the dialer used for the control and data
// connections; fault-injection tests use it to wrap connections.
func WithDialFunc(dial func(network, addr string) (net.Conn, error)) Option {
	return func(c *Client) { c.dialFunc = dial }
}

// WithTelemetry attaches a telemetry hub: the client then records
// dial/transfer metrics, a session span (control_dial, auth, idle,
// teardown — the control-channel half of the paper's phase breakdown),
// and one span per transfer (data_setup, stream, teardown) with its
// wire byte count.
func WithTelemetry(hub *telemetry.Hub) Option {
	return func(c *Client) { c.hub = hub }
}

// Reply is a control-channel response.
type Reply struct {
	Code  int
	Text  string
	Lines []string // bodies of multi-line replies
}

// ProtocolError reports an unexpected control-channel reply.
type ProtocolError struct {
	Verb  string
	Reply Reply
}

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("gridftp: %s failed: %d %s", e.Verb, e.Reply.Code, e.Reply.Text)
}

// Dial connects to a server's control channel and consumes the greeting.
// The default deadlines (DefaultControlTimeout, DefaultDataTimeout)
// apply unless overridden by options.
func Dial(addr string, opts ...Option) (*Client, error) {
	c := &Client{
		parallelism:    1,
		controlTimeout: DefaultControlTimeout,
		dataTimeout:    DefaultDataTimeout,
		windowSize:     DefaultWindowSize,
	}
	for _, o := range opts {
		o(c)
	}
	if c.windowSize < 1 {
		return nil, errors.New("gridftp: window must be positive")
	}
	c.met = newCliMetrics(c.hub)
	c.sess = c.hub.Span("session", addr, telemetry.PhaseControlDial)
	conn, err := c.dial(addr)
	if err != nil {
		c.met.dialDone(err)
		c.sess.End(err)
		return nil, err
	}
	c.conn = conn
	c.r = bufio.NewReader(conn)
	if _, err := c.expect("greeting", 220); err != nil {
		conn.Close()
		c.met.dialDone(err)
		c.sess.End(err)
		return nil, err
	}
	c.met.dialDone(nil)
	c.sess.Phase(telemetry.PhaseIdle)
	return c, nil
}

func (c *Client) dial(addr string) (net.Conn, error) {
	if c.dialFunc != nil {
		return c.dialFunc("tcp", addr)
	}
	return net.DialTimeout("tcp", addr, defaultDialTimeout)
}

// dataConn dials one data endpoint, applies the data timeout, and
// counts wire bytes into the transfer span (a nil span counts nothing).
// A nonzero token means the endpoint is a shared passive listener: the
// demux routing preamble is sent first, on the raw connection so it
// never lands in the wire-byte tally. A non-nil limiter slides a pacing
// wrapper under the byte counter, so counted bytes are exactly the
// rate-enforced bytes and throttle stalls land on the span; ctx bounds
// in-flight throttle waits (buffered callers pass Background — their
// waits are bounded by the bucket debt of one buffered write).
func (c *Client) dataConn(ctx context.Context, addr string, token uint64, sp *telemetry.Span, lim *pacing.Limiter) (net.Conn, error) {
	conn, err := c.dial(addr)
	if err != nil {
		return nil, err
	}
	if token != 0 {
		if err := writeDemuxPreamble(conn, token, c.dataTimeout); err != nil {
			conn.Close()
			return nil, err
		}
	}
	inner := withIdleTimeout(conn, c.dataTimeout)
	var shaped *telemetry.Counter
	if lim != nil {
		inner = pacing.WrapConn(ctx, inner, lim, sp.AddThrottleWait)
		shaped = c.met.shapedBytes()
	}
	return &countingConn{Conn: inner, span: sp, shaped: shaped}, nil
}

// Close terminates the session with QUIT.
func (c *Client) Close() error {
	c.sess.Phase(telemetry.PhaseTeardown)
	_, _ = c.cmd("QUIT")
	err := c.conn.Close()
	c.sess.End(nil)
	return err
}

// cmd sends one command and reads its reply.
func (c *Client) cmd(line string) (Reply, error) {
	if c.desynced {
		return Reply{}, ErrDesynced
	}
	if c.controlTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.controlTimeout))
	}
	if _, err := fmt.Fprintf(c.conn, "%s\r\n", line); err != nil {
		return Reply{}, err
	}
	return c.readReply()
}

// readReply parses a single- or multi-line FTP reply. Each line read is
// bounded by the control timeout so a mute server cannot hang the
// client.
func (c *Client) readReply() (Reply, error) {
	var rep Reply
	for {
		if c.controlTimeout > 0 {
			c.conn.SetReadDeadline(time.Now().Add(c.controlTimeout))
		}
		line, err := c.r.ReadString('\n')
		if err != nil {
			return rep, err
		}
		line = strings.TrimRight(line, "\r\n")
		if len(line) < 4 {
			return rep, fmt.Errorf("gridftp: malformed reply %q", line)
		}
		code, err := strconv.Atoi(line[:3])
		if err != nil {
			return rep, fmt.Errorf("gridftp: malformed reply %q", line)
		}
		rep.Code = code
		switch line[3] {
		case ' ':
			rep.Text = line[4:]
			return rep, nil
		case '-':
			rep.Lines = append(rep.Lines, line[4:])
		default:
			return rep, fmt.Errorf("gridftp: malformed reply %q", line)
		}
	}
}

// expect reads/validates a reply against the wanted code.
func (c *Client) expect(verb string, want int) (Reply, error) {
	rep, err := c.readReply()
	if err != nil {
		return rep, err
	}
	if rep.Code != want {
		return rep, &ProtocolError{Verb: verb, Reply: rep}
	}
	return rep, nil
}

// drainReply consumes the transfer-status reply (226/425/426) still
// owed on the control channel after a failed data phase, so the session
// stays in sync for the next command. The drain is always bounded —
// even with deadlines disabled — because this is exactly the path a
// dead server used to hang forever. If the reply never arrives the
// client is marked desynced and every later command fails fast with
// ErrDesynced instead of reading mismatched replies.
func (c *Client) drainReply() {
	if c.controlTimeout <= 0 {
		c.conn.SetReadDeadline(time.Now().Add(DefaultControlTimeout))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	if _, err := c.readReply(); err != nil {
		c.desynced = true
	}
}

// do sends a command and requires the given reply code.
func (c *Client) do(verb, line string, want int) (Reply, error) {
	rep, err := c.cmd(line)
	if err != nil {
		return rep, err
	}
	if rep.Code != want {
		return rep, &ProtocolError{Verb: verb, Reply: rep}
	}
	return rep, nil
}

// Login authenticates and establishes binary MODE E, the GridFTP
// transfer preconditions.
func (c *Client) Login(user, pass string) error {
	c.sess.Phase(telemetry.PhaseAuth)
	defer c.sess.Phase(telemetry.PhaseIdle)
	if _, err := c.do("USER", "USER "+user, 331); err != nil {
		return err
	}
	if _, err := c.do("PASS", "PASS "+pass, 230); err != nil {
		return err
	}
	if _, err := c.do("TYPE", "TYPE I", 200); err != nil {
		return err
	}
	_, err := c.do("MODE", "MODE E", 200)
	return err
}

// Noop sends NOOP, the keepalive probe: it both verifies the control
// channel end to end and resets the server's idle clock.
func (c *Client) Noop() error {
	_, err := c.do("NOOP", "NOOP", 200)
	return err
}

// SetTrace binds an end-to-end trace context to the session.
//
// Deprecated: use ApplyOptions(WithTransferTrace(tc)) — one checkout
// call rebinds trace, deadlines, window, and rate together.
func (c *Client) SetTrace(tc telemetry.TraceContext) error {
	return c.setTrace(tc)
}

// setTrace binds an end-to-end trace context to the session: the
// server is told via SITE TRID so its transfer spans and events link
// back to the caller's span, and this client's own transfer spans are
// tagged locally. A server that predates SITE TRID replies 500/502;
// the client degrades silently — local spans stay tagged, the server
// side simply contributes nothing to the trace. A zero TraceContext
// clears the binding without touching the wire, so untraced sessions
// remain byte-identical. Rebound per job on pooled connections.
func (c *Client) setTrace(tc telemetry.TraceContext) error {
	if tc.TraceID == "" {
		c.trace = telemetry.TraceContext{}
		return nil
	}
	if !tc.Valid() {
		return fmt.Errorf("gridftp: invalid trace context %q", tc.WireToken())
	}
	c.trace = tc
	if _, err := c.do("SITE", "SITE TRID "+tc.WireToken(), 200); err != nil {
		var pe *ProtocolError
		if errors.As(err, &pe) {
			// Old server: SITE unimplemented (502) or TRID unknown (500).
			return nil
		}
		return err
	}
	return nil
}

// tagTransferSpan links a transfer span into the bound trace (no-op
// when tracing is off or telemetry is absent).
func (c *Client) tagTransferSpan(sp *telemetry.Span) {
	if c.trace.TraceID != "" {
		sp.SetTrace(c.trace.TraceID, c.trace.ParentSID)
	}
}

// Desynced reports whether the control channel has been poisoned by an
// undrained failure; a pool must discard such a connection rather than
// hand it to the next job.
func (c *Client) Desynced() bool { return c.desynced }

// SetTimeouts rebinds the control and data deadlines (zero keeps the
// current value; negative disables). A pooled connection outlives any
// one job, so each checkout re-applies the job's own deadlines.
//
// Deprecated: use ApplyOptions(WithTimeouts(control, data)) — one
// checkout call rebinds trace, deadlines, window, and rate together.
func (c *Client) SetTimeouts(control, data time.Duration) {
	if control != 0 {
		c.controlTimeout = control
	}
	if control < 0 {
		c.controlTimeout = 0
	}
	if data != 0 {
		c.dataTimeout = data
	}
	if data < 0 {
		c.dataTimeout = 0
	}
}

// SetWindow rebinds the streaming reassembly window (see WithWindow)
// for the jobs a pooled connection serves next.
//
// Deprecated: use ApplyOptions(WithTransferWindow(bytes)) — one
// checkout call rebinds trace, deadlines, window, and rate together.
func (c *Client) SetWindow(bytes int) error {
	if bytes < 1 {
		return errors.New("gridftp: window must be positive")
	}
	c.windowSize = bytes
	return nil
}

// SetParallelism sets the number of parallel TCP streams for subsequent
// transfers (the Globus -p flag; OPTS RETR Parallelism).
func (c *Client) SetParallelism(n int) error {
	if n < 1 || n > 64 {
		return errors.New("gridftp: parallelism must be in [1,64]")
	}
	if _, err := c.do("OPTS", fmt.Sprintf("OPTS RETR Parallelism=%d,%d,%d;", n, n, n), 200); err != nil {
		return err
	}
	c.parallelism = n
	return nil
}

// SetBuffer sets the server's TCP buffer size hint (SBUF), recorded in
// usage logs.
func (c *Client) SetBuffer(bytes int64) error {
	_, err := c.do("SBUF", "SBUF "+strconv.FormatInt(bytes, 10), 200)
	return err
}

// Size returns an object's size.
func (c *Client) Size(name string) (int64, error) {
	rep, err := c.do("SIZE", "SIZE "+name, 213)
	if err != nil {
		return 0, err
	}
	return strconv.ParseInt(strings.TrimSpace(rep.Text), 10, 64)
}

// Checksum returns the server-side CRC32 of an object (lowercase hex),
// the GridFTP CKSM integrity hook.
func (c *Client) Checksum(name string) (string, error) {
	rep, err := c.do("CKSM", "CKSM CRC32 0 -1 "+name, 213)
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(rep.Text), nil
}

// List returns the names of the server's objects under prefix (NLST).
func (c *Client) List(prefix string) ([]string, error) {
	cmd := "NLST"
	if prefix != "" {
		cmd += " " + prefix
	}
	rep, err := c.do("NLST", cmd, 250)
	if err != nil {
		return nil, err
	}
	var names []string
	for i, l := range rep.Lines {
		if i == 0 { // "listing" header
			continue
		}
		if n := strings.TrimSpace(l); n != "" {
			names = append(names, n)
		}
	}
	return names, nil
}

// Features returns the server's FEAT list.
func (c *Client) Features() ([]string, error) {
	rep, err := c.do("FEAT", "FEAT", 211)
	if err != nil {
		return nil, err
	}
	return rep.Lines, nil
}

// passive requests PASV and returns the single data address plus the
// demux token a shared-passive server advertises (0 when the server
// uses per-transfer listeners).
func (c *Client) passive() (string, uint64, error) {
	rep, err := c.do("PASV", "PASV", 227)
	if err != nil {
		return "", 0, err
	}
	open := strings.Index(rep.Text, "(")
	close := strings.LastIndex(rep.Text, ")")
	if open < 0 || close <= open {
		return "", 0, fmt.Errorf("gridftp: malformed PASV reply %q", rep.Text)
	}
	addr, err := parseHostPort(rep.Text[open+1 : close])
	if err != nil {
		return "", 0, err
	}
	return addr, parseDemuxToken(rep.Text[:open]), nil
}

// stripedPassive requests SPAS and returns one data address per stripe
// plus the demux token (0 when absent). The token rides the comma-free
// header line, the addresses the comma lines.
func (c *Client) stripedPassive() ([]string, uint64, error) {
	rep, err := c.do("SPAS", "SPAS", 229)
	if err != nil {
		return nil, 0, err
	}
	var addrs []string
	var token uint64
	for _, l := range rep.Lines {
		l = strings.TrimSpace(l)
		if !strings.Contains(l, ",") {
			if t := parseDemuxToken(l); t != 0 {
				token = t
			}
			continue
		}
		a, err := parseHostPort(l)
		if err != nil {
			return nil, 0, err
		}
		addrs = append(addrs, a)
	}
	if len(addrs) == 0 {
		return nil, 0, errors.New("gridftp: SPAS returned no addresses")
	}
	return addrs, token, nil
}

// TransferStats describes one completed client-side transfer.
type TransferStats struct {
	Bytes         int64
	Duration      time.Duration
	Streams       int
	Stripes       int
	ThroughputBps float64
	// WireBytes is the payload byte count that crossed the data
	// channels, including duplicate regions a resumed sender
	// re-transmitted; it equals Bytes when nothing was re-sent. Only
	// the streaming APIs (RetrTo/StorFrom families) populate it — the
	// buffered APIs leave it zero.
	WireBytes int64
	// StorAccepted reports that the server accepted this upload's STOR
	// command; StorFrom/StorFromAt set it even when the transfer later
	// fails. Until acceptance the server has not touched the named
	// object, so resume logic must not read a pre-existing object's
	// SIZE as this transfer's delivered watermark.
	StorAccepted bool
}

// Retr fetches an object using the configured parallelism over a single
// stripe (PASV + n connections to the same listener).
func (c *Client) Retr(name string, opts ...TransferOption) ([]byte, TransferStats, error) {
	if err := c.applyCallOptions(opts); err != nil {
		return nil, TransferStats{}, err
	}
	return c.retr(name, false, 0, -1, false)
}

// RetrStriped fetches an object in striped mode (SPAS; one connection per
// server stripe).
func (c *Client) RetrStriped(name string, opts ...TransferOption) ([]byte, TransferStats, error) {
	if err := c.applyCallOptions(opts); err != nil {
		return nil, TransferStats{}, err
	}
	return c.retr(name, true, 0, -1, false)
}

// RetrPartial fetches the byte region [offset, offset+length) of an
// object with GridFTP's ERET extension.
func (c *Client) RetrPartial(name string, offset, length int64, opts ...TransferOption) ([]byte, TransferStats, error) {
	if offset < 0 || length <= 0 {
		return nil, TransferStats{}, errors.New("gridftp: invalid partial region")
	}
	if err := c.applyCallOptions(opts); err != nil {
		return nil, TransferStats{}, err
	}
	return c.retr(name, false, offset, length, false)
}

// RetrFrom resumes a retrieval at offset using REST, the failure-recovery
// path GridFTP sessions rely on.
func (c *Client) RetrFrom(name string, offset int64, opts ...TransferOption) ([]byte, TransferStats, error) {
	if offset < 0 {
		return nil, TransferStats{}, errors.New("gridftp: negative restart offset")
	}
	if err := c.applyCallOptions(opts); err != nil {
		return nil, TransferStats{}, err
	}
	return c.retr(name, false, offset, -1, true)
}

// retr wraps retrInner with per-transfer instrumentation: a span
// tracing data_setup -> stream -> teardown and the client transfer
// metrics.
func (c *Client) retr(name string, striped bool, offset, length int64, restart bool) ([]byte, TransferStats, error) {
	op := "retr"
	switch {
	case striped:
		op = "retr_striped"
	case length >= 0:
		op = "eret"
	case restart:
		op = "rest_retr"
	}
	sp := c.hub.Span(op, name, telemetry.PhaseSetup)
	c.tagTransferSpan(sp)
	start := time.Now()
	data, stats, err := c.retrInner(name, striped, offset, length, restart, sp)
	c.met.transferDone(op, err, sp.Bytes(), time.Since(start).Seconds())
	sp.End(err)
	return data, stats, err
}

func (c *Client) retrInner(name string, striped bool, offset, length int64, restart bool, sp *telemetry.Span) ([]byte, TransferStats, error) {
	size, err := c.Size(name)
	if err != nil {
		return nil, TransferStats{}, err
	}
	if offset > size {
		return nil, TransferStats{}, errors.New("gridftp: offset beyond object size")
	}
	regionLen := size - offset
	if length >= 0 && length < regionLen {
		regionLen = length
	}
	var addrs []string
	var token uint64
	if striped {
		addrs, token, err = c.stripedPassive()
	} else {
		var a string
		a, token, err = c.passive()
		if err == nil {
			for i := 0; i < c.parallelism; i++ {
				addrs = append(addrs, a)
			}
		}
	}
	if err != nil {
		return nil, TransferStats{}, err
	}
	start := time.Now()
	switch {
	case restart:
		if _, err := c.do("REST", fmt.Sprintf("REST %d", offset), 350); err != nil {
			return nil, TransferStats{}, err
		}
		if _, err := c.do("RETR", "RETR "+name, 150); err != nil {
			return nil, TransferStats{}, err
		}
	case length >= 0:
		cmd := fmt.Sprintf("ERET P %d %d %s", offset, length, name)
		if _, err := c.do("ERET", cmd, 150); err != nil {
			return nil, TransferStats{}, err
		}
	default:
		if _, err := c.do("RETR", "RETR "+name, 150); err != nil {
			return nil, TransferStats{}, err
		}
	}
	asm, err := NewRegionAssembler(uint64(offset), regionLen)
	if err != nil {
		return nil, TransferStats{}, err
	}
	sp.SetStreams(len(addrs))
	sp.Phase(telemetry.PhaseStream)
	lim := c.xferLimiter()
	var wg sync.WaitGroup
	errs := make([]error, len(addrs))
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			conn, err := c.dataConn(context.Background(), addr, token, sp, lim)
			if err != nil {
				errs[i] = err
				return
			}
			defer conn.Close()
			_, errs[i] = asm.DrainConn(bufio.NewReaderSize(conn, 64<<10))
		}(i, addr)
	}
	wg.Wait()
	sp.Phase(telemetry.PhaseTeardown)
	for _, e := range errs {
		if e != nil {
			c.drainReply() // the pending 226/426, deadline-bounded
			return nil, TransferStats{}, e
		}
	}
	if _, err := c.expect("RETR-complete", 226); err != nil {
		return nil, TransferStats{}, err
	}
	if !asm.Complete() {
		return nil, TransferStats{}, fmt.Errorf("%w: incomplete transfer", ErrDataProtocol)
	}
	stats := c.stats(regionLen, start, len(addrs), striped)
	return asm.Bytes(), stats, nil
}

// Stor uploads an object using the configured parallelism.
func (c *Client) Stor(name string, data []byte, opts ...TransferOption) (TransferStats, error) {
	if err := c.applyCallOptions(opts); err != nil {
		return TransferStats{}, err
	}
	addr, token, err := c.passive()
	if err != nil {
		return TransferStats{}, err
	}
	addrs := make([]string, c.parallelism)
	for i := range addrs {
		addrs[i] = addr
	}
	return c.stor(name, data, addrs, token, false)
}

// StorStriped uploads an object in striped mode: one data connection per
// server stripe (SPAS), blocks interleaved round-robin.
func (c *Client) StorStriped(name string, data []byte, opts ...TransferOption) (TransferStats, error) {
	if err := c.applyCallOptions(opts); err != nil {
		return TransferStats{}, err
	}
	addrs, token, err := c.stripedPassive()
	if err != nil {
		return TransferStats{}, err
	}
	return c.stor(name, data, addrs, token, true)
}

// stor wraps storInner with the same per-transfer instrumentation as
// retr.
func (c *Client) stor(name string, data []byte, addrs []string, token uint64, striped bool) (TransferStats, error) {
	op := "stor"
	if striped {
		op = "stor_striped"
	}
	sp := c.hub.Span(op, name, telemetry.PhaseSetup)
	c.tagTransferSpan(sp)
	start := time.Now()
	stats, err := c.storInner(name, data, addrs, token, striped, sp)
	c.met.transferDone(op, err, sp.Bytes(), time.Since(start).Seconds())
	sp.End(err)
	return stats, err
}

func (c *Client) storInner(name string, data []byte, addrs []string, token uint64, striped bool, sp *telemetry.Span) (TransferStats, error) {
	start := time.Now()
	if _, err := c.do("STOR", "STOR "+name, 150); err != nil {
		return TransferStats{}, err
	}
	n := len(addrs)
	sp.SetStreams(n)
	sp.Phase(telemetry.PhaseStream)
	lim := c.xferLimiter()
	const blockSize = 256 << 10
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			conn, err := c.dataConn(context.Background(), addr, token, sp, lim)
			if err != nil {
				errs[i] = err
				return
			}
			defer conn.Close()
			bw := bufio.NewWriterSize(conn, 64<<10)
			if err := SendFile(bw, data, blockSize, i*blockSize, n*blockSize); err != nil {
				errs[i] = err
				return
			}
			errs[i] = bw.Flush()
		}(i, addr)
	}
	wg.Wait()
	sp.Phase(telemetry.PhaseTeardown)
	for _, e := range errs {
		if e != nil {
			c.drainReply()
			return TransferStats{}, e
		}
	}
	if _, err := c.expect("STOR-complete", 226); err != nil {
		return TransferStats{}, err
	}
	return c.stats(int64(len(data)), start, n, striped), nil
}

func (c *Client) stats(size int64, start time.Time, conns int, striped bool) TransferStats {
	d := time.Since(start)
	st := TransferStats{Bytes: size, Duration: d}
	if striped {
		st.Stripes, st.Streams = conns, 1
	} else {
		st.Stripes, st.Streams = 1, conns
	}
	if d > 0 {
		st.ThroughputBps = float64(size) * 8 / d.Seconds()
	}
	return st
}

// ThirdParty performs a server-to-server transfer: src RETRs the object
// straight into dst's data port while this client drives both control
// channels — GridFTP's third-party transfer, which is how the scripts
// behind the paper's sessions move directory trees between DTNs.
//
// If the transfer fails after dst accepted its STOR, dst still owes a
// completion reply (a 425/426 once its data accept times out or its
// peer vanishes); ThirdParty drains it, bounded by dst's control
// timeout, so both clients remain usable — a failed transfer must not
// poison the sessions that retry managers like xferman reuse.
func ThirdParty(src, dst *Client, srcName, dstName string) error {
	_, err := ThirdPartyFrom(src, dst, srcName, dstName, 0)
	return err
}

// ThirdPartyFrom is ThirdParty resuming at a byte offset: REST is
// issued on both control channels, so src retransmits only [offset, …)
// and dst appends it to the partial object whose Size is the offset —
// the resume-aware retry path that re-sends at most one reassembly
// window of duplicates instead of the whole object.
//
// dstEngaged reports whether dst accepted the STOR command. A
// resume-aware retry may only trust the destination object's SIZE as
// this job's delivered watermark once that happened — before
// acceptance a failure leaves any pre-existing object under dstName
// untouched, and resuming at its stale size would splice old bytes
// under new ones.
func ThirdPartyFrom(src, dst *Client, srcName, dstName string, offset int64) (dstEngaged bool, err error) {
	if offset < 0 {
		return false, errors.New("gridftp: negative restart offset")
	}
	// dst opens a passive data port; src connects to it actively.
	addr, token, err := dst.passive()
	if err != nil {
		return false, err
	}
	tcp, err := net.ResolveTCPAddr("tcp", addr)
	if err != nil {
		return false, err
	}
	port := fmt.Sprintf("%d,%d", tcp.Port/256, tcp.Port%256)
	ip4 := tcp.IP.To4()
	if ip4 == nil {
		return false, errors.New("gridftp: third-party requires IPv4 data address")
	}
	hostPort := fmt.Sprintf("%d,%d,%d,%d,%s", ip4[0], ip4[1], ip4[2], ip4[3], port)
	if token != 0 {
		// dst's port is a shared passive listener: src must present its
		// demux token, carried as PORT's second field.
		hostPort += fmt.Sprintf(" %016x", token)
	}
	if _, err := src.do("PORT", "PORT "+hostPort, 200); err != nil {
		return false, err
	}
	if offset > 0 {
		if _, err := dst.do("REST", fmt.Sprintf("REST %d", offset), 350); err != nil {
			return false, err
		}
	}
	// Start the receiver first, then the sender.
	if _, err := dst.do("STOR", "STOR "+dstName, 150); err != nil {
		return false, err
	}
	// From here dst is mid-transfer and owes a completion reply; every
	// early exit must drain it or the next command on dst would read a
	// stale 425/426 as its own reply.
	if offset > 0 {
		if _, err := src.do("REST", fmt.Sprintf("REST %d", offset), 350); err != nil {
			dst.drainReply()
			return true, err
		}
	}
	if _, err := src.do("RETR", "RETR "+srcName, 150); err != nil {
		dst.drainReply()
		return true, err
	}
	if _, err := src.expect("RETR-complete", 226); err != nil {
		dst.drainReply()
		return true, err
	}
	_, err = dst.expect("STOR-complete", 226)
	return true, err
}
