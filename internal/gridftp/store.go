package gridftp

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Store is the backend a GridFTP server moves data against. The paper's
// four NERSC–ANL test categories (mem-mem, mem-disk, disk-mem, disk-disk)
// differ only in which backend the endpoints use; MemStore plays the
// memory role and a rate-limited wrapper can model a disk subsystem.
type Store interface {
	// Get returns the named object's contents.
	Get(name string) ([]byte, error)
	// Put stores the named object.
	Put(name string, data []byte) error
	// Size returns the object's length in bytes.
	Size(name string) (int64, error)
	// List returns the names of objects with the given prefix, sorted.
	List(prefix string) ([]string, error)
}

// ErrNotFound reports a missing object.
var ErrNotFound = errors.New("gridftp: object not found")

// ReaderAtStore is the optional streaming read side of a Store: a
// server whose store implements it serves RETR by reading stripes
// directly into per-connection buffers instead of materializing the
// whole object with Get. ReadObjectAt follows io.ReaderAt semantics
// (short reads at the object's tail return io.EOF with n > 0).
type ReaderAtStore interface {
	ReadObjectAt(name string, p []byte, off int64) (int, error)
}

// SnapshotStore is an optional refinement of ReaderAtStore. Each
// ReadObjectAt resolves the object anew, so a RETR overlapping a
// concurrent Put can interleave old- and new-version bytes in one
// response. SnapshotObject instead pins one immutable view of the
// object that the server reads for the transfer's whole duration,
// restoring the consistent-version semantics the buffered Get path
// had. Stores whose ReadObjectAt is already version-stable (stateless
// generators, copy-on-write files) don't need it.
type SnapshotStore interface {
	SnapshotObject(name string) (r io.ReaderAt, size int64, err error)
}

// StreamPutter is the optional streaming write side of a Store: a
// server whose store implements it receives STOR through a bounded
// reassembly window, committing each contiguous region as it flushes
// rather than buffering the object in RAM.
//
// BeginPut prepares the named object to receive data from byte offset
// base onward, truncating any existing content to base — so after a
// failed transfer the object's Size is exactly the delivered
// high-water mark, which is what a resume-aware retry probes for its
// REST offset. PutRegion appends/overwrites [off, off+len(p)); the
// windowed receiver always calls it in ascending contiguous order.
// FinishPut seals the object at its final size.
type StreamPutter interface {
	BeginPut(name string, base int64) error
	PutRegion(name string, off int64, p []byte) error
	FinishPut(name string, size int64) error
}

// PutAborter is an optional companion to StreamPutter: the server
// calls AbortPut when a streaming STOR fails after BeginPut engaged,
// so stores holding per-put resources (an open partial file) can
// release them. The delivered watermark must survive the abort —
// Size keeps reporting it, because it is the REST offset a
// resume-aware retry probes. Stores without per-put state (MemStore)
// don't need it.
type PutAborter interface {
	AbortPut(name string) error
}

// MemStore is an in-memory Store, safe for concurrent use.
type MemStore struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore {
	return &MemStore{objects: make(map[string][]byte)}
}

// Get implements Store. The returned slice is a copy.
func (m *MemStore) Get(name string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Put implements Store.
func (m *MemStore) Put(name string, data []byte) error {
	if name == "" {
		return errors.New("gridftp: empty object name")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	m.objects[name] = cp
	m.mu.Unlock()
	return nil
}

// SnapshotObject implements SnapshotStore without copying: the
// returned reader aliases the stored slice, which stays immutable
// because writers never scribble over a published array — Put swaps in
// a fresh copy, and BeginPut pins the partial's capacity at its base
// so the first PutRegion growth reallocates away from any aliased
// array before bytes land.
func (m *MemStore) SnapshotObject(name string) (io.ReaderAt, int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[name]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return bytes.NewReader(data), int64(len(data)), nil
}

// ReadObjectAt implements ReaderAtStore.
func (m *MemStore) ReadObjectAt(name string, p []byte, off int64) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if off < 0 || off > int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// BeginPut implements StreamPutter: the object is truncated to base so
// its Size tracks the delivered watermark during a streaming STOR. The
// full slice expression pins capacity at base on purpose — the first
// region appended afterwards must reallocate, so arrays aliased by
// earlier SnapshotObject readers are never written in place.
func (m *MemStore) BeginPut(name string, base int64) error {
	if name == "" {
		return errors.New("gridftp: empty object name")
	}
	if base < 0 {
		return fmt.Errorf("gridftp: negative put base %d", base)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	data := m.objects[name]
	if int64(len(data)) < base {
		return fmt.Errorf("gridftp: restart offset %d beyond stored %d bytes", base, len(data))
	}
	m.objects[name] = data[:base:base]
	return nil
}

// PutRegion implements StreamPutter. Regions must arrive in ascending
// contiguous order from the BeginPut base, as the windowed receiver
// flushes them — rewriting already-committed bytes would be visible to
// concurrent SnapshotObject readers. Growth doubles the capacity so a
// streaming STOR of an N-byte object copies O(N) total, not a full
// object per flushed window.
func (m *MemStore) PutRegion(name string, off int64, p []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.objects[name]
	if !ok {
		return fmt.Errorf("%w: %s (PutRegion before BeginPut)", ErrNotFound, name)
	}
	end := off + int64(len(p))
	if off < 0 || off > int64(len(data)) {
		return fmt.Errorf("gridftp: non-contiguous region at %d (have %d bytes)", off, len(data))
	}
	if end > int64(len(data)) {
		if end > int64(cap(data)) {
			newCap := int64(cap(data)) * 2
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, data)
			data = grown
		} else {
			data = data[:end]
		}
	}
	copy(data[off:end], p)
	m.objects[name] = data
	return nil
}

// FinishPut implements StreamPutter.
func (m *MemStore) FinishPut(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.objects[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if int64(len(data)) != size {
		return fmt.Errorf("gridftp: finish size %d, stored %d bytes", size, len(data))
	}
	return nil
}

// Size implements Store.
func (m *MemStore) Size(name string) (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return int64(len(data)), nil
}

// List implements Store.
func (m *MemStore) List(prefix string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for name := range m.objects {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// SyntheticStore serves deterministic pseudo-random content of a
// configured size for any name, the equivalent of GridFTP's memory-to-
// memory test transfers (/dev/zero endpoints): no disk is touched and the
// payload needs no preloading. Puts are discarded after validation.
type SyntheticStore struct {
	// ObjectSize is the size reported and served for every object.
	ObjectSize int64
}

// Get implements Store with a repeating pattern payload.
func (s *SyntheticStore) Get(name string) ([]byte, error) {
	if s.ObjectSize < 0 {
		return nil, errors.New("gridftp: negative synthetic size")
	}
	data := make([]byte, s.ObjectSize)
	for i := range data {
		data[i] = byte(i * 131)
	}
	return data, nil
}

// Put implements Store; the payload is validated and dropped.
func (s *SyntheticStore) Put(name string, data []byte) error {
	if name == "" {
		return errors.New("gridftp: empty object name")
	}
	return nil
}

// ReadObjectAt implements ReaderAtStore by generating the pattern for
// just the requested region, so synthetic objects far larger than RAM
// stream without ever being materialized.
func (s *SyntheticStore) ReadObjectAt(name string, p []byte, off int64) (int, error) {
	if s.ObjectSize < 0 {
		return 0, errors.New("gridftp: negative synthetic size")
	}
	if off < 0 || off >= s.ObjectSize {
		return 0, io.EOF
	}
	n := len(p)
	if rem := s.ObjectSize - off; int64(n) > rem {
		n = int(rem)
	}
	for i := 0; i < n; i++ {
		p[i] = byte((off + int64(i)) * 131)
	}
	if int64(n) < int64(len(p)) {
		return n, io.EOF
	}
	return n, nil
}

// BeginPut implements StreamPutter; synthetic puts are discarded.
func (s *SyntheticStore) BeginPut(name string, base int64) error {
	if name == "" {
		return errors.New("gridftp: empty object name")
	}
	return nil
}

// PutRegion implements StreamPutter; the payload is dropped.
func (s *SyntheticStore) PutRegion(name string, off int64, p []byte) error { return nil }

// FinishPut implements StreamPutter.
func (s *SyntheticStore) FinishPut(name string, size int64) error { return nil }

// Size implements Store.
func (s *SyntheticStore) Size(name string) (int64, error) { return s.ObjectSize, nil }

// List implements Store; a synthetic store has no enumerable catalogue.
func (s *SyntheticStore) List(prefix string) ([]string, error) { return nil, nil }
