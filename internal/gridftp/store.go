package gridftp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Store is the backend a GridFTP server moves data against. The paper's
// four NERSC–ANL test categories (mem-mem, mem-disk, disk-mem, disk-disk)
// differ only in which backend the endpoints use; MemStore plays the
// memory role and a rate-limited wrapper can model a disk subsystem.
type Store interface {
	// Get returns the named object's contents.
	Get(name string) ([]byte, error)
	// Put stores the named object.
	Put(name string, data []byte) error
	// Size returns the object's length in bytes.
	Size(name string) (int64, error)
	// List returns the names of objects with the given prefix, sorted.
	List(prefix string) ([]string, error)
}

// ErrNotFound reports a missing object.
var ErrNotFound = errors.New("gridftp: object not found")

// MemStore is an in-memory Store, safe for concurrent use.
type MemStore struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore {
	return &MemStore{objects: make(map[string][]byte)}
}

// Get implements Store. The returned slice is a copy.
func (m *MemStore) Get(name string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Put implements Store.
func (m *MemStore) Put(name string, data []byte) error {
	if name == "" {
		return errors.New("gridftp: empty object name")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	m.objects[name] = cp
	m.mu.Unlock()
	return nil
}

// Size implements Store.
func (m *MemStore) Size(name string) (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return int64(len(data)), nil
}

// List implements Store.
func (m *MemStore) List(prefix string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for name := range m.objects {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// SyntheticStore serves deterministic pseudo-random content of a
// configured size for any name, the equivalent of GridFTP's memory-to-
// memory test transfers (/dev/zero endpoints): no disk is touched and the
// payload needs no preloading. Puts are discarded after validation.
type SyntheticStore struct {
	// ObjectSize is the size reported and served for every object.
	ObjectSize int64
}

// Get implements Store with a repeating pattern payload.
func (s *SyntheticStore) Get(name string) ([]byte, error) {
	if s.ObjectSize < 0 {
		return nil, errors.New("gridftp: negative synthetic size")
	}
	data := make([]byte, s.ObjectSize)
	for i := range data {
		data[i] = byte(i * 131)
	}
	return data, nil
}

// Put implements Store; the payload is validated and dropped.
func (s *SyntheticStore) Put(name string, data []byte) error {
	if name == "" {
		return errors.New("gridftp: empty object name")
	}
	return nil
}

// Size implements Store.
func (s *SyntheticStore) Size(name string) (int64, error) { return s.ObjectSize, nil }

// List implements Store; a synthetic store has no enumerable catalogue.
func (s *SyntheticStore) List(prefix string) ([]string, error) { return nil, nil }
