package gridftp

import (
	"bytes"
	"io"
	"testing"
)

// putRegions replays data into the store through the streaming-put
// protocol in small ascending regions, the way the windowed receiver
// flushes them, forcing several growth reallocations along the way.
func putRegions(t *testing.T, s StreamPutter, name string, base int64, data []byte, region int) {
	t.Helper()
	if err := s.BeginPut(name, base); err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); off += region {
		end := off + region
		if end > len(data) {
			end = len(data)
		}
		if err := s.PutRegion(name, base+int64(off), data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FinishPut(name, base+int64(len(data))); err != nil {
		t.Fatal(err)
	}
}

// readSnapshot drains a snapshot reader into a fresh slice.
func readSnapshot(t *testing.T, r io.ReaderAt, size int64) []byte {
	t.Helper()
	out := make([]byte, size)
	if n, err := r.ReadAt(out, 0); int64(n) != size || (err != nil && err != io.EOF) {
		t.Fatalf("snapshot read: n=%d err=%v, want %d bytes", n, err, size)
	}
	return out
}

// TestMemStoreSnapshotSurvivesRewrite pins SnapshotObject's contract:
// a snapshot taken before a streaming rewrite keeps serving its
// version byte-for-byte while BeginPut/PutRegion build the next one —
// the consistency a RETR overlapping a concurrent STOR relies on.
func TestMemStoreSnapshotSurvivesRewrite(t *testing.T) {
	m := NewMemStore()
	v1 := bytes.Repeat([]byte{1}, 300_000)
	if err := m.Put("obj", v1); err != nil {
		t.Fatal(err)
	}
	snap1, size1, err := m.SnapshotObject("obj")
	if err != nil || size1 != int64(len(v1)) {
		t.Fatalf("snapshot: size=%d err=%v", size1, err)
	}

	v2 := bytes.Repeat([]byte{2}, 400_000)
	putRegions(t, m, "obj", 0, v2, 7_000)
	if !bytes.Equal(readSnapshot(t, snap1, size1), v1) {
		t.Fatal("pre-rewrite snapshot observed the rewrite")
	}
	cur, err := m.Get("obj")
	if err != nil || !bytes.Equal(cur, v2) {
		t.Fatalf("store holds wrong version after rewrite (err=%v)", err)
	}

	// Resumed put: truncate to a mid-object base and append a suffix.
	// A snapshot of v2 must still see all of v2, even though the
	// resumed put's prefix shares its bytes.
	snap2, size2, err := m.SnapshotObject("obj")
	if err != nil || size2 != int64(len(v2)) {
		t.Fatalf("snapshot: size=%d err=%v", size2, err)
	}
	const base = 100_000
	suffix := bytes.Repeat([]byte{3}, 250_000)
	putRegions(t, m, "obj", base, suffix, 9_000)
	if !bytes.Equal(readSnapshot(t, snap2, size2), v2) {
		t.Fatal("snapshot observed the resumed put")
	}
	want := append(append([]byte{}, v2[:base]...), suffix...)
	cur, err = m.Get("obj")
	if err != nil || !bytes.Equal(cur, want) {
		t.Fatalf("resumed object wrong (err=%v)", err)
	}
}

// TestMemStorePutRegionGrowthIsExact checks the amortized-growth path
// byte-for-byte: tiny regions, sizes straddling the doubling
// boundaries, and a final length that is not a multiple of anything.
func TestMemStorePutRegionGrowthIsExact(t *testing.T) {
	m := NewMemStore()
	want := make([]byte, 123_457)
	for i := range want {
		want[i] = byte(i * 7)
	}
	putRegions(t, m, "obj", 0, want, 613)
	got, err := m.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("region-grown object differs")
	}
	if n, _ := m.Size("obj"); n != int64(len(want)) {
		t.Fatalf("Size=%d, want %d", n, len(want))
	}
}
