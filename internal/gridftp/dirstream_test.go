package gridftp

import (
	"bytes"
	"context"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"gftpvc/internal/faultnet"
	"gftpvc/internal/telemetry"
)

// patternReader generates a deterministic byte pattern without ever
// materializing it, so an upload's memory footprint is the data plane's
// alone.
type patternReader struct {
	off, size int64
}

func patternByte(i int64) byte { return byte(i*131 + i>>13) }

func (r *patternReader) Read(p []byte) (int, error) {
	if r.off >= r.size {
		return 0, io.EOF
	}
	n := len(p)
	if rem := r.size - r.off; int64(n) > rem {
		n = int(rem)
	}
	for i := 0; i < n; i++ {
		p[i] = patternByte(r.off + int64(i))
	}
	r.off += int64(n)
	if r.off == r.size {
		return n, io.EOF
	}
	return n, nil
}

// patternCRC is the IEEE CRC32 of the first n pattern bytes, computed
// windowed so the expectation itself stays allocation-bounded.
func patternCRC(n int64) uint32 {
	var crc uint32
	buf := make([]byte, 64<<10)
	for off := int64(0); off < n; {
		m := int64(len(buf))
		if rem := n - off; m > rem {
			m = rem
		}
		for i := int64(0); i < m; i++ {
			buf[i] = patternByte(off + i)
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:m])
		off += m
	}
	return crc
}

// crcWriter folds everything written into a CRC32 — a sink that holds
// no payload.
type crcWriter struct {
	crc uint32
	n   int64
}

func (w *crcWriter) Write(p []byte) (int, error) {
	w.crc = crc32.Update(w.crc, crc32.IEEETable, p)
	w.n += int64(len(p))
	return len(p), nil
}

// TestDirStoreStreamingBoundedMemory is the tentpole acceptance case:
// a streaming STOR and RETR of an object 128x the reassembly window
// against a DirStore-backed server must move the bytes without either
// side ever materializing the object — total allocations across both
// transfers stay far below the object size — while remaining
// byte-identical to the pattern source.
func TestDirStoreStreamingBoundedMemory(t *testing.T) {
	const (
		objSize = int64(32 << 20) // 32 MiB
		window  = 256 << 10       // x128 smaller than the object
		block   = 64 << 10
	)
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, Config{Store: store, WindowSize: window, BlockSize: block})
	c := loginStream(t, s.Addr(), WithWindow(window))

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	ctx := context.Background()
	up, err := c.StorFrom(ctx, "big.bin", &patternReader{size: objSize}, objSize)
	if err != nil {
		t.Fatal(err)
	}
	sink := &crcWriter{}
	down, err := c.RetrTo(ctx, "big.bin", sink)
	if err != nil {
		t.Fatal(err)
	}

	runtime.ReadMemStats(&after)
	allocated := int64(after.TotalAlloc - before.TotalAlloc)
	// The whole-object paths would allocate >= objSize per direction;
	// the streaming paths allocate windows, bufio buffers, and scratch
	// blocks. Half the object is an order of magnitude of headroom
	// while still proving nothing materialized the payload.
	if allocated > objSize/2 {
		t.Fatalf("transfers allocated %d bytes (object is %d): a full-object buffer slipped in", allocated, objSize)
	}

	if up.Bytes != objSize || down.Bytes != objSize {
		t.Fatalf("moved %d up / %d down, want %d", up.Bytes, down.Bytes, objSize)
	}
	if sink.n != objSize || sink.crc != patternCRC(objSize) {
		t.Fatalf("retrieved stream differs from pattern (n=%d)", sink.n)
	}
	info, err := os.Stat(filepath.Join(dir, "big.bin"))
	if err != nil || info.Size() != objSize {
		t.Fatalf("on-disk object: size=%v err=%v, want %d", info, err, objSize)
	}
}

// TestDirStoreStorResetLeavesExactOnDiskWatermark is the disk half of
// the PR 5 resume contract: a connection reset mid-STOR leaves a
// partial sidecar whose on-disk size equals both the SIZE reply and
// the delivered-bytes counter exactly; resuming from that watermark
// completes a byte-identical object with redundancy bounded by one
// window plus framing slack.
func TestDirStoreStorResetLeavesExactOnDiskWatermark(t *testing.T) {
	const (
		size    = 1 << 20
		window  = 64 << 10
		block   = 16 << 10
		resetAt = int64(size * 6 / 10)
	)
	hub := telemetry.NewHub()
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	transfers := 0
	tracker := &faultnet.Tracker{PlanFor: func(i int) *faultnet.ConnPlan {
		if transfers == 0 {
			transfers++
			return &faultnet.ConnPlan{ResetReadAfter: resetAt}
		}
		return nil
	}}
	s := startServer(t, Config{
		Store:         store,
		WindowSize:    window,
		BlockSize:     block,
		DataTimeout:   500 * time.Millisecond,
		AcceptTimeout: 500 * time.Millisecond,
		DataListen:    tracker.Listen,
		Telemetry:     hub,
	})
	c := loginStream(t, s.Addr(), WithWindow(window), WithDataTimeout(500*time.Millisecond))

	want := randomPayload(size)
	ctx := context.Background()
	if _, err := c.StorFrom(ctx, "fault.bin", bytes.NewReader(want), size); err == nil {
		t.Fatal("upload through a resetting connection should fail")
	}
	watermark, err := c.Size("fault.bin")
	if err != nil {
		t.Fatalf("partial object must be probeable: %v", err)
	}
	if watermark <= 0 || watermark >= size {
		t.Fatalf("watermark %d outside (0,%d)", watermark, size)
	}
	// The on-disk sidecar IS the watermark: stat it directly.
	pp := filepath.Join(dir, ".gftp-partial.fault.bin")
	info, err := os.Stat(pp)
	if err != nil {
		t.Fatalf("partial sidecar missing after failed STOR: %v", err)
	}
	if info.Size() != watermark {
		t.Fatalf("sidecar is %d bytes but SIZE reports %d: on-disk watermark must be exact", info.Size(), watermark)
	}
	delivered := hub.Counter("gridftp_server_delivered_bytes_total",
		"Payload bytes delivered to the store exactly once, by operation.", telemetry.L("op", "stor")).Value()
	if delivered != watermark {
		t.Fatalf("delivered counter %d != on-disk watermark %d", delivered, watermark)
	}
	onDisk, err := os.ReadFile(pp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, want[:watermark]) {
		t.Fatal("partial sidecar is not a clean prefix of the payload")
	}
	// The committed namespace does not expose the partial.
	if _, err := store.Get("fault.bin"); err == nil {
		t.Fatal("Get served an uncommitted partial")
	}

	// Resume exactly from the on-disk watermark.
	if _, err := c.StorFromAt(ctx, "fault.bin", bytes.NewReader(want[watermark:]), watermark, size-watermark); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get("fault.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed object differs from payload")
	}
	if _, err := os.Stat(pp); !os.IsNotExist(err) {
		t.Fatalf("sidecar survived the committed resume (stat err=%v)", err)
	}

	// Redundancy across both attempts: bounded by one window plus MODE E
	// framing and in-flight scratch, same budget as the MemStore drill.
	wire := hub.Counter("gridftp_server_transfer_bytes_total",
		"Wire bytes moved on data channels, by operation.", telemetry.L("op", "stor")).Value()
	deliveredAll := hub.Counter("gridftp_server_delivered_bytes_total",
		"Payload bytes delivered to the store exactly once, by operation.", telemetry.L("op", "stor")).Value()
	if deliveredAll != size {
		t.Fatalf("delivered counter %d, want %d", deliveredAll, size)
	}
	headers := int64((size/block + 16) * modeEHeaderLen)
	slack := int64(window) + int64(block) + headers
	if gap := wire - deliveredAll; gap <= 0 || gap > slack {
		t.Fatalf("wire-delivered gap %d outside (0, %d]: resume must re-send less than one window", gap, slack)
	}
}

// TestDirStoreRetrSnapshotPinsVersionAcrossPut: a slow streaming RETR
// against a DirStore keeps serving the version it opened even when a
// Put replaces the object mid-transfer — the open-handle snapshot
// discipline on real files.
func TestDirStoreRetrSnapshotPinsVersionAcrossPut(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	v1 := randomPayload(512 << 10)
	if err := store.Put("obj", v1); err != nil {
		t.Fatal(err)
	}
	s := startServer(t, Config{Store: store, BlockSize: 8 << 10})
	c := loginStream(t, s.Addr(), WithWindow(64<<10))

	// interleaveWriter swaps the object mid-download, after the first
	// write lands.
	var out bytes.Buffer
	swapped := false
	iw := writerFunc(func(p []byte) (int, error) {
		if !swapped {
			swapped = true
			v2 := bytes.Repeat([]byte{0xCC}, 512<<10)
			if err := store.Put("obj", v2); err != nil {
				return 0, err
			}
		}
		return out.Write(p)
	})
	if _, err := c.RetrTo(context.Background(), "obj", iw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), v1) {
		t.Fatal("RETR interleaved versions: snapshot did not pin the opened file")
	}
}

// writerFunc adapts a function to io.Writer.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
