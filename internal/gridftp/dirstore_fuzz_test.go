package gridftp

import (
	"bytes"
	"testing"
)

// FuzzDirStorePutRegion drives the DirStore streaming-put state machine
// (BeginPut / PutRegion / FinishPut / AbortPut) with arbitrary op
// sequences and checks it against an in-memory model after every step.
// The invariant under test is the commit ordering the resume contract
// rests on: the partial sidecar's size equals the contiguous delivered
// watermark at all times (Size never runs ahead of or behind the bytes
// actually accepted), a commit replaces the object atomically with
// exactly the assembled bytes, and no op sequence — overlapping
// restarts, aborts, wrong finish sizes, out-of-order regions — can make
// the store and the model disagree about success, size, or content.
//
// Ops are 4 bytes each: [kind, a, b, fill] with kind%5 selecting
// BeginPut(base=(a|b<<8)%1500), a contiguous PutRegion of a%300 fill
// bytes, a PutRegion at arbitrary offset (a|b<<8)%2000, FinishPut with
// a correct or perturbed size, or AbortPut.
func FuzzDirStorePutRegion(f *testing.F) {
	// Clean upload: begin, two regions, exact finish.
	f.Add([]byte{0, 0, 0, 0, 1, 100, 0, 7, 1, 50, 0, 9, 3, 0, 0, 0})
	// Failed attempt then resume: regions, abort, begin at a base the
	// sidecar covers, more regions, finish.
	f.Add([]byte{0, 0, 0, 0, 1, 200, 0, 1, 4, 0, 0, 0, 0, 150, 0, 0, 1, 80, 0, 2, 3, 0, 0, 0})
	// Restart offset beyond everything on disk.
	f.Add([]byte{0, 220, 5, 0})
	// Region before any BeginPut, then an out-of-order region.
	f.Add([]byte{1, 10, 0, 3, 0, 0, 0, 0, 2, 77, 3, 4})
	// Wrong finish size, then a superseding BeginPut mid-flight.
	f.Add([]byte{0, 0, 0, 0, 1, 60, 0, 5, 3, 9, 1, 0, 0, 30, 0, 0, 1, 20, 0, 6, 3, 0, 0, 0})
	// Commit, then a second upload over the committed object seeded from
	// its prefix.
	f.Add([]byte{0, 0, 0, 0, 1, 90, 0, 8, 3, 0, 0, 0, 0, 40, 0, 0, 1, 10, 0, 1, 3, 0, 0, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		store, err := NewDirStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		const name = "obj"
		// The model: committed object bytes, sidecar bytes (nil = no
		// sidecar on disk), and the open-put state.
		var committed, sidecar []byte
		began := false
		var expect int64

		check := func(step int, op string, gotErr error, wantOK bool) {
			t.Helper()
			if (gotErr == nil) != wantOK {
				t.Fatalf("step %d %s: err=%v, model wants ok=%v", step, op, gotErr, wantOK)
			}
			// Size is the resume watermark: sidecar first, else committed.
			wantSize, wantSizeOK := int64(-1), false
			switch {
			case sidecar != nil:
				wantSize, wantSizeOK = int64(len(sidecar)), true
			case committed != nil:
				wantSize, wantSizeOK = int64(len(committed)), true
			}
			n, serr := store.Size(name)
			if (serr == nil) != wantSizeOK {
				t.Fatalf("step %d %s: Size err=%v, model wants ok=%v", step, op, serr, wantSizeOK)
			}
			if serr == nil && n != wantSize {
				t.Fatalf("step %d %s: Size=%d, model watermark %d", step, op, n, wantSize)
			}
		}

		for step := 0; len(ops) >= 4; step++ {
			kind, a, b, fill := ops[0]%5, ops[1], ops[2], ops[3]
			ops = ops[4:]
			switch kind {
			case 0: // BeginPut
				base := int64(uint16(a)|uint16(b)<<8) % 1500
				// Model: a superseded open put keeps its sidecar bytes. The
				// base must be covered by the sidecar when one exists, else
				// by the committed object (which seeds a fresh sidecar); a
				// rejected begin with no prior sidecar must not create one.
				began = false
				wantOK := false
				switch {
				case sidecar != nil:
					wantOK = int64(len(sidecar)) >= base
				case base == 0:
					wantOK = true
				case committed != nil && int64(len(committed)) >= base:
					wantOK = true
				}
				err := store.BeginPut(name, base)
				if err == nil {
					if sidecar == nil {
						if base > 0 {
							sidecar = append([]byte(nil), committed[:base]...)
						} else {
							sidecar = []byte{}
						}
					}
					sidecar = sidecar[:base]
					began, expect = true, base
				}
				check(step, "BeginPut", err, wantOK)
			case 1: // contiguous PutRegion at the model's watermark
				n := int(a) % 300
				data := bytes.Repeat([]byte{fill}, n)
				err := store.PutRegion(name, expect, data)
				if began {
					sidecar = append(sidecar, data...)
					expect += int64(n)
				}
				check(step, "PutRegion", err, began)
			case 2: // PutRegion at an arbitrary offset
				off := int64(uint16(a)|uint16(b)<<8) % 2000
				data := bytes.Repeat([]byte{fill}, 64)
				wantOK := began && off == expect
				err := store.PutRegion(name, off, data)
				if wantOK {
					sidecar = append(sidecar, data...)
					expect += 64
				}
				check(step, "PutRegion(off)", err, wantOK)
			case 3: // FinishPut, exact or perturbed size
				size := expect
				if b%2 == 1 {
					size += 1 + int64(a)
				}
				wantOK := began && size == expect
				err := store.FinishPut(name, size)
				began = false // the store drops the open state either way
				if wantOK {
					committed, sidecar = sidecar, nil
				}
				check(step, "FinishPut", err, wantOK)
			case 4: // AbortPut: always succeeds, watermark survives
				err := store.AbortPut(name)
				began = false
				check(step, "AbortPut", err, true)
			}
		}
		// Terminal state: the committed object is exactly the model's, and
		// an uncommitted partial is never served as an object.
		got, err := store.Get(name)
		if committed == nil {
			if err == nil {
				t.Fatalf("Get served %d bytes but nothing was ever committed", len(got))
			}
		} else {
			if err != nil {
				t.Fatalf("Get after commit: %v", err)
			}
			if !bytes.Equal(got, committed) {
				t.Fatalf("committed object diverged from model: got %d bytes, want %d", len(got), len(committed))
			}
		}
	})
}
