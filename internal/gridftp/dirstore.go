package gridftp

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DirStore is a Store backed by a directory on disk — the configuration a
// production GridFTP server runs with. Object names are slash-separated
// relative paths confined to the root directory.
type DirStore struct {
	root string
}

// NewDirStore opens a directory-backed store rooted at dir, which must
// exist.
func NewDirStore(dir string) (*DirStore, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	info, err := os.Stat(abs)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("gridftp: %s is not a directory", dir)
	}
	return &DirStore{root: abs}, nil
}

// Root returns the store's root directory.
func (d *DirStore) Root() string { return d.root }

// resolve maps an object name to an on-disk path, rejecting escapes from
// the root (".." traversal, absolute paths).
func (d *DirStore) resolve(name string) (string, error) {
	if name == "" {
		return "", errors.New("gridftp: empty object name")
	}
	if strings.Contains(name, "\x00") {
		return "", errors.New("gridftp: invalid object name")
	}
	clean := filepath.Clean("/" + filepath.FromSlash(name)) // anchor, then re-relativize
	full := filepath.Join(d.root, clean)
	if full != d.root && !strings.HasPrefix(full, d.root+string(filepath.Separator)) {
		return "", fmt.Errorf("gridftp: object name %q escapes store root", name)
	}
	return full, nil
}

// Get implements Store.
func (d *DirStore) Get(name string) ([]byte, error) {
	full, err := d.resolve(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(full)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return data, err
}

// Put implements Store, creating parent directories as needed.
func (d *DirStore) Put(name string, data []byte) error {
	full, err := d.resolve(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return err
	}
	// Write-then-rename so concurrent readers never see torn objects.
	tmp, err := os.CreateTemp(filepath.Dir(full), ".gftp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), full)
}

// List implements Store: a recursive walk returning slash-separated
// relative paths under the prefix, sorted. Temporary files from in-flight
// Puts are skipped.
func (d *DirStore) List(prefix string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(d.root, func(p string, entry os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if entry.IsDir() {
			return nil
		}
		if strings.HasPrefix(entry.Name(), ".gftp-") {
			return nil
		}
		rel, err := filepath.Rel(d.root, p)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// Size implements Store.
func (d *DirStore) Size(name string) (int64, error) {
	full, err := d.resolve(name)
	if err != nil {
		return 0, err
	}
	info, err := os.Stat(full)
	if errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return 0, err
	}
	if info.IsDir() {
		return 0, fmt.Errorf("%w: %s is a directory", ErrNotFound, name)
	}
	return info.Size(), nil
}
