package gridftp

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DirStore is a Store backed by a directory on disk — the configuration a
// production GridFTP server runs with. Object names are slash-separated
// relative paths confined to the root directory.
//
// DirStore implements the full streaming surface, so a server wired to
// it never falls back to whole-object buffering:
//
//   - ReaderAtStore: RETR reads stripes with pread-style ReadObjectAt,
//     one block buffer per connection.
//   - SnapshotStore: SnapshotObject hands the server an open file
//     handle; the write-then-rename discipline means that handle keeps
//     serving its version even while concurrent Puts replace the path.
//   - StreamPutter: STOR flushes contiguous regions into a
//     ".gftp-partial." sidecar file whose on-disk size is exactly the
//     delivered watermark, so after a failed transfer SIZE reports the
//     precise restart offset and FinishPut fsyncs and renames the
//     sealed object into place.
//   - PutAborter: a failed streaming STOR releases the partial's file
//     handle while leaving the watermark bytes on disk for the resume.
type DirStore struct {
	root string

	mu       sync.Mutex
	partials map[string]*dirPartial
}

// dirPartial is one in-flight streaming put: the open sidecar file and
// the next contiguous offset it expects.
type dirPartial struct {
	f      *os.File
	expect int64
}

// NewDirStore opens a directory-backed store rooted at dir, which must
// exist.
func NewDirStore(dir string) (*DirStore, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	info, err := os.Stat(abs)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("gridftp: %s is not a directory", dir)
	}
	return &DirStore{root: abs, partials: make(map[string]*dirPartial)}, nil
}

// Root returns the store's root directory.
func (d *DirStore) Root() string { return d.root }

// resolve maps an object name to an on-disk path, rejecting escapes from
// the root (".." traversal, absolute paths).
func (d *DirStore) resolve(name string) (string, error) {
	if name == "" {
		return "", errors.New("gridftp: empty object name")
	}
	if strings.Contains(name, "\x00") {
		return "", errors.New("gridftp: invalid object name")
	}
	clean := filepath.Clean("/" + filepath.FromSlash(name)) // anchor, then re-relativize
	full := filepath.Join(d.root, clean)
	if full != d.root && !strings.HasPrefix(full, d.root+string(filepath.Separator)) {
		return "", fmt.Errorf("gridftp: object name %q escapes store root", name)
	}
	return full, nil
}

// partialPath is the sidecar a streaming put assembles the object in.
// The ".gftp-" prefix keeps it out of List, like Put's temp files.
func partialPath(full string) string {
	return filepath.Join(filepath.Dir(full), ".gftp-partial."+filepath.Base(full))
}

// notFound maps OS-level lookup failures to the store's ErrNotFound:
// both a missing path and a path that resolves to a directory (an
// object namespace has no directory objects — Size already treated it
// that way, and Get/ReadObjectAt/SnapshotObject must agree).
func (d *DirStore) notFound(name string, err error) error {
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return err
}

// Get implements Store.
func (d *DirStore) Get(name string) ([]byte, error) {
	full, err := d.resolve(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(full)
	if err != nil {
		if info, serr := os.Stat(full); serr == nil && info.IsDir() {
			return nil, fmt.Errorf("%w: %s is a directory", ErrNotFound, name)
		}
		return nil, d.notFound(name, err)
	}
	return data, nil
}

// ReadObjectAt implements ReaderAtStore with a positional read against
// the committed object — no in-RAM copy of the object is ever built.
func (d *DirStore) ReadObjectAt(name string, p []byte, off int64) (int, error) {
	full, err := d.resolve(name)
	if err != nil {
		return 0, err
	}
	f, err := d.openObject(name, full)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return f.ReadAt(p, off)
}

// SnapshotObject implements SnapshotStore by handing out an open file
// handle: renames replace the directory entry, not the inode, so the
// handle serves exactly the version that was current when the transfer
// started. The returned reader is an io.Closer; the server closes it
// when the transfer ends.
func (d *DirStore) SnapshotObject(name string) (io.ReaderAt, int64, error) {
	full, err := d.resolve(name)
	if err != nil {
		return nil, 0, err
	}
	f, err := d.openObject(name, full)
	if err != nil {
		return nil, 0, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, info.Size(), nil
}

// openObject opens a committed object for reading, mapping missing
// paths and directories to ErrNotFound.
func (d *DirStore) openObject(name, full string) (*os.File, error) {
	f, err := os.Open(full)
	if err != nil {
		return nil, d.notFound(name, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if info.IsDir() {
		f.Close()
		return nil, fmt.Errorf("%w: %s is a directory", ErrNotFound, name)
	}
	return f, nil
}

// Put implements Store, creating parent directories as needed.
func (d *DirStore) Put(name string, data []byte) error {
	full, err := d.resolve(name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return err
	}
	// Write-then-rename so concurrent readers never see torn objects.
	tmp, err := os.CreateTemp(filepath.Dir(full), ".gftp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), full); err != nil {
		// A failed rename (target is a directory, parent vanished) must
		// not orphan the temp: a session looping failed Puts would
		// otherwise litter the root with .gftp-* files forever.
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// BeginPut implements StreamPutter: it opens the object's partial
// sidecar truncated to base, so from here on the sidecar's on-disk size
// is exactly the contiguous delivered watermark. The restart base is
// validated against the bytes actually on disk — the partial from an
// earlier failed attempt when one exists, otherwise the committed
// object (whose prefix seeds a fresh partial, mirroring MemStore's
// truncate-in-place semantics).
func (d *DirStore) BeginPut(name string, base int64) error {
	full, err := d.resolve(name)
	if err != nil {
		return err
	}
	if base < 0 {
		return fmt.Errorf("gridftp: negative put base %d", base)
	}
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if st := d.partials[full]; st != nil {
		// A new attempt supersedes a stranded one; the file survives and
		// is re-opened below.
		st.f.Close()
		delete(d.partials, full)
	}
	pp := partialPath(full)
	existing, err := os.Stat(pp)
	havePartial := err == nil
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	f, err := os.OpenFile(pp, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	fail := func(ferr error) error {
		f.Close()
		if !havePartial {
			// Never leave a fresh zero-byte sidecar behind: it would
			// shadow the committed object's SIZE with a bogus watermark.
			os.Remove(pp)
		}
		return ferr
	}
	switch {
	case havePartial:
		if existing.Size() < base {
			return fail(fmt.Errorf("gridftp: restart offset %d beyond stored %d bytes", base, existing.Size()))
		}
	case base > 0:
		// No partial: the watermark source is the committed object, whose
		// prefix seeds the fresh sidecar.
		src, oerr := d.openObject(name, full)
		if oerr != nil {
			if errors.Is(oerr, ErrNotFound) {
				oerr = fmt.Errorf("gridftp: restart offset %d beyond stored 0 bytes", base)
			}
			return fail(oerr)
		}
		info, serr := src.Stat()
		if serr == nil && info.Size() < base {
			serr = fmt.Errorf("gridftp: restart offset %d beyond stored %d bytes", base, info.Size())
		}
		if serr == nil {
			_, serr = io.CopyN(f, io.NewSectionReader(src, 0, base), base)
		}
		src.Close()
		if serr != nil {
			return fail(serr)
		}
	}
	if err := f.Truncate(base); err != nil {
		return fail(err)
	}
	d.partials[full] = &dirPartial{f: f, expect: base}
	return nil
}

// PutRegion implements StreamPutter with a positional write into the
// open partial. Regions must arrive in ascending contiguous order from
// the BeginPut base — exactly how the windowed receiver flushes them —
// so the sidecar's size never runs ahead of the delivered watermark.
func (d *DirStore) PutRegion(name string, off int64, p []byte) error {
	full, err := d.resolve(name)
	if err != nil {
		return err
	}
	d.mu.Lock()
	st := d.partials[full]
	d.mu.Unlock()
	if st == nil {
		return fmt.Errorf("%w: %s (PutRegion before BeginPut)", ErrNotFound, name)
	}
	if off != st.expect {
		return fmt.Errorf("gridftp: non-contiguous region at %d (have %d bytes)", off, st.expect)
	}
	if _, err := st.f.WriteAt(p, off); err != nil {
		return err
	}
	st.expect = off + int64(len(p))
	return nil
}

// FinishPut implements StreamPutter: fsync the assembled partial and
// rename it into place, so the committed object appears atomically and
// snapshot readers of the previous version keep their inode.
func (d *DirStore) FinishPut(name string, size int64) error {
	full, err := d.resolve(name)
	if err != nil {
		return err
	}
	d.mu.Lock()
	st := d.partials[full]
	delete(d.partials, full)
	d.mu.Unlock()
	if st == nil {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if st.expect != size {
		st.f.Close()
		return fmt.Errorf("gridftp: finish size %d, stored %d bytes", size, st.expect)
	}
	if err := st.f.Sync(); err != nil {
		st.f.Close()
		return err
	}
	if err := st.f.Close(); err != nil {
		return err
	}
	if err := os.Rename(partialPath(full), full); err != nil {
		return err
	}
	// Durability of the rename itself: fsync the containing directory
	// (best-effort — the data bytes are already synced).
	if dir, derr := os.Open(filepath.Dir(full)); derr == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// AbortPut implements PutAborter: release the partial's file handle but
// keep its bytes — the sidecar's size IS the delivered watermark the
// resume-aware retry will probe via SIZE and REST to.
func (d *DirStore) AbortPut(name string) error {
	full, err := d.resolve(name)
	if err != nil {
		return err
	}
	d.mu.Lock()
	st := d.partials[full]
	delete(d.partials, full)
	d.mu.Unlock()
	if st == nil {
		return nil
	}
	st.f.Sync()
	return st.f.Close()
}

// List implements Store: a recursive walk returning slash-separated
// relative paths under the prefix, sorted. Temporary files from in-flight
// Puts and partial sidecars are skipped, and entries that vanish
// mid-walk (a concurrent Put's temp being renamed away, a partial being
// committed) are ignored rather than aborting the listing.
func (d *DirStore) List(prefix string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(d.root, func(p string, entry os.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if entry.IsDir() {
			return nil
		}
		if strings.HasPrefix(entry.Name(), ".gftp-") {
			return nil
		}
		rel, err := filepath.Rel(d.root, p)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// Size implements Store. A partial sidecar takes precedence over the
// committed object: its on-disk size is the delivered watermark of the
// in-flight (or failed) streaming put, which is exactly what a
// resume-aware retry must read as its REST offset.
func (d *DirStore) Size(name string) (int64, error) {
	full, err := d.resolve(name)
	if err != nil {
		return 0, err
	}
	if info, perr := os.Stat(partialPath(full)); perr == nil && !info.IsDir() {
		return info.Size(), nil
	}
	info, err := os.Stat(full)
	if errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err != nil {
		return 0, err
	}
	if info.IsDir() {
		return 0, fmt.Errorf("%w: %s is a directory", ErrNotFound, name)
	}
	return info.Size(), nil
}
