package gridftp

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"
)

// benchStores is the backend axis of the storage benchmark: the same
// streaming STOR/RETR workload against RAM, disk, and the tiered cache,
// which is the server-side half of the paper's endpoint quadrants
// (memory vs disk endpoints in Fig. 1).
func benchStores(b *testing.B) []struct {
	name string
	make func(b *testing.B) Store
} {
	return []struct {
		name string
		make func(b *testing.B) Store
	}{
		{"mem", func(b *testing.B) Store { return NewMemStore() }},
		{"dir", func(b *testing.B) Store {
			d, err := NewDirStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			return d
		}},
		{"tiered", func(b *testing.B) Store {
			d, err := NewDirStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			ts, err := NewTieredStore(d, TieredOptions{MaxHotBytes: 64 << 20, MaxHotObjectBytes: 32 << 20})
			if err != nil {
				b.Fatal(err)
			}
			return ts
		}},
	}
}

// benchClient starts a server over the store and returns a logged-in
// streaming client.
func benchClient(b *testing.B, store Store, size int) *Client {
	b.Helper()
	s, err := Serve(Config{Addr: "127.0.0.1:0", Store: store,
		BlockSize: 256 << 10, WindowSize: 4 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	c, err := Dial(s.Addr(), WithWindow(4<<20))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	if err := c.Login("u", "p"); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkStoreRetr streams an 8 MiB object down repeatedly. The dir
// case measures the pread/snapshot path; tiered converges to hot-tier
// reads after the first iteration.
func BenchmarkStoreRetr(b *testing.B) {
	const size = 8 << 20
	for _, sf := range benchStores(b) {
		b.Run(sf.name, func(b *testing.B) {
			store := sf.make(b)
			payload := randomPayload(size)
			if err := store.Put("bench.bin", payload); err != nil {
				b.Fatal(err)
			}
			c := benchClient(b, store, size)
			ctx := context.Background()
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := c.RetrTo(ctx, "bench.bin", io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				if res.Bytes != size {
					b.Fatal("short read")
				}
			}
		})
	}
}

// BenchmarkStoreStor streams an 8 MiB object up repeatedly; the dir and
// tiered cases exercise the partial-sidecar write path end to end
// (BeginPut, contiguous WriteAt flushes, fsync, rename).
func BenchmarkStoreStor(b *testing.B) {
	const size = 8 << 20
	for _, sf := range benchStores(b) {
		b.Run(sf.name, func(b *testing.B) {
			store := sf.make(b)
			c := benchClient(b, store, size)
			payload := randomPayload(size)
			ctx := context.Background()
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := fmt.Sprintf("up-%d.bin", i)
				if _, err := c.StorFrom(ctx, name, bytes.NewReader(payload), size); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
