package gridftp

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func newTestDirStore(t *testing.T) *DirStore {
	t.Helper()
	d, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDirStoreDirectoryIsNotFound: a name resolving to a directory is
// not an object. Size already mapped this to ErrNotFound; Get,
// ReadObjectAt, and SnapshotObject must agree instead of leaking the
// raw OS "is a directory" error to a 550 reply.
func TestDirStoreDirectoryIsNotFound(t *testing.T) {
	d := newTestDirStore(t)
	if err := d.Put("sub/obj", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	checks := map[string]func() error{
		"Get":  func() error { _, err := d.Get("sub"); return err },
		"Size": func() error { _, err := d.Size("sub"); return err },
		"ReadObjectAt": func() error {
			_, err := d.ReadObjectAt("sub", make([]byte, 4), 0)
			return err
		},
		"SnapshotObject": func() error { _, _, err := d.SnapshotObject("sub"); return err },
		"BeginPutResume": func() error { return d.BeginPut("sub", 1) },
	}
	for name, call := range checks {
		err := call()
		if err == nil {
			t.Fatalf("%s on a directory succeeded", name)
		}
		if name == "BeginPutResume" {
			// The resume probe source is a directory: any error is fine as
			// long as it is not the raw EISDIR and no sidecar is left.
			continue
		}
		if !errors.Is(err, ErrNotFound) {
			t.Errorf("%s on a directory = %v, want ErrNotFound", name, err)
		}
	}
	// No stray partial sidecar from the failed BeginPut.
	if _, err := os.Stat(filepath.Join(d.Root(), ".gftp-partial.sub")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed BeginPut left a partial sidecar (stat err=%v)", err)
	}
}

// TestDirStorePutRenameFailureLeavesNoTemp is the orphaned-temp
// regression: when the final rename fails (here: the destination is a
// non-empty directory), the .gftp-* temp must be removed, not litter
// the root forever.
func TestDirStorePutRenameFailureLeavesNoTemp(t *testing.T) {
	d := newTestDirStore(t)
	if err := d.Put("sub/obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// "sub" resolves to the existing non-empty directory: CreateTemp
	// succeeds, the rename onto the directory fails.
	if err := d.Put("sub", []byte("boom")); err == nil {
		t.Fatal("Put onto a non-empty directory succeeded")
	}
	entries, err := os.ReadDir(d.Root())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".gftp-") {
			t.Fatalf("orphaned temp file %s after failed rename", e.Name())
		}
	}
}

// TestDirStoreListSurvivesRacingPuts: Puts create temp files that
// vanish via rename while List walks the tree; the walk must neither
// abort on a vanished entry nor report temps/partials, however the
// race lands.
func TestDirStoreListSurvivesRacingPuts(t *testing.T) {
	d := newTestDirStore(t)
	payload := bytes.Repeat([]byte{7}, 32<<10)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"a/obj", "a/b/obj", "c/obj", "obj"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := d.Put(names[(i+w)%len(names)], payload); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 300; i++ {
		names, err := d.List("")
		if err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("List aborted during racing Puts: %v", err)
		}
		for _, n := range names {
			if strings.Contains(n, ".gftp-") {
				close(stop)
				wg.Wait()
				t.Fatalf("List leaked an in-flight temp/partial: %s", n)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestDirStoreStreamPutWatermark pins the streaming-put lifecycle: the
// sidecar's (and therefore SIZE's) watermark tracks flushed regions
// exactly, FinishPut commits atomically and removes the sidecar, and
// the committed bytes round-trip.
func TestDirStoreStreamPutWatermark(t *testing.T) {
	d := newTestDirStore(t)
	want := make([]byte, 100_000)
	for i := range want {
		want[i] = byte(i * 13)
	}
	if err := d.BeginPut("dir/obj", 0); err != nil {
		t.Fatal(err)
	}
	const region = 7_001
	for off := 0; off < len(want); off += region {
		end := off + region
		if end > len(want) {
			end = len(want)
		}
		if err := d.PutRegion("dir/obj", int64(off), want[off:end]); err != nil {
			t.Fatal(err)
		}
		// SIZE mid-flight is the exact delivered watermark.
		if n, err := d.Size("dir/obj"); err != nil || n != int64(end) {
			t.Fatalf("mid-flight Size=%d err=%v, want %d", n, err, end)
		}
	}
	// Non-contiguous and misordered regions are rejected.
	if err := d.PutRegion("dir/obj", int64(len(want))+10, []byte("gap")); err == nil {
		t.Fatal("gap region accepted")
	}
	if err := d.FinishPut("dir/obj", int64(len(want))); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get("dir/obj")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("committed object differs (err=%v)", err)
	}
	if _, err := os.Stat(partialPath(filepath.Join(d.Root(), "dir/obj"))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("sidecar survived FinishPut (stat err=%v)", err)
	}
	// Wrong finish size is rejected.
	if err := d.BeginPut("short", 0); err != nil {
		t.Fatal(err)
	}
	if err := d.PutRegion("short", 0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := d.FinishPut("short", 99); err == nil {
		t.Fatal("FinishPut with wrong size succeeded")
	}
	// PutRegion without BeginPut is ErrNotFound, like MemStore.
	if err := d.PutRegion("never", 0, []byte("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("PutRegion before BeginPut = %v, want ErrNotFound", err)
	}
}

// TestDirStoreAbortKeepsWatermarkForResume: AbortPut releases the file
// handle but preserves the sidecar, SIZE keeps reporting the
// watermark, and a resumed BeginPut at that watermark completes the
// object.
func TestDirStoreAbortKeepsWatermarkForResume(t *testing.T) {
	d := newTestDirStore(t)
	want := bytes.Repeat([]byte{5}, 80_000)
	const cut = 48_000
	if err := d.BeginPut("obj", 0); err != nil {
		t.Fatal(err)
	}
	if err := d.PutRegion("obj", 0, want[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := d.AbortPut("obj"); err != nil {
		t.Fatal(err)
	}
	wm, err := d.Size("obj")
	if err != nil || wm != cut {
		t.Fatalf("post-abort watermark=%d err=%v, want %d", wm, err, cut)
	}
	// Get must not see the uncommitted partial.
	if _, err := d.Get("obj"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get of uncommitted object = %v, want ErrNotFound", err)
	}
	// Resume exactly at the watermark.
	if err := d.BeginPut("obj", wm); err != nil {
		t.Fatal(err)
	}
	if err := d.PutRegion("obj", wm, want[cut:]); err != nil {
		t.Fatal(err)
	}
	if err := d.FinishPut("obj", int64(len(want))); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get("obj")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("resumed object differs (err=%v)", err)
	}
	// A restart offset beyond the watermark is rejected.
	if err := d.BeginPut("obj", int64(len(want))+1); err == nil {
		t.Fatal("BeginPut beyond stored bytes succeeded")
	}
}

// TestDirStoreBeginPutSeedsFromCommitted mirrors MemStore's
// truncate-in-place resume: with no sidecar present, a BeginPut at
// base > 0 validates against the committed object and seeds the
// partial with its prefix, so appending a suffix yields the spliced
// object.
func TestDirStoreBeginPutSeedsFromCommitted(t *testing.T) {
	d := newTestDirStore(t)
	v1 := bytes.Repeat([]byte{1}, 60_000)
	if err := d.Put("obj", v1); err != nil {
		t.Fatal(err)
	}
	const base = 25_000
	suffix := bytes.Repeat([]byte{2}, 10_000)
	if err := d.BeginPut("obj", base); err != nil {
		t.Fatal(err)
	}
	if err := d.PutRegion("obj", base, suffix); err != nil {
		t.Fatal(err)
	}
	if err := d.FinishPut("obj", base+int64(len(suffix))); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte{}, v1[:base]...), suffix...)
	got, err := d.Get("obj")
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("spliced object differs (err=%v)", err)
	}
	// Base beyond the committed size is rejected and leaves no sidecar.
	if err := d.BeginPut("missing", 10); err == nil {
		t.Fatal("BeginPut resume on a missing object succeeded")
	}
	if _, err := os.Stat(partialPath(filepath.Join(d.Root(), "missing"))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("rejected BeginPut left a sidecar (stat err=%v)", err)
	}
}

// TestDirStoreSnapshotSurvivesRewrite is the disk counterpart of the
// MemStore snapshot test: an open-handle snapshot keeps serving its
// version while a streaming put (write to sidecar, rename at finish)
// replaces the path, and a concurrent Get during the rewrite still
// sees the previous committed version.
func TestDirStoreSnapshotSurvivesRewrite(t *testing.T) {
	d := newTestDirStore(t)
	v1 := bytes.Repeat([]byte{1}, 300_000)
	if err := d.Put("obj", v1); err != nil {
		t.Fatal(err)
	}
	snap1, size1, err := d.SnapshotObject("obj")
	if err != nil || size1 != int64(len(v1)) {
		t.Fatalf("snapshot: size=%d err=%v", size1, err)
	}
	defer snap1.(interface{ Close() error }).Close()

	v2 := bytes.Repeat([]byte{2}, 400_000)
	if err := d.BeginPut("obj", 0); err != nil {
		t.Fatal(err)
	}
	if err := d.PutRegion("obj", 0, v2[:150_000]); err != nil {
		t.Fatal(err)
	}
	// Mid-rewrite: committed readers still see v1.
	cur, err := d.Get("obj")
	if err != nil || !bytes.Equal(cur, v1) {
		t.Fatalf("Get mid-rewrite returned the uncommitted partial (err=%v)", err)
	}
	if err := d.PutRegion("obj", 150_000, v2[150_000:]); err != nil {
		t.Fatal(err)
	}
	if err := d.FinishPut("obj", int64(len(v2))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readSnapshot(t, snap1, size1), v1) {
		t.Fatal("pre-rewrite snapshot observed the rewrite")
	}
	cur, err = d.Get("obj")
	if err != nil || !bytes.Equal(cur, v2) {
		t.Fatalf("store holds wrong version after rewrite (err=%v)", err)
	}
}

// TestDirStoreStreamPutterViaSharedHelper replays the MemStore
// region-growth drill against the disk store, pinning that both
// StreamPutter implementations agree byte-for-byte.
func TestDirStoreStreamPutterViaSharedHelper(t *testing.T) {
	d := newTestDirStore(t)
	want := make([]byte, 123_457)
	for i := range want {
		want[i] = byte(i * 7)
	}
	putRegions(t, d, "obj", 0, want, 613)
	got, err := d.Get("obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("region-built object differs")
	}
	if n, _ := d.Size("obj"); n != int64(len(want)) {
		t.Fatalf("Size=%d, want %d", n, len(want))
	}
}
