package gridftp

import (
	"bytes"
	"container/list"
	"errors"
	"io"

	"sync"

	"gftpvc/internal/telemetry"
)

// TieredOptions tunes a TieredStore.
type TieredOptions struct {
	// MaxHotBytes bounds the RAM the hot tier may hold (default 256 MiB).
	MaxHotBytes int64
	// MaxHotObjectBytes is the largest single object admitted to the hot
	// tier; bigger objects are always served from disk (default
	// MaxHotBytes/8). Capping per-object admission keeps one huge
	// dataset from evicting the whole working set.
	MaxHotObjectBytes int64
	// Telemetry, when set, receives hit/miss/eviction counters and the
	// hot-tier occupancy gauges. Nil disables instrumentation.
	Telemetry *telemetry.Hub
}

// TieredStore keeps hot objects in a bounded in-memory LRU and serves
// cold ones from a DirStore — the mem/disk endpoint seam the paper's
// Fig. 1 quadrants distinguish, on one live server. Writes are
// write-through: every Put and every streaming put lands on disk first,
// so an eviction only drops a cache copy, never data. Reads admit the
// object into the hot tier (when it fits) and evict least-recently-used
// entries past the byte bound.
//
// TieredStore implements the full streaming surface. Streaming puts
// bypass the hot tier entirely — they delegate to the DirStore's
// partial-file path, keeping its exact on-disk SIZE watermark and
// resume semantics — and invalidate any cached copy so readers never
// see a stale version.
type TieredStore struct {
	cold    *DirStore
	maxHot  int64
	maxObj  int64
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	hot     int64

	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evictions *telemetry.Counter
	hotBytes  *telemetry.Gauge
	hotObjs   *telemetry.Gauge
}

// hotEntry is one cached object. The data slice is immutable once
// published: invalidation removes the entry, it never rewrites it, so
// snapshot readers can alias it safely.
type hotEntry struct {
	name string
	data []byte
}

// NewTieredStore layers a bounded hot cache over a disk store.
func NewTieredStore(cold *DirStore, opts TieredOptions) (*TieredStore, error) {
	if cold == nil {
		return nil, errors.New("gridftp: nil cold store")
	}
	if opts.MaxHotBytes == 0 {
		opts.MaxHotBytes = 256 << 20
	}
	if opts.MaxHotBytes < 0 {
		return nil, errors.New("gridftp: negative hot-tier bound")
	}
	if opts.MaxHotObjectBytes == 0 {
		opts.MaxHotObjectBytes = opts.MaxHotBytes / 8
	}
	t := &TieredStore{
		cold:    cold,
		maxHot:  opts.MaxHotBytes,
		maxObj:  opts.MaxHotObjectBytes,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
	if hub := opts.Telemetry; hub != nil {
		t.hits = hub.Counter("gridftp_tiered_hot_hits_total",
			"Reads served from the tiered store's in-memory hot tier.")
		t.misses = hub.Counter("gridftp_tiered_hot_misses_total",
			"Reads that fell through to the tiered store's disk tier.")
		t.evictions = hub.Counter("gridftp_tiered_evictions_total",
			"Objects evicted from the hot tier by the byte bound, LRU first.")
		t.hotBytes = hub.Gauge("gridftp_tiered_hot_bytes",
			"Bytes currently held by the tiered store's hot tier.")
		t.hotObjs = hub.Gauge("gridftp_tiered_hot_objects",
			"Objects currently held by the tiered store's hot tier.")
	}
	return t, nil
}

// Cold returns the disk tier, for tests and tooling that inspect the
// backing files directly.
func (t *TieredStore) Cold() *DirStore { return t.cold }

// lookup returns the cached bytes for name, bumping its recency. The
// returned slice is the immutable cache copy — callers must not write
// to it.
func (t *TieredStore) lookup(name string) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[name]
	if !ok {
		t.misses.Inc()
		return nil, false
	}
	t.lru.MoveToFront(e)
	t.hits.Inc()
	return e.Value.(*hotEntry).data, true
}

// admit publishes data as name's hot copy (taking ownership of the
// slice) and evicts LRU entries past the byte bound. Oversized objects
// are skipped — they stream from disk instead of thrashing the cache.
func (t *TieredStore) admit(name string, data []byte) {
	n := int64(len(data))
	if n > t.maxObj || n > t.maxHot {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[name]; ok {
		t.hot -= int64(len(e.Value.(*hotEntry).data))
		t.lru.Remove(e)
		delete(t.entries, name)
	}
	t.entries[name] = t.lru.PushFront(&hotEntry{name: name, data: data})
	t.hot += n
	for t.hot > t.maxHot {
		back := t.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*hotEntry)
		t.hot -= int64(len(victim.data))
		t.lru.Remove(back)
		delete(t.entries, victim.name)
		t.evictions.Inc()
	}
	t.hotBytes.Set(t.hot)
	t.hotObjs.Set(int64(len(t.entries)))
}

// invalidate drops name's hot copy, if any. Readers already holding a
// snapshot of the old slice keep it — the slice itself is never
// rewritten.
func (t *TieredStore) invalidate(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[name]
	if !ok {
		return
	}
	t.hot -= int64(len(e.Value.(*hotEntry).data))
	t.lru.Remove(e)
	delete(t.entries, name)
	t.hotBytes.Set(t.hot)
	t.hotObjs.Set(int64(len(t.entries)))
}

// Get implements Store. The returned slice is a copy.
func (t *TieredStore) Get(name string) ([]byte, error) {
	if data, ok := t.lookup(name); ok {
		out := make([]byte, len(data))
		copy(out, data)
		return out, nil
	}
	data, err := t.cold.Get(name)
	if err != nil {
		return nil, err
	}
	// cold.Get hands back a fresh slice; cache it and copy for the
	// caller so the cached copy stays immutable.
	t.admit(name, data)
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Put implements Store, write-through: disk first (durable, atomic
// rename), then the hot tier.
func (t *TieredStore) Put(name string, data []byte) error {
	if err := t.cold.Put(name, data); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	t.admit(name, cp)
	return nil
}

// Size implements Store. A hot copy answers from memory; otherwise the
// disk tier answers — including the partial-sidecar watermark for
// in-flight or failed streaming puts, which never have a hot copy.
func (t *TieredStore) Size(name string) (int64, error) {
	if data, ok := t.lookup(name); ok {
		return int64(len(data)), nil
	}
	return t.cold.Size(name)
}

// List implements Store: the disk tier is the source of truth.
func (t *TieredStore) List(prefix string) ([]string, error) { return t.cold.List(prefix) }

// ReadObjectAt implements ReaderAtStore.
func (t *TieredStore) ReadObjectAt(name string, p []byte, off int64) (int, error) {
	if data, ok := t.lookup(name); ok {
		if off < 0 || off > int64(len(data)) {
			return 0, io.EOF
		}
		n := copy(p, data[off:])
		if n < len(p) {
			return n, io.EOF
		}
		return n, nil
	}
	return t.cold.ReadObjectAt(name, p, off)
}

// SnapshotObject implements SnapshotStore: a hot copy is aliased
// zero-copy (the cache never rewrites a published slice). A cold object
// that fits the admission cap is pulled into the hot tier — this is the
// path repeated RETRs of a working set warm the cache through — and
// anything bigger pins an open file handle via the DirStore, so large
// objects still stream without a RAM copy.
func (t *TieredStore) SnapshotObject(name string) (io.ReaderAt, int64, error) {
	if data, ok := t.lookup(name); ok {
		return bytes.NewReader(data), int64(len(data)), nil
	}
	if n, err := t.cold.Size(name); err == nil && n <= t.maxObj && n <= t.maxHot {
		data, err := t.cold.Get(name)
		if err != nil {
			return nil, 0, err
		}
		t.admit(name, data)
		return bytes.NewReader(data), int64(len(data)), nil
	}
	return t.cold.SnapshotObject(name)
}

// BeginPut implements StreamPutter: the rewrite goes to disk, and any
// hot copy of the previous version is dropped immediately so no reader
// admits a version that is being superseded.
func (t *TieredStore) BeginPut(name string, base int64) error {
	t.invalidate(name)
	return t.cold.BeginPut(name, base)
}

// PutRegion implements StreamPutter.
func (t *TieredStore) PutRegion(name string, off int64, p []byte) error {
	return t.cold.PutRegion(name, off, p)
}

// FinishPut implements StreamPutter. The hot tier is invalidated again
// at commit: a concurrent Get during the streaming put may have
// re-admitted the old committed version.
func (t *TieredStore) FinishPut(name string, size int64) error {
	if err := t.cold.FinishPut(name, size); err != nil {
		return err
	}
	t.invalidate(name)
	return nil
}

// AbortPut implements PutAborter.
func (t *TieredStore) AbortPut(name string) error { return t.cold.AbortPut(name) }
