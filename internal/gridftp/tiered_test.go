package gridftp

import (
	"bytes"
	"context"
	"testing"

	"gftpvc/internal/telemetry"
)

func newTestTieredStore(t *testing.T, opts TieredOptions) *TieredStore {
	t.Helper()
	cold, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTieredStore(cold, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// counter reads a tiered-store metric from the hub.
func tieredCounter(hub *telemetry.Hub, name, help string) int64 {
	return hub.Counter(name, help).Value()
}

// TestTieredStoreHitMissEviction pins the cache mechanics: writes are
// write-through (an eviction loses nothing), reads promote, the byte
// bound evicts LRU-first, and the counters/gauges track all of it.
func TestTieredStoreHitMissEviction(t *testing.T) {
	hub := telemetry.NewHub()
	ts := newTestTieredStore(t, TieredOptions{
		MaxHotBytes:       100_000,
		MaxHotObjectBytes: 60_000,
		Telemetry:         hub,
	})
	a := bytes.Repeat([]byte{1}, 40_000)
	puts := []struct {
		name string
		data []byte
	}{
		{"a", a},
		{"b", bytes.Repeat([]byte{2}, 40_000)},
		{"c", bytes.Repeat([]byte{3}, 40_000)},
	}
	for _, p := range puts {
		if err := ts.Put(p.name, p.data); err != nil {
			t.Fatal(err)
		}
	}
	// 3x40k against a 100k bound: one eviction already happened.
	if v := tieredCounter(hub, "gridftp_tiered_evictions_total",
		"Objects evicted from the hot tier by the byte bound, LRU first."); v != 1 {
		t.Fatalf("evictions=%d, want 1", v)
	}
	// "a" was evicted (LRU). Reading it is a miss that re-promotes it
	// from disk — write-through means the bytes survived eviction.
	got, err := ts.Get("a")
	if err != nil || !bytes.Equal(got, a) {
		t.Fatalf("evicted object lost (err=%v)", err)
	}
	if v := tieredCounter(hub, "gridftp_tiered_hot_misses_total",
		"Reads that fell through to the tiered store's disk tier."); v != 1 {
		t.Fatalf("misses=%d, want 1", v)
	}
	// Now hot again: a second read is a hit.
	if _, err := ts.Get("a"); err != nil {
		t.Fatal(err)
	}
	if v := tieredCounter(hub, "gridftp_tiered_hot_hits_total",
		"Reads served from the tiered store's in-memory hot tier."); v < 1 {
		t.Fatalf("hits=%d, want >= 1", v)
	}
	// An object over the per-object cap is never admitted: two reads,
	// two misses, no eviction churn.
	big := bytes.Repeat([]byte{9}, 80_000)
	if err := ts.Put("big", big); err != nil {
		t.Fatal(err)
	}
	missesBefore := tieredCounter(hub, "gridftp_tiered_hot_misses_total",
		"Reads that fell through to the tiered store's disk tier.")
	for i := 0; i < 2; i++ {
		if got, err := ts.Get("big"); err != nil || !bytes.Equal(got, big) {
			t.Fatalf("oversized object read %d failed (err=%v)", i, err)
		}
	}
	missesAfter := tieredCounter(hub, "gridftp_tiered_hot_misses_total",
		"Reads that fell through to the tiered store's disk tier.")
	if missesAfter-missesBefore != 2 {
		t.Fatalf("oversized object was admitted: misses moved %d, want 2", missesAfter-missesBefore)
	}
	// Gauges agree with the bound.
	if v := hub.Gauge("gridftp_tiered_hot_bytes",
		"Bytes currently held by the tiered store's hot tier.").Value(); v <= 0 || v > 100_000 {
		t.Fatalf("hot-bytes gauge %d outside (0, 100000]", v)
	}
}

// TestTieredStoreStreamingInvalidates: a streaming rewrite through the
// tier must land on disk with DirStore's watermark semantics and leave
// no stale hot copy — Get after FinishPut sees the new version even
// though the old one was cached (and re-read mid-stream).
func TestTieredStoreStreamingInvalidates(t *testing.T) {
	ts := newTestTieredStore(t, TieredOptions{MaxHotBytes: 1 << 20, MaxHotObjectBytes: 1 << 20})
	v1 := bytes.Repeat([]byte{1}, 100_000)
	if err := ts.Put("obj", v1); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.Get("obj"); err != nil { // hot now
		t.Fatal(err)
	}
	v2 := bytes.Repeat([]byte{2}, 120_000)
	if err := ts.BeginPut("obj", 0); err != nil {
		t.Fatal(err)
	}
	if err := ts.PutRegion("obj", 0, v2[:50_000]); err != nil {
		t.Fatal(err)
	}
	// Mid-stream: readers see the committed v1 (and re-admit it hot).
	if got, err := ts.Get("obj"); err != nil || !bytes.Equal(got, v1) {
		t.Fatalf("mid-stream Get lost the committed version (err=%v)", err)
	}
	// Mid-stream SIZE comes from the disk tier's watermark, not the
	// cached copy... only once the hot copy is gone; the contract that
	// matters is post-abort, checked below.
	if err := ts.PutRegion("obj", 50_000, v2[50_000:]); err != nil {
		t.Fatal(err)
	}
	if err := ts.FinishPut("obj", int64(len(v2))); err != nil {
		t.Fatal(err)
	}
	if got, err := ts.Get("obj"); err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("stale hot copy served after FinishPut (err=%v)", err)
	}

	// Failed rewrite: invalidation at BeginPut means SIZE probes reach
	// the disk tier's partial watermark, the resume contract.
	if err := ts.BeginPut("obj", 0); err != nil {
		t.Fatal(err)
	}
	if err := ts.PutRegion("obj", 0, v1[:30_000]); err != nil {
		t.Fatal(err)
	}
	if err := ts.AbortPut("obj"); err != nil {
		t.Fatal(err)
	}
	if n, err := ts.Size("obj"); err != nil || n != 30_000 {
		t.Fatalf("post-abort Size=%d err=%v, want 30000 (the watermark)", n, err)
	}
}

// TestTieredStoreServesServer runs the tier under a live server: an
// uploaded object streams to disk through the tier, comes back
// byte-identical, and repeated small objects churn the hot tier's
// eviction counter — the mem-over-disk quadrant on one endpoint.
func TestTieredStoreServesServer(t *testing.T) {
	hub := telemetry.NewHub()
	ts := newTestTieredStore(t, TieredOptions{
		MaxHotBytes:       128 << 10,
		MaxHotObjectBytes: 64 << 10,
		Telemetry:         hub,
	})
	s := startServer(t, Config{Store: ts, WindowSize: 64 << 10, BlockSize: 16 << 10, Telemetry: hub})
	c := loginStream(t, s.Addr(), WithWindow(64<<10))
	ctx := context.Background()

	// An object larger than the whole hot tier streams through to disk.
	big := randomPayload(512 << 10)
	if _, err := c.StorFrom(ctx, "big.bin", bytes.NewReader(big), int64(len(big))); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if _, err := c.RetrTo(ctx, "big.bin", &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), big) {
		t.Fatal("tiered round trip differs")
	}
	if _, err := ts.Cold().Get("big.bin"); err != nil {
		t.Fatalf("object not durably on the disk tier: %v", err)
	}

	// Many cache-sized objects force evictions under live traffic.
	small := randomPayload(48 << 10)
	for i := 0; i < 6; i++ {
		name := string(rune('a'+i)) + ".bin"
		if _, err := c.StorFrom(ctx, name, bytes.NewReader(small), int64(len(small))); err != nil {
			t.Fatal(err)
		}
		if _, err := c.RetrTo(ctx, name, &bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
	}
	if v := tieredCounter(hub, "gridftp_tiered_evictions_total",
		"Objects evicted from the hot tier by the byte bound, LRU first."); v == 0 {
		t.Fatal("no evictions after overflowing the hot tier")
	}
}
