package gridftp

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"gftpvc/internal/usagestats"
)

// startServer launches a loopback server with the given store and options.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	s, err := Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func login(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Login("anonymous", "test@"); err != nil {
		t.Fatal(err)
	}
	return c
}

func randomPayload(n int) []byte {
	rng := rand.New(rand.NewSource(99))
	data := make([]byte, n)
	rng.Read(data)
	return data
}

func TestServeValidation(t *testing.T) {
	if _, err := Serve(Config{}); err == nil {
		t.Error("nil store should fail")
	}
	if _, err := Serve(Config{Store: NewMemStore(), Stripes: -1}); err == nil {
		t.Error("negative stripes should fail")
	}
	if _, err := Serve(Config{Store: NewMemStore(), BlockSize: -1}); err == nil {
		t.Error("negative block size should fail")
	}
}

func TestRetrSingleStream(t *testing.T) {
	store := NewMemStore()
	want := randomPayload(1 << 20)
	store.Put("data.bin", want)
	s := startServer(t, Config{Store: store})
	c := login(t, s.Addr())
	got, stats, err := c.Retr("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted in transfer")
	}
	if stats.Streams != 1 || stats.Stripes != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Bytes != int64(len(want)) {
		t.Errorf("stats.Bytes = %d, want %d", stats.Bytes, len(want))
	}
}

func TestRetrParallelStreams(t *testing.T) {
	store := NewMemStore()
	want := randomPayload(3<<20 + 12345) // non-multiple of block size
	store.Put("data.bin", want)
	s := startServer(t, Config{Store: store, BlockSize: 64 << 10})
	c := login(t, s.Addr())
	if err := c.SetParallelism(8); err != nil {
		t.Fatal(err)
	}
	got, stats, err := c.Retr("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted with 8 parallel streams")
	}
	if stats.Streams != 8 {
		t.Errorf("streams = %d, want 8", stats.Streams)
	}
	// The server log must record the parallelism.
	recs := s.Records()
	if len(recs) != 1 {
		t.Fatalf("server logged %d records, want 1", len(recs))
	}
	if recs[0].Streams != 8 || recs[0].Type != usagestats.Retrieve {
		t.Errorf("record = %+v", recs[0])
	}
}

func TestRetrStriped(t *testing.T) {
	store := NewMemStore()
	want := randomPayload(2<<20 + 777)
	store.Put("data.bin", want)
	s := startServer(t, Config{Store: store, Stripes: 4, BlockSize: 32 << 10})
	c := login(t, s.Addr())
	got, stats, err := c.RetrStriped("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload corrupted in striped transfer")
	}
	if stats.Stripes != 4 {
		t.Errorf("stripes = %d, want 4", stats.Stripes)
	}
	recs := s.Records()
	if len(recs) != 1 || recs[0].Stripes != 4 {
		t.Errorf("server records = %+v", recs)
	}
}

func TestStorRoundTrip(t *testing.T) {
	store := NewMemStore()
	s := startServer(t, Config{Store: store})
	c := login(t, s.Addr())
	if err := c.SetParallelism(4); err != nil {
		t.Fatal(err)
	}
	want := randomPayload(1<<20 + 99)
	stats, err := c.Stor("up.bin", want)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bytes != int64(len(want)) {
		t.Errorf("stats.Bytes = %d", stats.Bytes)
	}
	got, err := store.Get("up.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stored payload corrupted")
	}
	recs := s.Records()
	if len(recs) != 1 || recs[0].Type != usagestats.Store {
		t.Errorf("records = %+v", recs)
	}
}

func TestStorStriped(t *testing.T) {
	store := NewMemStore()
	s := startServer(t, Config{Store: store, Stripes: 3, BlockSize: 32 << 10})
	c := login(t, s.Addr())
	want := randomPayload(1<<20 + 4321)
	stats, err := c.StorStriped("up.bin", want)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stripes != 3 {
		t.Errorf("stripes = %d, want 3", stats.Stripes)
	}
	got, err := store.Get("up.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("striped upload corrupted")
	}
	recs := s.Records()
	if len(recs) != 1 || recs[0].Stripes != 3 || recs[0].Type != usagestats.Store {
		t.Errorf("records = %+v", recs)
	}
}

func TestRetrMissingObject(t *testing.T) {
	s := startServer(t, Config{})
	c := login(t, s.Addr())
	_, _, err := c.Retr("missing.bin")
	var pe *ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want ProtocolError", err)
	}
	if pe.Reply.Code != 550 {
		t.Errorf("code = %d, want 550", pe.Reply.Code)
	}
}

func TestAuthRequired(t *testing.T) {
	s := startServer(t, Config{
		Auth: func(user, pass string) bool { return user == "alice" && pass == "s3cret" },
	})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Login("alice", "wrong"); err == nil {
		t.Fatal("bad password should fail")
	}
	// Commands before auth are rejected.
	if _, err := c.Size("x"); err == nil {
		t.Fatal("unauthenticated SIZE should fail")
	}
	c2, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Login("alice", "s3cret"); err != nil {
		t.Fatalf("valid login rejected: %v", err)
	}
}

func TestTransferRequiresModeE(t *testing.T) {
	store := NewMemStore()
	store.Put("x", []byte("hello"))
	s := startServer(t, Config{Store: store})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Log in without MODE E.
	if _, err := c.do("USER", "USER u", 331); err != nil {
		t.Fatal(err)
	}
	if _, err := c.do("PASS", "PASS p", 230); err != nil {
		t.Fatal(err)
	}
	if _, err := c.do("TYPE", "TYPE I", 200); err != nil {
		t.Fatal(err)
	}
	rep, err := c.cmd("RETR x")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != 504 {
		t.Errorf("RETR without MODE E: code = %d, want 504", rep.Code)
	}
}

func TestFeatures(t *testing.T) {
	s := startServer(t, Config{})
	c := login(t, s.Addr())
	feats, err := c.Features()
	if err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, f := range feats {
		joined += f + "\n"
	}
	for _, want := range []string{"PARALLEL", "SPAS", "MODE E"} {
		if !bytes.Contains([]byte(joined), []byte(want)) {
			t.Errorf("FEAT missing %q in %q", want, joined)
		}
	}
}

func TestSizeAndSetBuffer(t *testing.T) {
	store := NewMemStore()
	store.Put("x", make([]byte, 12345))
	s := startServer(t, Config{Store: store})
	c := login(t, s.Addr())
	n, err := c.Size("x")
	if err != nil || n != 12345 {
		t.Errorf("Size = %d, %v; want 12345", n, err)
	}
	if _, err := c.Size("nope"); err == nil {
		t.Error("missing object SIZE should fail")
	}
	if err := c.SetBuffer(4 << 20); err != nil {
		t.Fatal(err)
	}
	want := randomPayload(4096)
	store.Put("y", want)
	if _, _, err := c.Retr("y"); err != nil {
		t.Fatal(err)
	}
	recs := s.Records()
	if recs[len(recs)-1].BufferBytes != 4<<20 {
		t.Errorf("buffer not recorded: %+v", recs[len(recs)-1])
	}
}

func TestSetParallelismValidation(t *testing.T) {
	s := startServer(t, Config{})
	c := login(t, s.Addr())
	if err := c.SetParallelism(0); err == nil {
		t.Error("parallelism 0 should fail client-side")
	}
	if err := c.SetParallelism(65); err == nil {
		t.Error("parallelism 65 should fail client-side")
	}
}

func TestThirdPartyTransfer(t *testing.T) {
	srcStore := NewMemStore()
	want := randomPayload(1 << 20)
	srcStore.Put("src.bin", want)
	dstStore := NewMemStore()
	src := startServer(t, Config{Store: srcStore})
	dst := startServer(t, Config{Store: dstStore})
	cSrc := login(t, src.Addr())
	cDst := login(t, dst.Addr())
	if err := ThirdParty(cSrc, cDst, "src.bin", "dst.bin"); err != nil {
		t.Fatal(err)
	}
	got, err := dstStore.Get("dst.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("third-party payload corrupted")
	}
	// Both servers logged their side.
	if rs := src.Records(); len(rs) != 1 || rs[0].Type != usagestats.Retrieve {
		t.Errorf("src records = %+v", rs)
	}
	if rs := dst.Records(); len(rs) != 1 || rs[0].Type != usagestats.Store {
		t.Errorf("dst records = %+v", rs)
	}
}

func TestUsageStatsCollection(t *testing.T) {
	col, err := usagestats.NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	store := NewMemStore()
	store.Put("x", randomPayload(64<<10))
	s := startServer(t, Config{Store: store, UsageAddr: col.Addr(), ServerHost: "dtn.example.org"})
	c := login(t, s.Addr())
	if _, _, err := c.Retr("x"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if rs := col.Records(); len(rs) == 1 {
			if rs[0].ServerHost != "dtn.example.org" {
				t.Errorf("collected host = %q", rs[0].ServerHost)
			}
			if rs[0].RemoteHost != "" {
				t.Error("collector must anonymize the remote host")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("usage packet never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLocalLogWriter(t *testing.T) {
	var buf bytes.Buffer
	store := NewMemStore()
	store.Put("x", randomPayload(4096))
	s := startServer(t, Config{Store: store, LogWriter: &buf})
	c := login(t, s.Addr())
	if _, _, err := c.Retr("x"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	recs, err := usagestats.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("log has %d records, want 1", len(recs))
	}
	// Local logs keep the remote endpoint (unlike the central collector).
	if recs[0].RemoteHost == "" {
		t.Error("local log should keep the remote host")
	}
}

func TestSessionOfBackToBackTransfers(t *testing.T) {
	// A session in the paper's sense: many files over one control channel.
	store := NewMemStore()
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		store.Put(name, randomPayload(32<<10))
	}
	s := startServer(t, Config{Store: store})
	c := login(t, s.Addr())
	c.SetParallelism(2)
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		if _, _, err := c.Retr(name); err != nil {
			t.Fatalf("transfer %s: %v", name, err)
		}
	}
	recs := s.Records()
	if len(recs) != 5 {
		t.Fatalf("logged %d transfers, want 5", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Start.Before(recs[i-1].Start) {
			t.Error("records out of order")
		}
	}
}

func TestUnknownCommand(t *testing.T) {
	s := startServer(t, Config{})
	c := login(t, s.Addr())
	rep, err := c.cmd("FROBNICATE now")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Code != 502 {
		t.Errorf("code = %d, want 502", rep.Code)
	}
}
