package gridftp

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestWindowAssemblerInOrder(t *testing.T) {
	var out bytes.Buffer
	want := randomPayload(10 << 10)
	asm, err := NewWindowAssembler(&out, 0, int64(len(want)), 1<<10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(want); off += 512 {
		end := off + 512
		if end > len(want) {
			end = len(want)
		}
		if err := asm.Place(Block{Offset: uint64(off), Data: want[off:end]}); err != nil {
			t.Fatalf("place at %d: %v", off, err)
		}
	}
	if err := asm.Finish(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("delivered bytes differ from input")
	}
	if asm.Delivered() != int64(len(want)) || asm.WireBytes() != int64(len(want)) {
		t.Fatalf("delivered=%d wire=%d, want %d for both", asm.Delivered(), asm.WireBytes(), len(want))
	}
	if asm.DuplicateBytes() != 0 {
		t.Fatalf("duplicates=%d, want 0", asm.DuplicateBytes())
	}
}

// TestWindowAssemblerOutOfOrder shuffles block arrival within the
// window: delivery must still be contiguous and byte-identical.
func TestWindowAssemblerOutOfOrder(t *testing.T) {
	var out bytes.Buffer
	const blockLen = 256
	want := randomPayload(8 << 10)
	// Window of 4 blocks; shuffle within groups of 4 so no block lands
	// beyond the window.
	asm, err := NewWindowAssembler(&out, 0, int64(len(want)), 4*blockLen, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	nBlocks := len(want) / blockLen
	for g := 0; g < nBlocks; g += 4 {
		group := []int{g, g + 1, g + 2, g + 3}
		rng.Shuffle(len(group), func(i, j int) { group[i], group[j] = group[j], group[i] })
		for _, b := range group {
			off := b * blockLen
			if err := asm.Place(Block{Offset: uint64(off), Data: want[off : off+blockLen]}); err != nil {
				t.Fatalf("place block %d: %v", b, err)
			}
		}
	}
	if err := asm.Finish(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("delivered bytes differ from input")
	}
}

func TestWindowAssemblerWindowFull(t *testing.T) {
	var out bytes.Buffer
	asm, err := NewWindowAssembler(&out, 0, 4096, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A block starting beyond flushed+window cannot be buffered.
	if err := asm.Place(Block{Offset: 1024, Data: []byte("x")}); !errors.Is(err, ErrWindowFull) {
		t.Fatalf("got %v, want ErrWindowFull", err)
	}
	// Fill the first KiB; the window slides and the block now fits.
	if err := asm.Place(Block{Offset: 0, Data: make([]byte, 1024)}); err != nil {
		t.Fatal(err)
	}
	if err := asm.Place(Block{Offset: 1024, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	// A block bigger than the whole window can never fit: protocol error,
	// not ErrWindowFull.
	err = asm.Place(Block{Offset: 1025, Data: make([]byte, 2048)})
	if !errors.Is(err, ErrDataProtocol) {
		t.Fatalf("got %v, want ErrDataProtocol for block larger than window", err)
	}
}

// TestWindowAssemblerDuplicates: re-sent regions — behind the
// watermark or already present in the window — are dropped, counted,
// and never delivered twice.
func TestWindowAssemblerDuplicates(t *testing.T) {
	var out bytes.Buffer
	want := randomPayload(2048)
	asm, err := NewWindowAssembler(&out, 0, int64(len(want)), 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	place := func(off, n int) {
		t.Helper()
		if err := asm.Place(Block{Offset: uint64(off), Data: want[off : off+n]}); err != nil {
			t.Fatalf("place [%d,+%d): %v", off, n, err)
		}
	}
	place(0, 512)
	place(0, 512)   // fully behind the watermark
	place(512, 512) // flushes through 1024
	place(768, 512) // overlaps delivered [768,1024) and fresh [1024,1280)
	place(1280, 768)
	place(1024, 256) // in-window duplicate
	if err := asm.Finish(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("delivered bytes differ from input")
	}
	if asm.Delivered() != int64(len(want)) {
		t.Fatalf("delivered=%d, want %d", asm.Delivered(), len(want))
	}
	wantDup := int64(512 + 256 + 256)
	if asm.DuplicateBytes() != wantDup {
		t.Fatalf("duplicates=%d, want %d", asm.DuplicateBytes(), wantDup)
	}
	if asm.WireBytes() != int64(len(want))+wantDup {
		t.Fatalf("wire=%d, want %d", asm.WireBytes(), int64(len(want))+wantDup)
	}
}

func TestWindowAssemblerFinishDetectsGap(t *testing.T) {
	var out bytes.Buffer
	asm, err := NewWindowAssembler(&out, 0, 1024, 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := asm.Place(Block{Offset: 512, Data: make([]byte, 512)}); err != nil {
		t.Fatal(err)
	}
	if err := asm.Finish(); err == nil {
		t.Fatal("Finish accepted a transfer with a parked gap")
	}
	// Bounded region not fully delivered is also incomplete.
	var out2 bytes.Buffer
	asm2, _ := NewWindowAssembler(&out2, 0, 1024, 1024, 0)
	asm2.Place(Block{Offset: 0, Data: make([]byte, 512)})
	if err := asm2.Finish(); err == nil {
		t.Fatal("Finish accepted an incomplete bounded region")
	}
}

func TestWindowAssemblerAbortWakesParked(t *testing.T) {
	var out bytes.Buffer
	asm, err := NewWindowAssembler(&out, 0, 4096, 1024, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	done := make(chan error, 1)
	go func() {
		// Parks: offset 2048 is beyond the empty window.
		done <- asm.PlaceBlocking(Block{Offset: 2048, Data: []byte("y")})
	}()
	time.Sleep(20 * time.Millisecond)
	asm.Abort(boom)
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("parked placer woke with %v, want boom", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Abort did not wake the parked placer")
	}
}

func TestWindowAssemblerParkTimeout(t *testing.T) {
	var out bytes.Buffer
	asm, err := NewWindowAssembler(&out, 0, 4096, 1024, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	err = asm.PlaceBlocking(Block{Offset: 2048, Data: []byte("y")})
	if !errors.Is(err, ErrWindowStalled) {
		t.Fatalf("got %v, want ErrWindowStalled", err)
	}
}

// TestWindowAssemblerResumeBase: an assembler rooted at a restart
// offset drops the duplicate prefix a resumed sender re-transmits and
// delivers only fresh bytes.
func TestWindowAssemblerResumeBase(t *testing.T) {
	full := randomPayload(4096)
	const base = 1500
	var out bytes.Buffer
	asm, err := NewWindowAssembler(&out, base, int64(len(full)-base), 1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := asm.Place(Block{Offset: base, Data: full[base:2048]}); err != nil {
		t.Fatal(err)
	}
	// The sender re-sends [1536, 2560): the first 512 bytes are behind
	// the watermark and must be trimmed, the rest delivered once.
	if err := asm.Place(Block{Offset: 1536, Data: full[1536:2560]}); err != nil {
		t.Fatal(err)
	}
	for off := 2560; off < len(full); off += 512 {
		if err := asm.Place(Block{Offset: uint64(off), Data: full[off : off+512]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := asm.Finish(); err != nil {
		t.Fatal(err)
	}
	if asm.DuplicateBytes() != 512 {
		t.Fatalf("duplicates=%d, want 512", asm.DuplicateBytes())
	}
	if !bytes.Equal(out.Bytes(), full[base:]) {
		t.Fatal("resumed delivery differs from the object suffix")
	}
	// A block below base is rejected outright.
	if err := asm.Place(Block{Offset: 0, Data: full[:256]}); !errors.Is(err, ErrDataProtocol) {
		t.Fatalf("got %v, want ErrDataProtocol below base", err)
	}
}

// TestWindowAssemblerConcurrentStripes is the -race coverage of
// parallel stripe placement into one window: n goroutines play the n
// data connections of a striped sender, each placing its interleaved
// blocks with backpressure, and the sink must receive the exact
// object.
func TestWindowAssemblerConcurrentStripes(t *testing.T) {
	const (
		stripes  = 4
		blockLen = 1 << 10
		size     = 1 << 20
	)
	want := randomPayload(size)
	var out bytes.Buffer
	asm, err := NewWindowAssembler(&out, 0, size, 8*blockLen, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, stripes)
	for s := 0; s < stripes; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for off := s * blockLen; off < size; off += stripes * blockLen {
				end := off + blockLen
				if end > size {
					end = size
				}
				if err := asm.PlaceBlocking(Block{Offset: uint64(off), Data: want[off:end]}); err != nil {
					errs[s] = fmt.Errorf("stripe %d at %d: %w", s, off, err)
					asm.Abort(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := asm.Finish(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("concurrent striped delivery differs from input")
	}
	if asm.Delivered() != size || asm.WireBytes() != size || asm.DuplicateBytes() != 0 {
		t.Fatalf("delivered=%d wire=%d dup=%d, want %d/%d/0",
			asm.Delivered(), asm.WireBytes(), asm.DuplicateBytes(), size, size)
	}
}

// failWriter fails after accepting some bytes, modeling a full disk.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n -= len(p)
	if w.n < 0 {
		return 0, errors.New("sink full")
	}
	return len(p), nil
}

func TestWindowAssemblerSinkErrorFailsAll(t *testing.T) {
	asm, err := NewWindowAssembler(&failWriter{n: 1024}, 0, 1<<20, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 1024)
	if err := asm.Place(Block{Offset: 0, Data: data}); err != nil {
		t.Fatal(err)
	}
	if err := asm.Place(Block{Offset: 1024, Data: data}); err == nil {
		t.Fatal("sink failure not surfaced by the flushing Place")
	}
	if err := asm.Place(Block{Offset: 2048, Data: data}); err == nil {
		t.Fatal("failed assembler accepted another block")
	}
	if err := asm.Finish(); err == nil {
		t.Fatal("Finish ignored the sink failure")
	}
}
