package gridftp

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// ErrWindowFull reports a block that lands beyond the assembler's
// sliding window: it cannot be buffered until earlier bytes are
// delivered to the sink. Streaming receivers park the placing goroutine
// (PlaceBlocking) instead of failing, which turns the bounded window
// into TCP backpressure on the sender.
var ErrWindowFull = errors.New("gridftp: block beyond reassembly window")

// ErrWindowStalled reports a parked placement that waited longer than
// the assembler's park timeout for the window to slide — the signature
// of a sender whose low-offset stripe died while a high-offset stripe
// kept going.
var ErrWindowStalled = errors.New("gridftp: reassembly window stalled")

// WindowAssembler reassembles MODE E blocks into a contiguous stream
// with bounded memory: a fixed-size sliding window buffers out-of-order
// blocks, and every byte that becomes contiguous with the delivery
// watermark is flushed to the sink immediately. Peak memory is the
// window (plus a 1-bit-per-byte presence map), independent of object
// size — the whole-object Assembler remains for small objects and
// tests.
//
// Concurrent Place/PlaceBlocking calls from parallel data connections
// are safe; flushes to the sink are serialized under the assembler's
// lock, so the sink needs no locking of its own.
//
// The assembler distinguishes wire bytes (every payload byte offered,
// including duplicates a resumed transfer re-sends) from delivered
// bytes (bytes flushed to the sink exactly once), the counters that
// make redundant-retry traffic visible.
type WindowAssembler struct {
	mu   sync.Mutex
	cond *sync.Cond
	sink io.Writer

	win    []byte   // ring buffer, indexed by absolute offset % window
	bits   []uint64 // presence bitmap over the same ring
	window uint64

	base    uint64 // region start: delivery begins here
	end     uint64 // region end (exclusive); ^uint64(0) when unbounded
	flushed uint64 // next absolute offset to deliver
	pending uint64 // bytes buffered in-window, not yet contiguous

	wire      int64 // payload bytes offered, duplicates included
	dup       int64 // duplicate bytes dropped or overwritten
	delivered int64 // bytes flushed to the sink

	parkMax time.Duration
	failed  error

	// OnPark, when set, is invoked (under the assembler lock) the first
	// time a PlaceBlocking call parks waiting for the window to slide,
	// with the blocked block's offset — the flight-recorder hook for
	// receiver-side backpressure. Set it before any data arrives.
	OnPark func(offset uint64)
}

// unboundedEnd marks a region whose total size is unknown (a STOR
// receiver learns the size only from the blocks themselves).
const unboundedEnd = ^uint64(0)

// DefaultWindowSize is the mode-E reassembly window used when a
// streaming API is not told otherwise: large enough to absorb the
// stripe skew of parallel senders, small enough that a thousand
// concurrent transfers fit in DTN memory.
const DefaultWindowSize = 4 << 20

// defaultParkTimeout bounds how long a PlaceBlocking call may wait for
// the window to slide when the assembler was built without an explicit
// bound.
const defaultParkTimeout = 30 * time.Second

// NewWindowAssembler builds an assembler delivering the region
// [base, base+size) to sink. size < 0 means the region length is
// unknown (delivery still starts at base). window is the sliding
// buffer in bytes; parkMax bounds each PlaceBlocking wait (<= 0 uses a
// 30s default).
func NewWindowAssembler(sink io.Writer, base uint64, size int64, window int, parkMax time.Duration) (*WindowAssembler, error) {
	if sink == nil {
		return nil, errors.New("gridftp: nil window sink")
	}
	if window < 1 {
		return nil, errors.New("gridftp: window must be positive")
	}
	if parkMax <= 0 {
		parkMax = defaultParkTimeout
	}
	end := unboundedEnd
	if size >= 0 {
		end = base + uint64(size)
	}
	a := &WindowAssembler{
		sink:    sink,
		win:     make([]byte, window),
		bits:    make([]uint64, (window+63)/64),
		window:  uint64(window),
		base:    base,
		end:     end,
		flushed: base,
		parkMax: parkMax,
	}
	a.cond = sync.NewCond(&a.mu)
	return a, nil
}

// Place stores one block without blocking. Blocks entirely below the
// delivery watermark are dropped as duplicates (a resumed sender
// overlapping its restart point); blocks extending beyond the window
// return ErrWindowFull with no state change, so the caller can retry
// after the window slides (PlaceBlocking does exactly that). Blocks
// outside the announced region are protocol errors.
func (a *WindowAssembler) Place(b Block) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.placeLocked(b)
}

func (a *WindowAssembler) placeLocked(b Block) error {
	if a.failed != nil {
		return a.failed
	}
	n := uint64(len(b.Data))
	if n == 0 {
		return nil
	}
	off := b.Offset
	end := off + n
	if end < off { // offset overflow
		return fmt.Errorf("%w: block [%d,+%d) overflows", ErrDataProtocol, off, n)
	}
	if off < a.base || (a.end != unboundedEnd && end > a.end) {
		return fmt.Errorf("%w: block [%d,%d) outside region [%d,%d)",
			ErrDataProtocol, off, end, a.base, a.end)
	}
	if end <= a.flushed {
		// Entirely behind the watermark: pure duplicate, drop it.
		a.wire += int64(n)
		a.dup += int64(n)
		return nil
	}
	// Trim the duplicate prefix a resumed sender re-sends.
	skip := uint64(0)
	if off < a.flushed {
		skip = a.flushed - off
	}
	data := b.Data[skip:]
	off += skip
	if off+uint64(len(data)) > a.flushed+a.window {
		if uint64(len(b.Data)) > a.window {
			// Can never fit no matter how far the window slides.
			return fmt.Errorf("%w: %d-byte block exceeds %d-byte window",
				ErrDataProtocol, len(b.Data), a.window)
		}
		return ErrWindowFull
	}
	// Committed: copy into the ring (at most two segments) and mark.
	a.wire += int64(n)
	a.dup += int64(skip)
	pos := off % a.window
	first := copy(a.win[pos:], data)
	copy(a.win, data[first:])
	fresh := a.markLocked(off, uint64(len(data)))
	a.dup += int64(len(data)) - int64(fresh)
	a.pending += uint64(fresh)
	a.advanceLocked()
	// A sink failure during the flush surfaces on the call that
	// triggered it, not just on later ones.
	return a.failed
}

// markLocked sets the presence bits for [off, off+n) and returns how
// many were newly set (the rest were in-window duplicates).
func (a *WindowAssembler) markLocked(off, n uint64) int {
	fresh := 0
	for i := uint64(0); i < n; {
		pos := (off + i) % a.window
		word, bit := pos/64, pos%64
		// Whole-word fast path when aligned and fully covered.
		if bit == 0 && n-i >= 64 && pos+64 <= a.window {
			old := a.bits[word]
			a.bits[word] = ^uint64(0)
			fresh += 64 - popcount(old)
			i += 64
			continue
		}
		if a.bits[word]&(1<<bit) == 0 {
			a.bits[word] |= 1 << bit
			fresh++
		}
		i++
	}
	return fresh
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// advanceLocked flushes the contiguous run at the watermark to the
// sink, clears its presence bits, and wakes parked placers.
func (a *WindowAssembler) advanceLocked() {
	run := a.runLenLocked()
	if run == 0 {
		return
	}
	pos := a.flushed % a.window
	seg := run
	if pos+seg > a.window {
		seg = a.window - pos
	}
	if err := a.writeSink(a.win[pos : pos+seg]); err != nil {
		return
	}
	if rest := run - seg; rest > 0 {
		if err := a.writeSink(a.win[:rest]); err != nil {
			return
		}
	}
	a.clearLocked(a.flushed, run)
	a.flushed += run
	a.pending -= run
	a.delivered += int64(run)
	a.cond.Broadcast()
}

// runLenLocked measures the contiguous present run starting at the
// watermark, word-at-a-time where aligned.
func (a *WindowAssembler) runLenLocked() uint64 {
	run := uint64(0)
	for run < a.pending+a.window { // bounded scan
		pos := (a.flushed + run) % a.window
		word, bit := pos/64, pos%64
		if bit == 0 && pos+64 <= a.window && a.bits[word] == ^uint64(0) {
			run += 64
			continue
		}
		if a.bits[word]&(1<<bit) == 0 {
			break
		}
		run++
	}
	if run > a.window {
		run = a.window
	}
	return run
}

// clearLocked clears the presence bits for [off, off+n).
func (a *WindowAssembler) clearLocked(off, n uint64) {
	for i := uint64(0); i < n; {
		pos := (off + i) % a.window
		word, bit := pos/64, pos%64
		if bit == 0 && n-i >= 64 && pos+64 <= a.window {
			a.bits[word] = 0
			i += 64
			continue
		}
		a.bits[word] &^= 1 << bit
		i++
	}
}

// writeSink forwards one flushed segment; a sink failure fails the
// whole assembler (every later Place reports it).
func (a *WindowAssembler) writeSink(p []byte) error {
	if _, err := a.sink.Write(p); err != nil {
		if a.failed == nil {
			a.failed = fmt.Errorf("gridftp: window sink: %w", err)
		}
		a.cond.Broadcast()
		return a.failed
	}
	return nil
}

// PlaceBlocking is Place with backpressure: a block beyond the window
// parks the calling goroutine until earlier bytes flush and the window
// slides. A park longer than the assembler's timeout fails with
// ErrWindowStalled, and Abort wakes every parked caller with the
// aborting error — no goroutine is left parked forever.
func (a *WindowAssembler) PlaceBlocking(b Block) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var timedOut bool
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		err := a.placeLocked(b)
		if !errors.Is(err, ErrWindowFull) {
			return err
		}
		if timedOut {
			if a.failed == nil {
				a.failed = ErrWindowStalled
				a.cond.Broadcast()
			}
			return ErrWindowStalled
		}
		if timer == nil {
			if a.OnPark != nil {
				a.OnPark(b.Offset)
			}
			timer = time.AfterFunc(a.parkMax, func() {
				a.mu.Lock()
				timedOut = true
				a.cond.Broadcast()
				a.mu.Unlock()
			})
		}
		a.cond.Wait()
	}
}

// Abort fails the assembler: parked placers wake with err and every
// later operation reports it. The first abort wins; later calls are
// no-ops.
func (a *WindowAssembler) Abort(err error) {
	if err == nil {
		err = errors.New("gridftp: window aborted")
	}
	a.mu.Lock()
	if a.failed == nil {
		a.failed = err
		a.cond.Broadcast()
	}
	a.mu.Unlock()
}

// Finish validates completion: no gap may remain parked in the window,
// and when the region size was announced every byte must have been
// delivered.
func (a *WindowAssembler) Finish() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.failed != nil {
		return a.failed
	}
	if a.pending > 0 {
		return fmt.Errorf("%w: %d bytes parked behind a gap at offset %d",
			ErrDataProtocol, a.pending, a.flushed)
	}
	if a.end != unboundedEnd && a.flushed != a.end {
		return fmt.Errorf("%w: incomplete transfer: delivered to %d, want %d",
			ErrDataProtocol, a.flushed, a.end)
	}
	return nil
}

// Flushed returns the delivery watermark: the absolute offset of the
// next byte the sink has not yet received. This is the REST offset a
// resume-aware retry restarts from.
func (a *WindowAssembler) Flushed() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flushed
}

// Delivered returns the bytes flushed to the sink.
func (a *WindowAssembler) Delivered() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.delivered
}

// WireBytes returns every payload byte offered, duplicates included.
func (a *WindowAssembler) WireBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.wire
}

// DuplicateBytes returns the bytes that arrived more than once (the
// redundant traffic a restart-from-zero retry multiplies and a
// resume-aware retry bounds by one window).
func (a *WindowAssembler) DuplicateBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dup
}

// Window returns the configured window size in bytes.
func (a *WindowAssembler) Window() int { return int(a.window) }

// DrainConn reads frames from one data connection into the assembler
// until EOD, parking on out-of-window blocks. It returns the payload
// bytes read off this connection. On error the caller should Abort the
// assembler so sibling connections unpark.
func (a *WindowAssembler) DrainConn(r io.Reader) (int64, error) {
	var n int64
	var scratch []byte
	for {
		var b Block
		var err error
		b, scratch, err = ReadBlockInto(r, scratch)
		if err != nil {
			return n, err
		}
		n += int64(len(b.Data))
		if err := a.PlaceBlocking(b); err != nil {
			return n, err
		}
		if b.Desc&DescEOD != 0 {
			return n, nil
		}
	}
}
