package gridftp

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"gftpvc/internal/telemetry"
)

// rawControl opens a raw control channel, authenticates, and returns a
// send-command/read-reply helper for exercising verbs below the Client
// API.
func rawControl(t *testing.T, addr string) func(line string) string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	r := bufio.NewReader(conn)
	readReply := func() string {
		t.Helper()
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			line = strings.TrimRight(line, "\r\n")
			if len(line) >= 4 && line[3] == ' ' {
				return line
			}
		}
	}
	readReply() // greeting
	send := func(line string) string {
		t.Helper()
		fmt.Fprintf(conn, "%s\r\n", line)
		return readReply()
	}
	if rep := send("USER u"); !strings.HasPrefix(rep, "331") {
		t.Fatalf("USER: %s", rep)
	}
	if rep := send("PASS p"); !strings.HasPrefix(rep, "230") {
		t.Fatalf("PASS: %s", rep)
	}
	return send
}

// TestSiteUnknownSubcommand pins the degrade contract SITE TRID relies
// on: an unknown SITE subcommand gets a 500-family reply — the same
// family pre-TRID builds sent for SITE itself — never a hang or a
// success code, so tracing clients can probe newer extensions safely.
func TestSiteUnknownSubcommand(t *testing.T) {
	srv := startServer(t, Config{})
	send := rawControl(t, srv.Addr())
	for _, cmd := range []string{"SITE NOSUCH", "SITE NOSUCH arg1 arg2", "SITE"} {
		rep := send(cmd)
		if !strings.HasPrefix(rep, "500 ") {
			t.Errorf("%s: got %q, want a 500 reply", cmd, rep)
		}
	}
}

func TestSiteTrid(t *testing.T) {
	hub := telemetry.NewHub()
	srv := startServer(t, Config{Telemetry: hub})
	send := rawControl(t, srv.Addr())

	trace := telemetry.NewTraceID()
	if rep := send("SITE TRID " + trace + "-deadbeef"); !strings.HasPrefix(rep, "200 ") {
		t.Fatalf("SITE TRID: %q", rep)
	}
	evs := hub.Events().ByTrace(trace)
	if len(evs) != 1 || evs[0].Kind != "trid_bound" {
		t.Fatalf("trid_bound event: %+v", evs)
	}

	for _, bad := range []string{"SITE TRID", "SITE TRID xyz", "SITE TRID " + trace + "-zz"} {
		if rep := send(bad); !strings.HasPrefix(rep, "501 ") {
			t.Errorf("%s: got %q, want 501", bad, rep)
		}
	}
}

// TestClientSetTraceDegrade checks the client side of the contract:
// SetTrace against a server that rejects SITE returns nil (silent
// degrade) while keeping local span tagging, and binding against a
// TRID-aware server tags the server's transfer span with the trace.
func TestClientSetTraceDegrade(t *testing.T) {
	hub := telemetry.NewHub()
	store := NewMemStore()
	store.Put("x.bin", make([]byte, 1<<10))
	srv := startServer(t, Config{Store: store, Telemetry: hub})

	chub := telemetry.NewHub()
	c, err := Dial(srv.Addr(), WithTelemetry(chub))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Login("u", "p"); err != nil {
		t.Fatal(err)
	}
	tc := telemetry.TraceContext{TraceID: telemetry.NewTraceID(), ParentSID: "deadbeef"}
	if err := c.SetTrace(tc); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Retr("x.bin"); err != nil {
		t.Fatal(err)
	}
	if got := hub.Spans().ByTrace(tc.TraceID); len(got) != 1 || got[0].ParentSID != "deadbeef" {
		t.Fatalf("server span tagging: %+v", got)
	}
	if got := chub.Spans().ByTrace(tc.TraceID); len(got) != 1 || got[0].Op != "retr" {
		t.Fatalf("client span tagging: %+v", got)
	}

	if err := c.SetTrace(telemetry.TraceContext{TraceID: "nothex"}); err == nil {
		t.Fatal("invalid trace context accepted")
	}
	// Clearing stops tagging new spans.
	if err := c.SetTrace(telemetry.TraceContext{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Retr("x.bin"); err != nil {
		t.Fatal(err)
	}
	if got := chub.Spans().ByTrace(tc.TraceID); len(got) != 1 {
		t.Fatalf("span tagged after clear: %+v", got)
	}
}

// TestClientSetTraceOldServer runs SetTrace against a scripted server
// that answers SITE with 502 ("command not implemented"), the reply a
// pre-TRID build sends: the client must degrade silently.
func TestClientSetTraceOldServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fmt.Fprintf(conn, "220 old server\r\n")
		r := bufio.NewReader(conn)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			verb, _, _ := strings.Cut(strings.TrimRight(line, "\r\n"), " ")
			switch strings.ToUpper(verb) {
			case "USER":
				fmt.Fprintf(conn, "331 password required\r\n")
			case "PASS":
				fmt.Fprintf(conn, "230 logged in\r\n")
			case "TYPE", "MODE":
				fmt.Fprintf(conn, "200 ok\r\n")
			case "QUIT":
				fmt.Fprintf(conn, "221 goodbye\r\n")
				return
			default:
				fmt.Fprintf(conn, "502 command not implemented: %s\r\n", verb)
			}
		}
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Login("u", "p"); err != nil {
		t.Fatal(err)
	}
	tc := telemetry.TraceContext{TraceID: telemetry.NewTraceID()}
	if err := c.SetTrace(tc); err != nil {
		t.Fatalf("SetTrace against an old server must degrade silently, got %v", err)
	}
}
