package gridftp

import (
	"bytes"
	"context"
	"testing"
	"time"

	"gftpvc/internal/telemetry"
)

// expectShaped asserts a transfer of n payload bytes took at least
// half its ideal duration at rateBps — loose enough to never flake,
// tight enough that an unshaped loopback transfer (sub-millisecond)
// cannot pass.
func expectShaped(t *testing.T, what string, n int64, rateBps int64, elapsed time.Duration) {
	t.Helper()
	ideal := time.Duration(float64(n) * 8 / float64(rateBps) * float64(time.Second))
	if elapsed < ideal/2 {
		t.Fatalf("%s: %d bytes at %d bps took %v, want >= %v (shaping not engaged?)",
			what, n, rateBps, elapsed, ideal/2)
	}
}

// TestClientRateShapedByteIdentical: WithRate holds the transfer near
// the configured rate in both directions, and the shaped payload is
// byte-identical to the unshaped one.
func TestClientRateShapedByteIdentical(t *testing.T) {
	srv := startServer(t, Config{})
	payload := randomPayload(2 << 20)
	const rate = 160e6 // 20 MB/s => ~100 ms for 2 MiB

	// Unshaped reference upload + download.
	ref := login(t, srv.Addr())
	if _, err := ref.Stor("obj", payload); err != nil {
		t.Fatal(err)
	}
	plain, _, err := ref.Retr("obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, payload) {
		t.Fatalf("unshaped retrieve differs from payload")
	}

	// Shaped download: per-call option, old server command set untouched
	// beyond one SITE RATE.
	c := login(t, srv.Addr())
	start := time.Now()
	shapedData, _, err := c.Retr("obj", WithRate(rate))
	if err != nil {
		t.Fatal(err)
	}
	expectShaped(t, "shaped RETR", int64(len(payload)), rate, time.Since(start))
	if !bytes.Equal(shapedData, payload) {
		t.Fatalf("shaped retrieve differs from payload")
	}

	// Shaped upload through the same client (rate persists).
	start = time.Now()
	if _, err := c.Stor("obj2", payload); err != nil {
		t.Fatal(err)
	}
	expectShaped(t, "shaped STOR", int64(len(payload)), rate, time.Since(start))
	got, _, err := ref.Retr("obj2")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("shaped store corrupted the object")
	}

	// Clearing the rate restores full speed.
	if err := c.ApplyOptions(WithRate(0)); err != nil {
		t.Fatal(err)
	}
	if c.rateBps != 0 || c.rateWired {
		t.Fatalf("WithRate(0) did not clear shaping state: rate=%d wired=%v", c.rateBps, c.rateWired)
	}
}

// TestServerMaxRate: the server-wide cap shapes a client that asked for
// nothing, and SITE RATE cannot exceed it.
func TestServerMaxRate(t *testing.T) {
	const capBps = 160e6 // 20 MB/s
	hub := telemetry.NewHub()
	srv := startServer(t, Config{MaxRateBps: capBps, Telemetry: hub})
	payload := randomPayload(2 << 20)
	c := login(t, srv.Addr())
	if _, err := c.Stor("obj", payload); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, _, err := c.Retr("obj")
	if err != nil {
		t.Fatal(err)
	}
	expectShaped(t, "capped RETR", int64(len(payload)), capBps, time.Since(start))
	if !bytes.Equal(got, payload) {
		t.Fatalf("capped retrieve differs from payload")
	}
	if n := hub.Counter("gridftp_shaped_bytes_total",
		"Wire bytes moved through a rate-shaped data connection, by operation.",
		telemetry.L("op", "retr")).Value(); n < int64(len(payload)) {
		t.Fatalf("gridftp_shaped_bytes_total(retr) = %d, want >= %d", n, len(payload))
	}

	// Asking for more than the cap keeps the cap.
	if _, err := c.do("SITE", "SITE RATE 999000000000", 200); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if _, _, err := c.Retr("obj"); err != nil {
		t.Fatal(err)
	}
	expectShaped(t, "over-request RETR", int64(len(payload)), capBps, time.Since(start))
}

// TestSiteRateCommand exercises the SITE RATE wire protocol directly.
func TestSiteRateCommand(t *testing.T) {
	srv := startServer(t, Config{})
	c := login(t, srv.Addr())
	if _, err := c.do("SITE", "SITE RATE 1000000", 200); err != nil {
		t.Fatalf("SITE RATE: %v", err)
	}
	if _, err := c.do("SITE", "SITE RATE 0", 200); err != nil {
		t.Fatalf("SITE RATE 0 (clear): %v", err)
	}
	if _, err := c.do("SITE", "SITE RATE banana", 501); err != nil {
		t.Fatalf("SITE RATE banana should 501: %v", err)
	}
	if _, err := c.do("SITE", "SITE RATE -5", 501); err != nil {
		t.Fatalf("SITE RATE -5 should 501: %v", err)
	}
}

// TestStreamShapedWithThrottleAttribution: the streaming paths shape
// too, and the throttle stalls show up on the server's transfer span
// for variance attribution.
func TestStreamShapedWithThrottleAttribution(t *testing.T) {
	const rate = 160e6
	hub := telemetry.NewHub()
	srv := startServer(t, Config{MaxRateBps: rate, Telemetry: hub})
	payload := randomPayload(2 << 20)
	c := login(t, srv.Addr())
	if _, err := c.Stor("obj", payload); err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	start := time.Now()
	stats, err := c.RetrTo(context.Background(), "obj", &sink)
	if err != nil {
		t.Fatal(err)
	}
	expectShaped(t, "capped streaming RETR", stats.Bytes, rate, time.Since(start))
	if !bytes.Equal(sink.Bytes(), payload) {
		t.Fatalf("shaped streaming retrieve differs from payload")
	}
	var waited float64
	for _, sp := range hub.Spans().Snapshot() {
		waited += sp.ThrottleWaitSec
	}
	if waited <= 0 {
		t.Fatalf("no throttle_wait_sec recorded on any server span")
	}
}

// TestApplyOptionsRebind: one ApplyOptions call rebinds deadlines,
// window, trace, and rate — the pool-checkout path.
func TestApplyOptionsRebind(t *testing.T) {
	srv := startServer(t, Config{})
	c := login(t, srv.Addr())
	err := c.ApplyOptions(
		WithTimeouts(11*time.Second, 13*time.Second),
		WithTransferWindow(1<<20),
		WithRate(500e6),
		WithRateBurst(128<<10),
	)
	if err != nil {
		t.Fatal(err)
	}
	if c.controlTimeout != 11*time.Second || c.dataTimeout != 13*time.Second {
		t.Fatalf("timeouts not rebound: %v/%v", c.controlTimeout, c.dataTimeout)
	}
	if c.windowSize != 1<<20 {
		t.Fatalf("window not rebound: %d", c.windowSize)
	}
	if c.rateBps != 500e6 || c.rateBurst != 128<<10 || !c.rateWired {
		t.Fatalf("rate not rebound: rate=%d burst=%d wired=%v", c.rateBps, c.rateBurst, c.rateWired)
	}
	if lim := c.xferLimiter(); lim == nil || lim.Rate() != 500e6 {
		t.Fatalf("xferLimiter did not mint the configured rate")
	}
	// Bad window surfaces as an error and leaves state untouched.
	if err := c.ApplyOptions(WithTransferWindow(-1)); err == nil {
		t.Fatalf("negative window accepted")
	}
	// Clearing after a wired rate sends SITE RATE 0 and resets.
	if err := c.ApplyOptions(WithRate(-1)); err != nil {
		t.Fatal(err)
	}
	if c.rateBps != 0 || c.rateWired {
		t.Fatalf("clear did not reset: rate=%d wired=%v", c.rateBps, c.rateWired)
	}
	if c.xferLimiter() != nil {
		t.Fatalf("cleared client still mints a limiter")
	}
}

// TestServerAggregateRate: the server-wide bucket (the contention
// model's R) divides the aggregate across sessions that asked for
// nothing — two concurrent unshaped retrieves share R and each takes
// about twice the solo paced duration — and the shaped-rate gauge
// publishes per-session commitments while sessions are open.
func TestServerAggregateRate(t *testing.T) {
	const aggBps = 320e6 // 40 MB/s shared across the whole server
	hub := telemetry.NewHub()
	srv := startServer(t, Config{AggregateRateBps: aggBps, Telemetry: hub})
	payload := randomPayload(4 << 20)
	seed := login(t, srv.Addr())
	if _, err := seed.Stor("obj", payload); err != nil {
		t.Fatal(err)
	}
	type result struct {
		elapsed time.Duration
		err     error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			c, err := Dial(srv.Addr())
			if err != nil {
				results <- result{0, err}
				return
			}
			defer c.Close()
			if err := c.Login("u", "p"); err != nil {
				results <- result{0, err}
				return
			}
			start := time.Now()
			got, _, err := c.Retr("obj")
			if err == nil && !bytes.Equal(got, payload) {
				err = context.DeadlineExceeded // placeholder: corrupt payload
			}
			results <- result{time.Since(start), err}
		}()
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		// Two transfers share aggBps: each effectively runs at aggBps/2.
		expectShaped(t, "aggregate-capped RETR", int64(len(payload)), aggBps/2, r.elapsed)
	}

	// The shaped-rate gauge: unshaped sessions against a per-session cap
	// publish that cap while open, and retract it at teardown.
	gauge := hub.Gauge("gridftp_server_shaped_rate_bps",
		"Summed effective session rates (SITE RATE clamped by MaxRateBps) across open sessions — the capacity already promised to clients, scraped by fleet registries as committed load.")
	capped := startServer(t, Config{MaxRateBps: 100e6, Telemetry: hub})
	c1 := login(t, capped.Addr())
	c2 := login(t, capped.Addr())
	if v := gauge.Value(); v != 200e6 {
		t.Fatalf("shaped-rate gauge with two capped sessions = %d, want 200e6", v)
	}
	if _, err := c1.do("SITE", "SITE RATE 40000000", 200); err != nil {
		t.Fatal(err)
	}
	if v := gauge.Value(); v != 140e6 {
		t.Fatalf("shaped-rate gauge after SITE RATE 40e6 = %d, want 140e6", v)
	}
	c1.Close()
	c2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for gauge.Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if v := gauge.Value(); v != 0 {
		t.Fatalf("shaped-rate gauge after teardown = %d, want 0", v)
	}
}
