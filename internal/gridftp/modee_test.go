package gridftp

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBlockRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Block{Desc: 0, Offset: 123456789, Data: []byte("hello gridftp")}
	if err := WriteBlock(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBlock(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Desc != want.Desc || got.Offset != want.Offset || !bytes.Equal(got.Data, want.Data) {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func TestControlFrames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBlock(&buf, Block{Desc: DescEOD}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBlock(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Desc != DescEOD || got.Data != nil {
		t.Errorf("got %+v", got)
	}
}

func TestReadBlockTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteBlock(&buf, Block{Data: []byte("abcdef")})
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadBlock(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated payload should fail")
	}
	if _, err := ReadBlock(bytes.NewReader(trunc[:5])); err == nil {
		t.Error("truncated header should fail")
	}
}

func TestReadBlockOversized(t *testing.T) {
	var buf bytes.Buffer
	hdr := make([]byte, modeEHeaderLen)
	hdr[1] = 0xFF // absurd count
	buf.Write(hdr)
	_, err := ReadBlock(&buf)
	if !errors.Is(err, ErrDataProtocol) {
		t.Errorf("err = %v, want ErrDataProtocol", err)
	}
}

func TestSendFileGeometryValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := SendFile(&buf, []byte("x"), 0, 0, 1); err == nil {
		t.Error("zero block size should fail")
	}
	if err := SendFile(&buf, []byte("x"), 1, -1, 1); err == nil {
		t.Error("negative base should fail")
	}
	if err := SendFile(&buf, []byte("x"), 1, 0, 0); err == nil {
		t.Error("zero step should fail")
	}
}

func TestAssemblerValidation(t *testing.T) {
	if _, err := NewAssembler(-1); err == nil {
		t.Error("negative size should fail")
	}
	a, err := NewAssembler(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Place(Block{Offset: 8, Data: []byte("xyz")}); !errors.Is(err, ErrDataProtocol) {
		t.Errorf("overflow placement: err = %v", err)
	}
}

func TestStripedReassemblyProperty(t *testing.T) {
	// Property: any (payload size, block size, stripe count) partition
	// reassembles to the original payload, including concurrent draining.
	f := func(seed int64, sizeRaw, blockRaw uint16, stripesRaw uint8) bool {
		size := int(sizeRaw)%20000 + 1
		block := int(blockRaw)%997 + 1
		stripes := int(stripesRaw)%7 + 1
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, size)
		rng.Read(payload)

		// Render each stripe's byte stream.
		streams := make([]*bytes.Buffer, stripes)
		for i := range streams {
			streams[i] = &bytes.Buffer{}
			if err := SendFile(streams[i], payload, block, i*block, stripes*block); err != nil {
				return false
			}
		}
		asm, err := NewAssembler(int64(size))
		if err != nil {
			return false
		}
		var wg sync.WaitGroup
		ok := make([]bool, stripes)
		for i := range streams {
			wg.Add(1)
			go func(i int, r io.Reader) {
				defer wg.Done()
				_, err := asm.DrainConn(r)
				ok[i] = err == nil
			}(i, streams[i])
		}
		wg.Wait()
		for _, o := range ok {
			if !o {
				return false
			}
		}
		return asm.Complete() && bytes.Equal(asm.Bytes(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDrainConnStopsAtEOD(t *testing.T) {
	var buf bytes.Buffer
	WriteBlock(&buf, Block{Offset: 0, Data: []byte("abc")})
	WriteBlock(&buf, Block{Desc: DescEOD})
	WriteBlock(&buf, Block{Offset: 3, Data: []byte("XYZ")}) // after EOD: unread
	asm, _ := NewAssembler(6)
	n, err := asm.DrainConn(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("drained %d bytes, want 3", n)
	}
	if asm.Complete() {
		t.Error("assembler should not be complete")
	}
}
