package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"gftpvc/internal/dtnsched"
	"gftpvc/internal/hostmodel"
	"gftpvc/internal/telemetry"
)

// sample is one scrape's view of a replica: when it was taken, how many
// sessions the replica reported, the throughput measured over the live
// byte counters' trailing window, and the summed per-session rate
// commitments (SITE RATE / MaxRateBps) the replica has already promised.
type sample struct {
	at           time.Time
	sessions     int64
	measuredBps  float64
	committedBps float64
	healthy      bool
}

// loadBps is the Σₖ tₖ term Eq. 2 subtracts from R: the larger of what
// the replica is measurably moving and what it has contractually
// promised. Measured catches unshaped background load; committed
// catches reservations that have not started moving bytes yet.
func (s sample) loadBps() float64 {
	if s.committedBps > s.measuredBps {
		return s.committedBps
	}
	return s.measuredBps
}

// replicaState is the registry's record for one replica: its static
// identity, its admission calendar (when admission control is on), and
// the latest scrape sample.
type replicaState struct {
	rep      Replica
	capacity float64
	cal      *dtnsched.Wall // nil without admission

	mu   sync.Mutex
	last sample
}

// snapshotLocked copies the latest sample.
func (rs *replicaState) sample() sample {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.last
}

// Registry tracks per-replica health and live load by scraping each
// replica's telemetry endpoint — /healthz for readiness, /metrics for
// active sessions and committed (shaped) rates, /counters for the
// trailing-window measured throughput. It is the observation half of
// the fleet: the Dispatcher turns its samples into placements.
type Registry struct {
	cfg    Config
	client *http.Client
	reps   []*replicaState

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	met regMetrics
}

type regMetrics struct {
	hub *telemetry.Hub
}

// gauge resolves a per-replica gauge; nil hub costs nothing.
func (m regMetrics) gauge(name, help, replica string) *telemetry.Gauge {
	if m.hub == nil {
		return nil
	}
	return m.hub.Gauge(name, help, telemetry.L("replica", replica))
}

// NewRegistry starts a registry scraping cfg.Replicas every
// cfg.ScrapeInterval. Callers must Close it.
func NewRegistry(cfg Config) (*Registry, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	r := &Registry{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.HTTPTimeout},
		stop:   make(chan struct{}),
		met:    regMetrics{hub: cfg.Telemetry},
	}
	for _, rep := range cfg.Replicas {
		rs := &replicaState{rep: rep, capacity: rep.CapacityBps}
		if rs.capacity <= 0 {
			rs.capacity = cfg.CapacityBps
		}
		if cfg.Admission {
			cal, err := dtnsched.NewWall(rs.capacity)
			if err != nil {
				return nil, err
			}
			rs.cal = cal
		}
		r.reps = append(r.reps, rs)
	}
	r.wg.Add(1)
	go r.scrapeLoop()
	return r, nil
}

// scrapeLoop refreshes every replica until Close, starting immediately
// so the first placements are not blind for a full interval.
func (r *Registry) scrapeLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.ScrapeInterval)
	defer t.Stop()
	for {
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.HTTPTimeout)
		r.ScrapeNow(ctx)
		cancel()
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
	}
}

// ScrapeNow refreshes every replica's sample synchronously — the loop
// calls it on its cadence; tests and warm-up paths call it to observe a
// known state instead of sleeping for a tick.
func (r *Registry) ScrapeNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rs := range r.reps {
		wg.Add(1)
		go func(rs *replicaState) {
			defer wg.Done()
			r.scrapeOne(ctx, rs)
		}(rs)
	}
	wg.Wait()
}

// scrapeOne refreshes one replica. A replica with no telemetry URL, or
// whose endpoint is unreachable, keeps its previous sample — it simply
// goes stale, which is the signal the dispatcher's fallback keys on.
func (r *Registry) scrapeOne(ctx context.Context, rs *replicaState) {
	base := strings.TrimSuffix(rs.rep.TelemetryURL, "/")
	if base == "" {
		return
	}
	healthy, err := r.health(ctx, base)
	if err != nil {
		r.met.gauge("fleet_replica_up", replicaUpHelp, rs.rep.Addr).Set(0)
		return
	}
	metrics, err := r.promGauges(ctx, base)
	if err != nil {
		r.met.gauge("fleet_replica_up", replicaUpHelp, rs.rep.Addr).Set(0)
		return
	}
	measured, err := r.windowThroughput(ctx, base)
	if err != nil {
		r.met.gauge("fleet_replica_up", replicaUpHelp, rs.rep.Addr).Set(0)
		return
	}
	s := sample{
		at:           time.Now(),
		sessions:     int64(metrics["gridftp_server_sessions_active"]),
		measuredBps:  measured,
		committedBps: metrics["gridftp_server_shaped_rate_bps"],
		healthy:      healthy,
	}
	rs.mu.Lock()
	rs.last = s
	rs.mu.Unlock()
	up := int64(0)
	if healthy {
		up = 1
	}
	addr := rs.rep.Addr
	r.met.gauge("fleet_replica_up", replicaUpHelp, addr).Set(up)
	r.met.gauge("fleet_replica_sessions",
		"Active control-channel sessions last scraped from the replica.", addr).Set(s.sessions)
	r.met.gauge("fleet_replica_load_bps",
		"Replica load (max of measured window throughput and committed shaped rates), in bits/sec.", addr).Set(int64(s.loadBps()))
	r.met.gauge("fleet_replica_predicted_bps",
		"Eq. 2 effective rate a new transfer would get on the replica (capacity minus load), in bits/sec.", addr).Set(int64(hostmodel.EffectiveRate(rs.capacity, s.loadBps())))
}

const replicaUpHelp = "Replica scrape status: 1 when the last scrape succeeded and /healthz reported ok."

// health probes /healthz: 200 is healthy, 503 is a live-but-degraded
// replica (scrape succeeded, place elsewhere), anything else an error.
func (r *Registry) health(ctx context.Context, base string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return false, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusServiceUnavailable:
		return false, nil
	default:
		return false, fmt.Errorf("fleet: healthz status %d", resp.StatusCode)
	}
}

// promGauges fetches /metrics and extracts the unlabeled series the
// registry consumes (sessions, shaped rate). Labeled variants of a name
// are summed, matching Prometheus aggregation semantics.
func (r *Registry) promGauges(ctx context.Context, base string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 1 {
			continue
		}
		series, valText := line[:sp], line[sp+1:]
		name := series
		if br := strings.IndexByte(series, '{'); br >= 0 {
			name = series[:br]
		}
		v, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			continue
		}
		out[name] += v
	}
	return out, nil
}

// windowThroughput fetches /counters and computes the replica's summed
// data-plane throughput over the trailing LoadWindow: total bytes in
// the tail bins of every live counter, divided by the window those bins
// cover. The current bin is partial, so this slightly underestimates a
// just-started burst — conservative in the right direction for
// placement (a busy replica looks at least this busy).
func (r *Registry) windowThroughput(ctx context.Context, base string) (float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/counters", nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("fleet: counters status %d", resp.StatusCode)
	}
	var counters []telemetry.CounterSnapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&counters); err != nil {
		return 0, err
	}
	var total, window float64
	for _, c := range counters {
		if c.BinSec <= 0 || len(c.Bytes) == 0 {
			continue
		}
		k := int(math.Ceil(r.cfg.LoadWindow.Seconds() / c.BinSec))
		if k < 1 {
			k = 1
		}
		if k > len(c.Bytes) {
			k = len(c.Bytes)
		}
		for _, b := range c.Bytes[len(c.Bytes)-k:] {
			total += b
		}
		if w := float64(k) * c.BinSec; w > window {
			window = w
		}
	}
	if window <= 0 {
		return 0, nil
	}
	return total * 8 / window, nil
}

// ReplicaLoad is one replica's row in a registry snapshot.
type ReplicaLoad struct {
	Addr         string
	CapacityBps  float64
	Sessions     int64
	MeasuredBps  float64
	CommittedBps float64
	// ClaimedBps is the admission calendar's live claims (0 without
	// admission control).
	ClaimedBps float64
	// PredictedBps is the Eq. 2 effective rate a new transfer would get.
	PredictedBps float64
	Healthy      bool
	// Fresh reports whether the sample is younger than the staleness
	// bound; the dispatcher only trusts fresh samples.
	Fresh bool
}

// Snapshot returns every replica's latest state, in configuration order.
func (r *Registry) Snapshot() []ReplicaLoad {
	now := time.Now()
	out := make([]ReplicaLoad, 0, len(r.reps))
	for _, rs := range r.reps {
		s := rs.sample()
		rl := ReplicaLoad{
			Addr:         rs.rep.Addr,
			CapacityBps:  rs.capacity,
			Sessions:     s.sessions,
			MeasuredBps:  s.measuredBps,
			CommittedBps: s.committedBps,
			PredictedBps: hostmodel.EffectiveRate(rs.capacity, s.loadBps()),
			Healthy:      s.healthy,
			Fresh:        !s.at.IsZero() && now.Sub(s.at) <= r.cfg.Staleness,
		}
		if rs.cal != nil {
			rl.ClaimedBps = rs.capacity - rs.cal.AvailableNow(time.Second)
		}
		out = append(out, rl)
	}
	return out
}

// Close stops the scrape loop.
func (r *Registry) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}
