// Package fleet places managed transfers across N gftpd replicas by
// predicted effective rate. It is the paper's Eq. 2 run forward: where
// the offline analysis showed a transfer's throughput is what remains
// of server capacity R after concurrent transfers take theirs
// (ρ = 0.884, Fig 8), the dispatcher picks, for each job, the replica
// whose R − Σₖ tₖ is largest right now — load Σₖ tₖ scraped live from
// each replica's telemetry. Optional admission control adapts
// internal/dtnsched's reservation calendar to the wall clock, claiming
// capacity on the chosen replica for the job's predicted duration so
// back-to-back placements see each other before the next scrape lands
// (the paper's concluding "schedule server resources prior to data
// transfers" recommendation). When every replica's registry data is
// stale the dispatcher falls back to round-robin, stickily, until
// scrapes recover.
package fleet

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"gftpvc/internal/dtnsched"
	"gftpvc/internal/hostmodel"
	"gftpvc/internal/telemetry"
)

// Replica identifies one gftpd endpoint the dispatcher may place on.
type Replica struct {
	// Addr is the control-channel address jobs dial.
	Addr string
	// TelemetryURL is the base of the replica's telemetry endpoint
	// (http://host:port); empty means the replica is never fresh and
	// only ever receives round-robin fallback placements.
	TelemetryURL string
	// CapacityBps overrides Config.CapacityBps for this replica (its R).
	CapacityBps float64
}

// Config configures a fleet.
type Config struct {
	// Replicas is the endpoint set; at least one is required.
	Replicas []Replica
	// CapacityBps is the default per-replica aggregate capacity R
	// (default 1e9). Match the replicas' AggregateRateBps when the live
	// cap is enforced.
	CapacityBps float64
	// ScrapeInterval is the registry's telemetry polling cadence
	// (default 2s).
	ScrapeInterval time.Duration
	// Staleness bounds how old a sample may be and still drive placement
	// (default 3×ScrapeInterval).
	Staleness time.Duration
	// LoadWindow is the trailing window over the replicas' live byte
	// counters used as measured load (default 30s, the counters' own
	// cadence).
	LoadWindow time.Duration
	// StickyFor is how long the dispatcher stays on round-robin after a
	// fallback before trusting fresh samples again (default
	// 2×ScrapeInterval) — flapping between modes on a flaky scrape
	// would re-herd jobs every interval.
	StickyFor time.Duration
	// Admission turns on wall-clock reservation claims: each placement
	// reserves its predicted rate on the chosen replica's calendar for
	// its predicted duration, released on completion.
	Admission bool
	// HTTPTimeout bounds each scrape request (default 2s).
	HTTPTimeout time.Duration
	// Telemetry, when set, receives placement counters and per-replica
	// load gauges.
	Telemetry *telemetry.Hub
}

// withDefaults validates and fills the zero values.
func (cfg Config) withDefaults() (Config, error) {
	if len(cfg.Replicas) == 0 {
		return cfg, errors.New("fleet: at least one replica required")
	}
	for _, rep := range cfg.Replicas {
		if rep.Addr == "" {
			return cfg, errors.New("fleet: replica with empty address")
		}
	}
	if cfg.CapacityBps == 0 {
		cfg.CapacityBps = 1e9
	}
	if cfg.CapacityBps < 0 {
		return cfg, errors.New("fleet: capacity must be positive")
	}
	if cfg.ScrapeInterval <= 0 {
		cfg.ScrapeInterval = 2 * time.Second
	}
	if cfg.Staleness <= 0 {
		cfg.Staleness = 3 * cfg.ScrapeInterval
	}
	if cfg.LoadWindow <= 0 {
		cfg.LoadWindow = 30 * time.Second
	}
	if cfg.StickyFor <= 0 {
		cfg.StickyFor = 2 * cfg.ScrapeInterval
	}
	if cfg.HTTPTimeout <= 0 {
		cfg.HTTPTimeout = 2 * time.Second
	}
	return cfg, nil
}

// Request describes one job to place.
type Request struct {
	// SizeBytes sizes the admission claim (0: unknown; the claim falls
	// back to the EWMA job duration).
	SizeBytes int64
	// Previous is the replica a prior attempt of the same job ran on;
	// a placement that moves off it counts as a rebalance.
	Previous string
}

// Placement is one admitted placement: dial Addr, run the job, then
// Complete exactly once (idempotent) so the claim releases and the
// EWMAs learn.
type Placement struct {
	// Addr is the chosen replica's control-channel address.
	Addr string
	// PredictedBps is the Eq. 2 effective rate the model expected at
	// placement time (0 on fallback placements).
	PredictedBps float64
	// Fallback marks a round-robin placement made without fresh
	// registry data.
	Fallback bool

	d     *Dispatcher
	rs    *replicaState
	resID dtnsched.ReservationID
	claim bool
	done  atomic.Bool
}

// Dispatcher turns registry samples into placements. It is safe for
// concurrent use.
type Dispatcher struct {
	cfg Config
	reg *Registry

	mu          sync.Mutex
	rr          int
	stickyUntil time.Time
	ewmaRate    float64 // learned delivered per-job rate (bps)
	ewmaDur     float64 // learned per-job duration (seconds)

	met dispMetrics
}

type dispMetrics struct {
	hub        *telemetry.Hub
	fallbacks  *telemetry.Counter
	rebalances *telemetry.Counter
}

// placements resolves the per-replica placement counter.
func (m dispMetrics) placements(replica string) *telemetry.Counter {
	if m.hub == nil {
		return nil
	}
	return m.hub.Counter("fleet_placements_total",
		"Jobs placed, by replica.", telemetry.L("replica", replica))
}

// New starts a fleet: a registry scraping cfg.Replicas and a dispatcher
// placing on it. Callers must Close it.
func New(cfg Config) (*Dispatcher, error) {
	reg, err := NewRegistry(cfg)
	if err != nil {
		return nil, err
	}
	d := &Dispatcher{cfg: reg.cfg, reg: reg, met: dispMetrics{hub: reg.cfg.Telemetry}}
	if hub := reg.cfg.Telemetry; hub != nil {
		d.met.fallbacks = hub.Counter("fleet_fallbacks_total",
			"Round-robin placements made because no replica had fresh registry data.")
		d.met.rebalances = hub.Counter("fleet_rebalances_total",
			"Retry placements moved to a different replica than the failed attempt's.")
	}
	return d, nil
}

// Registry exposes the dispatcher's registry (snapshots, forced
// scrapes).
func (d *Dispatcher) Registry() *Registry { return d.reg }

// Close stops the registry scrape loop.
func (d *Dispatcher) Close() { d.reg.Close() }

// Place chooses a replica for one job: the fresh, healthy replica with
// the highest Eq. 2 effective rate (capacity minus scraped load,
// clamped by the admission calendar's headroom when admission is on),
// or sticky round-robin when no replica has fresh data. The returned
// Placement must be Completed.
func (d *Dispatcher) Place(ctx context.Context, req Request) (*Placement, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	now := time.Now()
	type scored struct {
		rs       *replicaState
		score    float64
		load     float64
		sessions int64
	}
	var fresh []scored
	claimSec := d.claimDuration(req)
	for _, rs := range d.reg.reps {
		s := rs.sample()
		if s.at.IsZero() || now.Sub(s.at) > d.cfg.Staleness || !s.healthy {
			continue
		}
		load := s.loadBps()
		score := hostmodel.EffectiveRate(rs.capacity, load)
		if rs.cal != nil {
			if avail := rs.cal.AvailableNow(time.Duration(claimSec * float64(time.Second))); avail < score {
				score = avail
			}
		}
		fresh = append(fresh, scored{rs: rs, score: score, load: load, sessions: s.sessions})
	}
	trace := telemetry.TraceIDFrom(ctx)
	d.mu.Lock()
	sticky := now.Before(d.stickyUntil)
	if len(fresh) == 0 {
		// Nothing trustworthy: fall back and stay fallen back for the
		// sticky window even if the next scrape lands mid-burst.
		d.stickyUntil = now.Add(d.cfg.StickyFor)
		sticky = true
	}
	if sticky {
		rs := d.reg.reps[d.rr%len(d.reg.reps)]
		d.rr++
		d.mu.Unlock()
		d.met.fallbacks.Inc()
		d.met.placements(rs.rep.Addr).Inc()
		d.met.hub.Event(trace, "fleet_fallback", rs.rep.Addr)
		d.countRebalance(req, rs.rep.Addr)
		return &Placement{Addr: rs.rep.Addr, Fallback: true, d: d, rs: rs}, nil
	}
	rrSeed := d.rr
	d.rr++
	d.mu.Unlock()
	// Highest score wins; among saturated (or tied) replicas prefer the
	// one with fewer sessions, then less load — scraped sessions count
	// persistent background competitors that transient claims do not.
	best := fresh[rrSeed%len(fresh)]
	for _, c := range fresh {
		const eps = 1e3 // bps: scores this close are a tie
		switch {
		case c.score > best.score+eps:
			best = c
		case math.Abs(c.score-best.score) <= eps && c.sessions < best.sessions:
			best = c
		case math.Abs(c.score-best.score) <= eps && c.sessions == best.sessions && c.load < best.load:
			best = c
		}
	}
	p := &Placement{Addr: best.rs.rep.Addr, PredictedBps: best.score, d: d, rs: best.rs}
	if best.rs.cal != nil {
		if id, ok := d.claimCapacity(best.rs, best.score, claimSec); ok {
			p.resID, p.claim = id, true
		}
	}
	d.met.placements(p.Addr).Inc()
	d.met.hub.Event(trace, "fleet_place", p.Addr)
	d.countRebalance(req, p.Addr)
	return p, nil
}

// countRebalance counts a retry that moved replicas.
func (d *Dispatcher) countRebalance(req Request, chosen string) {
	if req.Previous != "" && req.Previous != chosen {
		d.met.rebalances.Inc()
	}
}

// claimDuration predicts how long the job will hold its claim: the
// size over the learned (EWMA) rate when both are known, else the
// learned duration, else a conservative default — clamped so a wild
// estimate cannot pin a replica for an hour or expire before the
// transfer's first byte.
func (d *Dispatcher) claimDuration(req Request) float64 {
	d.mu.Lock()
	rate, dur := d.ewmaRate, d.ewmaDur
	d.mu.Unlock()
	sec := 10.0
	switch {
	case req.SizeBytes > 0 && rate > 0:
		sec = float64(req.SizeBytes) * 8 / rate
	case dur > 0:
		sec = dur
	}
	return math.Min(math.Max(sec, 1), 600)
}

// claimCapacity reserves the job's predicted rate on the replica's
// wall-clock calendar. The claim rate is the learned per-job rate when
// known (a job rarely gets the whole headroom to itself), clamped by
// the placement score; claims are best-effort — a replica whose
// calendar is full still accepts the job, it just stops looking idle
// to the next placement.
func (d *Dispatcher) claimCapacity(rs *replicaState, score, claimSec float64) (dtnsched.ReservationID, bool) {
	d.mu.Lock()
	rate := d.ewmaRate
	d.mu.Unlock()
	if rate <= 0 {
		rate = rs.capacity / 4
	}
	if score > 0 && rate > score {
		rate = score
	}
	if rate <= 0 {
		return 0, false
	}
	res, err := rs.cal.ReserveNow(rate, time.Duration(claimSec*float64(time.Second)))
	if err != nil {
		return 0, false
	}
	return res.ID, true
}

// Complete settles a placement: the admission claim releases, and a
// successful transfer's measured rate and duration feed the EWMAs that
// size the next claims. Exactly one Complete takes effect per
// Placement.
func (p *Placement) Complete(bytes int64, dur time.Duration, err error) {
	if p == nil || !p.done.CompareAndSwap(false, true) {
		return
	}
	if p.claim {
		p.rs.cal.Release(p.resID)
	}
	if err != nil || bytes <= 0 || dur <= 0 {
		return
	}
	const alpha = 0.3
	rate := float64(bytes) * 8 / dur.Seconds()
	d := p.d
	d.mu.Lock()
	if d.ewmaRate <= 0 {
		d.ewmaRate = rate
	} else {
		d.ewmaRate = alpha*rate + (1-alpha)*d.ewmaRate
	}
	if d.ewmaDur <= 0 {
		d.ewmaDur = dur.Seconds()
	} else {
		d.ewmaDur = alpha*dur.Seconds() + (1-alpha)*d.ewmaDur
	}
	d.mu.Unlock()
}
