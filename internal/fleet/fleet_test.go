package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"gftpvc/internal/telemetry"
)

// fakeReplica serves the three telemetry endpoints the registry
// scrapes, with mutable canned state.
type fakeReplica struct {
	mu        sync.Mutex
	down      bool // healthz returns 500: scrape error path
	degraded  bool // healthz returns 503: alive but unhealthy
	sessions  int64
	shapedBps float64
	binSec    float64
	bytes     []float64
}

func (f *fakeReplica) set(mut func(*fakeReplica)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mut(f)
}

func (f *fakeReplica) start(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		f.mu.Lock()
		down, degraded := f.down, f.degraded
		f.mu.Unlock()
		switch {
		case down:
			w.WriteHeader(http.StatusInternalServerError)
		case degraded:
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			fmt.Fprintln(w, `{"status":"ok"}`)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		fmt.Fprintf(w, "# HELP gridftp_server_sessions_active open sessions\n")
		fmt.Fprintf(w, "# TYPE gridftp_server_sessions_active gauge\n")
		fmt.Fprintf(w, "gridftp_server_sessions_active %d\n", f.sessions)
		// Split across labeled series: the parser must sum variants.
		fmt.Fprintf(w, "gridftp_server_shaped_rate_bps{shard=\"0\"} %g\n", f.shapedBps/2)
		fmt.Fprintf(w, "gridftp_server_shaped_rate_bps{shard=\"1\"} %g\n", f.shapedBps/2)
		fmt.Fprintf(w, "unrelated_metric 42\n")
	})
	mux.HandleFunc("/counters", func(w http.ResponseWriter, _ *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		out := []telemetry.CounterSnapshot{}
		if len(f.bytes) > 0 {
			out = append(out, telemetry.CounterSnapshot{
				Name: "retr", BinSec: f.binSec, Bytes: append([]float64(nil), f.bytes...),
			})
		}
		json.NewEncoder(w).Encode(out)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// newFleet builds a dispatcher over the given fakes with test-friendly
// timings, scrapes once so samples are fresh, and registers cleanup.
func newFleet(t *testing.T, cfg Config, fakes ...*fakeReplica) *Dispatcher {
	t.Helper()
	for i, f := range fakes {
		srv := f.start(t)
		cfg.Replicas = append(cfg.Replicas, Replica{
			Addr:         fmt.Sprintf("replica-%d:2811", i),
			TelemetryURL: srv.URL,
		})
	}
	if cfg.ScrapeInterval == 0 {
		cfg.ScrapeInterval = time.Hour // tests drive ScrapeNow explicitly
	}
	if cfg.Staleness == 0 {
		cfg.Staleness = time.Hour
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(d.Close)
	d.Registry().ScrapeNow(context.Background())
	return d
}

func TestRegistryScrapeAndSnapshot(t *testing.T) {
	f := &fakeReplica{
		sessions:  3,
		shapedBps: 2e8,
		binSec:    1,
		bytes:     []float64{1e6, 12.5e6, 12.5e6, 12.5e6, 12.5e6},
	}
	d := newFleet(t, Config{CapacityBps: 1e9, LoadWindow: 4 * time.Second}, f)
	snap := d.Registry().Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot rows = %d, want 1", len(snap))
	}
	rl := snap[0]
	if !rl.Healthy || !rl.Fresh {
		t.Fatalf("replica not healthy+fresh: %+v", rl)
	}
	if rl.Sessions != 3 {
		t.Errorf("Sessions = %d, want 3 (unlabeled gauge)", rl.Sessions)
	}
	if rl.CommittedBps != 2e8 {
		t.Errorf("CommittedBps = %g, want 2e8 (labeled variants summed)", rl.CommittedBps)
	}
	// 4 tail bins of 12.5 MB over a 4 s window = 1e8 bits/sec.
	if math.Abs(rl.MeasuredBps-1e8) > 1 {
		t.Errorf("MeasuredBps = %g, want 1e8 (tail-window throughput)", rl.MeasuredBps)
	}
	// Committed (2e8) exceeds measured (1e8): Eq. 2 subtracts the max.
	if want := 1e9 - 2e8; math.Abs(rl.PredictedBps-want) > 1 {
		t.Errorf("PredictedBps = %g, want %g", rl.PredictedBps, want)
	}

	// A degraded replica still scrapes but is not placeable.
	f.set(func(f *fakeReplica) { f.degraded = true })
	d.Registry().ScrapeNow(context.Background())
	if rl := d.Registry().Snapshot()[0]; rl.Healthy || !rl.Fresh {
		t.Fatalf("degraded replica: Healthy=%v Fresh=%v, want false/true", rl.Healthy, rl.Fresh)
	}

	// A failing scrape keeps the old sample, which ages out.
	f.set(func(f *fakeReplica) { f.down = true })
	d.Registry().ScrapeNow(context.Background())
	if rl := d.Registry().Snapshot()[0]; !rl.Fresh {
		t.Fatalf("sample should survive a failed scrape until staleness")
	}
}

func TestPlacePrefersUnloadedReplica(t *testing.T) {
	loaded := &fakeReplica{sessions: 8, shapedBps: 8e8}
	idle := &fakeReplica{sessions: 0, shapedBps: 1e8}
	hub := telemetry.NewHub()
	d := newFleet(t, Config{CapacityBps: 1e9, Telemetry: hub}, loaded, idle)

	for i := 0; i < 4; i++ {
		p, err := d.Place(context.Background(), Request{SizeBytes: 1 << 20})
		if err != nil {
			t.Fatalf("Place: %v", err)
		}
		if p.Fallback {
			t.Fatalf("placement %d fell back with fresh samples", i)
		}
		if p.Addr != "replica-1:2811" {
			t.Fatalf("placement %d on %s, want the unloaded replica-1", i, p.Addr)
		}
		if want := 1e9 - 1e8; math.Abs(p.PredictedBps-want) > 1 {
			t.Fatalf("PredictedBps = %g, want %g", p.PredictedBps, want)
		}
		p.Complete(1<<20, 100*time.Millisecond, nil)
	}
	if got := d.met.placements("replica-1:2811").Value(); got != 4 {
		t.Errorf("fleet_placements_total{replica-1} = %d, want 4", got)
	}
	if got := d.met.fallbacks.Value(); got != 0 {
		t.Errorf("fleet_fallbacks_total = %d, want 0", got)
	}
}

func TestAdmissionClaimsSpreadBurst(t *testing.T) {
	a, b := &fakeReplica{}, &fakeReplica{}
	d := newFleet(t, Config{CapacityBps: 1e9, Admission: true}, a, b)

	// Four simultaneous placements between scrapes: without claims all
	// four would pile onto one tie-broken replica; each claim (cap/4
	// with no learned rate) makes the chosen replica look busier, so the
	// burst must split 2/2.
	perReplica := map[string]int{}
	var placements []*Placement
	for i := 0; i < 4; i++ {
		p, err := d.Place(context.Background(), Request{})
		if err != nil {
			t.Fatalf("Place: %v", err)
		}
		perReplica[p.Addr]++
		placements = append(placements, p)
	}
	if perReplica["replica-0:2811"] != 2 || perReplica["replica-1:2811"] != 2 {
		t.Fatalf("burst split %v, want 2 per replica", perReplica)
	}
	for _, rl := range d.Registry().Snapshot() {
		if rl.ClaimedBps <= 0 {
			t.Errorf("%s ClaimedBps = %g, want > 0 while jobs run", rl.Addr, rl.ClaimedBps)
		}
	}
	for _, p := range placements {
		p.Complete(64<<20, 2*time.Second, nil)
		p.Complete(64<<20, 2*time.Second, nil) // idempotent
	}
	for _, rl := range d.Registry().Snapshot() {
		if rl.ClaimedBps != 0 {
			t.Errorf("%s ClaimedBps = %g after Complete, want 0", rl.Addr, rl.ClaimedBps)
		}
	}
	// Successful completions taught the EWMAs.
	d.mu.Lock()
	rate, dur := d.ewmaRate, d.ewmaDur
	d.mu.Unlock()
	if want := float64(64<<20) * 8 / 2; math.Abs(rate-want) > 1 {
		t.Errorf("ewmaRate = %g, want %g", rate, want)
	}
	if dur != 2 {
		t.Errorf("ewmaDur = %g, want 2", dur)
	}
}

func TestFallbackStickyRoundRobin(t *testing.T) {
	a, b := &fakeReplica{down: true}, &fakeReplica{down: true}
	hub := telemetry.NewHub()
	d := newFleet(t, Config{CapacityBps: 1e9, StickyFor: 150 * time.Millisecond, Telemetry: hub}, a, b)

	// No replica ever scraped: every placement is round-robin fallback.
	var order []string
	for i := 0; i < 4; i++ {
		p, err := d.Place(context.Background(), Request{})
		if err != nil {
			t.Fatalf("Place: %v", err)
		}
		if !p.Fallback {
			t.Fatalf("placement %d not marked Fallback with no fresh data", i)
		}
		order = append(order, p.Addr)
		p.Complete(0, 0, nil)
	}
	if order[0] == order[1] || order[0] != order[2] || order[1] != order[3] {
		t.Fatalf("fallback order %v, want alternating round-robin", order)
	}
	if got := d.met.fallbacks.Value(); got != 4 {
		t.Errorf("fleet_fallbacks_total = %d, want 4", got)
	}

	// Replicas recover and a scrape lands — but inside the sticky
	// window the dispatcher keeps round-robin rather than flapping.
	a.set(func(f *fakeReplica) { f.down = false })
	b.set(func(f *fakeReplica) { f.down = false })
	d.Registry().ScrapeNow(context.Background())
	p, err := d.Place(context.Background(), Request{})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if !p.Fallback {
		t.Fatalf("placement inside sticky window should stay round-robin")
	}
	p.Complete(0, 0, nil)

	// Past the window, fresh samples drive placement again.
	time.Sleep(200 * time.Millisecond)
	p, err = d.Place(context.Background(), Request{})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if p.Fallback {
		t.Fatalf("placement after sticky window still falling back")
	}
	p.Complete(0, 0, nil)
}

func TestRebalanceCounter(t *testing.T) {
	loaded := &fakeReplica{sessions: 8, shapedBps: 9e8}
	idle := &fakeReplica{}
	hub := telemetry.NewHub()
	d := newFleet(t, Config{CapacityBps: 1e9, Telemetry: hub}, loaded, idle)

	// Retry of a job that first ran on the loaded replica moves: one
	// rebalance. A retry already on the chosen replica does not count.
	p, err := d.Place(context.Background(), Request{Previous: "replica-0:2811"})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if p.Addr != "replica-1:2811" {
		t.Fatalf("retry placed on %s, want replica-1", p.Addr)
	}
	p.Complete(0, 0, nil)
	p, err = d.Place(context.Background(), Request{Previous: "replica-1:2811"})
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	p.Complete(0, 0, nil)
	if got := d.met.rebalances.Value(); got != 1 {
		t.Errorf("fleet_rebalances_total = %d, want 1", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no replicas should fail")
	}
	if _, err := New(Config{Replicas: []Replica{{}}}); err == nil {
		t.Fatal("New with an empty replica address should fail")
	}
	if _, err := New(Config{Replicas: []Replica{{Addr: "a:1"}}, CapacityBps: -1}); err == nil {
		t.Fatal("New with negative capacity should fail")
	}
}

func TestClaimDurationBounds(t *testing.T) {
	d := &Dispatcher{cfg: Config{}}
	if got := d.claimDuration(Request{}); got != 10 {
		t.Errorf("default claim = %gs, want 10", got)
	}
	d.ewmaRate = 1e8 // 100 Mbit/s learned
	if got := d.claimDuration(Request{SizeBytes: 125e6}); got != 10 {
		t.Errorf("sized claim = %gs, want 10 (1 Gbit over 100 Mbit/s)", got)
	}
	if got := d.claimDuration(Request{SizeBytes: 1}); got != 1 {
		t.Errorf("tiny job claim = %gs, want clamp to 1", got)
	}
	if got := d.claimDuration(Request{SizeBytes: 1 << 40}); got != 600 {
		t.Errorf("huge job claim = %gs, want clamp to 600", got)
	}
}
