package hostmodel

import (
	"math"
	"math/rand"
	"testing"

	"gftpvc/internal/stats"
)

func TestRatesValidate(t *testing.T) {
	good := Rates{MemoryBps: 2e9, DiskReadBps: 1.5e9, DiskWriteBps: 1e9, AggregateBps: 2.5e9}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.DiskWriteBps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero rate should fail validation")
	}
}

func TestPerTransferCap(t *testing.T) {
	r := Rates{MemoryBps: 2e9, DiskReadBps: 1.5e9, DiskWriteBps: 1e9, AggregateBps: 2.5e9}
	cases := []struct {
		src, dst EndpointKind
		want     float64
	}{
		{Memory, Memory, 2e9},
		{Disk, Memory, 1.5e9},
		{Memory, Disk, 1e9},
		{Disk, Disk, 1e9},
	}
	for _, c := range cases {
		if got := r.PerTransferCap(c.src, c.dst); got != c.want {
			t.Errorf("cap(%v,%v) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestEndpointKindString(t *testing.T) {
	if Memory.String() != "mem" || Disk.String() != "disk" {
		t.Error("EndpointKind string mismatch")
	}
}

func TestSimulateSingleTransfer(t *testing.T) {
	s := Server{AggregateBps: 1e9}
	tr := &Transfer{StartSec: 0, SizeBytes: 125e6} // 1 Gbit
	if err := s.Simulate([]*Transfer{tr}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.EndSec-1) > 1e-9 {
		t.Errorf("end = %v, want 1", tr.EndSec)
	}
	if math.Abs(tr.ThroughputBps-1e9) > 1 {
		t.Errorf("throughput = %v, want 1e9", tr.ThroughputBps)
	}
	if len(tr.Intervals) != 1 || tr.Intervals[0].Concurrent != 1 {
		t.Errorf("intervals = %+v", tr.Intervals)
	}
}

func TestSimulateTwoOverlapping(t *testing.T) {
	s := Server{AggregateBps: 1e9}
	a := &Transfer{StartSec: 0, SizeBytes: 125e6}
	b := &Transfer{StartSec: 0, SizeBytes: 125e6}
	if err := s.Simulate([]*Transfer{a, b}); err != nil {
		t.Fatal(err)
	}
	// Equal split: both finish at 2s with 0.5 Gbps.
	for _, tr := range []*Transfer{a, b} {
		if math.Abs(tr.EndSec-2) > 1e-9 {
			t.Errorf("end = %v, want 2", tr.EndSec)
		}
		if math.Abs(tr.ThroughputBps-5e8) > 1 {
			t.Errorf("throughput = %v, want 5e8", tr.ThroughputBps)
		}
		if tr.Intervals[0].OthersBps != 5e8 {
			t.Errorf("OthersBps = %v, want 5e8", tr.Intervals[0].OthersBps)
		}
	}
}

func TestSimulateStaggeredConcurrencyTrace(t *testing.T) {
	s := Server{AggregateBps: 1e9}
	long := &Transfer{StartSec: 0, SizeBytes: 250e6}   // 2 Gbit
	short := &Transfer{StartSec: 1, SizeBytes: 62.5e6} // 0.5 Gbit
	if err := s.Simulate([]*Transfer{long, short}); err != nil {
		t.Fatal(err)
	}
	// long runs alone [0,1) at 1 Gbps (1 Gbit moved), shares [1,2) at 0.5
	// (0.5 Gbit; total 1.5), then alone again: 0.5 Gbit left -> 0.5s.
	if math.Abs(long.EndSec-2.5) > 1e-9 {
		t.Errorf("long end = %v, want 2.5", long.EndSec)
	}
	if math.Abs(short.EndSec-2.0) > 1e-9 {
		t.Errorf("short end = %v, want 2.0", short.EndSec)
	}
	if len(long.Intervals) != 3 {
		t.Fatalf("long has %d intervals, want 3: %+v", len(long.Intervals), long.Intervals)
	}
	wantConc := []int{1, 2, 1}
	for i, iv := range long.Intervals {
		if iv.Concurrent != wantConc[i] {
			t.Errorf("interval %d concurrency = %d, want %d", i, iv.Concurrent, wantConc[i])
		}
	}
}

func TestSimulateRespectsCaps(t *testing.T) {
	s := Server{AggregateBps: 1e9}
	capped := &Transfer{StartSec: 0, SizeBytes: 125e6, CapBps: 2e8}
	free := &Transfer{StartSec: 0, SizeBytes: 125e6}
	if err := s.Simulate([]*Transfer{capped, free}); err != nil {
		t.Fatal(err)
	}
	if capped.Intervals[0].RateBps != 2e8 {
		t.Errorf("capped rate = %v, want 2e8", capped.Intervals[0].RateBps)
	}
	if math.Abs(free.Intervals[0].RateBps-8e8) > 1 {
		t.Errorf("free rate = %v, want 8e8", free.Intervals[0].RateBps)
	}
}

func TestSimulateIdleGap(t *testing.T) {
	s := Server{AggregateBps: 1e9}
	a := &Transfer{StartSec: 0, SizeBytes: 125e6}
	b := &Transfer{StartSec: 100, SizeBytes: 125e6}
	if err := s.Simulate([]*Transfer{a, b}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.EndSec-101) > 1e-9 {
		t.Errorf("b end = %v, want 101", b.EndSec)
	}
}

func TestSimulateValidation(t *testing.T) {
	if err := (Server{}).Simulate(nil); err == nil {
		t.Error("zero aggregate should fail")
	}
	s := Server{AggregateBps: 1e9}
	if err := s.Simulate([]*Transfer{{SizeBytes: 0}}); err == nil {
		t.Error("zero size should fail")
	}
	if err := s.Simulate([]*Transfer{{SizeBytes: 1, CapBps: -1}}); err == nil {
		t.Error("negative cap should fail")
	}
}

func TestSimulateConservesAggregate(t *testing.T) {
	s := Server{AggregateBps: 2.19e9} // the paper's R for NERSC
	rng := rand.New(rand.NewSource(42))
	var trs []*Transfer
	for i := 0; i < 50; i++ {
		trs = append(trs, &Transfer{
			StartSec:  rng.Float64() * 100,
			SizeBytes: 1e8 + rng.Float64()*4e9,
		})
	}
	if err := s.Simulate(trs); err != nil {
		t.Fatal(err)
	}
	for _, tr := range trs {
		if !(tr.EndSec > tr.StartSec) {
			t.Fatalf("transfer did not complete: %+v", tr)
		}
		moved := 0.0
		for _, iv := range tr.Intervals {
			if iv.RateBps+iv.OthersBps > s.AggregateBps*(1+1e-9) {
				t.Fatalf("aggregate exceeded: %v", iv.RateBps+iv.OthersBps)
			}
			moved += iv.RateBps * iv.DurationSec / 8
		}
		if math.Abs(moved-tr.SizeBytes)/tr.SizeBytes > 1e-6 {
			t.Fatalf("interval trace moves %v bytes, size %v", moved, tr.SizeBytes)
		}
	}
}

func TestPredictThroughputAlone(t *testing.T) {
	s := Server{AggregateBps: 1e9}
	tr := &Transfer{StartSec: 0, SizeBytes: 125e6}
	if err := s.Simulate([]*Transfer{tr}); err != nil {
		t.Fatal(err)
	}
	pred, err := PredictThroughput(tr, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	// Alone, prediction equals R.
	if math.Abs(pred-1e9) > 1 {
		t.Errorf("pred = %v, want 1e9", pred)
	}
}

func TestPredictThroughputCorrelates(t *testing.T) {
	// Under pure proportional sharing the Eq. 2 predictor should
	// correlate strongly with actual throughput.
	s := Server{AggregateBps: 2.19e9}
	rng := rand.New(rand.NewSource(7))
	var trs []*Transfer
	for i := 0; i < 84; i++ {
		trs = append(trs, &Transfer{
			StartSec:  rng.Float64() * 500,
			SizeBytes: 2e8 + rng.Float64()*8e9,
			CapBps:    NoisyCap(rng, 1.2e9, 1.3),
		})
	}
	if err := s.Simulate(trs); err != nil {
		t.Fatal(err)
	}
	var pred, actual []float64
	for _, tr := range trs {
		p, err := PredictThroughput(tr, 2.19e9)
		if err != nil {
			t.Fatal(err)
		}
		pred = append(pred, p)
		actual = append(actual, tr.ThroughputBps)
	}
	rho, err := stats.Pearson(pred, actual)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.5 {
		t.Errorf("correlation = %v, want strong positive", rho)
	}
}

func TestPredictThroughputRInvariantCorrelation(t *testing.T) {
	// The paper: "The choice of R impacts the predicted throughput plot,
	// but it does not impact correlation."
	s := Server{AggregateBps: 2e9}
	rng := rand.New(rand.NewSource(9))
	var trs []*Transfer
	for i := 0; i < 40; i++ {
		trs = append(trs, &Transfer{
			StartSec:  rng.Float64() * 200,
			SizeBytes: 1e8 + rng.Float64()*2e9,
		})
	}
	if err := s.Simulate(trs); err != nil {
		t.Fatal(err)
	}
	corrFor := func(R float64) float64 {
		var pred, actual []float64
		for _, tr := range trs {
			p, _ := PredictThroughput(tr, R)
			pred = append(pred, p)
			actual = append(actual, tr.ThroughputBps)
		}
		rho, err := stats.Pearson(pred, actual)
		if err != nil {
			t.Fatal(err)
		}
		return rho
	}
	if a, b := corrFor(1e9), corrFor(3e9); math.Abs(a-b) > 1e-9 {
		t.Errorf("correlation depends on R: %v vs %v", a, b)
	}
}

func TestPredictThroughputErrors(t *testing.T) {
	if _, err := PredictThroughput(&Transfer{}, 1e9); err == nil {
		t.Error("no trace should fail")
	}
	tr := &Transfer{Intervals: []Interval{{DurationSec: 1}}}
	if _, err := PredictThroughput(tr, 1e9); err == nil {
		t.Error("non-positive duration should fail")
	}
}

func TestNoisyCap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := NoisyCap(rng, 100, 1); got != 100 {
		t.Errorf("gsd<=1 should be identity, got %v", got)
	}
	for i := 0; i < 1000; i++ {
		v := NoisyCap(rng, 100, 1.4)
		if v < 20 || v > 500 {
			t.Fatalf("noisy cap %v outside clamp", v)
		}
	}
}

// TestEffectiveRate: the instantaneous Eq. 2 headroom, clamped at zero
// for oversubscribed servers, and consistent with PredictThroughput on
// a single constant-concurrency interval.
func TestEffectiveRate(t *testing.T) {
	if got := EffectiveRate(1000, 600); got != 400 {
		t.Errorf("EffectiveRate(1000, 600) = %v, want 400", got)
	}
	if got := EffectiveRate(1000, 0); got != 1000 {
		t.Errorf("idle server: got %v, want full capacity", got)
	}
	if got := EffectiveRate(1000, 1500); got != 0 {
		t.Errorf("oversubscribed server: got %v, want 0", got)
	}
	tr := &Transfer{
		EndSec:    10,
		Intervals: []Interval{{DurationSec: 10, OthersBps: 600}},
	}
	pred, err := PredictThroughput(tr, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if pred != EffectiveRate(1000, 600) {
		t.Errorf("single-interval PredictThroughput %v != EffectiveRate %v", pred, EffectiveRate(1000, 600))
	}
}
