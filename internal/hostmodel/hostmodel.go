// Package hostmodel models data-transfer-node (DTN) resource contention:
// an aggregate server capacity R shared by concurrent transfers, per-
// endpoint (memory vs disk) rate limits, and multiplicative noise. It
// underlies the paper's finding (v) — that competition for *server*
// resources, not network resources, drives throughput variance — and
// implements the Eq. 2 predictor whose correlation with actual throughput
// the paper reports as ρ = 0.884 (Fig 8).
package hostmodel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// EndpointKind distinguishes memory-backed from disk-backed transfer ends
// (the four NERSC-ANL test categories: mem-mem, mem-disk, disk-mem,
// disk-disk).
type EndpointKind int

const (
	// Memory endpoints stage data in RAM (GridFTP /dev/zero-style tests).
	Memory EndpointKind = iota
	// Disk endpoints read from or write to the storage subsystem.
	Disk
)

func (k EndpointKind) String() string {
	if k == Memory {
		return "mem"
	}
	return "disk"
}

// Rates describes one DTN's resource limits in bits per second.
type Rates struct {
	// MemoryBps is the per-transfer rate when the endpoint is memory.
	MemoryBps float64
	// DiskReadBps / DiskWriteBps are per-transfer disk limits. The paper's
	// Fig 1 shows the NERSC disk (write) subsystem as the bottleneck.
	DiskReadBps  float64
	DiskWriteBps float64
	// AggregateBps is the server-wide cap shared by concurrent transfers
	// (the paper's R).
	AggregateBps float64
}

// Validate reports whether all rates are positive.
func (r Rates) Validate() error {
	if r.MemoryBps <= 0 || r.DiskReadBps <= 0 || r.DiskWriteBps <= 0 || r.AggregateBps <= 0 {
		return fmt.Errorf("hostmodel: rates must be positive: %+v", r)
	}
	return nil
}

// PerTransferCap returns the endpoint-limited per-transfer rate for a
// transfer that reads from a src endpoint of kind src and writes to this
// server with endpoint kind dst.
func (r Rates) PerTransferCap(src, dst EndpointKind) float64 {
	cap := r.MemoryBps
	if src == Disk && r.DiskReadBps < cap {
		cap = r.DiskReadBps
	}
	if dst == Disk && r.DiskWriteBps < cap {
		cap = r.DiskWriteBps
	}
	return cap
}

// Transfer is one job submitted to the server simulation.
type Transfer struct {
	// StartSec is the arrival time.
	StartSec float64
	// SizeBytes is the amount of data to move.
	SizeBytes float64
	// CapBps is the per-transfer rate limit (endpoint/TCP-derived);
	// 0 means limited only by the shared aggregate.
	CapBps float64

	// The remaining fields are results filled in by Simulate.

	// EndSec is the completion time.
	EndSec float64
	// ThroughputBps is SizeBytes*8/(EndSec-StartSec).
	ThroughputBps float64
	// Intervals is the concurrency trace: one entry per period during
	// which the set of concurrent transfers was constant (Fig 7).
	Intervals []Interval
}

// Interval is a period within a transfer with a constant concurrency set.
type Interval struct {
	StartSec    float64
	DurationSec float64
	// Concurrent is the number of transfers active (including this one).
	Concurrent int
	// RateBps is this transfer's allocated rate during the interval.
	RateBps float64
	// OthersBps is the summed allocated rate of the other concurrent
	// transfers (the Σ t_k term of Eq. 2).
	OthersBps float64
}

// Server simulates a DTN sharing AggregateBps across concurrent transfers
// with per-transfer caps, by progressive filling (max–min with caps on a
// single resource).
type Server struct {
	// AggregateBps is the shared capacity R.
	AggregateBps float64
}

// allocate distributes the aggregate across n active transfers with caps.
// rates[i] receives the allocation for caps[i].
func (s Server) allocate(caps []float64) []float64 {
	n := len(caps)
	rates := make([]float64, n)
	if n == 0 {
		return rates
	}
	remaining := s.AggregateBps
	active := make([]int, 0, n)
	for i := range caps {
		active = append(active, i)
	}
	for len(active) > 0 && remaining > 1e-9 {
		share := remaining / float64(len(active))
		var next []int
		progress := false
		for _, i := range active {
			capI := caps[i]
			if capI <= 0 {
				capI = math.Inf(1)
			}
			room := capI - rates[i]
			if room <= share {
				rates[i] += room
				remaining -= room
				progress = true
			} else {
				next = append(next, i)
			}
		}
		if !progress {
			// No one capped below the share: give everyone the share.
			for _, i := range next {
				rates[i] += share
				remaining -= share
			}
			break
		}
		active = next
	}
	return rates
}

// Simulate runs the transfers to completion, filling in their result
// fields. Transfers are processed in event order (arrivals and
// completions); the allocation is recomputed at each event.
func (s Server) Simulate(transfers []*Transfer) error {
	if s.AggregateBps <= 0 {
		return errors.New("hostmodel: aggregate capacity must be positive")
	}
	for i, tr := range transfers {
		if tr.SizeBytes <= 0 {
			return fmt.Errorf("hostmodel: transfer %d has non-positive size", i)
		}
		if tr.CapBps < 0 {
			return fmt.Errorf("hostmodel: transfer %d has negative cap", i)
		}
		tr.Intervals = nil
	}
	type state struct {
		tr        *Transfer
		remaining float64
	}
	pending := make([]*state, len(transfers))
	for i, tr := range transfers {
		pending[i] = &state{tr: tr, remaining: tr.SizeBytes}
	}
	sort.SliceStable(pending, func(i, j int) bool {
		return pending[i].tr.StartSec < pending[j].tr.StartSec
	})
	var active []*state
	now := 0.0
	if len(pending) > 0 {
		now = pending[0].tr.StartSec
	}
	for len(pending) > 0 || len(active) > 0 {
		// Admit arrivals at the current instant.
		for len(pending) > 0 && pending[0].tr.StartSec <= now+1e-12 {
			active = append(active, pending[0])
			pending = pending[1:]
		}
		if len(active) == 0 {
			now = pending[0].tr.StartSec
			continue
		}
		caps := make([]float64, len(active))
		for i, st := range active {
			caps[i] = st.tr.CapBps
		}
		rates := s.allocate(caps)
		total := 0.0
		for _, r := range rates {
			total += r
		}
		// Next event: earliest completion or next arrival.
		next := math.Inf(1)
		for i, st := range active {
			if rates[i] > 0 {
				if t := st.remaining * 8 / rates[i]; t < next {
					next = t
				}
			}
		}
		if len(pending) > 0 {
			if t := pending[0].tr.StartSec - now; t < next {
				next = t
			}
		}
		if math.IsInf(next, 1) {
			return errors.New("hostmodel: stalled simulation (all rates zero)")
		}
		// Record the interval and advance.
		for i, st := range active {
			st.tr.Intervals = append(st.tr.Intervals, Interval{
				StartSec:    now,
				DurationSec: next,
				Concurrent:  len(active),
				RateBps:     rates[i],
				OthersBps:   total - rates[i],
			})
			st.remaining -= rates[i] * next / 8
		}
		now += next
		var still []*state
		for _, st := range active {
			if st.remaining <= 0.5/8 { // sub-bit residue
				st.tr.EndSec = now
				d := st.tr.EndSec - st.tr.StartSec
				if d > 0 {
					st.tr.ThroughputBps = st.tr.SizeBytes * 8 / d
				}
			} else {
				still = append(still, st)
			}
		}
		active = still
	}
	return nil
}

// PredictThroughput implements the paper's Eq. 2: the predicted throughput
// of a transfer is the duration-weighted average, over its concurrency
// intervals, of the server capacity R left over after the concurrent
// transfers' recorded throughputs:
//
//	t̂ᵢ = Σⱼ (R − Σₖ tₖ) · dᵢⱼ / Dᵢ
//
// where the inner sum covers the other transfers concurrent with i during
// interval j. As the paper notes, the choice of R shifts every prediction
// equally and therefore does not affect the Pearson correlation between
// predicted and actual values.
func PredictThroughput(tr *Transfer, R float64) (float64, error) {
	if len(tr.Intervals) == 0 {
		return 0, errors.New("hostmodel: transfer has no concurrency trace")
	}
	total := tr.EndSec - tr.StartSec
	if total <= 0 {
		return 0, errors.New("hostmodel: transfer has non-positive duration")
	}
	pred := 0.0
	for _, iv := range tr.Intervals {
		pred += (R - iv.OthersBps) * iv.DurationSec / total
	}
	return pred, nil
}

// EffectiveRate is the instantaneous Eq. 2 predictor: the rate a new
// transfer can expect on a server of aggregate capacity R whose
// concurrent transfers currently move othersBps in total — one interval
// of PredictThroughput, evaluated now instead of over a recorded trace.
// It is what a placement decision needs: of N replicas, the one with
// the highest R − Σₖ tₖ gives the new transfer the highest rate.
// Negative headroom clamps to zero (an oversubscribed server gives a
// newcomer effectively nothing, not a negative rate).
func EffectiveRate(R, othersBps float64) float64 {
	if r := R - othersBps; r > 0 {
		return r
	}
	return 0
}

// NoisyCap applies a multiplicative log-normal factor with geometric
// standard deviation gsd to a base rate, clamped to [base/5, base*5]. It
// models the run-to-run disk and CPU variability responsible for the
// coefficients of variation in Table VI (~31-36%).
func NoisyCap(rng *rand.Rand, base, gsd float64) float64 {
	if gsd <= 1 {
		return base
	}
	f := math.Exp(math.Log(gsd) * rng.NormFloat64())
	if f < 0.2 {
		f = 0.2
	}
	if f > 5 {
		f = 5
	}
	return base * f
}
