package tcpmodel

import (
	"errors"
	"math"
	"math/rand"
)

// The stochastic variant complements the deterministic Transfer model: it
// simulates each stream's congestion window RTT by RTT with random packet
// losses and Reno halving, and records a per-connection trace. The tstat
// package consumes these traces the way the paper planned to use the
// tstat tool — "a tool that reports packet loss information on a per-TCP
// connection basis" — to test the rare-loss hypothesis behind Figs 3–4.

// TraceSample is one RTT of one connection.
type TraceSample struct {
	TimeSec   float64
	CwndBytes float64
	Packets   int
	Losses    int
}

// ConnTrace is the life of one TCP connection within a transfer.
type ConnTrace struct {
	Stream      int
	Samples     []TraceSample
	PacketsSent int
	Retransmits int
}

// LossRate returns the connection's observed loss fraction.
func (c ConnTrace) LossRate() float64 {
	if c.PacketsSent == 0 {
		return 0
	}
	return float64(c.Retransmits) / float64(c.PacketsSent)
}

// poisson draws from Poisson(lambda) (Knuth for small lambda, normal
// approximation above).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// TransferStochastic simulates moving sizeBytes with random losses,
// returning the realized result and one trace per connection. Each RTT,
// every stream sends up to a window of packets (jointly capped by the
// aggregate rate); each packet is lost independently with LossRate, and
// any loss in an RTT halves that stream's window (Reno fast recovery,
// one halving per round trip).
func (c Config) TransferStochastic(rng *rand.Rand, sizeBytes float64, streams int) (Result, []ConnTrace, error) {
	if err := c.Validate(); err != nil {
		return Result{}, nil, err
	}
	if rng == nil {
		return Result{}, nil, errors.New("tcpmodel: nil rng")
	}
	if sizeBytes <= 0 {
		return Result{}, nil, errors.New("tcpmodel: size must be positive")
	}
	if streams < 1 {
		return Result{}, nil, errors.New("tcpmodel: at least one stream")
	}
	wMax := c.StreamBufBytes
	if bw := c.BottleneckBps * c.RTTSec / 8 / float64(streams); bw < wMax {
		wMax = bw
	}
	if wMax < c.MSSBytes {
		wMax = c.MSSBytes
	}
	cwnd := make([]float64, streams)
	ssthresh := make([]float64, streams)
	traces := make([]ConnTrace, streams)
	for i := range cwnd {
		cwnd[i] = c.InitCwndSegments * c.MSSBytes
		if cwnd[i] > wMax {
			cwnd[i] = wMax
		}
		ssthresh[i] = c.SSThreshBytes
		traces[i].Stream = i + 1
	}
	remaining := sizeBytes
	elapsed := 0.0
	perRTTCap := math.Inf(1)
	if c.AggregateCapBps > 0 {
		perRTTCap = c.AggregateCapBps * c.RTTSec / 8
	}
	if linkCap := c.BottleneckBps * c.RTTSec / 8; linkCap < perRTTCap {
		perRTTCap = linkCap
	}
	const maxRounds = 10_000_000
	for round := 0; remaining > 0 && round < maxRounds; round++ {
		totalWindow := 0.0
		for i := range cwnd {
			totalWindow += cwnd[i]
		}
		scale := 1.0
		if totalWindow > perRTTCap {
			scale = perRTTCap / totalWindow
		}
		sentThisRTT := 0.0
		for i := range cwnd {
			allowance := cwnd[i] * scale
			if allowance > remaining-sentThisRTT {
				allowance = remaining - sentThisRTT
			}
			if allowance < 0 {
				allowance = 0
			}
			pkts := int(math.Ceil(allowance / c.MSSBytes))
			losses := 0
			if c.LossRate > 0 && pkts > 0 {
				losses = poisson(rng, float64(pkts)*c.LossRate)
				if losses > pkts {
					losses = pkts
				}
			}
			traces[i].PacketsSent += pkts
			traces[i].Retransmits += losses
			traces[i].Samples = append(traces[i].Samples, TraceSample{
				TimeSec: elapsed, CwndBytes: cwnd[i], Packets: pkts, Losses: losses,
			})
			// Lost packets are retransmitted next RTT; only delivered
			// bytes count toward the transfer.
			sentThisRTT += allowance - float64(losses)*c.MSSBytes
			if losses > 0 {
				ssthresh[i] = math.Max(cwnd[i]/2, c.MSSBytes)
				cwnd[i] = ssthresh[i]
			} else if cwnd[i] < ssthresh[i] {
				cwnd[i] = math.Min(cwnd[i]*2, ssthresh[i])
			} else {
				cwnd[i] += c.MSSBytes
			}
			if cwnd[i] > wMax {
				cwnd[i] = wMax
			}
		}
		if sentThisRTT < 0 {
			sentThisRTT = 0
		}
		remaining -= sentThisRTT
		elapsed += c.RTTSec
	}
	if remaining > 0 {
		return Result{}, nil, errors.New("tcpmodel: stochastic transfer did not converge")
	}
	res := Result{
		DurationSec:   elapsed,
		ThroughputBps: sizeBytes * 8 / elapsed,
	}
	return res, traces, nil
}
