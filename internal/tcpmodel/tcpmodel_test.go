package tcpmodel

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	good := ESnetPath(0.08)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.RTTSec = 0 },
		func(c *Config) { c.MSSBytes = 0 },
		func(c *Config) { c.InitCwndSegments = 0 },
		func(c *Config) { c.SSThreshBytes = 1 },
		func(c *Config) { c.StreamBufBytes = 1 },
		func(c *Config) { c.BottleneckBps = 0 },
		func(c *Config) { c.AggregateCapBps = -1 },
		func(c *Config) { c.LossRate = -0.1 },
		func(c *Config) { c.LossRate = 1 },
	}
	for i, m := range mutations {
		c := good
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestTransferArgs(t *testing.T) {
	c := ESnetPath(0.08)
	if _, err := c.Transfer(0, 1); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := c.Transfer(1e6, 0); err == nil {
		t.Error("zero streams should fail")
	}
}

func TestEightStreamsBeatOneForSmallFiles(t *testing.T) {
	c := ESnetPath(0.08)
	for _, mb := range []float64{1, 5, 20, 50} {
		r1, err := c.Transfer(mb*1e6, 1)
		if err != nil {
			t.Fatal(err)
		}
		r8, err := c.Transfer(mb*1e6, 8)
		if err != nil {
			t.Fatal(err)
		}
		if r8.ThroughputBps <= r1.ThroughputBps {
			t.Errorf("%v MB: 8-stream %v <= 1-stream %v", mb, r8.ThroughputBps, r1.ThroughputBps)
		}
	}
}

func TestLargeFilesEqualizeWithoutLoss(t *testing.T) {
	c := ESnetPath(0.08)
	size := 4e9 // 4 GB
	r1, _ := c.Transfer(size, 1)
	r8, _ := c.Transfer(size, 8)
	ratio := r8.ThroughputBps / r1.ThroughputBps
	if ratio > 1.10 || ratio < 0.95 {
		t.Errorf("large-file ratio = %v, want ~1 (loss-free regime)", ratio)
	}
	// Both should sit essentially at the plateau.
	if r1.ThroughputBps < 0.9*r1.SteadyBps {
		t.Errorf("1-stream large file below plateau: %v of %v", r1.ThroughputBps, r1.SteadyBps)
	}
}

func TestLossBreaksEquality(t *testing.T) {
	c := ESnetPath(0.08)
	c.LossRate = 1e-4
	size := 4e9
	r1, _ := c.Transfer(size, 1)
	r8, _ := c.Transfer(size, 8)
	if r8.ThroughputBps < 1.5*r1.ThroughputBps {
		t.Errorf("with loss, 8-stream should clearly beat 1-stream: %v vs %v",
			r8.ThroughputBps, r1.ThroughputBps)
	}
}

func TestPlateauOnsetOrdering(t *testing.T) {
	c := ESnetPath(0.08)
	k1, err := c.PlateauOnsetBytes(1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	k8, err := c.PlateauOnsetBytes(8, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if k8 >= k1 {
		t.Errorf("8-stream knee %v should come before 1-stream knee %v", k8, k1)
	}
	// Shape check against the paper's Fig 3 readings (146 MB and 575 MB):
	// the knees should fall within a factor of ~4 of those sizes.
	within := func(got, want float64) bool { return got > want/4 && got < want*4 }
	if !within(k8, 146e6) {
		t.Errorf("8-stream knee = %v bytes, want within 4x of 146 MB", k8)
	}
	if !within(k1, 575e6) {
		t.Errorf("1-stream knee = %v bytes, want within 4x of 575 MB", k1)
	}
}

func TestPlateauOnsetArgs(t *testing.T) {
	c := ESnetPath(0.08)
	if _, err := c.PlateauOnsetBytes(1, 0); err == nil {
		t.Error("frac=0 should fail")
	}
	if _, err := c.PlateauOnsetBytes(1, 1); err == nil {
		t.Error("frac=1 should fail")
	}
}

func TestThroughputMonotoneInSize(t *testing.T) {
	c := ESnetPath(0.08)
	prev := 0.0
	for _, mb := range []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048} {
		r, err := c.Transfer(mb*1e6, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r.ThroughputBps < prev-1 {
			t.Errorf("throughput dropped at %v MB: %v < %v", mb, r.ThroughputBps, prev)
		}
		prev = r.ThroughputBps
	}
}

func TestSteadyRespectsAggregateCap(t *testing.T) {
	c := ESnetPath(0.08)
	r, _ := c.Transfer(10e9, 16)
	if r.SteadyBps > c.AggregateCapBps+1 {
		t.Errorf("steady %v exceeds aggregate cap %v", r.SteadyBps, c.AggregateCapBps)
	}
	if r.ThroughputBps > c.AggregateCapBps+1 {
		t.Errorf("throughput %v exceeds aggregate cap", r.ThroughputBps)
	}
}

func TestUncappedReachesBufferLimit(t *testing.T) {
	c := ESnetPath(0.08)
	c.AggregateCapBps = 0
	// 1 stream, 2 MB buffer, 80 ms RTT -> 200 Mbps window limit.
	r, _ := c.Transfer(50e9, 1)
	want := c.StreamBufBytes * 8 / c.RTTSec
	if math.Abs(r.SteadyBps-want)/want > 0.01 {
		t.Errorf("steady = %v, want %v", r.SteadyBps, want)
	}
}

func TestBottleneckShareCapsWindow(t *testing.T) {
	c := ESnetPath(0.08)
	c.AggregateCapBps = 0
	c.BottleneckBps = 100e6 // slow path
	r, _ := c.Transfer(10e9, 8)
	if r.SteadyBps > 100e6+1 {
		t.Errorf("steady %v exceeds bottleneck", r.SteadyBps)
	}
}

func TestRampShorterWithMoreStreams(t *testing.T) {
	c := ESnetPath(0.08)
	r1, _ := c.Transfer(10e9, 1)
	r8, _ := c.Transfer(10e9, 8)
	if r8.RampSec >= r1.RampSec {
		t.Errorf("8-stream ramp %v should be shorter than 1-stream ramp %v",
			r8.RampSec, r1.RampSec)
	}
}

func TestDurationScalesLinearlyAtPlateau(t *testing.T) {
	c := ESnetPath(0.08)
	rA, _ := c.Transfer(8e9, 8)
	rB, _ := c.Transfer(16e9, 8)
	// Doubling a plateau-dominated transfer should roughly double duration.
	ratio := rB.DurationSec / rA.DurationSec
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("duration ratio = %v, want ~2", ratio)
	}
}
