// Package tcpmodel models TCP throughput for GridFTP transfers on high
// bandwidth-delay-product paths: slow start, congestion avoidance up to a
// buffer-limited window, parallel streams, an aggregate server-side cap,
// and an optional random-loss regime.
//
// The model explains the paper's Figures 3–5: with n parallel streams the
// aggregate congestion window grows n times faster, so small files finish
// while 1-stream transfers are still ramping (8-stream wins), while large
// files spend almost all their time at the common buffer/server-limited
// plateau (equal throughput). The paper infers from that equality that
// packet losses are rare; setting LossRate > 0 in this model breaks the
// equality the same way real losses would, which the ablation bench
// demonstrates.
package tcpmodel

import (
	"errors"
	"math"
)

// Config describes one end-to-end TCP path and its endpoints.
type Config struct {
	// RTTSec is the round-trip time in seconds.
	RTTSec float64
	// MSSBytes is the maximum segment size (9000-byte MTU minus headers on
	// ESnet-like research networks).
	MSSBytes float64
	// InitCwndSegments is the initial congestion window in segments.
	InitCwndSegments float64
	// SSThreshBytes is the initial slow-start threshold: cwnd doubles per
	// RTT below it and grows one MSS per RTT above it.
	SSThreshBytes float64
	// StreamBufBytes is the per-stream socket buffer; it caps the
	// congestion window (the "TCP buffer size" field in GridFTP logs).
	StreamBufBytes float64
	// AggregateCapBps caps the sum of all stream rates (server NIC, disk
	// subsystem, or shared CPU limit). 0 = uncapped.
	AggregateCapBps float64
	// BottleneckBps is the network path capacity shared by the streams.
	BottleneckBps float64
	// LossRate is the segment loss probability. 0 models the loss-free
	// regime the paper observes; > 0 enables Reno-style halving via the
	// Mathis steady-state bound.
	LossRate float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.RTTSec <= 0:
		return errors.New("tcpmodel: RTT must be positive")
	case c.MSSBytes <= 0:
		return errors.New("tcpmodel: MSS must be positive")
	case c.InitCwndSegments <= 0:
		return errors.New("tcpmodel: initial cwnd must be positive")
	case c.SSThreshBytes < c.MSSBytes:
		return errors.New("tcpmodel: ssthresh below one MSS")
	case c.StreamBufBytes < c.MSSBytes:
		return errors.New("tcpmodel: stream buffer below one MSS")
	case c.BottleneckBps <= 0:
		return errors.New("tcpmodel: bottleneck must be positive")
	case c.AggregateCapBps < 0:
		return errors.New("tcpmodel: negative aggregate cap")
	case c.LossRate < 0 || c.LossRate >= 1:
		return errors.New("tcpmodel: loss rate outside [0,1)")
	}
	return nil
}

// ESnetPath returns a configuration for a cross-country research network
// path: 10 Gbps bottleneck, jumbo frames, 4 MB socket buffers, and a
// server-side aggregate cap of 200 Mbps matching the long-file plateau the
// paper reports for SLAC–BNL (Fig 3: "median throughput is the same, at
// approximately 200 Mbps" for large files).
func ESnetPath(rttSec float64) Config {
	return Config{
		RTTSec:           rttSec,
		MSSBytes:         8960,
		InitCwndSegments: 10,
		SSThreshBytes:    64 << 10,
		StreamBufBytes:   2 << 20,
		AggregateCapBps:  200e6,
		BottleneckBps:    10e9,
		LossRate:         0,
	}
}

// steadyWindowBytes returns the per-stream window ceiling.
func (c Config) steadyWindowBytes(streams int) float64 {
	w := c.StreamBufBytes
	// Loss-limited window per Mathis et al.: MSS * 1.22 / sqrt(p).
	if c.LossRate > 0 {
		if lw := c.MSSBytes * 1.22 / math.Sqrt(c.LossRate); lw < w {
			w = lw
		}
	}
	// A stream can never use more than its share of the bottleneck.
	if bw := c.BottleneckBps * c.RTTSec / 8 / float64(streams); bw < w {
		w = bw
	}
	return math.Max(w, c.MSSBytes)
}

// Result describes one modelled transfer.
type Result struct {
	DurationSec   float64
	ThroughputBps float64
	// RampSec is the time spent below 99% of the steady aggregate rate.
	RampSec float64
	// SteadyBps is the aggregate plateau rate.
	SteadyBps float64
}

// Transfer models moving sizeBytes using the given number of parallel
// streams and returns the transfer's duration and average throughput.
// The model steps RTT by RTT: each stream's congestion window doubles per
// RTT below ssthresh, then grows one MSS per RTT, capped by the buffer,
// the loss bound and the stream's bottleneck share; the instantaneous
// aggregate rate is additionally capped by AggregateCapBps.
func (c Config) Transfer(sizeBytes float64, streams int) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if sizeBytes <= 0 {
		return Result{}, errors.New("tcpmodel: size must be positive")
	}
	if streams < 1 {
		return Result{}, errors.New("tcpmodel: at least one stream")
	}
	wMax := c.steadyWindowBytes(streams)
	steady := float64(streams) * wMax * 8 / c.RTTSec
	if c.AggregateCapBps > 0 && steady > c.AggregateCapBps {
		steady = c.AggregateCapBps
	}
	if steady > c.BottleneckBps {
		steady = c.BottleneckBps
	}

	cwnd := c.InitCwndSegments * c.MSSBytes
	if cwnd > wMax {
		cwnd = wMax
	}
	remaining := sizeBytes
	elapsed := 0.0
	ramp := 0.0
	rampDone := false
	// Step until the window reaches its ceiling; afterwards the rate is
	// constant and the remainder is closed analytically.
	for remaining > 0 {
		rate := float64(streams) * cwnd * 8 / c.RTTSec
		if c.AggregateCapBps > 0 && rate > c.AggregateCapBps {
			rate = c.AggregateCapBps
		}
		if rate > c.BottleneckBps {
			rate = c.BottleneckBps
		}
		if !rampDone && rate >= 0.99*steady {
			ramp = elapsed
			rampDone = true
		}
		atCeiling := cwnd >= wMax || rate >= steady
		if atCeiling {
			elapsed += remaining * 8 / rate
			remaining = 0
			break
		}
		perRTT := rate * c.RTTSec / 8
		if perRTT >= remaining {
			elapsed += remaining * 8 / rate
			remaining = 0
			break
		}
		remaining -= perRTT
		elapsed += c.RTTSec
		if cwnd < c.SSThreshBytes {
			cwnd *= 2
			if cwnd > c.SSThreshBytes {
				cwnd = c.SSThreshBytes
			}
		} else {
			cwnd += c.MSSBytes
		}
		if cwnd > wMax {
			cwnd = wMax
		}
	}
	if !rampDone {
		ramp = elapsed
	}
	return Result{
		DurationSec:   elapsed,
		ThroughputBps: sizeBytes * 8 / elapsed,
		RampSec:       ramp,
		SteadyBps:     steady,
	}, nil
}

// PlateauOnsetBytes returns the smallest transfer size (within tol
// relative) whose modelled throughput reaches frac (e.g. 0.95) of the
// steady rate, found by bisection. It locates the "knee" sizes the paper
// reads off Fig 3 (≈146 MB for 8 streams, ≈575 MB for 1 stream).
func (c Config) PlateauOnsetBytes(streams int, frac float64) (float64, error) {
	if frac <= 0 || frac >= 1 {
		return 0, errors.New("tcpmodel: frac must be in (0,1)")
	}
	lo, hi := c.MSSBytes, 64e9
	r, err := c.Transfer(hi, streams)
	if err != nil {
		return 0, err
	}
	target := frac * r.SteadyBps
	if r.ThroughputBps < target {
		return 0, errors.New("tcpmodel: plateau not reachable")
	}
	for i := 0; i < 80; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection over decades
		rm, err := c.Transfer(mid, streams)
		if err != nil {
			return 0, err
		}
		if rm.ThroughputBps >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
