package tcpmodel

import (
	"math"
	"math/rand"
	"testing"
)

func TestPoissonZeroAndNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if poisson(rng, 0) != 0 || poisson(rng, -5) != 0 {
		t.Error("non-positive lambda should yield 0")
	}
}

func TestPoissonSmallLambdaMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const lambda = 3.0
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += poisson(rng, lambda)
	}
	mean := float64(sum) / n
	if math.Abs(mean-lambda) > 0.1 {
		t.Errorf("Poisson(3) sample mean = %v", mean)
	}
}

func TestPoissonLargeLambdaNormalApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const lambda = 400.0
	sum := 0.0
	const n = 5000
	for i := 0; i < n; i++ {
		v := poisson(rng, lambda)
		if v < 0 {
			t.Fatal("negative Poisson draw")
		}
		sum += float64(v)
	}
	mean := sum / n
	if math.Abs(mean-lambda)/lambda > 0.03 {
		t.Errorf("Poisson(400) sample mean = %v", mean)
	}
}

func TestTransferStochasticTraceShape(t *testing.T) {
	cfg := ESnetPath(0.08)
	rng := rand.New(rand.NewSource(4))
	res, traces, err := cfg.TransferStochastic(rng, 500e6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 4 {
		t.Fatalf("traces = %d, want 4", len(traces))
	}
	totalPackets := 0
	for i, tr := range traces {
		if tr.Stream != i+1 {
			t.Errorf("trace %d stream = %d", i, tr.Stream)
		}
		if len(tr.Samples) == 0 {
			t.Fatal("empty trace")
		}
		// cwnd is monotone while loss-free and bounded by the window cap.
		prevT := -1.0
		for _, s := range tr.Samples {
			if s.TimeSec <= prevT {
				t.Fatal("trace time not increasing")
			}
			prevT = s.TimeSec
			if s.CwndBytes <= 0 {
				t.Fatal("non-positive cwnd")
			}
			if s.Losses != 0 {
				t.Fatal("losses in loss-free config")
			}
			totalPackets += s.Packets
		}
		if tr.LossRate() != 0 {
			t.Errorf("loss rate = %v in loss-free config", tr.LossRate())
		}
	}
	// Packets must cover the payload (retransmissions would add more).
	if float64(totalPackets)*cfg.MSSBytes < 500e6 {
		t.Errorf("packets (%d) cannot cover the payload", totalPackets)
	}
	if res.DurationSec <= 0 || res.ThroughputBps <= 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestTransferStochasticLossRateEmpirical(t *testing.T) {
	cfg := ESnetPath(0.08)
	cfg.LossRate = 5e-4
	rng := rand.New(rand.NewSource(5))
	_, traces, err := cfg.TransferStochastic(rng, 1e9, 4)
	if err != nil {
		t.Fatal(err)
	}
	sent, lost := 0, 0
	for _, tr := range traces {
		sent += tr.PacketsSent
		lost += tr.Retransmits
	}
	got := float64(lost) / float64(sent)
	if got < 1e-4 || got > 2e-3 {
		t.Errorf("empirical loss rate = %v, configured 5e-4", got)
	}
}

func TestConnTraceLossRateZeroPackets(t *testing.T) {
	var tr ConnTrace
	if tr.LossRate() != 0 {
		t.Error("zero-packet trace should report 0 loss")
	}
}

func TestTransferStochasticStreamsShareAggregate(t *testing.T) {
	cfg := ESnetPath(0.08)
	rng := rand.New(rand.NewSource(6))
	res1, _, err := cfg.TransferStochastic(rng, 2e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	res8, _, err := cfg.TransferStochastic(rng, 2e9, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Large file, loss-free: both bounded by the 200 Mbps aggregate cap.
	for _, r := range []Result{res1, res8} {
		if r.ThroughputBps > cfg.AggregateCapBps*1.02 {
			t.Errorf("throughput %v exceeds aggregate cap", r.ThroughputBps)
		}
	}
}

func TestTransferStochasticBottleneckCap(t *testing.T) {
	cfg := ESnetPath(0.08)
	cfg.AggregateCapBps = 0
	cfg.BottleneckBps = 50e6
	rng := rand.New(rand.NewSource(7))
	res, _, err := cfg.TransferStochastic(rng, 5e8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputBps > 50e6*1.02 {
		t.Errorf("throughput %v exceeds bottleneck", res.ThroughputBps)
	}
}

func TestResultRampReported(t *testing.T) {
	cfg := ESnetPath(0.08)
	res, err := cfg.Transfer(1e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.RampSec <= 0 {
		t.Errorf("ramp = %v, want positive (cold start)", res.RampSec)
	}
	if res.RampSec >= res.DurationSec {
		t.Errorf("ramp %v should end before the transfer (%v)", res.RampSec, res.DurationSec)
	}
	if res.SteadyBps <= 0 {
		t.Errorf("steady = %v", res.SteadyBps)
	}
}

func TestTransferWarmStartSkipsRamp(t *testing.T) {
	cfg := ESnetPath(0.08)
	cfg.InitCwndSegments = cfg.StreamBufBytes / cfg.MSSBytes
	cfg.SSThreshBytes = cfg.StreamBufBytes
	res, err := cfg.Transfer(1e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.RampSec > 0.01 {
		t.Errorf("warm start ramp = %v, want ~0", res.RampSec)
	}
	// Warm throughput ≈ steady rate.
	if res.ThroughputBps < 0.99*res.SteadyBps {
		t.Errorf("warm throughput %v below steady %v", res.ThroughputBps, res.SteadyBps)
	}
}
