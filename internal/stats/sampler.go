package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// QuantileSampler draws values from a distribution reconstructed from a
// reported five-number summary (Min, Q1, Median, Q3, Max) and, optionally,
// the reported mean.
//
// The paper's datasets (production GridFTP logs) are unavailable, but every
// analysis in the paper is distributional, so reconstructing a distribution
// that honors each reported quartile reproduces the analysis inputs. The
// sampler builds a piecewise CDF anchored at probabilities
// {0, 0.25, 0.5, 0.75, 1}: the three interior segments interpolate
// log-linearly (the quantities involved — bytes, seconds, bits/s — are
// positive and right-skewed), while the upper-tail segment [Q3, Max] uses a
// power-law warp value(u) = Q3·(Max/Q3)^(u^γ). γ is solved numerically so
// the distribution's expectation matches the reported mean; γ > 1 pushes
// mass toward Q3 (light tail), γ < 1 toward Max (heavy tail).
type QuantileSampler struct {
	s     Summary
	gamma float64
	// probs/logsV are the CDF anchors (probabilities and log-values);
	// segments interpolate log-linearly except the head (optional warp
	// exponent headGamma) and the tail (fitted warp exponent gamma).
	probs     []float64
	logsV     []float64
	headGamma float64
}

// Shape refines the reconstructed distribution beyond the five-number
// summary.
type Shape struct {
	// P90, when positive, adds a 90th-percentile anchor between Q3 and
	// Max; papers often pin upper-tail behaviour that a single warped
	// segment cannot represent.
	P90 float64
	// HeadGamma, when in (0,1), pushes the lowest quartile's mass toward
	// Q1: value(u) = Min·(Q1/Min)^(u^HeadGamma). Measured minima are
	// often extreme outliers (the paper's 2.1 bps transfer) and a
	// log-uniform bottom segment would fabricate a fat population of
	// absurdly slow transfers.
	HeadGamma float64
}

// NewQuantileSampler builds a sampler for the given summary. All six summary
// fields must be positive and weakly ordered Min <= Q1 <= Median <= Q3 <= Max.
// If s.Mean is zero it is treated as unspecified and γ defaults to 1
// (log-linear tail). A Mean outside the achievable range for the fixed
// quartiles is clamped to the nearest achievable expectation.
func NewQuantileSampler(s Summary) (*QuantileSampler, error) {
	return NewShapedSampler(s, Shape{})
}

// NewShapedSampler is NewQuantileSampler with shape refinements.
func NewShapedSampler(s Summary, shape Shape) (*QuantileSampler, error) {
	probs := []float64{0, 0.25, 0.5, 0.75, 1}
	vals := []float64{s.Min, s.Q1, s.Median, s.Q3, s.Max}
	if shape.P90 > 0 {
		if shape.P90 < s.Q3 || shape.P90 > s.Max {
			return nil, fmt.Errorf("stats: P90 anchor %v outside [Q3, Max]", shape.P90)
		}
		probs = []float64{0, 0.25, 0.5, 0.75, 0.9, 1}
		vals = []float64{s.Min, s.Q1, s.Median, s.Q3, shape.P90, s.Max}
	}
	if shape.HeadGamma < 0 || shape.HeadGamma > 1 {
		return nil, fmt.Errorf("stats: head exponent %v outside [0,1]", shape.HeadGamma)
	}
	for i, v := range vals {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("stats: quantile sampler requires positive finite quantiles, got %v at anchor %d", v, i)
		}
		if i > 0 && v < vals[i-1] {
			return nil, fmt.Errorf("stats: quantile anchors out of order: %v < %v", v, vals[i-1])
		}
	}
	q := &QuantileSampler{s: s, gamma: 1, probs: probs, headGamma: shape.HeadGamma}
	q.logsV = make([]float64, len(vals))
	for i, v := range vals {
		q.logsV[i] = math.Log(v)
	}
	if s.Mean > 0 {
		q.fitGamma(s.Mean)
	}
	return q, nil
}

// MustQuantileSampler is NewQuantileSampler but panics on error; for use
// with the compiled-in calibration tables, where a bad summary is a bug.
func MustQuantileSampler(s Summary) *QuantileSampler {
	q, err := NewQuantileSampler(s)
	if err != nil {
		panic(err)
	}
	return q
}

// MustShapedSampler is NewShapedSampler but panics on error.
func MustShapedSampler(s Summary, shape Shape) *QuantileSampler {
	q, err := NewShapedSampler(s, shape)
	if err != nil {
		panic(err)
	}
	return q
}

// Value returns the inverse CDF at probability p in [0,1].
func (q *QuantileSampler) Value(p float64) float64 {
	last := len(q.probs) - 1
	switch {
	case p <= 0:
		return q.s.Min
	case p >= 1:
		return q.s.Max
	}
	seg := last - 1
	for i := 1; i <= last; i++ {
		if p < q.probs[i] {
			seg = i - 1
			break
		}
	}
	u := (p - q.probs[seg]) / (q.probs[seg+1] - q.probs[seg])
	switch {
	case seg == 0 && q.headGamma > 0:
		u = math.Pow(u, q.headGamma)
	case seg == last-1:
		u = math.Pow(u, q.gamma)
	}
	return math.Exp(q.logsV[seg] + u*(q.logsV[seg+1]-q.logsV[seg]))
}

// Sample draws one value using rng.
func (q *QuantileSampler) Sample(rng *rand.Rand) float64 {
	return q.Value(rng.Float64())
}

// SampleN draws n values using rng.
func (q *QuantileSampler) SampleN(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = q.Sample(rng)
	}
	return out
}

// Gamma reports the fitted tail exponent (1 when no mean was specified).
func (q *QuantileSampler) Gamma() float64 { return q.gamma }

// Mean returns the expectation of the reconstructed distribution, computed
// by numeric integration of the inverse CDF.
func (q *QuantileSampler) Mean() float64 {
	const steps = 4096
	sum := 0.0
	for i := 0; i < steps; i++ {
		p := (float64(i) + 0.5) / steps
		sum += q.Value(p)
	}
	return sum / steps
}

// fitGamma solves for the tail exponent that matches the target mean by
// bisection. The expectation is monotone decreasing in γ (larger γ keeps
// the tail segment near Q3).
func (q *QuantileSampler) fitGamma(target float64) {
	lo, hi := 0.02, 60.0
	q.gamma = lo
	meanLo := q.Mean() // heaviest achievable tail
	q.gamma = hi
	meanHi := q.Mean() // lightest achievable tail
	switch {
	case target >= meanLo:
		q.gamma = lo
		return
	case target <= meanHi:
		q.gamma = hi
		return
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		q.gamma = mid
		if q.Mean() > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	q.gamma = (lo + hi) / 2
}

// TruncatedLogNormal draws from a log-normal distribution with the given
// median and geometric standard deviation factor (gsd > 1), truncated to
// [lo, hi] by resampling. It is used for secondary quantities the paper
// does not fully tabulate (per-file sizes within a session, inter-transfer
// gaps) where only the general shape — right-skewed, positive — matters.
func TruncatedLogNormal(rng *rand.Rand, median, gsd, lo, hi float64) (float64, error) {
	if median <= 0 || gsd <= 1 || lo > hi || lo < 0 {
		return 0, errors.New("stats: invalid truncated log-normal parameters")
	}
	mu := math.Log(median)
	sigma := math.Log(gsd)
	for i := 0; i < 1000; i++ {
		v := math.Exp(mu + sigma*rng.NormFloat64())
		if v >= lo && v <= hi {
			return v, nil
		}
	}
	// The truncation window is far in the tail; fall back to clamping so
	// callers never spin forever.
	v := math.Exp(mu)
	return math.Min(math.Max(v, lo), hi), nil
}
