package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("Summarize(nil) error = %v, want ErrEmpty", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]float64{
		"Min": s.Min, "Q1": s.Q1, "Median": s.Median,
		"Mean": s.Mean, "Q3": s.Q3, "Max": s.Max,
	} {
		if got != 42 {
			t.Errorf("%s = %v, want 42", name, got)
		}
	}
	if s.StdDev != 0 {
		t.Errorf("StdDev = %v, want 0", s.StdDev)
	}
}

func TestSummarizeKnown(t *testing.T) {
	// R: summary(c(1,2,3,4,5,6,7,8)) -> Q1=2.75, median=4.5, Q3=6.25
	s := MustSummarize([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	if !almostEqual(s.Q1, 2.75, 1e-12) {
		t.Errorf("Q1 = %v, want 2.75", s.Q1)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
	if !almostEqual(s.Q3, 6.25, 1e-12) {
		t.Errorf("Q3 = %v, want 6.25", s.Q3)
	}
	if !almostEqual(s.Mean, 4.5, 1e-12) {
		t.Errorf("Mean = %v, want 4.5", s.Mean)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	MustSummarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Summarize mutated its input: %v", xs)
	}
}

func TestVarianceKnown(t *testing.T) {
	// Sample variance of {2,4,4,4,5,5,7,9} is 32/7.
	v := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
}

func TestQuantileBounds(t *testing.T) {
	xs := []float64{5, 1, 9}
	for _, p := range []float64{-1, 0} {
		if q, _ := Quantile(xs, p); q != 1 {
			t.Errorf("Quantile(p=%v) = %v, want 1", p, q)
		}
	}
	for _, p := range []float64{1, 2} {
		if q, _ := Quantile(xs, p); q != 9 {
			t.Errorf("Quantile(p=%v) = %v, want 9", p, q)
		}
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("want error for n<2")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("want error for zero variance")
	}
}

func TestFixedBins(t *testing.T) {
	keys := []float64{0.5, 1.5, 1.9, 3.2, -1, 10}
	vals := []float64{10, 20, 30, 40, 50, 60}
	bins, err := FixedBins(keys, vals, 0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 4 {
		t.Fatalf("got %d bins, want 4", len(bins))
	}
	if bins[0].Count() != 1 || bins[0].Values[0] != 10 {
		t.Errorf("bin 0 = %+v", bins[0])
	}
	if bins[1].Count() != 2 {
		t.Errorf("bin 1 count = %d, want 2", bins[1].Count())
	}
	if bins[2].Count() != 0 {
		t.Errorf("bin 2 count = %d, want 0", bins[2].Count())
	}
	if bins[3].Count() != 1 || bins[3].Values[0] != 40 {
		t.Errorf("bin 3 = %+v", bins[3])
	}
}

func TestFixedBinsErrors(t *testing.T) {
	if _, err := FixedBins([]float64{1}, nil, 0, 1, 1); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, err := FixedBins(nil, nil, 0, 1, 0); err == nil {
		t.Error("want error for zero width")
	}
	if _, err := FixedBins(nil, nil, 1, 0, 1); err == nil {
		t.Error("want error for hi<=lo")
	}
}

func TestMedianPerBin(t *testing.T) {
	bins := []Bin{
		{Lo: 0, Hi: 1, Values: []float64{1, 2, 3}},
		{Lo: 1, Hi: 2},
	}
	ms := MedianPerBin(bins)
	if ms[0] != 2 {
		t.Errorf("median of bin 0 = %v, want 2", ms[0])
	}
	if !math.IsNaN(ms[1]) {
		t.Errorf("median of empty bin = %v, want NaN", ms[1])
	}
}

func TestBoxPlotOf(t *testing.T) {
	// One clear outlier at 100.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100}
	bp, err := BoxPlotOf(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Outliers) != 1 || bp.Outliers[0] != 100 {
		t.Errorf("Outliers = %v, want [100]", bp.Outliers)
	}
	if bp.LowerWhisker != 1 {
		t.Errorf("LowerWhisker = %v, want 1", bp.LowerWhisker)
	}
	if bp.UpperWhisker != 8 {
		t.Errorf("UpperWhisker = %v, want 8", bp.UpperWhisker)
	}
	if bp.Median != 5 {
		t.Errorf("Median = %v, want 5", bp.Median)
	}
}

// Property: quantiles are monotone in p and bounded by [min, max].
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			q, err := Quantile(xs, p)
			if err != nil || q < prev {
				return false
			}
			prev = q
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		qmin, _ := Quantile(xs, 0)
		qmax, _ := Quantile(xs, 1)
		return qmin == sorted[0] && qmax == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Pearson correlation is always within [-1, 1] and is symmetric.
func TestPearsonRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			ys[i] = rng.NormFloat64() * 100
		}
		r1, err1 := Pearson(xs, ys)
		r2, err2 := Pearson(ys, xs)
		if err1 != nil || err2 != nil {
			continue // zero-variance draw; acceptable
		}
		if r1 < -1-1e-12 || r1 > 1+1e-12 {
			t.Fatalf("Pearson out of range: %v", r1)
		}
		if !almostEqual(r1, r2, 1e-12) {
			t.Fatalf("Pearson not symmetric: %v vs %v", r1, r2)
		}
	}
}

// Property: summary invariants Min <= Q1 <= Median <= Q3 <= Max and
// Min <= Mean <= Max hold for any finite sample.
func TestSummaryOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 1e6
		}
		s := MustSummarize(xs)
		if !(s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max) {
			t.Fatalf("quartile ordering violated: %+v", s)
		}
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			t.Fatalf("mean outside range: %+v", s)
		}
	}
}
