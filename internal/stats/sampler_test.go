package stats

import (
	"math"
	"math/rand"
	"testing"
)

// slacThroughputMbps is Table II's transfer-throughput row (Mbps).
var slacThroughputMbps = Summary{
	Min: 0.004, Q1: 45.4, Median: 109.6, Mean: 195.9, Q3: 256.2, Max: 2560,
}

// ncarThroughputMbps is Table I's transfer-throughput row (Mbps).
var ncarThroughputMbps = Summary{
	Min: 2.1e-6, Q1: 196.9, Median: 392.8, Mean: 434.9, Q3: 682.2, Max: 4227,
}

func TestNewQuantileSamplerValidation(t *testing.T) {
	bad := []Summary{
		{Min: 0, Q1: 1, Median: 2, Q3: 3, Max: 4},           // zero anchor
		{Min: -1, Q1: 1, Median: 2, Q3: 3, Max: 4},          // negative
		{Min: 5, Q1: 1, Median: 2, Q3: 3, Max: 4},           // out of order
		{Min: 1, Q1: 2, Median: 3, Q3: 5, Max: 4},           // max < q3
		{Min: 1, Q1: 2, Median: math.NaN(), Q3: 3, Max: 4},  // NaN
		{Min: 1, Q1: 2, Median: math.Inf(1), Q3: 3, Max: 4}, // Inf
	}
	for i, s := range bad {
		if _, err := NewQuantileSampler(s); err == nil {
			t.Errorf("case %d: expected error for %+v", i, s)
		}
	}
}

func TestQuantileSamplerHitsAnchors(t *testing.T) {
	q := MustQuantileSampler(slacThroughputMbps)
	cases := []struct{ p, want float64 }{
		{0, slacThroughputMbps.Min},
		{0.25, slacThroughputMbps.Q1},
		{0.5, slacThroughputMbps.Median},
		{0.75, slacThroughputMbps.Q3},
		{1, slacThroughputMbps.Max},
	}
	for _, c := range cases {
		got := q.Value(c.p)
		if math.Abs(got-c.want) > 1e-9*c.want+1e-12 {
			t.Errorf("Value(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuantileSamplerMatchesMean(t *testing.T) {
	for name, s := range map[string]Summary{
		"slac": slacThroughputMbps,
		"ncar": ncarThroughputMbps,
	} {
		q := MustQuantileSampler(s)
		got := q.Mean()
		if math.Abs(got-s.Mean)/s.Mean > 0.02 {
			t.Errorf("%s: reconstructed mean %v, want %v (within 2%%)", name, got, s.Mean)
		}
	}
}

func TestQuantileSamplerMonotone(t *testing.T) {
	q := MustQuantileSampler(ncarThroughputMbps)
	prev := -math.MaxFloat64
	for p := 0.0; p <= 1.0001; p += 0.001 {
		v := q.Value(p)
		if v < prev {
			t.Fatalf("inverse CDF not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestQuantileSamplerSampleQuartiles(t *testing.T) {
	q := MustQuantileSampler(slacThroughputMbps)
	rng := rand.New(rand.NewSource(1))
	xs := q.SampleN(rng, 200000)
	s := MustSummarize(xs)
	check := func(name string, got, want float64) {
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s: sampled %v, want %v (within 5%%)", name, got, want)
		}
	}
	check("Q1", s.Q1, slacThroughputMbps.Q1)
	check("Median", s.Median, slacThroughputMbps.Median)
	check("Q3", s.Q3, slacThroughputMbps.Q3)
	check("Mean", s.Mean, slacThroughputMbps.Mean)
	if s.Min < slacThroughputMbps.Min || s.Max > slacThroughputMbps.Max {
		t.Errorf("samples escape [Min, Max]: got [%v, %v]", s.Min, s.Max)
	}
}

func TestQuantileSamplerNoMean(t *testing.T) {
	s := Summary{Min: 1, Q1: 2, Median: 3, Q3: 4, Max: 10} // Mean unset
	q := MustQuantileSampler(s)
	if q.Gamma() != 1 {
		t.Errorf("Gamma = %v, want 1 when mean unspecified", q.Gamma())
	}
}

func TestQuantileSamplerUnreachableMean(t *testing.T) {
	// Mean below the lightest-tail expectation: gamma should clamp high.
	s := Summary{Min: 1, Q1: 2, Median: 3, Mean: 1.01, Q3: 4, Max: 10}
	q := MustQuantileSampler(s)
	if q.Gamma() < 50 {
		t.Errorf("Gamma = %v, want clamp near upper bound", q.Gamma())
	}
	// Mean above the heaviest-tail expectation: clamp low.
	s2 := Summary{Min: 1, Q1: 2, Median: 3, Mean: 9.99, Q3: 4, Max: 10}
	q2 := MustQuantileSampler(s2)
	if q2.Gamma() > 0.05 {
		t.Errorf("Gamma = %v, want clamp near lower bound", q2.Gamma())
	}
}

func TestTruncatedLogNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		v, err := TruncatedLogNormal(rng, 100, 2, 10, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if v < 10 || v > 1000 {
			t.Fatalf("sample %v outside truncation window", v)
		}
	}
}

func TestTruncatedLogNormalErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct{ median, gsd, lo, hi float64 }{
		{0, 2, 0, 1},  // zero median
		{1, 1, 0, 1},  // gsd not > 1
		{1, 2, 5, 1},  // lo > hi
		{1, 2, -1, 1}, // negative lo
	}
	for i, c := range cases {
		if _, err := TruncatedLogNormal(rng, c.median, c.gsd, c.lo, c.hi); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestTruncatedLogNormalFarTailClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Window far above the median: resampling will fail, expect clamp into window.
	v, err := TruncatedLogNormal(rng, 1, 1.0001, 1e6, 2e6)
	if err != nil {
		t.Fatal(err)
	}
	if v < 1e6 || v > 2e6 {
		t.Errorf("clamped value %v outside window", v)
	}
}
