// Package stats provides the descriptive statistics used throughout the
// GridFTP virtual-circuit study: five-number summaries, coefficients of
// variation, Pearson correlation, quantiles, histograms and binning, and
// quantile-matching samplers that reconstruct distributions from the
// summary statistics a paper reports.
//
// All functions operate on float64 slices and never mutate their inputs
// unless explicitly documented otherwise.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the five-number summary plus mean and standard deviation of
// a sample, matching the layout the paper uses in its tables
// (Min / 1st Qu. / Median / Mean / 3rd Qu. / Max).
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Mean   float64
	Q3     float64
	Max    float64
	StdDev float64
}

// CV returns the coefficient of variation (stddev/mean) of the summary.
// It returns 0 if the mean is zero.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev / s.Mean
}

// IQR returns the inter-quartile range Q3-Q1.
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }

// Summarize computes a Summary of xs. It copies and sorts internally.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s := Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.50),
		Q3:     quantileSorted(sorted, 0.75),
		Mean:   Mean(sorted),
	}
	s.StdDev = StdDev(sorted)
	return s, nil
}

// MustSummarize is Summarize but panics on an empty sample. It is intended
// for experiment harness code where an empty sample is a programming error.
func MustSummarize(xs []float64) Summary {
	s, err := Summarize(xs)
	if err != nil {
		panic(err)
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator),
// or 0 when fewer than two observations are present.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between closest ranks (the R-7 / type-7 estimator, which is
// what R's quantile() — used by the paper's authors — defaults to).
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p), nil
}

// quantileSorted computes the type-7 quantile of an already-sorted slice.
func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	frac := h - float64(lo)
	if hi >= n {
		return sorted[n-1]
	}
	// The convex form avoids overflow when the endpoints are near ±MaxFloat64.
	return (1-frac)*sorted[lo] + frac*sorted[hi]
}

// Median returns the median of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Pearson returns the Pearson product-moment correlation coefficient of the
// paired samples xs and ys. It returns an error when the lengths differ,
// fewer than two pairs are present, or either sample has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: correlation requires equal-length samples")
	}
	if len(xs) < 2 {
		return 0, errors.New("stats: correlation requires at least two pairs")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: correlation undefined for zero-variance sample")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Bin describes one histogram bin: the half-open interval [Lo, Hi) and the
// values that fell into it.
type Bin struct {
	Lo, Hi float64
	Values []float64
}

// Count returns the number of observations in the bin.
func (b Bin) Count() int { return len(b.Values) }

// FixedBins partitions the observations xs by key into equal-width bins of
// width w covering [lo, hi). keys and xs are paired: keys[i] decides the bin
// and xs[i] is the recorded value (e.g. key = file size, value = throughput).
// Observations with keys outside [lo, hi) are dropped. The returned slice
// always has ceil((hi-lo)/w) bins, possibly with empty Values.
func FixedBins(keys, xs []float64, lo, hi, w float64) ([]Bin, error) {
	if len(keys) != len(xs) {
		return nil, errors.New("stats: keys and values must have equal length")
	}
	if w <= 0 || hi <= lo {
		return nil, errors.New("stats: invalid bin geometry")
	}
	n := int(math.Ceil((hi - lo) / w))
	bins := make([]Bin, n)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*w
		bins[i].Hi = bins[i].Lo + w
	}
	for i, k := range keys {
		if k < lo || k >= hi {
			continue
		}
		idx := int((k - lo) / w)
		if idx >= n { // guard floating-point edge at hi
			idx = n - 1
		}
		bins[idx].Values = append(bins[idx].Values, xs[i])
	}
	return bins, nil
}

// MedianPerBin maps each bin to the median of its values; empty bins yield
// NaN so callers can skip them when plotting.
func MedianPerBin(bins []Bin) []float64 {
	out := make([]float64, len(bins))
	for i, b := range bins {
		if len(b.Values) == 0 {
			out[i] = math.NaN()
			continue
		}
		m, _ := Median(b.Values)
		out[i] = m
	}
	return out
}

// BoxPlot holds the statistics a box-and-whisker plot renders, following the
// Tukey convention used by R's boxplot (whiskers at the most extreme points
// within 1.5×IQR of the quartiles).
type BoxPlot struct {
	LowerWhisker float64
	Q1           float64
	Median       float64
	Q3           float64
	UpperWhisker float64
	Outliers     []float64
}

// BoxPlotOf computes the box-plot statistics of xs.
func BoxPlotOf(xs []float64) (BoxPlot, error) {
	s, err := Summarize(xs)
	if err != nil {
		return BoxPlot{}, err
	}
	iqr := s.IQR()
	loFence := s.Q1 - 1.5*iqr
	hiFence := s.Q3 + 1.5*iqr
	bp := BoxPlot{Q1: s.Q1, Median: s.Median, Q3: s.Q3}
	bp.LowerWhisker = math.Inf(1)
	bp.UpperWhisker = math.Inf(-1)
	for _, x := range xs {
		if x < loFence || x > hiFence {
			bp.Outliers = append(bp.Outliers, x)
			continue
		}
		if x < bp.LowerWhisker {
			bp.LowerWhisker = x
		}
		if x > bp.UpperWhisker {
			bp.UpperWhisker = x
		}
	}
	// Degenerate case: everything was an outlier (cannot happen with the
	// Tukey fences, but be defensive about NaN inputs).
	if math.IsInf(bp.LowerWhisker, 1) {
		bp.LowerWhisker = s.Min
		bp.UpperWhisker = s.Max
	}
	sort.Float64s(bp.Outliers)
	return bp, nil
}
