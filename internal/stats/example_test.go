package stats_test

import (
	"fmt"

	"gftpvc/internal/stats"
)

// ExampleQuantileSampler reconstructs a distribution from a published
// five-number summary (here Table II's transfer-throughput row) and reads
// values off its inverse CDF.
func ExampleQuantileSampler() {
	summary := stats.Summary{
		Min: 0.004, Q1: 45.4, Median: 109.6, Mean: 195.9, Q3: 256.2, Max: 2560,
	}
	sampler, err := stats.NewQuantileSampler(summary)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("P25 = %.1f Mbps\n", sampler.Value(0.25))
	fmt.Printf("P50 = %.1f Mbps\n", sampler.Value(0.50))
	fmt.Printf("P75 = %.1f Mbps\n", sampler.Value(0.75))
	// Output:
	// P25 = 45.4 Mbps
	// P50 = 109.6 Mbps
	// P75 = 256.2 Mbps
}

// ExampleSummarize computes the paper-style five-number summary.
func ExampleSummarize() {
	s, err := stats.Summarize([]float64{758, 1310, 1640, 2005, 3640})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("median %.0f, IQR %.1f\n", s.Median, s.IQR())
	// Output:
	// median 1640, IQR 695.0
}
