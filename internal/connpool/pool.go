// Package connpool pools authenticated GridFTP control channels by
// endpoint, so managed-transfer workers pay the dial + USER/PASS +
// TYPE/MODE handshake once per connection lifetime instead of once per
// job. Checkout mirrors the pooled-connection discipline of
// internal/vc: a reused channel is health-checked with NOOP and, when
// it proves stale, replaced by exactly one fresh dial — the caller
// never sees the dead connection. A background keepalive NOOPs idle
// channels so the server's IdleTimeout cannot reap them between jobs,
// and a max lifetime bounds how long any channel is reused regardless.
package connpool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"gftpvc/internal/gridftp"
	"gftpvc/internal/telemetry"
)

// ErrClosed: the pool has been closed; no further checkouts.
var ErrClosed = errors.New("connpool: pool closed")

// Config configures a Pool.
type Config struct {
	// MaxIdlePerEndpoint bounds the idle channels kept per endpoint key
	// (default 2); surplus releases close instead of parking.
	MaxIdlePerEndpoint int
	// MaxLifetime bounds how long a channel may be reused after its dial
	// (default 5m; negative disables): long-lived control channels drift
	// — half-open NATs, server restarts — so the pool retires them on a
	// clock, not only on failure.
	MaxLifetime time.Duration
	// KeepAlive is the idle-channel NOOP interval (default 30s; negative
	// disables). Keep it below the servers' IdleTimeout or parked
	// channels get reaped and every checkout turns into a miss.
	KeepAlive time.Duration
	// Opts supplies gridftp dial options per endpoint address (timeouts,
	// telemetry, fault-injection dialers).
	Opts func(addr string) []gridftp.Option
	// Telemetry, when set, receives pool hit/miss/eviction counters and
	// idle/leased gauges.
	Telemetry *telemetry.Hub
}

// key identifies a pool bucket: same server, same credentials.
type key struct{ addr, user, pass string }

// pooled is one parked control channel.
type pooled struct {
	cli  *gridftp.Client
	born time.Time
}

// Pool is an endpoint-keyed pool of authenticated control channels.
// Checked-out connections are exclusive (a GridFTP control channel
// multiplexes one transfer at a time); the pool itself is safe for
// concurrent use.
type Pool struct {
	cfg Config
	met poolMetrics

	// The census counters live on the pool itself, not only on the
	// optional telemetry instruments, so Stats works hub or no hub.
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	mu     sync.Mutex
	idle   map[key][]pooled
	leased int
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

type poolMetrics struct {
	hits      *telemetry.Counter
	misses    *telemetry.Counter
	evictions *telemetry.Counter
	idle      *telemetry.Gauge
	leased    *telemetry.Gauge
}

// Stats is a point-in-time pool census, for leak assertions: when all
// work is done, Leased must be zero and Idle bounded by the config.
type Stats struct {
	Idle      int
	Leased    int
	Hits      int64
	Misses    int64
	Evictions int64
}

// New starts a pool. Callers must Close it.
func New(cfg Config) *Pool {
	if cfg.MaxIdlePerEndpoint == 0 {
		cfg.MaxIdlePerEndpoint = 2
	}
	switch {
	case cfg.MaxLifetime == 0:
		cfg.MaxLifetime = 5 * time.Minute
	case cfg.MaxLifetime < 0:
		cfg.MaxLifetime = 0
	}
	switch {
	case cfg.KeepAlive == 0:
		cfg.KeepAlive = 30 * time.Second
	case cfg.KeepAlive < 0:
		cfg.KeepAlive = 0
	}
	p := &Pool{
		cfg:  cfg,
		idle: make(map[key][]pooled),
		stop: make(chan struct{}),
	}
	if hub := cfg.Telemetry; hub != nil {
		p.met = poolMetrics{
			hits: hub.Counter("gridftp_pool_hits_total",
				"Checkouts served by a pooled control channel."),
			misses: hub.Counter("gridftp_pool_misses_total",
				"Checkouts that dialed fresh (empty bucket, expired, or stale channel)."),
			evictions: hub.Counter("gridftp_pool_evictions_total",
				"Pooled control channels retired (expired, stale, surplus, or pool close)."),
			idle: hub.Gauge("gridftp_pool_idle",
				"Control channels parked in the pool."),
			leased: hub.Gauge("gridftp_pool_leased",
				"Control channels checked out to jobs."),
		}
	}
	if p.cfg.KeepAlive > 0 {
		p.wg.Add(1)
		go p.keepAliveLoop()
	}
	return p
}

// Conn is a checked-out control channel. Exactly one of Release or
// Discard must be called when the job is done with it; both are
// idempotent.
type Conn struct {
	*gridftp.Client
	pool *Pool
	key  key
	born time.Time
	// done flips exactly once, by CAS: Release and Discard may race on
	// the same Conn (worker teardown vs. job completion) and only one of
	// them may run the lifecycle, or the leased census double-decrements.
	done atomic.Bool
}

// Get checks out an authenticated control channel to addr: a parked
// channel when a healthy one exists, a fresh dial otherwise. Reused
// channels are verified end to end with NOOP first; a stale one is
// closed and replaced by a single fresh dial, so callers never receive
// a dead connection and never pay more than one redial.
func (p *Pool) Get(ctx context.Context, addr, user, pass string) (*Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	k := key{addr, user, pass}
	trace := telemetry.TraceIDFrom(ctx)
	if pc, ok := p.popIdle(k); ok {
		if err := pc.cli.Noop(); err == nil {
			p.hits.Add(1)
			p.met.hits.Inc()
			p.cfg.Telemetry.Event(trace, "pool_hit", addr)
			p.lease(1)
			return &Conn{Client: pc.cli, pool: p, key: k, born: pc.born}, nil
		}
		// Stale: retire it and fall through to the one fresh dial.
		p.evict(pc.cli)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.misses.Add(1)
	p.met.misses.Inc()
	p.cfg.Telemetry.Event(trace, "pool_miss", addr)
	cli, err := p.dial(k)
	if err != nil {
		return nil, err
	}
	p.lease(1)
	return &Conn{Client: cli, pool: p, key: k, born: time.Now()}, nil
}

// dial opens and authenticates a fresh control channel for k.
func (p *Pool) dial(k key) (*gridftp.Client, error) {
	var opts []gridftp.Option
	if p.cfg.Opts != nil {
		opts = p.cfg.Opts(k.addr)
	}
	cli, err := gridftp.Dial(k.addr, opts...)
	if err != nil {
		return nil, err
	}
	if err := cli.Login(k.user, k.pass); err != nil {
		cli.Close()
		return nil, err
	}
	return cli, nil
}

// popIdle takes the most recently parked channel for k, skipping (and
// retiring) expired ones.
func (p *Pool) popIdle(k key) (pooled, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		bucket := p.idle[k]
		n := len(bucket)
		if p.closed || n == 0 {
			return pooled{}, false
		}
		pc := bucket[n-1]
		p.idle[k] = bucket[:n-1]
		p.met.idle.Dec()
		if p.expired(pc.born) {
			// Closing under the lock is cheap: QUIT rides the dying
			// connection's buffers and Close does not wait for a reply.
			p.evict(pc.cli)
			continue
		}
		return pc, true
	}
}

func (p *Pool) expired(born time.Time) bool {
	return p.cfg.MaxLifetime > 0 && time.Since(born) > p.cfg.MaxLifetime
}

func (p *Pool) lease(delta int) {
	p.mu.Lock()
	p.leased += delta
	p.mu.Unlock()
	p.met.leased.Add(int64(delta))
}

// evict retires one channel: close it and count the eviction.
func (p *Pool) evict(cli *gridftp.Client) {
	cli.Close()
	p.evictions.Add(1)
	p.met.evictions.Inc()
}

// Release parks the channel for reuse. Channels that are desynced,
// expired, or surplus to the idle bound are closed instead — a job that
// failed mid-transfer should Discard, but Release still refuses to park
// a channel the client itself marked unusable.
func (c *Conn) Release() {
	if c == nil || !c.done.CompareAndSwap(false, true) {
		return
	}
	p := c.pool
	p.lease(-1)
	// Drop any trace binding and rate shaping before parking: the next
	// checkout is a different job and must not inherit this one's trace
	// ID, pacing bucket, or server-side rate. Clearing is client-side
	// only — SITE RATE 0 goes on the wire only if this job actually
	// engaged server-side shaping (gridftp tracks that), so unshaped
	// channels stay byte-identical. If the clear itself fails — the
	// server rejects SITE RATE 0 without the channel tripping Desynced —
	// the parked channel would keep the previous job's server-side cap
	// and the next checkout would inherit it, so evict instead.
	if err := c.Client.ApplyOptions(
		gridftp.WithTransferTrace(telemetry.TraceContext{}),
		gridftp.WithRate(0),
		gridftp.WithLimiter(nil),
	); err != nil {
		p.evict(c.Client)
		return
	}
	if c.Client.Desynced() || p.expired(c.born) {
		p.evict(c.Client)
		return
	}
	p.mu.Lock()
	if p.closed || len(p.idle[c.key]) >= p.cfg.MaxIdlePerEndpoint {
		p.mu.Unlock()
		p.evict(c.Client)
		return
	}
	p.idle[c.key] = append(p.idle[c.key], pooled{cli: c.Client, born: c.born})
	p.mu.Unlock()
	p.met.idle.Inc()
}

// Discard closes the channel instead of parking it: the job saw a
// failure and the channel's state cannot be trusted.
func (c *Conn) Discard() {
	if c == nil || !c.done.CompareAndSwap(false, true) {
		return
	}
	c.pool.lease(-1)
	c.pool.evict(c.Client)
}

// keepAliveLoop NOOPs every parked channel each interval so server idle
// timers never fire on pooled connections. A channel is taken off the
// bucket while probed (clients are single-user); failures retire it.
func (p *Pool) keepAliveLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.KeepAlive)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.sweep()
		}
	}
}

// sweep probes every idle channel once, returning survivors to their
// buckets. Checkouts racing the sweep simply miss and dial fresh.
func (p *Pool) sweep() {
	p.mu.Lock()
	taken := p.idle
	p.idle = make(map[key][]pooled, len(taken))
	p.mu.Unlock()
	for k, bucket := range taken {
		var kept []pooled
		for _, pc := range bucket {
			p.met.idle.Dec()
			if p.expired(pc.born) || pc.cli.Noop() != nil {
				p.evict(pc.cli)
				continue
			}
			kept = append(kept, pc)
		}
		if len(kept) == 0 {
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			for _, pc := range kept {
				p.evict(pc.cli)
			}
			continue
		}
		// Releases that raced the probe window have refilled the bucket;
		// reinsert only up to the idle bound and retire the surplus, or
		// the bucket grows past MaxIdlePerEndpoint.
		room := p.cfg.MaxIdlePerEndpoint - len(p.idle[k])
		if room < 0 {
			room = 0
		}
		if room > len(kept) {
			room = len(kept)
		}
		p.idle[k] = append(p.idle[k], kept[:room]...)
		p.mu.Unlock()
		p.met.idle.Add(int64(room))
		for _, pc := range kept[room:] {
			p.evict(pc.cli)
		}
	}
}

// Stats returns the pool census.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Stats{
		Leased:    p.leased,
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Evictions: p.evictions.Load(),
	}
	for _, bucket := range p.idle {
		s.Idle += len(bucket)
	}
	return s
}

// Close stops the keepalive and closes every idle channel. Checked-out
// channels are closed as they come back via Release/Discard.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	taken := p.idle
	p.idle = make(map[key][]pooled)
	p.mu.Unlock()
	close(p.stop)
	p.wg.Wait()
	for _, bucket := range taken {
		for _, pc := range bucket {
			p.met.idle.Dec()
			p.evict(pc.cli)
		}
	}
}
