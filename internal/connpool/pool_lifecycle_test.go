// Checkout-lifecycle regression pins: the sweep/Release reinsert race
// that grew buckets past MaxIdlePerEndpoint, the Release/Discard double
// lifecycle that skewed the leased census negative, and the parked
// channel that kept a previous job's server-side rate cap when the
// SITE RATE 0 clear was rejected.
package connpool

import (
	"bufio"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gftpvc/internal/gridftp"
)

// scriptedServer is a minimal line-based control-channel fake, just
// enough protocol for Dial + Login + NOOP + SITE RATE. It exists so
// tests can script behaviors the real server never exhibits: slow NOOP
// replies (to hold a sweep mid-probe) and SITE RATE 0 rejections.
type scriptedServer struct {
	ln net.Listener
	// noopDelay stalls every NOOP reply, pinning a keepalive sweep
	// inside its probe window.
	noopDelay time.Duration
	// rejectClear answers SITE RATE 0 with 550 while still accepting
	// nonzero rates — a shaped session that refuses to unshape.
	rejectClear bool
}

func startScripted(t *testing.T, s *scriptedServer) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.ln = ln
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serve(conn)
		}
	}()
	return ln.Addr().String()
}

func (s *scriptedServer) serve(conn net.Conn) {
	defer conn.Close()
	write := func(line string) { conn.Write([]byte(line + "\r\n")) }
	write("220 scripted ready")
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		verb := strings.ToUpper(strings.Fields(line + " x")[0])
		switch {
		case verb == "USER":
			write("331 send password")
		case verb == "PASS":
			write("230 logged in")
		case verb == "TYPE", verb == "MODE":
			write("200 ok")
		case verb == "NOOP":
			if s.noopDelay > 0 {
				time.Sleep(s.noopDelay)
			}
			write("200 ok")
		case strings.HasPrefix(strings.ToUpper(line), "SITE RATE "):
			if strings.TrimSpace(line[len("SITE RATE "):]) == "0" && s.rejectClear {
				write("550 rate is contractual")
			} else {
				write("200 shaped")
			}
		case verb == "QUIT":
			write("221 bye")
			return
		default:
			write("200 ok")
		}
	}
}

// TestPoolSweepReinsertRespectsIdleBound races a Release against the
// keepalive sweep: the sweep takes the bucket, probes its channel
// against a server whose NOOP replies are slow, and meanwhile a Release
// parks a second channel into the now-empty bucket. When the sweep
// reinserts its survivor the bucket must still respect
// MaxIdlePerEndpoint — pre-fix, the bare append grew it to 2.
func TestPoolSweepReinsertRespectsIdleBound(t *testing.T) {
	addr := startScripted(t, &scriptedServer{noopDelay: 150 * time.Millisecond})
	p := newPool(t, Config{MaxIdlePerEndpoint: 1, KeepAlive: -1})
	ctx := context.Background()
	c1, err := p.Get(ctx, addr, "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Get(ctx, addr, "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	c1.Release() // bucket: [c1]
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.sweep() // takes [c1], stalls ~150ms inside the NOOP probe
	}()
	time.Sleep(50 * time.Millisecond) // sweep now holds c1 outside the lock
	c2.Release()                      // bucket looks empty: parks c2
	<-done
	st := p.Stats()
	if st.Idle > 1 {
		t.Fatalf("sweep reinsert grew the bucket past MaxIdlePerEndpoint: %+v", st)
	}
	if st.Idle != 1 || st.Evictions != 1 {
		t.Fatalf("want 1 idle + 1 surplus eviction after the race, got %+v", st)
	}
}

// TestPoolConcurrentReleaseDiscard runs Release and Discard on the same
// Conn from racing goroutines, repeatedly: exactly one side may run the
// lifecycle. Pre-fix the unsynchronized done flag let both through,
// double-decrementing the leased census below zero (and racing under
// -race).
func TestPoolConcurrentReleaseDiscard(t *testing.T) {
	s := startServer(t, gridftp.Config{})
	p := newPool(t, Config{MaxIdlePerEndpoint: 2, KeepAlive: -1})
	ctx := context.Background()
	for i := 0; i < 25; i++ {
		c, err := p.Get(ctx, s.Addr(), "u", "p")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); c.Release() }()
		go func() { defer wg.Done(); c.Discard() }()
		wg.Wait()
		if st := p.Stats(); st.Leased != 0 {
			t.Fatalf("iteration %d: leased census skewed: %+v", i, st)
		}
	}
}

// TestPoolReleaseEvictsWhenRateClearRejected checks out a channel,
// engages server-side shaping (SITE RATE accepted), then Releases it
// against a server that rejects the SITE RATE 0 clear without killing
// the channel. The channel still carries the old job's server-side cap,
// so it must be evicted, not parked — pre-fix it was parked and the
// next checkout inherited the cap.
func TestPoolReleaseEvictsWhenRateClearRejected(t *testing.T) {
	addr := startScripted(t, &scriptedServer{rejectClear: true})
	p := newPool(t, Config{MaxIdlePerEndpoint: 2, KeepAlive: -1})
	ctx := context.Background()
	c, err := p.Get(ctx, addr, "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	// The job shapes its session; the scripted server accepts.
	if err := c.ApplyOptions(gridftp.WithRate(8e6)); err != nil {
		t.Fatal(err)
	}
	c.Release() // SITE RATE 0 → 550: the clear failed, channel is tainted
	st := p.Stats()
	if st.Idle != 0 {
		t.Fatalf("tainted channel was parked for reuse: %+v", st)
	}
	if st.Evictions != 1 || st.Leased != 0 {
		t.Fatalf("want the tainted channel evicted, got %+v", st)
	}
}
