package connpool

import (
	"context"
	"testing"
	"time"

	"gftpvc/internal/faultnet"
	"gftpvc/internal/gridftp"
	"gftpvc/internal/telemetry"
)

func startServer(t *testing.T, cfg gridftp.Config) *gridftp.Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Store == nil {
		cfg.Store = gridftp.NewMemStore()
	}
	s, err := gridftp.Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func newPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p := New(cfg)
	t.Cleanup(p.Close)
	return p
}

func TestPoolHitMissEviction(t *testing.T) {
	s := startServer(t, gridftp.Config{})
	p := newPool(t, Config{MaxIdlePerEndpoint: 1, KeepAlive: -1})
	ctx := context.Background()
	c1, err := p.Get(ctx, s.Addr(), "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Get(ctx, s.Addr(), "u", "p") // nothing idle: second dial
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Misses != 2 || st.Hits != 0 || st.Leased != 2 {
		t.Fatalf("after two gets: %+v", st)
	}
	c1.Release()
	c2.Release() // bucket holds 1; this one is evicted, not parked
	st := p.Stats()
	if st.Idle != 1 || st.Leased != 0 || st.Evictions != 1 {
		t.Fatalf("after releases: %+v", st)
	}
	c3, err := p.Get(ctx, s.Addr(), "u", "p") // reuses the parked channel
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("after pooled get: %+v", st)
	}
	// The reused channel works: run a real command through it.
	if _, err := c3.List(""); err != nil {
		t.Fatal(err)
	}
	c3.Release()
	c3.Release() // idempotent: no double-park
	if st := p.Stats(); st.Idle != 1 {
		t.Fatalf("after double release: %+v", st)
	}
	// Credentials are part of the pool key: a different login never
	// reuses another user's channel.
	c4, err := p.Get(ctx, s.Addr(), "other", "p")
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Hits != 1 || st.Misses != 3 {
		t.Fatalf("cross-credential get reused a channel: %+v", st)
	}
	c4.Discard()
}

func TestPoolMaxLifetimeRetires(t *testing.T) {
	s := startServer(t, gridftp.Config{})
	p := newPool(t, Config{MaxLifetime: 50 * time.Millisecond, KeepAlive: -1})
	ctx := context.Background()
	c, err := p.Get(ctx, s.Addr(), "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	c.Release()
	time.Sleep(80 * time.Millisecond)
	c2, err := p.Get(ctx, s.Addr(), "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Release()
	if st := p.Stats(); st.Hits != 0 || st.Misses != 2 || st.Evictions != 1 {
		t.Fatalf("expired channel was reused: %+v", st)
	}
}

// TestPoolKeepAliveOutlivesIdleTimeout is the PR's keepalive regression
// pin: a pooled channel must survive more than 3x the server's idle
// timeout because the pool NOOPs it, and checking it out afterwards is
// a hit, not a redial.
func TestPoolKeepAliveOutlivesIdleTimeout(t *testing.T) {
	const idle = 300 * time.Millisecond
	s := startServer(t, gridftp.Config{IdleTimeout: idle})
	p := newPool(t, Config{KeepAlive: idle / 3})
	ctx := context.Background()
	c, err := p.Get(ctx, s.Addr(), "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	c.Release()
	time.Sleep(3*idle + idle/2)
	c2, err := p.Get(ctx, s.Addr(), "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Release()
	st := p.Stats()
	if st.Misses != 1 {
		t.Fatalf("keepalive failed to hold the channel open: %+v", st)
	}
	if _, err := c2.List(""); err != nil {
		t.Fatalf("kept-alive channel dead on reuse: %v", err)
	}
}

// TestPoolRedialsKilledIdleChannel kills a parked channel mid-idle (a
// faultnet proxy resets it); the next checkout must detect the corpse
// on its health check, evict it, and transparently dial fresh — the
// caller never sees an error.
func TestPoolRedialsKilledIdleChannel(t *testing.T) {
	s := startServer(t, gridftp.Config{})
	proxy, err := faultnet.NewProxy(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	p := newPool(t, Config{KeepAlive: -1})
	ctx := context.Background()
	c, err := p.Get(ctx, proxy.Addr(), "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	c.Release()
	proxy.Reset() // every proxied conn dies while the channel sits idle
	c2, err := p.Get(ctx, proxy.Addr(), "u", "p")
	if err != nil {
		t.Fatalf("checkout should redial through the dead channel, got %v", err)
	}
	defer c2.Release()
	if _, err := c2.List(""); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Misses != 2 || st.Evictions != 1 {
		t.Fatalf("dead idle channel not evicted+redialed: %+v", st)
	}
}

// TestPoolDiscardAfterMidUseKill covers the other half of the drill: a
// channel that dies while checked out. The job fails, Discard retires
// the corpse, and no lease slot leaks.
func TestPoolDiscardAfterMidUseKill(t *testing.T) {
	s := startServer(t, gridftp.Config{})
	proxy, err := faultnet.NewProxy(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	p := newPool(t, Config{KeepAlive: -1})
	ctx := context.Background()
	c, err := p.Get(ctx, proxy.Addr(), "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	c.SetTimeouts(500*time.Millisecond, 500*time.Millisecond)
	proxy.Reset()
	if _, err := c.List(""); err == nil {
		t.Fatal("command on killed channel should fail")
	}
	c.Discard()
	if st := p.Stats(); st.Leased != 0 || st.Idle != 0 || st.Evictions != 1 {
		t.Fatalf("leaked a slot after mid-use kill: %+v", st)
	}
	c2, err := p.Get(ctx, proxy.Addr(), "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	c2.Release()
}

// TestPoolDaemonDeath: the remote daemon dies entirely. Checkouts fail
// with a dial error but never strand lease accounting, and once the
// daemon is back the same pool serves it again.
func TestPoolDaemonDeath(t *testing.T) {
	cfg := gridftp.Config{Addr: "127.0.0.1:0", Store: gridftp.NewMemStore()}
	s, err := gridftp.Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	p := newPool(t, Config{KeepAlive: 50 * time.Millisecond})
	ctx := context.Background()
	c, err := p.Get(ctx, addr, "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	c.Release()
	s.Close()
	// The keepalive sweep or the checkout health-check reaps the dead
	// channel; either way Get must surface a dial error, not a hang,
	// and leave zero leases outstanding.
	if _, err := p.Get(ctx, addr, "u", "p"); err == nil {
		t.Fatal("checkout against a dead daemon should fail")
	}
	if st := p.Stats(); st.Leased != 0 || st.Idle != 0 {
		t.Fatalf("dead daemon leaked pool slots: %+v", st)
	}
	// Revive on the same port is not portable; a new daemon on a new
	// port through the same pool proves the pool itself is still alive.
	s2 := startServer(t, gridftp.Config{})
	c2, err := p.Get(ctx, s2.Addr(), "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	c2.Release()
}

func TestPoolCloseClosedPool(t *testing.T) {
	s := startServer(t, gridftp.Config{})
	p := New(Config{})
	ctx := context.Background()
	c, err := p.Get(ctx, s.Addr(), "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	c.Release()
	p.Close()
	p.Close() // idempotent
	if _, err := p.Get(ctx, s.Addr(), "u", "p"); err != ErrClosed {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
	// Releasing a connection checked out before Close must not park it
	// into a closed pool. (c was already released; exercise Discard on
	// a fresh pool's conn against the closed-pool path instead.)
	p2 := New(Config{})
	c2, err := p2.Get(ctx, s.Addr(), "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	p2.Close()
	c2.Release()
	if st := p2.Stats(); st.Idle != 0 {
		t.Fatalf("release parked into a closed pool: %+v", st)
	}
}

func TestPoolMetricsExposition(t *testing.T) {
	hub := telemetry.NewHub()
	s := startServer(t, gridftp.Config{})
	p := newPool(t, Config{Telemetry: hub, KeepAlive: -1})
	ctx := context.Background()
	c, err := p.Get(ctx, s.Addr(), "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	c.Release()
	c, err = p.Get(ctx, s.Addr(), "u", "p")
	if err != nil {
		t.Fatal(err)
	}
	c.Release()
	if n := hub.Counter("gridftp_pool_hits_total",
		"Checkouts served by a pooled control channel.").Value(); n != 1 {
		t.Errorf("hits counter = %d, want 1", n)
	}
	if n := hub.Counter("gridftp_pool_misses_total",
		"Checkouts that dialed fresh (empty bucket, expired, or stale channel).").Value(); n != 1 {
		t.Errorf("misses counter = %d, want 1", n)
	}
	if n := hub.Gauge("gridftp_pool_idle",
		"Control channels parked in the pool.").Value(); n != 1 {
		t.Errorf("idle gauge = %d, want 1", n)
	}
}
