package core

import (
	"math"
	"testing"
	"time"

	"gftpvc/internal/oscars"
	"gftpvc/internal/sessions"
	"gftpvc/internal/simclock"
	"gftpvc/internal/topo"
	"gftpvc/internal/usagestats"
)

func mkSession(t *testing.T, sizeBytes int64, transfers int) *sessions.Session {
	t.Helper()
	s := &sessions.Session{ServerHost: "a", RemoteHost: "b"}
	per := sizeBytes / int64(transfers)
	start := time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < transfers; i++ {
		s.Transfers = append(s.Transfers, usagestats.Record{
			Type: usagestats.Retrieve, SizeBytes: per,
			Start: start.Add(time.Duration(i) * time.Minute), DurationSec: 10,
			ServerHost: "a", RemoteHost: "b", Streams: 1, Stripes: 1,
		})
	}
	return s
}

func TestFeasibilityConfigValidate(t *testing.T) {
	good := FeasibilityConfig{
		SetupDelay: time.Minute, OverheadFactor: 10, ReferenceThroughputBps: 682.2e6,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, bad := range []FeasibilityConfig{
		{SetupDelay: 0, OverheadFactor: 10, ReferenceThroughputBps: 1},
		{SetupDelay: time.Minute, OverheadFactor: 0, ReferenceThroughputBps: 1},
		{SetupDelay: time.Minute, OverheadFactor: 10, ReferenceThroughputBps: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestMinSuitableSessionBytes(t *testing.T) {
	// The paper: with 50 ms setup, factor 10, 682.2 Mbps reference, the
	// threshold is ~42 MB ("dynamic VCs can be used for sessions of sizes
	// 42 MB or larger").
	cfg := FeasibilityConfig{
		SetupDelay: 50 * time.Millisecond, OverheadFactor: 10,
		ReferenceThroughputBps: 682.2e6,
	}
	got := cfg.MinSuitableSessionBytes()
	if math.Abs(got-42.6e6)/42.6e6 > 0.02 {
		t.Errorf("threshold = %v bytes, want ~42.6 MB", got)
	}
}

func TestAnalyzeTableIVRule(t *testing.T) {
	// 1-min setup, factor 10, 800 Mbps reference: threshold = 60 Gbyte*... =
	// 10*60s*1e8 B/s = 60e9 bytes.
	cfg := FeasibilityConfig{
		SetupDelay: time.Minute, OverheadFactor: 10, ReferenceThroughputBps: 800e6,
	}
	ss := []*sessions.Session{
		mkSession(t, 100e9, 50), // suitable
		mkSession(t, 59e9, 10),  // just below threshold
		mkSession(t, 61e9, 40),  // just above
	}
	res, err := cfg.Analyze(ss)
	if err != nil {
		t.Fatal(err)
	}
	if res.SuitableSessions != 2 || res.Sessions != 3 {
		t.Errorf("result = %+v", res)
	}
	if res.Transfers != 100 || res.SuitableTransfers != 90 {
		t.Errorf("transfer counts = %d/%d, want 90/100", res.SuitableTransfers, res.Transfers)
	}
	if math.Abs(res.PercentSessions()-66.666) > 0.1 {
		t.Errorf("PercentSessions = %v", res.PercentSessions())
	}
	if math.Abs(res.PercentTransfers()-90) > 1e-9 {
		t.Errorf("PercentTransfers = %v", res.PercentTransfers())
	}
}

func TestAnalyzeValidates(t *testing.T) {
	if _, err := (FeasibilityConfig{}).Analyze(nil); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	cfg := FeasibilityConfig{
		SetupDelay: time.Minute, OverheadFactor: 10, ReferenceThroughputBps: 1e8,
	}
	res, err := cfg.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PercentSessions() != 0 || res.PercentTransfers() != 0 {
		t.Errorf("empty dataset percentages should be 0: %+v", res)
	}
}

func TestReferenceThroughput(t *testing.T) {
	got, err := ReferenceThroughputFromRecordsBps([]float64{100, 200, 300, 400, 500})
	if err != nil {
		t.Fatal(err)
	}
	if got != 400e6 {
		t.Errorf("reference = %v, want 400e6", got)
	}
	if _, err := ReferenceThroughputFromRecordsBps(nil); err == nil {
		t.Error("empty input should fail")
	}
}

// hybrid engine tests

func buildIDC(t *testing.T) (*simclock.Engine, *oscars.IDC) {
	t.Helper()
	tp := topo.New()
	for _, id := range []topo.NodeID{"src", "mid", "dst"} {
		if _, err := tp.AddNode(id, topo.Host); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.AddDuplex("src", "mid", 10e9, 0.01); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddDuplex("mid", "dst", 10e9, 0.01); err != nil {
		t.Fatal(err)
	}
	eng := simclock.New()
	led, err := oscars.NewLedger(tp, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	idc, err := oscars.NewIDC("esnet", eng, led, oscars.HardwareSignaling)
	if err != nil {
		t.Fatal(err)
	}
	return eng, idc
}

func hybridCfg() HybridConfig {
	return HybridConfig{
		Feasibility: FeasibilityConfig{
			SetupDelay: time.Minute, OverheadFactor: 10, ReferenceThroughputBps: 1e9,
		},
		CircuitRateBps: 1e9,
		HoldSlack:      2 * simclock.Minute,
	}
}

func TestNewHybridEngineValidation(t *testing.T) {
	_, idc := buildIDC(t)
	if _, err := NewHybridEngine(HybridConfig{}, idc); err == nil {
		t.Error("invalid feasibility should fail")
	}
	cfg := hybridCfg()
	cfg.CircuitRateBps = 0
	if _, err := NewHybridEngine(cfg, idc); err == nil {
		t.Error("zero circuit rate should fail")
	}
	cfg = hybridCfg()
	cfg.HoldSlack = -1
	if _, err := NewHybridEngine(cfg, idc); err == nil {
		t.Error("negative slack should fail")
	}
	if _, err := NewHybridEngine(hybridCfg(), nil); err == nil {
		t.Error("nil IDC should fail")
	}
}

func TestDecideSmallSessionIP(t *testing.T) {
	_, idc := buildIDC(t)
	e, err := NewHybridEngine(hybridCfg(), idc)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold = 10*60s*1 Gbps = 75e9 bytes; a 1 GB session is too small.
	plan, err := e.Decide("src", "dst", 1e9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Service != IPRouted || plan.Circuit != nil {
		t.Errorf("plan = %+v, want IP-routed", plan)
	}
	opts := plan.FlowOptionsFor()
	if opts.GuaranteedBps != 0 {
		t.Error("IP plan should have no guarantee")
	}
}

func TestDecideLargeSessionVC(t *testing.T) {
	eng, idc := buildIDC(t)
	e, _ := NewHybridEngine(hybridCfg(), idc)
	plan, err := e.Decide("src", "dst", 200e9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Service != DynamicVC || plan.Circuit == nil {
		t.Fatalf("plan = %+v, want dynamic VC", plan)
	}
	opts := plan.FlowOptionsFor()
	if opts.GuaranteedBps != 1e9 {
		t.Errorf("guarantee = %v, want 1e9", opts.GuaranteedBps)
	}
	eng.RunUntil(1)
	if plan.Circuit.State() != oscars.Active {
		t.Errorf("circuit state = %v, want ACTIVE", plan.Circuit.State())
	}
	vc, ip, fb := e.Stats()
	if vc != 1 || ip != 0 || fb != 0 {
		t.Errorf("stats = %d/%d/%d", vc, ip, fb)
	}
}

func TestDecideFallsBackWhenSaturated(t *testing.T) {
	_, idc := buildIDC(t)
	e, _ := NewHybridEngine(hybridCfg(), idc)
	// Ledger reservable = 5 Gbps; five 1 Gbps circuits fill it.
	for i := 0; i < 5; i++ {
		plan, err := e.Decide("src", "dst", 200e9, 0)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Service != DynamicVC {
			t.Fatalf("circuit %d not admitted", i)
		}
	}
	plan, err := e.Decide("src", "dst", 200e9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Service != IPRouted || plan.FallbackReason == "" {
		t.Errorf("plan = %+v, want IP fallback with reason", plan)
	}
	vc, ip, fb := e.Stats()
	if vc != 5 || ip != 1 || fb != 1 {
		t.Errorf("stats = %d/%d/%d", vc, ip, fb)
	}
	if len(e.Plans()) != 6 {
		t.Errorf("plans = %d, want 6", len(e.Plans()))
	}
}

func TestDecideValidation(t *testing.T) {
	_, idc := buildIDC(t)
	e, _ := NewHybridEngine(hybridCfg(), idc)
	if _, err := e.Decide("src", "dst", 0, 0); err == nil {
		t.Error("zero size should fail")
	}
}

func TestServiceKindString(t *testing.T) {
	if IPRouted.String() != "ip-routed" || DynamicVC.String() != "dynamic-vc" {
		t.Error("ServiceKind string mismatch")
	}
}
