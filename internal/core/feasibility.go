// Package core implements the paper's primary contribution: deciding
// whether dynamic virtual-circuit service is usable and worthwhile for
// GridFTP workloads.
//
// Two pieces:
//
//   - The feasibility analyzer reproduces the Table IV methodology: given a
//     session-grouped log, it computes hypothetical session durations at the
//     dataset's third-quartile transfer throughput and asks for what share
//     of sessions (and of transfers) the VC setup delay would be a tenth or
//     less of the session duration.
//
//   - The hybrid engine is the operational counterpart: per session it
//     chooses dynamic-VC or IP-routed service from the same rule, requests
//     circuits from an OSCARS IDC, and falls back to IP when admission
//     fails — the decision layer a deployment would put in front of the
//     transfer tool.
package core

import (
	"errors"
	"time"

	"gftpvc/internal/sessions"
	"gftpvc/internal/stats"
)

// FeasibilityConfig parameterizes the Table IV analysis.
type FeasibilityConfig struct {
	// SetupDelay is the dynamic-VC setup latency (1 min for the deployed
	// OSCARS IDC; 50 ms for hypothetical hardware signaling).
	SetupDelay time.Duration
	// OverheadFactor is how many times longer than the setup delay a
	// session must be; the paper uses 10 ("one-tenth or less of session
	// durations").
	OverheadFactor float64
	// ReferenceThroughputBps is the assumed session throughput. The paper
	// uses the third-quartile *transfer* throughput of the dataset, which
	// makes hypothetical durations optimistically short — a conservative
	// feasibility test.
	ReferenceThroughputBps float64
}

// Validate reports whether the configuration is usable.
func (c FeasibilityConfig) Validate() error {
	switch {
	case c.SetupDelay <= 0:
		return errors.New("core: setup delay must be positive")
	case c.OverheadFactor <= 0:
		return errors.New("core: overhead factor must be positive")
	case c.ReferenceThroughputBps <= 0:
		return errors.New("core: reference throughput must be positive")
	}
	return nil
}

// FeasibilityResult is one Table IV cell pair: the share of sessions that
// can amortize the setup delay, and the share of all transfers those
// sessions contain (the parenthesized numbers in the paper's table).
type FeasibilityResult struct {
	Sessions         int
	SuitableSessions int
	Transfers        int
	// SuitableTransfers counts transfers belonging to suitable sessions.
	SuitableTransfers int
	// MinSuitableSizeBytes is the smallest session size that passes the
	// rule (the paper's "sessions of sizes 42 MB or larger" remark).
	MinSuitableSizeBytes float64
}

// PercentSessions returns 100·SuitableSessions/Sessions.
func (r FeasibilityResult) PercentSessions() float64 {
	if r.Sessions == 0 {
		return 0
	}
	return 100 * float64(r.SuitableSessions) / float64(r.Sessions)
}

// PercentTransfers returns 100·SuitableTransfers/Transfers.
func (r FeasibilityResult) PercentTransfers() float64 {
	if r.Transfers == 0 {
		return 0
	}
	return 100 * float64(r.SuitableTransfers) / float64(r.Transfers)
}

// MinSuitableSessionBytes returns the smallest session size that satisfies
// the rule analytically: size ≥ factor · setup · throughput.
func (c FeasibilityConfig) MinSuitableSessionBytes() float64 {
	return c.OverheadFactor * c.SetupDelay.Seconds() * c.ReferenceThroughputBps / 8
}

// Analyze runs the Table IV methodology over grouped sessions.
func (c FeasibilityConfig) Analyze(ss []*sessions.Session) (FeasibilityResult, error) {
	if err := c.Validate(); err != nil {
		return FeasibilityResult{}, err
	}
	threshold := c.MinSuitableSessionBytes()
	res := FeasibilityResult{Sessions: len(ss), MinSuitableSizeBytes: threshold}
	for _, s := range ss {
		n := s.Count()
		res.Transfers += n
		if float64(s.SizeBytes()) >= threshold {
			res.SuitableSessions++
			res.SuitableTransfers += n
		}
	}
	return res, nil
}

// ReferenceThroughputFromRecordsBps computes the dataset's third-quartile
// transfer throughput, the reference rate the paper plugs into the
// analysis (682.2 Mbps for NCAR-NICS, 256.2 Mbps for SLAC-BNL).
func ReferenceThroughputFromRecordsBps(throughputsMbps []float64) (float64, error) {
	q3, err := stats.Quantile(throughputsMbps, 0.75)
	if err != nil {
		return 0, err
	}
	return q3 * 1e6, nil
}
