package core

import (
	"errors"
	"sync"

	"gftpvc/internal/netsim"
	"gftpvc/internal/oscars"
)

// FlowBinder ties network flows to their circuits' lifecycles: a flow
// whose plan chose DynamicVC starts best-effort, is upgraded to its
// guaranteed rate the moment the circuit finishes provisioning (after the
// VC setup delay the paper quantifies), and drops back to best-effort if
// the circuit is released while the transfer is still running.
//
// The binder installs itself as the IDC's OnActive/OnRelease callbacks;
// an IDC can host one binder.
type FlowBinder struct {
	nw *netsim.Network

	mu        sync.Mutex
	byCircuit map[oscars.CircuitID]*netsim.Flow
}

// NewFlowBinder creates a binder and hooks it into the IDC.
func NewFlowBinder(nw *netsim.Network, idc *oscars.IDC) (*FlowBinder, error) {
	if nw == nil || idc == nil {
		return nil, errors.New("core: nil network or IDC")
	}
	b := &FlowBinder{nw: nw, byCircuit: make(map[oscars.CircuitID]*netsim.Flow)}
	idc.OnActive = b.onActive
	idc.OnRelease = b.onRelease
	return b, nil
}

// Bind associates a started flow with a plan. IP-routed plans are a
// no-op; VC plans whose circuit is already Active upgrade immediately.
func (b *FlowBinder) Bind(plan *Plan, f *netsim.Flow) error {
	if plan == nil || f == nil {
		return errors.New("core: nil plan or flow")
	}
	if plan.Service != DynamicVC || plan.Circuit == nil {
		return nil
	}
	b.mu.Lock()
	b.byCircuit[plan.Circuit.ID] = f
	b.mu.Unlock()
	if plan.Circuit.State() == oscars.Active {
		b.onActive(plan.Circuit)
	}
	return nil
}

func (b *FlowBinder) onActive(c *oscars.Circuit) {
	b.mu.Lock()
	f := b.byCircuit[c.ID]
	b.mu.Unlock()
	if f == nil || f.Done() {
		return
	}
	// The flow may have completed at this exact instant; SetGuarantee
	// fails harmlessly then.
	_ = b.nw.SetGuarantee(f, c.Request.RateBps)
}

func (b *FlowBinder) onRelease(c *oscars.Circuit) {
	b.mu.Lock()
	f := b.byCircuit[c.ID]
	delete(b.byCircuit, c.ID)
	b.mu.Unlock()
	if f == nil || f.Done() {
		return
	}
	_ = b.nw.SetGuarantee(f, 0)
}
