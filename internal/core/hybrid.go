package core

import (
	"errors"
	"fmt"

	"gftpvc/internal/netsim"
	"gftpvc/internal/oscars"
	"gftpvc/internal/simclock"
	"gftpvc/internal/topo"
)

// ServiceKind is the transport service a session was assigned.
type ServiceKind int

const (
	// IPRouted is the default best-effort service.
	IPRouted ServiceKind = iota
	// DynamicVC is a rate-guaranteed OSCARS circuit.
	DynamicVC
)

func (k ServiceKind) String() string {
	if k == DynamicVC {
		return "dynamic-vc"
	}
	return "ip-routed"
}

// HybridConfig parameterizes the decision engine.
type HybridConfig struct {
	// Feasibility is the amortization rule (setup delay, factor,
	// reference throughput).
	Feasibility FeasibilityConfig
	// CircuitRateBps is the rate requested for each circuit; deployments
	// size this near the session's expected throughput.
	CircuitRateBps float64
	// HoldSlack extends the circuit beyond the predicted session duration
	// to absorb the g-gap between back-to-back transfers.
	HoldSlack simclock.Duration
}

// Plan is the engine's verdict for one session-sized request.
type Plan struct {
	Service ServiceKind
	// PredictedDuration is the hypothetical session duration at the
	// reference throughput.
	PredictedDuration simclock.Duration
	// Circuit is set when Service is DynamicVC and admission succeeded.
	Circuit *oscars.Circuit
	// FallbackReason explains an IPRouted verdict for a VC-eligible
	// session (admission rejection).
	FallbackReason string
}

// HybridEngine assigns sessions to services and provisions circuits. It is
// bound to one IDC and one network path's endpoints.
type HybridEngine struct {
	cfg HybridConfig
	idc *oscars.IDC

	// Decisions taken, for post-hoc evaluation.
	plans []*Plan
}

// NewHybridEngine builds an engine over an IDC.
func NewHybridEngine(cfg HybridConfig, idc *oscars.IDC) (*HybridEngine, error) {
	if err := cfg.Feasibility.Validate(); err != nil {
		return nil, err
	}
	if cfg.CircuitRateBps <= 0 {
		return nil, errors.New("core: circuit rate must be positive")
	}
	if cfg.HoldSlack < 0 {
		return nil, errors.New("core: negative hold slack")
	}
	if idc == nil {
		return nil, errors.New("core: nil IDC")
	}
	return &HybridEngine{cfg: cfg, idc: idc}, nil
}

// Decide plans service for a session of totalBytes between src and dst
// starting now. VC-eligible sessions get a reservation request; if the IDC
// rejects it (no bandwidth on any path), the plan falls back to IP-routed
// service, which is always available.
func (e *HybridEngine) Decide(src, dst topo.NodeID, totalBytes float64, now simclock.Time) (*Plan, error) {
	if totalBytes <= 0 {
		return nil, errors.New("core: session size must be positive")
	}
	predicted := simclock.Duration(totalBytes * 8 / e.cfg.Feasibility.ReferenceThroughputBps)
	plan := &Plan{PredictedDuration: predicted}
	threshold := e.cfg.Feasibility.MinSuitableSessionBytes()
	if totalBytes < threshold {
		plan.Service = IPRouted
		e.plans = append(e.plans, plan)
		return plan, nil
	}
	hold := predicted + e.cfg.HoldSlack + e.idc.MinSetupDelay()
	circuit, err := e.idc.CreateReservation(oscars.Request{
		Src: src, Dst: dst,
		RateBps: e.cfg.CircuitRateBps,
		Start:   now,
		End:     now.Add(hold),
	})
	if err != nil {
		plan.Service = IPRouted
		plan.FallbackReason = fmt.Sprintf("admission failed: %v", err)
		e.plans = append(e.plans, plan)
		return plan, nil
	}
	plan.Service = DynamicVC
	plan.Circuit = circuit
	e.plans = append(e.plans, plan)
	return plan, nil
}

// Plans returns every decision taken so far.
func (e *HybridEngine) Plans() []*Plan { return e.plans }

// Stats tallies the engine's decisions.
func (e *HybridEngine) Stats() (vc, ip, fallbacks int) {
	for _, p := range e.plans {
		switch {
		case p.Service == DynamicVC:
			vc++
		case p.FallbackReason != "":
			ip++
			fallbacks++
		default:
			ip++
		}
	}
	return vc, ip, fallbacks
}

// FlowOptionsFor translates a plan into netsim flow options: VC sessions
// run with the circuit's guaranteed rate, IP sessions best-effort.
func (p *Plan) FlowOptionsFor() netsim.FlowOptions {
	if p.Service == DynamicVC && p.Circuit != nil {
		return netsim.FlowOptions{GuaranteedBps: p.Circuit.Request.RateBps}
	}
	return netsim.FlowOptions{}
}
