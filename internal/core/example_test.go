package core_test

import (
	"fmt"
	"time"

	"gftpvc/internal/core"
)

// ExampleFeasibilityConfig_MinSuitableSessionBytes reproduces the paper's
// back-of-envelope: with 50 ms setup, a factor of 10, and the NCAR-NICS
// Q3 throughput of 682.2 Mbps, sessions of ~42 MB or larger can use
// dynamic VCs.
func ExampleFeasibilityConfig_MinSuitableSessionBytes() {
	cfg := core.FeasibilityConfig{
		SetupDelay:             50 * time.Millisecond,
		OverheadFactor:         10,
		ReferenceThroughputBps: 682.2e6,
	}
	fmt.Printf("minimum suitable session: %.0f MB\n", cfg.MinSuitableSessionBytes()/1e6)
	// Output:
	// minimum suitable session: 43 MB
}
