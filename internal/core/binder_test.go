package core

import (
	"math"
	"testing"

	"gftpvc/internal/netsim"
	"gftpvc/internal/oscars"
	"gftpvc/internal/simclock"
	"gftpvc/internal/topo"
)

// buildHybridWorld wires a topology, network, IDC (batched signaling, so
// setup delay is observable) and binder together.
func buildHybridWorld(t *testing.T) (*simclock.Engine, *netsim.Network, *HybridEngine, *FlowBinder, topo.Path) {
	t.Helper()
	tp := topo.New()
	for _, id := range []topo.NodeID{"src", "mid", "dst"} {
		tp.AddNode(id, topo.Host)
	}
	tp.AddDuplex("src", "mid", 10e9, 0.01)
	tp.AddDuplex("mid", "dst", 10e9, 0.01)
	eng := simclock.New()
	nw := netsim.New(eng, tp)
	led, err := oscars.NewLedger(tp, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	idc, err := oscars.NewIDC("esnet", eng, led, oscars.BatchedSignaling)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := NewHybridEngine(hybridCfg(), idc)
	if err != nil {
		t.Fatal(err)
	}
	binder, err := NewFlowBinder(nw, idc)
	if err != nil {
		t.Fatal(err)
	}
	path, err := tp.ShortestPath("src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	return eng, nw, engine, binder, path
}

func TestNewFlowBinderValidation(t *testing.T) {
	if _, err := NewFlowBinder(nil, nil); err == nil {
		t.Error("nil args should fail")
	}
}

func TestBinderUpgradesAfterSetupDelay(t *testing.T) {
	eng, nw, engine, binder, path := buildHybridWorld(t)
	// Competing traffic so the best-effort phase is distinguishable.
	var competitor *netsim.Flow
	var transfer *netsim.Flow
	eng.MustAt(5, func() {
		var err error
		competitor, err = nw.StartFlow(path, math.Inf(1), netsim.FlowOptions{})
		if err != nil {
			t.Error(err)
		}
		plan, err := engine.Decide("src", "dst", 400e9, eng.Now())
		if err != nil {
			t.Error(err)
			return
		}
		if plan.Service != DynamicVC {
			t.Errorf("plan = %+v, want VC", plan)
			return
		}
		transfer, err = nw.StartFlow(path, 400e9, netsim.FlowOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		if err := binder.Bind(plan, transfer); err != nil {
			t.Error(err)
		}
	})
	// Before the circuit activates (batched signaling: next minute + 2s),
	// the transfer shares fairly with the competitor.
	eng.RunUntil(30)
	if got := transfer.Rate(); math.Abs(got-5e9) > 1e3 {
		t.Errorf("pre-activation rate = %v, want fair share 5e9", got)
	}
	// After activation it holds its 1 Gbps guarantee... which is *less*
	// than the fair share here, but guaranteed regardless of competitors;
	// add more competitors to see the floor hold.
	eng.RunUntil(70)
	for i := 0; i < 18; i++ {
		if _, err := nw.StartFlow(path, math.Inf(1), netsim.FlowOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(71)
	if got := transfer.Rate(); got < 1e9-1e3 {
		t.Errorf("post-activation rate = %v, want >= 1e9 guarantee", got)
	}
	_ = competitor
}

func TestBinderReleaseDowngrades(t *testing.T) {
	eng, nw, engine, binder, path := buildHybridWorld(t)
	var transfer *netsim.Flow
	var plan *Plan
	eng.MustAt(5, func() {
		var err error
		plan, err = engine.Decide("src", "dst", 400e9, eng.Now())
		if err != nil || plan.Service != DynamicVC {
			t.Errorf("plan: %+v err: %v", plan, err)
			return
		}
		transfer, err = nw.StartFlow(path, 1e13, netsim.FlowOptions{})
		if err != nil {
			t.Error(err)
			return
		}
		binder.Bind(plan, transfer)
	})
	eng.RunUntil(70)
	if plan.Circuit.State() != oscars.Active {
		t.Fatalf("circuit state = %v", plan.Circuit.State())
	}
	eng.MustAt(71, func() {
		if err := engine.idc.Cancel(plan.Circuit); err != nil {
			t.Error(err)
		}
	})
	eng.RunUntil(72)
	// Flow still runs, now best-effort (alone: full line rate).
	if transfer.Done() {
		t.Fatal("transfer should still be running")
	}
	if got := transfer.Rate(); math.Abs(got-10e9) > 1e3 {
		t.Errorf("post-release rate = %v, want line rate (best effort, alone)", got)
	}
}

func TestBinderIgnoresIPPlans(t *testing.T) {
	_, nw, engine, binder, path := buildHybridWorld(t)
	plan, err := engine.Decide("src", "dst", 1e6, 0) // tiny: IP-routed
	if err != nil {
		t.Fatal(err)
	}
	if plan.Service != IPRouted {
		t.Fatalf("plan = %+v", plan)
	}
	f, err := nw.StartFlow(path, 1e6, netsim.FlowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := binder.Bind(plan, f); err != nil {
		t.Errorf("IP plan bind should be a no-op: %v", err)
	}
	if err := binder.Bind(nil, f); err == nil {
		t.Error("nil plan should fail")
	}
	if err := binder.Bind(plan, nil); err == nil {
		t.Error("nil flow should fail")
	}
}
