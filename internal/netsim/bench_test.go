package netsim

import (
	"math/rand"
	"testing"

	"gftpvc/internal/simclock"
	"gftpvc/internal/topo"
)

// BenchmarkManyFlows measures a full simulation of n concurrent flows on
// one path: arrival, max-min reallocation on every event, completion.
func benchFlows(b *testing.B, n int) {
	tp := topo.New()
	for _, id := range []topo.NodeID{"a", "b", "c"} {
		tp.AddNode(id, topo.Host)
	}
	tp.AddDuplex("a", "b", 10e9, 0.001)
	tp.AddDuplex("b", "c", 10e9, 0.001)
	path, err := tp.ShortestPath("a", "c")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := simclock.New()
		nw := New(eng, tp)
		rng := rand.New(rand.NewSource(int64(i)))
		done := 0
		for j := 0; j < n; j++ {
			at := simclock.Time(rng.Float64() * 10)
			size := 1e8 + rng.Float64()*1e9
			eng.MustAt(at, func() {
				_, err := nw.StartFlow(path, size, FlowOptions{
					OnDone: func(*Flow, simclock.Time) { done++ },
				})
				if err != nil {
					b.Error(err)
				}
			})
		}
		eng.Run()
		if done != n {
			b.Fatalf("completed %d of %d", done, n)
		}
	}
}

func BenchmarkFlows100(b *testing.B)  { benchFlows(b, 100) }
func BenchmarkFlows1000(b *testing.B) { benchFlows(b, 1000) }
