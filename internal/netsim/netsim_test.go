package netsim

import (
	"math"
	"testing"

	"gftpvc/internal/simclock"
	"gftpvc/internal/topo"
)

// line builds a 3-node chain a-b-c with the given capacity.
func line(t *testing.T, capBps float64) (*topo.Topology, topo.Path) {
	t.Helper()
	tp := topo.New()
	for _, id := range []topo.NodeID{"a", "b", "c"} {
		if _, err := tp.AddNode(id, topo.Host); err != nil {
			t.Fatal(err)
		}
	}
	if err := tp.AddDuplex("a", "b", capBps, 0.001); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddDuplex("b", "c", capBps, 0.001); err != nil {
		t.Fatal(err)
	}
	p, err := tp.ShortestPath("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	return tp, p
}

func TestSingleFlowFullCapacity(t *testing.T) {
	eng := simclock.New()
	tp, path := line(t, 1e9) // 1 Gbps
	nw := New(eng, tp)
	var doneAt simclock.Time
	f, err := nw.StartFlow(path, 125e6, FlowOptions{ // 125 MB = 1 Gbit
		OnDone: func(_ *Flow, at simclock.Time) { doneAt = at },
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Rate() != 1e9 {
		t.Errorf("rate = %v, want 1e9", f.Rate())
	}
	eng.Run()
	if !f.Done() {
		t.Fatal("flow did not complete")
	}
	if math.Abs(float64(doneAt)-1.0) > 1e-6 {
		t.Errorf("completed at %v, want 1s", doneAt)
	}
	if math.Abs(f.ThroughputBps()-1e9) > 1 {
		t.Errorf("throughput = %v, want 1e9", f.ThroughputBps())
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	eng := simclock.New()
	tp, path := line(t, 1e9)
	nw := New(eng, tp)
	f1, _ := nw.StartFlow(path, 125e6, FlowOptions{})
	f2, _ := nw.StartFlow(path, 125e6, FlowOptions{})
	if f1.Rate() != 5e8 || f2.Rate() != 5e8 {
		t.Errorf("rates = %v, %v; want 5e8 each", f1.Rate(), f2.Rate())
	}
	eng.Run()
	// Both finish at 2s (each got half rate throughout).
	if math.Abs(float64(f1.End())-2.0) > 1e-6 || math.Abs(float64(f2.End())-2.0) > 1e-6 {
		t.Errorf("ends = %v, %v; want 2s", f1.End(), f2.End())
	}
}

func TestRateCapRespected(t *testing.T) {
	eng := simclock.New()
	tp, path := line(t, 1e9)
	nw := New(eng, tp)
	f1, _ := nw.StartFlow(path, 125e6, FlowOptions{RateCapBps: 2e8})
	f2, _ := nw.StartFlow(path, 125e6, FlowOptions{})
	if f1.Rate() != 2e8 {
		t.Errorf("capped flow rate = %v, want 2e8", f1.Rate())
	}
	// Max-min gives the uncapped flow the rest.
	if math.Abs(f2.Rate()-8e8) > 1 {
		t.Errorf("uncapped flow rate = %v, want 8e8", f2.Rate())
	}
	eng.Run()
}

func TestGuaranteedFlowPriority(t *testing.T) {
	eng := simclock.New()
	tp, path := line(t, 1e9)
	nw := New(eng, tp)
	vc, _ := nw.StartFlow(path, 1e12, FlowOptions{GuaranteedBps: 7e8})
	be, _ := nw.StartFlow(path, 1e12, FlowOptions{})
	if vc.Rate() != 7e8 {
		t.Errorf("VC rate = %v, want 7e8", vc.Rate())
	}
	if math.Abs(be.Rate()-3e8) > 1 {
		t.Errorf("best-effort rate = %v, want 3e8", be.Rate())
	}
}

func TestFlowRateRisesWhenCompetitorFinishes(t *testing.T) {
	eng := simclock.New()
	tp, path := line(t, 1e9)
	nw := New(eng, tp)
	small, _ := nw.StartFlow(path, 62.5e6, FlowOptions{}) // 0.5 Gbit
	big, _ := nw.StartFlow(path, 250e6, FlowOptions{})    // 2 Gbit
	_ = small
	eng.Run()
	// small: 0.5 Gbit at 0.5 Gbps -> done at t=1. big then runs at 1 Gbps:
	// transferred 0.5 Gbit by t=1, remaining 1.5 Gbit -> done at t=2.5.
	if math.Abs(float64(big.End())-2.5) > 1e-6 {
		t.Errorf("big flow end = %v, want 2.5", big.End())
	}
	// Average throughput 2 Gbit / 2.5 s = 0.8 Gbps.
	if math.Abs(big.ThroughputBps()-8e8) > 1e3 {
		t.Errorf("big throughput = %v, want 8e8", big.ThroughputBps())
	}
}

func TestBackgroundFlowAndStop(t *testing.T) {
	eng := simclock.New()
	tp, path := line(t, 1e9)
	nw := New(eng, tp)
	bg, err := nw.StartFlow(path, math.Inf(1), FlowOptions{RateCapBps: 4e8})
	if err != nil {
		t.Fatal(err)
	}
	fg, _ := nw.StartFlow(path, 75e6, FlowOptions{}) // 0.6 Gbit at 0.6 Gbps -> 1s
	if math.Abs(fg.Rate()-6e8) > 1 {
		t.Errorf("fg rate = %v, want 6e8", fg.Rate())
	}
	eng.Run()
	if !fg.Done() {
		t.Fatal("foreground flow did not finish")
	}
	if bg.Done() {
		t.Fatal("background flow should not finish on its own")
	}
	if err := nw.StopFlow(bg); err != nil {
		t.Fatal(err)
	}
	if nw.ActiveFlows() != 0 {
		t.Errorf("ActiveFlows = %d, want 0", nw.ActiveFlows())
	}
	if err := nw.StopFlow(bg); err == nil {
		t.Error("double StopFlow should fail")
	}
}

func TestLinkByteAccounting(t *testing.T) {
	eng := simclock.New()
	tp, path := line(t, 1e9)
	nw := New(eng, tp)
	nw.StartFlow(path, 125e6, FlowOptions{})
	eng.Run()
	for _, l := range path {
		b, err := nw.LinkBytes(l.ID)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(b-125e6) > 1 {
			t.Errorf("link %s bytes = %v, want 125e6", l.ID, b)
		}
	}
	// Reverse-direction links carried nothing.
	rev, _ := tp.ShortestPath("c", "a")
	for _, l := range rev {
		if b, _ := nw.LinkBytes(l.ID); b != 0 {
			t.Errorf("reverse link %s bytes = %v, want 0", l.ID, b)
		}
	}
	if _, err := nw.LinkBytes("nope"); err == nil {
		t.Error("unknown link should fail")
	}
}

func TestLinkBytesMidFlow(t *testing.T) {
	eng := simclock.New()
	tp, path := line(t, 1e9)
	nw := New(eng, tp)
	nw.StartFlow(path, 125e6, FlowOptions{})
	eng.RunUntil(0.5)
	b, _ := nw.LinkBytes(path[0].ID)
	if math.Abs(b-62.5e6) > 1 {
		t.Errorf("mid-flow bytes = %v, want 62.5e6", b)
	}
}

func TestSetRateCapMidFlight(t *testing.T) {
	eng := simclock.New()
	tp, path := line(t, 1e9)
	nw := New(eng, tp)
	f, _ := nw.StartFlow(path, 250e6, FlowOptions{}) // 2 Gbit
	eng.RunUntil(1)                                  // 1 Gbit moved
	if err := nw.SetRateCap(f, 5e8); err != nil {
		t.Fatal(err)
	}
	if f.Rate() != 5e8 {
		t.Errorf("rate after cap = %v, want 5e8", f.Rate())
	}
	eng.Run()
	// Remaining 1 Gbit at 0.5 Gbps -> +2s.
	if math.Abs(float64(f.End())-3.0) > 1e-6 {
		t.Errorf("end = %v, want 3.0", f.End())
	}
	if err := nw.SetRateCap(f, 1); err == nil {
		t.Error("SetRateCap on finished flow should fail")
	}
	if err := nw.SetRateCap(nil, 1); err == nil {
		t.Error("SetRateCap(nil) should fail")
	}
}

func TestSetGuaranteeMidFlight(t *testing.T) {
	eng := simclock.New()
	tp, path := line(t, 1e9)
	nw := New(eng, tp)
	vc, _ := nw.StartFlow(path, 1e12, FlowOptions{}) // starts best-effort
	be, _ := nw.StartFlow(path, 1e12, FlowOptions{})
	if vc.Rate() != 5e8 || be.Rate() != 5e8 {
		t.Fatalf("initial shares = %v, %v", vc.Rate(), be.Rate())
	}
	// The circuit comes up: the flow is upgraded to a 7e8 guarantee.
	eng.RunUntil(60)
	if err := nw.SetGuarantee(vc, 7e8); err != nil {
		t.Fatal(err)
	}
	if vc.Rate() != 7e8 {
		t.Errorf("guaranteed rate = %v, want 7e8", vc.Rate())
	}
	if math.Abs(be.Rate()-3e8) > 1 {
		t.Errorf("best-effort rate = %v, want 3e8", be.Rate())
	}
	// Circuit released: back to fair sharing.
	if err := nw.SetGuarantee(vc, 0); err != nil {
		t.Fatal(err)
	}
	if vc.Rate() != 5e8 || be.Rate() != 5e8 {
		t.Errorf("post-release shares = %v, %v", vc.Rate(), be.Rate())
	}
	if err := nw.SetGuarantee(vc, -1); err == nil {
		t.Error("negative guarantee should fail")
	}
	if err := nw.SetGuarantee(nil, 1); err == nil {
		t.Error("nil flow should fail")
	}
}

func TestStartFlowValidation(t *testing.T) {
	eng := simclock.New()
	tp, path := line(t, 1e9)
	nw := New(eng, tp)
	if _, err := nw.StartFlow(nil, 1, FlowOptions{}); err == nil {
		t.Error("empty path should fail")
	}
	if _, err := nw.StartFlow(path, 0, FlowOptions{}); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := nw.StartFlow(path, 1, FlowOptions{RateCapBps: -1}); err == nil {
		t.Error("negative cap should fail")
	}
	// A path over links from a different topology must be rejected.
	tp2, path2 := line(t, 1e9)
	_ = tp2
	other := topo.New()
	other.AddNode("x", topo.Host)
	nw2 := New(eng, other)
	if _, err := nw2.StartFlow(path2, 1, FlowOptions{}); err == nil {
		t.Error("foreign path should fail")
	}
}

func TestManyFlowsConserveCapacity(t *testing.T) {
	eng := simclock.New()
	tp, path := line(t, 1e9)
	nw := New(eng, tp)
	var flows []*Flow
	for i := 0; i < 20; i++ {
		f, err := nw.StartFlow(path, 1e9, FlowOptions{})
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
	}
	total := 0.0
	for _, f := range flows {
		total += f.Rate()
	}
	if math.Abs(total-1e9) > 1e3 {
		t.Errorf("sum of rates = %v, want 1e9", total)
	}
	// All equal shares.
	for _, f := range flows {
		if math.Abs(f.Rate()-5e7) > 1e3 {
			t.Errorf("rate = %v, want 5e7", f.Rate())
		}
	}
}

func TestGuaranteeCappedByLineRate(t *testing.T) {
	eng := simclock.New()
	tp, path := line(t, 1e9)
	nw := New(eng, tp)
	// Guarantee above line rate: flow gets at most the line rate.
	f, _ := nw.StartFlow(path, 1e12, FlowOptions{GuaranteedBps: 5e9})
	if f.Rate() != 1e9 {
		t.Errorf("rate = %v, want 1e9 (line rate)", f.Rate())
	}
}

func TestDisjointFlowsDoNotInterfere(t *testing.T) {
	eng := simclock.New()
	tp := topo.New()
	for _, id := range []topo.NodeID{"a", "b", "c", "d"} {
		tp.AddNode(id, topo.Host)
	}
	tp.AddDuplex("a", "b", 1e9, 0.001)
	tp.AddDuplex("c", "d", 1e9, 0.001)
	nw := New(eng, tp)
	p1, _ := tp.ShortestPath("a", "b")
	p2, _ := tp.ShortestPath("c", "d")
	f1, _ := nw.StartFlow(p1, 1e9, FlowOptions{})
	f2, _ := nw.StartFlow(p2, 1e9, FlowOptions{})
	if f1.Rate() != 1e9 || f2.Rate() != 1e9 {
		t.Errorf("disjoint flows throttled: %v, %v", f1.Rate(), f2.Rate())
	}
}
