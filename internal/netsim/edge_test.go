package netsim

import (
	"math"
	"testing"

	"gftpvc/internal/simclock"
)

// TestGuaranteesExceedLineRate starts two guaranteed flows whose combined
// guarantee is far above the hop line rate. The first (lower-ID) flow is
// clamped to the line rate, the second gets the zero residual, and a
// best-effort flow on the same path is starved — all without maxMin
// hanging on the zero-residual link.
func TestGuaranteesExceedLineRate(t *testing.T) {
	eng := simclock.New()
	tp, path := line(t, 1e9)
	nw := New(eng, tp)
	g1, err := nw.StartFlow(path, math.Inf(1), FlowOptions{GuaranteedBps: 5e9})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := nw.StartFlow(path, math.Inf(1), FlowOptions{GuaranteedBps: 5e9})
	if err != nil {
		t.Fatal(err)
	}
	be, err := nw.StartFlow(path, math.Inf(1), FlowOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g1.Rate() != 1e9 {
		t.Errorf("first guaranteed rate = %v, want 1e9 (clamped to line rate)", g1.Rate())
	}
	if g2.Rate() != 0 {
		t.Errorf("second guaranteed rate = %v, want 0 (residual exhausted)", g2.Rate())
	}
	if be.Rate() != 0 {
		t.Errorf("best-effort rate = %v, want 0 on saturated path", be.Rate())
	}
	// Releasing the first guarantee hands the line rate to the second.
	if err := nw.StopFlow(g1); err != nil {
		t.Fatal(err)
	}
	if g2.Rate() != 1e9 {
		t.Errorf("after stop, second guaranteed rate = %v, want 1e9", g2.Rate())
	}
}

// TestStopFlowMidProgressiveFill stops one of three equal sharers partway
// through and checks that (a) the survivors' rates rise immediately,
// (b) the stopped flow's partial bytes stay credited to the link counter.
func TestStopFlowMidProgressiveFill(t *testing.T) {
	eng := simclock.New()
	tp, path := line(t, 900e6)
	nw := New(eng, tp)
	var flows [3]*Flow
	for i := range flows {
		f, err := nw.StartFlow(path, 1e12, FlowOptions{}) // large enough to outlast the test
		if err != nil {
			t.Fatal(err)
		}
		flows[i] = f
	}
	for i, f := range flows {
		if math.Abs(f.Rate()-300e6) > 1 {
			t.Fatalf("flow %d rate = %v, want 300e6", i, f.Rate())
		}
	}
	eng.MustAt(4, func() {
		if err := nw.StopFlow(flows[1]); err != nil {
			t.Error(err)
		}
	})
	eng.RunUntil(4)
	if got := flows[1].Transferred(); math.Abs(got-150e6) > 1 {
		t.Errorf("stopped flow transferred %v bytes, want 150e6", got)
	}
	for _, i := range []int{0, 2} {
		if math.Abs(flows[i].Rate()-450e6) > 1 {
			t.Errorf("survivor flow %d rate = %v, want 450e6", i, flows[i].Rate())
		}
	}
	eng.RunUntil(10)
	// Link counter: 3 flows x 150 MB up to t=4, then 2 x 337.5 MB to t=10.
	want := 3*150e6 + 2*337.5e6
	got, err := nw.LinkBytes(path[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1 {
		t.Errorf("link bytes = %v, want %v", got, want)
	}
}

// TestZeroResidualLinkRecovery pins the maxMin termination behavior when
// a link's residual is exactly zero, and checks that a starved flow
// recovers and completes once capacity is released.
func TestZeroResidualLinkRecovery(t *testing.T) {
	eng := simclock.New()
	tp, path := line(t, 1e9)
	nw := New(eng, tp)
	g, err := nw.StartFlow(path, math.Inf(1), FlowOptions{GuaranteedBps: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	var doneAt simclock.Time
	be, err := nw.StartFlow(path, 125e6, FlowOptions{ // 1 Gbit
		OnDone: func(_ *Flow, at simclock.Time) { doneAt = at },
	})
	if err != nil {
		t.Fatal(err)
	}
	if be.Rate() != 0 {
		t.Fatalf("best-effort rate = %v, want 0 while guarantee holds the link", be.Rate())
	}
	eng.MustAt(5, func() {
		if err := nw.SetGuarantee(g, 0); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if !be.Done() {
		t.Fatal("starved flow never completed after capacity was released")
	}
	// After release both flows share 1 Gbps; 1 Gbit at 500 Mbps = 2 s.
	if math.Abs(float64(doneAt)-7.0) > 1e-6 {
		t.Errorf("completed at %v, want 7s", doneAt)
	}
	if got := be.Transferred(); math.Abs(got-125e6) > 1 {
		t.Errorf("transferred %v, want 125e6", got)
	}
}

// TestCompletionOrderDeterministic replays the same randomized scenario
// several times and requires the exact completion sequence — both flow
// order and bit-exact times — to repeat.
func TestCompletionOrderDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		sc := buildScenario(seed)
		firstC, firstE, firstB := runNew(t, sc)
		if len(firstC) == 0 {
			t.Fatalf("seed %d: scenario produced no completions", seed)
		}
		for rep := 0; rep < 3; rep++ {
			c, e, b := runNew(t, sc)
			if len(c) != len(firstC) {
				t.Fatalf("seed %d rep %d: %d completions, first run had %d", seed, rep, len(c), len(firstC))
			}
			for i := range c {
				if c[i] != firstC[i] {
					t.Fatalf("seed %d rep %d: completion %d = %+v, first run %+v", seed, rep, i, c[i], firstC[i])
				}
			}
			for i := range e {
				if e[i] != firstE[i] {
					t.Fatalf("seed %d rep %d: flow %d end %v vs %v", seed, rep, i, e[i], firstE[i])
				}
			}
			for id, want := range firstB {
				if b[id] != want {
					t.Fatalf("seed %d rep %d: link %s bytes %v vs %v", seed, rep, id, b[id], want)
				}
			}
		}
	}
}
