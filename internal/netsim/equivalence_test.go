package netsim

// This file pins the rewritten allocation-free allocator to the behavior
// of the original allocator (the pre-optimization netsim: fresh residual
// maps, id slices and frozen/capRemaining scratch per event, full-scan
// completion scheduling with a generation counter). refNetwork below is a
// faithful port of that implementation, with the one unspecified detail —
// map iteration order — fixed to ascending flow ID so that floating-point
// accumulation order is well defined. The equivalence tests assert that
// randomized multi-flow scenarios produce bit-identical flow completion
// times and link byte counters under both engines.

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"gftpvc/internal/simclock"
	"gftpvc/internal/topo"
)

type refFlow struct {
	id             FlowID
	path           topo.Path
	sizeBytes      float64
	remainingBytes float64
	rateCapBps     float64
	guaranteedBps  float64
	rate           float64
	start          simclock.Time
	lastUpdate     simclock.Time
	end            simclock.Time
	done           bool
	onDone         func(*refFlow, simclock.Time)
}

type refLinkState struct {
	link       *topo.Link
	bytesTotal float64
	flows      map[FlowID]*refFlow
}

type refNetwork struct {
	eng       *simclock.Engine
	flows     map[FlowID]*refFlow
	links     map[topo.LinkID]*refLinkState
	nextID    FlowID
	recalcGen uint64
}

func newRefNetwork(eng *simclock.Engine, tp *topo.Topology) *refNetwork {
	n := &refNetwork{
		eng:   eng,
		flows: make(map[FlowID]*refFlow),
		links: make(map[topo.LinkID]*refLinkState),
	}
	for _, l := range tp.Links() {
		n.links[l.ID] = &refLinkState{link: l, flows: make(map[FlowID]*refFlow)}
	}
	return n
}

func (n *refNetwork) sortedFlows() []*refFlow {
	ids := make([]FlowID, 0, len(n.flows))
	for id := range n.flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*refFlow, len(ids))
	for i, id := range ids {
		out[i] = n.flows[id]
	}
	return out
}

func (n *refNetwork) linkBytes(id topo.LinkID) float64 {
	ls := n.links[id]
	total := ls.bytesTotal
	now := n.eng.Now()
	ids := make([]FlowID, 0, len(ls.flows))
	for fid := range ls.flows {
		ids = append(ids, fid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, fid := range ids {
		f := ls.flows[fid]
		total += f.rate / 8 * float64(now.Sub(f.lastUpdate))
	}
	return total
}

func (n *refNetwork) startFlow(path topo.Path, sizeBytes float64, opts FlowOptions, onDone func(*refFlow, simclock.Time)) *refFlow {
	n.settle()
	n.nextID++
	f := &refFlow{
		id:             n.nextID,
		path:           path,
		sizeBytes:      sizeBytes,
		remainingBytes: sizeBytes,
		rateCapBps:     opts.RateCapBps,
		guaranteedBps:  opts.GuaranteedBps,
		start:          n.eng.Now(),
		lastUpdate:     n.eng.Now(),
		onDone:         onDone,
	}
	n.flows[f.id] = f
	for _, l := range path {
		n.links[l.ID].flows[f.id] = f
	}
	n.reallocate()
	return f
}

func (n *refNetwork) stopFlow(f *refFlow) bool {
	if f == nil || n.flows[f.id] != f {
		return false
	}
	n.settle()
	n.remove(f)
	f.done = true
	f.end = n.eng.Now()
	n.reallocate()
	return true
}

func (n *refNetwork) setRateCap(f *refFlow, capBps float64) bool {
	if f == nil || n.flows[f.id] != f {
		return false
	}
	n.settle()
	f.rateCapBps = capBps
	n.reallocate()
	return true
}

func (n *refNetwork) setGuarantee(f *refFlow, guaranteedBps float64) bool {
	if f == nil || n.flows[f.id] != f {
		return false
	}
	n.settle()
	f.guaranteedBps = guaranteedBps
	n.reallocate()
	return true
}

func (n *refNetwork) settle() {
	now := n.eng.Now()
	for _, f := range n.sortedFlows() {
		dt := float64(now.Sub(f.lastUpdate))
		if dt <= 0 {
			f.lastUpdate = now
			continue
		}
		moved := f.rate / 8 * dt
		if !math.IsInf(f.remainingBytes, 1) {
			if moved > f.remainingBytes {
				moved = f.remainingBytes
			}
			f.remainingBytes -= moved
		}
		for _, l := range f.path {
			n.links[l.ID].bytesTotal += moved
		}
		f.lastUpdate = now
	}
}

func (n *refNetwork) remove(f *refFlow) {
	delete(n.flows, f.id)
	for _, l := range f.path {
		delete(n.links[l.ID].flows, f.id)
	}
}

func (n *refNetwork) reallocate() {
	residual := make(map[topo.LinkID]float64, len(n.links))
	for id, ls := range n.links {
		residual[id] = ls.link.CapacityBps
	}
	var bestEffort []*refFlow
	for _, f := range n.sortedFlows() {
		if f.guaranteedBps > 0 {
			r := f.guaranteedBps
			if f.rateCapBps > 0 && f.rateCapBps < r {
				r = f.rateCapBps
			}
			for _, l := range f.path {
				if avail := residual[l.ID]; r > avail {
					r = avail
				}
			}
			f.rate = r
			for _, l := range f.path {
				residual[l.ID] -= r
			}
		} else {
			f.rate = 0
			bestEffort = append(bestEffort, f)
		}
	}
	n.maxMin(bestEffort, residual)
	n.scheduleCompletion()
}

func (n *refNetwork) maxMin(flows []*refFlow, residual map[topo.LinkID]float64) {
	if len(flows) == 0 {
		return
	}
	frozen := make([]bool, len(flows))
	count := make(map[topo.LinkID]int)
	for _, f := range flows {
		for _, l := range f.path {
			count[l.ID]++
		}
	}
	capRemaining := make([]float64, len(flows))
	for i, f := range flows {
		if f.rateCapBps > 0 {
			capRemaining[i] = f.rateCapBps
		} else {
			capRemaining[i] = math.Inf(1)
		}
	}
	unfrozen := len(flows)
	for unfrozen > 0 {
		share := math.Inf(1)
		for id, c := range count {
			if c <= 0 {
				continue
			}
			if s := residual[id] / float64(c); s < share {
				share = s
			}
		}
		for i := range flows {
			if !frozen[i] && capRemaining[i] < share {
				share = capRemaining[i]
			}
		}
		if math.IsInf(share, 1) || share < 0 {
			break
		}
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			f.rate += share
			capRemaining[i] -= share
			for _, l := range f.path {
				residual[l.ID] -= share
			}
		}
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			saturated := capRemaining[i] <= eps
			if !saturated {
				for _, l := range f.path {
					if residual[l.ID] <= eps*f.rate+eps {
						saturated = true
						break
					}
				}
			}
			if saturated {
				frozen[i] = true
				unfrozen--
				for _, l := range f.path {
					count[l.ID]--
				}
			}
		}
		if share <= eps {
			for i := range flows {
				if !frozen[i] {
					frozen[i] = true
					unfrozen--
				}
			}
		}
	}
}

func (n *refNetwork) scheduleCompletion() {
	n.recalcGen++
	gen := n.recalcGen
	soonest := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 || math.IsInf(f.remainingBytes, 1) {
			continue
		}
		t := f.remainingBytes * 8 / f.rate
		if t < soonest {
			soonest = t
		}
	}
	if math.IsInf(soonest, 1) {
		return
	}
	n.eng.MustAfter(simclock.Duration(soonest), func() {
		if gen != n.recalcGen {
			return
		}
		n.completeFinished()
	})
}

func (n *refNetwork) completeFinished() {
	n.settle()
	now := n.eng.Now()
	var finished []*refFlow
	for _, f := range n.flows {
		if f.remainingBytes <= 0.5 {
			finished = append(finished, f)
		}
	}
	sort.Slice(finished, func(i, j int) bool { return finished[i].id < finished[j].id })
	for _, f := range finished {
		f.remainingBytes = 0
		f.done = true
		f.end = now
		n.remove(f)
	}
	n.reallocate()
	for _, f := range finished {
		if f.onDone != nil {
			f.onDone(f, now)
		}
	}
}

// --- scripted scenarios driven against both engines ---

const (
	opStart = iota
	opStop
	opSetCap
	opSetGuarantee
)

type scriptOp struct {
	at        simclock.Time
	kind      int
	flow      int // flow index for stop/setcap/setguarantee
	path      int // path index for start
	size      float64
	cap       float64
	guarantee float64
}

type scenario struct {
	tp    *topo.Topology
	paths []topo.Path
	ops   []scriptOp
}

// buildScenario makes a topology with two chains sharing a middle link
// plus a disjoint pair, and a randomized operation script over it.
func buildScenario(seed int64) scenario {
	rng := rand.New(rand.NewSource(seed))
	tp := topo.New()
	for _, id := range []topo.NodeID{"a", "b", "c", "d", "x", "y"} {
		tp.AddNode(id, topo.Host)
	}
	tp.AddDuplex("a", "b", (1+rng.Float64()*9)*1e9, 0.001)
	tp.AddDuplex("b", "c", (1+rng.Float64()*9)*1e9, 0.002)
	tp.AddDuplex("c", "d", (1+rng.Float64()*9)*1e9, 0.001)
	tp.AddDuplex("x", "y", (1+rng.Float64()*4)*1e9, 0.001)
	var paths []topo.Path
	for _, pair := range [][2]topo.NodeID{
		{"a", "c"}, {"b", "d"}, {"a", "d"}, {"c", "a"}, {"x", "y"},
	} {
		p, err := tp.ShortestPath(pair[0], pair[1])
		if err != nil {
			panic(err)
		}
		paths = append(paths, p)
	}
	nFlows := 15 + rng.Intn(20)
	var ops []scriptOp
	for i := 0; i < nFlows; i++ {
		op := scriptOp{
			at:   simclock.Time(rng.Float64() * 40),
			kind: opStart,
			flow: i,
			path: rng.Intn(len(paths)),
			size: 1e8 + rng.Float64()*8e9,
		}
		if rng.Float64() < 0.15 {
			op.size = math.Inf(1) // background stream
		}
		if rng.Float64() < 0.35 {
			op.cap = 1e8 + rng.Float64()*2e9
		}
		if rng.Float64() < 0.25 {
			op.guarantee = 1e8 + rng.Float64()*8e8
		}
		ops = append(ops, op)
		// Mid-flight churn: stops, cap changes, guarantee up/downgrades.
		if rng.Float64() < 0.4 {
			ops = append(ops, scriptOp{
				at:   op.at + simclock.Time(rng.Float64()*30),
				kind: opSetCap, flow: i, cap: rng.Float64() * 3e9,
			})
		}
		if rng.Float64() < 0.3 {
			ops = append(ops, scriptOp{
				at:   op.at + simclock.Time(rng.Float64()*30),
				kind: opSetGuarantee, flow: i, guarantee: rng.Float64() * 1e9,
			})
		}
		if math.IsInf(op.size, 1) || rng.Float64() < 0.15 {
			ops = append(ops, scriptOp{
				at:   op.at + simclock.Time(5 + rng.Float64()*60),
				kind: opStop, flow: i,
			})
		}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].at < ops[j].at })
	return scenario{tp: tp, paths: paths, ops: ops}
}

type completionRecord struct {
	flow int
	at   simclock.Time
}

// runNew drives the optimized Network through the script.
func runNew(t *testing.T, sc scenario) ([]completionRecord, []simclock.Time, map[topo.LinkID]float64) {
	t.Helper()
	eng := simclock.New()
	nw := New(eng, sc.tp)
	flows := make([]*Flow, len(sc.ops))
	ends := make([]simclock.Time, len(sc.ops))
	var completions []completionRecord
	for _, op := range sc.ops {
		op := op
		eng.MustAt(op.at, func() {
			switch op.kind {
			case opStart:
				idx := op.flow
				f, err := nw.StartFlow(sc.paths[op.path], op.size, FlowOptions{
					RateCapBps:    op.cap,
					GuaranteedBps: op.guarantee,
					OnDone: func(f *Flow, at simclock.Time) {
						completions = append(completions, completionRecord{idx, at})
						ends[idx] = at
					},
				})
				if err != nil {
					t.Error(err)
					return
				}
				flows[idx] = f
			case opStop:
				if f := flows[op.flow]; f != nil {
					nw.StopFlow(f) // error (already done) intentionally ignored
				}
			case opSetCap:
				if f := flows[op.flow]; f != nil {
					nw.SetRateCap(f, op.cap)
				}
			case opSetGuarantee:
				if f := flows[op.flow]; f != nil {
					nw.SetGuarantee(f, op.guarantee)
				}
			}
		})
	}
	eng.Run()
	bytes := map[topo.LinkID]float64{}
	for _, l := range sc.tp.Links() {
		b, err := nw.LinkBytes(l.ID)
		if err != nil {
			t.Fatal(err)
		}
		bytes[l.ID] = b
	}
	return completions, ends, bytes
}

// runRef drives the reference (original-algorithm) network through the
// same script.
func runRef(t *testing.T, sc scenario) ([]completionRecord, []simclock.Time, map[topo.LinkID]float64) {
	t.Helper()
	eng := simclock.New()
	nw := newRefNetwork(eng, sc.tp)
	flows := make([]*refFlow, len(sc.ops))
	ends := make([]simclock.Time, len(sc.ops))
	var completions []completionRecord
	for _, op := range sc.ops {
		op := op
		eng.MustAt(op.at, func() {
			switch op.kind {
			case opStart:
				idx := op.flow
				flows[idx] = nw.startFlow(sc.paths[op.path], op.size, FlowOptions{
					RateCapBps:    op.cap,
					GuaranteedBps: op.guarantee,
				}, func(_ *refFlow, at simclock.Time) {
					completions = append(completions, completionRecord{idx, at})
					ends[idx] = at
				})
			case opStop:
				if f := flows[op.flow]; f != nil {
					nw.stopFlow(f)
				}
			case opSetCap:
				if f := flows[op.flow]; f != nil {
					nw.setRateCap(f, op.cap)
				}
			case opSetGuarantee:
				if f := flows[op.flow]; f != nil {
					nw.setGuarantee(f, op.guarantee)
				}
			}
		})
	}
	eng.Run()
	bytes := map[topo.LinkID]float64{}
	for _, l := range sc.tp.Links() {
		bytes[l.ID] = nw.linkBytes(l.ID)
	}
	return completions, ends, bytes
}

// TestAllocatorEquivalence asserts that the optimized allocator and the
// original algorithm produce bit-identical completion times, completion
// ordering, and link byte counters on randomized scenarios with arrivals,
// departures, caps, guarantees, and mid-flight churn.
func TestAllocatorEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		sc := buildScenario(seed)
		gotC, gotE, gotB := runNew(t, sc)
		wantC, wantE, wantB := runRef(t, sc)
		if len(gotC) != len(wantC) {
			t.Fatalf("seed %d: %d completions, reference %d", seed, len(gotC), len(wantC))
		}
		for i := range wantC {
			if gotC[i] != wantC[i] {
				t.Errorf("seed %d: completion %d = flow %d at %v, reference flow %d at %v",
					seed, i, gotC[i].flow, gotC[i].at, wantC[i].flow, wantC[i].at)
			}
		}
		for i := range wantE {
			if gotE[i] != wantE[i] {
				t.Errorf("seed %d: flow %d end = %.17g, reference %.17g",
					seed, i, float64(gotE[i]), float64(wantE[i]))
			}
		}
		for id, want := range wantB {
			if got := gotB[id]; got != want {
				t.Errorf("seed %d: link %s bytes = %.17g, reference %.17g", seed, id, got, want)
			}
		}
		if t.Failed() {
			t.Fatalf("seed %d diverged", seed)
		}
	}
}

// TestAllocatorEquivalenceRates spot-checks that instantaneous rate
// assignments also agree mid-flight, not just the end state.
func TestAllocatorEquivalenceRates(t *testing.T) {
	sc := buildScenario(99)
	engA := simclock.New()
	nwA := New(engA, sc.tp)
	engB := simclock.New()
	nwB := newRefNetwork(engB, sc.tp)
	flowsA := make([]*Flow, len(sc.ops))
	flowsB := make([]*refFlow, len(sc.ops))
	for _, op := range sc.ops {
		op := op
		if op.kind != opStart {
			continue
		}
		engA.MustAt(op.at, func() {
			f, err := nwA.StartFlow(sc.paths[op.path], op.size, FlowOptions{
				RateCapBps: op.cap, GuaranteedBps: op.guarantee,
			})
			if err != nil {
				t.Error(err)
				return
			}
			flowsA[op.flow] = f
		})
		engB.MustAt(op.at, func() {
			flowsB[op.flow] = nwB.startFlow(sc.paths[op.path], op.size, FlowOptions{
				RateCapBps: op.cap, GuaranteedBps: op.guarantee,
			}, nil)
		})
	}
	for _, deadline := range []simclock.Time{10, 20, 30, 50, 80} {
		engA.RunUntil(deadline)
		engB.RunUntil(deadline)
		for i := range flowsA {
			if flowsA[i] == nil || flowsB[i] == nil {
				continue
			}
			if flowsA[i].rate != flowsB[i].rate {
				t.Fatalf("t=%v flow %d: rate %.17g, reference %.17g",
					deadline, i, flowsA[i].rate, flowsB[i].rate)
			}
			if flowsA[i].remainingBytes != flowsB[i].remainingBytes {
				t.Fatalf("t=%v flow %d: remaining %.17g, reference %.17g",
					deadline, i, flowsA[i].remainingBytes, flowsB[i].remainingBytes)
			}
		}
	}
}
