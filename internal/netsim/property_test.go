package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gftpvc/internal/simclock"
	"gftpvc/internal/topo"
)

// buildRandomChain creates a 2-4 hop chain with random capacities.
func buildRandomChain(rng *rand.Rand) (*topo.Topology, topo.Path) {
	tp := topo.New()
	hops := 2 + rng.Intn(3)
	var nodes []topo.NodeID
	for i := 0; i <= hops; i++ {
		id := topo.NodeID(string(rune('a' + i)))
		tp.AddNode(id, topo.Host)
		nodes = append(nodes, id)
	}
	for i := 0; i < hops; i++ {
		cap := (1 + rng.Float64()*9) * 1e9
		tp.AddDuplex(nodes[i], nodes[i+1], cap, 0.001)
	}
	p, _ := tp.ShortestPath(nodes[0], nodes[len(nodes)-1])
	return tp, p
}

// Property: every finite flow completes, moves exactly its size, and
// link byte counters equal the sum of completed flow sizes.
func TestByteConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := simclock.New()
		tp, path := buildRandomChain(rng)
		nw := New(eng, tp)
		n := 3 + rng.Intn(15)
		totalBytes := 0.0
		done := 0
		for i := 0; i < n; i++ {
			size := 1e6 + rng.Float64()*5e9
			totalBytes += size
			at := simclock.Time(rng.Float64() * 50)
			var opts FlowOptions
			if rng.Float64() < 0.3 {
				opts.RateCapBps = 1e8 + rng.Float64()*2e9
			}
			if rng.Float64() < 0.2 {
				opts.GuaranteedBps = 1e8 + rng.Float64()*5e8
			}
			opts.OnDone = func(*Flow, simclock.Time) { done++ }
			eng.MustAt(at, func() {
				if _, err := nw.StartFlow(path, size, opts); err != nil {
					t.Error(err)
				}
			})
		}
		eng.Run()
		if done != n {
			return false
		}
		for _, l := range path {
			b, err := nw.LinkBytes(l.ID)
			if err != nil {
				return false
			}
			if math.Abs(b-totalBytes) > 1+totalBytes*1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: at the moment flows are admitted, the summed allocation on
// each link never exceeds its capacity.
func TestCapacityRespectedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := simclock.New()
		tp, path := buildRandomChain(rng)
		nw := New(eng, tp)
		var flows []*Flow
		ok := true
		check := func() {
			perLink := map[topo.LinkID]float64{}
			for _, fl := range flows {
				if fl.Done() {
					continue
				}
				for _, l := range fl.Path {
					perLink[l.ID] += fl.Rate()
				}
			}
			for id, sum := range perLink {
				if sum > linkCap(tp, id)*(1+1e-6) {
					ok = false
				}
			}
		}
		for i := 0; i < 12; i++ {
			at := simclock.Time(rng.Float64() * 20)
			size := 1e8 + rng.Float64()*1e10
			eng.MustAt(at, func() {
				fl, err := nw.StartFlow(path, size, FlowOptions{})
				if err != nil {
					ok = false
					return
				}
				flows = append(flows, fl)
				check()
			})
		}
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func linkCap(tp *topo.Topology, id topo.LinkID) float64 {
	for _, l := range tp.Links() {
		if l.ID == id {
			return l.CapacityBps
		}
	}
	return 0
}

// Property: work conservation on the bottleneck — with at least one
// uncapped, non-guaranteed flow active, the path's first link is fully
// allocated or the flow is bottlenecked elsewhere.
func TestWorkConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		eng := simclock.New()
		tp, path := buildRandomChain(rng)
		nw := New(eng, tp)
		n := 1 + rng.Intn(6)
		var flows []*Flow
		for i := 0; i < n; i++ {
			fl, err := nw.StartFlow(path, 1e12, FlowOptions{})
			if err != nil {
				t.Fatal(err)
			}
			flows = append(flows, fl)
		}
		total := 0.0
		for _, fl := range flows {
			total += fl.Rate()
		}
		if math.Abs(total-path.BottleneckBps()) > 1e3 {
			t.Fatalf("trial %d: uncapped flows leave bottleneck unsaturated: %v of %v",
				trial, total, path.BottleneckBps())
		}
	}
}
