// Package netsim is a discrete-event, fluid-flow wide-area network
// simulator. Flows traverse a topo.Path and share link capacity by
// progressive-filling max–min fairness; virtual-circuit flows receive a
// reserved (guaranteed) rate ahead of best-effort flows, modelling the
// per-VC virtual queues OSCARS configures on router interfaces. Every
// directed link accumulates a byte counter, which internal/snmp samples in
// 30-second bins exactly as ESnet's SNMP collection does.
//
// A fluid-flow model (rates, not packets) is the standard substitution for
// packet-level simulation when the quantities of interest are transfer
// throughput, link utilization and byte counts — which is all the paper's
// analyses consume. Packet losses in these networks are rare (one of the
// paper's findings), so the fluid approximation is faithful.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"gftpvc/internal/simclock"
	"gftpvc/internal/topo"
)

// FlowID identifies a flow within one Network.
type FlowID int64

// Flow is a data transfer (or background traffic stream) in flight.
type Flow struct {
	ID   FlowID
	Path topo.Path

	// sizeBytes is the total size; infinite for background flows.
	sizeBytes      float64
	remainingBytes float64

	// rateCapBps is a source-side cap (TCP window limit, disk rate, host
	// contention share); 0 means uncapped.
	rateCapBps float64

	// guaranteedBps is the VC reservation; 0 for best-effort flows.
	guaranteedBps float64

	rate       float64 // current allocated rate
	start      simclock.Time
	lastUpdate simclock.Time
	end        simclock.Time
	done       bool

	onDone func(*Flow, simclock.Time)
}

// Rate returns the flow's currently allocated rate in bits/second.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes left to transfer (Inf for background flows).
func (f *Flow) Remaining() float64 { return f.remainingBytes }

// Transferred returns the bytes moved so far, as of the last network event.
func (f *Flow) Transferred() float64 {
	if math.IsInf(f.sizeBytes, 1) {
		return math.Inf(1)
	}
	return f.sizeBytes - f.remainingBytes
}

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// Start returns the virtual time the flow started.
func (f *Flow) Start() simclock.Time { return f.start }

// End returns the completion time; valid only when Done.
func (f *Flow) End() simclock.Time { return f.end }

// DurationSec returns the flow duration in seconds; valid only when Done.
func (f *Flow) DurationSec() float64 { return float64(f.end.Sub(f.start)) }

// ThroughputBps returns size/duration in bits per second; valid only when
// Done and the duration is positive.
func (f *Flow) ThroughputBps() float64 {
	d := f.DurationSec()
	if !f.done || d <= 0 {
		return 0
	}
	return f.sizeBytes * 8 / d
}

// FlowOptions configures StartFlow.
type FlowOptions struct {
	// RateCapBps limits the source rate; 0 = uncapped.
	RateCapBps float64
	// GuaranteedBps is the VC reserved rate; 0 = best-effort. The caller
	// (the OSCARS layer) is responsible for having admitted the
	// reservation; the network gives the flow priority up to this rate.
	GuaranteedBps float64
	// OnDone runs when the flow completes, inside the event loop.
	OnDone func(*Flow, simclock.Time)
}

type linkState struct {
	link       *topo.Link
	bytesTotal float64 // cumulative bytes carried (all flows)
	flows      map[FlowID]*Flow
}

// Network simulates flows over a topology. All methods must be called from
// the simulation goroutine (typically from within engine events or between
// engine runs); Network is not safe for concurrent use.
type Network struct {
	eng    *simclock.Engine
	topo   *topo.Topology
	flows  map[FlowID]*Flow
	links  map[topo.LinkID]*linkState
	nextID FlowID

	recalcGen uint64 // invalidates stale completion events
}

// New creates a network simulator over the given topology and engine.
func New(eng *simclock.Engine, tp *topo.Topology) *Network {
	n := &Network{
		eng:   eng,
		topo:  tp,
		flows: make(map[FlowID]*Flow),
		links: make(map[topo.LinkID]*linkState),
	}
	for _, l := range tp.Links() {
		n.links[l.ID] = &linkState{link: l, flows: make(map[FlowID]*Flow)}
	}
	return n
}

// Engine returns the underlying event engine.
func (n *Network) Engine() *simclock.Engine { return n.eng }

// Topology returns the underlying topology.
func (n *Network) Topology() *topo.Topology { return n.topo }

// LinkBytes returns the cumulative bytes carried by the directed link, as
// of the current virtual time (integrating in-flight flows up to now).
func (n *Network) LinkBytes(id topo.LinkID) (float64, error) {
	ls := n.links[id]
	if ls == nil {
		return 0, fmt.Errorf("netsim: unknown link %s", id)
	}
	total := ls.bytesTotal
	now := n.eng.Now()
	for _, f := range ls.flows {
		total += f.rate / 8 * float64(now.Sub(f.lastUpdate))
	}
	return total, nil
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// StartFlow injects a flow of sizeBytes along path, beginning now. For a
// background stream of unbounded duration, pass math.Inf(1) as sizeBytes
// and stop it later with StopFlow.
func (n *Network) StartFlow(path topo.Path, sizeBytes float64, opts FlowOptions) (*Flow, error) {
	if len(path) == 0 {
		return nil, errors.New("netsim: empty path")
	}
	if sizeBytes <= 0 {
		return nil, errors.New("netsim: flow size must be positive")
	}
	if opts.RateCapBps < 0 || opts.GuaranteedBps < 0 {
		return nil, errors.New("netsim: negative rate")
	}
	for _, l := range path {
		if n.links[l.ID] == nil {
			return nil, fmt.Errorf("netsim: path link %s not in network", l.ID)
		}
	}
	n.settle()
	n.nextID++
	f := &Flow{
		ID:             n.nextID,
		Path:           path,
		sizeBytes:      sizeBytes,
		remainingBytes: sizeBytes,
		rateCapBps:     opts.RateCapBps,
		guaranteedBps:  opts.GuaranteedBps,
		start:          n.eng.Now(),
		lastUpdate:     n.eng.Now(),
		onDone:         opts.OnDone,
	}
	n.flows[f.ID] = f
	for _, l := range path {
		n.links[l.ID].flows[f.ID] = f
	}
	n.reallocate()
	return f, nil
}

// StopFlow removes a flow (typically a background stream) before it
// completes. Its OnDone callback is not invoked.
func (n *Network) StopFlow(f *Flow) error {
	if f == nil || n.flows[f.ID] != f {
		return errors.New("netsim: flow not active")
	}
	n.settle()
	n.remove(f)
	f.done = true
	f.end = n.eng.Now()
	n.reallocate()
	return nil
}

// SetRateCap changes a flow's source-side rate cap and reallocates. A cap
// of 0 removes the limit.
func (n *Network) SetRateCap(f *Flow, capBps float64) error {
	if f == nil || n.flows[f.ID] != f {
		return errors.New("netsim: flow not active")
	}
	if capBps < 0 {
		return errors.New("netsim: negative rate cap")
	}
	n.settle()
	f.rateCapBps = capBps
	n.reallocate()
	return nil
}

// SetGuarantee changes a flow's reserved rate mid-flight and reallocates:
// a transfer that started best-effort is upgraded when its circuit
// finishes provisioning (the VC setup delay), and downgraded to 0 when
// the circuit is released.
func (n *Network) SetGuarantee(f *Flow, guaranteedBps float64) error {
	if f == nil || n.flows[f.ID] != f {
		return errors.New("netsim: flow not active")
	}
	if guaranteedBps < 0 {
		return errors.New("netsim: negative guarantee")
	}
	n.settle()
	f.guaranteedBps = guaranteedBps
	n.reallocate()
	return nil
}

// settle integrates all in-flight flows up to the current instant,
// crediting link byte counters and decrementing remaining sizes.
func (n *Network) settle() {
	now := n.eng.Now()
	for _, f := range n.flows {
		dt := float64(now.Sub(f.lastUpdate))
		if dt <= 0 {
			f.lastUpdate = now
			continue
		}
		moved := f.rate / 8 * dt
		if !math.IsInf(f.remainingBytes, 1) {
			if moved > f.remainingBytes {
				moved = f.remainingBytes
			}
			f.remainingBytes -= moved
		}
		for _, l := range f.Path {
			n.links[l.ID].bytesTotal += moved
		}
		f.lastUpdate = now
	}
}

// remove detaches a flow from the network and its links.
func (n *Network) remove(f *Flow) {
	delete(n.flows, f.ID)
	for _, l := range f.Path {
		delete(n.links[l.ID].flows, f.ID)
	}
}

const eps = 1e-6

// reallocate recomputes all flow rates and schedules the next completion.
//
// Allocation proceeds in two classes, mirroring router packet schedulers
// configured for VCs: guaranteed flows first receive min(guarantee, cap),
// then best-effort flows share the residual capacity max–min fairly, with
// each flow's source cap modelled as a private virtual link.
func (n *Network) reallocate() {
	residual := make(map[topo.LinkID]float64, len(n.links))
	for id, ls := range n.links {
		residual[id] = ls.link.CapacityBps
	}

	// Deterministic iteration order.
	ids := make([]FlowID, 0, len(n.flows))
	for id := range n.flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var bestEffort []*Flow
	for _, id := range ids {
		f := n.flows[id]
		if f.guaranteedBps > 0 {
			r := f.guaranteedBps
			if f.rateCapBps > 0 && f.rateCapBps < r {
				r = f.rateCapBps
			}
			// A guarantee can never exceed the line rate of any hop.
			for _, l := range f.Path {
				if avail := residual[l.ID]; r > avail {
					r = avail
				}
			}
			f.rate = r
			for _, l := range f.Path {
				residual[l.ID] -= r
			}
		} else {
			f.rate = 0
			bestEffort = append(bestEffort, f)
		}
	}

	n.maxMin(bestEffort, residual)
	n.scheduleCompletion()
}

// maxMin runs progressive filling over the best-effort flows given the
// residual link capacities. Each capped flow contributes a virtual
// single-flow link of capacity equal to its cap.
func (n *Network) maxMin(flows []*Flow, residual map[topo.LinkID]float64) {
	if len(flows) == 0 {
		return
	}
	frozen := make([]bool, len(flows))
	// count of unfrozen flows per link
	count := make(map[topo.LinkID]int)
	for _, f := range flows {
		for _, l := range f.Path {
			count[l.ID]++
		}
	}
	capRemaining := make([]float64, len(flows))
	for i, f := range flows {
		if f.rateCapBps > 0 {
			capRemaining[i] = f.rateCapBps
		} else {
			capRemaining[i] = math.Inf(1)
		}
	}
	unfrozen := len(flows)
	for unfrozen > 0 {
		// Bottleneck share: min over real links and per-flow caps.
		share := math.Inf(1)
		for id, c := range count {
			if c <= 0 {
				continue
			}
			if s := residual[id] / float64(c); s < share {
				share = s
			}
		}
		for i := range flows {
			if !frozen[i] && capRemaining[i] < share {
				share = capRemaining[i]
			}
		}
		if math.IsInf(share, 1) || share < 0 {
			break
		}
		// Raise all unfrozen flows by the share.
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			f.rate += share
			capRemaining[i] -= share
			for _, l := range f.Path {
				residual[l.ID] -= share
			}
		}
		// Freeze flows that hit their cap or cross a saturated link.
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			saturated := capRemaining[i] <= eps
			if !saturated {
				for _, l := range f.Path {
					if residual[l.ID] <= eps*f.rate+eps {
						saturated = true
						break
					}
				}
			}
			if saturated {
				frozen[i] = true
				unfrozen--
				for _, l := range f.Path {
					count[l.ID]--
				}
			}
		}
		if share <= eps {
			// No progress is possible (e.g. residual already ~0);
			// freeze everything that remains to terminate.
			for i := range flows {
				if !frozen[i] {
					frozen[i] = true
					unfrozen--
				}
			}
		}
	}
}

// scheduleCompletion arms a single event at the earliest finite completion
// time among active flows. The generation counter invalidates events armed
// before the most recent reallocation.
func (n *Network) scheduleCompletion() {
	n.recalcGen++
	gen := n.recalcGen
	soonest := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 || math.IsInf(f.remainingBytes, 1) {
			continue
		}
		t := f.remainingBytes * 8 / f.rate
		if t < soonest {
			soonest = t
		}
	}
	if math.IsInf(soonest, 1) {
		return
	}
	n.eng.MustAfter(simclock.Duration(soonest), func() {
		if gen != n.recalcGen {
			return
		}
		n.completeFinished()
	})
}

// completeFinished settles, finalizes all flows whose remaining bytes have
// reached zero, and reallocates.
func (n *Network) completeFinished() {
	n.settle()
	now := n.eng.Now()
	var finished []*Flow
	for _, f := range n.flows {
		if f.remainingBytes <= 0.5 { // sub-byte residue from float rounding
			finished = append(finished, f)
		}
	}
	sort.Slice(finished, func(i, j int) bool { return finished[i].ID < finished[j].ID })
	for _, f := range finished {
		f.remainingBytes = 0
		f.done = true
		f.end = now
		n.remove(f)
	}
	n.reallocate()
	for _, f := range finished {
		if f.onDone != nil {
			f.onDone(f, now)
		}
	}
}
