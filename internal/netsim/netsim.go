// Package netsim is a discrete-event, fluid-flow wide-area network
// simulator. Flows traverse a topo.Path and share link capacity by
// progressive-filling max–min fairness; virtual-circuit flows receive a
// reserved (guaranteed) rate ahead of best-effort flows, modelling the
// per-VC virtual queues OSCARS configures on router interfaces. Every
// directed link accumulates a byte counter, which internal/snmp samples in
// 30-second bins exactly as ESnet's SNMP collection does.
//
// A fluid-flow model (rates, not packets) is the standard substitution for
// packet-level simulation when the quantities of interest are transfer
// throughput, link utilization and byte counts — which is all the paper's
// analyses consume. Packet losses in these networks are rare (one of the
// paper's findings), so the fluid approximation is faithful.
//
// The allocator is the hot path of every paper exhibit (reallocate runs on
// each flow arrival, departure, cap change and guarantee change), so it is
// engineered to be allocation-free in steady state: links live in dense
// slices indexed by a per-network link index, the active flows form a
// persistent registry sorted by flow ID, and all per-reallocation working
// state (residual capacities, per-link flow counts, frozen flags, cap
// remainders) is kept in scratch buffers on the Network that are resized
// only when the live population grows. Projected completion times live in
// a min-heap with lazy invalidation instead of being rescanned and
// re-armed on every event.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"gftpvc/internal/simclock"
	"gftpvc/internal/topo"
)

// FlowID identifies a flow within one Network.
type FlowID int64

// Flow is a data transfer (or background traffic stream) in flight.
type Flow struct {
	ID   FlowID
	Path topo.Path

	// sizeBytes is the total size; infinite for background flows.
	sizeBytes      float64
	remainingBytes float64

	// rateCapBps is a source-side cap (TCP window limit, disk rate, host
	// contention share); 0 means uncapped.
	rateCapBps float64

	// guaranteedBps is the VC reservation; 0 for best-effort flows.
	guaranteedBps float64

	rate  float64 // current allocated rate
	start simclock.Time
	end   simclock.Time
	done  bool

	// links[i] is the dense index of Path[i] in the owning Network,
	// resolved once at StartFlow so the allocator never touches the
	// map[topo.LinkID] during reallocation.
	links []int

	// projSeq/projAt implement lazy invalidation of completion-heap
	// entries: an entry is live only while its seq matches projSeq and
	// the flow is still registered.
	projSeq   uint64
	projAt    simclock.Time
	projValid bool

	onDone func(*Flow, simclock.Time)
}

// Rate returns the flow's currently allocated rate in bits/second.
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the bytes left to transfer (Inf for background flows).
func (f *Flow) Remaining() float64 { return f.remainingBytes }

// Transferred returns the bytes moved so far, as of the last network event.
func (f *Flow) Transferred() float64 {
	if math.IsInf(f.sizeBytes, 1) {
		return math.Inf(1)
	}
	return f.sizeBytes - f.remainingBytes
}

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// Start returns the virtual time the flow started.
func (f *Flow) Start() simclock.Time { return f.start }

// End returns the completion time; valid only when Done.
func (f *Flow) End() simclock.Time { return f.end }

// DurationSec returns the flow duration in seconds; valid only when Done.
func (f *Flow) DurationSec() float64 { return float64(f.end.Sub(f.start)) }

// ThroughputBps returns size/duration in bits per second; valid only when
// Done and the duration is positive.
func (f *Flow) ThroughputBps() float64 {
	d := f.DurationSec()
	if !f.done || d <= 0 {
		return 0
	}
	return f.sizeBytes * 8 / d
}

// FlowOptions configures StartFlow.
type FlowOptions struct {
	// RateCapBps limits the source rate; 0 = uncapped.
	RateCapBps float64
	// GuaranteedBps is the VC reserved rate; 0 = best-effort. The caller
	// (the OSCARS layer) is responsible for having admitted the
	// reservation; the network gives the flow priority up to this rate.
	GuaranteedBps float64
	// OnDone runs when the flow completes, inside the event loop.
	OnDone func(*Flow, simclock.Time)
}

// linkState is the per-link simulation state, stored densely and indexed
// by the network's link index.
type linkState struct {
	link       *topo.Link
	bytesTotal float64 // cumulative bytes carried (all flows)
	flows      []*Flow // active flows crossing, ascending flow ID
}

// completion is one entry of the projected-completion min-heap.
type completion struct {
	at  simclock.Time
	f   *Flow
	seq uint64
}

// Network simulates flows over a topology. All methods must be called from
// the simulation goroutine (typically from within engine events or between
// engine runs); Network is not safe for concurrent use.
type Network struct {
	eng    *simclock.Engine
	topo   *topo.Topology
	flows  map[FlowID]*Flow
	nextID FlowID

	// Dense link state: links[i] holds the link whose ID sorts i-th;
	// linkIndex resolves a LinkID to its dense index.
	links     []linkState
	linkIndex map[topo.LinkID]int

	// flowList is the persistent flow registry, sorted ascending by ID
	// (IDs are monotonic, so StartFlow appends and remove splices).
	flowList []*Flow

	// settledAt is the instant up to which all in-flight flows have been
	// integrated. Every active flow is settled at the same instant, so a
	// single network-level timestamp replaces per-flow bookkeeping.
	settledAt simclock.Time

	// Scratch buffers reused across reallocations; they grow to the peak
	// live population and are never shrunk.
	residual   []float64 // per link: unallocated capacity
	linkCount  []int     // per link: unfrozen best-effort flows crossing
	bestEffort []*Flow
	frozen     []bool
	capRem     []float64
	finished   []*Flow

	// Projected-completion min-heap with lazy invalidation, plus the
	// state of the single armed engine event. projCount tracks flows with
	// a live projection so the heap can be compacted when superseded
	// entries dominate it.
	compHeap  []completion
	projCount int
	armed     bool
	armedAt   simclock.Time
	armedGen  uint64
}

// New creates a network simulator over the given topology and engine.
func New(eng *simclock.Engine, tp *topo.Topology) *Network {
	links := tp.Links()
	n := &Network{
		eng:       eng,
		topo:      tp,
		flows:     make(map[FlowID]*Flow),
		links:     make([]linkState, len(links)),
		linkIndex: make(map[topo.LinkID]int, len(links)),
		residual:  make([]float64, len(links)),
		linkCount: make([]int, len(links)),
		settledAt: eng.Now(),
	}
	for i, l := range links {
		n.links[i] = linkState{link: l}
		n.linkIndex[l.ID] = i
	}
	return n
}

// Engine returns the underlying event engine.
func (n *Network) Engine() *simclock.Engine { return n.eng }

// Topology returns the underlying topology.
func (n *Network) Topology() *topo.Topology { return n.topo }

// LinkBytes returns the cumulative bytes carried by the directed link, as
// of the current virtual time (integrating in-flight flows up to now).
func (n *Network) LinkBytes(id topo.LinkID) (float64, error) {
	li, ok := n.linkIndex[id]
	if !ok {
		return 0, fmt.Errorf("netsim: unknown link %s", id)
	}
	ls := &n.links[li]
	total := ls.bytesTotal
	if dt := float64(n.eng.Now().Sub(n.settledAt)); dt > 0 {
		for _, f := range ls.flows {
			total += f.rate / 8 * dt
		}
	}
	return total, nil
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// StartFlow injects a flow of sizeBytes along path, beginning now. For a
// background stream of unbounded duration, pass math.Inf(1) as sizeBytes
// and stop it later with StopFlow.
func (n *Network) StartFlow(path topo.Path, sizeBytes float64, opts FlowOptions) (*Flow, error) {
	if len(path) == 0 {
		return nil, errors.New("netsim: empty path")
	}
	if sizeBytes <= 0 {
		return nil, errors.New("netsim: flow size must be positive")
	}
	if opts.RateCapBps < 0 || opts.GuaranteedBps < 0 {
		return nil, errors.New("netsim: negative rate")
	}
	links := make([]int, len(path))
	for i, l := range path {
		li, ok := n.linkIndex[l.ID]
		if !ok {
			return nil, fmt.Errorf("netsim: path link %s not in network", l.ID)
		}
		links[i] = li
	}
	n.settle()
	n.nextID++
	f := &Flow{
		ID:             n.nextID,
		Path:           path,
		sizeBytes:      sizeBytes,
		remainingBytes: sizeBytes,
		rateCapBps:     opts.RateCapBps,
		guaranteedBps:  opts.GuaranteedBps,
		start:          n.eng.Now(),
		links:          links,
		onDone:         opts.OnDone,
	}
	n.flows[f.ID] = f
	n.flowList = append(n.flowList, f) // IDs are monotonic: stays sorted
	for _, li := range links {
		n.links[li].flows = append(n.links[li].flows, f)
	}
	n.reallocate()
	return f, nil
}

// StopFlow removes a flow (typically a background stream) before it
// completes. Its OnDone callback is not invoked.
func (n *Network) StopFlow(f *Flow) error {
	if f == nil || n.flows[f.ID] != f {
		return errors.New("netsim: flow not active")
	}
	n.settle()
	n.remove(f)
	f.done = true
	f.end = n.eng.Now()
	n.reallocate()
	return nil
}

// SetRateCap changes a flow's source-side rate cap and reallocates. A cap
// of 0 removes the limit.
func (n *Network) SetRateCap(f *Flow, capBps float64) error {
	if f == nil || n.flows[f.ID] != f {
		return errors.New("netsim: flow not active")
	}
	if capBps < 0 {
		return errors.New("netsim: negative rate cap")
	}
	n.settle()
	f.rateCapBps = capBps
	n.reallocate()
	return nil
}

// SetGuarantee changes a flow's reserved rate mid-flight and reallocates:
// a transfer that started best-effort is upgraded when its circuit
// finishes provisioning (the VC setup delay), and downgraded to 0 when
// the circuit is released.
func (n *Network) SetGuarantee(f *Flow, guaranteedBps float64) error {
	if f == nil || n.flows[f.ID] != f {
		return errors.New("netsim: flow not active")
	}
	if guaranteedBps < 0 {
		return errors.New("netsim: negative guarantee")
	}
	n.settle()
	f.guaranteedBps = guaranteedBps
	n.reallocate()
	return nil
}

// settle integrates all in-flight flows up to the current instant,
// crediting link byte counters and decrementing remaining sizes. All
// flows share the settlement timestamp, so a repeated settle at the same
// instant (arrival bursts, cap re-draws) returns immediately, and flows
// allocated a zero rate are skipped entirely.
func (n *Network) settle() {
	now := n.eng.Now()
	dt := float64(now.Sub(n.settledAt))
	if dt <= 0 {
		n.settledAt = now
		return
	}
	for _, f := range n.flowList {
		if f.rate == 0 {
			continue
		}
		moved := f.rate / 8 * dt
		if !math.IsInf(f.remainingBytes, 1) {
			if moved > f.remainingBytes {
				moved = f.remainingBytes
			}
			f.remainingBytes -= moved
		}
		for _, li := range f.links {
			n.links[li].bytesTotal += moved
		}
	}
	n.settledAt = now
}

// remove detaches a flow from the network, its registry slot, and its
// links, and invalidates any completion-heap entries it owns.
func (n *Network) remove(f *Flow) {
	delete(n.flows, f.ID)
	n.flowList = spliceOut(n.flowList, f)
	for _, li := range f.links {
		n.links[li].flows = spliceOut(n.links[li].flows, f)
	}
	if f.projValid {
		f.projValid = false
		n.projCount--
	}
	f.projSeq++
}

// spliceOut removes f from an ID-sorted flow slice, preserving order.
func spliceOut(list []*Flow, f *Flow) []*Flow {
	i := sort.Search(len(list), func(i int) bool { return list[i].ID >= f.ID })
	if i >= len(list) || list[i] != f {
		return list
	}
	copy(list[i:], list[i+1:])
	list[len(list)-1] = nil
	return list[:len(list)-1]
}

const eps = 1e-6

// reallocate recomputes all flow rates and schedules the next completion.
//
// Allocation proceeds in two classes, mirroring router packet schedulers
// configured for VCs: guaranteed flows first receive min(guarantee, cap),
// then best-effort flows share the residual capacity max–min fairly, with
// each flow's source cap modelled as a private virtual link.
func (n *Network) reallocate() {
	for i := range n.links {
		n.residual[i] = n.links[i].link.CapacityBps
	}
	be := n.bestEffort[:0]
	for _, f := range n.flowList { // ascending ID: deterministic
		if f.guaranteedBps > 0 {
			r := f.guaranteedBps
			if f.rateCapBps > 0 && f.rateCapBps < r {
				r = f.rateCapBps
			}
			// A guarantee can never exceed the line rate of any hop.
			for _, li := range f.links {
				if avail := n.residual[li]; r > avail {
					r = avail
				}
			}
			f.rate = r
			for _, li := range f.links {
				n.residual[li] -= r
			}
		} else {
			f.rate = 0
			be = append(be, f)
		}
	}
	n.bestEffort = be
	n.maxMin(be)
	n.scheduleCompletion()
}

// maxMin runs progressive filling over the best-effort flows given the
// residual link capacities in n.residual. Each capped flow contributes a
// virtual single-flow link of capacity equal to its cap. All working
// state lives in scratch buffers on the Network.
func (n *Network) maxMin(flows []*Flow) {
	if len(flows) == 0 {
		return
	}
	if cap(n.frozen) < len(flows) {
		n.frozen = make([]bool, len(flows))
		n.capRem = make([]float64, len(flows))
	}
	frozen := n.frozen[:len(flows)]
	capRem := n.capRem[:len(flows)]
	// count of unfrozen flows per link
	count := n.linkCount
	for i := range count {
		count[i] = 0
	}
	for i, f := range flows {
		for _, li := range f.links {
			count[li]++
		}
		frozen[i] = false
		if f.rateCapBps > 0 {
			capRem[i] = f.rateCapBps
		} else {
			capRem[i] = math.Inf(1)
		}
	}
	unfrozen := len(flows)
	for unfrozen > 0 {
		// Bottleneck share: min over real links and per-flow caps.
		share := math.Inf(1)
		for li, c := range count {
			if c <= 0 {
				continue
			}
			if s := n.residual[li] / float64(c); s < share {
				share = s
			}
		}
		for i := range flows {
			if !frozen[i] && capRem[i] < share {
				share = capRem[i]
			}
		}
		if math.IsInf(share, 1) || share < 0 {
			break
		}
		// Raise all unfrozen flows by the share.
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			f.rate += share
			capRem[i] -= share
			for _, li := range f.links {
				n.residual[li] -= share
			}
		}
		// Freeze flows that hit their cap or cross a saturated link.
		for i, f := range flows {
			if frozen[i] {
				continue
			}
			saturated := capRem[i] <= eps
			if !saturated {
				for _, li := range f.links {
					if n.residual[li] <= eps*f.rate+eps {
						saturated = true
						break
					}
				}
			}
			if saturated {
				frozen[i] = true
				unfrozen--
				for _, li := range f.links {
					count[li]--
				}
			}
		}
		if share <= eps {
			// No progress is possible (e.g. residual already ~0);
			// freeze everything that remains to terminate.
			for i := range flows {
				if !frozen[i] {
					frozen[i] = true
					unfrozen--
				}
			}
		}
	}
}

// scheduleCompletion refreshes the projected completion time of every
// flow whose projection moved, then arms (at most) one engine event at
// the earliest live projection. Superseded heap entries are not removed
// eagerly; they are skipped when they surface at the top (lazy
// invalidation via the per-flow projection sequence number).
func (n *Network) scheduleCompletion() {
	now := n.eng.Now()
	for _, f := range n.flowList {
		if f.rate <= 0 || math.IsInf(f.remainingBytes, 1) {
			if f.projValid {
				f.projValid = false
				f.projSeq++
				n.projCount--
			}
			continue
		}
		at := now.Add(simclock.Duration(f.remainingBytes * 8 / f.rate))
		if f.projValid && f.projAt == at {
			continue // the live heap entry is still correct
		}
		if !f.projValid {
			f.projValid = true
			n.projCount++
		}
		f.projSeq++
		f.projAt = at
		n.heapPush(completion{at: at, f: f, seq: f.projSeq})
	}
	if len(n.compHeap) > 2*n.projCount+64 {
		n.compactHeap()
	}
	n.armNext()
}

// compactHeap drops every superseded entry in place and re-heapifies,
// bounding the heap at roughly twice the live projection count.
func (n *Network) compactHeap() {
	live := n.compHeap[:0]
	for _, c := range n.compHeap {
		if c.f.projValid && c.seq == c.f.projSeq {
			live = append(live, c)
		}
	}
	for i := len(live); i < len(n.compHeap); i++ {
		n.compHeap[i] = completion{}
	}
	n.compHeap = live
	for i := len(live)/2 - 1; i >= 0; i-- {
		n.siftDown(i)
	}
}

// armNext pops dead heap entries and arms a single engine event at the
// earliest live projection, unless one is already armed for that instant.
func (n *Network) armNext() {
	for len(n.compHeap) > 0 {
		top := n.compHeap[0]
		if !top.f.projValid || top.seq != top.f.projSeq {
			n.heapPop()
			continue
		}
		break
	}
	if len(n.compHeap) == 0 {
		if n.armed { // pending event is for a dead projection
			n.armed = false
			n.armedGen++
		}
		return
	}
	at := n.compHeap[0].at
	if n.armed && n.armedAt == at {
		return // the pending event already covers this instant
	}
	n.armedGen++
	gen := n.armedGen
	n.armed = true
	n.armedAt = at
	n.eng.MustAt(at, func() {
		if !n.armed || gen != n.armedGen {
			return
		}
		n.armed = false
		n.completeFinished()
	})
}

// completeFinished settles, finalizes all flows whose remaining bytes have
// reached zero, and reallocates.
func (n *Network) completeFinished() {
	n.settle()
	now := n.eng.Now()
	finished := n.finished[:0]
	for _, f := range n.flowList { // ascending ID: deterministic
		if f.remainingBytes <= 0.5 { // sub-byte residue from float rounding
			finished = append(finished, f)
		}
	}
	for _, f := range finished {
		f.remainingBytes = 0
		f.done = true
		f.end = now
		n.remove(f)
	}
	n.finished = finished
	n.reallocate()
	for _, f := range finished {
		if f.onDone != nil {
			f.onDone(f, now)
		}
	}
}

// heapPush inserts a completion entry, ordered by time.
func (n *Network) heapPush(c completion) {
	n.compHeap = append(n.compHeap, c)
	i := len(n.compHeap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if n.compHeap[i].at >= n.compHeap[parent].at {
			break
		}
		n.compHeap[i], n.compHeap[parent] = n.compHeap[parent], n.compHeap[i]
		i = parent
	}
}

// heapPop removes the earliest completion entry.
func (n *Network) heapPop() {
	last := len(n.compHeap) - 1
	n.compHeap[0] = n.compHeap[last]
	n.compHeap[last] = completion{}
	n.compHeap = n.compHeap[:last]
	n.siftDown(0)
}

// siftDown restores the heap invariant below index i.
func (n *Network) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(n.compHeap) && n.compHeap[l].at < n.compHeap[smallest].at {
			smallest = l
		}
		if r < len(n.compHeap) && n.compHeap[r].at < n.compHeap[smallest].at {
			smallest = r
		}
		if smallest == i {
			return
		}
		n.compHeap[i], n.compHeap[smallest] = n.compHeap[smallest], n.compHeap[i]
		i = smallest
	}
}
