// Package simclock implements a deterministic discrete-event simulation
// engine: a virtual clock and an event queue with stable FIFO ordering for
// simultaneous events. It is the substrate under the WAN simulator
// (internal/netsim) and the OSCARS circuit scheduler (internal/oscars).
//
// Virtual time is a float64 number of seconds from the simulation epoch.
// Determinism: two events scheduled for the same instant fire in the order
// they were scheduled, regardless of map iteration or goroutine scheduling
// (the engine is single-goroutine by design).
package simclock

import (
	"errors"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the simulation epoch.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration float64

// Common durations.
const (
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
	Hour        Duration = 3600
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String renders the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("t=%.3fs", float64(t)) }

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with New.
type Engine struct {
	now     Time
	seq     uint64
	heap    []*event
	running bool
	stopped bool
}

// New returns an engine whose clock starts at 0.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// ErrPast is returned when an event is scheduled before the current time.
var ErrPast = errors.New("simclock: cannot schedule event in the past")

// At schedules fn to run at the absolute virtual time at. Scheduling at the
// current instant is allowed (the event runs after already-queued events
// for that instant).
func (e *Engine) At(at Time, fn func()) error {
	if at < e.now {
		return fmt.Errorf("%w: at %v, now %v", ErrPast, at, e.now)
	}
	if fn == nil {
		return errors.New("simclock: nil event function")
	}
	e.seq++
	e.push(&event{at: at, seq: e.seq, fn: fn})
	return nil
}

// After schedules fn to run d seconds from now. Negative d is an error.
func (e *Engine) After(d Duration, fn func()) error {
	if d < 0 {
		return fmt.Errorf("%w: delay %v", ErrPast, d)
	}
	return e.At(e.now.Add(d), fn)
}

// MustAt is At but panics on error; for simulation setup code where a
// past-time schedule is a programming error.
func (e *Engine) MustAt(at Time, fn func()) {
	if err := e.At(at, fn); err != nil {
		panic(err)
	}
}

// MustAfter is After but panics on error.
func (e *Engine) MustAfter(d Duration, fn func()) {
	if err := e.After(d, fn); err != nil {
		panic(err)
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }

// PeekNext returns the time of the next queued event and true, or 0 and
// false when the queue is empty.
func (e *Engine) PeekNext() (Time, bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.heap[0].at, true
}

// Stop makes the currently executing Run/RunUntil return after the current
// event completes. Queued events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. It returns
// the number of events executed.
func (e *Engine) Run() int { return e.run(Time(math.Inf(1))) }

// RunUntil executes events with time <= deadline, then advances the clock
// to the deadline (even if no event fired exactly there). It returns the
// number of events executed.
func (e *Engine) RunUntil(deadline Time) int {
	n := e.run(deadline)
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return n
}

func (e *Engine) run(deadline Time) int {
	if e.running {
		panic("simclock: Run called reentrantly from within an event")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	count := 0
	for len(e.heap) > 0 && !e.stopped {
		next := e.heap[0]
		if next.at > deadline {
			break
		}
		e.pop()
		e.now = next.at
		next.fn()
		count++
	}
	return count
}

// binary heap ordered by (at, seq).

func (e *Engine) less(i, j int) bool {
	a, b := e.heap[i], e.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) pop() *event {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap[last] = nil
	e.heap = e.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(e.heap) && e.less(l, smallest) {
			smallest = l
		}
		if r < len(e.heap) && e.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		e.heap[i], e.heap[smallest] = e.heap[smallest], e.heap[i]
		i = smallest
	}
	return top
}

// Ticker invokes fn every interval until the engine drains or cancel is
// called; it is used for periodic measurement processes such as the
// 30-second SNMP poller. The first tick fires at now+interval.
type Ticker struct {
	cancelled bool
}

// Cancel stops future ticks. The currently scheduled tick becomes a no-op.
func (tk *Ticker) Cancel() { tk.cancelled = true }

// Tick schedules fn(now) every interval on e. fn runs before the next tick
// is scheduled, so a callback may Cancel the ticker to stop the series.
func Tick(e *Engine, interval Duration, fn func(Time)) (*Ticker, error) {
	if interval <= 0 {
		return nil, errors.New("simclock: tick interval must be positive")
	}
	tk := &Ticker{}
	var step func()
	step = func() {
		if tk.cancelled {
			return
		}
		fn(e.Now())
		if tk.cancelled {
			return
		}
		e.MustAfter(interval, step)
	}
	if err := e.After(interval, step); err != nil {
		return nil, err
	}
	return tk, nil
}
