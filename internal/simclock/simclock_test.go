package simclock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRunOrdering(t *testing.T) {
	e := New()
	var got []int
	e.MustAt(3, func() { got = append(got, 3) })
	e.MustAt(1, func() { got = append(got, 1) })
	e.MustAt(2, func() { got = append(got, 2) })
	if n := e.Run(); n != 3 {
		t.Fatalf("Run executed %d events, want 3", n)
	}
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("order = %v", got)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.MustAt(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", got)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := New()
	e.MustAt(10, func() {})
	e.Run()
	if err := e.At(5, func() {}); err == nil {
		t.Error("At(past) should fail")
	}
	if err := e.After(-1, func() {}); err == nil {
		t.Error("After(negative) should fail")
	}
	if err := e.At(10, nil); err == nil {
		t.Error("At(nil fn) should fail")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	var got []string
	e.MustAt(1, func() {
		got = append(got, "a")
		e.MustAfter(1, func() { got = append(got, "b") })
		e.MustAt(e.Now(), func() { got = append(got, "a2") }) // same instant
	})
	e.Run()
	want := []string{"a", "a2", "b"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.MustAt(1, func() { fired++ })
	e.MustAt(2, func() { fired++ })
	e.MustAt(10, func() { fired++ })
	n := e.RunUntil(5)
	if n != 2 || fired != 2 {
		t.Fatalf("RunUntil fired %d events, want 2", fired)
	}
	if e.Now() != 5 {
		t.Errorf("Now = %v, want 5 (clock advances to deadline)", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 3 {
		t.Errorf("remaining event did not fire")
	}
}

func TestStop(t *testing.T) {
	e := New()
	fired := 0
	e.MustAt(1, func() { fired++; e.Stop() })
	e.MustAt(2, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("Stop did not halt the run; fired=%d", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestPeekNext(t *testing.T) {
	e := New()
	if _, ok := e.PeekNext(); ok {
		t.Error("PeekNext on empty queue should report !ok")
	}
	e.MustAt(7, func() {})
	if at, ok := e.PeekNext(); !ok || at != 7 {
		t.Errorf("PeekNext = %v,%v; want 7,true", at, ok)
	}
}

func TestReentrantRunPanics(t *testing.T) {
	e := New()
	e.MustAt(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("reentrant Run should panic")
			}
		}()
		e.Run()
	})
	e.Run()
}

func TestTicker(t *testing.T) {
	e := New()
	var ticks []Time
	tk, err := Tick(e, 30, func(now Time) { ticks = append(ticks, now) })
	if err != nil {
		t.Fatal(err)
	}
	e.RunUntil(100)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3 (at 30, 60, 90): %v", len(ticks), ticks)
	}
	for i, want := range []Time{30, 60, 90} {
		if ticks[i] != want {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want)
		}
	}
	tk.Cancel()
	before := len(ticks)
	e.RunUntil(200)
	if len(ticks) != before {
		t.Error("ticker kept firing after Cancel")
	}
}

func TestTickerCancelFromCallback(t *testing.T) {
	e := New()
	count := 0
	var tk *Ticker
	tk, _ = Tick(e, 1, func(Time) {
		count++
		if count == 2 {
			tk.Cancel()
		}
	})
	e.RunUntil(100)
	if count != 2 {
		t.Errorf("ticks = %d, want 2", count)
	}
}

func TestTickerBadInterval(t *testing.T) {
	if _, err := Tick(New(), 0, func(Time) {}); err == nil {
		t.Error("zero interval should fail")
	}
}

// Property: for any set of scheduled times, events fire in sorted order and
// the final clock equals the max time.
func TestHeapOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		var fired []Time
		times := make([]float64, len(raw))
		for i, r := range raw {
			at := Time(r)
			times[i] = float64(at)
			e.MustAt(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		sort.Float64s(times)
		if len(fired) != len(times) {
			return false
		}
		for i := range fired {
			if float64(fired[i]) != times[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
